# Convenience targets; everything is plain go tooling underneath.

GO ?= go

.PHONY: build test race vet lint check bench bench-smoke fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the analyzer suite module-wide, then the analyzers' own fixture
# self-tests (multi-package fixtures, fact goldens, loader error paths).
lint:
	$(GO) run ./cmd/tcnlint ./...
	$(GO) test ./internal/lint/...

# check is the full local gate: what CI requires before merge.
check: build vet lint test

# bench captures the perf baseline the PRs track: engine core, packet path,
# and the parallel sweep at workers=1/2/4, written as JSON for comparison.
# -diff fails on a packet-path regression against the previous baseline.
bench:
	$(GO) run ./cmd/tcnbench -count 3 -o BENCH_pr10.json -diff BENCH_pr9.json -allow-config-drift

# bench-smoke runs every benchmark once — cheap regression/compile coverage
# for the bench suite itself (CI runs this on every push).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# fuzz-smoke mirrors the CI fuzz job: every native fuzz target, bounded.
fuzz-smoke:
	$(GO) test -tags=invariants -run '^$$' -fuzz FuzzBucketMapping   -fuzztime 10s ./internal/obs/
	$(GO) test -tags=invariants -run '^$$' -fuzz FuzzHistogramRecord -fuzztime 10s ./internal/obs/
	$(GO) test -tags=invariants -run '^$$' -fuzz FuzzDWRRAccounting  -fuzztime 10s ./internal/sched/
	$(GO) test -tags=invariants -run '^$$' -fuzz FuzzWFQAccounting   -fuzztime 10s ./internal/sched/
	$(GO) test -tags=invariants -run '^$$' -fuzz FuzzMarkProbability -fuzztime 10s ./internal/core/
	$(GO) test -tags=invariants -run '^$$' -fuzz FuzzREDDecide       -fuzztime 10s ./internal/aqm/
