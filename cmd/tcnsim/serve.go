package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"tcn/internal/obs/flight"
	"tcn/internal/obs/perf"
)

// The -serve endpoint. The simulation itself is single-goroutine and
// wall-clock free; HTTP handlers never touch live simulator state.
// Instead they ask the flight recorder for a published Exposition — an
// immutable snapshot rendered on the simulation goroutine at a sampler
// tick (or at Seal once the run finishes) and handed over atomically.
// The wall-clock waiting below is confined to this cmd package; the
// simclock lint bans it everywhere under internal/.

// exposeTimeout bounds how long a handler waits for the simulation to
// publish a fresh snapshot. A busy sim ticks every sample period (sim
// time), which is microseconds of wall time; 5 s only trips when the
// run is stalled or finished without sealing.
const exposeTimeout = 5 * time.Second

// latestExposition returns a current snapshot: the sealed final state if
// the run is done, otherwise it requests a publication and polls briefly
// for the sim goroutine to render one. May return nil before the first
// sampler tick.
func latestExposition(rec *flight.Recorder) *flight.Exposition {
	select {
	case <-rec.Done():
		return rec.Latest()
	default:
	}
	before := rec.Latest()
	rec.RequestPublish()
	deadline := time.Now().Add(exposeTimeout)
	for time.Now().Before(deadline) {
		if e := rec.Latest(); e != nil && (before == nil || e.Gen != before.Gen) {
			return e
		}
		select {
		case <-rec.Done():
			return rec.Latest()
		case <-time.After(5 * time.Millisecond):
		}
	}
	return rec.Latest()
}

// unavailableBody is the machine-readable 503 payload for endpoints that
// need an observer the current run does not carry: it names the cause and
// the exact flag change that fixes it, so a curl in CI fails with a
// self-explanatory document instead of a bare status line.
type unavailableBody struct {
	Error  string `json:"error"`
	Cause  string `json:"cause"`
	Remedy string `json:"remedy"`
}

func writeUnavailable(w http.ResponseWriter, body unavailableBody) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(body)
}

// exposeHandler serves one Exposition field with a content type. rec is
// nil when -serve runs alongside a parallel sweep (-workers > 1): the
// flight recorder would force the sweep serial, so only the perf
// endpoints are live in that mode.
func exposeHandler(rec *flight.Recorder, contentType string, field func(*flight.Exposition) []byte) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		if rec == nil {
			writeUnavailable(w, unavailableBody{
				Error:  "flight recorder not attached",
				Cause:  "this endpoint needs per-cell network telemetry, which a parallel sweep (-workers > 1) does not collect",
				Remedy: "rerun tcnsim with -workers 1 to attach the flight recorder",
			})
			return
		}
		e := latestExposition(rec)
		if e == nil {
			http.Error(w, "no telemetry published yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Write(field(e))
	}
}

// profileExport is the handoff between the simulation goroutine and the
// /profile.pb.gz and /profile.folded handlers. The cost profiler's
// counters are plain fields owned by the sim goroutine, so handlers never
// read the profiler itself; instead the sim goroutine renders both
// exports once, after the run completes, and publishes the immutable
// bytes through these atomics. A nil *profileExport means the run carries
// no profiler at all.
type profileExport struct {
	pb     atomic.Pointer[[]byte]
	folded atomic.Pointer[[]byte]
}

// publish hands the rendered exports to the HTTP handlers.
func (e *profileExport) publish(pb, folded []byte) {
	e.pb.Store(&pb)
	e.folded.Store(&folded)
}

// profileHandler serves one rendered profile export. exp is nil when the
// run has no profiler attached; the bytes are nil until the run finishes.
func profileHandler(exp *profileExport, contentType string, field func(*profileExport) *atomic.Pointer[[]byte]) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		if exp == nil {
			writeUnavailable(w, unavailableBody{
				Error:  "cost profiler not attached",
				Cause:  "this endpoint serves the sim-structured cost profile, which this run was started without",
				Remedy: "rerun tcnsim with -profile FILE (add -profile-wall for wall self-time) to attach the profiler",
			})
			return
		}
		b := field(exp).Load()
		if b == nil {
			writeUnavailable(w, unavailableBody{
				Error:  "profile not rendered yet",
				Cause:  "the cost profile is rendered once, after the run completes, and this run is still executing",
				Remedy: "retry once the run finishes; the server keeps answering after completion",
			})
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Write(*b)
	}
}

// perfHandler serves a self-telemetry JSON document rendered straight
// from the campaign's atomics. Unlike the flight-recorder endpoints it
// needs no simulation-goroutine tick, so it answers instantly mid-cell
// and at any -workers count — the flight handoff would stall until the
// next sampler tick, which a parallel sweep never runs.
func perfHandler(camp *perf.Campaign, render func(*perf.Campaign) ([]byte, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		if camp == nil {
			http.Error(w, "no perf campaign attached", http.StatusServiceUnavailable)
			return
		}
		b, err := render(camp)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(b)
	}
}

// newServeMux wires /metrics, /timeseries.csv, /flows.csv, /perf.json,
// /campaign.json, the cost-profile exports, and pprof.
func newServeMux(rec *flight.Recorder, camp *perf.Campaign, prof *profileExport) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics",
		exposeHandler(rec, "text/plain; version=0.0.4; charset=utf-8",
			func(e *flight.Exposition) []byte { return e.Prom }))
	mux.HandleFunc("/timeseries.csv",
		exposeHandler(rec, "text/csv; charset=utf-8",
			func(e *flight.Exposition) []byte { return e.Timeseries }))
	mux.HandleFunc("/flows.csv",
		exposeHandler(rec, "text/csv; charset=utf-8",
			func(e *flight.Exposition) []byte { return e.Flows }))
	mux.HandleFunc("/ledger.jsonl",
		exposeHandler(rec, "application/x-ndjson; charset=utf-8",
			func(e *flight.Exposition) []byte { return e.Ledger }))
	mux.HandleFunc("/trace.perfetto.json",
		exposeHandler(rec, "application/json; charset=utf-8",
			func(e *flight.Exposition) []byte { return e.Perfetto }))
	mux.HandleFunc("/perf.json", perfHandler(camp, (*perf.Campaign).PerfJSON))
	mux.HandleFunc("/campaign.json", perfHandler(camp, (*perf.Campaign).CampaignJSON))
	mux.HandleFunc("/profile.pb.gz",
		profileHandler(prof, "application/octet-stream",
			func(e *profileExport) *atomic.Pointer[[]byte] { return &e.pb }))
	mux.HandleFunc("/profile.folded",
		profileHandler(prof, "text/plain; charset=utf-8",
			func(e *profileExport) *atomic.Pointer[[]byte] { return &e.folded }))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "tcnsim flight recorder\n\n/metrics\n/timeseries.csv\n/flows.csv\n/ledger.jsonl\n/trace.perfetto.json\n/perf.json\n/campaign.json\n/profile.pb.gz\n/profile.folded\n/debug/pprof/\n")
	})
	return mux
}

// startServer begins serving the recorder on addr and returns once the
// listener is bound, so a caller racing curl in CI cannot hit a closed
// port.
func startServer(addr string, rec *flight.Recorder, camp *perf.Campaign, prof *profileExport) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: newServeMux(rec, camp, prof)}
	fmt.Fprintf(os.Stderr, "serving flight recorder on http://%s (metrics, timeseries.csv, flows.csv, ledger.jsonl, trace.perfetto.json, perf.json, campaign.json, profile.pb.gz, profile.folded, debug/pprof)\n", ln.Addr())
	go srv.Serve(ln)
	return srv, nil
}

// waitForShutdown blocks until SIGINT/SIGTERM, then closes the server.
func waitForShutdown(srv *http.Server) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	fmt.Fprintln(os.Stderr, "run complete; still serving — interrupt to exit")
	<-sig
	srv.Close()
}
