package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"tcn/internal/experiments"
	"tcn/internal/metrics"
)

// csvDir is set by the -csv flag; when non-empty, figure runners also
// write plot-friendly CSV files into it.
var csvDir string

// writeCSV writes rows into csvDir/name, creating the directory.
func writeCSV(name string, header []string, rows [][]string) {
	if csvDir == "" {
		return
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	path := filepath.Join(csvDir, name)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	defer f.Close()
	w := csv.NewWriter(f)
	_ = w.Write(header)
	_ = w.WriteAll(rows)
	w.Flush()
	if err := w.Error(); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// csvSamples writes a (time_us, value) series.
func csvSamples(name, valueHeader string, samples []metrics.Sample) {
	rows := make([][]string, 0, len(samples))
	for _, s := range samples {
		rows = append(rows, []string{ftoa(s.At.Microseconds()), ftoa(s.Value)})
	}
	writeCSV(name, []string{"time_us", valueHeader}, rows)
}

// csvSweep writes an FCT sweep as one row per (scheme, load).
func csvSweep(sw experiments.FCTSweep) {
	var rows [][]string
	for i, s := range sw.Schemes {
		for j, load := range sw.Loads {
			c := sw.Cells[i][j]
			rows = append(rows, fctRow(string(s), load, c.Stats, c.Drops, c.Unfinished))
		}
	}
	writeCSV(sw.Figure+".csv", fctHeader(), rows)
}

// csvLeafSweep writes a leaf-spine sweep.
func csvLeafSweep(sw experiments.LeafSpineSweep) {
	var rows [][]string
	for i, s := range sw.Schemes {
		for j, load := range sw.Loads {
			c := sw.Cells[i][j]
			rows = append(rows, fctRow(string(s), load, c.Stats, c.Drops, c.Unfinished))
		}
	}
	writeCSV(sw.Figure+".csv", fctHeader(), rows)
}

func fctHeader() []string {
	return []string{"scheme", "load", "avg_all_us", "avg_small_us", "p99_small_us",
		"avg_large_us", "timeouts_small", "drops", "unfinished"}
}

func fctRow(scheme string, load float64, st metrics.FCTStats, drops, unfinished int) []string {
	return []string{
		scheme, ftoa(load),
		ftoa(st.AvgAll.Microseconds()), ftoa(st.AvgSmall.Microseconds()),
		ftoa(st.P99Small.Microseconds()), ftoa(st.AvgLarge.Microseconds()),
		strconv.Itoa(st.TimeoutsSmall), strconv.Itoa(drops), strconv.Itoa(unfinished),
	}
}
