package main

import (
	"fmt"
	"os"
	"time"

	"tcn/internal/obs/perf"
)

// progressPeriod is how often -progress prints to stderr.
const progressPeriod = 2 * time.Second

// startProgress launches the -progress reporter against the campaign's
// live atomics and returns a stop function that prints one final line.
// The reporter runs on its own goroutine and never touches simulator
// state — it reads the same snapshot /perf.json serves.
func startProgress(c *perf.Campaign) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(progressPeriod)
		defer t.Stop()
		for {
			select {
			case <-done:
				printProgressLine(c)
				return
			case <-t.C:
				printProgressLine(c)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

func printProgressLine(c *perf.Campaign) {
	s := c.SnapshotNow(false)
	eta := "--"
	if s.ETASeconds > 0 {
		d := time.Duration(s.ETASeconds * float64(time.Second))
		eta = d.Truncate(time.Second).String()
	}
	fmt.Fprintf(os.Stderr, "progress: cells %d/%d  events %s (%s/s)  sim %.1fs  wall %.0fs  eta %s\n",
		s.CellsDone, s.CellsTotal,
		humanCount(float64(s.LiveEvents)), humanCount(s.EventsPerSecond),
		s.SimSeconds, s.WallSeconds, eta)
}

// humanCount renders a count with a k/M/G suffix for the progress line.
func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}
