// Command tcnsim regenerates the paper's tables and figures.
//
// Usage:
//
//	tcnsim -exp fig1 [-flows N] [-loads 0.5,0.9] [-seed S] [-full]
//
// Experiments: fig1 fig2 fig3 fig4 fig5a fig5b fig6 fig7 fig8 fig9
// fig10 fig11 fig12 fig13 all-testbed all-sim
//
// By default the runners use CI-sized flow counts and (for leaf-spine
// experiments) a 4×4×4 fabric; -full switches to the paper's scale
// (5000/50000 flows, 12×12×12 fabric) and takes correspondingly longer.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"tcn/internal/digest"
	"tcn/internal/experiments"
	"tcn/internal/metrics"
	"tcn/internal/obs"
	"tcn/internal/obs/flight"
	"tcn/internal/obs/perf"
	"tcn/internal/obs/prof"
	"tcn/internal/parallel"
	"tcn/internal/sim"
	"tcn/internal/trace"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (fig1..fig13, fig4, all-testbed, all-sim)")
		flows = flag.Int("flows", 0, "flows per load point (0 = experiment default)")
		loads = flag.String("loads", "", "comma-separated loads, e.g. 0.5,0.9 (default per experiment)")
		seed  = flag.Int64("seed", 1, "random seed")
		full  = flag.Bool("full", false, "paper-scale runs (slow)")
		list  = flag.Bool("list", false, "list experiments")
		seeds = flag.Int("seeds", 1, "repeat FCT sweeps over this many seeds and aggregate")
		csv   = flag.String("csv", "", "also write plot-friendly CSV files into this directory")

		workers = flag.Int("workers", parallel.DefaultWorkers(),
			"sweep points evaluated concurrently (results are identical at any count; forced to 1 when -stats/-trace/-explain/-ledger/-perfetto/-serve/-timeseries/-flow-spans/-fingerprint attach observers)")
		progress = flag.Bool("progress", false,
			"print a periodic progress line to stderr: cells done/total, live events/sec, sim time, ETA (works at any -workers)")
		exactFCT = flag.Bool("exact-fct", false,
			"retain every per-flow FCT record and compute exact P99 instead of the default bounded-memory streaming t-digest")

		statsFile = flag.String("stats", "", "write a JSON stats snapshot of every instrumented port to this file ('-' = stdout)")
		statsText = flag.Bool("stats-text", false, "render -stats in tc(8)-style text instead of JSON")
		traceFile = flag.String("trace", "", "write a JSONL packet-event trace to this file ('-' = stdout)")
		traceCap  = flag.Int("trace-events", 1<<16, "packet events retained in the trace ring")

		explain      = flag.Bool("explain", false, "after the run, print a verdict-breakdown report: every mark/drop by (port, queue, reason)")
		ledgerFile   = flag.String("ledger", "", "write the decision ledger (every mark/drop verdict with its inputs) as JSONL to this file ('-' = stdout)")
		ledgerCap    = flag.Int("ledger-events", 1<<16, "verdicts retained in the ledger ring (exact counters never evict)")
		perfettoFile = flag.String("perfetto", "", "write per-packet pipeline-stage spans as Chrome trace-event JSON (Perfetto-loadable) to this file ('-' = stdout)")
		perfettoCap  = flag.Int("perfetto-events", 1<<16, "pipeline events retained in the Perfetto ring")
		serveAddr    = flag.String("serve", "", "serve /metrics, /timeseries.csv, /flows.csv, /ledger.jsonl, /trace.perfetto.json, /perf.json, /campaign.json, /profile.pb.gz, /profile.folded, and pprof on this address while running (e.g. :9090)")
		tsFile       = flag.String("timeseries", "", "write the flight-recorder time series to this file, CSV by default, JSON for a .json suffix ('-' = stdout)")
		spansFile    = flag.String("flow-spans", "", "write per-flow lifecycle spans (FCT, bytes, marks, drops, max sojourn) as CSV to this file ('-' = stdout)")
		samplePeriod = flag.Duration("sample-period", 100*time.Microsecond, "flight-recorder probe polling period (simulated time)")

		coreName = flag.String("core", sim.DefaultCore().String(),
			"engine event store: 'wheel' (production timing wheel) or 'heap' (the differential oracle); same-seed runs are digest-identical under either, which the wheel-oracle CI job checks with tcndiff")

		fpFile  = flag.String("fingerprint", "", "write the run-fingerprint digest timeline (per-component chained digests per epoch) as JSONL to this file ('-' = stdout); diff two runs with tcndiff")
		fpEpoch = flag.Duration("fingerprint-epoch", time.Millisecond, "fingerprint snapshot period (simulated time); both runs of a tcndiff pair must use the same period")
		fpFine  = flag.Int64("fingerprint-fine", -1, "record per-event digests bracketed around this epoch index (-1 = off); set to the epoch tcndiff reported to localize the first divergent event")

		profFile   = flag.String("profile", "", "write the sim-structured cost profile (gzip pprof protobuf; read with 'go tool pprof') to this file; attaches the deterministic event-cost profiler, which forces -workers 1 but leaves fingerprints identical to a bare run")
		profFolded = flag.String("profile-folded", "", "write the cost profile as folded stacks ('a;b;c value' lines, flamegraph.pl-compatible) to this file ('-' = stdout); diff two with tcndiff -profile-a/-profile-b")
		profWall   = flag.Bool("profile-wall", false, "also record wall-clock self-time per component scope (telemetry plane: observe-only, excluded from digests, nondeterministic across runs)")
	)
	flag.Parse()

	if *list || *exp == "" {
		usage()
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	switch *coreName {
	case "wheel":
		sim.SetDefaultCore(sim.CoreWheel)
	case "heap":
		sim.SetDefaultCore(sim.CoreHeap)
	default:
		fmt.Fprintf(os.Stderr, "-core %q must be 'wheel' or 'heap'\n", *coreName)
		os.Exit(2)
	}

	csvDir = *csv
	if *traceFile != "" && *traceCap <= 0 {
		fmt.Fprintf(os.Stderr, "-trace-events %d must be positive\n", *traceCap)
		os.Exit(2)
	}
	if *ledgerCap <= 0 || *perfettoCap <= 0 {
		fmt.Fprintf(os.Stderr, "-ledger-events %d and -perfetto-events %d must be positive\n", *ledgerCap, *perfettoCap)
		os.Exit(2)
	}
	// The flight-recorder/registry/ledger sinks are shared mutable state
	// and force a sweep serial, so -serve only attaches them at -workers 1.
	// At higher worker counts -serve still exposes the atomics-backed
	// /perf.json and /campaign.json (the campaign dashboard), which work
	// mid-run at any fan-out; the network-observability endpoints answer
	// 503 in that mode.
	serveFull := *serveAddr != "" && *workers <= 1
	wantFlight := serveFull || *tsFile != "" || *spansFile != ""
	wantLedger := *explain || *ledgerFile != "" || serveFull
	wantPipeline := *perfettoFile != "" || serveFull
	if *statsFile != "" || *traceFile != "" || wantFlight || wantLedger || wantPipeline {
		obsSink = &experiments.Obs{}
		if *statsFile != "" || serveFull {
			// -serve needs a registry so /metrics has instruments to render.
			obsSink.Registry = obs.NewRegistry()
		}
		if *traceFile != "" || *explain {
			// -explain keeps a tracer so it can reconcile the ledger's
			// attribution against the transmission-side mark/drop counts.
			obsSink.Tracer = trace.New(*traceCap)
		}
		if wantLedger {
			obsSink.Ledger = trace.NewLedger(*ledgerCap)
			if obsSink.Registry != nil {
				obsSink.Ledger.Instrument(obsSink.Registry)
			}
		}
		if wantPipeline {
			obsSink.Pipeline = trace.NewPipeline(*perfettoCap)
		}
		if wantFlight {
			if *samplePeriod <= 0 {
				fmt.Fprintf(os.Stderr, "-sample-period %v must be positive\n", *samplePeriod)
				os.Exit(2)
			}
			obsSink.Flight = flight.New(flight.Config{
				Period:   sim.Time(samplePeriod.Nanoseconds()),
				Registry: obsSink.Registry,
				Ledger:   obsSink.Ledger,
				Pipeline: obsSink.Pipeline,
			})
		}
	}
	if *fpFile != "" {
		if *fpEpoch <= 0 {
			fmt.Fprintf(os.Stderr, "-fingerprint-epoch %v must be positive\n", *fpEpoch)
			os.Exit(2)
		}
		if obsSink == nil {
			obsSink = &experiments.Obs{}
		}
		// The digest seed is NOT the run seed: two runs with different
		// -seed values must still be comparable, so tcndiff can localize
		// where a seed perturbation first changes the simulation.
		obsSink.Fingerprint = digest.New(digest.Config{
			EpochNs:     fpEpoch.Nanoseconds(),
			Fine:        *fpFine >= 0,
			FineAtEpoch: *fpFine,
		})
	}
	if *profFile != "" || *profFolded != "" || *profWall {
		if obsSink == nil {
			obsSink = &experiments.Obs{}
		}
		// The wall clock is injected here for the same reason as the perf
		// campaign's below: internal packages may not call time.Now
		// (simclock lint). Without -profile-wall the profiler runs its
		// deterministic plane only.
		var pcfg prof.Config
		if *profWall {
			pcfg.Wall = func() int64 { return time.Now().UnixNano() }
		}
		obsSink.Profiler = prof.New(pcfg)
	}
	if *progress || *serveAddr != "" {
		// The self-telemetry campaign is atomics-only and never forces a
		// sweep serial, so -progress composes with -workers N. The wall
		// clock is injected here: internal packages may not call time.Now
		// (simclock lint).
		if obsSink == nil {
			obsSink = &experiments.Obs{}
		}
		obsSink.Perf = perf.NewCampaign(func() int64 { return time.Now().UnixNano() })
	}
	var profExp *profileExport
	if obsSink != nil && obsSink.Profiler != nil {
		profExp = &profileExport{}
	}
	if *serveAddr != "" {
		// The live endpoints read atomics-only snapshots; the flight
		// recorder's reservoir rand is touched by the sim goroutine alone.
		srv, err := startServer(*serveAddr, obsSink.Flight, obsSink.Perf, profExp) //tcnlint:goshare server reads atomic snapshots; the rand stays with the sim goroutine
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer waitForShutdown(srv)
	}
	cfg := runConfig{flows: *flows, loads: parseLoads(*loads), seed: *seed, full: *full, seeds: *seeds, workers: *workers, exactFCT: *exactFCT}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		usage()
		os.Exit(2)
	}
	if *progress {
		stop := startProgress(obsSink.Perf)
		run(cfg)
		stop()
	} else {
		run(cfg)
	}
	if obsSink != nil && obsSink.Flight != nil {
		obsSink.Flight.Seal()
	}
	if err := writeObsOutputs(*statsFile, *statsText, *traceFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := writeFlightOutputs(*tsFile, *spansFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := writeVerdictOutputs(*explain, *ledgerFile, *perfettoFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *fpFile != "" {
		if err := writeTo(*fpFile, obsSink.Fingerprint.WriteJSONL); err != nil {
			fmt.Fprintf(os.Stderr, "writing fingerprint: %v\n", err)
			os.Exit(1)
		}
	}
	if obsSink != nil && obsSink.Profiler != nil {
		if err := writeProfileOutputs(obsSink.Profiler, *profFile, *profFolded, profExp); err != nil {
			fmt.Fprintf(os.Stderr, "writing profile: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeProfileOutputs renders the cost profile once the run is complete:
// the -profile / -profile-folded files, plus an in-memory publication for
// the /profile.pb.gz and /profile.folded endpoints when -serve is active
// (the server keeps answering after the run, so a curl that raced the
// simulation gets the rendered bytes instead of a mid-run 503 forever).
func writeProfileOutputs(p *prof.Profiler, pbPath, foldedPath string, exp *profileExport) error {
	if pbPath != "" {
		if err := writeTo(pbPath, p.WritePprof); err != nil {
			return fmt.Errorf("pprof export: %w", err)
		}
	}
	if foldedPath != "" {
		if err := writeTo(foldedPath, p.WriteFolded); err != nil {
			return fmt.Errorf("folded export: %w", err)
		}
	}
	if exp != nil {
		var pb, folded bytes.Buffer
		if err := p.WritePprof(&pb); err != nil {
			return fmt.Errorf("pprof render: %w", err)
		}
		if err := p.WriteFolded(&folded); err != nil {
			return fmt.Errorf("folded render: %w", err)
		}
		exp.publish(pb.Bytes(), folded.Bytes())
	}
	return nil
}

// obsSink, when -stats or -trace is given, is handed to every runner that
// knows how to attach it; runners without instrumentation leave it empty.
var obsSink *experiments.Obs

// writeObsOutputs flushes the collected stats and trace after the run.
func writeObsOutputs(statsPath string, statsText bool, tracePath string) error {
	if obsSink == nil {
		return nil
	}
	if statsPath != "" {
		snap := obsSink.Registry.Snapshot()
		write := snap.WriteJSON
		if statsText {
			write = snap.WriteText
		}
		if err := writeTo(statsPath, write); err != nil {
			return fmt.Errorf("writing stats: %w", err)
		}
	}
	if tracePath != "" {
		if err := writeTo(tracePath, obsSink.Tracer.WriteJSONL); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	return nil
}

// writeFlightOutputs flushes the flight recorder's series and flow spans
// after the run (the recorder is sealed by then).
func writeFlightOutputs(tsPath, spansPath string) error {
	if obsSink == nil || obsSink.Flight == nil {
		return nil
	}
	if tsPath != "" {
		write := obsSink.Flight.WriteTimeseriesCSV
		if strings.HasSuffix(tsPath, ".json") {
			write = obsSink.Flight.WriteTimeseriesJSON
		}
		if err := writeTo(tsPath, write); err != nil {
			return fmt.Errorf("writing timeseries: %w", err)
		}
	}
	if spansPath != "" {
		if err := writeTo(spansPath, obsSink.Flight.Spans().WriteCSV); err != nil {
			return fmt.Errorf("writing flow spans: %w", err)
		}
	}
	return nil
}

// writeVerdictOutputs prints the -explain attribution report and flushes
// the -ledger / -perfetto exports after the run.
func writeVerdictOutputs(explain bool, ledgerPath, perfettoPath string) error {
	if obsSink == nil {
		return nil
	}
	if explain && obsSink.Ledger != nil {
		fmt.Println("\n== explain: mark/drop attribution ==")
		if err := obsSink.Ledger.WriteReport(os.Stdout); err != nil {
			return fmt.Errorf("writing explain report: %w", err)
		}
		if t := obsSink.Tracer; t != nil {
			lm, ld := obsSink.Ledger.Marked(), obsSink.Ledger.Dropped()
			tm, td := t.Count(trace.Mark), t.Count(trace.Drop)
			verdict := "exact"
			if lm != tm || ld != td {
				// Enqueue-marked packets still queued at the deadline have a
				// verdict but no transmission; a multi-hop fabric transmits a
				// CE packet once per hop, so the transmission-side counter
				// can also exceed the decision count.
				verdict = "residual: marks in flight at run end, or CE re-counted per hop"
			}
			fmt.Printf("reconcile: ledger marked=%d dropped=%d | trace mark=%d drop=%d (%s)\n",
				lm, ld, tm, td, verdict)
		}
	}
	if ledgerPath != "" && obsSink.Ledger != nil {
		if err := writeTo(ledgerPath, obsSink.Ledger.WriteJSONL); err != nil {
			return fmt.Errorf("writing ledger: %w", err)
		}
	}
	if perfettoPath != "" && obsSink.Pipeline != nil {
		if err := writeTo(perfettoPath, obsSink.Pipeline.WriteJSON); err != nil {
			return fmt.Errorf("writing perfetto trace: %w", err)
		}
	}
	return nil
}

func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type runConfig struct {
	flows    int
	loads    []float64
	seed     int64
	seeds    int
	full     bool
	workers  int
	exactFCT bool
}

func (c runConfig) testbedSweep() experiments.SweepConfig {
	sw := experiments.DefaultSweep()
	sw.Seed = c.seed
	sw.Obs = obsSink
	sw.Workers = c.workers
	sw.ExactFCT = c.exactFCT
	if c.full {
		sw.Flows = 5000
	} else {
		sw.Flows = 1500
		sw.Loads = []float64{0.5, 0.7, 0.9}
	}
	if c.flows > 0 {
		sw.Flows = c.flows
	}
	if c.loads != nil {
		sw.Loads = c.loads
	}
	return sw
}

func (c runConfig) leafSweep() experiments.LeafSpineSweepConfig {
	ls := experiments.LeafSpineSweepConfig{Seed: c.seed, Obs: obsSink, Workers: c.workers, ExactFCT: c.exactFCT}
	if c.full {
		ls.Flows = 50_000
		ls.Loads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
		ls.Leaves, ls.Spines, ls.HostsPerLeaf = 12, 12, 12
	} else {
		ls.Flows = 1200
		ls.Loads = []float64{0.5, 0.9}
		ls.Leaves, ls.Spines, ls.HostsPerLeaf = 4, 4, 4
	}
	if c.flows > 0 {
		ls.Flows = c.flows
	}
	if c.loads != nil {
		ls.Loads = c.loads
	}
	return ls
}

var runners map[string]func(runConfig)

func init() {
	runners = map[string]func(runConfig){
		"fig1":  runFig1,
		"fig2":  runFig2,
		"fig3":  runFig3,
		"fig4":  runFig4,
		"fig5a": runFig5a,
		"fig5b": runFig5b,
		"fig6":  func(c runConfig) { runSweepSeeds(c, experiments.RunFig6) },
		"fig7":  func(c runConfig) { runSweepSeeds(c, experiments.RunFig7) },
		"fig8":  func(c runConfig) { runSweepSeeds(c, experiments.RunFig8) },
		"fig9":  func(c runConfig) { runSweepSeeds(c, experiments.RunFig9) },
		"fig10": func(c runConfig) { lsw := experiments.RunFig10(c.leafSweep()); printLeafSweep(lsw); csvLeafSweep(lsw) },
		"fig11": func(c runConfig) { lsw := experiments.RunFig11(c.leafSweep()); printLeafSweep(lsw); csvLeafSweep(lsw) },
		"fig12": func(c runConfig) { lsw := experiments.RunFig12(c.leafSweep()); printLeafSweep(lsw); csvLeafSweep(lsw) },
		"fig13": func(c runConfig) { lsw := experiments.RunFig13(c.leafSweep()); printLeafSweep(lsw); csvLeafSweep(lsw) },
		"dcqcn": runDCQCN,
		"all-testbed": func(c runConfig) {
			for _, f := range []string{"fig1", "fig2", "fig3", "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9"} {
				runners[f](c)
			}
		},
		"all-sim": func(c runConfig) {
			for _, f := range []string{"fig10", "fig11", "fig12", "fig13"} {
				runners[f](c)
			}
		},
	}
}

func usage() {
	fmt.Println(`tcnsim — regenerate the TCN paper's figures on the built-in simulator

  fig1    per-port RED violates DWRR policy (goodput vs service-2 flows)
  fig2    Algorithm-1 departure-rate estimation vs MQ-ECN (queue-1 capacity)
  fig3    buffer occupancy: enqueue RED vs dequeue RED vs TCN
  fig4    the four workload CDFs
  fig5a   SP/WFQ goodput split under TCN (static flows)
  fig5b   RTT through the busy WFQ queue: TCN vs RED vs ideal vs CoDel
  fig6/7  isolation FCT sweep, DWRR / WFQ (testbed)
  fig8/9  prioritization (PIAS) FCT sweep, SP/DWRR / SP/WFQ (testbed)
  fig10+  leaf-spine FCT sweeps (DCTCP, WFQ, ECN*, 32 queues)
  dcqcn   DCQCN fairness: cut-off vs probabilistic TCN marking (§4.3)

Flags: -flows N  -loads 0.5,0.9  -seed S  -full (paper scale)
       -workers N (parallel sweep points; default GOMAXPROCS)
       -progress (periodic stderr line: cells, events/sec, ETA)
       -exact-fct (per-flow records + exact P99 instead of streaming t-digest)
       -stats FILE [-stats-text]  -trace FILE [-trace-events N]
       -explain (verdict-breakdown report: why each mark/drop happened)
       -ledger FILE [-ledger-events N]  (decision ledger, JSONL)
       -perfetto FILE [-perfetto-events N]  (pipeline spans, Perfetto JSON)
       -serve ADDR  -timeseries FILE[.json]  -flow-spans FILE
       -sample-period DUR
       -fingerprint FILE [-fingerprint-epoch DUR] [-fingerprint-fine EPOCH]
         (digest timeline for tcndiff; fine mode adds per-event digests
          around the named epoch to localize the first divergent event)
       -profile FILE  (sim-structured cost profile, gzip pprof protobuf:
          events + sim-time attributed to engine/port/qdisc/sched/marker/
          transport scopes; read with 'go tool pprof -top FILE')
       -profile-folded FILE  (same profile as folded flamegraph stacks;
          diff two runs with tcndiff -profile-a A -profile-b B)
       -profile-wall  (add wall-clock self-time per scope — telemetry
          only, never digested; the deterministic planes stay identical)
       -core wheel|heap  (engine event store; 'heap' is the differential
          oracle — same-seed runs must be fingerprint-identical to 'wheel')`)
}

func parseLoads(s string) []float64 {
	if s == "" {
		return nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad load %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func runFig1(c runConfig) {
	fmt.Println("== Figure 1: per-port ECN/RED violates the DWRR policy ==")
	for _, scheme := range []experiments.Scheme{experiments.SchemePortRED, experiments.SchemeTCN} {
		cfg := experiments.DefaultFig1()
		cfg.Scheme = scheme
		cfg.Seed = c.seed
		cfg.Obs = obsSink
		cfg.Workers = c.workers
		res := experiments.RunFig1(cfg)
		fmt.Printf("\n%s:\n%-10s %12s %12s %10s\n", scheme, "svc2 flows", "svc1 Mbps", "svc2 Mbps", "svc2 share")
		var rows [][]string
		for _, p := range res.Points {
			fmt.Printf("%-10d %12.0f %12.0f %9.0f%%\n",
				p.Service2Flows, p.Service1Mbps, p.Service2Mbps, 100*p.Service2Share)
			rows = append(rows, []string{
				strconv.Itoa(p.Service2Flows), ftoa(p.Service1Mbps),
				ftoa(p.Service2Mbps), ftoa(p.Service2Share),
			})
		}
		writeCSV("fig1-"+string(scheme)+".csv",
			[]string{"svc2_flows", "svc1_mbps", "svc2_mbps", "svc2_share"}, rows)
	}
}

func runFig2(c runConfig) {
	fmt.Println("== Figure 2: queue-1 capacity estimation after the 10ms step ==")
	cfg := experiments.DefaultFig2()
	cfg.Seed = c.seed
	cfg.Obs = obsSink
	res := experiments.RunFig2(cfg)
	fmt.Printf("%-14s %10s %12s %10s %10s %10s\n",
		"estimator", "samples/2ms", "converge", "min Gbps", "max Gbps", "final")
	for _, tr := range res.Traces {
		conv := "never"
		if tr.ConvergeTime > 0 {
			conv = tr.ConvergeTime.String()
		}
		fmt.Printf("%-14s %10d %12s %10.1f %10.1f %10.2f\n",
			tr.Scheme, tr.SamplesInWindow, conv, tr.MinGbps, tr.MaxGbps, tr.FinalGbps)
		csvSamples("fig2-"+tr.Scheme+"-smoothed.csv", "gbps", tr.Smoothed)
		if len(tr.Raw) > 0 {
			csvSamples("fig2-"+tr.Scheme+"-raw.csv", "gbps", tr.Raw)
		}
	}
}

func runFig3(c runConfig) {
	fmt.Println("== Figure 3: buffer occupancy by marking placement ==")
	cfg := experiments.DefaultFig3()
	cfg.Seed = c.seed
	cfg.Obs = obsSink
	res := experiments.RunFig3(cfg)
	fmt.Printf("BDP = %d bytes\n%-10s %12s %10s %14s %14s\n",
		res.BDP, "scheme", "peak bytes", "peak/BDP", "steady max", "steady mean")
	for _, tr := range res.Traces {
		fmt.Printf("%-10s %12d %10.2f %14d %14d\n",
			tr.Scheme, tr.PeakBytes, float64(tr.PeakBytes)/float64(res.BDP),
			tr.SteadyMaxBytes, tr.SteadyMeanBytes)
		csvSamples("fig3-"+string(tr.Scheme)+".csv", "occupancy_bytes", tr.Occupancy)
	}
}

func runFig4(runConfig) {
	fmt.Println("== Figure 4: workload flow-size CDFs ==")
	experiments.PrintWorkloads(os.Stdout)
}

func runFig5a(c runConfig) {
	fmt.Println("== Figure 5a: SP/WFQ goodput under TCN ==")
	cfg := experiments.DefaultFig5()
	cfg.Seed = c.seed
	res := experiments.RunFig5a(cfg)
	fmt.Printf("steady-state goodput: q1(SP)=%.0f q2(WFQ)=%.0f q3(WFQ)=%.0f Mbps\n",
		res.SteadyMbps[0], res.SteadyMbps[1], res.SteadyMbps[2])
	fmt.Println("goodput series (100ms bins, Mbps):")
	var rows [][]string
	for q := 0; q < 3; q++ {
		fmt.Printf("  q%d: ", q+1)
		for i, v := range res.GoodputMbps[q] {
			fmt.Printf("%4.0f ", v)
			for len(rows) <= i {
				rows = append(rows, []string{ftoa(float64(i) * 0.1), "", "", ""})
			}
			rows[i][q+1] = ftoa(v)
		}
		fmt.Println()
	}
	writeCSV("fig5a.csv", []string{"time_s", "q1_mbps", "q2_mbps", "q3_mbps"}, rows)
}

func runFig5b(c runConfig) {
	fmt.Println("== Figure 5b: RTT through the busy WFQ queue ==")
	fmt.Printf("%-10s %12s %12s %8s\n", "scheme", "mean RTT", "p99 RTT", "samples")
	for _, s := range []experiments.Scheme{
		experiments.SchemeTCN, experiments.SchemeRED,
		experiments.SchemeOracle, experiments.SchemeCoDel,
	} {
		cfg := experiments.DefaultFig5()
		cfg.Scheme = s
		cfg.Seed = c.seed
		res := experiments.RunFig5b(cfg)
		fmt.Printf("%-10s %12s %12s %8d\n", s, res.MeanRTT, res.P99RTT, len(res.Samples))
	}
}

func printFCTHeader() {
	fmt.Printf("%-8s %-7s %5s | %10s %10s %10s %10s | %6s %8s %7s\n",
		"scheme", "sched", "load", "avg all", "avg small", "p99 small", "avg large",
		"to(sm)", "drops", "unfin")
}

func printFCTRow(scheme, sched string, load float64, st metrics.FCTStats, drops, unfinished int) {
	fmt.Printf("%-8s %-7s %5.2f | %10v %10v %10v %10v | %6d %8d %7d\n",
		scheme, sched, load, st.AvgAll, st.AvgSmall, st.P99Small, st.AvgLarge,
		st.TimeoutsSmall, drops, unfinished)
}

// runSweepSeeds executes a testbed sweep once per seed, printing every
// run and a mean±stddev summary when more than one seed is requested.
func runSweepSeeds(c runConfig, run func(experiments.SweepConfig) experiments.FCTSweep) {
	var sweeps []experiments.FCTSweep
	for i := 0; i < c.seeds; i++ {
		sc := c.testbedSweep()
		sc.Seed = c.seed + int64(i)
		sweeps = append(sweeps, run(sc))
	}
	for _, sw := range sweeps {
		printSweep(sw)
		csvSweep(sw)
	}
	if len(sweeps) > 1 {
		printSeedSummary(sweeps)
	}
}

// printSeedSummary aggregates small-flow stats across seeds.
func printSeedSummary(sweeps []experiments.FCTSweep) {
	fmt.Printf("across %d seeds (mean\u00b1std of avg small / p99 small, us):\n", len(sweeps))
	ref := sweeps[0]
	for i, s := range ref.Schemes {
		for j, load := range ref.Loads {
			var avg, p99 []float64
			for _, sw := range sweeps {
				avg = append(avg, sw.Cells[i][j].Stats.AvgSmall.Microseconds())
				p99 = append(p99, sw.Cells[i][j].Stats.P99Small.Microseconds())
			}
			am, as := meanStd(avg)
			pm, ps := meanStd(p99)
			fmt.Printf("  %-8s load %.1f: %8.0f\u00b1%-7.0f %8.0f\u00b1%-7.0f\n", s, load, am, as, pm, ps)
		}
	}
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

func printSweep(sw experiments.FCTSweep) {
	fmt.Printf("== %s: FCT sweep over %s ==\n", sw.Figure, sw.Sched)
	printFCTHeader()
	for i, s := range sw.Schemes {
		for j, load := range sw.Loads {
			cell := sw.Cells[i][j]
			printFCTRow(string(s), string(sw.Sched), load, cell.Stats, cell.Drops, cell.Unfinished)
		}
	}
	printNormalized(sw)
}

func printNormalized(sw experiments.FCTSweep) {
	tcnRow := -1
	for i, s := range sw.Schemes {
		if s == experiments.SchemeTCN {
			tcnRow = i
		}
	}
	if tcnRow < 0 {
		return
	}
	fmt.Println("normalized to TCN (avg small / p99 small / avg large):")
	for i, s := range sw.Schemes {
		fmt.Printf("  %-8s", s)
		for j, load := range sw.Loads {
			n := sw.Cells[i][j].Stats.Normalize(sw.Cells[tcnRow][j].Stats)
			fmt.Printf("  load %.1f: %.2f/%.2f/%.2f", load, n.AvgSmall, n.P99Small, n.AvgLarge)
		}
		fmt.Println()
	}
}

func runDCQCN(c runConfig) {
	fmt.Println("== DCQCN under TCN marking: cut-off vs probabilistic (§4.3) ==")
	cfg := experiments.DefaultDCQCNSweep()
	cfg.Base.Seed = c.seed
	cfg.Base.Obs = obsSink
	cfg.Workers = c.workers
	sw := experiments.RunDCQCNSweep(cfg)
	fmt.Printf("%-14s %8s %8s %10s %12s %12s %8s\n",
		"marker", "senders", "jain", "agg Gbps", "queue mean", "queue std", "CNPs")
	var rows [][]string
	for r, row := range [][]experiments.DCQCNMarkingResult{sw.CutOff, sw.Probabilistic} {
		name := "cut-off"
		if r == 1 {
			name = "probabilistic"
		}
		for i, res := range row {
			fmt.Printf("%-14s %8d %8.4f %10.2f %12.0f %12.0f %8d\n",
				name, sw.Senders[i], res.Jain, res.AggGbps, res.QueueMean, res.QueueStd, res.CNPs)
			rows = append(rows, []string{
				name, strconv.Itoa(sw.Senders[i]), ftoa(res.Jain),
				ftoa(res.AggGbps), ftoa(res.QueueMean), ftoa(res.QueueStd), strconv.Itoa(res.CNPs),
			})
		}
	}
	writeCSV("dcqcn.csv",
		[]string{"marker", "senders", "jain", "agg_gbps", "queue_mean_bytes", "queue_std_bytes", "cnps"}, rows)
}

func printLeafSweep(sw experiments.LeafSpineSweep) {
	fmt.Printf("== %s: leaf-spine FCT sweep over %s ==\n", sw.Figure, sw.Sched)
	printFCTHeader()
	for i, s := range sw.Schemes {
		for j, load := range sw.Loads {
			cell := sw.Cells[i][j]
			printFCTRow(string(s), string(sw.Sched), load, cell.Stats, cell.Drops, cell.Unfinished)
		}
	}
}
