package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tcn/internal/obs/flight"
)

// TestServeWithoutRecorder503 pins the parallel-sweep contract: the
// flight endpoints answer 503 with a JSON body naming the cause and the
// exact remedy (-workers 1), not a bare status line.
func TestServeWithoutRecorder503(t *testing.T) {
	mux := newServeMux(nil, nil)
	for _, path := range []string{"/metrics", "/timeseries.csv", "/flows.csv", "/ledger.jsonl", "/trace.perfetto.json"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, req)
		if rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, want 503", path, rr.Code)
		}
		if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s: content type %q, want JSON", path, ct)
		}
		var body struct {
			Error  string `json:"error"`
			Cause  string `json:"cause"`
			Remedy string `json:"remedy"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: body is not JSON: %v\n%s", path, err, rr.Body.String())
		}
		if body.Error == "" || body.Cause == "" {
			t.Fatalf("%s: body missing error/cause: %+v", path, body)
		}
		if !strings.Contains(body.Remedy, "-workers 1") {
			t.Fatalf("%s: remedy does not name the fix: %q", path, body.Remedy)
		}
	}
}

// TestServeWithSealedRecorder200 is the positive half: a sealed recorder
// serves its final exposition immediately.
func TestServeWithSealedRecorder200(t *testing.T) {
	rec := flight.New(flight.Config{})
	rec.Series("test.series").Record(0, 1.0)
	rec.Seal()
	mux := newServeMux(rec, nil)
	req := httptest.NewRequest(http.MethodGet, "/timeseries.csv", nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "test.series") {
		t.Fatalf("timeseries body missing the registered series:\n%s", rr.Body.String())
	}
}
