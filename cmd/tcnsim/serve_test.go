package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tcn/internal/obs/flight"
)

// get503Body asserts path answers 503 with the machine-readable JSON
// payload and returns it.
func get503Body(t *testing.T, mux *http.ServeMux, path string) unavailableBody {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("%s: status %d, want 503", path, rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("%s: content type %q, want JSON", path, ct)
	}
	var body unavailableBody
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: body is not JSON: %v\n%s", path, err, rr.Body.String())
	}
	if body.Error == "" || body.Cause == "" {
		t.Fatalf("%s: body missing error/cause: %+v", path, body)
	}
	return body
}

// TestServeWithoutRecorder503 pins the parallel-sweep contract: the
// flight endpoints answer 503 with a JSON body naming the cause and the
// exact remedy (-workers 1), not a bare status line.
func TestServeWithoutRecorder503(t *testing.T) {
	mux := newServeMux(nil, nil, nil)
	for _, path := range []string{"/metrics", "/timeseries.csv", "/flows.csv", "/ledger.jsonl", "/trace.perfetto.json"} {
		body := get503Body(t, mux, path)
		if !strings.Contains(body.Remedy, "-workers 1") {
			t.Fatalf("%s: remedy does not name the fix: %q", path, body.Remedy)
		}
	}
}

// TestServeWithoutProfiler503 pins the same contract for the cost-profile
// endpoints: a run started without -profile answers with the flag that
// fixes it, not a bare status line.
func TestServeWithoutProfiler503(t *testing.T) {
	mux := newServeMux(nil, nil, nil)
	for _, path := range []string{"/profile.pb.gz", "/profile.folded"} {
		body := get503Body(t, mux, path)
		if !strings.Contains(body.Remedy, "-profile") {
			t.Fatalf("%s: remedy does not name the fix: %q", path, body.Remedy)
		}
	}
}

// TestServeProfileMidRun503 covers the window between server start and run
// completion: the profiler is attached but no export has been published
// yet, so the endpoints say the run is still executing.
func TestServeProfileMidRun503(t *testing.T) {
	mux := newServeMux(nil, nil, &profileExport{})
	for _, path := range []string{"/profile.pb.gz", "/profile.folded"} {
		body := get503Body(t, mux, path)
		if !strings.Contains(body.Cause, "still executing") {
			t.Fatalf("%s: cause does not explain the wait: %q", path, body.Cause)
		}
	}
}

// TestServeProfilePublished200 is the positive half: once the sim
// goroutine publishes the rendered exports, both endpoints serve the
// exact bytes.
func TestServeProfilePublished200(t *testing.T) {
	exp := &profileExport{}
	exp.publish([]byte("pprof-bytes"), []byte("engine;port 3\n"))
	mux := newServeMux(nil, nil, exp)
	for path, want := range map[string]string{
		"/profile.pb.gz":  "pprof-bytes",
		"/profile.folded": "engine;port 3\n",
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			t.Fatalf("%s: status %d, want 200: %s", path, rr.Code, rr.Body.String())
		}
		if rr.Body.String() != want {
			t.Fatalf("%s: body %q, want %q", path, rr.Body.String(), want)
		}
	}
}

// TestServeWithSealedRecorder200 is the positive half: a sealed recorder
// serves its final exposition immediately.
func TestServeWithSealedRecorder200(t *testing.T) {
	rec := flight.New(flight.Config{})
	rec.Series("test.series").Record(0, 1.0)
	rec.Seal()
	mux := newServeMux(rec, nil, nil)
	req := httptest.NewRequest(http.MethodGet, "/timeseries.csv", nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "test.series") {
		t.Fatalf("timeseries body missing the registered series:\n%s", rr.Body.String())
	}
}
