// Command tcndiff compares two simulator runs and localizes their first
// divergence.
//
// Usage:
//
//	tcnsim -exp fig6 -seed 7 -fingerprint a.jsonl
//	tcnsim -exp fig6 -seed 7 -fingerprint b.jsonl
//	tcndiff a.jsonl b.jsonl
//
// The inputs are fingerprint timelines written by `tcnsim -fingerprint`:
// per-component chained digests snapshotted at sim-time epochs. tcndiff
// binary-searches each digest chain for the first mismatching epoch and
// reports the earliest (epoch, component) divergence; when the timelines
// carry per-event fine records (a `-fingerprint-fine` rerun bracketed
// around that epoch), it also binary-searches those and reports the first
// divergent event index.
//
// Optionally it also diffs flight-recorder time series CSVs
// (-series-a/-series-b), decision-ledger JSONL reason tables
// (-ledger-a/-ledger-b), and folded cost profiles written by
// `tcnsim -profile-folded` (-profile-a/-profile-b), reporting the top
// per-stack cost regressions largest-|Δ| first.
//
// Exit status: 0 when every requested comparison matches, 1 when any
// diverges, 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"tcn/internal/digest"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit the report as JSON instead of text")
		seriesA = flag.String("series-a", "", "flight-recorder timeseries CSV of run A (from tcnsim -timeseries)")
		seriesB = flag.String("series-b", "", "flight-recorder timeseries CSV of run B")
		ledgerA = flag.String("ledger-a", "", "decision-ledger JSONL of run A (from tcnsim -ledger)")
		ledgerB = flag.String("ledger-b", "", "decision-ledger JSONL of run B")
		profA   = flag.String("profile-a", "", "folded cost profile of run A (from tcnsim -profile-folded)")
		profB   = flag.String("profile-b", "", "folded cost profile of run B")
		profTop = flag.Int("profile-top", 20, "cost-regression stacks printed by the text report (all differing stacks count toward the exit status)")
	)
	flag.Usage = usage
	flag.Parse()

	if (*seriesA == "") != (*seriesB == "") || (*ledgerA == "") != (*ledgerB == "") || (*profA == "") != (*profB == "") {
		fmt.Fprintln(os.Stderr, "tcndiff: -series-a/-series-b, -ledger-a/-ledger-b, and -profile-a/-profile-b must be given in pairs")
		os.Exit(2)
	}
	haveFP := flag.NArg() == 2
	if !haveFP && flag.NArg() != 0 {
		usage()
		os.Exit(2)
	}
	if !haveFP && *seriesA == "" && *ledgerA == "" && *profA == "" {
		usage()
		os.Exit(2)
	}

	out := report{Identical: true}

	if haveFP {
		a, err := readTimeline(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		b, err := readTimeline(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		rep := digest.Compare(a, b)
		out.RecordsA, out.RecordsB = rep.RecordsA, rep.RecordsB
		out.FineA, out.FineB = len(a.Fine), len(b.Fine)
		if !rep.Identical {
			out.Identical = false
			out.Divergence = rep.Divergence
		}
	}
	if *seriesA != "" {
		deltas, err := diffSeries(*seriesA, *seriesB)
		if err != nil {
			fatal(err)
		}
		out.Series = deltas
		for _, d := range deltas {
			if !d.clean() {
				out.Identical = false
			}
		}
	}
	if *ledgerA != "" {
		deltas, err := diffLedgers(*ledgerA, *ledgerB)
		if err != nil {
			fatal(err)
		}
		out.Ledger = deltas
		if len(deltas) > 0 {
			out.Identical = false
		}
	}
	if *profA != "" {
		stacks, deltas, err := diffProfiles(*profA, *profB)
		if err != nil {
			fatal(err)
		}
		out.haveProfile = true
		out.ProfileStacks = stacks
		out.Profile = deltas
		out.ProfileTop = *profTop
		if len(deltas) > 0 {
			out.Identical = false
		}
	}

	if *jsonOut {
		if err := out.writeJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		out.writeText(os.Stdout, haveFP)
	}
	if !out.Identical {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tcndiff: %v\n", err)
	os.Exit(2)
}

func readTimeline(path string) (*digest.Timeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tl, err := digest.ReadTimeline(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tl, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `tcndiff — localize the first divergence between two simulator runs

  tcndiff [flags] a.jsonl b.jsonl

The positional arguments are fingerprint timelines from
`+"`tcnsim -fingerprint FILE`"+`. The first mismatching (epoch, component)
is found by binary search over the chained digests; rerun both sides with
`+"`-fingerprint-fine EPOCH`"+` at the reported epoch to narrow the divergence
to an exact event index.

Flags:
  -json        machine-readable report on stdout
  -series-a/-series-b FILE   diff flight-recorder timeseries CSVs
                             (per-series max-delta summary)
  -ledger-a/-ledger-b FILE   diff decision-ledger reason tables
  -profile-a/-profile-b FILE diff folded cost profiles (from tcnsim
                             -profile-folded): top cost regressions per
                             component stack, largest |Δ| first
  -profile-top N             stacks shown by the text report (default 20)

Exit: 0 identical, 1 divergent, 2 bad input.`)
}
