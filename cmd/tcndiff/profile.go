package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// profileDelta is one component stack whose cost differs between the two
// runs' folded cost profiles (tcnsim -profile-folded).
type profileDelta struct {
	stack              string
	va, vb             int64
	presentA, presentB bool
}

func (p profileDelta) delta() int64 { return p.vb - p.va }

// readFolded parses a folded-stacks export: one `frame;frame;... value`
// line per component stack, the value being executed events (or wall
// nanoseconds under -profile-wall). Frames never contain spaces, so the
// value is everything after the last space.
func readFolded(path string) (map[string]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	out := map[string]int64{}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		i := strings.LastIndexByte(text, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("%s: line %d: malformed folded line %q", path, line, text)
		}
		v, err := strconv.ParseInt(text[i+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: line %d: bad value %q", path, line, text[i+1:])
		}
		if _, dup := out[text[:i]]; dup {
			return nil, fmt.Errorf("%s: line %d: duplicate stack %q", path, line, text[:i])
		}
		out[text[:i]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// diffProfiles compares two folded cost profiles and returns the total
// stack count plus every differing stack, largest |Δ| first (ties broken
// by stack name so the report is deterministic). A stack missing from one
// side counts as cost 0 there and is annotated in the text report.
func diffProfiles(pathA, pathB string) (stacks int, deltas []profileDelta, err error) {
	a, err := readFolded(pathA)
	if err != nil {
		return 0, nil, err
	}
	b, err := readFolded(pathB)
	if err != nil {
		return 0, nil, err
	}
	names := make([]string, 0, len(a)+len(b))
	//tcnlint:ordered names are sorted below
	for s := range a {
		names = append(names, s)
	}
	//tcnlint:ordered names are sorted below
	for s := range b {
		if _, ok := a[s]; !ok {
			names = append(names, s)
		}
	}
	sort.Strings(names)
	for _, s := range names {
		va, inA := a[s]
		vb, inB := b[s]
		if inA && inB && va == vb {
			continue
		}
		deltas = append(deltas, profileDelta{stack: s, va: va, vb: vb, presentA: inA, presentB: inB})
	}
	sort.SliceStable(deltas, func(i, j int) bool {
		di, dj := deltas[i].delta(), deltas[j].delta()
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di > dj
		}
		return deltas[i].stack < deltas[j].stack
	})
	return len(names), deltas, nil
}
