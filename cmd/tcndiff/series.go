package main

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// seriesDelta summarizes one flight-recorder series across the two runs.
type seriesDelta struct {
	name               string
	pointsA, pointsB   int
	maxDelta           float64
	maxAt              int64
	misaligned         bool // sample timestamps disagree at some index
	presentA, presentB bool
}

// clean reports whether the series matched exactly.
func (s seriesDelta) clean() bool {
	return s.presentA && s.presentB && !s.misaligned &&
		s.pointsA == s.pointsB && s.maxDelta == 0 //tcnlint:floatexact exact-match test: any nonzero delta is a difference
}

type seriesPoint struct {
	at int64
	v  float64
}

// readSeriesCSV parses a `series,time_ns,value` CSV (the tcnsim
// -timeseries export) into per-series point lists, preserving
// first-appearance order of the series names.
func readSeriesCSV(path string) (map[string][]seriesPoint, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	byName := map[string][]seriesPoint{}
	var order []string
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if line == 1 {
			if text != "series,time_ns,value" {
				return nil, nil, fmt.Errorf("%s: not a timeseries CSV (header %q)", path, text)
			}
			continue
		}
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, ",", 3)
		if len(parts) != 3 {
			return nil, nil, fmt.Errorf("%s: line %d: malformed row %q", path, line, text)
		}
		at, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: line %d: bad time %q", path, line, parts[1])
		}
		v, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: line %d: bad value %q", path, line, parts[2])
		}
		if _, ok := byName[parts[0]]; !ok {
			order = append(order, parts[0])
		}
		byName[parts[0]] = append(byName[parts[0]], seriesPoint{at: at, v: v})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return byName, order, nil
}

// diffSeries compares two timeseries exports per series: point counts,
// timestamp alignment, and the maximum absolute value delta over the
// aligned prefix. Series are reported in run A's order, with run-B-only
// series appended in B's order.
func diffSeries(pathA, pathB string) ([]seriesDelta, error) {
	a, orderA, err := readSeriesCSV(pathA)
	if err != nil {
		return nil, err
	}
	b, orderB, err := readSeriesCSV(pathB)
	if err != nil {
		return nil, err
	}
	var out []seriesDelta
	for _, name := range orderA {
		d := seriesDelta{name: name, presentA: true}
		pa := a[name]
		d.pointsA = len(pa)
		pb, ok := b[name]
		if ok {
			d.presentB = true
			d.pointsB = len(pb)
			n := len(pa)
			if len(pb) < n {
				n = len(pb)
			}
			for i := 0; i < n; i++ {
				if pa[i].at != pb[i].at {
					d.misaligned = true
					break
				}
				if delta := math.Abs(pa[i].v - pb[i].v); delta > d.maxDelta {
					d.maxDelta = delta
					d.maxAt = pa[i].at
				}
			}
		}
		out = append(out, d)
	}
	for _, name := range orderB {
		if _, ok := a[name]; !ok {
			out = append(out, seriesDelta{name: name, presentB: true, pointsB: len(b[name])})
		}
	}
	return out, nil
}
