package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// ledgerDelta is one (port, queue, reason) cell whose exact decision
// counts differ between the runs.
type ledgerDelta struct {
	where  string
	queue  int
	reason string
	na, nb int64
}

// ledgerCellKey addresses one exact-counter line of a ledger export.
type ledgerCellKey struct {
	where  string
	queue  int
	reason string
}

// readLedgerCounts extracts the {"count":true,...} exact-counter lines
// from a tcnsim -ledger JSONL export; verdict and summary lines are
// skipped.
func readLedgerCounts(path string) (map[ledgerCellKey]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	out := map[ledgerCellKey]int64{}
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l struct {
			Count  bool   `json:"count"`
			Where  string `json:"where"`
			Queue  int    `json:"queue"`
			Reason string `json:"reason"`
			N      int64  `json:"n"`
		}
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("%s: line %d: %w", path, line, err)
		}
		if !l.Count {
			continue
		}
		out[ledgerCellKey{where: l.Where, queue: l.Queue, reason: l.Reason}] = l.N
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// diffLedgers compares the exact reason tables of two ledger exports and
// returns every differing cell in (where, queue, reason) order. Cells
// present in only one run compare against zero.
func diffLedgers(pathA, pathB string) ([]ledgerDelta, error) {
	a, err := readLedgerCounts(pathA)
	if err != nil {
		return nil, err
	}
	b, err := readLedgerCounts(pathB)
	if err != nil {
		return nil, err
	}
	keySet := map[ledgerCellKey]bool{}
	//tcnlint:ordered keys are collected then sorted below
	for k := range a {
		keySet[k] = true
	}
	//tcnlint:ordered keys are collected then sorted below
	for k := range b {
		keySet[k] = true
	}
	keys := make([]ledgerCellKey, 0, len(keySet))
	//tcnlint:ordered keys are sorted before use
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		x, y := keys[i], keys[j]
		if x.where != y.where {
			return x.where < y.where
		}
		if x.queue != y.queue {
			return x.queue < y.queue
		}
		return x.reason < y.reason
	})
	var out []ledgerDelta
	for _, k := range keys {
		if a[k] != b[k] {
			out = append(out, ledgerDelta{where: k.where, queue: k.queue, reason: k.reason, na: a[k], nb: b[k]})
		}
	}
	return out, nil
}
