package main

import (
	"encoding/json"
	"fmt"
	"io"

	"tcn/internal/digest"
)

// report aggregates every requested comparison.
type report struct {
	Identical          bool
	RecordsA, RecordsB int
	FineA, FineB       int
	Divergence         *digest.Divergence
	Series             []seriesDelta
	Ledger             []ledgerDelta

	// haveProfile distinguishes "no -profile-a/-b requested" from "profiles
	// identical" (Profile is empty either way).
	haveProfile   bool
	ProfileStacks int
	Profile       []profileDelta
	ProfileTop    int
}

// divergenceJSON is the machine-readable divergence. Digests travel as
// 16-hex strings like the timeline wire form; epoch/event are -1 when the
// divergence kind does not define them.
type divergenceJSON struct {
	Kind      string `json:"kind"`
	Scope     string `json:"scope,omitempty"`
	Component string `json:"component,omitempty"`
	Label     string `json:"label,omitempty"`
	Epoch     int64  `json:"epoch"`
	AtNs      int64  `json:"at_ns"`
	Event     int64  `json:"event"`
	EventAtNs int64  `json:"event_at_ns"`
	DigestA   string `json:"digest_a,omitempty"`
	DigestB   string `json:"digest_b,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

type seriesDeltaJSON struct {
	Series   string  `json:"series"`
	PointsA  int     `json:"points_a"`
	PointsB  int     `json:"points_b"`
	MaxDelta float64 `json:"max_delta"`
	AtNs     int64   `json:"max_delta_at_ns"`
}

type ledgerDeltaJSON struct {
	Where  string `json:"where"`
	Queue  int    `json:"queue"`
	Reason string `json:"reason"`
	NA     int64  `json:"n_a"`
	NB     int64  `json:"n_b"`
}

type profileDeltaJSON struct {
	Stack  string `json:"stack"`
	ValueA int64  `json:"value_a"`
	ValueB int64  `json:"value_b"`
	Delta  int64  `json:"delta"`
}

type reportJSON struct {
	Identical     bool               `json:"identical"`
	RecordsA      int                `json:"records_a"`
	RecordsB      int                `json:"records_b"`
	FineA         int                `json:"fine_a,omitempty"`
	FineB         int                `json:"fine_b,omitempty"`
	Divergence    *divergenceJSON    `json:"divergence,omitempty"`
	Series        []seriesDeltaJSON  `json:"series,omitempty"`
	Ledger        []ledgerDeltaJSON  `json:"ledger,omitempty"`
	ProfileStacks int                `json:"profile_stacks,omitempty"`
	Profile       []profileDeltaJSON `json:"profile,omitempty"`
}

func (r report) writeJSON(w io.Writer) error {
	j := reportJSON{
		Identical: r.Identical,
		RecordsA:  r.RecordsA, RecordsB: r.RecordsB,
		FineA: r.FineA, FineB: r.FineB,
	}
	if d := r.Divergence; d != nil {
		dj := &divergenceJSON{
			Kind: d.Kind, Scope: d.Scope, Label: d.Label,
			Epoch: d.Epoch, AtNs: d.At, Event: d.Event, EventAtNs: d.EventAt,
			Detail: d.Detail,
		}
		switch d.Kind {
		case "epoch", "shape":
			dj.Component = d.Component.String()
		}
		if d.Kind == "epoch" {
			dj.DigestA = fmt.Sprintf("%016x", d.DigestA)
			dj.DigestB = fmt.Sprintf("%016x", d.DigestB)
		} else if d.Kind == "header" || d.Kind == "fine" {
			dj.Epoch = -1
		}
		j.Divergence = dj
	}
	for _, s := range r.Series {
		j.Series = append(j.Series, seriesDeltaJSON{
			Series: s.name, PointsA: s.pointsA, PointsB: s.pointsB,
			MaxDelta: s.maxDelta, AtNs: s.maxAt,
		})
	}
	for _, l := range r.Ledger {
		j.Ledger = append(j.Ledger, ledgerDeltaJSON{
			Where: l.where, Queue: l.queue, Reason: l.reason, NA: l.na, NB: l.nb,
		})
	}
	j.ProfileStacks = r.ProfileStacks
	for _, p := range r.Profile {
		j.Profile = append(j.Profile, profileDeltaJSON{
			Stack: p.stack, ValueA: p.va, ValueB: p.vb, Delta: p.delta(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

func (r report) writeText(w io.Writer, haveFP bool) {
	if haveFP {
		if r.Divergence == nil {
			fmt.Fprintf(w, "fingerprints identical (%d records", r.RecordsA)
			if r.FineA > 0 {
				fmt.Fprintf(w, ", %d fine records", r.FineA)
			}
			fmt.Fprintln(w, ")")
			if r.RecordsA == 0 {
				fmt.Fprintln(w, "  warning: the timelines carry no epoch records — the experiment may not support fingerprinting")
			}
		} else {
			d := r.Divergence
			fmt.Fprintf(w, "runs diverge: %s\n", d)
			if d.Kind == "epoch" && d.Event < 0 {
				fmt.Fprintf(w, "  to localize the exact event, rerun both sides with: tcnsim ... -fingerprint-fine %d\n", d.Epoch)
			}
		}
	}
	if r.Series != nil {
		dirty := 0
		for _, s := range r.Series {
			if !s.clean() {
				dirty++
			}
		}
		fmt.Fprintf(w, "timeseries: %d series compared, %d differ\n", len(r.Series), dirty)
		for _, s := range r.Series {
			if s.clean() {
				continue
			}
			if s.pointsA != s.pointsB {
				fmt.Fprintf(w, "  %-40s points %d vs %d", s.name, s.pointsA, s.pointsB)
			} else {
				fmt.Fprintf(w, "  %-40s", s.name)
			}
			if s.maxDelta > 0 {
				fmt.Fprintf(w, "  max |Δ| %g at t=%dns", s.maxDelta, s.maxAt)
			}
			fmt.Fprintln(w)
		}
	}
	if r.Ledger != nil {
		if len(r.Ledger) == 0 {
			fmt.Fprintln(w, "ledger reason tables identical")
		} else {
			fmt.Fprintf(w, "ledger: %d (port, queue, reason) cells differ\n", len(r.Ledger))
			for _, l := range r.Ledger {
				fmt.Fprintf(w, "  %s q%d %-24s %d vs %d (Δ%+d)\n",
					l.where, l.queue, l.reason, l.na, l.nb, l.nb-l.na)
			}
		}
	}
	if r.haveProfile {
		if len(r.Profile) == 0 {
			fmt.Fprintf(w, "cost profiles identical (%d stacks)\n", r.ProfileStacks)
		} else {
			fmt.Fprintf(w, "cost profile: %d of %d stacks differ; top regressions by |Δ|:\n",
				len(r.Profile), r.ProfileStacks)
			shown := r.Profile
			if r.ProfileTop > 0 && len(shown) > r.ProfileTop {
				shown = shown[:r.ProfileTop]
			}
			for _, p := range shown {
				note := ""
				if !p.presentA {
					note = "  (B only)"
				} else if !p.presentB {
					note = "  (A only)"
				}
				fmt.Fprintf(w, "  %-60s %12d vs %-12d Δ%+d%s\n",
					p.stack, p.va, p.vb, p.delta(), note)
			}
			if len(r.Profile) > len(shown) {
				fmt.Fprintf(w, "  ... %d more (raise -profile-top or use -json)\n", len(r.Profile)-len(shown))
			}
		}
	}
}
