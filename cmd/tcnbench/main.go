// Command tcnbench captures a machine-readable performance baseline: it
// runs the repository's benchmarks through `go test -bench`, parses the
// standard benchmark output, and writes one JSON document with every
// reported metric (ns/op, B/op, allocs/op, and the benches' custom
// metrics). Committed snapshots (BENCH_pr4.json, ...) give future changes a
// trajectory to compare against.
//
// Usage:
//
//	go run ./cmd/tcnbench [-bench REGEX] [-benchtime 1x] [-count 1] [-o FILE]
//	    [-diff BASELINE] [-allow-config-drift] [-min-speedup Bench:metric:factor]...
//	    [-profile-dir DIR]
//
// With -diff, the fresh results are compared against a committed baseline
// and the run fails on a regression in the steady-state packet path: any
// growth in allocs/op (the hot path is pinned at zero), more than 25% in
// ns/op, or more than a 25% drop in events/sec (ROADMAP item 2's ratchet
// metric; skipped with a note against baselines that predate it). The
// profiled packet path (BenchmarkPacketPathProfiled) carries its own,
// tighter gate — 5% ns/op and zero alloc growth — so the cost profiler's
// attribution plane stays cheap enough to leave on. The
// best value across -count repeats is compared on both sides (minimum
// for costs, maximum for throughput), damping single-iteration noise.
// The comparison itself is embedded in the written JSON as a "diff"
// object, one speedup line per benchmark, so a committed snapshot records
// not just its numbers but how they stood against the previous baseline.
//
// A baseline recorded under a different -bench regex or -benchtime is not
// comparable number-for-number; -diff refuses such a baseline unless
// -allow-config-drift is given (the drift is then recorded in the diff
// object).
//
// Repeatable -min-speedup gates turn expected improvements into CI
// failures when they evaporate: "-min-speedup BenchmarkEngineThroughput:ns/op:1.4"
// fails the diff unless the current run is at least 1.4x faster than the
// baseline on that metric (for /sec metrics the ratio is new/old instead).
//
// With -profile-dir DIR, the benchmark child process runs under go test's
// -cpuprofile/-memprofile and the resulting cpu.pb.gz / mem.pb.gz land in
// DIR, attaching a wall-clock profile to the captured baseline. go test
// rejects -cpuprofile across multiple packages, so the option narrows
// -pkgs to the root suite unless the caller already chose one package.
// (For sim-structured cost profiles keyed to component scopes, use
// `tcnsim -profile` instead — see EXPERIMENTS.md "Profiling a run".)
//
// The default selection runs the perf-critical benches — the engine core,
// the timing-wheel microbenches, the steady-state packet path (bare and
// profiler-attached), and the parallel sweep at workers=1..4 — rather
// than every figure reproduction, so a baseline capture stays in the
// minutes range.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line: its name (CPU suffix stripped), iteration
// count, the benchtime it ran under, and every "value unit" metric pair
// that followed.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	BenchTime  string             `json:"benchtime,omitempty"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Speedup is one benchmark-vs-baseline comparison line. Speedup > 1 means
// the current run improved: old/new for cost metrics (ns/op), new/old for
// rate metrics (events/sec).
type Speedup struct {
	Name    string  `json:"name"`
	Metric  string  `json:"metric"`
	Old     float64 `json:"old"`
	New     float64 `json:"new"`
	Speedup float64 `json:"speedup"`
}

// DiffReport is the embedded record of a -diff comparison.
type DiffReport struct {
	Baseline    string    `json:"baseline"`
	ConfigDrift bool      `json:"config_drift,omitempty"`
	Speedups    []Speedup `json:"speedups"`
	GateError   string    `json:"gate_error,omitempty"`
}

// Baseline is the document tcnbench writes.
type Baseline struct {
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	NumCPU    int         `json:"num_cpu"`
	Bench     string      `json:"bench_regex"`
	BenchTime string      `json:"benchtime"`
	Results   []Result    `json:"results"`
	Diff      *DiffReport `json:"diff,omitempty"`
}

// minGate is one parsed -min-speedup requirement.
type minGate struct {
	name   string
	metric string
	factor float64
}

// minGates collects repeatable -min-speedup flags.
type minGates []minGate

func (m *minGates) String() string { return fmt.Sprintf("%v", []minGate(*m)) }

func (m *minGates) Set(s string) error {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 {
		return fmt.Errorf("want Bench:metric:factor, got %q", s)
	}
	f, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || f <= 0 {
		return fmt.Errorf("bad factor in %q", s)
	}
	*m = append(*m, minGate{parts[0], parts[1], f})
	return nil
}

func main() {
	var gates minGates
	var (
		benchRe = flag.String("bench",
			"BenchmarkEngine|BenchmarkWheel|BenchmarkSweepParallel|BenchmarkPacketPathSteadyState|BenchmarkPacketPathProfiled|BenchmarkFig6IsolationDWRR|BenchmarkPerfCampaignRecord|BenchmarkTDigestAdd",
			"benchmark selection regex passed to go test")
		benchTime  = flag.String("benchtime", "1x", "value for -benchtime")
		count      = flag.Int("count", 1, "value for -count")
		out        = flag.String("o", "-", "output file ('-' = stdout)")
		pkgs       = flag.String("pkgs", "./...", "packages to bench")
		diffBase   = flag.String("diff", "", "baseline JSON to diff against; exits nonzero on a packet-path regression")
		allowDrift = flag.Bool("allow-config-drift", false,
			"permit -diff against a baseline recorded with a different bench regex or benchtime")
	)
	flag.Var(&gates, "min-speedup",
		"repeatable Bench:metric:factor gate; the diff fails unless the current run beats the baseline by the factor")
	profileDir := flag.String("profile-dir", "",
		"directory for go test -cpuprofile/-memprofile of the bench run (forces -pkgs to a single package)")
	flag.Parse()

	args := []string{"test", "-run", "^$",
		"-bench", *benchRe, "-benchtime", *benchTime,
		"-count", strconv.Itoa(*count), "-benchmem"}
	if *profileDir != "" {
		if err := os.MkdirAll(*profileDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "tcnbench: %v\n", err)
			os.Exit(1)
		}
		// go test rejects -cpuprofile with more than one package, so a
		// profiled capture is pinned to the root bench suite unless the
		// caller already narrowed -pkgs themselves.
		if *pkgs == "./..." {
			*pkgs = "."
			fmt.Fprintln(os.Stderr, "tcnbench: -profile-dir forces -pkgs=. (go test rejects -cpuprofile across packages)")
		}
		args = append(args,
			"-cpuprofile", filepath.Join(*profileDir, "cpu.pb.gz"),
			"-memprofile", filepath.Join(*profileDir, "mem.pb.gz"))
	}
	args = append(args, *pkgs)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcnbench: go test: %v\n", err)
		os.Exit(1)
	}

	base := Baseline{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Bench:     *benchRe,
		BenchTime: *benchTime,
		Results:   parseBench(raw, *benchTime),
	}

	// Diff before writing so the comparison is part of the document.
	var diffErr error
	if *diffBase != "" {
		old, err := loadBaseline(*diffBase)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcnbench: %v\n", err)
			os.Exit(1)
		}
		drift := old.Bench != base.Bench || old.BenchTime != base.BenchTime
		if drift && !*allowDrift {
			fmt.Fprintf(os.Stderr,
				"tcnbench: baseline %s was recorded with bench=%q benchtime=%q, this run used bench=%q benchtime=%q;\n"+
					"  numbers are not comparable — rerun with matching flags or pass -allow-config-drift\n",
				*diffBase, old.Bench, old.BenchTime, base.Bench, base.BenchTime)
			os.Exit(1)
		}
		rep := &DiffReport{Baseline: *diffBase, ConfigDrift: drift}
		diffErr = diffBaselines(os.Stderr, old, base, gates, rep)
		if diffErr != nil {
			rep.GateError = diffErr.Error()
		}
		base.Diff = rep
	}

	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcnbench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tcnbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tcnbench: wrote %d results to %s\n", len(base.Results), *out)
	}
	if diffErr != nil {
		fmt.Fprintf(os.Stderr, "tcnbench: REGRESSION: %v\n", diffErr)
		os.Exit(1)
	}
}

// gateBench is the benchmark the -diff gate pins: the steady-state packet
// path, whose zero-allocation property every observability layer (stats,
// tracer, ledger, pipeline) is required to preserve.
const gateBench = "BenchmarkPacketPathSteadyState"

// gateTolerance is the allowed relative ns/op growth before -diff fails.
// allocs/op gets no tolerance: the baseline is zero and must stay zero.
const gateTolerance = 0.25

// isoGateBench is the secondary gate: the whole-experiment allocation
// count of the figure-6 isolation run. It is not zero (setup allocates),
// so it gets the same relative tolerance as ns/op rather than the strict
// never-grow rule of the packet-path gate; baselines that predate the
// metric skip with a note.
const isoGateBench = "BenchmarkFig6IsolationDWRR"

// profGateBench is the cost-profiler gate: the steady-state packet path
// with the deterministic attribution plane attached. Its tolerance is far
// tighter than the main gate's because the bench exists to prove the
// profiler stays cheap enough to leave on — if attribution cost creeps,
// this trips long before the bare path would. allocs/op follows the same
// never-grow rule as the bare packet path (the baseline is zero).
// Baselines that predate the profiler skip with a note.
const profGateBench = "BenchmarkPacketPathProfiled"

// profGateTolerance is the allowed relative ns/op growth of profGateBench.
const profGateTolerance = 0.05

// loadBaseline reads a committed tcnbench JSON document.
func loadBaseline(path string) (Baseline, error) {
	var b Baseline
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("parsing %s: %w", path, err)
	}
	return b, nil
}

// bestMetric returns the minimum value of one metric across every repeat
// of a benchmark (with -count N a name appears N times). Minimum, not
// mean: for ns/op the best repeat is the least noise-contaminated, and
// for allocs/op the repeats agree anyway.
func bestMetric(b Baseline, name, metric string) (float64, bool) {
	best, found := 0.0, false
	for _, r := range b.Results {
		if r.Name != name {
			continue
		}
		v, ok := r.Metrics[metric]
		if !ok {
			continue
		}
		if !found || v < best {
			best, found = v, true
		}
	}
	return best, found
}

// peakMetric is bestMetric's higher-is-better twin: the maximum value of
// one metric across repeats, for throughput numbers like events/sec where
// the best repeat is the one least slowed by scheduling noise.
func peakMetric(b Baseline, name, metric string) (float64, bool) {
	best, found := 0.0, false
	for _, r := range b.Results {
		if r.Name != name {
			continue
		}
		v, ok := r.Metrics[metric]
		if !ok {
			continue
		}
		if !found || v > best {
			best, found = v, true
		}
	}
	return best, found
}

// rateMetric reports whether a metric is higher-is-better (a rate like
// events/sec) rather than lower-is-better (a cost like ns/op).
func rateMetric(metric string) bool { return strings.HasSuffix(metric, "/sec") }

// compareMetric returns the baseline value, current value, and speedup
// factor (>1 = improvement) for one benchmark metric, honoring the
// metric's direction.
func compareMetric(old, cur Baseline, name, metric string) (oldV, curV, speedup float64, ok bool) {
	if rateMetric(metric) {
		oldV, okO := peakMetric(old, name, metric)
		curV, okC := peakMetric(cur, name, metric)
		if !okO || !okC || oldV == 0 { //tcnlint:floatexact guarding division by an exactly-zero baseline
			return 0, 0, 0, false
		}
		return oldV, curV, curV / oldV, true
	}
	oldV, okO := bestMetric(old, name, metric)
	curV, okC := bestMetric(cur, name, metric)
	if !okO || !okC || curV == 0 { //tcnlint:floatexact guarding division by an exactly-zero current value
		return 0, 0, 0, false
	}
	return oldV, curV, oldV / curV, true
}

// diffBaselines prints an ns/op (and events/sec) comparison for every
// benchmark present on both sides, fills rep.Speedups, and returns an
// error when the gate benchmark regressed or a -min-speedup requirement
// is not met.
func diffBaselines(w io.Writer, old, cur Baseline, gates minGates, rep *DiffReport) error {
	fmt.Fprintf(w, "tcnbench diff vs %s (old %s, new %s):\n", rep.Baseline, old.GoVersion, cur.GoVersion)
	seen := map[string]bool{}
	for _, r := range cur.Results {
		if seen[r.Name] {
			continue
		}
		seen[r.Name] = true
		for _, metric := range []string{"ns/op", "events/sec"} {
			oldV, curV, speedup, ok := compareMetric(old, cur, r.Name, metric)
			if !ok {
				continue
			}
			rep.Speedups = append(rep.Speedups, Speedup{
				Name: r.Name, Metric: metric, Old: oldV, New: curV, Speedup: speedup,
			})
			fmt.Fprintf(w, "  %-44s %-10s %14.0f -> %14.0f  (%.2fx)\n",
				r.Name, metric, oldV, curV, speedup)
		}
	}
	oldNs, okO := bestMetric(old, gateBench, "ns/op")
	curNs, okC := bestMetric(cur, gateBench, "ns/op")
	if !okO {
		return fmt.Errorf("%s missing from baseline", gateBench)
	}
	if !okC {
		return fmt.Errorf("%s missing from current run", gateBench)
	}
	oldAllocs, _ := bestMetric(old, gateBench, "allocs/op")
	curAllocs, okA := bestMetric(cur, gateBench, "allocs/op")
	if okA && curAllocs > oldAllocs {
		return fmt.Errorf("%s allocs/op grew %v -> %v (hot path must stay zero-alloc)",
			gateBench, oldAllocs, curAllocs)
	}
	if oldNs > 0 && curNs > oldNs*(1+gateTolerance) {
		return fmt.Errorf("%s ns/op grew %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
			gateBench, oldNs, curNs, 100*(curNs-oldNs)/oldNs, 100*gateTolerance)
	}
	oldEv, okOE := peakMetric(old, gateBench, "events/sec")
	curEv, okCE := peakMetric(cur, gateBench, "events/sec")
	switch {
	case !okOE:
		fmt.Fprintf(w, "  note: baseline has no events/sec for %s (predates the metric); gate skipped this round\n", gateBench)
	case !okCE:
		return fmt.Errorf("%s stopped reporting events/sec (baseline had %.0f)", gateBench, oldEv)
	case curEv < oldEv*(1-gateTolerance):
		return fmt.Errorf("%s events/sec fell %.0f -> %.0f (%.1f%%, tolerance %.0f%%)",
			gateBench, oldEv, curEv, 100*(curEv-oldEv)/oldEv, 100*gateTolerance)
	}
	oldIso, okOI := bestMetric(old, isoGateBench, "allocs/op")
	curIso, okCI := bestMetric(cur, isoGateBench, "allocs/op")
	switch {
	case !okOI:
		fmt.Fprintf(w, "  note: baseline has no allocs/op for %s (predates the gate); gate skipped this round\n", isoGateBench)
	case !okCI:
		return fmt.Errorf("%s stopped reporting allocs/op (baseline had %v)", isoGateBench, oldIso)
	case oldIso > 0 && curIso > oldIso*(1+gateTolerance):
		return fmt.Errorf("%s allocs/op grew %v -> %v (+%.1f%%, tolerance %.0f%%)",
			isoGateBench, oldIso, curIso, 100*(curIso-oldIso)/oldIso, 100*gateTolerance)
	}
	oldProf, okOP := bestMetric(old, profGateBench, "ns/op")
	curProf, okCP := bestMetric(cur, profGateBench, "ns/op")
	switch {
	case !okOP:
		fmt.Fprintf(w, "  note: baseline has no ns/op for %s (predates the profiler); gate skipped this round\n", profGateBench)
	case !okCP:
		return fmt.Errorf("%s missing from current run (baseline had %.0f ns/op)", profGateBench, oldProf)
	case oldProf > 0 && curProf > oldProf*(1+profGateTolerance):
		return fmt.Errorf("%s ns/op grew %.0f -> %.0f (+%.1f%%, tolerance %.0f%%; attribution must stay cheap enough to leave on)",
			profGateBench, oldProf, curProf, 100*(curProf-oldProf)/oldProf, 100*profGateTolerance)
	}
	if okOP && okCP {
		oldPA, _ := bestMetric(old, profGateBench, "allocs/op")
		curPA, okPA := bestMetric(cur, profGateBench, "allocs/op")
		if okPA && curPA > oldPA {
			return fmt.Errorf("%s allocs/op grew %v -> %v (profiled hot path must stay zero-alloc)",
				profGateBench, oldPA, curPA)
		}
	}
	for _, g := range gates {
		oldV, curV, speedup, ok := compareMetric(old, cur, g.name, g.metric)
		if !ok {
			return fmt.Errorf("min-speedup gate %s:%s: metric missing on one side", g.name, g.metric)
		}
		if speedup < g.factor {
			return fmt.Errorf("min-speedup gate %s:%s: %.0f -> %.0f is %.2fx, want >= %.2fx",
				g.name, g.metric, oldV, curV, speedup, g.factor)
		}
		fmt.Fprintf(w, "  min-speedup %s:%s ok: %.2fx >= %.2fx\n", g.name, g.metric, speedup, g.factor)
	}
	fmt.Fprintf(w, "  gate %s ok: allocs/op %v -> %v, ns/op and events/sec within %.0f%%\n",
		gateBench, oldAllocs, curAllocs, 100*gateTolerance)
	return nil
}

// parseBench extracts benchmark lines from `go test -bench` output. Each
// line is "BenchmarkName[-P] <iters> <value> <unit> [<value> <unit>]...";
// everything else (headers, PASS, ok) is ignored.
func parseBench(raw []byte, benchTime string) []Result {
	var out []Result
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{Name: name, Iterations: iters, BenchTime: benchTime, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		out = append(out, r)
	}
	return out
}
