// Command tcnbench captures a machine-readable performance baseline: it
// runs the repository's benchmarks through `go test -bench`, parses the
// standard benchmark output, and writes one JSON document with every
// reported metric (ns/op, B/op, allocs/op, and the benches' custom
// metrics). Committed snapshots (BENCH_pr4.json, ...) give future changes a
// trajectory to compare against.
//
// Usage:
//
//	go run ./cmd/tcnbench [-bench REGEX] [-benchtime 1x] [-count 1] [-o FILE]
//
// The default selection runs the perf-critical benches — the engine core,
// the steady-state packet path, and the parallel sweep at workers=1..4 —
// rather than every figure reproduction, so a baseline capture stays in the
// minutes range.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line: its name (CPU suffix stripped), iteration
// count, and every "value unit" metric pair that followed.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Baseline is the document tcnbench writes.
type Baseline struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Bench     string   `json:"bench_regex"`
	BenchTime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func main() {
	var (
		benchRe = flag.String("bench",
			"BenchmarkEngine|BenchmarkSweepParallel|BenchmarkPacketPathSteadyState|BenchmarkFig6IsolationDWRR",
			"benchmark selection regex passed to go test")
		benchTime = flag.String("benchtime", "1x", "value for -benchtime")
		count     = flag.Int("count", 1, "value for -count")
		out       = flag.String("o", "-", "output file ('-' = stdout)")
		pkgs      = flag.String("pkgs", "./...", "packages to bench")
	)
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *benchRe, "-benchtime", *benchTime,
		"-count", strconv.Itoa(*count), "-benchmem", *pkgs)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcnbench: go test: %v\n", err)
		os.Exit(1)
	}

	base := Baseline{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Bench:     *benchRe,
		BenchTime: *benchTime,
		Results:   parseBench(raw),
	}
	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcnbench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "tcnbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tcnbench: wrote %d results to %s\n", len(base.Results), *out)
}

// parseBench extracts benchmark lines from `go test -bench` output. Each
// line is "BenchmarkName[-P] <iters> <value> <unit> [<value> <unit>]...";
// everything else (headers, PASS, ok) is ignored.
func parseBench(raw []byte) []Result {
	var out []Result
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		out = append(out, r)
	}
	return out
}
