// Command tcnbench captures a machine-readable performance baseline: it
// runs the repository's benchmarks through `go test -bench`, parses the
// standard benchmark output, and writes one JSON document with every
// reported metric (ns/op, B/op, allocs/op, and the benches' custom
// metrics). Committed snapshots (BENCH_pr4.json, ...) give future changes a
// trajectory to compare against.
//
// Usage:
//
//	go run ./cmd/tcnbench [-bench REGEX] [-benchtime 1x] [-count 1] [-o FILE] [-diff BASELINE]
//
// With -diff, the fresh results are compared against a committed baseline
// and the run fails on a regression in the steady-state packet path: any
// growth in allocs/op (the hot path is pinned at zero), more than 25% in
// ns/op, or more than a 25% drop in events/sec (ROADMAP item 2's ratchet
// metric; skipped with a note against baselines that predate it). The
// best value across -count repeats is compared on both sides (minimum
// for costs, maximum for throughput), damping single-iteration noise.
//
// The default selection runs the perf-critical benches — the engine core,
// the steady-state packet path, and the parallel sweep at workers=1..4 —
// rather than every figure reproduction, so a baseline capture stays in the
// minutes range.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line: its name (CPU suffix stripped), iteration
// count, and every "value unit" metric pair that followed.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Baseline is the document tcnbench writes.
type Baseline struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Bench     string   `json:"bench_regex"`
	BenchTime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func main() {
	var (
		benchRe = flag.String("bench",
			"BenchmarkEngine|BenchmarkSweepParallel|BenchmarkPacketPathSteadyState|BenchmarkFig6IsolationDWRR|BenchmarkPerfCampaignRecord|BenchmarkTDigestAdd",
			"benchmark selection regex passed to go test")
		benchTime = flag.String("benchtime", "1x", "value for -benchtime")
		count     = flag.Int("count", 1, "value for -count")
		out       = flag.String("o", "-", "output file ('-' = stdout)")
		pkgs      = flag.String("pkgs", "./...", "packages to bench")
		diffBase  = flag.String("diff", "", "baseline JSON to diff against; exits nonzero on a packet-path regression")
	)
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *benchRe, "-benchtime", *benchTime,
		"-count", strconv.Itoa(*count), "-benchmem", *pkgs)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcnbench: go test: %v\n", err)
		os.Exit(1)
	}

	base := Baseline{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Bench:     *benchRe,
		BenchTime: *benchTime,
		Results:   parseBench(raw),
	}
	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcnbench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tcnbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tcnbench: wrote %d results to %s\n", len(base.Results), *out)
	}
	if *diffBase != "" {
		old, err := loadBaseline(*diffBase)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcnbench: %v\n", err)
			os.Exit(1)
		}
		if err := diffBaselines(os.Stderr, old, base); err != nil {
			fmt.Fprintf(os.Stderr, "tcnbench: REGRESSION: %v\n", err)
			os.Exit(1)
		}
	}
}

// gateBench is the benchmark the -diff gate pins: the steady-state packet
// path, whose zero-allocation property every observability layer (stats,
// tracer, ledger, pipeline) is required to preserve.
const gateBench = "BenchmarkPacketPathSteadyState"

// gateTolerance is the allowed relative ns/op growth before -diff fails.
// allocs/op gets no tolerance: the baseline is zero and must stay zero.
const gateTolerance = 0.25

// isoGateBench is the secondary gate: the whole-experiment allocation
// count of the figure-6 isolation run. It is not zero (setup allocates),
// so it gets the same relative tolerance as ns/op rather than the strict
// never-grow rule of the packet-path gate; baselines that predate the
// metric skip with a note.
const isoGateBench = "BenchmarkFig6IsolationDWRR"

// loadBaseline reads a committed tcnbench JSON document.
func loadBaseline(path string) (Baseline, error) {
	var b Baseline
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("parsing %s: %w", path, err)
	}
	return b, nil
}

// bestMetric returns the minimum value of one metric across every repeat
// of a benchmark (with -count N a name appears N times). Minimum, not
// mean: for ns/op the best repeat is the least noise-contaminated, and
// for allocs/op the repeats agree anyway.
func bestMetric(b Baseline, name, metric string) (float64, bool) {
	best, found := 0.0, false
	for _, r := range b.Results {
		if r.Name != name {
			continue
		}
		v, ok := r.Metrics[metric]
		if !ok {
			continue
		}
		if !found || v < best {
			best, found = v, true
		}
	}
	return best, found
}

// peakMetric is bestMetric's higher-is-better twin: the maximum value of
// one metric across repeats, for throughput numbers like events/sec where
// the best repeat is the one least slowed by scheduling noise.
func peakMetric(b Baseline, name, metric string) (float64, bool) {
	best, found := 0.0, false
	for _, r := range b.Results {
		if r.Name != name {
			continue
		}
		v, ok := r.Metrics[metric]
		if !ok {
			continue
		}
		if !found || v > best {
			best, found = v, true
		}
	}
	return best, found
}

// diffBaselines prints an ns/op comparison for every benchmark present on
// both sides and returns an error when the gate benchmark regressed.
func diffBaselines(w io.Writer, old, cur Baseline) error {
	fmt.Fprintf(w, "tcnbench diff (old %s, new %s):\n", old.GoVersion, cur.GoVersion)
	seen := map[string]bool{}
	for _, r := range cur.Results {
		if seen[r.Name] {
			continue
		}
		seen[r.Name] = true
		oldNs, okO := bestMetric(old, r.Name, "ns/op")
		curNs, okC := bestMetric(cur, r.Name, "ns/op")
		if !okO || !okC || oldNs == 0 { //tcnlint:floatexact guard against dividing by a zero baseline
			continue
		}
		fmt.Fprintf(w, "  %-44s ns/op %14.0f -> %14.0f  (%+.1f%%)\n",
			r.Name, oldNs, curNs, 100*(curNs-oldNs)/oldNs)
	}
	oldNs, okO := bestMetric(old, gateBench, "ns/op")
	curNs, okC := bestMetric(cur, gateBench, "ns/op")
	if !okO {
		return fmt.Errorf("%s missing from baseline", gateBench)
	}
	if !okC {
		return fmt.Errorf("%s missing from current run", gateBench)
	}
	oldAllocs, _ := bestMetric(old, gateBench, "allocs/op")
	curAllocs, okA := bestMetric(cur, gateBench, "allocs/op")
	if okA && curAllocs > oldAllocs {
		return fmt.Errorf("%s allocs/op grew %v -> %v (hot path must stay zero-alloc)",
			gateBench, oldAllocs, curAllocs)
	}
	if oldNs > 0 && curNs > oldNs*(1+gateTolerance) {
		return fmt.Errorf("%s ns/op grew %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
			gateBench, oldNs, curNs, 100*(curNs-oldNs)/oldNs, 100*gateTolerance)
	}
	oldEv, okOE := peakMetric(old, gateBench, "events/sec")
	curEv, okCE := peakMetric(cur, gateBench, "events/sec")
	switch {
	case !okOE:
		fmt.Fprintf(w, "  note: baseline has no events/sec for %s (predates the metric); gate skipped this round\n", gateBench)
	case !okCE:
		return fmt.Errorf("%s stopped reporting events/sec (baseline had %.0f)", gateBench, oldEv)
	case curEv < oldEv*(1-gateTolerance):
		return fmt.Errorf("%s events/sec fell %.0f -> %.0f (%.1f%%, tolerance %.0f%%)",
			gateBench, oldEv, curEv, 100*(curEv-oldEv)/oldEv, 100*gateTolerance)
	}
	oldIso, okOI := bestMetric(old, isoGateBench, "allocs/op")
	curIso, okCI := bestMetric(cur, isoGateBench, "allocs/op")
	switch {
	case !okOI:
		fmt.Fprintf(w, "  note: baseline has no allocs/op for %s (predates the gate); gate skipped this round\n", isoGateBench)
	case !okCI:
		return fmt.Errorf("%s stopped reporting allocs/op (baseline had %v)", isoGateBench, oldIso)
	case oldIso > 0 && curIso > oldIso*(1+gateTolerance):
		return fmt.Errorf("%s allocs/op grew %v -> %v (+%.1f%%, tolerance %.0f%%)",
			isoGateBench, oldIso, curIso, 100*(curIso-oldIso)/oldIso, 100*gateTolerance)
	}
	fmt.Fprintf(w, "  gate %s ok: allocs/op %v -> %v, ns/op and events/sec within %.0f%%\n",
		gateBench, oldAllocs, curAllocs, 100*gateTolerance)
	return nil
}

// parseBench extracts benchmark lines from `go test -bench` output. Each
// line is "BenchmarkName[-P] <iters> <value> <unit> [<value> <unit>]...";
// everything else (headers, PASS, ok) is ignored.
func parseBench(raw []byte) []Result {
	var out []Result
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		out = append(out, r)
	}
	return out
}
