// Command tcnqdisc drives the §5 software-prototype pipeline standalone:
// it pushes a configurable synthetic traffic mix (steady trickles plus
// periodic bursts across service classes) through one qdisc instance and
// reports per-class marking, delay, and drop statistics for the chosen
// marker and scheduler — a workbench for trying AQM/scheduler pairings
// without building a whole network.
//
// Examples:
//
//	tcnqdisc -marker tcn -sched dwrr
//	tcnqdisc -marker codel -sched sp-wfq -classes 8 -burst 256
//	tcnqdisc -marker red -rate 10e9 -threshold 78us
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tcn/internal/aqm"
	"tcn/internal/core"
	"tcn/internal/fabric"
	"tcn/internal/pkt"
	"tcn/internal/qdisc"
	"tcn/internal/sched"
	"tcn/internal/sim"
)

func main() {
	var (
		markerName = flag.String("marker", "tcn", "tcn | tcn-prob | codel | red | red-deq | port-red | dynred | wred | none")
		schedName  = flag.String("sched", "dwrr", "fifo | dwrr | wfq | sp-dwrr | sp-wfq")
		classes    = flag.Int("classes", 4, "service classes / queues")
		rateBps    = flag.Float64("rate", 1e9, "line rate, bits per second")
		threshold  = flag.Duration("threshold", 256*time.Microsecond, "TCN threshold / RTT×λ")
		buffer     = flag.Int("buffer", 96_000, "shared buffer bytes (0 = unlimited)")
		burst      = flag.Int("burst", 20, "packets per periodic burst")
		duration   = flag.Duration("dur", 200*time.Millisecond, "simulated duration")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	eng := sim.NewEngine()
	rng := sim.NewRand(*seed)
	rate := fabric.Rate(*rateBps)
	thr := sim.Time(threshold.Nanoseconds())
	kbytes := aqm.StandardThreshold(int64(rate), thr)

	scheduler := buildSched(*schedName, *classes)
	marker := buildMarker(*markerName, *classes, thr, kbytes, rng)

	type classStats struct {
		sent, marked, dropped int
		delaySum              sim.Time
	}
	stats := make([]classStats, *classes)

	q := qdisc.New(eng, qdisc.Config{
		Queues:      *classes,
		BufferBytes: *buffer,
		LineRate:    rate,
		Scheduler:   scheduler,
		Marker:      marker,
		Transmit: func(now sim.Time, p *pkt.Packet) {
			s := &stats[p.DSCP]
			s.sent++
			s.delaySum += p.Sojourn(now)
			if p.ECN == pkt.CE {
				s.marked++
			}
		},
	})

	// Traffic: class 0 a steady trickle at ~30% of its share; the other
	// classes alternate between trickles and synchronized bursts.
	push := func(class int) bool {
		p := &pkt.Packet{Size: 1500, Len: 1460, ECN: pkt.ECT0, DSCP: uint8(class)}
		ok := q.Enqueue(p)
		if !ok {
			stats[class].dropped++
		}
		return ok
	}
	stop := sim.Time(duration.Nanoseconds())
	var trickle func()
	trickle = func() {
		if eng.Now() >= stop {
			return
		}
		push(0)
		eng.After(rate.Serialize(1500)*sim.Time(*classes), trickle)
	}
	eng.After(0, trickle)
	var bursts func()
	bursts = func() {
		if eng.Now() >= stop {
			return
		}
		// Interleave classes so the shared buffer is contended
		// fairly rather than first-class-takes-all.
		for i := 0; i < *burst; i++ {
			for c := 1; c < *classes; c++ {
				push(c)
			}
		}
		eng.After(10*sim.Millisecond, bursts)
	}
	eng.After(sim.Millisecond, bursts)
	eng.RunUntil(stop + 100*sim.Millisecond)

	fmt.Printf("marker=%s scheduler=%s rate=%v threshold=%v buffer=%dB\n\n",
		marker.Name(), scheduler.Name(), rate, thr, *buffer)
	fmt.Printf("%-6s %8s %8s %8s %12s\n", "class", "sent", "marked", "dropped", "mean delay")
	for c, s := range stats {
		mean := sim.Time(0)
		if s.sent > 0 {
			mean = s.delaySum / sim.Time(s.sent)
		}
		fmt.Printf("%-6d %8d %8d %8d %12v\n", c, s.sent, s.marked, s.dropped, mean)
	}
}

func buildSched(name string, classes int) sched.Scheduler {
	low := classes - 1
	switch name {
	case "fifo":
		return sched.NewFIFO()
	case "dwrr":
		return sched.NewDWRREqual(classes, 1500)
	case "wfq":
		return sched.NewWFQEqual(classes)
	case "sp-dwrr":
		return sched.NewSPOver(1, sched.NewDWRREqual(low, 1500))
	case "sp-wfq":
		return sched.NewSPOver(1, sched.NewWFQEqual(low))
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", name)
		os.Exit(2)
		return nil
	}
}

func buildMarker(name string, classes int, thr sim.Time, kbytes int, rng *sim.Rand) core.Marker {
	switch name {
	case "tcn":
		return core.NewTCN(thr)
	case "tcn-prob":
		return core.NewProbTCN(thr/2, thr*3/2, 0.2, rng)
	case "codel":
		return aqm.NewCoDel(classes, thr/5, 4*thr)
	case "red":
		return aqm.NewQueueRED(kbytes)
	case "red-deq":
		return aqm.NewDequeueRED(kbytes)
	case "port-red":
		return aqm.NewPortRED(kbytes)
	case "dynred":
		return aqm.NewDynRED(classes, 10_000, thr)
	case "wred":
		return aqm.NewWRED(classes, kbytes/2, kbytes*3/2, 0.1, rng)
	case "none":
		return core.Nop{}
	default:
		fmt.Fprintf(os.Stderr, "unknown marker %q\n", name)
		os.Exit(2)
		return nil
	}
}
