// Command tcnlint runs the repository's determinism and accounting
// analyzers over Go packages and reports violations in the standard
// file:line:col format. It exits non-zero when any diagnostic fires, so it
// slots directly into CI:
//
//	go run ./cmd/tcnlint ./...
//
// Flags select analyzers (-run) and control whether test files are
// included (-tests, default true). The tool is built on the stdlib-only
// framework in internal/lint/analysis; it mirrors the x/tools multichecker
// interface closely enough that migrating to `go vet -vettool` is a
// mechanical swap once x/tools can be vendored.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tcn/internal/lint"
	"tcn/internal/lint/analysis"
)

func main() {
	var (
		tests = flag.Bool("tests", true, "analyze test files too")
		run   = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list  = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tcnlint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		analyzers = selectAnalyzers(analyzers, *run)
	}

	// The stdlib source importer resolves module imports against the
	// process working directory, so anchor at the module root.
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Tests: *tests}, patterns...)
	if err != nil {
		fatal(err)
	}

	type finding struct {
		file      string
		line, col int
		analyzer  string
		message   string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				file := pos.Filename
				if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
				findings = append(findings, finding{file, pos.Line, pos.Column, name, d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				fatal(fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err))
			}
		}
	}

	// Diagnostics print in deterministic position order regardless of
	// package load or map iteration order.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s: %s\n", f.file, f.line, f.col, f.analyzer, f.message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tcnlint: %d issue(s)\n", len(findings))
		os.Exit(1)
	}
}

func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	seen := map[string]bool{}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		a, ok := byName[n]
		if !ok {
			fatal(fmt.Errorf("unknown analyzer %q", n))
		}
		out = append(out, a)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcnlint:", err)
	os.Exit(1)
}
