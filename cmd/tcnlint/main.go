// Command tcnlint runs the repository's determinism and accounting
// analyzers over Go packages and reports violations in the standard
// file:line:col format. It exits non-zero when any diagnostic fires, so it
// slots directly into CI:
//
//	go run ./cmd/tcnlint ./...
//
// Flags select analyzers (-run, which pulls in their Requires
// automatically), control whether test files are included (-tests, default
// true), and switch to machine-readable output (-json, one object per
// diagnostic). The tool is built on the stdlib-only cross-package engine
// in internal/lint/analysis: packages load module-wide in import order,
// analyzers run with their Requires resolved first, and facts (call
// graphs, ownership leaks, taint summaries) flow between packages. It
// mirrors the x/tools multichecker interface closely enough that migrating
// to `go vet -vettool` is a mechanical swap once x/tools can be vendored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tcn/internal/lint"
	"tcn/internal/lint/analysis"
)

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var (
		tests    = flag.Bool("tests", true, "analyze test files too")
		run      = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list     = flag.Bool("list", false, "list available analyzers and exit")
		jsonOut  = flag.Bool("json", false, "emit diagnostics as JSON objects, one per line")
		exitZero = flag.Bool("exit-zero", false, "always exit 0, even with diagnostics (for reporting pipelines)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tcnlint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		analyzers = selectAnalyzers(analyzers, *run)
	}

	// The stdlib source importer resolves module imports against the
	// process working directory, so anchor at the module root.
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Tests: *tests}, patterns...)
	if err != nil {
		fatal(err)
	}
	result, err := analysis.Execute(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}

	enc := json.NewEncoder(os.Stdout)
	for _, f := range result.Findings {
		file := f.Position.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		if *jsonOut {
			if err := enc.Encode(jsonFinding{
				File:     file,
				Line:     f.Position.Line,
				Column:   f.Position.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			}); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", file, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
	}
	if len(result.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "tcnlint: %d issue(s)\n", len(result.Findings))
		if !*exitZero {
			os.Exit(1)
		}
	}
}

func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	seen := map[string]bool{}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		a, ok := byName[n]
		if !ok {
			fatal(fmt.Errorf("unknown analyzer %q", n))
		}
		out = append(out, a)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcnlint:", err)
	os.Exit(1)
}
