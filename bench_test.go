// Package tcn's root benchmark suite regenerates every table and figure of
// the paper's evaluation at benchmark scale and reports the headline
// quantities as custom metrics, so `go test -bench=. -benchmem` doubles as
// the reproduction harness. Figure-level pass/fail shape checks live in
// internal/experiments tests; the benches here report magnitudes.
package tcn

import (
	"fmt"
	"testing"

	"tcn/internal/aqm"
	"tcn/internal/core"
	"tcn/internal/digest"
	"tcn/internal/experiments"
	"tcn/internal/fabric"
	"tcn/internal/metrics"
	"tcn/internal/obs"
	"tcn/internal/obs/flight"
	"tcn/internal/obs/perf"
	"tcn/internal/obs/prof"
	"tcn/internal/pkt"
	"tcn/internal/qdisc"
	"tcn/internal/sim"
	"tcn/internal/trace"
	"tcn/internal/transport"
)

// benchSweep is the reduced sweep used by the figure benches.
func benchSweep(schemes ...experiments.Scheme) experiments.SweepConfig {
	return experiments.SweepConfig{
		Loads:   []float64{0.9},
		Flows:   800,
		Seed:    1,
		Schemes: schemes,
	}
}

func benchLeaf() experiments.LeafSpineSweepConfig {
	return experiments.LeafSpineSweepConfig{
		Loads:  []float64{0.9},
		Flows:  500,
		Seed:   1,
		Leaves: 4, Spines: 4, HostsPerLeaf: 4,
		Schemes: []experiments.Scheme{experiments.SchemeTCN, experiments.SchemeRED},
	}
}

// us converts a sim.Time to float64 microseconds for ReportMetric.
func us(t sim.Time) float64 { return t.Microseconds() }

func BenchmarkFig1PortREDViolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig1()
		cfg.FlowCounts = []int{1, 16}
		cfg.Duration = sim.Second
		res := experiments.RunFig1(cfg)
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(100*last.Service2Share, "svc2-share-%")
		b.ReportMetric(last.TotalMbps, "total-Mbps")
	}
}

func BenchmarkFig2RateEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig2(experiments.DefaultFig2())
		for _, tr := range res.Traces {
			if tr.Scheme == "mqecn" {
				b.ReportMetric(us(tr.ConvergeTime), "mqecn-converge-us")
			}
			if tr.Scheme == "dynred-40KB" {
				b.ReportMetric(float64(tr.SamplesInWindow), "dq40KB-samples-2ms")
			}
			if tr.Scheme == "dynred-10KB" {
				b.ReportMetric(tr.MaxGbps-tr.MinGbps, "dq10KB-swing-Gbps")
			}
		}
	}
}

func BenchmarkFig3Occupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig3(experiments.DefaultFig3())
		for _, tr := range res.Traces {
			switch tr.Scheme {
			case experiments.SchemeRED:
				b.ReportMetric(float64(tr.PeakBytes)/float64(res.BDP), "enqRED-peak-BDP")
			case experiments.SchemeREDDeq:
				b.ReportMetric(float64(tr.PeakBytes)/float64(res.BDP), "deqRED-peak-BDP")
			case experiments.SchemeTCN:
				b.ReportMetric(float64(tr.PeakBytes)/float64(res.BDP), "TCN-peak-BDP")
			}
		}
	}
}

func BenchmarkFig5aSPWFQPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig5()
		cfg.Stage = 500 * sim.Millisecond
		cfg.Duration = 2 * sim.Second
		res := experiments.RunFig5a(cfg)
		b.ReportMetric(res.SteadyMbps[0], "q1-Mbps")
		b.ReportMetric(res.SteadyMbps[1], "q2-Mbps")
		b.ReportMetric(res.SteadyMbps[2], "q3-Mbps")
	}
}

func BenchmarkFig5bLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range []experiments.Scheme{experiments.SchemeTCN, experiments.SchemeRED} {
			cfg := experiments.DefaultFig5()
			cfg.Scheme = s
			cfg.Duration = 2 * sim.Second
			res := experiments.RunFig5b(cfg)
			b.ReportMetric(us(res.MeanRTT), string(s)+"-mean-rtt-us")
		}
	}
}

// reportSweep publishes TCN and RED small-flow stats for a testbed sweep.
func reportSweep(b *testing.B, sw experiments.FCTSweep) {
	b.Helper()
	if c := sw.Cell(experiments.SchemeTCN, 0.9); c != nil {
		b.ReportMetric(us(c.Stats.AvgSmall), "TCN-avg-small-us")
		b.ReportMetric(us(c.Stats.P99Small), "TCN-p99-small-us")
	}
	if c := sw.Cell(experiments.SchemeRED, 0.9); c != nil {
		b.ReportMetric(us(c.Stats.AvgSmall), "RED-avg-small-us")
		b.ReportMetric(us(c.Stats.P99Small), "RED-p99-small-us")
	}
}

func BenchmarkFig6IsolationDWRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSweep(b, experiments.RunFig6(benchSweep(experiments.SchemeTCN, experiments.SchemeRED)))
	}
}

func BenchmarkFig7IsolationWFQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSweep(b, experiments.RunFig7(benchSweep(experiments.SchemeTCN, experiments.SchemeRED)))
	}
}

func BenchmarkFig8PriorSPDWRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSweep(b, experiments.RunFig8(benchSweep(experiments.SchemeTCN, experiments.SchemeRED)))
	}
}

func BenchmarkFig9PriorSPWFQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSweep(b, experiments.RunFig9(benchSweep(experiments.SchemeTCN, experiments.SchemeRED)))
	}
}

// reportLeaf publishes the §6.2 quantities (incl. timeout counts).
func reportLeaf(b *testing.B, sw experiments.LeafSpineSweep) {
	b.Helper()
	if c := sw.Cell(experiments.SchemeTCN, 0.9); c != nil {
		b.ReportMetric(us(c.Stats.AvgSmall), "TCN-avg-small-us")
		b.ReportMetric(float64(c.Stats.TimeoutsSmall), "TCN-timeouts-small")
	}
	if c := sw.Cell(experiments.SchemeRED, 0.9); c != nil {
		b.ReportMetric(us(c.Stats.AvgSmall), "RED-avg-small-us")
		b.ReportMetric(float64(c.Stats.TimeoutsSmall), "RED-timeouts-small")
	}
}

func BenchmarkFig10LeafSpineDWRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportLeaf(b, experiments.RunFig10(benchLeaf()))
	}
}

func BenchmarkFig11LeafSpineWFQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportLeaf(b, experiments.RunFig11(benchLeaf()))
	}
}

func BenchmarkFig12ECNStar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportLeaf(b, experiments.RunFig12(benchLeaf()))
	}
}

func BenchmarkFig13ManyQueues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportLeaf(b, experiments.RunFig13(benchLeaf()))
	}
}

// --- ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationSignal contrasts the congestion signal itself: the same
// prioritized workload under sojourn-time (TCN) vs queue-length (RED)
// marking.
func BenchmarkAblationSignal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tcn := experiments.RunTestbedFCT(experiments.TestbedFCTConfig{
			Scheme: experiments.SchemeTCN, Sched: experiments.SchedSPDWRR,
			PIAS: true, Load: 0.9, Flows: 800, Seed: 1,
		})
		red := experiments.RunTestbedFCT(experiments.TestbedFCTConfig{
			Scheme: experiments.SchemeRED, Sched: experiments.SchedSPDWRR,
			PIAS: true, Load: 0.9, Flows: 800, Seed: 1,
		})
		b.ReportMetric(float64(red.Stats.AvgSmall)/float64(tcn.Stats.AvgSmall), "queuelen/sojourn-avg-small")
		b.ReportMetric(float64(red.Drops)/float64(max(tcn.Drops, 1)), "queuelen/sojourn-drops")
	}
}

// BenchmarkAblationBurst contrasts instantaneous (TCN) vs windowed (CoDel)
// time signals on the same bursty workload.
func BenchmarkAblationBurst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tcn := experiments.RunTestbedFCT(experiments.TestbedFCTConfig{
			Scheme: experiments.SchemeTCN, Sched: experiments.SchedSPDWRR,
			PIAS: true, Load: 0.9, Flows: 800, Seed: 1,
		})
		codel := experiments.RunTestbedFCT(experiments.TestbedFCTConfig{
			Scheme: experiments.SchemeCoDel, Sched: experiments.SchedSPDWRR,
			PIAS: true, Load: 0.9, Flows: 800, Seed: 1,
		})
		b.ReportMetric(float64(codel.Stats.P99Small)/float64(tcn.Stats.P99Small), "codel/tcn-p99-small")
	}
}

// BenchmarkAblationDqThresh sweeps Algorithm 1's measurement window (§3.3).
func BenchmarkAblationDqThresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig2()
		cfg.DqThreshs = []int{80_000, 40_000, 10_000, 5_000}
		res := experiments.RunFig2(cfg)
		for _, tr := range res.Traces {
			if tr.Scheme == "mqecn" {
				continue
			}
			b.ReportMetric(tr.MaxGbps-tr.MinGbps, tr.Scheme+"-swing-Gbps")
		}
	}
}

// BenchmarkAblationHWTCN runs TCN computed on the 16-bit hardware clock
// (§4.2) and reports its deviation from ideal TCN — the executable version
// of the paper's feasibility argument. The argument holds where the paper
// makes it: on fast links whose worst-case sojourn fits the counter span
// (300 KB at 10 Gbps = 240 us < 8 ns × 2^16 ≈ 524 us). On a 1 Gbps port
// with a 96 KB shared buffer, sojourns can exceed the span and alias —
// see EXPERIMENTS.md.
func BenchmarkAblationHWTCN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultLeafSpine()
		cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 2, 2, 2
		cfg.Flows = 400
		cfg.Seed = 1
		ideal := experiments.RunLeafSpine(cfg)
		cfg.Scheme = experiments.SchemeTCNHW
		hw := experiments.RunLeafSpine(cfg)
		b.ReportMetric(float64(hw.Stats.AvgSmall)/float64(ideal.Stats.AvgSmall), "hw/ideal-avg-small")
		b.ReportMetric(float64(hw.Stats.AvgLarge)/float64(ideal.Stats.AvgLarge), "hw/ideal-avg-large")
	}
}

// BenchmarkEngineThroughput measures raw simulator speed: events per
// second on a saturated leaf-spine run, the cost driver of every
// experiment above.
func BenchmarkEngineThroughput(b *testing.B) {
	camp := perf.NewCampaign(nil)
	for i := 0; i < b.N; i++ {
		c := experiments.DefaultLeafSpine()
		c.Leaves, c.Spines, c.HostsPerLeaf = 2, 2, 2
		c.Flows = 300
		c.CC = transport.DCTCP
		c.Obs = &experiments.Obs{Perf: camp}
		experiments.RunLeafSpine(c)
	}
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(camp.SnapshotNow(false).EventsExecuted)/el, "events/sec")
	}
}

// BenchmarkSweepParallel measures the fig6 bench sweep (8 independent
// cells) at increasing worker counts. The results are byte-identical at
// every width (test-enforced in internal/experiments); this bench shows the
// wall-clock side of the trade. On a single-core machine the widths tie —
// the speedup needs real CPUs, not goroutines.
func BenchmarkSweepParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchSweep(experiments.SchemeTCN, experiments.SchemeRED)
				cfg.Loads = []float64{0.3, 0.5, 0.7, 0.9}
				cfg.Flows = 400
				cfg.Workers = workers
				experiments.RunFig6(cfg)
			}
		})
	}
}

// BenchmarkPacketPathSteadyState drives one long DCTCP flow through a star
// switch past slow start, then measures a millisecond of simulated traffic
// per iteration. With the event freelist and packet pool warm this is
// allocation-free (asserted in internal/sim and internal/transport tests);
// allocs/op here should read 0 on normal builds.
func BenchmarkPacketPathSteadyState(b *testing.B) {
	eng := sim.NewEngine()
	star := fabric.NewStar(eng, fabric.StarConfig{
		Hosts: 2,
		Rate:  10 * fabric.Gbps,
		Prop:  10 * sim.Microsecond,
		SwitchPort: func() fabric.PortConfig {
			return fabric.PortConfig{Queues: 1}
		},
	})
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP}, star.Hosts)
	st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: 1, Size: 1 << 40})
	eng.RunUntil(50 * sim.Millisecond) // warm pools past slow start
	b.ReportAllocs()
	b.ResetTimer()
	start := eng.Executed
	for i := 0; i < b.N; i++ {
		eng.RunUntil(eng.Now() + sim.Millisecond)
	}
	b.ReportMetric(float64(eng.Executed)/float64(b.N), "events/op")
	// events/sec is ROADMAP item 2's ratchet metric; the tcnbench -diff
	// gate fails on a >25% regression once a baseline records it.
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(eng.Executed-start)/el, "events/sec")
	}
	pool := st.Pool()
	if tot := pool.Allocs + pool.Reuses; tot > 0 {
		b.ReportMetric(100*float64(pool.Reuses)/float64(tot), "pool-hit-%")
	}
}

// BenchmarkPacketPathFingerprinted is BenchmarkPacketPathSteadyState with
// run fingerprinting attached: per-component digest chains snapshotted
// every simulated millisecond plus the armed-but-dormant per-event fine
// hook. The delta against the bare bench is the whole observability cost
// of `-fingerprint`; allocs/op must still read 0.
func BenchmarkPacketPathFingerprinted(b *testing.B) {
	eng := sim.NewEngine()
	star := fabric.NewStar(eng, fabric.StarConfig{
		Hosts: 2,
		Rate:  10 * fabric.Gbps,
		Prop:  10 * sim.Microsecond,
		SwitchPort: func() fabric.PortConfig {
			return fabric.PortConfig{Queues: 1}
		},
	})
	rec := digest.New(digest.Config{EpochNs: int64(sim.Millisecond), Fine: true, FineAtEpoch: 1 << 30})
	sc := rec.ScopeFor(eng)
	sc.Register(digest.ComponentEngine, "engine", eng)
	for i := 0; i < star.Switch.NumPorts(); i++ {
		label := "sw.p0"
		if i == 1 {
			label = "sw.p1"
		}
		sc.Register(digest.ComponentPort, label, star.Switch.Port(i))
	}
	var tick func()
	tick = func() {
		sc.Snapshot(int64(eng.Now()))
		eng.After(sim.Millisecond, tick)
	}
	eng.After(0, tick)
	eng.SetPostEvent(func(now sim.Time, executed uint64) { sc.FineSnapshot(executed, int64(now)) })
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP}, star.Hosts)
	st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: 1, Size: 1 << 40})
	eng.RunUntil(50 * sim.Millisecond) // warm pools past slow start
	b.ReportAllocs()
	b.ResetTimer()
	start := eng.Executed
	for i := 0; i < b.N; i++ {
		eng.RunUntil(eng.Now() + sim.Millisecond)
	}
	b.ReportMetric(float64(eng.Executed)/float64(b.N), "events/op")
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(eng.Executed-start)/el, "events/sec")
	}
	b.ReportMetric(float64(len(rec.Records())), "digest-records")
}

// BenchmarkPacketPathProfiled is BenchmarkPacketPathSteadyState with the
// cost profiler's deterministic plane attached: scope brackets on both
// switch ports and the transport stack plus the per-event attribution
// hook. The delta against the bare bench is the whole cost of
// `tcnsim -profile`; the tcnbench gate holds it within 5% ns/op of the
// committed baseline, and the AllocsPerRun pin below fails fast if the
// attribution path ever allocates.
func BenchmarkPacketPathProfiled(b *testing.B) {
	eng := sim.NewEngine()
	star := fabric.NewStar(eng, fabric.StarConfig{
		Hosts: 2,
		Rate:  10 * fabric.Gbps,
		Prop:  10 * sim.Microsecond,
		SwitchPort: func() fabric.PortConfig {
			return fabric.PortConfig{Queues: 1}
		},
	})
	p := prof.New(prof.Config{})
	p.AttachEngine(eng)
	for i := 0; i < star.Switch.NumPorts(); i++ {
		label := "sw.p0"
		if i == 1 {
			label = "sw.p1"
		}
		star.Switch.Port(i).SetProfiler(p, label)
	}
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP}, star.Hosts)
	st.SetProfiler(p)
	st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: 1, Size: 1 << 40})
	eng.RunUntil(50 * sim.Millisecond) // warm pools, slow start, and the scope tree
	if a := testing.AllocsPerRun(10, func() {
		eng.RunUntil(eng.Now() + 100*sim.Microsecond)
	}); a != 0 { //tcnlint:floatexact zero-alloc assertion, exact by definition
		b.Fatalf("profiled packet path allocates: %v allocs/run", a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := eng.Executed
	for i := 0; i < b.N; i++ {
		eng.RunUntil(eng.Now() + sim.Millisecond)
	}
	b.StopTimer()
	p.FinishEngine(eng)
	events, simNs := p.Totals()
	if events != eng.Executed || simNs != int64(eng.Now()) {
		b.Fatalf("profiler totals events=%d sim=%d, want %d/%d",
			events, simNs, eng.Executed, int64(eng.Now()))
	}
	b.ReportMetric(float64(eng.Executed)/float64(b.N), "events/op")
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(eng.Executed-start)/el, "events/sec")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkAblationProbabilisticTCN compares plain TCN with the RED-like
// probabilistic variant (§4.3) on synchronized long-lived ECN* flows.
// Deterministic single-threshold marking cuts all flows in the same RTT;
// probabilistic marking desynchronizes the cuts, which is what transports
// like DCQCN rely on for fairness. Reported metric: Jain's fairness index
// over per-flow goodput (1.0 = perfectly fair).
func BenchmarkAblationProbabilisticTCN(b *testing.B) {
	run := func(prob bool) float64 {
		eng := sim.NewEngine()
		rng := sim.NewRand(1)
		net := fabric.NewStar(eng, fabric.StarConfig{
			Hosts:     5,
			Rate:      fabric.Gbps,
			Prop:      2500 * sim.Nanosecond,
			HostDelay: 120 * sim.Microsecond,
			SwitchPort: func() fabric.PortConfig {
				var m core.Marker
				if prob {
					m = core.NewProbTCN(128*sim.Microsecond, 384*sim.Microsecond, 0.2, rng)
				} else {
					m = core.NewTCN(256 * sim.Microsecond)
				}
				return fabric.PortConfig{Queues: 1, BufferBytes: 96_000, Marker: m}
			},
		})
		st := transport.NewStack(eng, transport.Config{CC: transport.ECNStar, RTOMin: 10 * sim.Millisecond}, net.Hosts)
		delivered := map[pkt.FlowID]float64{}
		st.OnDeliver = func(_ sim.Time, f *transport.Flow, n int) { delivered[f.ID] += float64(n) }
		for src := 0; src < 4; src++ {
			st.Start(&transport.Flow{ID: st.NewFlowID(), Src: src, Dst: 4, Size: 1 << 40})
		}
		eng.RunUntil(2 * sim.Second)
		return metrics.JainFairness(delivered, len(delivered))
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "jain-plain-TCN")
		b.ReportMetric(run(true), "jain-prob-TCN")
	}
}

// BenchmarkAblationBufferModel contrasts the paper's fully shared port
// buffer against static per-queue partitioning under the prioritized
// workload. Sharing lets low-priority backlogs kill high-priority packets
// (the §6.1.3 effect TCN mitigates); partitioning protects the strict
// queue but wastes memory on idle queues.
func BenchmarkAblationBufferModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		shared := experiments.RunTestbedFCT(experiments.TestbedFCTConfig{
			Scheme: experiments.SchemeTCN, Sched: experiments.SchedSPDWRR,
			PIAS: true, Load: 0.9, Flows: 800, Seed: 1,
		})
		part := experiments.RunTestbedFCT(experiments.TestbedFCTConfig{
			Scheme: experiments.SchemeTCN, Sched: experiments.SchedSPDWRR,
			PIAS: true, Load: 0.9, Flows: 800, Seed: 1, PartitionBuffer: true,
		})
		b.ReportMetric(us(shared.Stats.P99Small), "shared-p99-small-us")
		b.ReportMetric(us(part.Stats.P99Small), "partitioned-p99-small-us")
		b.ReportMetric(float64(part.Drops)/float64(max(shared.Drops, 1)), "part/shared-drops")
	}
}

// BenchmarkDCQCNMarking runs the §4.3 DCQCN extension experiment: plain
// cut-off TCN vs RED-like probabilistic TCN under rate-based congestion
// control (the paper's named future work).
func BenchmarkDCQCNMarking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain := experiments.RunDCQCNMarking(experiments.DefaultDCQCNMarking())
		cfg := experiments.DefaultDCQCNMarking()
		cfg.Probabilistic = true
		prob := experiments.RunDCQCNMarking(cfg)
		b.ReportMetric(plain.AggGbps, "plain-agg-Gbps")
		b.ReportMetric(prob.AggGbps, "prob-agg-Gbps")
		b.ReportMetric(prob.Jain, "prob-jain")
	}
}

// BenchmarkObsOverheadFig1 measures the cost of full observability —
// registry counters, sojourn/occupancy histograms, marker instruments, and
// the packet tracer — against the identical uninstrumented run. The
// acceptance budget is <10% wall-clock; compare the two sub-benchmarks'
// ns/op.
func BenchmarkObsOverheadFig1(b *testing.B) {
	base := func() experiments.Fig1Config {
		cfg := experiments.DefaultFig1()
		cfg.FlowCounts = []int{8}
		cfg.Duration = sim.Second
		return cfg
	}
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.RunFig1(base())
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := base()
			cfg.Obs = &experiments.Obs{
				Registry: obs.NewRegistry(),
				Tracer:   trace.New(4096),
			}
			experiments.RunFig1(cfg)
		}
	})
}

// BenchmarkMarkingReactionTime measures the §4.3 "faster reaction to
// bursty traffic" claim directly: a step burst arrives at an idle qdisc
// and we record the delay until each scheme's first CE mark. TCN marks
// the first packet whose own sojourn crosses the threshold; CoDel must
// first observe a full interval of persistently high sojourn.
func BenchmarkMarkingReactionTime(b *testing.B) {
	firstMark := func(m core.Marker) sim.Time {
		eng := sim.NewEngine()
		var at sim.Time = -1
		q := qdisc.New(eng, qdisc.Config{
			Queues:   1,
			LineRate: fabric.Gbps,
			Marker:   m,
			Transmit: func(now sim.Time, p *pkt.Packet) {
				if at < 0 && p.ECN == pkt.CE {
					at = now
				}
			},
		})
		for i := 0; i < 400; i++ { // 600 KB step burst, drains in ~4.8 ms
			q.Enqueue(&pkt.Packet{Size: 1500, ECN: pkt.ECT0})
		}
		eng.Run()
		return at
	}
	for i := 0; i < b.N; i++ {
		tcn := firstMark(core.NewTCN(256 * sim.Microsecond))
		codel := firstMark(aqm.NewCoDel(1, sim.Time(51200), 1024*sim.Microsecond))
		b.ReportMetric(us(tcn), "tcn-first-mark-us")
		b.ReportMetric(us(codel), "codel-first-mark-us")
	}
}

// BenchmarkFlightSamplerRecord measures the flight recorder's sampler
// hot path — one probe read plus one ring append — including the
// in-place downsampling compactions as the ring wraps. Every sampler
// tick runs inside the simulation event loop, so the path must stay
// allocation-free; the bench asserts that with AllocsPerRun before
// timing. Baseline on the CI container: ~3 ns/op, 0 allocs/op.
func BenchmarkFlightSamplerRecord(b *testing.B) {
	rec := flight.New(flight.Config{SeriesCap: 4096})
	s := rec.Series("bench.depth_bytes")
	depth := 0.0
	probe := func(now sim.Time) float64 {
		depth += 1500
		if depth > 1e6 {
			depth = 0
		}
		return depth
	}
	var at sim.Time
	record := func() {
		at += 100 * sim.Microsecond
		s.Record(at, probe(at))
	}
	for i := 0; i < 2*4096; i++ {
		record() // warm past the first compactions
	}
	if a := testing.AllocsPerRun(1000, record); a != 0 { //tcnlint:floatexact zero-alloc assertion, exact by definition
		b.Fatalf("sampler hot path allocates: %v allocs/op", a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		record()
	}
}

// BenchmarkFlightSpanEvent measures the span tracker's per-packet event
// path (enqueue + transmit for a resident flow). In steady state —
// every flow already admitted through the reservoir — the path is one
// map lookup plus field updates and must not allocate. Baseline on the
// CI container: ~30 ns/op for the pair, 0 allocs/op.
func BenchmarkFlightSpanEvent(b *testing.B) {
	tr := flight.NewSpanTracker(1024, 1)
	pkts := make([]*pkt.Packet, 1024)
	for i := range pkts {
		pkts[i] = &pkt.Packet{Flow: pkt.FlowID(i), Kind: pkt.Data, Size: 1500, ECN: pkt.ECT0}
		tr.Enqueue(0, pkts[i]) // admit every flow up front
	}
	var at sim.Time
	i := 0
	event := func() {
		at += sim.Microsecond
		p := pkts[i&1023]
		i++
		tr.Enqueue(at, p)
		tr.Transmit(at+10*sim.Microsecond, p, 10*sim.Microsecond, i%8 == 0)
	}
	if a := testing.AllocsPerRun(1000, event); a != 0 { //tcnlint:floatexact zero-alloc assertion, exact by definition
		b.Fatalf("span event path allocates: %v allocs/op", a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		event()
	}
}

// BenchmarkPerfCampaignRecord measures the self-telemetry per-cell path:
// a tracker claim/finish pair plus the end-of-cell engine and pool
// report. Like the flight recorder's hot paths it must stay
// allocation-free — the campaign observes the simulator without ever
// perturbing it, so everything is a handful of atomic ops. The fake
// clock keeps this bench wall-clock free and deterministic.
func BenchmarkPerfCampaignRecord(b *testing.B) {
	var fakeNow int64
	camp := perf.NewCampaign(func() int64 { fakeNow += 1000; return fakeNow })
	camp.SweepStart(4, 1<<30)
	eng := sim.NewEngine()
	eng.SetMeter(camp.Meter())
	eng.At(0, func() {})
	eng.Run() // touch the counters so ReportEngine folds real values
	var pool pkt.Pool
	pool.Put(pool.Get())
	i := 0
	record := func() {
		w := i & 3
		camp.CellStart(w, i)
		camp.ReportEngine(eng)
		camp.ReportPool(&pool)
		camp.CellDone(w, i)
		i++
	}
	if a := testing.AllocsPerRun(1000, record); a != 0 { //tcnlint:floatexact zero-alloc assertion, exact by definition
		b.Fatalf("perf campaign record path allocates: %v allocs/op", a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		record()
	}
}

// BenchmarkTDigestAdd measures the streaming FCT sketch's per-sample
// path, including the periodic sort+compress flushes as the buffer
// cycles. The digest replaces per-flow slice accumulation in the sweep
// runners, so its record path must not allocate either — all merge
// scratch space is preallocated at construction.
func BenchmarkTDigestAdd(b *testing.B) {
	d := metrics.NewTDigest(metrics.DefaultCompression)
	x := 17.0
	add := func() {
		// A deterministic spread wide enough to exercise compression.
		x = x*1.7 + 3
		if x > 1e9 {
			x = 17
		}
		d.Add(x)
	}
	for i := 0; i < 1<<14; i++ {
		add() // warm past the first flushes
	}
	if a := testing.AllocsPerRun(10000, add); a != 0 { //tcnlint:floatexact zero-alloc assertion, exact by definition
		b.Fatalf("t-digest record path allocates: %v allocs/op", a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		add()
	}
	b.ReportMetric(d.Quantile(0.99), "p99-estimate")
}
