package tcn

import (
	"testing"

	"tcn/internal/core"
	"tcn/internal/digest"
	"tcn/internal/fabric"
	"tcn/internal/invariant"
	"tcn/internal/sim"
	"tcn/internal/trace"
	"tcn/internal/transport"
)

// TestPacketPathZeroAllocWithLedgerAttached pins the observability
// contract of the attribution layer: with a decision ledger, a pipeline
// recorder, and a packet tracer all hooked onto the bottleneck port, the
// steady-state packet path still allocates nothing. Verdicts live in a
// per-port scratch struct, ledger cells and rings are created during
// warm-up, and recording is copy-into-preallocated-memory from then on.
func TestPacketPathZeroAllocWithLedgerAttached(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant.Checkf boxes its arguments; allocation-freedom only holds in normal builds")
	}
	eng := sim.NewEngine()
	star := fabric.NewStar(eng, fabric.StarConfig{
		Hosts: 2,
		Rate:  10 * fabric.Gbps,
		Prop:  10 * sim.Microsecond,
		SwitchPort: func() fabric.PortConfig {
			// The switch egress is the bottleneck (hosts inject at 10 Gbps)
			// so a standing queue forms and TCN actually fires.
			return fabric.PortConfig{Queues: 1, Rate: fabric.Gbps, Marker: core.NewTCN(50 * sim.Microsecond)}
		},
	})
	ledger := trace.NewLedger(1 << 12)
	pipeline := trace.NewPipeline(1 << 12)
	tracer := trace.New(1 << 12)
	for i := 0; i < star.Switch.NumPorts(); i++ {
		label := "sw.p0"
		if i == 1 {
			label = "sw.p1"
		}
		p := star.Switch.Port(i)
		tracer.AttachPort(label, p)
		ledger.AttachPort(label, p)
		pipeline.AttachPort(label, p)
	}
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP}, star.Hosts)
	st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: 1, Size: 1 << 40})
	eng.RunUntil(50 * sim.Millisecond) // warm pools, rings, and ledger cells

	allocs := testing.AllocsPerRun(5, func() {
		eng.RunUntil(eng.Now() + sim.Millisecond)
	})
	if allocs != 0 { //tcnlint:floatexact AllocsPerRun must be exactly zero
		t.Fatalf("steady-state packet path allocates %.1f/op with attribution attached, want 0", allocs)
	}
	if ledger.Marked() == 0 {
		t.Fatal("scenario never marked: the zero-alloc claim was not exercised")
	}
	if pipeline.Recorded() == 0 {
		t.Fatal("pipeline recorded nothing")
	}
	// The attribution stayed causally complete while allocation-free.
	if ledger.Marked() != tracer.Count(trace.Mark) {
		t.Fatalf("ledger marked=%d, tracer marks=%d", ledger.Marked(), tracer.Count(trace.Mark))
	}
	for _, e := range ledger.Events() {
		if e.V.Reason == core.ReasonUnknown {
			t.Fatalf("verdict without a reason: %+v", e)
		}
	}
}

// TestPacketPathZeroAllocWithFingerprintAttached pins the same contract
// for run fingerprinting: with per-component digest chains snapshotting
// every simulated millisecond (and the per-event fine digests live), the
// steady-state packet path still allocates nothing. The recorder's
// record store and every scope's scratch hash are preallocated; an epoch
// snapshot is pure field reads folded through the hash.
func TestPacketPathZeroAllocWithFingerprintAttached(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant.Checkf boxes its arguments; allocation-freedom only holds in normal builds")
	}
	eng := sim.NewEngine()
	star := fabric.NewStar(eng, fabric.StarConfig{
		Hosts: 2,
		Rate:  10 * fabric.Gbps,
		Prop:  10 * sim.Microsecond,
		SwitchPort: func() fabric.PortConfig {
			return fabric.PortConfig{Queues: 1, Rate: fabric.Gbps, Marker: core.NewTCN(50 * sim.Microsecond)}
		},
	})
	rec := digest.New(digest.Config{EpochNs: int64(sim.Millisecond), Fine: true, FineAtEpoch: 1 << 30})
	sc := rec.ScopeFor(eng)
	sc.Register(digest.ComponentEngine, "engine", eng)
	for i := 0; i < star.Switch.NumPorts(); i++ {
		label := "sw.p0"
		if i == 1 {
			label = "sw.p1"
		}
		sc.Register(digest.ComponentPort, label, star.Switch.Port(i))
	}
	// The epoch ticker, exactly as the experiment runners wire it.
	var tick func()
	tick = func() {
		sc.Snapshot(int64(eng.Now()))
		eng.After(sim.Millisecond, tick)
	}
	eng.After(0, tick)
	// Fine mode armed far in the future: the steady-state cost of fine
	// support is one boolean test per event, and it must stay free too.
	eng.SetPostEvent(func(now sim.Time, executed uint64) { sc.FineSnapshot(executed, int64(now)) })

	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP}, star.Hosts)
	st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: 1, Size: 1 << 40})
	eng.RunUntil(50 * sim.Millisecond) // warm pools and the record store

	allocs := testing.AllocsPerRun(5, func() {
		eng.RunUntil(eng.Now() + sim.Millisecond)
	})
	if allocs != 0 { //tcnlint:floatexact AllocsPerRun must be exactly zero
		t.Fatalf("steady-state packet path allocates %.1f/op with fingerprinting attached, want 0", allocs)
	}
	if len(rec.Records()) == 0 {
		t.Fatal("recorder captured no epoch records: the zero-alloc claim was not exercised")
	}
	last := rec.Records()[len(rec.Records())-1]
	if last.Digest == 0 && rec.Records()[0].Digest == 0 {
		t.Fatal("digest chain never folded any state")
	}
}
