module tcn

go 1.22
