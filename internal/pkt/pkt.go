// Package pkt defines the packet model shared by every layer of the
// simulator: ECN codepoints, DSCP-based service classes, and the transport
// header fields the TCP models need.
//
// A single flat struct (rather than layered headers) keeps the hot enqueue/
// dequeue path allocation-free and cache-friendly; the fields correspond
// one-to-one to the IP/TCP header bits the paper's mechanisms read or write.
package pkt

import (
	"fmt"

	"tcn/internal/sim"
)

// ECN is the two-bit ECN field of the IP header (RFC 3168).
type ECN uint8

// ECN codepoints.
const (
	NotECT ECN = iota // not ECN-capable transport
	ECT1              // ECN-capable transport, codepoint 1
	ECT0              // ECN-capable transport, codepoint 0
	CE                // congestion experienced
)

// String returns the RFC 3168 name of the codepoint.
func (e ECN) String() string {
	switch e {
	case NotECT:
		return "Not-ECT"
	case ECT0:
		return "ECT(0)"
	case ECT1:
		return "ECT(1)"
	case CE:
		return "CE"
	default:
		return fmt.Sprintf("ECN(%d)", uint8(e))
	}
}

// ECNCapable reports whether a marker is allowed to set CE on this
// codepoint. CE packets stay CE.
func (e ECN) ECNCapable() bool { return e == ECT0 || e == ECT1 || e == CE }

// Kind distinguishes the packet types the transports exchange.
type Kind uint8

// Packet kinds.
const (
	Data Kind = iota // TCP data segment
	Ack              // pure acknowledgment
	Ping             // latency probe request
	Pong             // latency probe reply
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Ping:
		return "ping"
	case Pong:
		return "pong"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Header and frame size constants, matching the paper's MTU-1500 Ethernet
// setup.
const (
	MTU        = 1500 // bytes, IP MTU
	HeaderSize = 40   // bytes, IP + TCP headers without options
	MSS        = MTU - HeaderSize
	AckSize    = HeaderSize // pure ACKs are header-only
)

// FlowID identifies a transport flow. IDs are dense small integers assigned
// by the experiment, which lets per-flow state live in slices.
type FlowID int32

// Packet is one simulated frame. Packets are allocated by the sending
// transport and owned by exactly one queue or link at a time; models must
// not retain a packet after handing it downstream.
type Packet struct {
	Flow FlowID
	Src  int // host id
	Dst  int // host id

	Kind Kind
	Size int // wire size in bytes, including HeaderSize

	// Transport header fields.
	Seq    int64    // first payload byte offset (Data) or echoed probe id (Ping/Pong)
	Len    int      // payload bytes carried
	Ack    int64    // cumulative ACK: next byte expected (Ack kind)
	ECE    bool     // ECN-echo flag on ACKs
	DupACK bool     // receiver saw out-of-order data (diagnostic)
	Echo   sim.Time // SentAt of the segment this ACK responds to (RTT sampling)

	// IP header fields.
	ECN  ECN
	DSCP uint8 // service class; classifiers map DSCP -> queue index

	// Metadata attached by the network (the paper's "enqueue-time
	// timestamp" from §4.2 is EnqueuedAt).
	SentAt     sim.Time // leave time at the sending transport
	EnqueuedAt sim.Time // set on every queue admission, read at dequeue
	Hops       int      // switch hops traversed, for sanity checks
	SchedTag   float64  // per-packet scheduler tag (WFQ finish time, PIFO rank)
}

// Sojourn returns the time the packet has spent in its current queue.
func (p *Packet) Sojourn(now sim.Time) sim.Time { return now - p.EnqueuedAt }

// Mark sets CE if the packet belongs to an ECN-capable transport and
// reports whether the mark was applied.
func (p *Packet) Mark() bool {
	if !p.ECN.ECNCapable() {
		return false
	}
	p.ECN = CE
	return true
}

// String renders a compact single-line description for traces and tests.
func (p *Packet) String() string {
	return fmt.Sprintf("%s flow=%d %d->%d seq=%d len=%d size=%d dscp=%d ecn=%s",
		p.Kind, p.Flow, p.Src, p.Dst, p.Seq, p.Len, p.Size, p.DSCP, p.ECN)
}
