package pkt

import (
	"strings"
	"testing"

	"tcn/internal/sim"
)

func TestECNCapability(t *testing.T) {
	cases := []struct {
		e    ECN
		want bool
	}{
		{NotECT, false},
		{ECT0, true},
		{ECT1, true},
		{CE, true},
	}
	for _, c := range cases {
		if got := c.e.ECNCapable(); got != c.want {
			t.Errorf("%v.ECNCapable() = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestECNStrings(t *testing.T) {
	for e, want := range map[ECN]string{
		NotECT:  "Not-ECT",
		ECT0:    "ECT(0)",
		ECT1:    "ECT(1)",
		CE:      "CE",
		ECN(99): "ECN(99)",
	} {
		if got := e.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", e, got, want)
		}
	}
}

func TestMark(t *testing.T) {
	p := &Packet{ECN: ECT0}
	if !p.Mark() || p.ECN != CE {
		t.Fatal("ECT(0) packet should mark to CE")
	}
	// CE stays CE and still reports marked.
	if !p.Mark() || p.ECN != CE {
		t.Fatal("CE packet should remain CE")
	}
	q := &Packet{ECN: NotECT}
	if q.Mark() {
		t.Fatal("Not-ECT packet must not be marked")
	}
	if q.ECN != NotECT {
		t.Fatal("Not-ECT codepoint must be preserved")
	}
}

func TestSojourn(t *testing.T) {
	p := &Packet{EnqueuedAt: 100 * sim.Nanosecond}
	if got := p.Sojourn(350 * sim.Nanosecond); got != 250 {
		t.Fatalf("Sojourn = %v, want 250", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Data: "data", Ack: "ack", Ping: "ping", Pong: "pong", Kind(9): "kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Flow: 3, Src: 1, Dst: 2, Kind: Data, Seq: 1460, Len: 1460, Size: 1500, DSCP: 4, ECN: CE}
	s := p.String()
	for _, want := range []string{"data", "flow=3", "1->2", "seq=1460", "dscp=4", "CE"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestSizeConstants(t *testing.T) {
	if MSS != MTU-HeaderSize {
		t.Fatalf("MSS %d != MTU-HeaderSize %d", MSS, MTU-HeaderSize)
	}
	if AckSize != HeaderSize {
		t.Fatal("pure ACKs should be header-only")
	}
	var _ sim.Time = (&Packet{}).EnqueuedAt
}
