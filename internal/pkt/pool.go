package pkt

// Pool recycles Packet structs along one simulation's packet path. The
// transport stacks allocate every data segment and ACK from their pool and
// return each packet once it has been consumed at its destination, so a
// steady-state run stops allocating on the packet path entirely.
//
// A Pool is deliberately not safe for concurrent use and must never be
// shared across goroutines (the tcnlint goshare analyzer enforces this):
// like the event freelist in sim.Engine, it belongs to exactly one engine,
// which is what lets the parallel sweep executor run one fully independent
// simulation per worker without locks.
//
// Ownership rules mirror the Packet contract: a packet handed to Put must
// be dead — owned by no queue, link, or pending event. Packets dropped in
// the network never come back (they fall to the garbage collector), which
// only costs fresh allocations at the rare drop sites. Get may return a
// dirty packet; callers must initialize every field, which the `*p =
// Packet{...}` whole-struct literal at each send site does by construction.
type Pool struct {
	free []*Packet

	// Allocs counts packets created fresh because the freelist was empty;
	// Reuses counts recycled hand-outs. Diagnostics only.
	Allocs, Reuses int64
}

// Get returns a packet for the caller to initialize fully. The packet may
// contain stale field values from a previous life.
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		pl.Reuses++
		return p
	}
	pl.Allocs++
	return &Packet{}
}

// Put returns a dead packet to the pool. Put(nil) and puts on a nil pool
// are no-ops.
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	pl.free = append(pl.free, p) //tcnlint:hotpath freelist grows only during warm-up; steady state recycles within cap
}

// Live returns the number of packets currently parked in the pool.
func (pl *Pool) Live() int {
	if pl == nil {
		return 0
	}
	return len(pl.free)
}
