package experiments

import (
	"fmt"

	"tcn/internal/fabric"
	"tcn/internal/metrics"
	"tcn/internal/parallel"
	"tcn/internal/sim"
	"tcn/internal/transport"
)

// Fig1Config parameterizes the per-port RED policy-violation experiment
// (§3.2.2, Figure 1): two services share a DWRR port; service 1 always
// has one long flow, service 2 scales its flow count; under per-port RED
// the aggregate goodput drifts toward service 2, violating the 50/50
// scheduling policy.
type Fig1Config struct {
	// Scheme is the marking scheme (the figure uses SchemePortRED; run
	// SchemeTCN for the contrast row).
	Scheme Scheme
	// FlowCounts lists the service-2 flow counts to sweep (paper: 2-16).
	FlowCounts []int
	// Duration is the measured run length per point.
	Duration sim.Time
	// Seed feeds all randomness.
	Seed int64
	// Obs, if non-nil, receives per-port stats and packet traces for
	// every sweep point, labelled fig1.<scheme>.n<flows>. Attaching any
	// sink forces serial execution.
	Obs *Obs
	// Workers bounds the number of points evaluated concurrently; <= 1
	// runs serially. Results are identical at any width.
	Workers int
}

// DefaultFig1 returns the paper's configuration.
func DefaultFig1() Fig1Config {
	return Fig1Config{
		Scheme:     SchemePortRED,
		FlowCounts: []int{1, 2, 4, 8, 16},
		Duration:   2 * sim.Second,
		Seed:       1,
	}
}

// Fig1Point is one x-position of Figure 1.
type Fig1Point struct {
	Service2Flows int
	Service1Mbps  float64
	Service2Mbps  float64
	Service2Share float64 // fraction of total goodput
	TotalMbps     float64
}

// Fig1Result is the full sweep.
type Fig1Result struct {
	Scheme Scheme
	Points []Fig1Point
}

// RunFig1 executes the sweep. The topology is the testbed's: 3 servers on
// a 1 GbE switch, DCTCP, DWRR with 2 equal-quantum queues, and a per-port
// marking threshold of 30 KB as the DCTCP paper recommends.
func RunFig1(cfg Fig1Config) Fig1Result {
	return Fig1Result{
		Scheme: cfg.Scheme,
		Points: parallel.RunTracked(sweepWorkers(cfg.Workers, cfg.Obs), len(cfg.FlowCounts), cfg.Obs.Tracker(),
			func(i int) Fig1Point { return runFig1Point(cfg, cfg.FlowCounts[i]) }),
	}
}

func runFig1Point(cfg Fig1Config, n int) Fig1Point {
	eng := sim.NewEngine()
	cfg.Obs.AttachEngine(eng)
	rng := sim.NewRand(cfg.Seed)
	cfg.Obs.AttachRand(eng, rng)

	pp := PortParams{
		Queues:    2,
		Buffer:    96_000,
		Quantum:   1500,
		RTTLambda: 256 * sim.Microsecond,
		KBytes:    30_000,
		TIdle:     fabric.Gbps.Serialize(1500),
	}
	net := fabric.NewStar(eng, fabric.StarConfig{
		Hosts:      3,
		Rate:       fabric.Gbps,
		Prop:       2500 * sim.Nanosecond,
		HostDelay:  120 * sim.Microsecond,
		SwitchPort: pp.Factory(cfg.Scheme, SchedDWRR, rng),
	})
	cfg.Obs.AttachStar(fmt.Sprintf("fig1.%s.n%d", cfg.Scheme, n), net)
	st := transport.NewStack(eng, transport.Config{
		CC:     transport.DCTCP,
		RTOMin: 10 * sim.Millisecond,
	}, net.Hosts)
	cfg.Obs.AttachTransport(st)

	meter := metrics.NewGoodputMeter(2, 100*sim.Millisecond)
	st.OnDeliver = func(now sim.Time, f *transport.Flow, b int) {
		meter.Add(now, int(f.Class), b)
	}

	const recv = 2
	// Service 1: one long flow from host 0 in class 0.
	st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: recv, Size: 1 << 40, Class: 0})
	// Service 2: n long flows from host 1 in class 1.
	for i := 0; i < n; i++ {
		st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 1, Dst: recv, Size: 1 << 40, Class: 1})
	}

	eng.RunUntil(cfg.Duration)

	// Skip the first quarter as warm-up.
	from, to := cfg.Duration/4, cfg.Duration
	s1 := meter.AvgMbpsBetween(0, from, to)
	s2 := meter.AvgMbpsBetween(1, from, to)
	total := s1 + s2
	share := 0.0
	if total > 0 {
		share = s2 / total
	}
	cfg.Obs.ReportCell(eng, st.Pool())
	return Fig1Point{
		Service2Flows: n,
		Service1Mbps:  s1,
		Service2Mbps:  s2,
		Service2Share: share,
		TotalMbps:     total,
	}
}
