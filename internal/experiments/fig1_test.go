package experiments

import (
	"testing"

	"tcn/internal/sim"
)

// TestFig1PortREDViolatesPolicy reproduces Remark 2: under per-port RED,
// the service with more flows grabs more than its DWRR share, and the
// violation grows with the flow count.
func TestFig1PortREDViolatesPolicy(t *testing.T) {
	cfg := DefaultFig1()
	cfg.FlowCounts = []int{1, 8, 16}
	cfg.Duration = sim.Second
	res := RunFig1(cfg)

	last := res.Points[len(res.Points)-1]
	if last.Service2Share < 0.6 {
		t.Fatalf("per-port RED with 16 flows: service 2 share %.2f, want > 0.6 (policy violation)", last.Service2Share)
	}
	first := res.Points[0]
	if last.Service2Share <= first.Service2Share {
		t.Fatalf("violation should grow with flows: share(1)=%.2f share(16)=%.2f",
			first.Service2Share, last.Service2Share)
	}
	// The link should still be fully used.
	if last.TotalMbps < 850 {
		t.Fatalf("link underutilized: %.0f Mbps", last.TotalMbps)
	}
}

// TestFig1TCNPreservesPolicy is the contrast: TCN keeps the 50/50 DWRR
// split regardless of per-service flow counts.
func TestFig1TCNPreservesPolicy(t *testing.T) {
	cfg := DefaultFig1()
	cfg.Scheme = SchemeTCN
	cfg.FlowCounts = []int{1, 16}
	cfg.Duration = sim.Second
	res := RunFig1(cfg)

	for _, p := range res.Points {
		if p.Service2Share < 0.42 || p.Service2Share > 0.58 {
			t.Fatalf("TCN with %d flows: service 2 share %.2f, want ~0.5",
				p.Service2Flows, p.Service2Share)
		}
		if p.TotalMbps < 850 {
			t.Fatalf("link underutilized under TCN: %.0f Mbps", p.TotalMbps)
		}
	}
}
