package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tcn/internal/obs"
	"tcn/internal/sim"
	"tcn/internal/trace"
)

func obsFig1Config() Fig1Config {
	cfg := DefaultFig1()
	cfg.FlowCounts = []int{2}
	cfg.Duration = 200 * sim.Millisecond
	return cfg
}

// sumSuffix totals every counter whose name ends in suffix.
func sumSuffix(snap obs.Snapshot, suffix string) int64 {
	var n int64
	for _, c := range snap.Counters {
		if strings.HasSuffix(c.Name, suffix) {
			n += c.Value
		}
	}
	return n
}

// TestObsReconcilesWithTrace pins the contract between the two
// observability paths: for the same run, the registry's per-queue counters
// and the tracer's event counts must agree exactly — tx counts every
// transmission (the tracer splits CE ones out as Mark events), mark counts
// CE-at-transmit, drop counts admission rejections.
func TestObsReconcilesWithTrace(t *testing.T) {
	o := &Obs{Registry: obs.NewRegistry(), Tracer: trace.New(1024)}
	cfg := obsFig1Config()
	cfg.Obs = o
	RunFig1(cfg)

	snap := o.Registry.Snapshot()
	tx := sumSuffix(snap, ".tx_packets")
	mark := sumSuffix(snap, ".mark_packets")
	drop := sumSuffix(snap, ".drop_packets")
	if tx == 0 {
		t.Fatal("no transmissions recorded")
	}
	if mark == 0 {
		t.Fatal("PortRED at 2s never marked — instrumentation lost the marks")
	}
	if got := o.Tracer.Count(trace.Transmit) + o.Tracer.Count(trace.Mark); got != tx {
		t.Errorf("tracer tx+mark = %d, registry tx_packets = %d", got, tx)
	}
	if got := o.Tracer.Count(trace.Mark); got != mark {
		t.Errorf("tracer marks = %d, registry mark_packets = %d", got, mark)
	}
	if got := o.Tracer.Count(trace.Drop); got != drop {
		t.Errorf("tracer drops = %d, registry drop_packets = %d", got, drop)
	}

	// Enqueue conservation: everything admitted is either still queued
	// (nothing, after the run drains or not) or transmitted; enq >= tx.
	enq := sumSuffix(snap, ".enq_packets")
	if enq < tx {
		t.Errorf("enq_packets %d < tx_packets %d", enq, tx)
	}

	// The marker's own counter agrees with the port-level mark counters.
	if mm := sumSuffix(snap, ".marker.marks"); mm != mark {
		t.Errorf("marker.marks = %d, port mark_packets = %d", mm, mark)
	}
}

// TestObsStatsJSONDeterministic pins the acceptance criterion that
// identical seeds produce byte-identical -stats JSON.
func TestObsStatsJSONDeterministic(t *testing.T) {
	render := func() []byte {
		o := &Obs{Registry: obs.NewRegistry()}
		cfg := obsFig1Config()
		cfg.Obs = o
		RunFig1(cfg)
		var buf bytes.Buffer
		if err := o.Registry.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("identical seeds produced different stats JSON")
	}
	if !bytes.Contains(a, []byte("sojourn_ns")) {
		t.Error("snapshot missing sojourn histograms")
	}
}

// TestObsNilSafe: a nil *Obs and an Obs with nil fields attach nothing and
// never panic, so runners can call Attach unconditionally.
func TestObsNilSafe(t *testing.T) {
	cfg := obsFig1Config()
	cfg.Obs = nil
	RunFig1(cfg)     // nil receiver path
	cfg.Obs = &Obs{} // both sinks nil
	RunFig1(cfg)
}

// TestObsInstrumentedResultUnchanged: attaching observers must not change
// the simulation — same seed, same goodput split, observed or not.
func TestObsInstrumentedResultUnchanged(t *testing.T) {
	bare := RunFig1(obsFig1Config())
	cfg := obsFig1Config()
	cfg.Obs = &Obs{Registry: obs.NewRegistry(), Tracer: trace.New(64)}
	observed := RunFig1(cfg)
	if bare.Points[0] != observed.Points[0] {
		t.Fatalf("instrumentation perturbed the run:\nbare     %+v\nobserved %+v",
			bare.Points[0], observed.Points[0])
	}
}
