package experiments

import (
	"encoding/json"
	"testing"

	"tcn/internal/obs"
	"tcn/internal/obs/flight"
	"tcn/internal/trace"
)

// snapshotJSON serializes a sweep result so runs can be compared byte for
// byte: any divergence in any cell — stats, records, drops — shows up.
func snapshotJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestTestbedSweepParallelDeterminism asserts that the testbed sweep's
// output is byte-identical at any worker count: every cell owns its engine
// and randomness, so scheduling cannot leak into results.
func TestTestbedSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	cfg := SweepConfig{
		Loads:   []float64{0.5, 0.8},
		Flows:   300,
		Seed:    7,
		Schemes: []Scheme{SchemeTCN, SchemeRED},
	}
	serialCfg, parallelCfg := cfg, cfg
	serialCfg.Workers = 1
	parallelCfg.Workers = 8
	serial := snapshotJSON(t, RunFig6(serialCfg))
	par := snapshotJSON(t, RunFig6(parallelCfg))
	if serial != par {
		t.Fatal("fig6 sweep diverged between workers=1 and workers=8")
	}
}

// TestLeafSpineSweepParallelDeterminism covers the leaf-spine runner the
// same way on a CI-sized fabric.
func TestLeafSpineSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	cfg := LeafSpineSweepConfig{
		Loads: []float64{0.5, 0.9},
		Flows: 200,
		Seed:  7,
		Schemes: []Scheme{
			SchemeTCN, SchemeRED,
		},
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
	}
	serialCfg, parallelCfg := cfg, cfg
	serialCfg.Workers = 1
	parallelCfg.Workers = 8
	serial := snapshotJSON(t, RunFig10(serialCfg))
	par := snapshotJSON(t, RunFig10(parallelCfg))
	if serial != par {
		t.Fatal("fig10 sweep diverged between workers=1 and workers=8")
	}
}

// TestFig1ParallelDeterminism covers the Figure 1 point sweep.
func TestFig1ParallelDeterminism(t *testing.T) {
	cfg := DefaultFig1()
	cfg.FlowCounts = []int{1, 2, 4}
	cfg.Duration /= 4
	serialCfg, parallelCfg := cfg, cfg
	serialCfg.Workers = 1
	parallelCfg.Workers = 8
	serial := snapshotJSON(t, RunFig1(serialCfg))
	par := snapshotJSON(t, RunFig1(parallelCfg))
	if serial != par {
		t.Fatal("fig1 sweep diverged between workers=1 and workers=8")
	}
}

// TestDCQCNSweepParallelDeterminism covers the DCQCN marking comparison.
func TestDCQCNSweepParallelDeterminism(t *testing.T) {
	cfg := DefaultDCQCNSweep()
	cfg.Senders = []int{2, 4}
	cfg.Base.Warmup /= 4
	cfg.Base.Measure /= 4
	serialCfg, parallelCfg := cfg, cfg
	serialCfg.Workers = 1
	parallelCfg.Workers = 8
	serial := snapshotJSON(t, RunDCQCNSweep(serialCfg))
	par := snapshotJSON(t, RunDCQCNSweep(parallelCfg))
	if serial != par {
		t.Fatal("dcqcn sweep diverged between workers=1 and workers=8")
	}
}

// TestObsInstrumentedParallelRunMatchesBare asserts two things at once:
// attaching the full observability bundle does not perturb sweep results,
// and requesting workers alongside an Obs bundle (which clamps to serial)
// still yields the exact bare-parallel output.
func TestObsInstrumentedParallelRunMatchesBare(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	cfg := SweepConfig{
		Loads:   []float64{0.7},
		Flows:   300,
		Seed:    3,
		Schemes: []Scheme{SchemeTCN},
		Workers: 8,
	}
	bare := snapshotJSON(t, RunFig6(cfg))

	instrumented := cfg
	instrumented.Obs = &Obs{
		Registry: obs.NewRegistry(),
		Tracer:   trace.New(1 << 12),
		Flight:   flight.New(flight.Config{}),
	}
	withObs := snapshotJSON(t, RunFig6(instrumented))
	if bare != withObs {
		t.Fatal("obs-instrumented sweep diverged from bare sweep")
	}
}

// TestSweepWorkersClamp pins the clamp rule: observers force serial, bare
// sweeps honor the request, and zero means serial.
func TestSweepWorkersClamp(t *testing.T) {
	if got := sweepWorkers(8, nil); got != 8 {
		t.Fatalf("sweepWorkers(8, nil) = %d, want 8", got)
	}
	if got := sweepWorkers(0, nil); got != 1 {
		t.Fatalf("sweepWorkers(0, nil) = %d, want 1", got)
	}
	if got := sweepWorkers(8, &Obs{}); got != 8 {
		t.Fatalf("sweepWorkers(8, empty Obs) = %d, want 8 (no sinks attached)", got)
	}
	withReg := &Obs{Registry: obs.NewRegistry()}
	if got := sweepWorkers(8, withReg); got != 1 {
		t.Fatalf("sweepWorkers(8, Obs with registry) = %d, want 1", got)
	}
}
