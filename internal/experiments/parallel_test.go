package experiments

import (
	"encoding/json"
	"math"
	"sort"
	"testing"

	"tcn/internal/metrics"
	"tcn/internal/obs"
	"tcn/internal/obs/flight"
	"tcn/internal/obs/perf"
	"tcn/internal/trace"
)

// snapshotJSON serializes a sweep result so runs can be compared byte for
// byte: any divergence in any cell — stats, records, drops — shows up.
func snapshotJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestTestbedSweepParallelDeterminism asserts that the testbed sweep's
// output is byte-identical at any worker count: every cell owns its engine
// and randomness, so scheduling cannot leak into results.
func TestTestbedSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	cfg := SweepConfig{
		Loads:   []float64{0.5, 0.8},
		Flows:   300,
		Seed:    7,
		Schemes: []Scheme{SchemeTCN, SchemeRED},
	}
	serialCfg, parallelCfg := cfg, cfg
	serialCfg.Workers = 1
	parallelCfg.Workers = 8
	serial := snapshotJSON(t, RunFig6(serialCfg))
	par := snapshotJSON(t, RunFig6(parallelCfg))
	if serial != par {
		t.Fatal("fig6 sweep diverged between workers=1 and workers=8")
	}
}

// TestLeafSpineSweepParallelDeterminism covers the leaf-spine runner the
// same way on a CI-sized fabric.
func TestLeafSpineSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	cfg := LeafSpineSweepConfig{
		Loads: []float64{0.5, 0.9},
		Flows: 200,
		Seed:  7,
		Schemes: []Scheme{
			SchemeTCN, SchemeRED,
		},
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
	}
	serialCfg, parallelCfg := cfg, cfg
	serialCfg.Workers = 1
	parallelCfg.Workers = 8
	serial := snapshotJSON(t, RunFig10(serialCfg))
	par := snapshotJSON(t, RunFig10(parallelCfg))
	if serial != par {
		t.Fatal("fig10 sweep diverged between workers=1 and workers=8")
	}
}

// TestFig1ParallelDeterminism covers the Figure 1 point sweep.
func TestFig1ParallelDeterminism(t *testing.T) {
	cfg := DefaultFig1()
	cfg.FlowCounts = []int{1, 2, 4}
	cfg.Duration /= 4
	serialCfg, parallelCfg := cfg, cfg
	serialCfg.Workers = 1
	parallelCfg.Workers = 8
	serial := snapshotJSON(t, RunFig1(serialCfg))
	par := snapshotJSON(t, RunFig1(parallelCfg))
	if serial != par {
		t.Fatal("fig1 sweep diverged between workers=1 and workers=8")
	}
}

// TestDCQCNSweepParallelDeterminism covers the DCQCN marking comparison.
func TestDCQCNSweepParallelDeterminism(t *testing.T) {
	cfg := DefaultDCQCNSweep()
	cfg.Senders = []int{2, 4}
	cfg.Base.Warmup /= 4
	cfg.Base.Measure /= 4
	serialCfg, parallelCfg := cfg, cfg
	serialCfg.Workers = 1
	parallelCfg.Workers = 8
	serial := snapshotJSON(t, RunDCQCNSweep(serialCfg))
	par := snapshotJSON(t, RunDCQCNSweep(parallelCfg))
	if serial != par {
		t.Fatal("dcqcn sweep diverged between workers=1 and workers=8")
	}
}

// TestObsInstrumentedParallelRunMatchesBare asserts two things at once:
// attaching the full observability bundle does not perturb sweep results,
// and requesting workers alongside an Obs bundle (which clamps to serial)
// still yields the exact bare-parallel output.
func TestObsInstrumentedParallelRunMatchesBare(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	cfg := SweepConfig{
		Loads:   []float64{0.7},
		Flows:   300,
		Seed:    3,
		Schemes: []Scheme{SchemeTCN},
		Workers: 8,
	}
	bare := snapshotJSON(t, RunFig6(cfg))

	instrumented := cfg
	instrumented.Obs = &Obs{
		Registry: obs.NewRegistry(),
		Tracer:   trace.New(1 << 12),
		Flight:   flight.New(flight.Config{}),
	}
	withObs := snapshotJSON(t, RunFig6(instrumented))
	if bare != withObs {
		t.Fatal("obs-instrumented sweep diverged from bare sweep")
	}
}

// TestStreamingSweepWithCampaignDeterminism is satellite coverage for the
// streaming FCT default: with per-cell t-digests feeding a perf.Campaign,
// the sweep output must still be byte-identical at any worker count (the
// campaign is atomics-only, so unlike the rest of the Obs bundle it does
// not clamp the sweep serial), and the campaign must have seen every cell.
func TestStreamingSweepWithCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	cfg := LeafSpineSweepConfig{
		Loads:   []float64{0.5, 0.9},
		Flows:   200,
		Seed:    7,
		Schemes: []Scheme{SchemeTCN, SchemeRED},
		Leaves:  2, Spines: 2, HostsPerLeaf: 2,
	}
	serialCfg, parallelCfg := cfg, cfg
	serialCfg.Workers = 1
	serialCfg.Obs = &Obs{Perf: perf.NewCampaign(nil)}
	parallelCfg.Workers = 8
	parallelCfg.Obs = &Obs{Perf: perf.NewCampaign(nil)}

	serial := snapshotJSON(t, RunFig10(serialCfg))
	par := snapshotJSON(t, RunFig10(parallelCfg))
	if serial != par {
		t.Fatal("fig10 streaming sweep diverged between workers=1 and workers=8 with campaigns attached")
	}

	for name, c := range map[string]*perf.Campaign{
		"serial": serialCfg.Obs.Perf, "parallel": parallelCfg.Obs.Perf,
	} {
		s := c.SnapshotNow(true)
		if s.CellsTotal == 0 || s.CellsDone != s.CellsTotal {
			t.Errorf("%s campaign: cells %d/%d", name, s.CellsDone, s.CellsTotal)
		}
		if s.EventsExecuted == 0 || s.LiveEvents == 0 {
			t.Errorf("%s campaign: no engine events folded in (%+v)", name, s)
		}
		if s.PoolAllocs == 0 {
			t.Errorf("%s campaign: no pool counters folded in", name)
		}
		if s.Percentiles == nil {
			t.Errorf("%s campaign: no FCT digest percentiles", name)
		}
	}
}

// TestStreamingStatsMatchExact runs one real testbed cell in both FCT
// collector modes. The contract: every count and integer-sum average is
// bit-identical; only P99Small is an estimate, bounded by the t-digest's
// rank-error guarantee (±1% of rank against the exact sample).
func TestStreamingStatsMatchExact(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	cfg := TestbedFCTConfig{
		Scheme: SchemeTCN,
		Sched:  SchedDWRR,
		Load:   0.8,
		Flows:  600,
		Seed:   7,
	}
	exactCfg := cfg
	exactCfg.ExactFCT = true
	exact := RunTestbedFCT(exactCfg)
	stream := RunTestbedFCT(cfg)

	if len(exact.Records) == 0 {
		t.Fatal("exact mode retained no records")
	}
	if len(stream.Records) != 0 {
		t.Fatalf("streaming mode retained %d records", len(stream.Records))
	}
	if exact.Drops != stream.Drops || exact.Marks != stream.Marks || exact.Unfinished != stream.Unfinished {
		t.Fatalf("simulation outcomes diverged between modes: %+v vs %+v", exact, stream)
	}

	es, ss := exact.Stats, stream.Stats
	esNoP99, ssNoP99 := es, ss
	esNoP99.P99Small, ssNoP99.P99Small = 0, 0
	if esNoP99 != ssNoP99 {
		t.Fatalf("non-P99 stats diverged:\nexact  %+v\nstream %+v", esNoP99, ssNoP99)
	}
	if es.P99Small <= 0 || ss.P99Small <= 0 {
		t.Fatalf("P99Small missing: exact %v, stream %v", es.P99Small, ss.P99Small)
	}
	// The digest's guarantee is on rank: its P99 estimate must land
	// within ±1% of rank 0.99 in the exact small-flow sample. (Relative
	// value error depends on how sparse the tail is — on a few hundred
	// small flows the nearest-rank vs interpolation conventions alone
	// differ by a few percent, so rank is the meaningful bound.)
	var small []float64
	for _, r := range exact.Records {
		if r.Size <= metrics.SmallFlowMax {
			small = append(small, float64(r.FCT))
		}
	}
	sort.Float64s(small)
	rank := float64(sort.SearchFloat64s(small, float64(ss.P99Small))) / float64(len(small))
	if math.Abs(rank-0.99) > 0.01 {
		t.Fatalf("streaming P99Small %v lands at rank %.4f of the exact sample (want 0.99±0.01; exact P99 %v)",
			ss.P99Small, rank, es.P99Small)
	}
	rel := math.Abs(float64(ss.P99Small-es.P99Small)) / float64(es.P99Small)
	if rel > 0.10 {
		t.Fatalf("streaming P99Small %v vs exact %v: relative error %.4f > 10%%",
			ss.P99Small, es.P99Small, rel)
	}
	t.Logf("P99Small exact %v, streaming %v (rank %.4f, relative error %.4f)",
		es.P99Small, ss.P99Small, rank, rel)
}

// TestSweepWorkersClamp pins the clamp rule: observers force serial, bare
// sweeps honor the request, and zero means serial.
func TestSweepWorkersClamp(t *testing.T) {
	if got := sweepWorkers(8, nil); got != 8 {
		t.Fatalf("sweepWorkers(8, nil) = %d, want 8", got)
	}
	if got := sweepWorkers(0, nil); got != 1 {
		t.Fatalf("sweepWorkers(0, nil) = %d, want 1", got)
	}
	if got := sweepWorkers(8, &Obs{}); got != 8 {
		t.Fatalf("sweepWorkers(8, empty Obs) = %d, want 8 (no sinks attached)", got)
	}
	withReg := &Obs{Registry: obs.NewRegistry()}
	if got := sweepWorkers(8, withReg); got != 1 {
		t.Fatalf("sweepWorkers(8, Obs with registry) = %d, want 1", got)
	}
}
