package experiments

import (
	"fmt"
	"io"

	"tcn/internal/workload"
)

// PrintWorkloads writes the Figure 4 CDFs plus the summary statistics the
// paper cites (mean size; byte share of sub-10MB flows for web search).
func PrintWorkloads(w io.Writer) {
	for _, c := range workload.All {
		fmt.Fprintf(w, "%s (mean %.0f bytes, %.0f%% of bytes in flows <= 10MB)\n",
			c.Name(), c.Mean(), 100*c.FracBytesBelow(10_000_000))
		for _, p := range c.Points() {
			fmt.Fprintf(w, "  %12d bytes  %5.2f\n", p.Bytes, p.Frac)
		}
	}
}
