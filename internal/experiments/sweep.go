package experiments

// sweepWorkers resolves the fan-out width for a sweep: the requested count
// (<= 1 and 0 both mean serial), clamped to serial whenever an Obs bundle is
// attached. Each sweep cell builds its own engine, rand, and stacks from its
// config, so any worker count yields byte-identical results — but cells
// attaching to a shared registry/tracer/flight recorder would interleave
// writes into those sinks, so instrumented sweeps stay serial.
func sweepWorkers(requested int, o *Obs) int {
	if o.Active() {
		return 1
	}
	if requested < 1 {
		return 1
	}
	return requested
}

// grid maps a flat parallel point index back to (row, column) for sweeps
// shaped rows × cols, and reassembles the flat result slice into rows.
func gridRows[T any](flat []T, rows, cols int) [][]T {
	out := make([][]T, rows)
	for r := 0; r < rows; r++ {
		out[r] = flat[r*cols : (r+1)*cols : (r+1)*cols]
	}
	return out
}
