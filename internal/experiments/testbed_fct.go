package experiments

import (
	"fmt"

	"tcn/internal/fabric"
	"tcn/internal/metrics"
	"tcn/internal/pias"
	"tcn/internal/sim"
	"tcn/internal/transport"
	"tcn/internal/workload"
)

// TestbedFCTConfig drives the testbed FCT experiments: inter-service
// isolation (§6.1.2, Figures 6-7) and traffic prioritization with PIAS
// (§6.1.3, Figures 8-9). Eight servers send web-search flows to one
// client over a 1 GbE star; flows are randomly spread over four service
// queues; the prioritization variant adds a strict queue fed by PIAS.
type TestbedFCTConfig struct {
	// Scheme is the marking scheme.
	Scheme Scheme
	// Sched is the low-priority discipline: SchedDWRR/SchedWFQ for
	// isolation, SchedSPDWRR/SchedSPWFQ for prioritization.
	Sched SchedKind
	// Load is the target utilization of the client's access link.
	Load float64
	// Flows is the number of flows to run (paper: 5000).
	Flows int
	// PIAS enables the two-priority tagging (requires an SP scheduler).
	PIAS bool
	// FreshConns submits every flow on its own connection (ns-2
	// semantics) instead of the client's warm connection pools. Needed
	// by disciplines whose rank depends on per-flow byte offsets (LAS).
	FreshConns bool
	// PartitionBuffer statically splits the 96 KB port buffer equally
	// among the queues instead of sharing it (buffer-model ablation).
	PartitionBuffer bool
	// Seed feeds all randomness; identical seeds produce identical
	// arrival plans across schemes, as in the paper's methodology.
	Seed int64
	// ExactFCT retains every per-flow record and computes P99 by exact
	// nearest-rank instead of the default bounded-memory streaming
	// t-digest. Averages and counts are identical either way; the
	// determinism harness and record dumps set this.
	ExactFCT bool
	// Deadline bounds the run (0 = generous default).
	Deadline sim.Time
	// Obs, if non-nil, receives per-port stats and packet traces.
	Obs *Obs
	// ObsLabel prefixes the instrument names (default
	// <scheme>.<sched>.load<load>, which sweeps override per cell).
	ObsLabel string
}

// TestbedFCTResult is one (scheme, load) cell of Figures 6-9.
type TestbedFCTResult struct {
	Scheme     Scheme
	Sched      SchedKind
	Load       float64
	Stats      metrics.FCTStats
	Records    []metrics.FlowRecord
	Unfinished int
	Drops      int
	Marks      int64
}

// Validate checks the configuration's internal consistency.
func (cfg TestbedFCTConfig) Validate() error {
	if cfg.PIAS != (cfg.Sched == SchedSPDWRR || cfg.Sched == SchedSPWFQ) {
		return fmt.Errorf("experiments: PIAS=%v requires an SP composite scheduler, got %s", cfg.PIAS, cfg.Sched)
	}
	if !cfg.Sched.SupportsScheme(cfg.Scheme) {
		return fmt.Errorf("experiments: %s does not run over %s", cfg.Scheme, cfg.Sched)
	}
	if cfg.Load <= 0 || cfg.Load > 1 {
		return fmt.Errorf("experiments: load %v out of (0,1]", cfg.Load)
	}
	return nil
}

// RunTestbedFCT executes one cell.
func RunTestbedFCT(cfg TestbedFCTConfig) TestbedFCTResult {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	eng := sim.NewEngine()
	cfg.Obs.AttachEngine(eng)
	rng := sim.NewRand(cfg.Seed)
	cfg.Obs.AttachRand(eng, rng)

	const (
		services = 4
		recv     = 8
		kBytes   = 32_000
	)
	rttLambda := 256 * sim.Microsecond

	queues := services
	high := 0
	if cfg.PIAS {
		queues = services + 1
		high = 1
	}
	pp := PortParams{
		Queues:         queues,
		HighQueues:     high,
		Buffer:         96_000,
		PerQueueBuffer: 0,
		Quantum:        1500,
		RTTLambda:      rttLambda,
		KBytes:         kBytes,
		CoDelTarget:    sim.Time(51.2 * 1000),
		CoDelInterval:  1024 * sim.Microsecond,
		TIdle:          fabric.Gbps.Serialize(1500),
	}
	if cfg.PartitionBuffer {
		pp.PerQueueBuffer = pp.Buffer / queues
	}
	net := fabric.NewStar(eng, fabric.StarConfig{
		Hosts:      9,
		Rate:       fabric.Gbps,
		Prop:       2500 * sim.Nanosecond,
		HostDelay:  120 * sim.Microsecond,
		SwitchPort: pp.Factory(cfg.Scheme, cfg.Sched, rng),
	})
	if cfg.Obs != nil {
		label := cfg.ObsLabel
		if label == "" {
			label = fmt.Sprintf("%s.%s.load%g", cfg.Scheme, cfg.Sched, cfg.Load)
		}
		cfg.Obs.AttachStar(label, net)
	}
	tc := transport.Config{
		CC:     transport.DCTCP,
		RTOMin: 10 * sim.Millisecond,
	}
	if cfg.PIAS {
		// ACKs ride the strict queue, as operators prioritize them
		// (§2.2).
		tc.AckDSCP = func(*transport.Flow) uint8 { return 0 }
	}
	st := transport.NewStack(eng, tc, net.Hosts)
	cfg.Obs.AttachTransport(st)

	// Plan the arrivals: web-search flows from the 8 servers to the
	// client, randomly assigned to the service queues.
	senders := []int{0, 1, 2, 3, 4, 5, 6, 7}
	cdfs := map[uint8]workload.CDF{}
	for s := 0; s < services; s++ {
		cdfs[uint8(s)] = workload.WebSearch
	}
	plan := workload.Plan(rng, workload.PlanConfig{
		Flows:      cfg.Flows,
		Load:       cfg.Load,
		Bottleneck: fabric.Gbps,
		CDFs:       cdfs,
		Pair:       workload.ManyToOne(senders, recv),
		Class:      func(r *sim.Rand) uint8 { return uint8(r.Intn(services)) },
	})

	col := newFCTCollector(cfg.ExactFCT)
	cfg.Obs.AttachFCT(eng, col)
	st.OnMessage = func(m *transport.Message) {
		col.Record(metrics.FlowRecord{Size: m.Size, FCT: m.FCT(), Class: m.Class, Timeouts: m.Timeouts})
	}

	// The paper's client pre-opens 5 persistent connections per server
	// and submits each flow (message) on an idle one, so congestion
	// state persists across flows. FreshConns switches to one
	// connection per flow.
	if cfg.FreshConns {
		st.OnDone = func(f *transport.Flow) {
			col.Record(metrics.FlowRecord{Size: f.Size, FCT: f.FCT(), Class: f.Class, Timeouts: f.Timeouts})
		}
		for _, spec := range plan {
			f := &transport.Flow{
				ID: st.NewFlowID(), Src: spec.Src, Dst: spec.Dst,
				Size: spec.Size, Class: spec.Class,
			}
			if cfg.PIAS {
				f.Class = spec.Class + 1
				f.Tag = pias.Tag(0, spec.Class+1, pias.DefaultThreshold)
			}
			st.StartAt(spec.At, f)
		}
	} else {
		pool := transport.NewPool(st, 5)
		for _, spec := range plan {
			spec := spec
			m := &transport.Message{Size: spec.Size, Class: spec.Class}
			if cfg.PIAS {
				// Service queues sit above the strict queue:
				// class c maps to queue c+1; the first 100 KB
				// go to queue 0.
				m.Class = spec.Class + 1
				m.Tag = pias.Tag(0, spec.Class+1, pias.DefaultThreshold)
			}
			eng.At(spec.At, func() { pool.Submit(spec.Src, spec.Dst, m) })
		}
	}

	deadline := cfg.Deadline
	if deadline == 0 {
		deadline = plan[len(plan)-1].At + 60*sim.Second
	}
	eng.RunUntil(deadline)

	res := TestbedFCTResult{
		Scheme:     cfg.Scheme,
		Sched:      cfg.Sched,
		Load:       cfg.Load,
		Stats:      col.Stats(),
		Records:    col.Records(),
		Unfinished: cfg.Flows - col.Count(),
	}
	for i := 0; i < net.Switch.NumPorts(); i++ {
		res.Drops += net.Switch.Port(i).Buffer().TotalDrops()
	}
	res.Marks = markCount(net.Switch.Port(recv).Marker())
	cfg.Obs.ReportCell(eng, st.Pool())
	cfg.Obs.ReportFCT(col)
	return res
}
