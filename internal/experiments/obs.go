package experiments

import (
	"fmt"

	"tcn/internal/digest"
	"tcn/internal/fabric"
	"tcn/internal/metrics"
	"tcn/internal/obs"
	"tcn/internal/obs/flight"
	"tcn/internal/obs/perf"
	"tcn/internal/obs/prof"
	"tcn/internal/parallel"
	"tcn/internal/pkt"
	"tcn/internal/sim"
	"tcn/internal/trace"
	"tcn/internal/transport"
)

// Obs bundles the observability sinks a runner can attach to the fabric it
// builds: a stats registry for counters/gauges/histograms, a packet
// tracer, and a flight recorder for periodic sampling and flow spans. Any
// field may be nil, and a nil *Obs attaches nothing, so runners call the
// Attach methods unconditionally and uninstrumented runs stay on the fast
// path.
type Obs struct {
	Registry *obs.Registry
	Tracer   *trace.Tracer
	Flight   *flight.Recorder
	Ledger   *trace.Ledger
	Pipeline *trace.Pipeline

	// Fingerprint, when set, snapshots per-component digest chains at
	// sim-time epochs so two runs can be diffed with tcndiff. Like the
	// sinks above it is shared mutable state and forces sweeps serial.
	Fingerprint *digest.Recorder

	// Profiler, when set, attributes executed events and sim-time (and,
	// in wall mode, wall self-time) to the component stack. Its counters
	// are plain fields owned by the running goroutine, so like the sinks
	// above it forces sweeps serial — unlike them it adds no events, so
	// profiled runs fingerprint identically to bare runs.
	Profiler *prof.Profiler

	// Perf is the simulator self-telemetry campaign. Unlike the sinks
	// above it is atomics-only and deliberately share-safe, so it does
	// NOT count toward Active() and never forces a sweep serial.
	Perf *perf.Campaign
}

// Active reports whether any simulated-network sink is attached. Parallel
// sweep runners use it to clamp fan-out to serial execution: the
// registry, tracer, flight recorder, ledger, and pipeline are shared
// mutable state across every cell that attaches to them, unlike the
// cells' own engines. Perf is excluded: it observes the simulator, not
// the simulation, through atomics that tolerate any worker count.
func (o *Obs) Active() bool {
	return o != nil && (o.Registry != nil || o.Tracer != nil || o.Flight != nil ||
		o.Ledger != nil || o.Pipeline != nil || o.Fingerprint != nil || o.Profiler != nil)
}

// Tracker returns the perf campaign as a parallel.Tracker, or nil when no
// campaign is attached — never a typed nil, so RunTracked's nil check
// works.
func (o *Obs) Tracker() parallel.Tracker {
	if o == nil || o.Perf == nil {
		return nil
	}
	return o.Perf
}

// AttachEngine hooks a cell's engine into the campaign's live meter so
// -progress and /perf.json see events and sim time as they happen, and —
// when a fingerprint recorder is attached — opens the cell's digest scope,
// registers the engine (and the shared ledger) in it, and schedules the
// epoch snapshot ticker. Call it right after sim.NewEngine, before the
// cell builds its fabric; a nil *Obs attaches nothing.
func (o *Obs) AttachEngine(eng *sim.Engine) {
	if o == nil {
		return
	}
	if o.Perf != nil {
		eng.SetMeter(o.Perf.Meter())
	}
	if o.Fingerprint != nil {
		o.attachFingerprint(eng)
	}
	if o.Profiler != nil {
		o.Profiler.AttachEngine(eng)
	}
}

// attachFingerprint wires one cell's engine into the fingerprint recorder.
// Registration order is the digest order, so the sequence here (engine,
// then ledger, then whatever the runner registers via AttachPort/
// AttachRand/AttachFCT in its own program order) must stay deterministic —
// it is, because a fingerprinting sweep runs serially (Active) and cells
// build their fabrics in program order.
func (o *Obs) attachFingerprint(eng *sim.Engine) {
	fp := o.Fingerprint
	sc := fp.ScopeFor(eng)
	sc.Register(digest.ComponentEngine, "engine", eng)
	if o.Ledger != nil {
		sc.Register(digest.ComponentLedger, "ledger", o.Ledger)
	}
	// Self-rescheduling epoch ticker, the flight-recorder idiom: the first
	// snapshot fires at t=0 (after setup, when the run starts) and then
	// every EpochNs of sim time, so two comparable runs snapshot at
	// identical instants. The ticker adds events to the heap, which is why
	// fingerprinted runs are only compared against fingerprinted runs.
	period := sim.Time(fp.EpochNs())
	var tick func()
	tick = func() {
		sc.Snapshot(int64(eng.Now()))
		eng.After(period, tick)
	}
	eng.After(0, tick)
	if fp.FineEnabled() {
		// Fine mode: digest the whole scope after every executed event.
		// Outside the requested two-epoch bracket this is one boolean
		// test per event (plus the engine's nil check when disabled).
		// AddPostEvent, not Set: the profiler chains onto the same hook.
		eng.AddPostEvent(func(now sim.Time, executed uint64) {
			sc.FineSnapshot(executed, int64(now))
		})
	}
}

// AttachRand registers a cell's random stream in the cell's digest scope,
// so a divergence in randomness consumption is localized to the "rand"
// component. Call after AttachEngine, from the cell's own setup. No-op
// without a fingerprint recorder.
func (o *Obs) AttachRand(eng *sim.Engine, rng *sim.Rand) {
	if o == nil || o.Fingerprint == nil {
		return
	}
	if sc := o.Fingerprint.ScopeOf(eng); sc != nil {
		sc.Register(digest.ComponentRand, "rand", rng)
	}
}

// AttachFCT registers a cell's FCT collector (tallies plus the streaming
// small-flow t-digest) in the cell's digest scope. No-op without a
// fingerprint recorder.
func (o *Obs) AttachFCT(eng *sim.Engine, col *metrics.FCTCollector) {
	if o == nil || o.Fingerprint == nil || col == nil {
		return
	}
	if sc := o.Fingerprint.ScopeOf(eng); sc != nil {
		sc.Register(digest.ComponentTDigest, "fct", col)
	}
}

// ReportCell folds a finished cell's engine and packet-pool counters into
// the campaign totals and closes the profiler's books for the cell (the
// final clock advance past the last event becomes engine-owned sim-time).
// Call it once per cell, after the last RunUntil, from the goroutine that
// owns the engine.
func (o *Obs) ReportCell(eng *sim.Engine, pools ...*pkt.Pool) {
	if o == nil {
		return
	}
	if o.Profiler != nil {
		o.Profiler.FinishEngine(eng)
	}
	if o.Perf == nil {
		return
	}
	o.Perf.ReportEngine(eng)
	for _, p := range pools {
		o.Perf.ReportPool(p)
	}
}

// ReportFCT hands a finished cell's small-flow FCT digest (streaming
// collectors only) to the campaign for /campaign.json quantiles.
func (o *Obs) ReportFCT(col *metrics.FCTCollector) {
	if o == nil || o.Perf == nil || col == nil {
		return
	}
	o.Perf.ReportDigest(col.SmallDigest())
}

// newFCTCollector picks the collector mode for a runner: streaming
// (bounded memory, digest P99) by default, exact per-flow records when
// the caller needs them (determinism harness, record dumps).
func newFCTCollector(exact bool) *metrics.FCTCollector {
	if exact {
		return metrics.NewFCTCollector()
	}
	return metrics.NewStreamingFCTCollector(metrics.DefaultCompression)
}

// instrumenter is implemented by the markers that can record their
// decisions and internal state into a registry (TCN, RED variants, CoDel,
// MQ-ECN, ...).
type instrumenter interface {
	Instrument(r *obs.Registry, label string)
}

// AttachPort instruments one switch egress port under label: per-queue
// counters and histograms in the registry (plus the marker's own
// instruments under label.marker), packet events in the tracer, and
// periodic probes plus flow spans in the flight recorder.
func (o *Obs) AttachPort(label string, p *fabric.Port) {
	if o == nil {
		return
	}
	if o.Registry != nil {
		p.Instrument(o.Registry, label)
		if m, ok := p.Marker().(instrumenter); ok {
			m.Instrument(o.Registry, label+".marker")
		}
	}
	if o.Tracer != nil {
		o.Tracer.AttachPort(label, p)
	}
	if o.Ledger != nil {
		o.Ledger.AttachPort(label, p)
	}
	if o.Pipeline != nil {
		o.Pipeline.AttachPort(label, p)
	}
	if o.Flight != nil {
		flight.AttachPortProbes(o.Flight, label, p)
		flight.AttachPortSpans(o.Flight, p)
	}
	if o.Fingerprint != nil {
		if sc := o.Fingerprint.ScopeOf(p.Engine()); sc != nil {
			sc.Register(digest.ComponentPort, label, p)
		}
	}
	if o.Profiler != nil {
		p.SetProfiler(o.Profiler, label)
	}
}

// AttachTransport brackets a cell's transport stack with cost-profiler
// scopes so endpoint protocol work is attributed to the transport rather
// than the engine. Call after transport.NewStack; a nil *Obs or an
// unprofiled run attaches nothing.
func (o *Obs) AttachTransport(st *transport.Stack) {
	if o == nil || o.Profiler == nil {
		return
	}
	st.SetProfiler(o.Profiler)
}

// AttachStar instruments every switch egress port of a star topology,
// labelled <prefix>.sw.p<i>.
func (o *Obs) AttachStar(prefix string, net *fabric.Star) {
	if o == nil {
		return
	}
	for i := 0; i < net.Switch.NumPorts(); i++ {
		o.AttachPort(fmt.Sprintf("%s.sw.p%d", prefix, i), net.Switch.Port(i))
	}
}

// AttachLeafSpine instruments every switch egress port of a leaf-spine
// fabric, labelled <prefix>.sw<id>.p<i> using the owning switch's id.
func (o *Obs) AttachLeafSpine(prefix string, net *fabric.LeafSpine) {
	if o == nil {
		return
	}
	attach := func(sw *fabric.Switch) {
		for i := 0; i < sw.NumPorts(); i++ {
			o.AttachPort(fmt.Sprintf("%s.sw%d.p%d", prefix, sw.ID, i), sw.Port(i))
		}
	}
	for _, sw := range net.Leaves {
		attach(sw)
	}
	for _, sw := range net.Spines {
		attach(sw)
	}
}

// figSeriesCap sizes the figure-defining series rings so they never wrap
// at the papers' sampling rates: the figure post-processing (convergence
// times, steady-state means) then sees every sample, keeping results
// identical to the pre-flight-recorder accumulation.
const figSeriesCap = 1 << 15

// flightRecorder returns the bundle's flight recorder, or a private
// throwaway one when none is attached — experiment time series always
// route through the sampler, instrumented run or not.
func (o *Obs) flightRecorder() *flight.Recorder {
	if o != nil && o.Flight != nil {
		return o.Flight
	}
	return flight.New(flight.Config{SeriesCap: figSeriesCap})
}

// samplesOf converts a flight series into the metrics.Sample slice the
// figure result structs expose.
func samplesOf(s *flight.Series) []metrics.Sample {
	out := make([]metrics.Sample, 0, s.Len())
	for _, p := range s.Points() {
		out = append(out, metrics.Sample{At: p.At, Value: p.V})
	}
	return out
}
