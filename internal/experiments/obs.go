package experiments

import (
	"fmt"

	"tcn/internal/fabric"
	"tcn/internal/obs"
	"tcn/internal/trace"
)

// Obs bundles the observability sinks a runner can attach to the fabric it
// builds: a stats registry for counters/gauges/histograms and a packet
// tracer. Either field may be nil, and a nil *Obs attaches nothing, so
// runners call the Attach methods unconditionally and uninstrumented runs
// stay on the fast path.
type Obs struct {
	Registry *obs.Registry
	Tracer   *trace.Tracer
}

// instrumenter is implemented by the markers that can record their
// decisions and internal state into a registry (TCN, RED variants, CoDel,
// MQ-ECN, ...).
type instrumenter interface {
	Instrument(r *obs.Registry, label string)
}

// AttachPort instruments one switch egress port under label: per-queue
// counters and histograms in the registry (plus the marker's own
// instruments under label.marker) and packet events in the tracer.
func (o *Obs) AttachPort(label string, p *fabric.Port) {
	if o == nil {
		return
	}
	if o.Registry != nil {
		p.Instrument(o.Registry, label)
		if m, ok := p.Marker().(instrumenter); ok {
			m.Instrument(o.Registry, label+".marker")
		}
	}
	if o.Tracer != nil {
		o.Tracer.AttachPort(label, p)
	}
}

// AttachStar instruments every switch egress port of a star topology,
// labelled <prefix>.sw.p<i>.
func (o *Obs) AttachStar(prefix string, net *fabric.Star) {
	if o == nil {
		return
	}
	for i := 0; i < net.Switch.NumPorts(); i++ {
		o.AttachPort(fmt.Sprintf("%s.sw.p%d", prefix, i), net.Switch.Port(i))
	}
}

// AttachLeafSpine instruments every switch egress port of a leaf-spine
// fabric, labelled <prefix>.sw<id>.p<i> using the owning switch's id.
func (o *Obs) AttachLeafSpine(prefix string, net *fabric.LeafSpine) {
	if o == nil {
		return
	}
	attach := func(sw *fabric.Switch) {
		for i := 0; i < sw.NumPorts(); i++ {
			o.AttachPort(fmt.Sprintf("%s.sw%d.p%d", prefix, sw.ID, i), sw.Port(i))
		}
	}
	for _, sw := range net.Leaves {
		attach(sw)
	}
	for _, sw := range net.Spines {
		attach(sw)
	}
}
