package experiments

import (
	"fmt"

	"tcn/internal/fabric"
	"tcn/internal/metrics"
	"tcn/internal/obs"
	"tcn/internal/obs/flight"
	"tcn/internal/trace"
)

// Obs bundles the observability sinks a runner can attach to the fabric it
// builds: a stats registry for counters/gauges/histograms, a packet
// tracer, and a flight recorder for periodic sampling and flow spans. Any
// field may be nil, and a nil *Obs attaches nothing, so runners call the
// Attach methods unconditionally and uninstrumented runs stay on the fast
// path.
type Obs struct {
	Registry *obs.Registry
	Tracer   *trace.Tracer
	Flight   *flight.Recorder
	Ledger   *trace.Ledger
	Pipeline *trace.Pipeline
}

// Active reports whether any sink is attached. Parallel sweep runners use
// it to clamp fan-out to serial execution: the registry, tracer, flight
// recorder, ledger, and pipeline are shared mutable state across every
// cell that attaches to them, unlike the cells' own engines.
func (o *Obs) Active() bool {
	return o != nil && (o.Registry != nil || o.Tracer != nil || o.Flight != nil ||
		o.Ledger != nil || o.Pipeline != nil)
}

// instrumenter is implemented by the markers that can record their
// decisions and internal state into a registry (TCN, RED variants, CoDel,
// MQ-ECN, ...).
type instrumenter interface {
	Instrument(r *obs.Registry, label string)
}

// AttachPort instruments one switch egress port under label: per-queue
// counters and histograms in the registry (plus the marker's own
// instruments under label.marker), packet events in the tracer, and
// periodic probes plus flow spans in the flight recorder.
func (o *Obs) AttachPort(label string, p *fabric.Port) {
	if o == nil {
		return
	}
	if o.Registry != nil {
		p.Instrument(o.Registry, label)
		if m, ok := p.Marker().(instrumenter); ok {
			m.Instrument(o.Registry, label+".marker")
		}
	}
	if o.Tracer != nil {
		o.Tracer.AttachPort(label, p)
	}
	if o.Ledger != nil {
		o.Ledger.AttachPort(label, p)
	}
	if o.Pipeline != nil {
		o.Pipeline.AttachPort(label, p)
	}
	if o.Flight != nil {
		flight.AttachPortProbes(o.Flight, label, p)
		flight.AttachPortSpans(o.Flight, p)
	}
}

// AttachStar instruments every switch egress port of a star topology,
// labelled <prefix>.sw.p<i>.
func (o *Obs) AttachStar(prefix string, net *fabric.Star) {
	if o == nil {
		return
	}
	for i := 0; i < net.Switch.NumPorts(); i++ {
		o.AttachPort(fmt.Sprintf("%s.sw.p%d", prefix, i), net.Switch.Port(i))
	}
}

// AttachLeafSpine instruments every switch egress port of a leaf-spine
// fabric, labelled <prefix>.sw<id>.p<i> using the owning switch's id.
func (o *Obs) AttachLeafSpine(prefix string, net *fabric.LeafSpine) {
	if o == nil {
		return
	}
	attach := func(sw *fabric.Switch) {
		for i := 0; i < sw.NumPorts(); i++ {
			o.AttachPort(fmt.Sprintf("%s.sw%d.p%d", prefix, sw.ID, i), sw.Port(i))
		}
	}
	for _, sw := range net.Leaves {
		attach(sw)
	}
	for _, sw := range net.Spines {
		attach(sw)
	}
}

// figSeriesCap sizes the figure-defining series rings so they never wrap
// at the papers' sampling rates: the figure post-processing (convergence
// times, steady-state means) then sees every sample, keeping results
// identical to the pre-flight-recorder accumulation.
const figSeriesCap = 1 << 15

// flightRecorder returns the bundle's flight recorder, or a private
// throwaway one when none is attached — experiment time series always
// route through the sampler, instrumented run or not.
func (o *Obs) flightRecorder() *flight.Recorder {
	if o != nil && o.Flight != nil {
		return o.Flight
	}
	return flight.New(flight.Config{SeriesCap: figSeriesCap})
}

// samplesOf converts a flight series into the metrics.Sample slice the
// figure result structs expose.
func samplesOf(s *flight.Series) []metrics.Sample {
	out := make([]metrics.Sample, 0, s.Len())
	for _, p := range s.Points() {
		out = append(out, metrics.Sample{At: p.At, Value: p.V})
	}
	return out
}
