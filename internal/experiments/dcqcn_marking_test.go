package experiments

import "testing"

// TestDCQCNProbabilisticMarking reproduces the §4.3 argument for the
// RED-like TCN extension: under DCQCN, single-threshold cut-off marking
// notifies every sender in the same sojourn excursion, synchronizing rate
// cuts and leaving capacity idle; probabilistic marking desynchronizes
// them and recovers the lost utilization while staying fair.
func TestDCQCNProbabilisticMarking(t *testing.T) {
	plain := RunDCQCNMarking(DefaultDCQCNMarking())
	probCfg := DefaultDCQCNMarking()
	probCfg.Probabilistic = true
	prob := RunDCQCNMarking(probCfg)

	if plain.Jain < 0.98 || prob.Jain < 0.98 {
		t.Fatalf("fairness collapsed: plain %.3f prob %.3f", plain.Jain, prob.Jain)
	}
	if prob.AggGbps < plain.AggGbps+0.5 {
		t.Errorf("probabilistic marking should recover utilization: plain %.2f vs prob %.2f Gbps",
			plain.AggGbps, prob.AggGbps)
	}
	if plain.CNPs == 0 || prob.CNPs == 0 {
		t.Fatal("no congestion notifications observed")
	}
}
