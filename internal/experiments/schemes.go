// Package experiments wires the substrates into the paper's evaluation:
// one runner per figure of §6, each returning the rows or series the paper
// plots. Runners are deterministic for a given seed and take a Flows knob
// so the same code serves quick benchmarks and paper-scale runs.
package experiments

import (
	"fmt"

	"tcn/internal/aqm"
	"tcn/internal/core"
	"tcn/internal/fabric"
	"tcn/internal/pkt"
	"tcn/internal/sched"
	"tcn/internal/sim"
)

// Scheme identifies an ECN marking scheme under evaluation.
type Scheme string

// The schemes of §6 ("Schemes compared") plus the diagnostic variants used
// by Figures 2 and 3.
const (
	// SchemeTCN is Time-based Congestion Notification, threshold RTT×λ.
	SchemeTCN Scheme = "TCN"
	// SchemeTCNHW is TCN computed with the 16-bit hardware clock (§4.2).
	SchemeTCNHW Scheme = "TCN-hw"
	// SchemeCoDel is CoDel in mark mode with datacenter-tuned
	// target/interval.
	SchemeCoDel Scheme = "CoDel"
	// SchemeMQECN is MQ-ECN; valid only over round-robin schedulers.
	SchemeMQECN Scheme = "MQ-ECN"
	// SchemeRED is per-queue ECN/RED with the standard static threshold
	// C×RTT×λ — the paper's "current practice" baseline.
	SchemeRED Scheme = "RED"
	// SchemeREDDeq is dequeue-side per-queue RED (Figure 3).
	SchemeREDDeq Scheme = "RED-deq"
	// SchemePortRED is per-port RED (Figure 1).
	SchemePortRED Scheme = "PortRED"
	// SchemeDynRED is the ideal dynamic RED driven by Algorithm 1.
	SchemeDynRED Scheme = "DynRED"
	// SchemeOracle is ideal RED with externally known queue capacities.
	SchemeOracle Scheme = "Oracle"
	// SchemeNone disables marking (pure drop-tail).
	SchemeNone Scheme = "none"
)

// SchedKind selects the port scheduler.
type SchedKind string

// The schedulers of §5 and §6.
const (
	SchedFIFO   SchedKind = "fifo"
	SchedDWRR   SchedKind = "dwrr"
	SchedWFQ    SchedKind = "wfq"
	SchedSPDWRR SchedKind = "sp-dwrr"
	SchedSPWFQ  SchedKind = "sp-wfq"
	// SchedPIFOLAS is a programmable PIFO running least-attained-service
	// (rank = byte offset within the flow): a discipline with no notion
	// of rounds or static priorities, exactly the "arbitrary scheduler"
	// class MQ-ECN cannot support and TCN can (§2.2, §4.1).
	SchedPIFOLAS SchedKind = "pifo-las"
)

// SupportsScheme reports whether a scheme can run over a scheduler —
// MQ-ECN requires a pure round-robin discipline (§3.3).
func (k SchedKind) SupportsScheme(s Scheme) bool {
	if s == SchemeMQECN {
		return k == SchedDWRR
	}
	return true
}

// PortParams carries everything needed to instantiate one switch egress
// port for a given scheme and scheduler.
type PortParams struct {
	// Queues is the total queue count, including strict-priority ones.
	Queues int
	// HighQueues is the strict-priority queue count for SP composites.
	HighQueues int
	// Buffer is the shared port buffer in bytes (0 = unlimited).
	Buffer int
	// PerQueueBuffer statically partitions the buffer per queue
	// (0 = fully shared) — the buffer-model ablation.
	PerQueueBuffer int
	// Quantum is the DWRR quantum per queue in bytes.
	Quantum int
	// WFQWeight is the per-queue WFQ weight (all equal).
	WFQWeight float64

	// RTTLambda is RTT×λ; it sets the TCN threshold and, with the line
	// rate, the standard RED threshold.
	RTTLambda sim.Time
	// KBytes overrides the standard RED threshold (0 = derive from
	// RTTLambda and line rate at bind time — impossible statically, so
	// experiments set it explicitly).
	KBytes int
	// CoDelTarget and CoDelInterval configure CoDel (the paper's
	// testbed tuning is 51.2us / 1024us).
	CoDelTarget, CoDelInterval sim.Time
	// DqThresh is Algorithm 1's measurement-cycle size for DynRED.
	DqThresh int
	// TIdle is MQ-ECN's idle-reset window (paper: the transmission time
	// of one MTU at line rate).
	TIdle sim.Time
	// OracleK lists per-queue thresholds for SchemeOracle.
	OracleK []int
	// HWResolution is the HWTCN clock tick (0 = 8ns).
	HWResolution sim.Time

	// OnMQECNEstimate and OnDynREDSample, if set, receive estimator
	// traces from the built markers (Figure 2). They are attached to
	// every port the factory builds.
	OnMQECNEstimate func(now sim.Time, queue int, rate float64)
	OnDynREDSample  func(queue int) func(now sim.Time, raw, smoothed float64)
}

// NewScheduler builds a fresh scheduler of the given kind.
func (p PortParams) NewScheduler(kind SchedKind) sched.Scheduler {
	low := p.Queues - p.HighQueues
	switch kind {
	case SchedFIFO:
		return sched.NewFIFO()
	case SchedDWRR:
		return sched.NewDWRREqual(p.Queues, p.Quantum)
	case SchedWFQ:
		return sched.NewWFQEqual(p.Queues)
	case SchedSPDWRR:
		return sched.NewSPOver(p.HighQueues, sched.NewDWRREqual(low, p.Quantum))
	case SchedSPWFQ:
		return sched.NewSPOver(p.HighQueues, sched.NewWFQEqual(low))
	case SchedPIFOLAS:
		return sched.NewPIFO(func(_ sim.Time, _ int, pk *pkt.Packet) float64 {
			return float64(pk.Seq)
		})
	default:
		panic(fmt.Sprintf("experiments: unknown scheduler kind %q", kind))
	}
}

// NewMarker builds a fresh marker of the given scheme, wiring MQ-ECN to
// the scheduler when needed.
func (p PortParams) NewMarker(s Scheme, sc sched.Scheduler, rng *sim.Rand) core.Marker {
	switch s {
	case SchemeTCN:
		return core.NewTCN(p.RTTLambda)
	case SchemeTCNHW:
		res := p.HWResolution
		if res == 0 {
			res = 8 * sim.Nanosecond
		}
		return core.NewHWTCN(core.NewHWClock(res), p.RTTLambda)
	case SchemeCoDel:
		return aqm.NewCoDel(p.Queues, p.CoDelTarget, p.CoDelInterval)
	case SchemeMQECN:
		ri, ok := sc.(aqm.RoundInfo)
		if !ok {
			panic(fmt.Sprintf("experiments: MQ-ECN needs a round-robin scheduler, got %s", sc.Name()))
		}
		m := aqm.NewMQECN(ri, p.Queues, p.RTTLambda, p.TIdle)
		m.OnEstimate = p.OnMQECNEstimate
		return m
	case SchemeRED:
		return aqm.NewQueueRED(p.KBytes)
	case SchemeREDDeq:
		return aqm.NewDequeueRED(p.KBytes)
	case SchemePortRED:
		return aqm.NewPortRED(p.KBytes)
	case SchemeDynRED:
		d := aqm.NewDynRED(p.Queues, p.DqThresh, p.RTTLambda)
		if p.OnDynREDSample != nil {
			for i := 0; i < p.Queues; i++ {
				d.Meter(i).OnSample = p.OnDynREDSample(i)
			}
		}
		return d
	case SchemeOracle:
		return aqm.NewOracleRED(p.OracleK)
	case SchemeNone:
		return core.Nop{}
	default:
		panic(fmt.Sprintf("experiments: unknown scheme %q", s))
	}
}

// Factory returns a fabric.PortFactory producing ports with a fresh
// scheduler and marker per port.
func (p PortParams) Factory(s Scheme, kind SchedKind, rng *sim.Rand) fabric.PortFactory {
	if !kind.SupportsScheme(s) {
		panic(fmt.Sprintf("experiments: scheme %s does not support scheduler %s", s, kind))
	}
	return func() fabric.PortConfig {
		sc := p.NewScheduler(kind)
		return fabric.PortConfig{
			Queues:        p.Queues,
			BufferBytes:   p.Buffer,
			PerQueueBytes: p.PerQueueBuffer,
			Scheduler:     sc,
			Marker:        p.NewMarker(s, sc, rng),
		}
	}
}

// markCount extracts the CE-mark counter from any of the repository's
// markers, for result tables. Schemes that do not count (Nop) report 0.
func markCount(m core.Marker) int64 {
	if mc, ok := m.(core.MarkCounter); ok {
		return mc.MarkCount()
	}
	return 0
}
