package experiments

import (
	"testing"

	"tcn/internal/digest"
	"tcn/internal/sim"
)

// TestCrossCoreFingerprintIdentical is the end-to-end form of the
// wheel/heap equivalence property: a full fig6-style experiment cell run
// under the timing-wheel core must produce a fingerprint timeline
// byte-identical to the same cell under the binary-heap oracle. This is
// the same comparison `tcndiff` performs on serialized runs, and the same
// invariant CI's wheel-oracle job checks at the whole-figure level.
func TestCrossCoreFingerprintIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	orig := sim.DefaultCore()
	defer sim.SetDefaultCore(orig)

	cfg := TestbedFCTConfig{
		Scheme: SchemeTCN, Sched: SchedSPDWRR, PIAS: true,
		Load: 0.7, Flows: 400, Seed: 11,
		ExactFCT: true,
	}
	fp := digest.Config{EpochNs: 1_000_000}

	sim.SetDefaultCore(sim.CoreWheel)
	recWheel, resWheel := fingerprintRun(cfg, fp)
	sim.SetDefaultCore(sim.CoreHeap)
	recHeap, resHeap := fingerprintRun(cfg, fp)

	rep := digest.Compare(recWheel.Timeline(), recHeap.Timeline())
	if !rep.Identical {
		t.Fatalf("wheel and heap cores diverged: %s", rep.Divergence)
	}
	if rep.RecordsA == 0 {
		t.Fatal("fingerprint recorder captured no epoch records")
	}
	if resWheel.Stats != resHeap.Stats {
		t.Fatalf("cores diverged on summary stats:\nwheel %+v\nheap  %+v",
			resWheel.Stats, resHeap.Stats)
	}
	if resWheel.Drops != resHeap.Drops || resWheel.Marks != resHeap.Marks {
		t.Fatalf("drop/mark counters diverged: wheel %d/%d, heap %d/%d",
			resWheel.Drops, resWheel.Marks, resHeap.Drops, resHeap.Marks)
	}
	for i := range resWheel.Records {
		if resWheel.Records[i] != resHeap.Records[i] {
			t.Fatalf("flow record %d diverged: wheel %+v, heap %+v",
				i, resWheel.Records[i], resHeap.Records[i])
		}
	}
}
