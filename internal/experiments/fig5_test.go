package experiments

import (
	"testing"

	"tcn/internal/sim"
)

// TestFig5aTCNPreservesSPWFQ reproduces Figure 5a: under TCN the strict
// queue holds its 500 Mbps and the two WFQ queues split the remainder
// evenly even though one carries 4× the flows.
func TestFig5aTCNPreservesSPWFQ(t *testing.T) {
	cfg := DefaultFig5()
	cfg.Stage = 500 * sim.Millisecond
	cfg.Duration = 2 * sim.Second
	res := RunFig5a(cfg)

	// Goodput is slightly below throughput due to header overhead
	// (~471 Mbps for 500 Mbps of wire rate).
	if res.SteadyMbps[0] < 440 || res.SteadyMbps[0] > 500 {
		t.Errorf("strict queue steady goodput %.0f Mbps, want ~470", res.SteadyMbps[0])
	}
	for q := 1; q <= 2; q++ {
		if res.SteadyMbps[q] < 190 || res.SteadyMbps[q] > 280 {
			t.Errorf("WFQ queue %d steady goodput %.0f Mbps, want ~235", q, res.SteadyMbps[q])
		}
	}
	// Fairness between the WFQ queues despite 1 vs 4 flows.
	ratio := res.SteadyMbps[1] / res.SteadyMbps[2]
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("WFQ queues unfair: %.0f vs %.0f Mbps", res.SteadyMbps[1], res.SteadyMbps[2])
	}
}

// TestFig5bLatency reproduces Figure 5b's ordering: TCN's RTT through the
// busy queue is close to the ideal ECN/RED's and far below per-queue RED
// with the standard threshold.
func TestFig5bLatency(t *testing.T) {
	cfg := DefaultFig5()
	cfg.Duration = 3 * sim.Second
	run := func(s Scheme) Fig5bResult {
		c := cfg
		c.Scheme = s
		return RunFig5b(c)
	}
	tcn := run(SchemeTCN)
	red := run(SchemeRED)
	oracle := run(SchemeOracle)

	if len(tcn.Samples) < 100 {
		t.Fatalf("too few RTT samples: %d", len(tcn.Samples))
	}
	// Paper: ~415us vs ~1084us mean; demand at least a 1.7x gap.
	if float64(red.MeanRTT) < 1.7*float64(tcn.MeanRTT) {
		t.Errorf("RED mean RTT %v not well above TCN %v", red.MeanRTT, tcn.MeanRTT)
	}
	// TCN within 40% of the ideal oracle.
	if float64(tcn.MeanRTT) > 1.4*float64(oracle.MeanRTT) {
		t.Errorf("TCN mean RTT %v too far above oracle %v", tcn.MeanRTT, oracle.MeanRTT)
	}
	// Tail behaves the same way.
	if float64(red.P99RTT) < 1.5*float64(tcn.P99RTT) {
		t.Errorf("RED p99 RTT %v not well above TCN %v", red.P99RTT, tcn.P99RTT)
	}
}
