package experiments

import "testing"

// sweepCfg returns a CI-sized sweep: one high-load point, enough flows
// for stable small-flow percentiles.
func sweepCfg(schemes ...Scheme) SweepConfig {
	return SweepConfig{
		Loads:   []float64{0.9},
		Flows:   1500,
		Seed:    3,
		Schemes: schemes,
	}
}

// checkIsolation asserts the paper's Figure 6/7 shape at high load: every
// scheme keeps similar large-flow FCT (throughput), while TCN beats
// per-queue RED with the standard threshold on small flows, especially at
// the tail, with far fewer drops.
func checkIsolation(t *testing.T, sw FCTSweep) {
	t.Helper()
	tcn := sw.Cell(SchemeTCN, 0.9)
	red := sw.Cell(SchemeRED, 0.9)
	if tcn == nil || red == nil {
		t.Fatal("missing cells")
	}
	for _, c := range []*TestbedFCTResult{tcn, red} {
		if c.Unfinished > 0 {
			t.Fatalf("%s: %d flows unfinished", c.Scheme, c.Unfinished)
		}
	}
	// Small flows: average and tail improve under TCN.
	if float64(red.Stats.AvgSmall) < 1.2*float64(tcn.Stats.AvgSmall) {
		t.Errorf("small-flow avg: RED %v not clearly above TCN %v",
			red.Stats.AvgSmall, tcn.Stats.AvgSmall)
	}
	if red.Stats.P99Small <= tcn.Stats.P99Small {
		t.Errorf("small-flow p99: RED %v should exceed TCN %v",
			red.Stats.P99Small, tcn.Stats.P99Small)
	}
	// Drops and timeouts: RED's chronic standing queues exhaust the
	// shared buffer (Remark 1).
	if red.Drops < 2*tcn.Drops {
		t.Errorf("drops: RED %d not well above TCN %d", red.Drops, tcn.Drops)
	}
	// Large flows: within ~15% (the paper reports within 2.8%; the CI
	// run uses 3% of the paper's flow count, so allow seed noise).
	ratio := float64(tcn.Stats.AvgLarge) / float64(red.Stats.AvgLarge)
	if ratio > 1.15 {
		t.Errorf("large-flow avg: TCN %v much worse than RED %v",
			tcn.Stats.AvgLarge, red.Stats.AvgLarge)
	}
}

func TestFig6IsolationDWRR(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload sweep")
	}
	sw := RunFig6(sweepCfg(SchemeTCN, SchemeMQECN, SchemeRED))
	checkIsolation(t, sw)

	// MQ-ECN (valid over DWRR) should roughly track TCN for small flows
	// (the paper: "TCN performs similarly as MQ-ECN for DWRR").
	tcn, mq := sw.Cell(SchemeTCN, 0.9), sw.Cell(SchemeMQECN, 0.9)
	if mq == nil {
		t.Fatal("MQ-ECN cell missing")
	}
	r := float64(mq.Stats.AvgSmall) / float64(tcn.Stats.AvgSmall)
	if r < 0.4 || r > 2.5 {
		t.Errorf("MQ-ECN small avg %v vs TCN %v: ratio %.2f, want same ballpark",
			mq.Stats.AvgSmall, tcn.Stats.AvgSmall, r)
	}
}

func TestFig7IsolationWFQ(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload sweep")
	}
	sw := RunFig7(sweepCfg(SchemeTCN, SchemeRED))
	checkIsolation(t, sw)
	// MQ-ECN must have been dropped automatically: it cannot run WFQ.
	if sw.Cell(SchemeMQECN, 0.9) != nil {
		t.Error("MQ-ECN should be excluded from the WFQ figure")
	}
}

// checkPrioritization asserts the Figure 8/9 shape: with PIAS all schemes
// improve small flows, but TCN still beats RED because high-priority
// packets die under low-priority buffer pressure in the shared pool.
func checkPrioritization(t *testing.T, sw FCTSweep, iso FCTSweep) {
	t.Helper()
	tcn := sw.Cell(SchemeTCN, 0.9)
	red := sw.Cell(SchemeRED, 0.9)
	if tcn.Unfinished > 0 || red.Unfinished > 0 {
		t.Fatalf("unfinished flows: TCN %d RED %d", tcn.Unfinished, red.Unfinished)
	}
	if float64(red.Stats.AvgSmall) < 1.2*float64(tcn.Stats.AvgSmall) {
		t.Errorf("PIAS small avg: RED %v not clearly above TCN %v",
			red.Stats.AvgSmall, tcn.Stats.AvgSmall)
	}
	if red.Stats.P99Small <= tcn.Stats.P99Small {
		t.Errorf("PIAS small p99: RED %v should exceed TCN %v",
			red.Stats.P99Small, tcn.Stats.P99Small)
	}
	// PIAS improves TCN's small flows versus the isolation setup
	// (§6.1.3: 71.3% lower average at 90% load).
	if isoTCN := iso.Cell(SchemeTCN, 0.9); isoTCN != nil {
		if float64(tcn.Stats.AvgSmall) > 0.7*float64(isoTCN.Stats.AvgSmall) {
			t.Errorf("PIAS should cut TCN's small-flow avg well below %v, got %v",
				isoTCN.Stats.AvgSmall, tcn.Stats.AvgSmall)
		}
	}
}

func TestFig8PrioritizationSPDWRR(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload sweep")
	}
	iso := RunFig6(sweepCfg(SchemeTCN))
	sw := RunFig8(sweepCfg(SchemeTCN, SchemeRED, SchemeCoDel))
	checkPrioritization(t, sw, iso)
	// MQ-ECN does not support SP composites.
	if sw.Cell(SchemeMQECN, 0.9) != nil {
		t.Error("MQ-ECN should be excluded from SP figures")
	}
	// CoDel's windowed minimum reacts slower to bursts; it should not
	// beat TCN's tail (paper: up to 84% improvements over CoDel).
	codel := sw.Cell(SchemeCoDel, 0.9)
	if float64(codel.Stats.P99Small) < 0.8*float64(sw.Cell(SchemeTCN, 0.9).Stats.P99Small) {
		t.Errorf("CoDel p99 small %v unexpectedly well below TCN %v",
			codel.Stats.P99Small, sw.Cell(SchemeTCN, 0.9).Stats.P99Small)
	}
}

func TestFig9PrioritizationSPWFQ(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload sweep")
	}
	iso := RunFig7(sweepCfg(SchemeTCN))
	sw := RunFig9(sweepCfg(SchemeTCN, SchemeRED))
	checkPrioritization(t, sw, iso)
}
