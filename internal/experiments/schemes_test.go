package experiments

import (
	"testing"

	"tcn/internal/aqm"
	"tcn/internal/fabric"
	"tcn/internal/pkt"
	"tcn/internal/sim"
	"tcn/internal/transport"
)

func baseParams() PortParams {
	return PortParams{
		Queues:        4,
		HighQueues:    1,
		Buffer:        96_000,
		Quantum:       1500,
		RTTLambda:     256 * sim.Microsecond,
		KBytes:        32_000,
		CoDelTarget:   50 * sim.Microsecond,
		CoDelInterval: sim.Millisecond,
		DqThresh:      10_000,
		OracleK:       []int{8_000, 8_000, 8_000, 8_000},
	}
}

func TestSchedulerFactoryCoversAllKinds(t *testing.T) {
	pp := baseParams()
	for kind, wantName := range map[SchedKind]string{
		SchedFIFO:    "FIFO",
		SchedDWRR:    "DWRR",
		SchedWFQ:     "WFQ",
		SchedSPDWRR:  "SP/DWRR",
		SchedSPWFQ:   "SP/WFQ",
		SchedPIFOLAS: "PIFO",
	} {
		s := pp.NewScheduler(kind)
		if s.Name() != wantName {
			t.Errorf("%s: built %q, want %q", kind, s.Name(), wantName)
		}
	}
}

func TestSchedulerFactoryRejectsUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	baseParams().NewScheduler("bogus")
}

func TestMarkerFactoryCoversAllSchemes(t *testing.T) {
	pp := baseParams()
	rng := sim.NewRand(1)
	dwrr := pp.NewScheduler(SchedDWRR)
	for scheme, wantName := range map[Scheme]string{
		SchemeTCN:     "TCN",
		SchemeTCNHW:   "TCN-hw",
		SchemeCoDel:   "CoDel",
		SchemeMQECN:   "MQ-ECN",
		SchemeRED:     "RED-queue",
		SchemeREDDeq:  "RED-queue-deq",
		SchemePortRED: "RED-port",
		SchemeDynRED:  "RED-dyn",
		SchemeOracle:  "RED-ideal",
		SchemeNone:    "none",
	} {
		m := pp.NewMarker(scheme, dwrr, rng)
		if m.Name() != wantName {
			t.Errorf("%s: built %q, want %q", scheme, m.Name(), wantName)
		}
	}
}

func TestMarkerFactoryRejectsUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	baseParams().NewMarker("bogus", nil, nil)
}

func TestFactoryBuildsFreshInstancesPerPort(t *testing.T) {
	pp := baseParams()
	f := pp.Factory(SchemeTCN, SchedDWRR, sim.NewRand(1))
	a, b := f(), f()
	if a.Scheduler == b.Scheduler {
		t.Fatal("ports must not share a scheduler instance")
	}
	if a.Marker == b.Marker {
		t.Fatal("ports must not share a marker instance")
	}
}

func TestFactoryRejectsUnsupportedCombination(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	baseParams().Factory(SchemeMQECN, SchedWFQ, sim.NewRand(1))
}

func TestMarkCountReadsEveryMarker(t *testing.T) {
	pp := baseParams()
	rng := sim.NewRand(1)
	dwrr := pp.NewScheduler(SchedDWRR)
	for _, scheme := range []Scheme{
		SchemeTCN, SchemeTCNHW, SchemeCoDel, SchemeMQECN, SchemeRED,
		SchemeREDDeq, SchemePortRED, SchemeDynRED, SchemeOracle, SchemeNone,
	} {
		if got := markCount(pp.NewMarker(scheme, dwrr, rng)); got != 0 {
			t.Errorf("%s: fresh marker count %d", scheme, got)
		}
	}
}

// TestPoolREDCrossPortIntegration drives the §3.2 per-service-pool
// failure end to end: traffic congesting port B's buffer causes CE marks
// on packets traversing the *otherwise idle* port A, throttling an
// innocent service.
func TestPoolREDCrossPortIntegration(t *testing.T) {
	eng := sim.NewEngine()
	pool := aqm.NewPoolRED(30_000)
	net := fabric.NewStar(eng, fabric.StarConfig{
		Hosts:     5,
		Rate:      fabric.Gbps,
		Prop:      2500 * sim.Nanosecond,
		HostDelay: 120 * sim.Microsecond,
		SwitchPort: func() fabric.PortConfig {
			return fabric.PortConfig{Queues: 1, BufferBytes: 96_000, Marker: pool}
		},
	})
	// All switch ports share the pool.
	for i := 0; i < net.Switch.NumPorts(); i++ {
		pool.Register(net.Switch.Port(i))
	}
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP, RTOMin: 10 * sim.Millisecond}, net.Hosts)

	marked, data := 0, 0
	net.Switch.Port(3).OnTransmit = func(_ sim.Time, _ int, p *pkt.Packet) {
		if p.Kind == pkt.Data {
			data++
			if p.ECN == pkt.CE {
				marked++
			}
		}
	}

	// Port 4 is congested by two senders' worth of flows; port 3
	// carries a single flow that could never fill its own queue.
	for i := 0; i < 8; i++ {
		st.Start(&transport.Flow{ID: st.NewFlowID(), Src: i % 2, Dst: 4, Size: 1 << 40})
	}
	st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 2, Dst: 3, Size: 1 << 40})
	eng.RunUntil(200 * sim.Millisecond)

	if data == 0 {
		t.Fatal("no traffic on the victim port")
	}
	frac := float64(marked) / float64(data)
	if frac < 0.05 {
		t.Fatalf("victim port marking fraction %.3f; pool pressure should leak across ports", frac)
	}
}
