package experiments

import (
	"testing"

	"tcn/internal/core"
	"tcn/internal/fabric"
	"tcn/internal/metrics"
	"tcn/internal/pkt"
	"tcn/internal/sched"
	"tcn/internal/sim"
	"tcn/internal/transport"
	"tcn/internal/workload"
)

// runPIFOStar runs the web-search workload over a star whose switch ports
// hold 32 flow-hashed queues (approximate per-flow queueing) arbitrated by
// the given scheduler, with TCN marking. This is the "programmable
// scheduler" setting of §2.2: ranks are computed per packet, there is no
// round and no static priority, so MQ-ECN cannot exist here — but TCN
// needs nothing beyond its one static sojourn threshold.
func runPIFOStar(t *testing.T, mk func() sched.Scheduler, marker func() core.Marker) metrics.FCTStats {
	t.Helper()
	eng := sim.NewEngine()
	rng := sim.NewRand(5)

	const queues = 32
	net := fabric.NewStar(eng, fabric.StarConfig{
		Hosts:     9,
		Rate:      fabric.Gbps,
		Prop:      2500 * sim.Nanosecond,
		HostDelay: 120 * sim.Microsecond,
		SwitchPort: func() fabric.PortConfig {
			// Unlimited buffer: under LAS, starved packets park in
			// the buffer while still holding memory, so a shared
			// 96 KB pool would drop *small-flow* arrivals — real
			// PIFO hardware pairs ranks with rank-aware admission,
			// which is out of scope here.
			return fabric.PortConfig{
				Queues:      queues,
				BufferBytes: 0,
				Scheduler:   mk(),
				Marker:      marker(),
				Classify: func(p *pkt.Packet) int {
					return int(uint32(p.Flow)*2654435761) % queues
				},
			}
		},
	})
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP, RTOMin: 10 * sim.Millisecond}, net.Hosts)

	plan := workload.Plan(rng, workload.PlanConfig{
		Flows:      800,
		Load:       0.6,
		Bottleneck: fabric.Gbps,
		CDFs:       map[uint8]workload.CDF{0: workload.WebSearch},
		Pair:       workload.ManyToOne([]int{0, 1, 2, 3, 4, 5, 6, 7}, 8),
	})
	col := metrics.NewFCTCollector()
	st.OnDone = func(f *transport.Flow) {
		col.Record(metrics.FlowRecord{Size: f.Size, FCT: f.FCT(), Timeouts: f.Timeouts})
	}
	for _, spec := range plan {
		st.StartAt(spec.At, &transport.Flow{
			ID: st.NewFlowID(), Src: spec.Src, Dst: spec.Dst, Size: spec.Size,
		})
	}
	eng.RunUntil(plan[len(plan)-1].At + 60*sim.Second)
	if col.Count() != len(plan) {
		t.Fatalf("%d/%d flows unfinished", len(plan)-col.Count(), len(plan))
	}
	return col.Stats()
}

// lasScheduler builds the least-attained-service PIFO (rank = byte
// offset of the packet within its flow).
func lasScheduler() sched.Scheduler {
	return sched.NewPIFO(func(_ sim.Time, _ int, p *pkt.Packet) float64 {
		return float64(p.Seq)
	})
}

// TestGenericSchedulerPIFOLAS is the paper's core claim on a scheduler
// outside every baseline's reach: over a programmable PIFO running
// least-attained-service, TCN works unmodified (same static sojourn
// threshold) and beats per-queue RED with the standard threshold —
// which, with 32 queues, parks up to 32×32 KB in the buffer.
func TestGenericSchedulerPIFOLAS(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	if SchedPIFOLAS.SupportsScheme(SchemeMQECN) {
		t.Fatal("MQ-ECN must not claim PIFO support")
	}

	tcn := runPIFOStar(t, lasScheduler, func() core.Marker {
		return core.NewTCN(256 * sim.Microsecond)
	})
	none := runPIFOStar(t, lasScheduler, func() core.Marker {
		return core.Nop{}
	})

	// Without marking, windows grow until queueing (not scheduling)
	// dominates; TCN restores low latency with its one unchanged
	// threshold. (With per-flow queues and an unlimited buffer,
	// per-queue RED is coincidentally near-correct here; the RED
	// failure modes need shared class queues — Figures 5-13.)
	if float64(none.AvgSmall) < 1.3*float64(tcn.AvgSmall) {
		t.Errorf("over PIFO-LAS, no-AQM small avg %v not well above TCN %v", none.AvgSmall, tcn.AvgSmall)
	}
	if none.AvgAll <= tcn.AvgAll {
		t.Errorf("over PIFO-LAS, no-AQM avg all %v should exceed TCN %v", none.AvgAll, tcn.AvgAll)
	}
}

// TestMQECNPanicsOnPIFO pins the failure mode: wiring MQ-ECN to a
// non-round-robin scheduler must fail loudly, not silently misbehave.
func TestMQECNPanicsOnPIFO(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pp := PortParams{Queues: 2, RTTLambda: sim.Microsecond, Quantum: 1500}
	sc := pp.NewScheduler(SchedPIFOLAS)
	pp.NewMarker(SchemeMQECN, sc, nil)
}
