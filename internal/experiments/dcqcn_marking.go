package experiments

import (
	"math"

	"tcn/internal/core"
	"tcn/internal/dcqcn"
	"tcn/internal/fabric"
	"tcn/internal/metrics"
	"tcn/internal/obs/flight"
	"tcn/internal/parallel"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// DCQCNMarkingConfig drives the §4.3 extension experiment the paper
// sketches and defers to future work: DCQCN senders under TCN marking,
// comparing the single-threshold cut-off against the RED-like
// probabilistic variant (Tmin/Tmax/Pmax). Cut-off marking notifies every
// sender in the same sojourn excursion, synchronizing their rate cuts;
// probabilistic marking spreads notifications, which is what DCQCN's
// fairness relies on.
type DCQCNMarkingConfig struct {
	// Senders all share one 10 Gbps bottleneck.
	Senders int
	// Warmup is excluded from measurement (synchronized-start
	// transient); Measure is the observation window after it.
	Warmup, Measure sim.Time
	// Probabilistic selects ProbTCN (Tmin/Tmax/Pmax below) instead of
	// plain TCN at Tmax.
	Probabilistic bool
	// Tmin, Tmax, Pmax parameterize the marker.
	Tmin, Tmax sim.Time
	Pmax       float64
	// Seed feeds the marker's coin flips.
	Seed int64
	// Obs carries the self-telemetry campaign, if any; the DCQCN runs
	// attach no per-port sinks, so only the Perf field is consulted.
	Obs *Obs
}

// DefaultDCQCNMarking returns the experiment defaults.
func DefaultDCQCNMarking() DCQCNMarkingConfig {
	return DCQCNMarkingConfig{
		Senders: 4,
		Warmup:  150 * sim.Millisecond,
		Measure: 200 * sim.Millisecond,
		Tmin:    30 * sim.Microsecond,
		Tmax:    300 * sim.Microsecond,
		Pmax:    0.01,
		Seed:    1,
	}
}

// DCQCNMarkingResult summarizes one run.
type DCQCNMarkingResult struct {
	// Jain is the fairness index over per-sender steady goodput.
	Jain float64
	// AggGbps is the steady aggregate goodput.
	AggGbps float64
	// QueueMean and QueueStd describe the steady occupancy (bytes);
	// synchronized cuts show up as a larger relative oscillation.
	QueueMean, QueueStd float64
	// CNPs is the total congestion notifications delivered.
	CNPs int
}

// RunDCQCNMarking executes one run.
func RunDCQCNMarking(cfg DCQCNMarkingConfig) DCQCNMarkingResult {
	eng := sim.NewEngine()
	cfg.Obs.AttachEngine(eng)
	rng := sim.NewRand(cfg.Seed)
	cfg.Obs.AttachRand(eng, rng)

	recv := cfg.Senders
	net := fabric.NewStar(eng, fabric.StarConfig{
		Hosts:     cfg.Senders + 1,
		Rate:      10 * fabric.Gbps,
		Prop:      sim.Microsecond,
		HostDelay: 5 * sim.Microsecond,
		SwitchPort: func() fabric.PortConfig {
			var m core.Marker
			if cfg.Probabilistic {
				m = core.NewProbTCN(cfg.Tmin, cfg.Tmax, cfg.Pmax, rng)
			} else {
				m = core.NewTCN(cfg.Tmax)
			}
			// Unbounded buffer: the PFC-lossless stand-in.
			return fabric.PortConfig{Queues: 1, Marker: m}
		},
	})
	st := dcqcn.NewStack(eng, dcqcn.Config{}, net.Hosts)

	delivered := map[pkt.FlowID]float64{}
	st.OnDeliver = func(now sim.Time, f pkt.FlowID, n int) {
		if now >= cfg.Warmup {
			delivered[f] += float64(n)
		}
	}
	var snds []*dcqcn.Sender
	for src := 0; src < cfg.Senders; src++ {
		snds = append(snds, st.Start(src, recv, 0))
	}

	port := net.Switch.Port(recv)
	rec := flight.New(flight.Config{SeriesCap: figSeriesCap})
	occ := rec.SeriesCap("dcqcn.occupancy_bytes", figSeriesCap)
	rec.Probe(eng, occ.Name(), 50*sim.Microsecond, func(sim.Time) float64 {
		return float64(port.PortBytes())
	})
	eng.RunUntil(cfg.Warmup + cfg.Measure)

	var res DCQCNMarkingResult
	sum, _ := metrics.SumAndSumSq(delivered)
	res.Jain = metrics.JainFairness(delivered, cfg.Senders)
	res.AggGbps = sum * 8 / cfg.Measure.Seconds() / 1e9
	res.QueueMean = occ.MeanBetween(cfg.Warmup, cfg.Warmup+cfg.Measure)
	var varSum float64
	n := 0
	for _, s := range occ.Points() {
		if s.At >= cfg.Warmup {
			d := s.V - res.QueueMean
			varSum += d * d
			n++
		}
	}
	if n > 0 {
		res.QueueStd = math.Sqrt(varSum / float64(n))
	}
	for _, s := range snds {
		res.CNPs += s.CNPs
	}
	cfg.Obs.ReportCell(eng, st.Pool())
	return res
}

// DCQCNSweepConfig shapes the §4.3 comparison sweep: both marker variants
// evaluated across a range of sender counts.
type DCQCNSweepConfig struct {
	// Senders lists the x-axis (sender counts sharing the bottleneck).
	Senders []int
	// Base provides every other parameter; Senders and Probabilistic are
	// overridden per cell.
	Base DCQCNMarkingConfig
	// Workers bounds the number of cells evaluated concurrently; <= 1
	// runs serially. Results are identical at any width.
	Workers int
}

// DefaultDCQCNSweep returns the default comparison shape.
func DefaultDCQCNSweep() DCQCNSweepConfig {
	return DCQCNSweepConfig{
		Senders: []int{2, 4, 8},
		Base:    DefaultDCQCNMarking(),
	}
}

// DCQCNSweep holds the two result rows, indexed like Senders.
type DCQCNSweep struct {
	Senders []int
	// CutOff and Probabilistic are the plain-TCN and ProbTCN rows.
	CutOff        []DCQCNMarkingResult
	Probabilistic []DCQCNMarkingResult
}

// RunDCQCNSweep executes the comparison grid: cut-off and probabilistic
// marking at every sender count, each cell an independent engine.
func RunDCQCNSweep(cfg DCQCNSweepConfig) DCQCNSweep {
	cols := len(cfg.Senders)
	flat := parallel.RunTracked(sweepWorkers(cfg.Workers, nil), 2*cols, cfg.Base.Obs.Tracker(),
		func(i int) DCQCNMarkingResult {
			c := cfg.Base
			c.Probabilistic = i/cols == 1
			c.Senders = cfg.Senders[i%cols]
			return RunDCQCNMarking(c)
		})
	return DCQCNSweep{
		Senders:       cfg.Senders,
		CutOff:        flat[:cols],
		Probabilistic: flat[cols:],
	}
}
