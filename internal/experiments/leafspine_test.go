package experiments

import (
	"testing"

	"tcn/internal/transport"
)

// ciLeafSpine returns a CI-sized fabric (4×4×4 = 16 hosts) at 90% load.
// 1200 flows keeps the TCN-vs-RED small-flow gap well clear of seed noise
// (ratio ≥ 1.27 across seeds 1-3; at 900 flows a seed landed at 1.05).
func ciLeafSpine() LeafSpineConfig {
	c := DefaultLeafSpine()
	c.Leaves, c.Spines, c.HostsPerLeaf = 4, 4, 4
	c.Flows = 1200
	c.Seed = 1
	return c
}

// checkLeafSpinePair asserts the §6.2 shape between TCN and per-queue RED
// in one scheduler/transport setting.
func checkLeafSpinePair(t *testing.T, tcn, red LeafSpineResult) {
	t.Helper()
	if tcn.Unfinished > 0 || red.Unfinished > 0 {
		t.Fatalf("unfinished flows: TCN %d RED %d", tcn.Unfinished, red.Unfinished)
	}
	if float64(red.Stats.AvgSmall) < 1.1*float64(tcn.Stats.AvgSmall) {
		t.Errorf("small avg: RED %v not above TCN %v", red.Stats.AvgSmall, tcn.Stats.AvgSmall)
	}
	if red.Stats.P99Small <= tcn.Stats.P99Small {
		t.Errorf("small p99: RED %v should exceed TCN %v", red.Stats.P99Small, tcn.Stats.P99Small)
	}
	if red.Stats.TimeoutsSmall <= tcn.Stats.TimeoutsSmall {
		t.Errorf("small-flow timeouts: RED %d should exceed TCN %d (§6.2.1)",
			red.Stats.TimeoutsSmall, tcn.Stats.TimeoutsSmall)
	}
	// Large flows within ~20% (paper: within ~1.5%; CI runs 2% of the
	// paper's flows).
	ratio := float64(tcn.Stats.AvgLarge) / float64(red.Stats.AvgLarge)
	if ratio > 1.2 {
		t.Errorf("large avg: TCN %v much worse than RED %v", tcn.Stats.AvgLarge, red.Stats.AvgLarge)
	}
}

func runLeafSpinePair(t *testing.T, base LeafSpineConfig) (tcn, red LeafSpineResult) {
	t.Helper()
	c := base
	c.Scheme = SchemeTCN
	tcn = RunLeafSpine(c)
	c.Scheme = SchemeRED
	red = RunLeafSpine(c)
	return tcn, red
}

func TestFig10LeafSpineDWRR(t *testing.T) {
	if testing.Short() {
		t.Skip("large-fabric simulation")
	}
	tcn, red := runLeafSpinePair(t, ciLeafSpine())
	checkLeafSpinePair(t, tcn, red)
}

func TestFig11LeafSpineWFQ(t *testing.T) {
	if testing.Short() {
		t.Skip("large-fabric simulation")
	}
	c := ciLeafSpine()
	c.Sched = SchedSPWFQ
	tcn, red := runLeafSpinePair(t, c)
	checkLeafSpinePair(t, tcn, red)
}

func TestFig12ECNStar(t *testing.T) {
	if testing.Short() {
		t.Skip("large-fabric simulation")
	}
	c := ciLeafSpine()
	c.CC = transport.ECNStar
	tcn, red := runLeafSpinePair(t, c)
	checkLeafSpinePair(t, tcn, red)
	// §6.2.2: even with the ECN-sensitive ECN*, TCN keeps large-flow
	// throughput competitive (paper: within 1.8%).
	ratio := float64(tcn.Stats.AvgLarge) / float64(red.Stats.AvgLarge)
	if ratio > 1.2 {
		t.Errorf("ECN* large avg ratio %.2f, want near 1", ratio)
	}
}

func TestFig13ManyQueues(t *testing.T) {
	if testing.Short() {
		t.Skip("large-fabric simulation")
	}
	c := ciLeafSpine()
	c.CC = transport.ECNStar
	c.Services = 31
	tcn, red := runLeafSpinePair(t, c)

	// The paper's 32-queue divergence (RED's timeouts grow with the
	// queue count, §6.2.2) needs enough concurrent flows per port to
	// keep tens of queues busy — paper-scale concurrency (144 hosts).
	// On the CI fabric (16 hosts) the schemes converge, so this test
	// asserts correctness of the 32-queue configuration and parity
	// rather than the divergence; `tcnsim -exp fig13` runs full scale.
	if tcn.Unfinished > 0 || red.Unfinished > 0 {
		t.Fatalf("unfinished flows: TCN %d RED %d", tcn.Unfinished, red.Unfinished)
	}
	ratio := float64(tcn.Stats.AvgSmall) / float64(red.Stats.AvgSmall)
	if ratio > 1.5 {
		t.Errorf("32 queues: TCN small avg %v much worse than RED %v", tcn.Stats.AvgSmall, red.Stats.AvgSmall)
	}
	if lr := float64(tcn.Stats.AvgLarge) / float64(red.Stats.AvgLarge); lr > 1.2 {
		t.Errorf("32 queues: TCN large avg %v much worse than RED %v", tcn.Stats.AvgLarge, red.Stats.AvgLarge)
	}
}
