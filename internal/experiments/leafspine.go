package experiments

import (
	"fmt"

	"tcn/internal/fabric"
	"tcn/internal/metrics"
	"tcn/internal/parallel"
	"tcn/internal/pias"
	"tcn/internal/sim"
	"tcn/internal/transport"
	"tcn/internal/workload"
)

// LeafSpineConfig drives the large-scale simulations of §6.2 (Figures
// 10-13): a leaf-spine fabric whose switch ports run one strict queue for
// PIAS high-priority traffic plus N service queues under DWRR or WFQ;
// host pairs are partitioned into services, each drawing flow sizes from
// one of the four production workloads.
type LeafSpineConfig struct {
	// Scheme is the marking scheme.
	Scheme Scheme
	// Sched is SchedSPDWRR or SchedSPWFQ.
	Sched SchedKind
	// CC selects DCTCP (Figures 10-11) or ECN* (Figures 12-13).
	CC transport.CC
	// Load is the target utilization of the host access links.
	Load float64
	// Flows is the number of messages (paper: 50000).
	Flows int
	// Services is the number of low-priority service queues (paper: 7
	// for Figures 10-12, 31 for Figure 13).
	Services int
	// Leaves, Spines, HostsPerLeaf size the fabric (paper: 12/12/12;
	// tests shrink it).
	Leaves, Spines, HostsPerLeaf int
	// Seed feeds all randomness.
	Seed int64
	// Deadline bounds the run (0 = generous default).
	Deadline sim.Time
	// ExactFCT retains per-flow records and exact P99 instead of the
	// default streaming t-digest (see TestbedFCTConfig.ExactFCT).
	ExactFCT bool
	// Obs, if non-nil, receives per-port stats and packet traces,
	// labelled <scheme>.<sched>.load<load>.sw<id>.p<i>.
	Obs *Obs
}

// DefaultLeafSpine returns the paper's fabric with a CI-sized flow count.
func DefaultLeafSpine() LeafSpineConfig {
	return LeafSpineConfig{
		Scheme:       SchemeTCN,
		Sched:        SchedSPDWRR,
		CC:           transport.DCTCP,
		Load:         0.9,
		Flows:        2000,
		Services:     7,
		Leaves:       12,
		Spines:       12,
		HostsPerLeaf: 12,
		Seed:         1,
	}
}

// LeafSpineResult is one (scheme, load) cell of Figures 10-13.
type LeafSpineResult struct {
	Scheme     Scheme
	Sched      SchedKind
	Load       float64
	Stats      metrics.FCTStats
	Records    []metrics.FlowRecord
	Unfinished int
	Drops      int
}

// Validate checks the configuration.
func (cfg LeafSpineConfig) Validate() error {
	if cfg.Sched != SchedSPDWRR && cfg.Sched != SchedSPWFQ {
		return fmt.Errorf("experiments: leaf-spine uses SP composites, got %s", cfg.Sched)
	}
	if !cfg.Sched.SupportsScheme(cfg.Scheme) {
		return fmt.Errorf("experiments: %s does not run over %s", cfg.Scheme, cfg.Sched)
	}
	if cfg.Services < 1 || cfg.Flows <= 0 || cfg.Load <= 0 || cfg.Load > 1 {
		return fmt.Errorf("experiments: bad leaf-spine parameters %+v", cfg)
	}
	return nil
}

// RunLeafSpine executes one cell.
func RunLeafSpine(cfg LeafSpineConfig) LeafSpineResult {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	eng := sim.NewEngine()
	cfg.Obs.AttachEngine(eng)
	rng := sim.NewRand(cfg.Seed)
	cfg.Obs.AttachRand(eng, rng)

	// Thresholds per §6.2: DCTCP uses 65 packets / 78 us; ECN* uses 84
	// packets / 101 us (both at 10 Gbps).
	kBytes := 65 * 1500
	rttLambda := 78 * sim.Microsecond
	if cfg.CC == transport.ECNStar {
		kBytes = 84 * 1500
		rttLambda = 101 * sim.Microsecond
	}

	rate := 10 * fabric.Gbps
	pp := PortParams{
		Queues:        1 + cfg.Services,
		HighQueues:    1,
		Buffer:        300_000,
		Quantum:       1500,
		RTTLambda:     rttLambda,
		KBytes:        kBytes,
		CoDelTarget:   rttLambda / 5,
		CoDelInterval: 4 * rttLambda,
		TIdle:         rate.Serialize(1500),
	}
	net := fabric.NewLeafSpine(eng, fabric.LeafSpineConfig{
		Leaves:       cfg.Leaves,
		Spines:       cfg.Spines,
		HostsPerLeaf: cfg.HostsPerLeaf,
		HostRate:     rate,
		SpineRate:    rate,
		Prop:         650 * sim.Nanosecond,
		HostDelay:    40 * sim.Microsecond,
		SwitchPort:   pp.Factory(cfg.Scheme, cfg.Sched, rng),
	})
	cfg.Obs.AttachLeafSpine(fmt.Sprintf("%s.%s.load%g", cfg.Scheme, cfg.Sched, cfg.Load), net)
	st := transport.NewStack(eng, transport.Config{
		CC:         cfg.CC,
		RTOMin:     5 * sim.Millisecond,
		RTOInit:    5 * sim.Millisecond,
		InitWindow: 16,
		AckDSCP:    func(*transport.Flow) uint8 { return 0 },
	}, net.Hosts)
	cfg.Obs.AttachTransport(st)

	hosts := len(net.Hosts)
	all := make([]int, hosts)
	for i := range all {
		all[i] = i
	}
	// Each service uses one of the four workloads, cycling as the paper
	// assigns its 7 services across Figure 4's distributions. Service s
	// occupies queue s+1 (queue 0 is the PIAS high-priority queue).
	cdfs := map[uint8]workload.CDF{}
	for s := 0; s < cfg.Services; s++ {
		cdfs[uint8(s)] = workload.All[s%len(workload.All)]
	}
	plan := workload.Plan(rng, workload.PlanConfig{
		Flows: cfg.Flows,
		Load:  cfg.Load,
		// Load is defined on host access links; the fabric carries
		// hosts × rate in aggregate.
		Bottleneck: fabric.Rate(hosts) * rate,
		CDFs:       cdfs,
		Pair:       workload.UniformPairs(all, all),
		Class:      func(r *sim.Rand) uint8 { return uint8(r.Intn(cfg.Services)) },
	})

	col := newFCTCollector(cfg.ExactFCT)
	cfg.Obs.AttachFCT(eng, col)
	st.OnDone = func(f *transport.Flow) {
		col.Record(metrics.FlowRecord{Size: f.Size, FCT: f.FCT(), Class: f.Class, Timeouts: f.Timeouts})
	}

	// ns-2 semantics: every flow is a fresh connection starting at the
	// initial window (16 packets), unlike the testbed's persistent
	// connections — the resulting burstiness is part of what Figures
	// 10-13 measure (timeout counts for small flows).
	for _, spec := range plan {
		f := &transport.Flow{
			ID:    st.NewFlowID(),
			Src:   spec.Src,
			Dst:   spec.Dst,
			Size:  spec.Size,
			Class: spec.Class + 1,
			Tag:   pias.Tag(0, spec.Class+1, pias.DefaultThreshold),
		}
		st.StartAt(spec.At, f)
	}

	deadline := cfg.Deadline
	if deadline == 0 {
		deadline = plan[len(plan)-1].At + 120*sim.Second
	}
	eng.RunUntil(deadline)

	res := LeafSpineResult{
		Scheme:     cfg.Scheme,
		Sched:      cfg.Sched,
		Load:       cfg.Load,
		Stats:      col.Stats(),
		Records:    col.Records(),
		Unfinished: cfg.Flows - col.Count(),
	}
	for _, p := range net.SwitchPorts() {
		res.Drops += p.Buffer().TotalDrops()
	}
	cfg.Obs.ReportCell(eng, st.Pool())
	cfg.Obs.ReportFCT(col)
	return res
}

// LeafSpineSweep mirrors FCTSweep for the large-scale figures.
type LeafSpineSweep struct {
	Figure  string
	Sched   SchedKind
	Loads   []float64
	Schemes []Scheme
	Cells   [][]LeafSpineResult
}

// runLeafSpineSweep executes a figure's grid over the base config, fanning
// cells out over workers (clamped to serial when base.Obs is attached).
func runLeafSpineSweep(figure string, base LeafSpineConfig, loads []float64, schemes []Scheme, workers int) LeafSpineSweep {
	kept := schemes[:0:0]
	for _, s := range schemes {
		if base.Sched.SupportsScheme(s) {
			kept = append(kept, s)
		}
	}
	sw := LeafSpineSweep{Figure: figure, Sched: base.Sched, Loads: loads, Schemes: kept}
	cols := len(loads)
	flat := parallel.RunTracked(sweepWorkers(workers, base.Obs), len(kept)*cols, base.Obs.Tracker(),
		func(i int) LeafSpineResult {
			c := base
			c.Scheme = kept[i/cols]
			c.Load = loads[i%cols]
			return RunLeafSpine(c)
		})
	sw.Cells = gridRows(flat, len(kept), cols)
	return sw
}

// LeafSpineSweepConfig shapes Figures 10-13 sweeps.
type LeafSpineSweepConfig struct {
	Loads   []float64
	Flows   int
	Seed    int64
	Schemes []Scheme
	// Leaves/Spines/HostsPerLeaf shrink the fabric for CI (0 = paper's
	// 12/12/12).
	Leaves, Spines, HostsPerLeaf int
	// ExactFCT switches every cell to exact per-flow record retention
	// (see LeafSpineConfig.ExactFCT).
	ExactFCT bool
	// Obs, if non-nil, receives per-port stats and packet traces for
	// every cell. Attaching any sink forces serial execution.
	Obs *Obs
	// Workers bounds the number of cells evaluated concurrently; <= 1
	// runs serially. Results are identical at any width.
	Workers int
}

func (c LeafSpineSweepConfig) base() LeafSpineConfig {
	b := DefaultLeafSpine()
	if c.Flows > 0 {
		b.Flows = c.Flows
	}
	if c.Seed != 0 {
		b.Seed = c.Seed
	}
	if c.Leaves > 0 {
		b.Leaves, b.Spines, b.HostsPerLeaf = c.Leaves, c.Spines, c.HostsPerLeaf
	}
	b.ExactFCT = c.ExactFCT
	b.Obs = c.Obs
	return b
}

func (c LeafSpineSweepConfig) schemes() []Scheme {
	if c.Schemes != nil {
		return c.Schemes
	}
	return []Scheme{SchemeTCN, SchemeCoDel, SchemeRED}
}

// RunFig10 is SP/DWRR with DCTCP (Figure 10).
func RunFig10(c LeafSpineSweepConfig) LeafSpineSweep {
	b := c.base()
	b.Sched = SchedSPDWRR
	return runLeafSpineSweep("fig10", b, c.Loads, c.schemes(), c.Workers)
}

// RunFig11 is SP/WFQ with DCTCP (Figure 11).
func RunFig11(c LeafSpineSweepConfig) LeafSpineSweep {
	b := c.base()
	b.Sched = SchedSPWFQ
	return runLeafSpineSweep("fig11", b, c.Loads, c.schemes(), c.Workers)
}

// RunFig12 is SP/DWRR with ECN* (Figure 12).
func RunFig12(c LeafSpineSweepConfig) LeafSpineSweep {
	b := c.base()
	b.Sched = SchedSPDWRR
	b.CC = transport.ECNStar
	return runLeafSpineSweep("fig12", b, c.Loads, c.schemes(), c.Workers)
}

// RunFig13 is SP/DWRR with ECN* and 32 queues (Figure 13).
func RunFig13(c LeafSpineSweepConfig) LeafSpineSweep {
	b := c.base()
	b.Sched = SchedSPDWRR
	b.CC = transport.ECNStar
	b.Services = 31
	return runLeafSpineSweep("fig13", b, c.Loads, c.schemes(), c.Workers)
}

// Cell returns the result for a scheme at a load, or nil.
func (sw *LeafSpineSweep) Cell(s Scheme, load float64) *LeafSpineResult {
	for i, sc := range sw.Schemes {
		if sc != s {
			continue
		}
		for j, l := range sw.Loads {
			if l == load { //tcnlint:floatexact looks up the exact configured load value
				return &sw.Cells[i][j]
			}
		}
	}
	return nil
}
