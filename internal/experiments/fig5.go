package experiments

import (
	"tcn/internal/fabric"
	"tcn/internal/metrics"
	"tcn/internal/sim"
	"tcn/internal/transport"
)

// Fig5Config parameterizes the static-flow experiment (§6.1.1): SP/WFQ
// with three queues — queue 0 strict high priority carrying a 500 Mbps
// application-limited stream, queues 1 and 2 equal-weight WFQ carrying 1
// and 4 DCTCP flows respectively. The SP/WFQ policy dictates a 500/250/250
// Mbps split regardless of flow counts.
type Fig5Config struct {
	// Scheme is the marking scheme under test.
	Scheme Scheme
	// Stage is the delay between starting each sender group.
	Stage sim.Time
	// Duration is the total run length.
	Duration sim.Time
	// Seed feeds all randomness.
	Seed int64
}

// DefaultFig5 returns the paper's configuration.
func DefaultFig5() Fig5Config {
	return Fig5Config{
		Scheme:   SchemeTCN,
		Stage:    sim.Second,
		Duration: 4 * sim.Second,
		Seed:     1,
	}
}

// Fig5aResult is the goodput-versus-time figure plus the steady-state
// split once all three services are active.
type Fig5aResult struct {
	Scheme Scheme
	// GoodputMbps holds the per-queue goodput series (100 ms bins).
	GoodputMbps [3][]float64
	// SteadyMbps is each queue's average goodput over the final stage.
	SteadyMbps [3]float64
}

// RunFig5a executes the staged-start experiment under one scheme.
func RunFig5a(cfg Fig5Config) Fig5aResult {
	eng, net, st, meter := fig5Setup(cfg)

	const recv = 3
	// Stage 0: 500 Mbps stream into the strict queue.
	st.StartCBR(0, recv, 0, 500*fabric.Mbps)
	// Stage 1: one DCTCP flow into WFQ queue 1.
	eng.At(cfg.Stage, func() {
		st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 1, Dst: recv, Size: 1 << 40, Class: 1})
	})
	// Stage 2: four DCTCP flows into WFQ queue 2.
	eng.At(2*cfg.Stage, func() {
		for i := 0; i < 4; i++ {
			st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 2, Dst: recv, Size: 1 << 40, Class: 2})
		}
	})
	_ = net

	eng.RunUntil(cfg.Duration)

	res := Fig5aResult{Scheme: cfg.Scheme}
	for q := 0; q < 3; q++ {
		res.GoodputMbps[q] = meter.SeriesMbps(q)
		res.SteadyMbps[q] = meter.AvgMbpsBetween(q, 2*cfg.Stage+cfg.Stage/2, cfg.Duration)
	}
	return res
}

// Fig5bResult is one scheme's RTT distribution through queue 2 (the
// paper's "queue 3") while all services are active.
type Fig5bResult struct {
	Scheme  Scheme
	MeanRTT sim.Time
	P99RTT  sim.Time
	Samples []sim.Time
}

// RunFig5b measures ping RTTs through the most loaded WFQ queue under one
// scheme. For SchemeOracle the per-queue thresholds encode the known
// steady-state capacities (500/250/250 Mbps shares of the 32 KB standard
// threshold).
func RunFig5b(cfg Fig5Config) Fig5bResult {
	eng, net, st, _ := fig5Setup(cfg)

	const recv = 3
	st.StartCBR(0, recv, 0, 500*fabric.Mbps)
	st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 1, Dst: recv, Size: 1 << 40, Class: 1})
	for i := 0; i < 4; i++ {
		st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 2, Dst: recv, Size: 1 << 40, Class: 2})
	}
	_ = net

	// Probe through queue 2 once the system is warm.
	var pg *transport.Pinger
	eng.At(cfg.Duration/8, func() {
		pg = st.StartPinger(2, recv, 2, 10*sim.Millisecond)
	})
	eng.RunUntil(cfg.Duration)

	return Fig5bResult{
		Scheme:  cfg.Scheme,
		MeanRTT: pg.Mean(),
		P99RTT:  pg.Percentile(0.99),
		Samples: pg.Samples,
	}
}

// fig5Setup builds the 4-host star with SP/WFQ(1+2) ports under the
// configured scheme and a per-class goodput meter.
func fig5Setup(cfg Fig5Config) (*sim.Engine, *fabric.Star, *transport.Stack, *metrics.GoodputMeter) {
	eng := sim.NewEngine()
	rng := sim.NewRand(cfg.Seed)

	pp := PortParams{
		Queues:        3,
		HighQueues:    1,
		Buffer:        96_000,
		RTTLambda:     256 * sim.Microsecond,
		KBytes:        32_000,
		CoDelTarget:   sim.Time(51.2 * 1000),
		CoDelInterval: 1024 * sim.Microsecond,
		// Oracle: queue 0 drains at 500 Mbps, queues 1-2 at 250 Mbps
		// each; thresholds scale the 32 KB standard threshold.
		OracleK: []int{16_000, 8_000, 8_000},
	}
	net := fabric.NewStar(eng, fabric.StarConfig{
		Hosts:      4,
		Rate:       fabric.Gbps,
		Prop:       2500 * sim.Nanosecond,
		HostDelay:  120 * sim.Microsecond,
		SwitchPort: pp.Factory(cfg.Scheme, SchedSPWFQ, rng),
	})
	st := transport.NewStack(eng, transport.Config{
		CC:     transport.DCTCP,
		RTOMin: 10 * sim.Millisecond,
	}, net.Hosts)

	meter := metrics.NewGoodputMeter(3, 100*sim.Millisecond)
	st.OnDeliver = func(now sim.Time, f *transport.Flow, b int) {
		meter.Add(now, int(f.Class), b)
	}
	return eng, net, st, meter
}
