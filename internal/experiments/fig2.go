package experiments

import (
	"tcn/internal/fabric"
	"tcn/internal/metrics"
	"tcn/internal/sim"
	"tcn/internal/transport"
)

// Fig2Config parameterizes the departure-rate estimation experiment
// (§3.3, Figure 2): 10 servers send to one receiver over a 10 Gbps DWRR
// port with two 18 KB-quantum queues; 8 ECN* flows occupy queue 0 from the
// start and 2 more flows join queue 1 at 10 ms, dropping queue 0's true
// capacity to 5 Gbps. The figure compares how Algorithm 1 (dq_thresh 40 KB
// and 10 KB) and MQ-ECN track that change.
type Fig2Config struct {
	// StepAt is when the second service starts (paper: 10 ms).
	StepAt sim.Time
	// Duration is the total simulated time (paper plots ~2 ms after the
	// step; we run a little longer to measure convergence).
	Duration sim.Time
	// DqThreshs lists the Algorithm-1 cycle sizes to sweep.
	DqThreshs []int
	// Seed feeds all randomness.
	Seed int64
	// Obs, if non-nil, receives per-port stats, packet traces, and flight
	// telemetry for every trace, labelled fig2.<scheme>.
	Obs *Obs
}

// DefaultFig2 returns the paper's configuration.
func DefaultFig2() Fig2Config {
	return Fig2Config{
		StepAt:    10 * sim.Millisecond,
		Duration:  16 * sim.Millisecond,
		DqThreshs: []int{40_000, 10_000},
		Seed:      1,
	}
}

// Fig2Trace is the estimator trace of one scheme for queue 0.
type Fig2Trace struct {
	Scheme   string           // "dynred-40KB", "dynred-10KB", "mqecn"
	Raw      []metrics.Sample // raw samples (Gbps) where available
	Smoothed []metrics.Sample // smoothed estimate (Gbps)

	// SamplesInWindow counts estimator samples in the 2 ms after the
	// step (the paper: 29 for 40 KB vs many for MQ-ECN).
	SamplesInWindow int
	// ConvergeTime is when the smoothed estimate first stays within
	// 10 % of 5 Gbps after the step (0 = never during the run).
	ConvergeTime sim.Time
	// MinGbps and MaxGbps bound the raw samples after the step,
	// exposing the oscillation of small dq_thresh.
	MinGbps, MaxGbps float64
	// FinalGbps is the last smoothed estimate of the run.
	FinalGbps float64
}

// Fig2Result is the full figure.
type Fig2Result struct {
	Traces []Fig2Trace
}

// RunFig2 executes the three estimator traces.
func RunFig2(cfg Fig2Config) Fig2Result {
	var res Fig2Result
	for _, dq := range cfg.DqThreshs {
		name := "dynred-" + byteLabel(dq)
		res.Traces = append(res.Traces, runFig2Once(cfg, SchemeDynRED, dq, name))
	}
	res.Traces = append(res.Traces, runFig2Once(cfg, SchemeMQECN, 0, "mqecn"))
	return res
}

func byteLabel(b int) string {
	if b%1000 == 0 {
		return itoa(b/1000) + "KB"
	}
	return itoa(b) + "B"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func runFig2Once(cfg Fig2Config, scheme Scheme, dqThresh int, name string) Fig2Trace {
	eng := sim.NewEngine()
	rng := sim.NewRand(cfg.Seed)
	cfg.Obs.AttachEngine(eng)
	cfg.Obs.AttachRand(eng, rng)
	tr := Fig2Trace{Scheme: name}

	const rttLambda = 100 * sim.Microsecond // ECN*: λ=1, RTT=100us

	// The estimator traces are event-driven series in the flight
	// recorder: each estimator callback records one point, and the trace
	// slices below are read back out of the recorder after the run.
	rec := cfg.Obs.flightRecorder()
	rawSeries := rec.SeriesCap("fig2."+name+".est_raw_gbps", figSeriesCap)
	smoothedSeries := rec.SeriesCap("fig2."+name+".est_smoothed_gbps", figSeriesCap)

	pp := PortParams{
		Queues:    2,
		Buffer:    1_000_000,
		Quantum:   18_000,
		RTTLambda: rttLambda,
		KBytes:    125_000,
		DqThresh:  dqThresh,
		TIdle:     (10 * fabric.Gbps).Serialize(1500),
	}
	// Trace hooks: only queue 0 matters for the figure.
	pp.OnDynREDSample = func(q int) func(sim.Time, float64, float64) {
		if q != 0 {
			return nil
		}
		return func(now sim.Time, raw, smoothed float64) {
			rawSeries.Record(now, raw*8/1e9)
			smoothedSeries.Record(now, smoothed*8/1e9)
		}
	}
	pp.OnMQECNEstimate = func(now sim.Time, q int, rate float64) {
		if q != 0 {
			return
		}
		smoothedSeries.Record(now, rate*8/1e9)
	}

	net := fabric.NewStar(eng, fabric.StarConfig{
		Hosts:      11,
		Rate:       10 * fabric.Gbps,
		Prop:       sim.Microsecond,
		HostDelay:  48 * sim.Microsecond,
		SwitchPort: pp.Factory(scheme, SchedDWRR, rng),
	})
	cfg.Obs.AttachStar("fig2."+name, net)
	st := transport.NewStack(eng, transport.Config{
		CC:         transport.ECNStar,
		RTOMin:     5 * sim.Millisecond,
		InitWindow: 16,
	}, net.Hosts)
	cfg.Obs.AttachTransport(st)

	const recv = 10
	for src := 0; src < 8; src++ {
		st.Start(&transport.Flow{ID: st.NewFlowID(), Src: src, Dst: recv, Size: 1 << 40, Class: 0})
	}
	for src := 8; src < 10; src++ {
		f := &transport.Flow{ID: st.NewFlowID(), Src: src, Dst: recv, Size: 1 << 40, Class: 1}
		st.StartAt(cfg.StepAt, f)
	}

	eng.RunUntil(cfg.Duration)

	tr.Raw = samplesOf(rawSeries)
	tr.Smoothed = samplesOf(smoothedSeries)

	// Post-process the trace.
	const target = 5.0 // Gbps
	for _, s := range tr.Raw {
		if s.At < cfg.StepAt {
			continue
		}
		if tr.MinGbps == 0 || s.Value < tr.MinGbps { //tcnlint:floatexact zero means "no sample yet"
			tr.MinGbps = s.Value
		}
		if s.Value > tr.MaxGbps {
			tr.MaxGbps = s.Value
		}
	}
	window := cfg.StepAt + 2*sim.Millisecond
	for _, s := range tr.Smoothed {
		if s.At >= cfg.StepAt && s.At <= window {
			tr.SamplesInWindow++
		}
	}
	// Convergence: first smoothed sample after the step from which all
	// later samples stay within 10% of target.
	for i, s := range tr.Smoothed {
		if s.At < cfg.StepAt {
			continue
		}
		ok := true
		for _, t := range tr.Smoothed[i:] {
			if t.Value < target*0.9 || t.Value > target*1.1 {
				ok = false
				break
			}
		}
		if ok {
			tr.ConvergeTime = s.At - cfg.StepAt
			break
		}
	}
	if n := len(tr.Smoothed); n > 0 {
		tr.FinalGbps = tr.Smoothed[n-1].Value
	}
	return tr
}
