package experiments

import (
	"testing"

	"tcn/internal/sim"
)

// TestFig2RateEstimationTradeoff reproduces §3.3's three observations:
// a large dq_thresh converges slowly, a small dq_thresh oscillates wildly
// between round-local and cross-round rates, and MQ-ECN converges quickly
// and accurately (because it reads the scheduler's round state directly).
func TestFig2RateEstimationTradeoff(t *testing.T) {
	res := RunFig2(DefaultFig2())
	byName := map[string]Fig2Trace{}
	for _, tr := range res.Traces {
		byName[tr.Scheme] = tr
	}
	big, small, mq := byName["dynred-40KB"], byName["dynred-10KB"], byName["mqecn"]

	// Observation 1: 40 KB cycles are few — the paper counts 29 samples
	// in the 2 ms after the step.
	if big.SamplesInWindow > 60 {
		t.Errorf("dq_thresh=40KB produced %d samples in 2ms, expected sparse (~30)", big.SamplesInWindow)
	}

	// Observation 2: 10 KB (< quantum 18 KB) raw samples oscillate
	// between roughly the line rate and the cross-round rate.
	if small.MaxGbps < 8 {
		t.Errorf("dq_thresh=10KB max raw sample %.1f Gbps, expected near line rate", small.MaxGbps)
	}
	if small.MinGbps > 5 {
		t.Errorf("dq_thresh=10KB min raw sample %.1f Gbps, expected well below 5", small.MinGbps)
	}

	// Observation 3: MQ-ECN converges to 5 Gbps quickly (paper: within
	// ~600 us) and much faster than the 40 KB estimator.
	if mq.ConvergeTime == 0 || mq.ConvergeTime > 1500*sim.Microsecond {
		t.Errorf("MQ-ECN converge time %v, expected under ~1.5ms", mq.ConvergeTime)
	}
	if mq.FinalGbps < 4.5 || mq.FinalGbps > 5.5 {
		t.Errorf("MQ-ECN final estimate %.2f Gbps, want ~5", mq.FinalGbps)
	}
	if big.ConvergeTime != 0 && mq.ConvergeTime != 0 && big.ConvergeTime < mq.ConvergeTime {
		t.Errorf("40KB estimator converged faster (%v) than MQ-ECN (%v)", big.ConvergeTime, mq.ConvergeTime)
	}
}
