package experiments

import "testing"

// TestRunsAreDeterministic guards the repository's reproducibility
// contract: the same seed must produce bit-identical results, run to run.
// This catches accidental dependence on map iteration order or wall-clock
// time anywhere in the simulator.
func TestRunsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	cfg := TestbedFCTConfig{
		Scheme: SchemeTCN, Sched: SchedSPDWRR, PIAS: true,
		Load: 0.8, Flows: 600, Seed: 42,
		// Exact mode retains the per-flow records this test compares.
		ExactFCT: true,
	}
	a := RunTestbedFCT(cfg)
	b := RunTestbedFCT(cfg)

	if a.Stats != b.Stats {
		t.Fatalf("identical seeds diverged:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.Drops != b.Drops || a.Marks != b.Marks {
		t.Fatalf("drop/mark counters diverged: %d/%d vs %d/%d",
			a.Drops, a.Marks, b.Drops, b.Marks)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts diverged")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

// TestSeedsActuallyMatter is the inverse guard: different seeds must
// produce different arrival plans (a constant-output "determinism" would
// also pass the test above).
func TestSeedsActuallyMatter(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	base := TestbedFCTConfig{
		Scheme: SchemeTCN, Sched: SchedDWRR, Load: 0.5, Flows: 300, Seed: 1,
	}
	a := RunTestbedFCT(base)
	base.Seed = 2
	b := RunTestbedFCT(base)
	if a.Stats == b.Stats {
		t.Fatal("different seeds produced identical statistics")
	}
}
