package experiments

import (
	"bytes"
	"testing"

	"tcn/internal/digest"
)

// fingerprintRun executes one testbed cell with a fingerprint recorder
// attached and returns the recorder.
func fingerprintRun(cfg TestbedFCTConfig, fp digest.Config) (*digest.Recorder, TestbedFCTResult) {
	rec := digest.New(fp)
	cfg.Obs = &Obs{Fingerprint: rec}
	res := RunTestbedFCT(cfg)
	return rec, res
}

// TestRunsAreDeterministic guards the repository's reproducibility
// contract: the same seed must produce bit-identical results, run to run.
// This catches accidental dependence on map iteration order or wall-clock
// time anywhere in the simulator. The comparison runs on the fingerprint
// digest timelines (the same machinery `tcndiff` uses), backed up by the
// exact per-flow records.
func TestRunsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	cfg := TestbedFCTConfig{
		Scheme: SchemeTCN, Sched: SchedSPDWRR, PIAS: true,
		Load: 0.8, Flows: 600, Seed: 42,
		// Exact mode retains the per-flow records this test compares.
		ExactFCT: true,
	}
	fp := digest.Config{EpochNs: 1_000_000}
	recA, a := fingerprintRun(cfg, fp)
	recB, b := fingerprintRun(cfg, fp)

	// The digest timelines must agree component by component...
	rep := digest.Compare(recA.Timeline(), recB.Timeline())
	if !rep.Identical {
		t.Fatalf("identical seeds diverged: %s", rep.Divergence)
	}
	if rep.RecordsA == 0 {
		t.Fatal("fingerprint recorder captured no epoch records")
	}
	// ...and so must the serialized wire form read back by tcndiff.
	var bufA, bufB bytes.Buffer
	if err := recA.WriteJSONL(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := recB.WriteJSONL(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("serialized fingerprint timelines are not byte-identical")
	}
	tlA, err := digest.ReadTimeline(&bufA)
	if err != nil {
		t.Fatal(err)
	}
	if len(tlA.Records) != rep.RecordsA {
		t.Fatalf("round-trip lost records: wrote %d, read %d", rep.RecordsA, len(tlA.Records))
	}

	if a.Stats != b.Stats {
		t.Fatalf("identical seeds diverged:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.Drops != b.Drops || a.Marks != b.Marks {
		t.Fatalf("drop/mark counters diverged: %d/%d vs %d/%d",
			a.Drops, a.Marks, b.Drops, b.Marks)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts diverged")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

// TestFingerprintLocalizesSeedPerturbation is the two-phase tcndiff
// workflow in miniature: a coarse pass localizes the first divergent
// (epoch, component) between two seeds, then a fine rerun bracketed at
// that epoch pins the exact event index.
func TestFingerprintLocalizesSeedPerturbation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	base := TestbedFCTConfig{
		Scheme: SchemeTCN, Sched: SchedDWRR, Load: 0.5, Flows: 300, Seed: 1,
	}
	coarse := digest.Config{EpochNs: 1_000_000}
	recA, _ := fingerprintRun(base, coarse)
	perturbed := base
	perturbed.Seed = 2
	recB, _ := fingerprintRun(perturbed, coarse)

	rep := digest.Compare(recA.Timeline(), recB.Timeline())
	if rep.Identical {
		t.Fatal("different seeds produced identical fingerprints")
	}
	d := rep.Divergence
	if d.Kind != "epoch" {
		t.Fatalf("expected an epoch-kind divergence, got %q (%s)", d.Kind, d)
	}
	if d.Epoch < 0 || d.Component.String() == "" {
		t.Fatalf("divergence not localized: %s", d)
	}
	if d.Event != -1 {
		t.Fatalf("coarse pass should not name an event, got %d", d.Event)
	}

	// Phase two: rerun both sides with the fine bracket at the reported
	// epoch; now the comparison must name the first divergent event.
	fine := digest.Config{EpochNs: 1_000_000, Fine: true, FineAtEpoch: d.Epoch}
	fineA, _ := fingerprintRun(base, fine)
	fineB, _ := fingerprintRun(perturbed, fine)
	if len(fineA.FineRecords()) == 0 {
		t.Fatal("fine bracket recorded no per-event digests")
	}
	fineRep := digest.Compare(fineA.Timeline(), fineB.Timeline())
	if fineRep.Identical {
		t.Fatal("fine rerun no longer diverges")
	}
	fd := fineRep.Divergence
	if fd.Event < 0 {
		t.Fatalf("fine rerun did not localize an event: %s", fd)
	}
}

// TestSeedsActuallyMatter is the inverse guard: different seeds must
// produce different arrival plans (a constant-output "determinism" would
// also pass the test above).
func TestSeedsActuallyMatter(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload run")
	}
	base := TestbedFCTConfig{
		Scheme: SchemeTCN, Sched: SchedDWRR, Load: 0.5, Flows: 300, Seed: 1,
	}
	a := RunTestbedFCT(base)
	base.Seed = 2
	b := RunTestbedFCT(base)
	if a.Stats == b.Stats {
		t.Fatal("different seeds produced identical statistics")
	}
}
