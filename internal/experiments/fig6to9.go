package experiments

import (
	"fmt"

	"tcn/internal/parallel"
)

// FCTSweep is a figure-shaped grid of FCT results: one row per scheme,
// one column per load, as Figures 6-13 plot.
type FCTSweep struct {
	Figure  string
	Sched   SchedKind
	Loads   []float64
	Schemes []Scheme
	// Cells is indexed [scheme][load].
	Cells [][]TestbedFCTResult
}

// SweepConfig parameterizes the testbed figure sweeps.
type SweepConfig struct {
	// Loads lists the x-axis (paper: 0.1..0.9).
	Loads []float64
	// Flows per load point (paper: 5000).
	Flows int
	// Seed feeds all randomness; the same seed yields identical arrival
	// plans for every scheme.
	Seed int64
	// Schemes overrides the default scheme set (nil = paper's set).
	Schemes []Scheme
	// ExactFCT switches every cell to exact per-flow record retention
	// (see TestbedFCTConfig.ExactFCT).
	ExactFCT bool
	// Obs, if non-nil, receives per-port stats and packet traces for
	// every cell, labelled <figure>.<scheme>.load<load>. Attaching any
	// sink forces serial execution regardless of Workers.
	Obs *Obs
	// Workers bounds the number of cells evaluated concurrently; <= 1
	// runs serially. Results are identical at any width because each cell
	// owns its engine and randomness.
	Workers int
}

// DefaultSweep returns the paper's sweep shape.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Loads: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		Flows: 5000,
		Seed:  1,
	}
}

// runTestbedSweep executes a figure's grid.
func runTestbedSweep(figure string, sched SchedKind, pias bool, cfg SweepConfig) FCTSweep {
	schemes := cfg.Schemes
	if schemes == nil {
		schemes = []Scheme{SchemeTCN, SchemeCoDel, SchemeMQECN, SchemeRED}
	}
	// Drop schemes the scheduler cannot host (MQ-ECN outside DWRR).
	kept := schemes[:0:0]
	for _, s := range schemes {
		if sched.SupportsScheme(s) {
			kept = append(kept, s)
		}
	}
	sw := FCTSweep{Figure: figure, Sched: sched, Loads: cfg.Loads, Schemes: kept}
	cols := len(cfg.Loads)
	flat := parallel.RunTracked(sweepWorkers(cfg.Workers, cfg.Obs), len(kept)*cols, cfg.Obs.Tracker(),
		func(i int) TestbedFCTResult {
			s, load := kept[i/cols], cfg.Loads[i%cols]
			return RunTestbedFCT(TestbedFCTConfig{
				Scheme:   s,
				Sched:    sched,
				Load:     load,
				Flows:    cfg.Flows,
				PIAS:     pias,
				Seed:     cfg.Seed,
				ExactFCT: cfg.ExactFCT,
				Obs:      cfg.Obs,
				ObsLabel: fmt.Sprintf("%s.%s.load%g", figure, s, load),
			})
		})
	sw.Cells = gridRows(flat, len(kept), cols)
	return sw
}

// RunFig6 is inter-service isolation over DWRR (Figure 6).
func RunFig6(cfg SweepConfig) FCTSweep { return runTestbedSweep("fig6", SchedDWRR, false, cfg) }

// RunFig7 is inter-service isolation over WFQ (Figure 7; no MQ-ECN).
func RunFig7(cfg SweepConfig) FCTSweep { return runTestbedSweep("fig7", SchedWFQ, false, cfg) }

// RunFig8 is traffic prioritization over SP/DWRR with PIAS (Figure 8).
func RunFig8(cfg SweepConfig) FCTSweep { return runTestbedSweep("fig8", SchedSPDWRR, true, cfg) }

// RunFig9 is traffic prioritization over SP/WFQ with PIAS (Figure 9).
func RunFig9(cfg SweepConfig) FCTSweep { return runTestbedSweep("fig9", SchedSPWFQ, true, cfg) }

// Cell returns the result for a scheme at a load, or nil.
func (sw *FCTSweep) Cell(s Scheme, load float64) *TestbedFCTResult {
	for i, sc := range sw.Schemes {
		if sc != s {
			continue
		}
		for j, l := range sw.Loads {
			if l == load { //tcnlint:floatexact looks up the exact configured load value
				return &sw.Cells[i][j]
			}
		}
	}
	return nil
}
