package experiments

import (
	"fmt"

	"tcn/internal/fabric"
	"tcn/internal/metrics"
	"tcn/internal/sim"
	"tcn/internal/transport"
)

// Fig3Config parameterizes the marking-placement experiment (§4.3,
// Figure 3): 8 synchronized long-lived ECN* flows into one 10 Gbps queue;
// the buffer occupancy trace distinguishes enqueue RED (slow-start peak
// ≈ 3×BDP), dequeue RED (peak ≈ 2×BDP, it reacts on *future* packets'
// congestion), and TCN (same peak as enqueue RED because with a fixed
// drain rate sojourn time and queue length are the same signal).
type Fig3Config struct {
	// Duration is the simulated time.
	Duration sim.Time
	// SamplePeriod is the occupancy polling period.
	SamplePeriod sim.Time
	// Seed feeds all randomness.
	Seed int64
	// Obs, if non-nil, receives per-port stats and packet traces for
	// every trace, labelled fig3.<scheme>.
	Obs *Obs
}

// DefaultFig3 returns the paper's configuration.
func DefaultFig3() Fig3Config {
	return Fig3Config{
		Duration:     20 * sim.Millisecond,
		SamplePeriod: 10 * sim.Microsecond,
		Seed:         1,
	}
}

// Fig3Trace is one scheme's occupancy trace.
type Fig3Trace struct {
	Scheme Scheme
	// Occupancy is the port buffer occupancy in bytes over time.
	Occupancy []metrics.Sample
	// PeakBytes is the slow-start peak.
	PeakBytes int
	// SteadyMaxBytes is the largest occupancy after the slow-start
	// transient (from 5 ms on).
	SteadyMaxBytes int
	// SteadyMeanBytes is the mean occupancy after the transient.
	SteadyMeanBytes int
}

// Fig3Result is the full figure.
type Fig3Result struct {
	// BDP is the bandwidth-delay product in bytes (125 KB here).
	BDP    int
	Traces []Fig3Trace
}

// RunFig3 executes the three traces.
func RunFig3(cfg Fig3Config) Fig3Result {
	res := Fig3Result{BDP: (10 * fabric.Gbps).BDP(100 * sim.Microsecond)}
	for _, s := range []Scheme{SchemeRED, SchemeREDDeq, SchemeTCN} {
		res.Traces = append(res.Traces, runFig3Once(cfg, s))
	}
	return res
}

func runFig3Once(cfg Fig3Config, scheme Scheme) Fig3Trace {
	eng := sim.NewEngine()
	rng := sim.NewRand(cfg.Seed)
	cfg.Obs.AttachEngine(eng)
	cfg.Obs.AttachRand(eng, rng)

	pp := PortParams{
		Queues:    1,
		Buffer:    1_000_000,
		RTTLambda: 100 * sim.Microsecond,
		KBytes:    125_000,
	}
	net := fabric.NewStar(eng, fabric.StarConfig{
		Hosts:      9,
		Rate:       10 * fabric.Gbps,
		Prop:       sim.Microsecond,
		HostDelay:  48 * sim.Microsecond,
		SwitchPort: pp.Factory(scheme, SchedFIFO, rng),
	})
	cfg.Obs.AttachStar(fmt.Sprintf("fig3.%s", scheme), net)
	// IW=2 (the ns-2 default of the paper's targeted simulation): the
	// figure's 3×BDP peak is the classic slow-start overshoot, which
	// needs several doubling rounds before ECN feedback arrives.
	st := transport.NewStack(eng, transport.Config{
		CC:         transport.ECNStar,
		RTOMin:     5 * sim.Millisecond,
		InitWindow: 2,
	}, net.Hosts)
	cfg.Obs.AttachTransport(st)

	const recv = 8
	for src := 0; src < 8; src++ {
		st.Start(&transport.Flow{ID: st.NewFlowID(), Src: src, Dst: recv, Size: 1 << 40})
	}

	port := net.Switch.Port(recv)
	rec := cfg.Obs.flightRecorder()
	occ := rec.SeriesCap(fmt.Sprintf("fig3.%s.occupancy_bytes", scheme), figSeriesCap)
	rec.Probe(eng, occ.Name(), cfg.SamplePeriod, func(sim.Time) float64 {
		return float64(port.PortBytes())
	})
	eng.RunUntil(cfg.Duration)

	tr := Fig3Trace{Scheme: scheme, Occupancy: samplesOf(occ)}
	tr.PeakBytes = int(occ.Max())
	tr.SteadyMaxBytes = int(occ.MaxBetween(5*sim.Millisecond, cfg.Duration))
	tr.SteadyMeanBytes = int(occ.MeanBetween(5*sim.Millisecond, cfg.Duration))
	return tr
}
