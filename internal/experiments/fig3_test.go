package experiments

import "testing"

// TestFig3MarkingPlacement reproduces §4.3 Figure 3: dequeue RED reacts
// earlier and caps the slow-start peak below enqueue RED's, while TCN and
// enqueue RED peak alike (fixed drain rate makes their signals
// equivalent); all three settle near the 1×BDP threshold afterwards.
func TestFig3MarkingPlacement(t *testing.T) {
	res := RunFig3(DefaultFig3())
	byScheme := map[Scheme]Fig3Trace{}
	for _, tr := range res.Traces {
		byScheme[tr.Scheme] = tr
	}
	enq, deq, tcn := byScheme[SchemeRED], byScheme[SchemeREDDeq], byScheme[SchemeTCN]
	bdp := res.BDP

	if deq.PeakBytes >= enq.PeakBytes {
		t.Errorf("dequeue RED peak %d should undercut enqueue RED peak %d", deq.PeakBytes, enq.PeakBytes)
	}
	// TCN's peak should be close to enqueue RED's (paper: both ~3 BDP).
	ratio := float64(tcn.PeakBytes) / float64(enq.PeakBytes)
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("TCN peak %d vs enqueue RED peak %d: ratio %.2f, want ~1", tcn.PeakBytes, enq.PeakBytes, ratio)
	}
	// Peaks are in multiples of BDP: enqueue/TCN around 2.5-3.5x,
	// dequeue around 1.5-2.5x.
	if p := float64(enq.PeakBytes) / float64(bdp); p < 2 || p > 4.5 {
		t.Errorf("enqueue RED peak %.1f BDP, want ~3", p)
	}
	if p := float64(deq.PeakBytes) / float64(bdp); p < 1.2 || p > 3 {
		t.Errorf("dequeue RED peak %.1f BDP, want ~2", p)
	}
	// Steady state: occupancy oscillates between 0 and ~1 BDP for all.
	for _, tr := range res.Traces {
		if tr.SteadyMaxBytes > 2*bdp {
			t.Errorf("%s steady occupancy %d exceeds 2 BDP", tr.Scheme, tr.SteadyMaxBytes)
		}
		if tr.SteadyMeanBytes <= 0 {
			t.Errorf("%s has empty steady occupancy trace", tr.Scheme)
		}
	}
}
