package workload

import (
	"math"
	"testing"
	"testing/quick"

	"tcn/internal/fabric"
	"tcn/internal/sim"
	"tcn/internal/testutil"
)

func TestCDFValidation(t *testing.T) {
	mustPanic := func(name string, pts []Point) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		New(name, pts)
	}
	mustPanic("too few", []Point{{0, 0}})
	mustPanic("no zero start", []Point{{0, 0.5}, {10, 1}})
	mustPanic("no one end", []Point{{0, 0}, {10, 0.9}})
	mustPanic("non-monotone frac", []Point{{0, 0}, {10, 0.5}, {20, 0.4}, {30, 1}})
	mustPanic("non-monotone size", []Point{{0, 0}, {10, 0.5}, {5, 1}})
}

func TestSampleWithinSupport(t *testing.T) {
	r := sim.NewRand(1)
	for _, c := range All {
		pts := c.Points()
		lo, hi := pts[0].Bytes, pts[len(pts)-1].Bytes
		for i := 0; i < 10_000; i++ {
			s := c.Sample(r)
			if s < 1 || s < lo && lo > 1 || s > hi {
				t.Fatalf("%s: sample %d outside [max(1,%d), %d]", c.Name(), s, lo, hi)
			}
		}
	}
}

func TestSampleMeanMatchesAnalytic(t *testing.T) {
	r := sim.NewRand(42)
	for _, c := range All {
		want := c.Mean()
		var sum float64
		const n = 300_000
		for i := 0; i < n; i++ {
			sum += float64(c.Sample(r))
		}
		got := sum / n
		if got < 0.9*want || got > 1.1*want {
			t.Errorf("%s: empirical mean %.0f vs analytic %.0f", c.Name(), got, want)
		}
	}
}

func TestMeanSimpleCDF(t *testing.T) {
	c := New("uniform", []Point{{0, 0}, {1000, 1}})
	if m := c.Mean(); !testutil.Eq(m, 500) {
		t.Fatalf("uniform mean %v, want 500", m)
	}
}

func TestWebSearchByteSplit(t *testing.T) {
	// The paper: ~60% of web-search bytes come from flows < 10 MB —
	// what makes it the hardest workload (§6, "Benchmark traffic").
	frac := WebSearch.FracBytesBelow(10_000_000)
	if frac < 0.5 || frac > 0.75 {
		t.Fatalf("web search bytes below 10MB = %.2f, want ~0.6", frac)
	}
	// The other workloads are more skewed: smaller fraction of bytes in
	// sub-10MB flows.
	for _, c := range []CDF{DataMining, Hadoop} {
		if f := c.FracBytesBelow(10_000_000); f >= frac {
			t.Errorf("%s bytes below 10MB = %.2f, should be below web search's %.2f",
				c.Name(), f, frac)
		}
	}
}

func TestWorkloadsHeavyTailed(t *testing.T) {
	// Most flows are small but most bytes live in large flows.
	r := sim.NewRand(9)
	for _, c := range All {
		small, smallBytes, total := 0, int64(0), int64(0)
		const n = 100_000
		for i := 0; i < n; i++ {
			s := c.Sample(r)
			total += s
			if s <= 100_000 {
				small++
				smallBytes += s
			}
		}
		if float64(small)/n < 0.5 {
			t.Errorf("%s: only %.1f%% of flows are <=100KB", c.Name(), 100*float64(small)/n)
		}
		if float64(smallBytes)/float64(total) > 0.5 {
			t.Errorf("%s: small flows carry %.1f%% of bytes, not heavy-tailed",
				c.Name(), 100*float64(smallBytes)/float64(total))
		}
	}
}

// Property: quantiles are monotone — a larger u never yields a smaller
// size (checked via sorted pair sampling).
func TestPropertyCDFMonotoneQuantiles(t *testing.T) {
	f := func(a, b float64) bool {
		u1, u2 := norm01(a), norm01(b)
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		s1 := sampleAt(WebSearch, u1)
		s2 := sampleAt(WebSearch, u2)
		return s1 <= s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// sampleAt evaluates the inverse CDF at a fixed u by replicating the
// interpolation (kept in sync with Sample's logic through the shared
// Points accessor).
func sampleAt(c CDF, u float64) int64 {
	pts := c.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].Frac >= u {
			lo, hi := pts[i-1], pts[i]
			if hi.Frac == lo.Frac { //tcnlint:floatexact division-by-zero guard
				return hi.Bytes
			}
			t := (u - lo.Frac) / (hi.Frac - lo.Frac)
			s := lo.Bytes + int64(t*float64(hi.Bytes-lo.Bytes))
			if s < 1 {
				s = 1
			}
			return s
		}
	}
	return pts[len(pts)-1].Bytes
}

func norm01(x float64) float64 {
	if x < 0 {
		x = -x
	}
	x = x - float64(int64(x))
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	return x
}

func TestPlanLoadAccuracy(t *testing.T) {
	r := sim.NewRand(5)
	specs := Plan(r, PlanConfig{
		Flows:      20_000,
		Load:       0.5,
		Bottleneck: fabric.Gbps,
		CDFs:       map[uint8]CDF{0: WebSearch},
		Pair:       ManyToOne([]int{0, 1, 2}, 9),
	})
	if len(specs) != 20_000 {
		t.Fatalf("plan size %d", len(specs))
	}
	span := specs[len(specs)-1].At
	offered := float64(TotalBytes(specs)) * 8 / span.Seconds()
	if offered < 0.4e9 || offered > 0.6e9 {
		t.Fatalf("offered load %.0f bps, want ~0.5e9", offered)
	}
	// Arrivals are sorted and strictly increasing.
	for i := 1; i < len(specs); i++ {
		if specs[i].At <= specs[i-1].At {
			t.Fatal("arrival times must strictly increase")
		}
	}
}

func TestPlanMultiService(t *testing.T) {
	r := sim.NewRand(5)
	specs := Plan(r, PlanConfig{
		Flows:      5000,
		Load:       0.8,
		Bottleneck: fabric.Gbps,
		CDFs:       map[uint8]CDF{0: WebSearch, 1: Cache},
		Pair:       UniformPairs([]int{0, 1}, []int{2, 3}),
		Class: func(r *sim.Rand) uint8 {
			return uint8(r.Intn(2))
		},
	})
	count := map[uint8]int{}
	for _, s := range specs {
		count[s.Class]++
		if s.Src == s.Dst {
			t.Fatal("src == dst")
		}
		if s.Src > 1 || s.Dst < 2 {
			t.Fatal("pair picker sets violated")
		}
	}
	if count[0] < 2000 || count[1] < 2000 {
		t.Fatalf("class balance: %v", count)
	}
}

func TestPlanValidation(t *testing.T) {
	r := sim.NewRand(1)
	mustPanic := func(name string, cfg PlanConfig) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		Plan(r, cfg)
	}
	ok := PlanConfig{Flows: 1, Load: 0.5, Bottleneck: fabric.Gbps,
		CDFs: map[uint8]CDF{0: WebSearch}, Pair: ManyToOne([]int{0}, 1)}

	bad := ok
	bad.Flows = 0
	mustPanic("flows", bad)
	bad = ok
	bad.Load = 1.5
	mustPanic("load", bad)
	bad = ok
	bad.CDFs = nil
	mustPanic("cdfs", bad)
	bad = ok
	bad.Pair = nil
	mustPanic("pair", bad)
}
