// Package workload generates the benchmark traffic of §6: empirical flow
// size distributions from production datacenters (web search, data mining,
// Hadoop, cache — Figure 4) sampled by inverse transform, and open-loop
// Poisson flow arrival plans at a target load.
package workload

import (
	"fmt"
	"sort"

	"tcn/internal/sim"
)

// Point is one knot of an empirical CDF: Frac of flows are of Bytes size
// or smaller.
type Point struct {
	Bytes int64
	Frac  float64
}

// CDF is a piecewise-linear empirical flow size distribution.
type CDF struct {
	name string
	pts  []Point
}

// New validates and returns a CDF. Points must be sorted, start at
// fraction 0 and end at fraction 1, with non-decreasing sizes and strictly
// increasing fractions allowed to plateau.
func New(name string, pts []Point) CDF {
	if len(pts) < 2 {
		panic(fmt.Sprintf("workload: CDF %q needs at least 2 points", name))
	}
	//tcnlint:floatexact endpoints are literal 0 and 1 in every table, not computed
	if pts[0].Frac != 0 || pts[len(pts)-1].Frac != 1 {
		panic(fmt.Sprintf("workload: CDF %q must span fractions [0,1]", name))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Bytes < pts[i-1].Bytes || pts[i].Frac < pts[i-1].Frac {
			panic(fmt.Sprintf("workload: CDF %q not monotone at point %d", name, i))
		}
	}
	c := CDF{name: name, pts: make([]Point, len(pts))}
	copy(c.pts, pts)
	return c
}

// Name returns the workload's label.
func (c CDF) Name() string { return c.name }

// Points returns a copy of the knots (for printing Figure 4).
func (c CDF) Points() []Point {
	out := make([]Point, len(c.pts))
	copy(out, c.pts)
	return out
}

// Sample draws one flow size by inverse-transform sampling with linear
// interpolation between knots. Sizes are at least 1 byte.
func (c CDF) Sample(r *sim.Rand) int64 {
	u := r.Float64()
	i := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].Frac >= u })
	if i == 0 {
		i = 1
	}
	lo, hi := c.pts[i-1], c.pts[i]
	var size int64
	if hi.Frac == lo.Frac { //tcnlint:floatexact division-by-zero guard on table values
		size = hi.Bytes
	} else {
		t := (u - lo.Frac) / (hi.Frac - lo.Frac)
		size = lo.Bytes + int64(t*float64(hi.Bytes-lo.Bytes))
	}
	if size < 1 {
		size = 1
	}
	return size
}

// Mean returns the expected flow size in bytes of the piecewise-linear
// distribution.
func (c CDF) Mean() float64 {
	var m float64
	for i := 1; i < len(c.pts); i++ {
		dp := c.pts[i].Frac - c.pts[i-1].Frac
		m += dp * float64(c.pts[i].Bytes+c.pts[i-1].Bytes) / 2
	}
	return m
}

// FracBytesBelow returns the fraction of all bytes contributed by flows of
// size at most b — the statistic behind the paper's observation that ~60 %
// of web-search bytes come from flows under 10 MB.
func (c CDF) FracBytesBelow(b int64) float64 {
	total := c.Mean()
	if total == 0 { //tcnlint:floatexact division-by-zero guard
		return 0
	}
	var m float64
	for i := 1; i < len(c.pts); i++ {
		lo, hi := c.pts[i-1], c.pts[i]
		dp := hi.Frac - lo.Frac
		if dp == 0 { //tcnlint:floatexact division-by-zero guard on table values
			continue
		}
		switch {
		case hi.Bytes <= b:
			m += dp * float64(hi.Bytes+lo.Bytes) / 2
		case lo.Bytes >= b:
			// contributes nothing
		default:
			// Split the segment at size b.
			t := float64(b-lo.Bytes) / float64(hi.Bytes-lo.Bytes)
			m += dp * t * float64(lo.Bytes+b) / 2
		}
	}
	return m / total
}
