package workload

import (
	"fmt"

	"tcn/internal/fabric"
	"tcn/internal/sim"
)

// FlowSpec is one planned transfer: who, how much, when, which service.
type FlowSpec struct {
	Src, Dst int
	Size     int64
	At       sim.Time
	Class    uint8
}

// PairPicker chooses the endpoints of the next flow.
type PairPicker func(r *sim.Rand) (src, dst int)

// ClassPicker chooses the service class of the next flow; it also selects
// which workload the flow's size is drawn from in multi-service setups.
type ClassPicker func(r *sim.Rand) uint8

// PlanConfig describes an open-loop Poisson arrival plan.
type PlanConfig struct {
	// Flows is how many flows to generate.
	Flows int
	// Load is the target utilization (0,1] of the bottleneck.
	Load float64
	// Bottleneck is the link whose utilization Load refers to — the
	// receiver's access link in the testbed experiments, a host link in
	// the leaf-spine runs.
	Bottleneck fabric.Rate
	// CDFs maps service class to its flow-size distribution. A
	// single-service experiment provides one entry keyed 0.
	CDFs map[uint8]CDF
	// Pair picks flow endpoints; required.
	Pair PairPicker
	// Class picks the service; nil means always class 0.
	Class ClassPicker
}

// Plan generates the arrival plan. Inter-arrival times are exponential
// with rate λ = load × bottleneck / E[size], where E[size] averages the
// per-service means under the class distribution (estimated from the plan
// itself), so the offered load matches the target in expectation.
func Plan(r *sim.Rand, cfg PlanConfig) []FlowSpec {
	switch {
	case cfg.Flows <= 0:
		panic(fmt.Sprintf("workload: plan needs flows > 0, got %d", cfg.Flows))
	case cfg.Load <= 0 || cfg.Load > 1:
		panic(fmt.Sprintf("workload: load %v must be in (0,1]", cfg.Load))
	case cfg.Bottleneck <= 0:
		panic("workload: plan needs a bottleneck rate")
	case len(cfg.CDFs) == 0:
		panic("workload: plan needs at least one CDF")
	case cfg.Pair == nil:
		panic("workload: plan needs a pair picker")
	}
	class := cfg.Class
	if class == nil {
		class = func(*sim.Rand) uint8 { return 0 }
	}

	// Draw classes and sizes first so the realized mean size sets the
	// arrival rate — keeps offered load on target even for skewed
	// class mixes.
	specs := make([]FlowSpec, cfg.Flows)
	var totalBytes float64
	for i := range specs {
		c := class(r)
		cdf, ok := cfg.CDFs[c]
		if !ok {
			panic(fmt.Sprintf("workload: no CDF for class %d", c))
		}
		specs[i].Class = c
		specs[i].Size = cdf.Sample(r)
		specs[i].Src, specs[i].Dst = cfg.Pair(r)
		if specs[i].Src == specs[i].Dst {
			panic(fmt.Sprintf("workload: pair picker returned src==dst==%d", specs[i].Src))
		}
		totalBytes += float64(specs[i].Size)
	}
	meanSize := totalBytes / float64(cfg.Flows)

	// λ flows/sec such that λ × E[size] × 8 = load × rate.
	lambda := cfg.Load * float64(cfg.Bottleneck) / (meanSize * 8)
	meanGap := sim.Time(float64(sim.Second) / lambda)

	t := sim.Time(0)
	for i := range specs {
		t += r.Exp(meanGap)
		specs[i].At = t
	}
	return specs
}

// TotalBytes sums the planned flow sizes.
func TotalBytes(specs []FlowSpec) int64 {
	var n int64
	for _, s := range specs {
		n += s.Size
	}
	return n
}

// UniformPairs returns a PairPicker drawing src uniformly from senders and
// dst uniformly from receivers, never equal.
func UniformPairs(senders, receivers []int) PairPicker {
	if len(senders) == 0 || len(receivers) == 0 {
		panic("workload: UniformPairs needs non-empty host sets")
	}
	return func(r *sim.Rand) (int, int) {
		for {
			s := senders[r.Intn(len(senders))]
			d := receivers[r.Intn(len(receivers))]
			if s != d {
				return s, d
			}
		}
	}
}

// ManyToOne returns a PairPicker for the testbed client/server pattern:
// uniformly chosen sender, fixed receiver.
func ManyToOne(senders []int, receiver int) PairPicker {
	return UniformPairs(senders, []int{receiver})
}
