package workload

// The four production traffic distributions of Figure 4, transcribed as
// piecewise-linear CDFs from the publicly released distributions the
// authors' own experiment scripts use (web search from the DCTCP paper,
// data mining from VL2, Hadoop and cache from "Inside the Social Network's
// (Datacenter) Network"). Knot positions are approximate where only plots
// are public; the properties the evaluation depends on are preserved:
// every workload is heavy-tailed, and web search is the least skewed with
// roughly 60 % of bytes in flows under 10 MB.

// WebSearch is the DCTCP web-search workload (mean ≈ 1.7 MB).
var WebSearch = New("websearch", []Point{
	{0, 0},
	{10_000, 0.15},
	{20_000, 0.20},
	{30_000, 0.30},
	{50_000, 0.40},
	{80_000, 0.53},
	{200_000, 0.60},
	{1_000_000, 0.70},
	{2_000_000, 0.80},
	{5_000_000, 0.90},
	{10_000_000, 0.97},
	{30_000_000, 1},
})

// DataMining is the VL2 data-mining workload (mean ≈ 7.4 MB): 80 % of
// flows under 1 MB but nearly all bytes in multi-megabyte transfers.
var DataMining = New("datamining", []Point{
	{0, 0},
	{180, 0.10},
	{216, 0.20},
	{560, 0.30},
	{900, 0.35},
	{1_100, 0.40},
	{60_000, 0.53},
	{90_000, 0.60},
	{350_000, 0.70},
	{1_000_000, 0.80},
	{5_200_000, 0.90},
	{10_000_000, 0.95},
	{100_000_000, 0.99},
	{1_000_000_000, 1},
})

// Hadoop is the Facebook Hadoop-cluster workload: mostly sub-MTU control
// and shuffle messages with a long tail of bulk transfers.
var Hadoop = New("hadoop", []Point{
	{0, 0},
	{100, 0.02},
	{300, 0.10},
	{500, 0.20},
	{700, 0.30},
	{1_000, 0.40},
	{2_000, 0.50},
	{10_000, 0.60},
	{100_000, 0.70},
	{1_000_000, 0.80},
	{10_000_000, 0.90},
	{30_000_000, 0.95},
	{100_000_000, 1},
})

// Cache is the Facebook cache-follower workload: dominated by small
// object reads with occasional megabyte responses.
var Cache = New("cache", []Point{
	{0, 0},
	{100, 0.10},
	{200, 0.20},
	{300, 0.30},
	{400, 0.40},
	{700, 0.50},
	{1_000, 0.60},
	{2_000, 0.70},
	{10_000, 0.80},
	{100_000, 0.90},
	{1_000_000, 0.97},
	{10_000_000, 1},
})

// All lists the four workloads in the paper's order.
var All = []CDF{WebSearch, DataMining, Hadoop, Cache}
