package aqm

import (
	"fmt"

	"tcn/internal/core"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// WRED is the classic RED the simplified production scheme derives from
// (§2.1): an exponentially weighted *average* queue length compared
// against two thresholds, with marking probability ramping linearly to
// Pmax between them (Floyd & Jacobson 1993, as configured on commodity
// chips' "WRED ECN"). The paper's evaluation uses the simplified
// instantaneous single-threshold variant because that is what operators
// deploy; WRED is provided for completeness and ablations.
type WRED struct {
	// Kmin and Kmax bound the probabilistic region, in bytes.
	Kmin, Kmax int
	// Pmax is the marking probability at Kmax.
	Pmax float64
	// Weight is the EWMA gain for the average queue (classic 0.002).
	Weight float64

	rng *sim.Rand
	avg []float64 // per-queue averaged occupancy

	// Marks counts CE marks applied.
	Marks int64
}

// NewWRED returns a per-queue WRED marker for n queues.
func NewWRED(n, kmin, kmax int, pmax float64, rng *sim.Rand) *WRED {
	switch {
	case kmin <= 0 || kmax < kmin:
		panic(fmt.Sprintf("aqm: invalid WRED thresholds %d/%d", kmin, kmax))
	case pmax <= 0 || pmax > 1:
		panic(fmt.Sprintf("aqm: WRED Pmax %v must be in (0,1]", pmax))
	case rng == nil:
		panic("aqm: WRED needs a random source")
	}
	return &WRED{Kmin: kmin, Kmax: kmax, Pmax: pmax, Weight: 0.002, rng: rng, avg: make([]float64, n)}
}

// Name implements core.Marker.
func (w *WRED) Name() string { return "WRED" }

// MarkCount implements core.MarkCounter.
func (w *WRED) MarkCount() int64 { return w.Marks }

// AvgQueue returns the averaged occupancy estimate of queue i in bytes.
func (w *WRED) AvgQueue(i int) float64 { return w.avg[i] }

// OnEnqueue implements core.Marker.
func (w *WRED) OnEnqueue(_ sim.Time, i int, p *pkt.Packet, st core.PortState, v *core.Verdict) {
	w.avg[i] = (1-w.Weight)*w.avg[i] + w.Weight*float64(st.QueueBytes(i))
	var prob float64
	reason := core.ReasonREDProbabilistic
	switch a := w.avg[i]; {
	case a < float64(w.Kmin):
		return
	case a >= float64(w.Kmax):
		prob = 1
		reason = core.ReasonREDAvgAboveMax
	default:
		prob = w.Pmax * (a - float64(w.Kmin)) / float64(w.Kmax-w.Kmin)
	}
	if prob >= 1 || w.rng.Float64() < prob {
		if v != nil {
			v.AvgBytes = w.avg[i]
			v.ThresholdBytes = w.Kmax
			v.Prob = prob
		}
		if v.Fire(reason, p) {
			w.Marks++
		}
	}
}

// OnDequeue implements core.Marker.
func (w *WRED) OnDequeue(sim.Time, int, *pkt.Packet, core.PortState, *core.Verdict) {}

// PoolRED is per-service-pool ECN/RED (§3.2): several egress ports draw
// from one shared buffer pool and the marking decision compares the
// *pool* occupancy against a static threshold. It inherits per-port RED's
// policy violation and makes it worse — queues on different ports
// interfere ("such impact will become more serious if we enable
// per-service-pool ECN/RED", §3.2.2).
//
// One PoolRED instance is attached as the Marker of every member port;
// Register is called once per port so the marker can sum their buffers.
type PoolRED struct {
	// K is the pool-level marking threshold in bytes.
	K int

	members []core.PortState

	// Marks counts CE marks applied.
	Marks int64
}

// NewPoolRED returns a pool-level RED marker.
func NewPoolRED(k int) *PoolRED {
	if k <= 0 {
		panic(fmt.Sprintf("aqm: pool threshold %d must be positive", k))
	}
	return &PoolRED{K: k}
}

// Register adds a port to the pool. Ports register once, at build time.
func (m *PoolRED) Register(st core.PortState) { m.members = append(m.members, st) }

// PoolBytes sums the occupancy of every member port.
func (m *PoolRED) PoolBytes() int {
	t := 0
	for _, st := range m.members {
		t += st.PortBytes()
	}
	return t
}

// Name implements core.Marker.
func (m *PoolRED) Name() string { return "RED-pool" }

// MarkCount implements core.MarkCounter.
func (m *PoolRED) MarkCount() int64 { return m.Marks }

// OnEnqueue implements core.Marker: pool occupancy, not the packet's own
// port, decides the mark.
func (m *PoolRED) OnEnqueue(_ sim.Time, _ int, p *pkt.Packet, _ core.PortState, v *core.Verdict) {
	pool := m.PoolBytes()
	if pool <= m.K {
		return
	}
	if v != nil {
		// PortBytes carries the pool-wide occupancy the rule compared.
		v.PortBytes = pool
		v.ThresholdBytes = m.K
	}
	if v.Fire(core.ReasonREDPoolAboveK, p) {
		m.Marks++
	}
}

// OnDequeue implements core.Marker.
func (m *PoolRED) OnDequeue(sim.Time, int, *pkt.Packet, core.PortState, *core.Verdict) {}
