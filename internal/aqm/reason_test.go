package aqm

import (
	"testing"

	"tcn/internal/core"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// TestMarkerReasons pins each scheme's causal attribution: for hand-built
// queue state that forces a mark, the verdict must carry exactly the
// reason the ledger and -explain report key on.
func TestMarkerReasons(t *testing.T) {
	st := func(qbytes int) *fakePort {
		return &fakePort{qbytes: []int{qbytes}, qlen: []int{qbytes / 1500}, rate: 1e9}
	}
	cases := []struct {
		name string
		run  func(v *core.Verdict)
		want core.Reason
	}{
		{"queue-red-enqueue", func(v *core.Verdict) {
			NewQueueRED(30_000).OnEnqueue(0, 0, ectPacket(), st(50_000), v)
		}, core.ReasonREDQueueAboveK},
		{"queue-red-dequeue", func(v *core.Verdict) {
			NewDequeueRED(30_000).OnDequeue(0, 0, ectPacket(), st(50_000), v)
		}, core.ReasonREDQueueAboveK},
		{"port-red", func(v *core.Verdict) {
			NewPortRED(30_000).OnEnqueue(0, 0, ectPacket(), st(50_000), v)
		}, core.ReasonREDPortAboveK},
		{"oracle-red", func(v *core.Verdict) {
			NewOracleRED([]int{10_000}).OnEnqueue(0, 0, ectPacket(), st(20_000), v)
		}, core.ReasonREDOracleAboveK},
		{"pool-red", func(v *core.Verdict) {
			m := NewPoolRED(30_000)
			m.Register(st(50_000))
			m.OnEnqueue(0, 0, ectPacket(), st(50_000), v)
		}, core.ReasonREDPoolAboveK},
		{"wred-avg-above-max", func(v *core.Verdict) {
			m := NewWRED(1, 1_000, 2_000, 0.5, sim.NewRand(1))
			m.Weight = 1 // make the EWMA jump straight to the instantaneous queue
			m.OnEnqueue(0, 0, ectPacket(), st(5_000), v)
		}, core.ReasonREDAvgAboveMax},
		{"dynred-above-k", func(v *core.Verdict) {
			// No rate sample yet: the threshold falls back to the standard
			// whole-link K = 1 Gbps × 1 ms / 8 = 125 KB.
			NewDynRED(1, 16*1500, sim.Millisecond).OnEnqueue(0, 0, ectPacket(), st(130_000), v)
		}, core.ReasonREDDynAboveK},
		{"mqecn-above-k", func(v *core.Verdict) {
			m := NewMQECN(&fakeRound{quantum: 18_000}, 1, sim.Millisecond, 0)
			m.OnEnqueue(0, 0, ectPacket(), st(130_000), v)
		}, core.ReasonMQECNAboveK},
		{"tcn-threshold", func(v *core.Verdict) {
			p := ectPacket() // EnqueuedAt 0: sojourn at 200 us is 2× threshold
			core.NewTCN(100*sim.Microsecond).OnDequeue(200*sim.Microsecond, 0, p, st(10_000), v)
		}, core.ReasonTCNThreshold},
		{"probtcn-saturated", func(v *core.Verdict) {
			m := core.NewProbTCN(50*sim.Microsecond, 150*sim.Microsecond, 0.2, sim.NewRand(1))
			m.OnDequeue(200*sim.Microsecond, 0, ectPacket(), st(10_000), v)
		}, core.ReasonTCNThreshold},
		{"hwtcn-threshold", func(v *core.Verdict) {
			m := core.NewHWTCN(core.NewHWClock(sim.Microsecond), 100*sim.Microsecond)
			m.OnDequeue(200*sim.Microsecond, 0, ectPacket(), st(10_000), v)
		}, core.ReasonTCNThreshold},
		{"codel-sojourn", func(v *core.Verdict) {
			m := NewCoDel(1, 10*sim.Microsecond, 100*sim.Microsecond)
			// First above-target dequeue only arms first_above_time ...
			m.OnDequeue(50*sim.Microsecond, 0, ectPacket(), st(20_000), nil)
			// ... a whole interval later CoDel enters marking state.
			m.OnDequeue(200*sim.Microsecond, 0, ectPacket(), st(20_000), v)
		}, core.ReasonCoDelSojournAboveTarget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var v core.Verdict
			v.Reset(core.StageEnqueue, 0, 0)
			tc.run(&v)
			if !v.Marked || v.Reason != tc.want {
				t.Fatalf("marked=%v reason=%v, want a mark attributed to %v", v.Marked, v.Reason, tc.want)
			}
			if !v.Decisive() {
				t.Fatal("a marked verdict must be decisive")
			}
		})
	}
}

// TestProbabilisticReasons distinguishes the coin-flip attributions from
// their saturated counterparts: marks fired inside the probability ramp
// carry the Probabilistic reason and the probability that was rolled.
func TestProbabilisticReasons(t *testing.T) {
	t.Run("wred-ramp", func(t *testing.T) {
		m := NewWRED(1, 1_000, 2_000, 0.5, sim.NewRand(1))
		m.Weight = 1
		st := &fakePort{qbytes: []int{1_500}, qlen: []int{1}, rate: 1e9}
		for i := 0; i < 10_000; i++ {
			var v core.Verdict
			v.Reset(core.StageEnqueue, st.qbytes[0], st.qbytes[0])
			m.OnEnqueue(0, 0, ectPacket(), st, &v)
			if !v.Marked {
				continue
			}
			if v.Reason != core.ReasonREDProbabilistic {
				t.Fatalf("ramp mark attributed to %v", v.Reason)
			}
			if v.Prob <= 0 || v.Prob >= 1 {
				t.Fatalf("ramp mark carries prob %v, want in (0,1)", v.Prob)
			}
			return
		}
		t.Fatal("ramp never marked in 10k tries")
	})
	t.Run("probtcn-ramp", func(t *testing.T) {
		m := core.NewProbTCN(50*sim.Microsecond, 150*sim.Microsecond, 0.2, sim.NewRand(1))
		st := &fakePort{qbytes: []int{10_000}, qlen: []int{7}, rate: 1e9}
		for i := 0; i < 10_000; i++ {
			var v core.Verdict
			v.Reset(core.StageDequeue, st.qbytes[0], st.qbytes[0])
			m.OnDequeue(100*sim.Microsecond, 0, ectPacket(), st, &v)
			if !v.Marked {
				continue
			}
			if v.Reason != core.ReasonTCNProbabilistic {
				t.Fatalf("ramp mark attributed to %v", v.Reason)
			}
			if v.Prob <= 0 || v.Prob >= 1 {
				t.Fatalf("ramp mark carries prob %v, want in (0,1)", v.Prob)
			}
			return
		}
		t.Fatal("ramp never marked in 10k tries")
	})
}

// TestECNIncapableReason pins the fallback attribution: a threshold
// crossing on a Not-ECT packet records ECNIncapable instead of a mark.
func TestECNIncapableReason(t *testing.T) {
	st := &fakePort{qbytes: []int{50_000}, qlen: []int{33}, rate: 1e9}
	p := &pkt.Packet{Size: 1500} // Not-ECT
	var v core.Verdict
	v.Reset(core.StageEnqueue, st.qbytes[0], st.qbytes[0])
	NewQueueRED(30_000).OnEnqueue(0, 0, p, st, &v)
	if v.Marked {
		t.Fatal("Not-ECT packet must not be marked")
	}
	if v.Reason != core.ReasonECNIncapable {
		t.Fatalf("reason = %v, want ECNIncapable", v.Reason)
	}
	if !v.Decisive() {
		t.Fatal("the incapable fallback must be decisive so the ledger sees it")
	}
}
