package aqm

import (
	"fmt"
	"math"

	"tcn/internal/core"
	"tcn/internal/obs"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// CoDel implements the Controlled Delay AQM (Nichols & Jacobson, CACM
// 2012) in mark-only mode, per queue, following the published pseudocode
// and the Linux sch_codel control law: when the minimum sojourn time stays
// above target for a full interval, the queue enters a marking state whose
// marking times follow the inverse-sqrt schedule
//
//	next = now + interval / sqrt(count).
//
// CoDel is the stateful sojourn-time baseline: it needs four state
// variables per queue and a square root in the data path — the complexity
// TCN's stateless instantaneous marking removes (§4.2, §4.3).
type CoDel struct {
	// Target is the acceptable minimum sojourn time (Internet default
	// 5 ms; the paper tunes 51.2 us for its 1 Gbps testbed).
	Target sim.Time
	// Interval is the sliding window over which the minimum must stay
	// above Target (Internet default 100 ms; paper tunes 1024 us).
	Interval sim.Time

	qs []codelQueue

	// Marks counts CE marks applied.
	Marks int64

	oMarks   *obs.Counter
	oEntries *obs.Counter
	oCount   *obs.Gauge
}

// Instrument records the CoDel state machine into a stats registry
// under label: marks applied, marking-state entries, and the current
// control-law count (the internal state the inverse-sqrt schedule runs
// on).
func (c *CoDel) Instrument(r *obs.Registry, label string) {
	c.oMarks = r.Counter(label + ".marks")
	c.oEntries = r.Counter(label + ".marking_state_entries")
	c.oCount = r.Gauge(label + ".control_law_count")
}

// mark applies CE and updates instrumentation; q is the queue whose
// state triggered the mark, sojourn the delay that kept it congested.
func (c *CoDel) mark(p *pkt.Packet, q *codelQueue, v *core.Verdict, sojourn sim.Time) {
	if v != nil {
		v.Sojourn = sojourn
		v.ThresholdTime = c.Target
	}
	if !v.Fire(core.ReasonCoDelSojournAboveTarget, p) {
		return
	}
	c.Marks++
	if c.oMarks != nil {
		c.oMarks.Inc()
		c.oCount.Set(float64(q.count))
	}
}

// codelQueue is the per-queue CoDel state (the "four state variables").
type codelQueue struct {
	firstAbove sim.Time // when sojourn first stayed above target; 0 = below
	markNext   sim.Time // next scheduled mark while in marking state
	count      int      // marks in the current marking state
	lastCount  int      // count when the previous marking state ended
	marking    bool
}

// NewCoDel returns a per-queue CoDel marker for n queues.
func NewCoDel(n int, target, interval sim.Time) *CoDel {
	if target <= 0 || interval <= 0 {
		panic(fmt.Sprintf("aqm: CoDel target %v and interval %v must be positive", target, interval))
	}
	return &CoDel{Target: target, Interval: interval, qs: make([]codelQueue, n)}
}

// Name implements core.Marker.
func (c *CoDel) Name() string { return "CoDel" }

// MarkCount implements core.MarkCounter.
func (c *CoDel) MarkCount() int64 { return c.Marks }

// OnEnqueue implements core.Marker. CoDel acts only at dequeue.
func (c *CoDel) OnEnqueue(sim.Time, int, *pkt.Packet, core.PortState, *core.Verdict) {}

// OnDequeue implements core.Marker: runs the CoDel state machine on the
// departing packet's sojourn time.
func (c *CoDel) OnDequeue(now sim.Time, i int, p *pkt.Packet, st core.PortState, v *core.Verdict) {
	q := &c.qs[i]
	sojourn := p.Sojourn(now)
	okToMark := c.shouldMark(now, q, sojourn, st.QueueBytes(i))

	if q.marking {
		if !okToMark {
			// Sojourn dropped below target: leave marking state.
			q.marking = false
			return
		}
		for now >= q.markNext {
			c.mark(p, q, v, sojourn)
			q.count++
			q.markNext += c.controlLaw(q.count)
			// Marking (unlike dropping) acts on this same packet,
			// so one departure satisfies all due marks.
			break
		}
		return
	}

	if okToMark && c.enterMarking(now, q) {
		if c.oEntries != nil {
			c.oEntries.Inc()
		}
		c.mark(p, q, v, sojourn)
	}
}

// shouldMark tracks whether the sojourn time has remained above target for
// a whole interval (the CoDel "first_above_time" logic). Queues holding
// less than one MTU are never considered congested.
func (c *CoDel) shouldMark(now sim.Time, q *codelQueue, sojourn sim.Time, qbytes int) bool {
	if sojourn < c.Target || qbytes <= pkt.MTU {
		q.firstAbove = 0
		return false
	}
	if q.firstAbove == 0 {
		q.firstAbove = now + c.Interval
		return false
	}
	return now >= q.firstAbove
}

// enterMarking transitions into the marking state and reports whether the
// triggering packet should be marked.
func (c *CoDel) enterMarking(now sim.Time, q *codelQueue) bool {
	q.marking = true
	// Linux-style hysteresis: if we re-enter soon after leaving, resume
	// from a higher count so the marking rate ramps back up quickly.
	if q.count > 2 && now-q.markNext < 8*c.Interval {
		q.count = q.count - 2
	} else {
		q.count = 1
	}
	q.lastCount = q.count
	q.markNext = now + c.controlLaw(q.count)
	return true
}

// controlLaw returns the spacing to the next mark: interval/sqrt(count).
func (c *CoDel) controlLaw(count int) sim.Time {
	return sim.Time(float64(c.Interval) / math.Sqrt(float64(count)))
}

// State exposes per-queue state for tests (marking flag and mark count in
// the current state).
func (c *CoDel) State(i int) (marking bool, count int) {
	return c.qs[i].marking, c.qs[i].count
}
