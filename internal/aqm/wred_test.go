package aqm

import (
	"testing"

	"tcn/internal/pkt"
	"tcn/internal/sim"
)

func TestWREDBelowKminNeverMarks(t *testing.T) {
	w := NewWRED(1, 30_000, 90_000, 0.1, sim.NewRand(1))
	st := &fakePort{qbytes: []int{10_000}, qlen: []int{7}, rate: 1e9}
	for i := 0; i < 10_000; i++ {
		p := ectPacket()
		w.OnEnqueue(0, 0, p, st, nil)
		if p.ECN == pkt.CE {
			t.Fatal("marked below Kmin")
		}
	}
}

func TestWREDAlwaysMarksAboveKmax(t *testing.T) {
	w := NewWRED(1, 3_000, 9_000, 0.1, sim.NewRand(1))
	st := &fakePort{qbytes: []int{200_000}, qlen: []int{140}, rate: 1e9}
	// Warm the average past Kmax first (EWMA weight 0.002).
	for i := 0; i < 5_000; i++ {
		w.OnEnqueue(0, 0, ectPacket(), st, nil)
	}
	if w.AvgQueue(0) < 9_000 {
		t.Fatalf("average %f did not climb past Kmax", w.AvgQueue(0))
	}
	p := ectPacket()
	w.OnEnqueue(0, 0, p, st, nil)
	if p.ECN != pkt.CE {
		t.Fatal("must mark above Kmax")
	}
}

func TestWREDProbabilisticBand(t *testing.T) {
	w := NewWRED(1, 10_000, 110_000, 0.5, sim.NewRand(2))
	st := &fakePort{qbytes: []int{60_000}, qlen: []int{40}, rate: 1e9}
	// Settle the average at 60 KB = midpoint -> p = 0.25.
	for i := 0; i < 10_000; i++ {
		w.OnEnqueue(0, 0, ectPacket(), st, nil)
	}
	marked := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		p := ectPacket()
		w.OnEnqueue(0, 0, p, st, nil)
		if p.ECN == pkt.CE {
			marked++
		}
	}
	frac := float64(marked) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("marking fraction %.3f, want ~0.25", frac)
	}
}

func TestWREDAverageSmoothsBursts(t *testing.T) {
	w := NewWRED(1, 30_000, 90_000, 0.1, sim.NewRand(1))
	// A short spike over Kmax must not mark: the average lags.
	st := &fakePort{qbytes: []int{200_000}, qlen: []int{140}, rate: 1e9}
	for i := 0; i < 20; i++ {
		p := ectPacket()
		w.OnEnqueue(0, 0, p, st, nil)
		if p.ECN == pkt.CE {
			t.Fatal("WRED marked on a transient burst; averaging should absorb it")
		}
	}
}

func TestWREDValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	rng := sim.NewRand(1)
	mustPanic("kmax<kmin", func() { NewWRED(1, 100, 50, 0.1, rng) })
	mustPanic("pmax", func() { NewWRED(1, 50, 100, 1.5, rng) })
	mustPanic("rng", func() { NewWRED(1, 50, 100, 0.1, nil) })
}

func TestPoolREDCrossPortInterference(t *testing.T) {
	// Two ports share the pool; backlog on port B marks packets
	// entering the idle port A.
	pool := NewPoolRED(30_000)
	a := &fakePort{qbytes: []int{0}, qlen: []int{0}, rate: 1e9}
	b := &fakePort{qbytes: []int{40_000}, qlen: []int{27}, rate: 1e9}
	pool.Register(a)
	pool.Register(b)

	if pool.PoolBytes() != 40_000 {
		t.Fatalf("pool bytes %d", pool.PoolBytes())
	}
	p := ectPacket()
	pool.OnEnqueue(0, 0, p, a, nil)
	if p.ECN != pkt.CE {
		t.Fatal("pool pressure must mark even on an idle port — the §3.2 violation")
	}

	// Drain port B: port A's packets pass again.
	b.qbytes[0] = 0
	q := ectPacket()
	pool.OnEnqueue(0, 0, q, a, nil)
	if q.ECN == pkt.CE {
		t.Fatal("no pool pressure, no mark")
	}
}
