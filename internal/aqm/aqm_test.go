package aqm

import (
	"testing"
	"testing/quick"

	"tcn/internal/core"
	"tcn/internal/pkt"
	"tcn/internal/sim"
	"tcn/internal/testutil"
)

// fakePort is a hand-cranked core.PortState.
type fakePort struct {
	qbytes []int
	qlen   []int
	rate   int64
}

func (f *fakePort) NumQueues() int       { return len(f.qbytes) }
func (f *fakePort) QueueLen(i int) int   { return f.qlen[i] }
func (f *fakePort) QueueBytes(i int) int { return f.qbytes[i] }
func (f *fakePort) PortBytes() int {
	t := 0
	for _, b := range f.qbytes {
		t += b
	}
	return t
}
func (f *fakePort) LinkRate() int64 { return f.rate }

func ectPacket() *pkt.Packet { return &pkt.Packet{ECN: pkt.ECT0, Size: 1500} }

func TestQueueREDEnqueueThreshold(t *testing.T) {
	m := NewQueueRED(30_000)
	st := &fakePort{qbytes: []int{30_000, 50_000}, qlen: []int{20, 33}, rate: 1e9}

	p := ectPacket()
	m.OnEnqueue(0, 0, p, st, nil)
	if p.ECN == pkt.CE {
		t.Fatal("occupancy == K must not mark (strictly greater)")
	}
	m.OnEnqueue(0, 1, p, st, nil)
	if p.ECN != pkt.CE {
		t.Fatal("occupancy > K must mark")
	}
	if m.Marks != 1 {
		t.Fatalf("marks = %d, want 1", m.Marks)
	}
	// Dequeue side must be inert for the enqueue variant.
	q := ectPacket()
	m.OnDequeue(0, 1, q, st, nil)
	if q.ECN == pkt.CE {
		t.Fatal("enqueue-side RED must not mark at dequeue")
	}
}

func TestDequeueREDMarksAtDequeueOnly(t *testing.T) {
	m := NewDequeueRED(30_000)
	st := &fakePort{qbytes: []int{50_000}, qlen: []int{33}, rate: 1e9}
	p := ectPacket()
	m.OnEnqueue(0, 0, p, st, nil)
	if p.ECN == pkt.CE {
		t.Fatal("dequeue-side RED must not mark at enqueue")
	}
	m.OnDequeue(0, 0, p, st, nil)
	if p.ECN != pkt.CE {
		t.Fatal("dequeue-side RED should mark at dequeue")
	}
	if m.Name() != "RED-queue-deq" {
		t.Fatal("name")
	}
}

func TestQueueREDIgnoresOtherQueues(t *testing.T) {
	m := NewQueueRED(30_000)
	st := &fakePort{qbytes: []int{100_000, 1_000}, qlen: []int{66, 1}, rate: 1e9}
	p := ectPacket()
	m.OnEnqueue(0, 1, p, st, nil) // queue 1 is short
	if p.ECN == pkt.CE {
		t.Fatal("per-queue RED must not react to other queues' occupancy")
	}
}

func TestPortREDSumsQueues(t *testing.T) {
	m := NewPortRED(30_000)
	st := &fakePort{qbytes: []int{20_000, 15_000}, qlen: []int{14, 10}, rate: 1e9}
	p := ectPacket()
	m.OnEnqueue(0, 1, p, st, nil)
	if p.ECN != pkt.CE {
		t.Fatal("per-port RED marks on aggregate occupancy — the policy violation of Figure 1")
	}
}

func TestOracleREDPerQueueThresholds(t *testing.T) {
	m := NewOracleRED([]int{16_000, 8_000})
	st := &fakePort{qbytes: []int{10_000, 10_000}, qlen: []int{7, 7}, rate: 1e9}
	a, b := ectPacket(), ectPacket()
	m.OnEnqueue(0, 0, a, st, nil)
	m.OnEnqueue(0, 1, b, st, nil)
	if a.ECN == pkt.CE {
		t.Fatal("queue 0 below its threshold")
	}
	if b.ECN != pkt.CE {
		t.Fatal("queue 1 above its threshold")
	}
}

func TestNonECTNeverMarked(t *testing.T) {
	m := NewQueueRED(1)
	st := &fakePort{qbytes: []int{1_000_000}, qlen: []int{700}, rate: 1e9}
	p := &pkt.Packet{ECN: pkt.NotECT, Size: 1500}
	m.OnEnqueue(0, 0, p, st, nil)
	if p.ECN != pkt.NotECT || m.Marks != 0 {
		t.Fatal("Not-ECT packets must pass unmarked")
	}
}

func TestStandardThreshold(t *testing.T) {
	// 1 Gbps × 256 us = 32 KB; 10 Gbps × 78 us = 97.5 KB.
	if k := StandardThreshold(1e9, 256*sim.Microsecond); k != 32_000 {
		t.Fatalf("K = %d, want 32000", k)
	}
	if k := StandardThreshold(10e9, 78*sim.Microsecond); k != 97_500 {
		t.Fatalf("K = %d, want 97500", k)
	}
}

// Property: RED marking is exactly occupancy > K for ECT packets.
func TestPropertyREDDecision(t *testing.T) {
	f := func(occ uint32, kRaw uint16) bool {
		k := int(kRaw) + 1
		m := NewQueueRED(k)
		st := &fakePort{qbytes: []int{int(occ % 200_000)}, qlen: []int{1}, rate: 1e9}
		p := ectPacket()
		m.OnEnqueue(0, 0, p, st, nil)
		return (p.ECN == pkt.CE) == (st.qbytes[0] > k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// --- RateMeter (Algorithm 1) ---

func TestRateMeterSingleCycle(t *testing.T) {
	r := NewRateMeter(10_000)
	// Below dq_thresh: no measurement starts.
	r.OnDeparture(0, 1500, 5_000)
	if r.Samples() != 0 || !testutil.Eq(r.Rate(), 0) {
		t.Fatal("no cycle should have started")
	}
	// Backlog over threshold: cycle starts, 7 packets of 1500B complete
	// it (10500 >= 10000) over 7us -> 1.5 GB/s.
	now := sim.Time(0)
	for i := 0; i < 7; i++ {
		r.OnDeparture(now, 1500, 20_000)
		now += sim.Microsecond
	}
	if r.Samples() != 1 {
		t.Fatalf("samples = %d, want 1", r.Samples())
	}
	want := 10_500.0 / (6 * sim.Microsecond).Seconds()
	if got := r.Rate(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("rate %.0f, want ~%.0f", got, want)
	}
}

func TestRateMeterEWMA(t *testing.T) {
	r := NewRateMeter(3000) // cycle spans three 1000-byte departures
	var raws, smoothed []float64
	r.OnSample = func(_ sim.Time, raw, s float64) {
		raws = append(raws, raw)
		smoothed = append(smoothed, s)
	}
	now := sim.Time(0)
	feed := func(gap sim.Time) {
		r.OnDeparture(now, 1000, 5000)
		now += gap
	}
	// Fast phase: 1000 bytes per microsecond.
	for i := 0; i < 9; i++ {
		feed(sim.Microsecond)
	}
	// Slow phase: half the departure rate.
	for i := 0; i < 30; i++ {
		feed(2 * sim.Microsecond)
	}
	if len(smoothed) < 6 {
		t.Fatalf("too few samples: %d", len(smoothed))
	}
	last, first := smoothed[len(smoothed)-1], smoothed[0]
	if last >= first {
		t.Fatalf("smoothed rate should decrease toward the slower raw rate: first %.0f last %.0f", first, last)
	}
	// The EWMA must lag: right after the rate change the smoothed value
	// stays above the new raw value (w=0.875 history weight).
	mid := 4 // first slow-phase sample index
	if smoothed[mid] <= raws[len(raws)-1]*1.05 {
		t.Fatalf("smoothed %.0f should lag above the slow raw rate %.0f", smoothed[mid], raws[len(raws)-1])
	}
}

func TestDynREDFallsBackToStandardThreshold(t *testing.T) {
	d := NewDynRED(1, 10_000, 100*sim.Microsecond)
	st := &fakePort{qbytes: []int{100_000}, qlen: []int{66}, rate: 10e9}
	// No rate samples yet: threshold = standard (125 KB), so 100 KB
	// does not mark.
	p := ectPacket()
	d.OnEnqueue(0, 0, p, st, nil)
	if p.ECN == pkt.CE {
		t.Fatal("DynRED without samples must use the standard threshold")
	}
}

func TestDynREDUsesMeasuredRate(t *testing.T) {
	d := NewDynRED(1, 10_000, 100*sim.Microsecond)
	st := &fakePort{qbytes: []int{100_000}, qlen: []int{66}, rate: 10e9}
	// Feed departures at ~5 Gbps: 1500B per 2.4us.
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		d.OnDequeue(now, 0, &pkt.Packet{Size: 1500}, st, nil)
		now += 2400
	}
	// Measured 5 Gbps -> K = 5e9/8 * 100us = 62.5 KB < 100 KB: mark.
	p := ectPacket()
	d.OnEnqueue(now, 0, p, st, nil)
	if p.ECN != pkt.CE {
		t.Fatal("DynRED should mark above the measured-rate threshold")
	}
}

// --- MQ-ECN ---

type fakeRound struct {
	quantum int
	round   sim.Time
	lastDeq sim.Time
}

func (f *fakeRound) Quantum(int) int          { return f.quantum }
func (f *fakeRound) RoundTime(int) sim.Time   { return f.round }
func (f *fakeRound) LastDequeue(int) sim.Time { return f.lastDeq }

func TestMQECNDynamicThreshold(t *testing.T) {
	// Round time 28.8us with quantum 18KB -> 5 Gbps -> K = 62.5KB at
	// RTT×λ = 100us.
	fr := &fakeRound{quantum: 18_000, round: sim.Time(28_800)}
	m := NewMQECN(fr, 1, 100*sim.Microsecond, 0)
	st := &fakePort{qbytes: []int{80_000}, qlen: []int{55}, rate: 10e9}

	fr.lastDeq = 0
	p := ectPacket()
	m.OnEnqueue(0, 0, p, st, nil)
	// First observation seeds the EWMA directly with 28.8us ->
	// K = 18KB * 100us/28.8us = 62.5KB < 80KB: mark.
	if p.ECN != pkt.CE {
		t.Fatal("MQ-ECN should mark above its dynamic threshold")
	}
}

func TestMQECNCapsAtStandardThreshold(t *testing.T) {
	// A long round time gives a tiny capacity, but a *short* round time
	// must never push K above the standard threshold.
	fr := &fakeRound{quantum: 18_000, round: sim.Time(1_000)} // 144 Gbps estimate
	m := NewMQECN(fr, 1, 100*sim.Microsecond, 0)
	st := &fakePort{qbytes: []int{124_000}, qlen: []int{85}, rate: 10e9}
	p := ectPacket()
	m.OnEnqueue(0, 0, p, st, nil)
	if p.ECN == pkt.CE {
		t.Fatal("just below the standard threshold must not mark")
	}
	st.qbytes[0] = 126_000
	q := ectPacket()
	m.OnEnqueue(0, 0, q, st, nil)
	if q.ECN != pkt.CE {
		t.Fatal("above the standard threshold must mark")
	}
}

func TestMQECNIdleReset(t *testing.T) {
	fr := &fakeRound{quantum: 18_000, round: sim.Time(288_000)} // 0.5 Gbps -> K=6.25KB
	m := NewMQECN(fr, 1, 100*sim.Microsecond, 10*sim.Microsecond)
	st := &fakePort{qbytes: []int{50_000}, qlen: []int{34}, rate: 10e9}

	// Busy queue: dynamic threshold applies, 50 KB > 6.25 KB marks.
	fr.lastDeq = sim.Time(0)
	p := ectPacket()
	m.OnEnqueue(sim.Time(1000), 0, p, st, nil)
	if p.ECN != pkt.CE {
		t.Fatal("busy queue should mark above dynamic threshold")
	}

	// Queue idle beyond T_idle: estimate resets, standard threshold
	// (125 KB) applies and 50 KB passes. Freeze the round sample so the
	// reset is not immediately overwritten by a fresh observation.
	fr.round = 0
	q := ectPacket()
	m.OnEnqueue(sim.Time(1_000_000), 0, q, st, nil)
	if q.ECN == pkt.CE {
		t.Fatal("idle-reset queue should fall back to the standard threshold")
	}
}

// --- CoDel ---

func TestCoDelBelowTargetNeverMarks(t *testing.T) {
	c := NewCoDel(1, 50*sim.Microsecond, sim.Millisecond)
	st := &fakePort{qbytes: []int{50_000}, qlen: []int{34}, rate: 1e9}
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		p := ectPacket()
		p.EnqueuedAt = now - 20*sim.Microsecond // sojourn 20us < target
		c.OnDequeue(now, 0, p, st, nil)
		if p.ECN == pkt.CE {
			t.Fatal("CoDel marked below target")
		}
		now += 10 * sim.Microsecond
	}
}

func TestCoDelMarksAfterInterval(t *testing.T) {
	c := NewCoDel(1, 50*sim.Microsecond, sim.Millisecond)
	st := &fakePort{qbytes: []int{50_000}, qlen: []int{34}, rate: 1e9}
	now := sim.Time(0)
	var firstMark sim.Time
	for i := 0; i < 3000; i++ {
		p := ectPacket()
		p.EnqueuedAt = now - 200*sim.Microsecond // persistently above target
		c.OnDequeue(now, 0, p, st, nil)
		if p.ECN == pkt.CE && firstMark == 0 {
			firstMark = now
		}
		now += 10 * sim.Microsecond
	}
	if firstMark == 0 {
		t.Fatal("CoDel never marked despite persistent delay")
	}
	// The first mark requires a full interval of staying above target.
	if firstMark < sim.Millisecond {
		t.Fatalf("CoDel marked at %v, before one interval", firstMark)
	}
	marking, count := c.State(0)
	if !marking || count < 2 {
		t.Fatalf("CoDel should be in marking state with rising count, got %v/%d", marking, count)
	}
}

func TestCoDelControlLawAccelerates(t *testing.T) {
	c := NewCoDel(1, 50*sim.Microsecond, sim.Millisecond)
	st := &fakePort{qbytes: []int{50_000}, qlen: []int{34}, rate: 1e9}
	now := sim.Time(0)
	var marks []sim.Time
	for i := 0; i < 20000; i++ {
		p := ectPacket()
		p.EnqueuedAt = now - 200*sim.Microsecond
		c.OnDequeue(now, 0, p, st, nil)
		if p.ECN == pkt.CE {
			marks = append(marks, now)
		}
		now += 10 * sim.Microsecond
	}
	if len(marks) < 4 {
		t.Fatalf("too few marks: %d", len(marks))
	}
	// Inter-mark gaps follow interval/sqrt(count): strictly shrinking
	// early in the marking state.
	g1 := marks[1] - marks[0]
	g2 := marks[2] - marks[1]
	g3 := marks[3] - marks[2]
	if !(g1 > g2 && g2 >= g3) {
		t.Fatalf("control law not accelerating: gaps %v %v %v", g1, g2, g3)
	}
}

func TestCoDelExitsMarkingWhenDelayDrops(t *testing.T) {
	c := NewCoDel(1, 50*sim.Microsecond, sim.Millisecond)
	st := &fakePort{qbytes: []int{50_000}, qlen: []int{34}, rate: 1e9}
	now := sim.Time(0)
	for i := 0; i < 2000; i++ {
		p := ectPacket()
		p.EnqueuedAt = now - 200*sim.Microsecond
		c.OnDequeue(now, 0, p, st, nil)
		now += 10 * sim.Microsecond
	}
	if marking, _ := c.State(0); !marking {
		t.Fatal("should be marking")
	}
	p := ectPacket()
	p.EnqueuedAt = now - 10*sim.Microsecond // sojourn below target
	c.OnDequeue(now, 0, p, st, nil)
	if marking, _ := c.State(0); marking {
		t.Fatal("a below-target sojourn should end the marking state")
	}
}

func TestCoDelSmallBacklogExempt(t *testing.T) {
	c := NewCoDel(1, 50*sim.Microsecond, sim.Millisecond)
	// Less than one MTU queued: never considered congested even with
	// high sojourn.
	st := &fakePort{qbytes: []int{1_000}, qlen: []int{1}, rate: 1e9}
	now := sim.Time(0)
	for i := 0; i < 2000; i++ {
		p := ectPacket()
		p.EnqueuedAt = now - 500*sim.Microsecond
		c.OnDequeue(now, 0, p, st, nil)
		if p.ECN == pkt.CE {
			t.Fatal("CoDel marked with sub-MTU backlog")
		}
		now += 10 * sim.Microsecond
	}
}

func TestCoDelStateIsPerQueue(t *testing.T) {
	c := NewCoDel(2, 50*sim.Microsecond, sim.Millisecond)
	st := &fakePort{qbytes: []int{50_000, 50_000}, qlen: []int{34, 34}, rate: 1e9}
	now := sim.Time(0)
	for i := 0; i < 2000; i++ {
		p := ectPacket()
		p.EnqueuedAt = now - 200*sim.Microsecond
		c.OnDequeue(now, 0, p, st, nil)
		now += 10 * sim.Microsecond
	}
	if m0, _ := c.State(0); !m0 {
		t.Fatal("queue 0 should be marking")
	}
	if m1, _ := c.State(1); m1 {
		t.Fatal("queue 1 never saw traffic and must not be marking")
	}
}

var _ core.Marker = (*CoDel)(nil)
var _ core.Marker = (*MQECN)(nil)
var _ core.Marker = (*QueueRED)(nil)
var _ core.Marker = (*PortRED)(nil)
var _ core.Marker = (*DynRED)(nil)
var _ core.Marker = (*OracleRED)(nil)
