// Package aqm implements the ECN marking baselines the paper compares TCN
// against: per-queue and per-port ECN/RED with the simplified
// single-threshold instantaneous marking used in production (§2.1), the
// dequeue-side RED variant (§4.3), MQ-ECN (NSDI'16), CoDel in mark mode,
// and the "ideal" dynamic ECN/RED built on the departure-rate measurement
// of Algorithm 1.
//
// All schemes implement core.Marker and only ever set CE; packet loss in
// the simulator happens exclusively through buffer exhaustion, matching the
// paper's evaluation setup where even CoDel is configured to mark.
package aqm

import (
	"fmt"

	"tcn/internal/core"
	"tcn/internal/obs"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// Side selects where a queue-length comparison happens.
type Side uint8

// Marking sides.
const (
	// AtEnqueue compares the occupancy seen by an arriving packet, the
	// conventional RED placement.
	AtEnqueue Side = iota
	// AtDequeue compares the occupancy left behind by a departing
	// packet (Wu et al., CoNEXT 2012), which signals earlier during
	// buildups (§4.3, Figure 3).
	AtDequeue
)

func (s Side) String() string {
	if s == AtDequeue {
		return "dequeue"
	}
	return "enqueue"
}

// QueueRED is per-queue ECN/RED with a static threshold: a packet is
// CE-marked when the instantaneous occupancy of its own queue exceeds K.
// With K set to the standard threshold C×RTT×λ this is the "current
// practice" baseline of §3.2.1.
type QueueRED struct {
	// K is the marking threshold in bytes, identical for all queues.
	K int
	// Side selects enqueue-side (default) or dequeue-side comparison.
	Side Side

	// Marks counts CE marks applied.
	Marks int64

	oMarks  *obs.Counter
	oOver   *obs.Counter
	oQBytes *obs.Gauge
}

// Instrument records marking decisions into a stats registry under
// label: marks applied, threshold crossings (incl. non-ECT packets),
// and the queue occupancy observed at the latest crossing.
func (m *QueueRED) Instrument(r *obs.Registry, label string) {
	m.oMarks = r.Counter(label + ".marks")
	m.oOver = r.Counter(label + ".qbytes_over_threshold")
	m.oQBytes = r.Gauge(label + ".qbytes_at_crossing")
}

// decide runs the shared threshold comparison and instrumentation.
func (m *QueueRED) decide(qbytes int, p *pkt.Packet, v *core.Verdict) {
	if qbytes <= m.K {
		return
	}
	if m.oOver != nil {
		m.oOver.Inc()
		m.oQBytes.Set(float64(qbytes))
	}
	if v != nil {
		v.QueueBytes = qbytes
		v.ThresholdBytes = m.K
	}
	if v.Fire(core.ReasonREDQueueAboveK, p) {
		m.Marks++
		if m.oMarks != nil {
			m.oMarks.Inc()
		}
	}
}

// NewQueueRED returns an enqueue-side per-queue RED marker.
func NewQueueRED(k int) *QueueRED {
	if k <= 0 {
		panic(fmt.Sprintf("aqm: RED threshold %d must be positive", k))
	}
	return &QueueRED{K: k}
}

// NewDequeueRED returns the dequeue-side variant.
func NewDequeueRED(k int) *QueueRED {
	m := NewQueueRED(k)
	m.Side = AtDequeue
	return m
}

// Name implements core.Marker.
func (m *QueueRED) Name() string {
	if m.Side == AtDequeue {
		return "RED-queue-deq"
	}
	return "RED-queue"
}

// OnEnqueue implements core.Marker.
func (m *QueueRED) OnEnqueue(_ sim.Time, i int, p *pkt.Packet, st core.PortState, v *core.Verdict) {
	if m.Side != AtEnqueue {
		return
	}
	m.decide(st.QueueBytes(i), p, v)
}

// OnDequeue implements core.Marker.
func (m *QueueRED) OnDequeue(_ sim.Time, i int, p *pkt.Packet, st core.PortState, v *core.Verdict) {
	if m.Side != AtDequeue {
		return
	}
	m.decide(st.QueueBytes(i), p, v)
}

// MarkCount implements core.MarkCounter.
func (m *QueueRED) MarkCount() int64 { return m.Marks }

// MarkProb implements core.MarkProber: single-threshold RED marks
// deterministically once the queue occupancy crosses K.
func (m *QueueRED) MarkProb(_ sim.Time, i int, _ sim.Time, st core.PortState) float64 {
	if st.QueueBytes(i) > m.K {
		return 1
	}
	return 0
}

// PortRED is per-port ECN/RED: a packet is marked when the aggregate
// occupancy of all queues on the port exceeds K. It keeps latency low but
// lets one service's backlog mark another service's packets, violating the
// scheduling policy (§3.2.2, Figure 1).
type PortRED struct {
	// K is the marking threshold in bytes for the whole port.
	K int

	// Marks counts CE marks applied.
	Marks int64

	oMarks  *obs.Counter
	oOver   *obs.Counter
	oPBytes *obs.Gauge
}

// Instrument records marking decisions into a stats registry under
// label, mirroring QueueRED.Instrument but on port occupancy.
func (m *PortRED) Instrument(r *obs.Registry, label string) {
	m.oMarks = r.Counter(label + ".marks")
	m.oOver = r.Counter(label + ".portbytes_over_threshold")
	m.oPBytes = r.Gauge(label + ".portbytes_at_crossing")
}

// NewPortRED returns a per-port RED marker.
func NewPortRED(k int) *PortRED {
	if k <= 0 {
		panic(fmt.Sprintf("aqm: RED threshold %d must be positive", k))
	}
	return &PortRED{K: k}
}

// Name implements core.Marker.
func (m *PortRED) Name() string { return "RED-port" }

// OnEnqueue implements core.Marker.
func (m *PortRED) OnEnqueue(_ sim.Time, _ int, p *pkt.Packet, st core.PortState, v *core.Verdict) {
	used := st.PortBytes()
	if used <= m.K {
		return
	}
	if m.oOver != nil {
		m.oOver.Inc()
		m.oPBytes.Set(float64(used))
	}
	if v != nil {
		v.PortBytes = used
		v.ThresholdBytes = m.K
	}
	if v.Fire(core.ReasonREDPortAboveK, p) {
		m.Marks++
		if m.oMarks != nil {
			m.oMarks.Inc()
		}
	}
}

// OnDequeue implements core.Marker.
func (m *PortRED) OnDequeue(sim.Time, int, *pkt.Packet, core.PortState, *core.Verdict) {}

// MarkCount implements core.MarkCounter.
func (m *PortRED) MarkCount() int64 { return m.Marks }

// MarkProb implements core.MarkProber on the aggregate port occupancy.
func (m *PortRED) MarkProb(_ sim.Time, _ int, _ sim.Time, st core.PortState) float64 {
	if st.PortBytes() > m.K {
		return 1
	}
	return 0
}

// OracleRED is per-queue RED with externally supplied per-queue thresholds.
// Experiments that know the steady-state queue capacities (e.g. Figure 5b,
// where the two WFQ queues each drain at 250 Mbps) use it as the "ideal
// ECN/RED" reference of Equation 2.
type OracleRED struct {
	// K holds the per-queue thresholds in bytes.
	K []int

	// Marks counts CE marks applied.
	Marks int64
}

// NewOracleRED returns an ideal RED marker with fixed per-queue thresholds.
func NewOracleRED(k []int) *OracleRED {
	ks := make([]int, len(k))
	copy(ks, k)
	for i, v := range ks {
		if v <= 0 {
			panic(fmt.Sprintf("aqm: oracle threshold[%d]=%d must be positive", i, v))
		}
	}
	return &OracleRED{K: ks}
}

// Name implements core.Marker.
func (m *OracleRED) Name() string { return "RED-ideal" }

// OnEnqueue implements core.Marker.
func (m *OracleRED) OnEnqueue(_ sim.Time, i int, p *pkt.Packet, st core.PortState, v *core.Verdict) {
	if st.QueueBytes(i) <= m.K[i] {
		return
	}
	if v != nil {
		v.ThresholdBytes = m.K[i]
	}
	if v.Fire(core.ReasonREDOracleAboveK, p) {
		m.Marks++
	}
}

// OnDequeue implements core.Marker.
func (m *OracleRED) OnDequeue(sim.Time, int, *pkt.Packet, core.PortState, *core.Verdict) {}

// MarkCount implements core.MarkCounter.
func (m *OracleRED) MarkCount() int64 { return m.Marks }

// MarkProb implements core.MarkProber against queue i's fixed threshold.
func (m *OracleRED) MarkProb(_ sim.Time, i int, _ sim.Time, st core.PortState) float64 {
	if st.QueueBytes(i) > m.K[i] {
		return 1
	}
	return 0
}

// StandardThreshold computes the standard queue-length marking threshold
// C × RTT × λ in bytes (Equation 1) for a line rate in bits per second and
// the product rttLambda = RTT × λ.
func StandardThreshold(rateBps int64, rttLambda sim.Time) int {
	return int(rateBps * int64(rttLambda) / (8 * int64(sim.Second)))
}
