package aqm

import (
	"fmt"

	"tcn/internal/core"
	"tcn/internal/obs"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// RateMeter implements Algorithm 1 of the paper — the PIE-style departure
// rate measurement that a generic "ideal ECN/RED" must rely on: a
// measurement cycle starts only when the backlog exceeds dq_thresh (so the
// queue stays busy throughout the cycle), the cycle ends after dq_thresh
// bytes have departed, and the resulting sample is folded into an EWMA.
//
// Its dq_thresh parameter embodies the fundamental tradeoff of §3.3: too
// small and samples oscillate with scheduler rounds, too large and the
// estimate lags traffic dynamics. Figure 2 regenerates exactly this.
type RateMeter struct {
	// DqThresh is the measurement-cycle size in bytes (PIE default 10 KB).
	DqThresh int
	// W is the EWMA history weight (paper: 0.875).
	W float64

	isMeasure bool
	dqCount   int
	dqStart   sim.Time
	avgRate   float64 // bytes per second; 0 = no sample yet
	samples   int

	// OnSample, if set, receives every raw and smoothed sample
	// (bytes/s); Figure 2 uses it to trace the estimator.
	OnSample func(now sim.Time, raw, smoothed float64)
}

// NewRateMeter returns a meter with the given cycle threshold in bytes.
func NewRateMeter(dqThresh int) *RateMeter {
	if dqThresh <= 0 {
		panic(fmt.Sprintf("aqm: dq_thresh %d must be positive", dqThresh))
	}
	return &RateMeter{DqThresh: dqThresh, W: 0.875}
}

// OnDeparture feeds one departing packet to the meter. qlenBytes is the
// queue occupancy at the instant of departure (including the departing
// packet).
func (r *RateMeter) OnDeparture(now sim.Time, size, qlenBytes int) {
	if !r.isMeasure && qlenBytes >= r.DqThresh {
		r.isMeasure = true
		r.dqCount = 0
		r.dqStart = now
	}
	if !r.isMeasure {
		return
	}
	r.dqCount += size
	if r.dqCount < r.DqThresh {
		return
	}
	elapsed := now - r.dqStart
	if elapsed <= 0 {
		elapsed = 1
	}
	raw := float64(r.dqCount) / elapsed.Seconds()
	if r.samples == 0 {
		r.avgRate = raw
	} else {
		r.avgRate = r.W*r.avgRate + (1-r.W)*raw
	}
	r.samples++
	r.isMeasure = false
	if r.OnSample != nil {
		r.OnSample(now, raw, r.avgRate)
	}
}

// Rate returns the smoothed departure rate in bytes per second, or 0 if no
// complete cycle has been observed.
func (r *RateMeter) Rate() float64 { return r.avgRate }

// Samples returns how many complete measurement cycles have finished.
func (r *RateMeter) Samples() int { return r.samples }

// DynRED is the "ideal ECN/RED for generic schedulers" the paper shows to
// be fundamentally hard (§3.3): per-queue RED whose threshold follows the
// measured departure rate,
//
//	K_i = avg_rate_i × RTT × λ,            (Equation 2)
//
// falling back to the standard whole-link threshold until the first rate
// sample arrives. Its fidelity is exactly as good as the RateMeter's
// dq_thresh choice allows.
type DynRED struct {
	// RTTLambda is the product RTT × λ.
	RTTLambda sim.Time

	meters []*RateMeter

	// Marks counts CE marks applied.
	Marks int64

	oMarks *obs.Counter
	oRate  []*obs.Gauge // per-queue Algorithm-1 rate estimate, bytes/s
}

// Instrument records marking decisions and the per-queue departure-rate
// estimates into a stats registry under label.
func (d *DynRED) Instrument(r *obs.Registry, label string) {
	d.oMarks = r.Counter(label + ".marks")
	d.oRate = make([]*obs.Gauge, len(d.meters))
	for i := range d.oRate {
		d.oRate[i] = r.Gauge(fmt.Sprintf("%s.q%d.est_rate_bytes_per_s", label, i))
	}
}

// NewDynRED returns a dynamic RED marker with one Algorithm-1 meter per
// queue, all using the same dq_thresh.
func NewDynRED(n, dqThresh int, rttLambda sim.Time) *DynRED {
	if rttLambda <= 0 {
		panic(fmt.Sprintf("aqm: DynRED RTT×λ %v must be positive", rttLambda))
	}
	d := &DynRED{RTTLambda: rttLambda, meters: make([]*RateMeter, n)}
	for i := range d.meters {
		d.meters[i] = NewRateMeter(dqThresh)
	}
	return d
}

// Name implements core.Marker.
func (d *DynRED) Name() string { return "RED-dyn" }

// Meter exposes queue i's rate meter, e.g. to attach a trace hook.
func (d *DynRED) Meter(i int) *RateMeter { return d.meters[i] }

// threshold computes queue i's dynamic threshold in bytes.
func (d *DynRED) threshold(i int, st core.PortState) int {
	if rate := d.meters[i].Rate(); rate > 0 {
		k := int(rate * d.RTTLambda.Seconds())
		kstd := StandardThreshold(st.LinkRate(), d.RTTLambda)
		if k < kstd {
			return k
		}
		return kstd
	}
	return StandardThreshold(st.LinkRate(), d.RTTLambda)
}

// OnEnqueue implements core.Marker.
func (d *DynRED) OnEnqueue(_ sim.Time, i int, p *pkt.Packet, st core.PortState, v *core.Verdict) {
	k := d.threshold(i, st)
	if st.QueueBytes(i) <= k {
		return
	}
	if v != nil {
		v.ThresholdBytes = k
	}
	if v.Fire(core.ReasonREDDynAboveK, p) {
		d.Marks++
		if d.oMarks != nil {
			d.oMarks.Inc()
		}
	}
}

// OnDequeue implements core.Marker: feeds the departure to Algorithm 1.
func (d *DynRED) OnDequeue(now sim.Time, i int, p *pkt.Packet, st core.PortState, _ *core.Verdict) {
	d.meters[i].OnDeparture(now, p.Size, st.QueueBytes(i)+p.Size)
	if d.oRate != nil {
		d.oRate[i].Set(d.meters[i].Rate())
	}
}

// MarkCount implements core.MarkCounter.
func (d *DynRED) MarkCount() int64 { return d.Marks }

// MarkProb implements core.MarkProber against the current dynamic
// threshold (threshold only reads the meters, so probing is side-effect
// free).
func (d *DynRED) MarkProb(_ sim.Time, i int, _ sim.Time, st core.PortState) float64 {
	if st.QueueBytes(i) > d.threshold(i, st) {
		return 1
	}
	return 0
}
