package aqm

import (
	"fmt"

	"tcn/internal/core"
	"tcn/internal/obs"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// RoundInfo is the round-robin scheduler state MQ-ECN consumes: the
// per-queue quantum and the measured turn-to-turn interval (the paper's
// T_round). Only round-based schedulers (WRR, DWRR) can provide it, which
// is exactly why MQ-ECN does not generalize (§3.3).
type RoundInfo interface {
	// Quantum returns queue i's quantum in bytes.
	Quantum(i int) int
	// RoundTime returns the latest observed round duration for queue i
	// (zero if no complete round has been seen).
	RoundTime(i int) sim.Time
	// LastDequeue returns the last instant queue i transmitted.
	LastDequeue(i int) sim.Time
}

// MQECN implements MQ-ECN (Bai et al., NSDI 2016): per-queue ECN/RED whose
// threshold tracks the queue's share of the link,
//
//	K_i = (quantum_i / T_round) × RTT × λ,
//
// with T_round smoothed by an EWMA (weight β on the history) and reset
// when the queue has been idle longer than T_idle so that a queue starting
// fresh sees the full standard threshold.
type MQECN struct {
	round RoundInfo

	// RTTLambda is the product RTT × λ.
	RTTLambda sim.Time
	// Beta is the EWMA history weight for T_round smoothing (paper: 0.75).
	Beta float64
	// TIdle resets the round estimate after idleness (paper: one MTU
	// transmission time).
	TIdle sim.Time

	smoothed []sim.Time // per-queue smoothed T_round; 0 = no estimate
	lastSeen []sim.Time // last round sample incorporated, for dedup

	// OnEstimate, if set, receives every capacity estimate MQ-ECN forms
	// (bytes/s); Figure 2 uses it to trace convergence.
	OnEstimate func(now sim.Time, queue int, rate float64)

	// Marks counts CE marks applied.
	Marks int64

	oMarks *obs.Counter
	oEst   []*obs.Gauge // per-queue smoothed capacity estimate, bytes/s
}

// Instrument records marking decisions and the per-queue capacity
// estimates (the EWMA-smoothed quantum/T_round rate, bytes/s) into a
// stats registry under label.
func (m *MQECN) Instrument(r *obs.Registry, label string) {
	m.oMarks = r.Counter(label + ".marks")
	m.oEst = make([]*obs.Gauge, len(m.smoothed))
	for i := range m.oEst {
		m.oEst[i] = r.Gauge(fmt.Sprintf("%s.q%d.est_rate_bytes_per_s", label, i))
	}
}

// NewMQECN returns an MQ-ECN marker bound to a round-robin scheduler's
// state. n is the number of queues, rttLambda the RTT × λ product, tidle
// the idle-reset window.
func NewMQECN(round RoundInfo, n int, rttLambda, tidle sim.Time) *MQECN {
	if round == nil {
		panic("aqm: MQ-ECN requires a round-robin scheduler (RoundInfo)")
	}
	if rttLambda <= 0 {
		panic(fmt.Sprintf("aqm: MQ-ECN RTT×λ %v must be positive", rttLambda))
	}
	return &MQECN{
		round:     round,
		RTTLambda: rttLambda,
		Beta:      0.75,
		TIdle:     tidle,
		smoothed:  make([]sim.Time, n),
		lastSeen:  make([]sim.Time, n),
	}
}

// Name implements core.Marker.
func (m *MQECN) Name() string { return "MQ-ECN" }

// MarkCount implements core.MarkCounter.
func (m *MQECN) MarkCount() int64 { return m.Marks }

// threshold computes queue i's current dynamic threshold in bytes, capped
// by the standard (whole-link) threshold.
func (m *MQECN) threshold(now sim.Time, i int, st core.PortState) int {
	kstd := StandardThreshold(st.LinkRate(), m.RTTLambda)
	// Idle reset: a queue that has not transmitted for T_idle gets the
	// standard threshold so a fresh burst is not over-marked.
	if last := m.round.LastDequeue(i); m.TIdle > 0 && now-last > m.TIdle {
		m.smoothed[i] = 0
	}
	if s := m.smoothed[i]; s > 0 {
		k := int(int64(m.round.Quantum(i)) * int64(m.RTTLambda) / int64(s))
		if k < kstd {
			return k
		}
	}
	return kstd
}

// observe folds the scheduler's latest round-time sample into the EWMA.
func (m *MQECN) observe(now sim.Time, i int) {
	sample := m.round.RoundTime(i)
	if sample <= 0 || sample == m.lastSeen[i] {
		return
	}
	m.lastSeen[i] = sample
	if m.smoothed[i] == 0 {
		m.smoothed[i] = sample
	} else {
		m.smoothed[i] = sim.Time(m.Beta*float64(m.smoothed[i]) + (1-m.Beta)*float64(sample))
	}
	if m.smoothed[i] > 0 && (m.OnEstimate != nil || m.oEst != nil) {
		rate := float64(m.round.Quantum(i)) / m.smoothed[i].Seconds()
		if m.OnEstimate != nil {
			m.OnEstimate(now, i, rate)
		}
		if m.oEst != nil {
			m.oEst[i].Set(rate)
		}
	}
}

// OnEnqueue implements core.Marker: per-queue comparison against the
// dynamic threshold.
func (m *MQECN) OnEnqueue(now sim.Time, i int, p *pkt.Packet, st core.PortState, v *core.Verdict) {
	m.observe(now, i)
	k := m.threshold(now, i, st)
	if st.QueueBytes(i) <= k {
		return
	}
	if v != nil {
		v.ThresholdBytes = k
	}
	if v.Fire(core.ReasonMQECNAboveK, p) {
		m.Marks++
		if m.oMarks != nil {
			m.oMarks.Inc()
		}
	}
}

// OnDequeue implements core.Marker: round samples become visible when the
// scheduler grants turns, so fold them in here too.
func (m *MQECN) OnDequeue(now sim.Time, i int, _ *pkt.Packet, _ core.PortState, _ *core.Verdict) {
	m.observe(now, i)
}
