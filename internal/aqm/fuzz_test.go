package aqm

import (
	"testing"

	"tcn/internal/pkt"
)

// FuzzREDDecide checks the static-threshold marking decision on
// arbitrary occupancy/threshold/codepoint combinations: a packet is
// CE-marked iff the occupancy strictly exceeds K and the packet is
// ECN-capable, and the mark counter moves in lockstep with the marks.
func FuzzREDDecide(f *testing.F) {
	f.Add(30_000, 20_000, uint8(1))
	f.Add(20_000, 20_000, uint8(1))
	f.Add(30_000, 20_000, uint8(0))
	f.Fuzz(func(t *testing.T, qbytes, k int, ecn uint8) {
		if k <= 0 {
			k = 1
		}
		m := NewQueueRED(k)
		p := &pkt.Packet{Size: 1500, ECN: pkt.ECN(ecn % 4)}
		capable := p.ECN.ECNCapable()
		wasCE := p.ECN == pkt.CE
		m.decide(qbytes, p, nil)
		wantMark := qbytes > k && capable
		if gotCE := p.ECN == pkt.CE; gotCE != (wasCE || wantMark) {
			t.Fatalf("decide(qbytes=%d, K=%d, ecn=%v): CE=%v, want %v",
				qbytes, k, pkt.ECN(ecn%4), gotCE, wasCE || wantMark)
		}
		wantCount := int64(0)
		if wantMark {
			wantCount = 1
		}
		if m.Marks != wantCount {
			t.Fatalf("Marks = %d, want %d", m.Marks, wantCount)
		}
	})
}
