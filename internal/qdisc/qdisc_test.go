package qdisc

import (
	"testing"
	"testing/quick"

	"tcn/internal/core"
	"tcn/internal/fabric"
	"tcn/internal/obs"
	"tcn/internal/pkt"
	"tcn/internal/sched"
	"tcn/internal/sim"
	"tcn/internal/testutil"
)

func TestTokenBucketBasics(t *testing.T) {
	tb := NewTokenBucket(fabric.Gbps, 2500)
	// Bucket starts full.
	if ok, _ := tb.Take(0, 2500); !ok {
		t.Fatal("full bucket should admit a burst up to depth")
	}
	// Immediately after, a packet must wait.
	ok, wait := tb.Take(0, 1500)
	if ok {
		t.Fatal("empty bucket should refuse")
	}
	// 1500 bytes at 1 Gbps accrue in 12 us.
	if wait != 12*sim.Microsecond {
		t.Fatalf("wait %v, want 12us", wait)
	}
	// After the wait, the packet fits exactly.
	if ok, _ := tb.Take(12*sim.Microsecond, 1500); !ok {
		t.Fatal("tokens should have accrued")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	tb := NewTokenBucket(fabric.Gbps, 2500)
	tb.Take(0, 2500)
	// A long idle period must not accumulate more than the burst.
	if got := tb.Tokens(sim.Second); !testutil.Eq(got, 2500) {
		t.Fatalf("tokens %v, want capped at 2500", got)
	}
}

// Property: over any sequence of takes at increasing times, granted bytes
// never exceed rate×elapsed + burst (the token bucket invariant).
func TestPropertyTokenBucketConformance(t *testing.T) {
	f := func(steps []uint16) bool {
		const burst = 2500
		rate := fabric.Gbps
		tb := NewTokenBucket(rate, burst)
		now := sim.Time(0)
		granted := 0
		for _, s := range steps {
			now += sim.Time(s)
			size := 64 + int(s)%1436
			if ok, _ := tb.Take(now, size); ok {
				granted += size
			}
			limit := float64(rate)/8*now.Seconds() + burst
			if float64(granted) > limit+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// drive pushes n MTU packets into a qdisc and runs the engine.
func drive(t *testing.T, eng *sim.Engine, q *Qdisc, n int) []sim.Time {
	t.Helper()
	var times []sim.Time
	for i := 0; i < n; i++ {
		q.Enqueue(&pkt.Packet{Size: 1500, ECN: pkt.ECT0, Seq: int64(i)})
	}
	eng.Run()
	return times
}

func TestQdiscShapesBelowLineRate(t *testing.T) {
	eng := sim.NewEngine()
	var lastTx sim.Time
	var sent int
	q := New(eng, Config{
		Queues:   1,
		LineRate: fabric.Gbps,
		Transmit: func(now sim.Time, p *pkt.Packet) {
			lastTx = now
			sent++
		},
	})
	const n = 1000
	drive(t, eng, q, n)
	if sent != n {
		t.Fatalf("sent %d, want %d", sent, n)
	}
	// Effective rate must be ~99.5% of line rate: n packets of 1500B
	// need ≥ n×1500×8/0.995e9 seconds.
	ideal := float64(n) * 1500 * 8 / 0.995e9 * 1e9
	minDuration := sim.Time(ideal * 0.99)
	if lastTx < minDuration {
		t.Fatalf("finished in %v, faster than the shaped rate allows (%v)", lastTx, minDuration)
	}
	// But not pathologically slower (within 2%).
	maxDuration := sim.Time(ideal * 1.02)
	if lastTx > maxDuration {
		t.Fatalf("finished in %v, slower than shaping explains (%v)", lastTx, maxDuration)
	}
}

func TestQdiscPipelineOrder(t *testing.T) {
	eng := sim.NewEngine()
	var order []string
	m := &recordingMarker{
		onEnq: func() { order = append(order, "enq-mark") },
		onDeq: func() { order = append(order, "deq-mark") },
	}
	q := New(eng, Config{
		Queues:   1,
		LineRate: fabric.Gbps,
		Marker:   m,
		Transmit: func(sim.Time, *pkt.Packet) { order = append(order, "tx") },
	})
	q.Enqueue(&pkt.Packet{Size: 1500, ECN: pkt.ECT0})
	eng.Run()
	if len(order) != 3 || order[0] != "enq-mark" || order[1] != "deq-mark" || order[2] != "tx" {
		t.Fatalf("pipeline order %v", order)
	}
}

type recordingMarker struct{ onEnq, onDeq func() }

func (r *recordingMarker) Name() string { return "recording" }
func (r *recordingMarker) OnEnqueue(sim.Time, int, *pkt.Packet, core.PortState, *core.Verdict) {
	r.onEnq()
}
func (r *recordingMarker) OnDequeue(sim.Time, int, *pkt.Packet, core.PortState, *core.Verdict) {
	r.onDeq()
}

func TestQdiscTCNMarksUnderBacklog(t *testing.T) {
	eng := sim.NewEngine()
	marked, total := 0, 0
	tcn := core.NewTCN(100 * sim.Microsecond)
	q := New(eng, Config{
		Queues:   1,
		LineRate: fabric.Gbps,
		Marker:   tcn,
		Transmit: func(_ sim.Time, p *pkt.Packet) {
			total++
			if p.ECN == pkt.CE {
				marked++
			}
		},
	})
	// 100 MTU packets at once: the tail waits ~1.2ms >> 100us, so most
	// packets must be marked while the first few escape unmarked.
	drive(t, eng, q, 100)
	if total != 100 {
		t.Fatalf("sent %d", total)
	}
	if marked < 80 {
		t.Fatalf("marked %d, expected most of the burst", marked)
	}
	if marked == total {
		t.Fatal("head packets with low sojourn should escape marking")
	}
	if int(tcn.Marks) != marked {
		t.Fatal("marker counter mismatch")
	}
}

func TestQdiscDropsWhenFull(t *testing.T) {
	eng := sim.NewEngine()
	q := New(eng, Config{
		Queues:      1,
		BufferBytes: 15_000,
		LineRate:    fabric.Gbps,
		Transmit:    func(sim.Time, *pkt.Packet) {},
	})
	accepted := 0
	for i := 0; i < 20; i++ {
		if q.Enqueue(&pkt.Packet{Size: 1500}) {
			accepted++
		}
	}
	if accepted == 20 || q.Drops == 0 {
		t.Fatalf("accepted %d drops %d, buffer limit not enforced", accepted, q.Drops)
	}
	eng.Run()
	if int(q.Sent) != accepted {
		t.Fatalf("sent %d, want %d", q.Sent, accepted)
	}
}

// TestQdiscInstrumentedCounters pins that the registry view agrees with
// the qdisc's own Sent/Drops fields and records sojourns for every
// transmission.
func TestQdiscInstrumentedCounters(t *testing.T) {
	eng := sim.NewEngine()
	q := New(eng, Config{
		Queues:      1,
		BufferBytes: 15_000,
		LineRate:    fabric.Gbps,
		Marker:      core.NewTCN(50 * sim.Microsecond),
		Transmit:    func(sim.Time, *pkt.Packet) {},
	})
	r := obs.NewRegistry()
	q.Instrument(r, "qd")
	for i := 0; i < 20; i++ {
		q.Enqueue(&pkt.Packet{Size: 1500, ECN: pkt.ECT0})
	}
	eng.Run()
	if got := r.Counter("qd.q0.tx_packets").Value(); got != q.Sent {
		t.Fatalf("tx_packets %d, qdisc Sent %d", got, q.Sent)
	}
	if got := r.Counter("qd.q0.drop_packets").Value(); got != q.Drops {
		t.Fatalf("drop_packets %d, qdisc Drops %d", got, q.Drops)
	}
	if got := r.Counter("qd.q0.mark_packets").Value(); got == 0 {
		t.Fatal("backlogged TCN qdisc recorded no marks")
	}
	h := r.Histogram("qd.q0.sojourn_ns")
	if h.Count() != q.Sent {
		t.Fatalf("sojourn samples %d, want one per transmission (%d)", h.Count(), q.Sent)
	}
	if h.Max() == 0 {
		t.Fatal("a 15KB backlog at 1Gbps must show nonzero sojourns")
	}
}

func TestQdiscPortState(t *testing.T) {
	eng := sim.NewEngine()
	q := New(eng, Config{Queues: 2, LineRate: fabric.Gbps, Transmit: func(sim.Time, *pkt.Packet) {}})
	var st core.PortState = q
	if st.NumQueues() != 2 || st.LinkRate() != 1e9 {
		t.Fatal("PortState accessors")
	}
	q.Enqueue(&pkt.Packet{Size: 1500, DSCP: 1})
	q.Enqueue(&pkt.Packet{Size: 1500, DSCP: 1})
	// One packet is in service; one remains queued.
	if st.QueueBytes(1) != 1500 || st.PortBytes() != 1500 {
		t.Fatalf("occupancy %d/%d", st.QueueBytes(1), st.PortBytes())
	}
}

func TestQdiscSPCompositePriority(t *testing.T) {
	// End-to-end priority through the pipeline: with both queues
	// backlogged, the strict queue's packets all leave first.
	eng := sim.NewEngine()
	var order []uint8
	q := New(eng, Config{
		Queues:    2,
		LineRate:  fabric.Gbps,
		Scheduler: sched.NewSP(),
		Transmit:  func(_ sim.Time, p *pkt.Packet) { order = append(order, p.DSCP) },
	})
	// Fill the low queue first, then the strict one: service order must
	// still favor the strict queue for everything not yet in flight.
	for i := 0; i < 5; i++ {
		q.Enqueue(&pkt.Packet{Size: 1500, DSCP: 1})
	}
	for i := 0; i < 5; i++ {
		q.Enqueue(&pkt.Packet{Size: 1500, DSCP: 0})
	}
	eng.Run()
	// The very first packet (DSCP 1) was already committed before any
	// strict traffic arrived; everything after must be 0,0,0,0,0 then 1s.
	if order[0] != 1 {
		t.Fatalf("first committed packet should be the early low-priority one, got %v", order)
	}
	for i := 1; i <= 5; i++ {
		if order[i] != 0 {
			t.Fatalf("strict packets not prioritized: %v", order)
		}
	}
}

func TestQdiscTokenBucketIdleDoesNotBurstBeyondDepth(t *testing.T) {
	// After a long idle period, at most Burst bytes may leave
	// back-to-back faster than the shaped rate.
	eng := sim.NewEngine()
	var times []sim.Time
	q := New(eng, Config{
		Queues:   1,
		LineRate: fabric.Gbps,
		Burst:    2500,
		Transmit: func(now sim.Time, p *pkt.Packet) { times = append(times, now) },
	})
	eng.At(100*sim.Millisecond, func() {
		for i := 0; i < 5; i++ {
			q.Enqueue(&pkt.Packet{Size: 1500})
		}
	})
	eng.Run()
	if len(times) != 5 {
		t.Fatalf("sent %d", len(times))
	}
	// Packet 0 spends the bucket (2500B -> 1 full packet + change);
	// packet 1 must already wait for tokens: spacing >= the shaped
	// serialization time of 1500B (~12.06us at 0.995 Gbps).
	gap := times[1] - times[0]
	if gap < 12*sim.Microsecond {
		t.Fatalf("second packet left after only %v; bucket depth not enforced", gap)
	}
}
