// Package qdisc reassembles the paper's software prototype (§5) as a
// library: the five-stage packet pipeline of the Linux queueing-discipline
// kernel module — DSCP classifier, enqueue ECN marking, packet scheduler,
// token-bucket rate limiter, dequeue ECN marking — running on the
// simulator clock instead of kernel time.
//
// The deliberate difference from fabric.Port is the rate limiter: the
// prototype shapes egress at 99.5 % of NIC capacity with a ~1.67-MTU
// bucket so queueing stays inside the qdisc where the marker can see it,
// rather than draining into NIC ring buffers (§5, "Rate Limiter").
package qdisc

import (
	"fmt"

	"tcn/internal/core"
	"tcn/internal/digest"
	"tcn/internal/fabric"
	"tcn/internal/invariant"
	"tcn/internal/obs"
	"tcn/internal/obs/prof"
	"tcn/internal/pkt"
	"tcn/internal/queue"
	"tcn/internal/sched"
	"tcn/internal/sim"
)

// TokenBucket is the prototype's shaper: tokens accrue at Rate and each
// transmission spends the packet's wire size; Burst bounds accumulation.
type TokenBucket struct {
	// Rate is the token fill rate in bits per second.
	Rate fabric.Rate
	// Burst is the bucket depth in bytes (paper: 2.5 KB ≈ 1.67 MTU).
	Burst int

	tokens float64 // bytes
	last   sim.Time
}

// NewTokenBucket returns a full bucket.
func NewTokenBucket(rate fabric.Rate, burst int) *TokenBucket {
	if rate <= 0 || burst <= 0 {
		panic(fmt.Sprintf("qdisc: invalid token bucket rate=%v burst=%d", rate, burst))
	}
	return &TokenBucket{Rate: rate, Burst: burst, tokens: float64(burst)}
}

// refill accrues tokens up to the burst cap.
func (tb *TokenBucket) refill(now sim.Time) {
	if now > tb.last {
		tb.tokens += float64(tb.Rate) / 8 * (now - tb.last).Seconds()
		if tb.tokens > float64(tb.Burst) {
			tb.tokens = float64(tb.Burst)
		}
		tb.last = now
	}
}

// Take attempts to spend size bytes at time now. On failure it reports
// how long to wait until enough tokens accrue.
func (tb *TokenBucket) Take(now sim.Time, size int) (ok bool, wait sim.Time) {
	tb.refill(now)
	if invariant.Enabled {
		invariant.Checkf(tb.tokens >= 0 && tb.tokens <= float64(tb.Burst),
			"qdisc: token count %f outside [0, burst %d] after refill", tb.tokens, tb.Burst)
	}
	if tb.tokens >= float64(size) {
		tb.tokens -= float64(size)
		if invariant.Enabled {
			invariant.Checkf(tb.tokens >= 0,
				"qdisc: token bucket went negative (%f) spending %d bytes", tb.tokens, size)
		}
		return true, 0
	}
	missing := float64(size) - tb.tokens
	wait = sim.Time(missing * 8 / float64(tb.Rate) * float64(sim.Second))
	if wait < 1 {
		wait = 1
	}
	return false, wait
}

// Tokens returns the current token count in bytes (after refill).
func (tb *TokenBucket) Tokens(now sim.Time) float64 {
	tb.refill(now)
	return tb.tokens
}

// DigestState folds the shaper state into a run fingerprint: the stored
// token count and the last refill instant. The stored fields — not a
// refilled projection — are digested, because digesting must not perturb
// the bucket (an early refill changes later floating-point rounding).
func (tb *TokenBucket) DigestState(h *digest.Hash) {
	h.WriteFloat64(tb.tokens)
	h.WriteInt64(int64(tb.last))
}

// Level computes the token count in bytes at now WITHOUT advancing the
// bucket state. Observers (flight-recorder probes) must use this instead
// of Tokens: an early refill changes the floating-point rounding of later
// ones, so a probing run would diverge from a bare one.
func (tb *TokenBucket) Level(now sim.Time) float64 {
	t := tb.tokens
	if now > tb.last {
		t += float64(tb.Rate) / 8 * (now - tb.last).Seconds()
		if t > float64(tb.Burst) {
			t = float64(tb.Burst)
		}
	}
	return t
}

// Config assembles a Qdisc.
type Config struct {
	// Queues is the number of per-class FIFO queues.
	Queues int
	// BufferBytes is the shared buffer pool (0 = unlimited).
	BufferBytes int
	// Scheduler arbitrates the queues; nil = FIFO.
	Scheduler sched.Scheduler
	// Marker is the ECN scheme; nil = none.
	Marker core.Marker
	// Classify maps packets to queues; nil = DSCP.
	Classify fabric.Classifier
	// LineRate is the NIC speed; the shaper runs at ShapeFraction of it.
	LineRate fabric.Rate
	// ShapeFraction defaults to the paper's 0.995.
	ShapeFraction float64
	// Burst defaults to the paper's 2500 bytes.
	Burst int
	// Transmit receives packets leaving the qdisc (the "NIC driver").
	Transmit func(now sim.Time, p *pkt.Packet)
}

// Qdisc is the assembled pipeline.
type Qdisc struct {
	eng      *sim.Engine
	buf      *queue.Buffer
	sch      sched.Scheduler
	marker   core.Marker
	classify fabric.Classifier
	bucket   *TokenBucket
	rate     fabric.Rate
	transmit func(now sim.Time, p *pkt.Packet)

	busy    bool
	waiting bool

	// OnTransmit, if set, observes every packet leaving the qdisc after
	// dequeue-side marking, before the Transmit callback.
	OnTransmit func(now sim.Time, qi int, p *pkt.Packet)
	// OnDrop, if set, observes every packet rejected by the buffer.
	OnDrop func(now sim.Time, qi int, p *pkt.Packet)
	// OnVerdict, if set, observes every decisive marking/dropping
	// decision. The verdict is the qdisc's scratch — copy to keep.
	OnVerdict func(now sim.Time, qi int, p *pkt.Packet, v *core.Verdict)
	// OnShaperWait, if set, observes every token-bucket stall: the head
	// of queue qi must wait `wait` before enough tokens accrue.
	OnShaperWait func(now sim.Time, qi int, wait sim.Time)

	// verdict is the per-qdisc scratch every marker call fills in
	// (single-goroutine per engine, so one suffices; see fabric.Port).
	verdict core.Verdict

	// stats, when attached via Instrument, receives per-queue counters
	// and histograms; nil = off.
	stats *obs.PortObs

	// prof and the two stage scopes, when attached via SetProfiler,
	// bracket the enqueue and shaper/dequeue stages with cost-profiler
	// scopes; hotSch and hotMarker are then instrumented wrappers of
	// sch/marker. Nil prof = off, one nil check per stage; digests always
	// use the unwrapped sch/marker.
	prof      *prof.Profiler
	enqScope  *prof.Scope
	deqScope  *prof.Scope
	hotSch    sched.Scheduler
	hotMarker core.Marker

	// Drops counts buffer rejections; Sent counts transmissions. Both
	// are int64 so multi-hour runs cannot overflow on 32-bit platforms.
	Drops int64
	Sent  int64
}

// New builds a qdisc.
func New(eng *sim.Engine, cfg Config) *Qdisc {
	if cfg.Queues <= 0 {
		panic(fmt.Sprintf("qdisc: need at least one queue, got %d", cfg.Queues))
	}
	if cfg.LineRate <= 0 {
		panic("qdisc: need a line rate")
	}
	if cfg.Transmit == nil {
		panic("qdisc: need a transmit function")
	}
	frac := cfg.ShapeFraction
	if frac == 0 { //tcnlint:floatexact zero is the "unset" sentinel, never computed
		frac = 0.995
	}
	burst := cfg.Burst
	if burst == 0 {
		burst = 2500
	}
	s := cfg.Scheduler
	if s == nil {
		s = sched.NewFIFO()
	}
	m := cfg.Marker
	if m == nil {
		m = core.Nop{}
	}
	c := cfg.Classify
	if c == nil {
		c = fabric.ClassifyByDSCP(cfg.Queues)
	}
	q := &Qdisc{
		eng:      eng,
		buf:      queue.NewBuffer(cfg.Queues, cfg.BufferBytes, 0),
		sch:      s,
		marker:   m,
		classify: c,
		bucket:   NewTokenBucket(fabric.Rate(float64(cfg.LineRate)*frac), burst),
		rate:     cfg.LineRate,
		transmit: cfg.Transmit,
	}
	q.hotSch = s
	q.hotMarker = m
	s.Bind(q.buf)
	return q
}

// SetProfiler brackets the qdisc's pipeline stages with cost-profiler
// scopes: the enqueue stage under "qdisc:<label>:enq", the shaper/dequeue
// stage under "qdisc:<label>:deq", the scheduler under "sched:<name>",
// and the marker under "marker:<name>". Attach before traffic flows;
// only hot-path references are swapped, so fingerprints are unchanged.
func (q *Qdisc) SetProfiler(p *prof.Profiler, label string) {
	q.prof = p
	q.enqScope = p.NewScope("qdisc:" + label + ":enq")
	q.deqScope = p.NewScope("qdisc:" + label + ":deq")
	schScope := p.NewScope("sched:" + q.sch.Name())
	q.hotSch = sched.Instrument(q.sch, schScope.Enter, p.Exit)
	markScope := p.NewScope("marker:" + q.marker.Name())
	q.hotMarker = core.InstrumentMarker(q.marker, markScope.Enter, p.Exit)
}

// Enqueue admits a packet from the IP layer: classify, buffer, enqueue
// marking.
func (q *Qdisc) Enqueue(p *pkt.Packet) bool {
	if q.prof != nil {
		q.enqScope.Enter()
	}
	now := q.eng.Now()
	qi := q.classify(p)
	if !q.buf.Push(qi, p) {
		q.Drops++
		if q.stats != nil {
			q.stats.Drop(qi, p.Size)
		}
		if q.OnDrop != nil {
			q.OnDrop(now, qi, p)
		}
		if q.OnVerdict != nil {
			q.verdict.Reset(core.StageAdmission, q.buf.Bytes(qi), q.buf.Used())
			q.verdict.Reason = core.ReasonBufferOverflow
			q.verdict.Dropped = true
			q.verdict.TokensBytes = q.bucket.Level(now)
			q.OnVerdict(now, qi, p, &q.verdict)
		}
		if q.prof != nil {
			q.prof.Exit()
		}
		return false
	}
	if q.stats != nil {
		q.stats.Enqueue(qi, p.Size, q.buf.Bytes(qi))
	}
	p.EnqueuedAt = now
	q.hotSch.OnEnqueue(now, qi, p)
	q.verdict.Reset(core.StageEnqueue, q.buf.Bytes(qi), q.buf.Used())
	if q.OnVerdict != nil {
		// Level is a pure projection (no refill), so it is safe to skip
		// entirely when nothing consumes the verdict; only the trace
		// ledger reads TokensBytes.
		q.verdict.TokensBytes = q.bucket.Level(now)
	}
	q.hotMarker.OnEnqueue(now, qi, p, q, &q.verdict)
	if q.OnVerdict != nil && q.verdict.Decisive() {
		q.OnVerdict(now, qi, p, &q.verdict)
	}
	if !q.busy && !q.waiting {
		q.dequeue()
	}
	if q.prof != nil {
		q.prof.Exit()
	}
	return true
}

// dequeue pulls the next packet through the shaper and dequeue marker.
func (q *Qdisc) dequeue() {
	if q.prof != nil {
		q.deqScope.Enter()
	}
	now := q.eng.Now()
	qi := q.hotSch.Next(now)
	if qi < 0 {
		q.busy = false
		if q.prof != nil {
			q.prof.Exit()
		}
		return
	}
	head := q.buf.Head(qi)
	if ok, wait := q.bucket.Take(now, head.Size); !ok {
		// Not enough tokens: retry when they have accrued.
		if q.OnShaperWait != nil {
			q.OnShaperWait(now, qi, wait)
		}
		q.busy = false
		q.waiting = true
		q.eng.AfterArg(wait, shaperRetry, q)
		if q.prof != nil {
			q.prof.Exit()
		}
		return
	}
	p := q.buf.Pop(qi)
	if invariant.Enabled {
		invariant.Checkf(p.Sojourn(now) >= 0,
			"qdisc: negative sojourn %v (enqueued at %v, dequeued at %v)",
			p.Sojourn(now), p.EnqueuedAt, now)
	}
	q.hotSch.OnDequeue(now, qi, p)
	q.verdict.Reset(core.StageDequeue, q.buf.Bytes(qi), q.buf.Used())
	if q.OnVerdict != nil {
		q.verdict.TokensBytes = q.bucket.Level(now)
	}
	q.hotMarker.OnDequeue(now, qi, p, q, &q.verdict)
	if q.OnVerdict != nil && q.verdict.Decisive() {
		q.OnVerdict(now, qi, p, &q.verdict)
	}
	q.Sent++
	if q.stats != nil {
		q.stats.Transmit(qi, p.Size, p.Sojourn(now), p.ECN == pkt.CE)
	}
	if q.OnTransmit != nil {
		q.OnTransmit(now, qi, p)
	}
	q.transmit(now, p)
	// The wire is busy for the serialization time; then pull the next
	// packet. AfterArg with the dequeueStep trampoline instead of the
	// method value q.dequeue: a method value is a fresh closure per
	// evaluation, which would allocate once per transmitted packet.
	q.busy = true
	q.eng.AfterArg(q.rate.Serialize(p.Size), dequeueStep, q)
	if q.prof != nil {
		q.prof.Exit()
	}
}

// dequeueStep resumes the dequeue loop when the wire frees up after a
// serialization delay (the AfterArg trampoline form, like shaperRetry).
func dequeueStep(v any) {
	v.(*Qdisc).dequeue()
}

// shaperRetry resumes dequeueing once shaper tokens have accrued. It is the
// AfterArg trampoline form — a package-level function plus the *Qdisc as
// the argument — so scheduling a retry never allocates a closure.
func shaperRetry(v any) {
	q := v.(*Qdisc)
	q.waiting = false
	if !q.busy {
		q.dequeue()
	}
}

// DigestState folds the whole pipeline's state into a run fingerprint:
// the drop/sent tallies, the dequeue-loop flags, the shaper, the buffer,
// and — when they expose state — the scheduler's credit counters and the
// marker's mark tally. Presence flags keep the digest shape fixed even
// when a scheduler or marker exposes nothing.
func (q *Qdisc) DigestState(h *digest.Hash) {
	h.WriteInt64(q.Drops)
	h.WriteInt64(q.Sent)
	h.WriteBool(q.busy)
	h.WriteBool(q.waiting)
	q.bucket.DigestState(h)
	q.buf.DigestState(h)
	if d, ok := q.sch.(digest.Digestable); ok {
		h.WriteBool(true)
		d.DigestState(h)
	} else {
		h.WriteBool(false)
	}
	if mc, ok := q.marker.(core.MarkCounter); ok {
		h.WriteBool(true)
		h.WriteInt64(mc.MarkCount())
	} else {
		h.WriteBool(false)
	}
}

// Instrument attaches the standard per-queue stats bundle to the
// registry under label, mirroring fabric.Port.Instrument.
func (q *Qdisc) Instrument(r *obs.Registry, label string) *obs.PortObs {
	q.stats = obs.NewPortObs(r, label, q.buf.NumQueues())
	return q.stats
}

// Buffer exposes the buffer for tests.
func (q *Qdisc) Buffer() *queue.Buffer { return q.buf }

// Bucket exposes the shaper, for read-only probing via Level.
func (q *Qdisc) Bucket() *TokenBucket { return q.bucket }

// Engine exposes the qdisc's event engine.
func (q *Qdisc) Engine() *sim.Engine { return q.eng }

// NumQueues implements core.PortState.
func (q *Qdisc) NumQueues() int { return q.buf.NumQueues() }

// QueueLen implements core.PortState.
func (q *Qdisc) QueueLen(i int) int { return q.buf.Len(i) }

// QueueBytes implements core.PortState.
func (q *Qdisc) QueueBytes(i int) int { return q.buf.Bytes(i) }

// PortBytes implements core.PortState.
func (q *Qdisc) PortBytes() int { return q.buf.Used() }

// LinkRate implements core.PortState.
func (q *Qdisc) LinkRate() int64 { return int64(q.rate) }
