package pias

import (
	"testing"
	"testing/quick"
)

func TestTagThreshold(t *testing.T) {
	tag := Tag(0, 3, DefaultThreshold)
	if tag(0) != 0 || tag(99_999) != 0 {
		t.Fatal("bytes below threshold must be high priority")
	}
	if tag(100_000) != 3 || tag(5_000_000) != 3 {
		t.Fatal("bytes at/after threshold must be demoted to the service class")
	}
}

func TestTagBoundaryIsExclusive(t *testing.T) {
	tag := Tag(1, 2, 100)
	if tag(99) != 1 {
		t.Fatal("offset 99 < 100 stays high")
	}
	if tag(100) != 2 {
		t.Fatal("offset 100 demotes")
	}
}

func TestTagValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero threshold must panic")
		}
	}()
	Tag(0, 1, 0)
}

// Property: the tag is a step function — high before the threshold, low
// from it onward, nothing else.
func TestPropertyTagIsStep(t *testing.T) {
	tag := Tag(0, 7, DefaultThreshold)
	f := func(off int64) bool {
		if off < 0 {
			off = -off
		}
		got := tag(off)
		if off < DefaultThreshold {
			return got == 0
		}
		return got == 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultThresholdMatchesPaper(t *testing.T) {
	if DefaultThreshold != 100_000 {
		t.Fatalf("threshold %d, want the paper's 100KB", DefaultThreshold)
	}
}
