// Package pias implements the two-priority PIAS flow scheduling the paper
// layers under its traffic-prioritization experiments (§6.1.3, §6.2): the
// first Threshold bytes of every flow (message) travel in a shared strict
// high-priority queue and the remainder is demoted to the flow's dedicated
// service queue, so small flows finish entirely at high priority without
// any prior size information (Bai et al., NSDI 2015).
package pias

import (
	"fmt"

	"tcn/internal/transport"
)

// DefaultThreshold is the paper's demotion threshold: the first 100 KB of
// each flow stay in the high-priority queue.
const DefaultThreshold = 100_000

// Tag returns a transport.Tagger implementing the two-priority scheme:
// bytes below threshold are tagged high, the rest low.
func Tag(high, low uint8, threshold int64) transport.Tagger {
	if threshold <= 0 {
		panic(fmt.Sprintf("pias: threshold %d must be positive", threshold))
	}
	return func(offset int64) uint8 {
		if offset < threshold {
			return high
		}
		return low
	}
}
