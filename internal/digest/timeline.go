package digest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Timeline is a parsed fingerprint stream: the header parameters plus the
// epoch and fine records in file order. Two timelines are comparable only
// when their seeds and epoch periods match.
type Timeline struct {
	Seed    uint64
	EpochNs int64
	Records []Record
	Fine    []FineRecord
}

// lineJSON is the single JSONL wire form: the header line sets
// "fingerprint":true, fine records set "fine":true, everything else is an
// epoch record. Digests travel as 16-hex-digit strings — JSON numbers
// cannot carry a uint64 exactly.
type lineJSON struct {
	Fingerprint bool   `json:"fingerprint,omitempty"`
	Seed        string `json:"seed,omitempty"`
	EpochNs     int64  `json:"epoch_ns,omitempty"`

	Fine  bool   `json:"fine,omitempty"`
	Event uint64 `json:"event,omitempty"`

	Scope     string `json:"scope,omitempty"`
	Epoch     int64  `json:"epoch"`
	At        int64  `json:"at_ns"`
	Component string `json:"component,omitempty"`
	Label     string `json:"label,omitempty"`
	Digest    string `json:"digest,omitempty"`
}

// hex64 renders a digest as a fixed-width hex string.
func hex64(v uint64) string { return fmt.Sprintf("%016x", v) }

// parseHex64 inverts hex64.
func parseHex64(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }

// WriteJSONL streams the timeline: one header line, every epoch record in
// snapshot order, then every fine record. Append order is deterministic
// (cells run serially under a recorder, snapshots fire on the sim clock),
// so two identical runs export identical bytes.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := lineJSON{Fingerprint: true, Seed: hex64(r.cfg.Seed), EpochNs: r.cfg.EpochNs}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, rec := range r.records {
		if err := enc.Encode(lineJSON{
			Scope: rec.Scope, Epoch: rec.Epoch, At: rec.At,
			Component: rec.Component.String(), Label: rec.Label,
			Digest: hex64(rec.Digest),
		}); err != nil {
			return err
		}
	}
	for _, f := range r.fine {
		if err := enc.Encode(lineJSON{
			Fine: true, Scope: f.Scope, Event: f.Event, At: f.At,
			Digest: hex64(f.Digest),
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTimeline parses a fingerprint JSONL stream written by WriteJSONL.
func ReadTimeline(r io.Reader) (*Timeline, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	tl := &Timeline{}
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l lineJSON
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("digest: line %d: %w", line, err)
		}
		switch {
		case l.Fingerprint:
			seed, err := parseHex64(l.Seed)
			if err != nil {
				return nil, fmt.Errorf("digest: line %d: bad seed %q", line, l.Seed)
			}
			tl.Seed = seed
			tl.EpochNs = l.EpochNs
		case l.Fine:
			d, err := parseHex64(l.Digest)
			if err != nil {
				return nil, fmt.Errorf("digest: line %d: bad digest %q", line, l.Digest)
			}
			tl.Fine = append(tl.Fine, FineRecord{Scope: l.Scope, Event: l.Event, At: l.At, Digest: d})
		default:
			if line == 1 {
				return nil, fmt.Errorf("digest: not a fingerprint stream (missing header line)")
			}
			c, ok := ParseComponent(l.Component)
			if !ok {
				return nil, fmt.Errorf("digest: line %d: unknown component %q", line, l.Component)
			}
			d, err := parseHex64(l.Digest)
			if err != nil {
				return nil, fmt.Errorf("digest: line %d: bad digest %q", line, l.Digest)
			}
			tl.Records = append(tl.Records, Record{
				Scope: l.Scope, Epoch: l.Epoch, At: l.At,
				Component: c, Label: l.Label, Digest: d,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if line == 0 {
		return nil, fmt.Errorf("digest: empty fingerprint stream")
	}
	return tl, nil
}
