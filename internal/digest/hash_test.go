package digest

import (
	"math"
	"testing"
)

func TestHashDeterministic(t *testing.T) {
	write := func(h *Hash) {
		h.WriteUint64(42)
		h.WriteInt64(-7)
		h.WriteInt(123456)
		h.WriteBool(true)
		h.WriteFloat64(3.14159)
		h.WriteString("queue0")
	}
	a := NewHash(1)
	b := NewHash(1)
	write(&a)
	write(&b)
	if a.Sum64() != b.Sum64() {
		t.Fatalf("same writes, different digests: %016x vs %016x", a.Sum64(), b.Sum64())
	}
}

func TestHashSeedSensitivity(t *testing.T) {
	a := NewHash(1)
	b := NewHash(2)
	a.WriteUint64(42)
	b.WriteUint64(42)
	if a.Sum64() == b.Sum64() {
		t.Fatal("different seeds produced identical digests")
	}
}

func TestHashFieldWidth(t *testing.T) {
	// Fixed-width fields: (1,2) must not collide with (513) or (2,1).
	a := NewHash(1)
	a.WriteUint64(1)
	a.WriteUint64(2)
	b := NewHash(1)
	b.WriteUint64(513)
	c := NewHash(1)
	c.WriteUint64(2)
	c.WriteUint64(1)
	if a.Sum64() == b.Sum64() {
		t.Fatal("field boundaries not preserved")
	}
	if a.Sum64() == c.Sum64() {
		t.Fatal("write order not significant")
	}
}

func TestHashFloatCanonicalization(t *testing.T) {
	negZero := math.Copysign(0, -1)
	a := NewHash(1)
	a.WriteFloat64(0)
	b := NewHash(1)
	b.WriteFloat64(negZero)
	if a.Sum64() != b.Sum64() {
		t.Fatal("-0 and +0 digest apart")
	}

	nan1 := math.NaN()
	nan2 := math.Float64frombits(math.Float64bits(math.NaN()) ^ 1) // different payload
	c := NewHash(1)
	c.WriteFloat64(nan1)
	d := NewHash(1)
	d.WriteFloat64(nan2)
	if c.Sum64() != d.Sum64() {
		t.Fatal("NaN payloads digest apart")
	}

	// But distinct ordinary values must digest apart.
	e := NewHash(1)
	e.WriteFloat64(1.0)
	f := NewHash(1)
	f.WriteFloat64(1.0000000000000002)
	if e.Sum64() == f.Sum64() {
		t.Fatal("adjacent floats digest identically")
	}
}

func TestHashStringLengthPrefix(t *testing.T) {
	a := NewHash(1)
	a.WriteString("ab")
	a.WriteString("c")
	b := NewHash(1)
	b.WriteString("a")
	b.WriteString("bc")
	if a.Sum64() == b.Sum64() {
		t.Fatal("string boundaries not preserved")
	}
}

func TestHashZeroAlloc(t *testing.T) {
	var sink uint64
	allocs := testing.AllocsPerRun(1000, func() {
		h := NewHash(7)
		h.WriteUint64(1)
		h.WriteInt64(-2)
		h.WriteFloat64(2.5)
		h.WriteBool(false)
		sink = h.Sum64()
	})
	if allocs != 0 { //tcnlint:floatexact AllocsPerRun of a zero-alloc run is exactly 0
		t.Fatalf("hash writes allocate: %v allocs/op", allocs)
	}
	_ = sink
}

func TestComponentStringRoundTrip(t *testing.T) {
	for c := Component(0); c < numComponents; c++ {
		s := c.String()
		if s == "component?" {
			t.Fatalf("component %d has no name", c)
		}
		got, ok := ParseComponent(s)
		if !ok || got != c {
			t.Fatalf("ParseComponent(%q) = %v, %v; want %v", s, got, ok, c)
		}
	}
	if _, ok := ParseComponent("nonsense"); ok {
		t.Fatal("ParseComponent accepted garbage")
	}
}
