package digest

import "fmt"

// Digestable is implemented by every simulator component that can fold
// its externally observable state into a rolling hash. Implementations
// must only READ state (a digest pass over an instrumented run must leave
// it bit-identical to a bare one — no lazy refills, no sketch flushes),
// must not allocate (snapshots run between events on the steady-state
// path and are pinned by AllocsPerRun), and must write fields in a fixed
// order with fixed widths (no maps, no floats-as-text).
type Digestable interface {
	DigestState(h *Hash)
}

// Config parameterizes a Recorder. Zero values select the defaults.
type Config struct {
	// Seed primes every digest; timelines with different seeds are not
	// comparable and the diff engine refuses them. Default 1.
	Seed uint64
	// EpochNs is the snapshot period in sim nanoseconds (default 1ms).
	// Two comparable runs must use the same period so their epochs align.
	EpochNs int64
	// RecordCap preallocates the record store (default 1<<15 records).
	// The store grows past it, but a capacity-guarded run stays
	// allocation-free — size it to epochs × components for pinned paths.
	RecordCap int
	// Fine enables per-event digests bracketed around FineAtEpoch: every
	// event executed in the windows leading into epochs FineAtEpoch and
	// FineAtEpoch+1 appends one chained whole-scope digest. tcndiff's
	// drill-in rerun sets this to the first divergent epoch it reported.
	Fine bool
	// FineAtEpoch is the epoch index the fine bracket centers on.
	FineAtEpoch int64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.EpochNs <= 0 {
		c.EpochNs = 1_000_000 // 1ms of sim time
	}
	if c.RecordCap <= 0 {
		c.RecordCap = 1 << 15
	}
	return c
}

// Record is one epoch snapshot of one component: the chained digest of
// that component's state at that instant. Chained means each epoch's
// digest folds in the previous one, so a component that diverges at epoch
// E stays divergent at every later epoch — the monotonicity the diff
// engine's binary search relies on.
type Record struct {
	Scope     string
	Epoch     int64
	At        int64 // sim ns
	Component Component
	Label     string
	Digest    uint64
}

// FineRecord is one per-event snapshot in fine mode: the chained digest
// of an entire scope after one event executed. Event is the engine's
// cumulative executed-event count, the index tcndiff reports.
type FineRecord struct {
	Scope  string
	Event  uint64
	At     int64 // sim ns
	Digest uint64
}

// Recorder accumulates the digest timeline of one tcnsim invocation. It
// may span several experiment cells (each with its own engine): every
// engine gets its own Scope, so a snapshot digests only that cell's
// components and the timeline stays O(cells × epochs × components), not
// O(cells² × ...). The recorder is shared mutable state like the flight
// recorder — attaching it forces a sweep serial (experiments.Obs.Active).
type Recorder struct {
	cfg     Config
	scopes  []*Scope
	byOwner map[any]*Scope
	records []Record
	fine    []FineRecord
}

// New returns an empty recorder.
func New(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:     cfg,
		byOwner: map[any]*Scope{},
		records: make([]Record, 0, cfg.RecordCap),
	}
}

// Seed returns the digest seed.
func (r *Recorder) Seed() uint64 { return r.cfg.Seed }

// EpochNs returns the snapshot period in sim nanoseconds. The caller (not
// this package) schedules the epoch ticks, so the recorder never touches
// an engine.
func (r *Recorder) EpochNs() int64 { return r.cfg.EpochNs }

// FineEnabled reports whether per-event fine records are requested; the
// caller only installs the (one nil check per event) engine hook then.
func (r *Recorder) FineEnabled() bool { return r.cfg.Fine }

// ScopeFor returns the scope registered for owner, creating it on first
// use. Owners are opaque keys — one per engine — compared by identity;
// scopes are labeled "cell0", "cell1", ... in creation order, which is
// deterministic because cells attach serially whenever a recorder is on.
func (r *Recorder) ScopeFor(owner any) *Scope {
	if s, ok := r.byOwner[owner]; ok {
		return s
	}
	s := &Scope{
		rec:    r,
		label:  fmt.Sprintf("cell%d", len(r.scopes)),
		fineOn: r.cfg.Fine && r.cfg.FineAtEpoch == 0,
	}
	r.byOwner[owner] = s
	r.scopes = append(r.scopes, s)
	return s
}

// ScopeOf returns the scope registered for owner, or nil.
func (r *Recorder) ScopeOf(owner any) *Scope { return r.byOwner[owner] }

// Records returns the epoch records in append order (not a copy).
func (r *Recorder) Records() []Record { return r.records }

// FineRecords returns the fine records in append order (not a copy).
func (r *Recorder) FineRecords() []FineRecord { return r.fine }

// Timeline packages the recorder's current state for the diff engine,
// sharing the underlying record slices.
func (r *Recorder) Timeline() *Timeline {
	return &Timeline{Seed: r.cfg.Seed, EpochNs: r.cfg.EpochNs, Records: r.records, Fine: r.fine}
}

// registration pairs a component with its identity.
type registration struct {
	kind  Component
	label string
	d     Digestable
}

// Scope is the per-engine slice of a recorder: the components of one
// experiment cell, their digest chains, and the cell's fine chain. All
// methods run on the goroutine that owns the cell's engine.
type Scope struct {
	rec    *Recorder
	label  string
	comps  []registration
	chain  []uint64
	epoch  int64
	fineOn bool

	// fineChain is the chained whole-scope digest fine mode extends per
	// event; h is the reusable hash scratch (a local would escape through
	// the interface call and allocate).
	fineChain uint64
	h         Hash
}

// Label returns the scope's cell label.
func (s *Scope) Label() string { return s.label }

// Epoch returns the number of snapshots taken so far (the index the next
// snapshot will record).
func (s *Scope) Epoch() int64 { return s.epoch }

// Register adds a component to the scope. Registration order is the
// digest order, so it must be deterministic (it is: cells build their
// fabric in program order). Register before the first Snapshot.
func (s *Scope) Register(kind Component, label string, d Digestable) {
	if d == nil {
		panic(fmt.Sprintf("digest: nil Digestable registered as %s %q", kind, label))
	}
	if s.epoch > 0 {
		panic(fmt.Sprintf("digest: %s %q registered after snapshot %d; chains would not align across runs",
			kind, label, s.epoch))
	}
	s.comps = append(s.comps, registration{kind: kind, label: label, d: d})
	s.chain = append(s.chain, 0)
}

// Snapshot records one epoch: every component's state is hashed, chained
// onto its previous digest, and appended to the recorder. at is the sim
// time in nanoseconds. Allocation-free while the record store stays
// within its preallocated capacity.
func (s *Scope) Snapshot(at int64) {
	for i := range s.comps {
		s.h = NewHash(s.rec.cfg.Seed)
		s.h.WriteUint64(s.chain[i])
		s.comps[i].d.DigestState(&s.h)
		d := s.h.Sum64()
		s.chain[i] = d
		//tcnlint:hotpath record store is preallocated to RecordCap; append grows only past the configured horizon
		s.rec.records = append(s.rec.records, Record{
			Scope: s.label, Epoch: s.epoch, At: at,
			Component: s.comps[i].kind, Label: s.comps[i].label, Digest: d,
		})
	}
	s.epoch++
	s.fineOn = s.rec.cfg.Fine &&
		s.epoch >= s.rec.cfg.FineAtEpoch && s.epoch <= s.rec.cfg.FineAtEpoch+1
}

// FineSnapshot records one per-event digest when the fine bracket is
// open: the whole scope's state chained onto the previous fine digest.
// event is the engine's cumulative executed-event count. Outside the
// bracket this is one boolean test.
func (s *Scope) FineSnapshot(event uint64, at int64) {
	if !s.fineOn {
		return
	}
	s.h = NewHash(s.rec.cfg.Seed)
	s.h.WriteUint64(s.fineChain)
	for i := range s.comps {
		s.comps[i].d.DigestState(&s.h)
	}
	d := s.h.Sum64()
	s.fineChain = d
	//tcnlint:hotpath fine records only accrue inside the two-epoch bracket the drill-in rerun requests
	s.rec.fine = append(s.rec.fine, FineRecord{Scope: s.label, Event: event, At: at, Digest: d})
}
