package digest

// Component names the kind of simulator state one registered Digestable
// captures. The diff engine reports divergences as (epoch, component,
// label), so every state-bearing layer gets its own kind: a divergence in
// "rand" (draw counter) means the two runs consumed randomness
// differently, one in "port" means a switch egress port's buffer,
// scheduler credit, or marker counters went separate ways, and so on.
//
// The tcnlint exhaustive analyzer treats this package as an enum package:
// switches over Component must cover every exported constant (or carry an
// explicit default), so a newly added component kind cannot be silently
// skipped by String, ParseComponent, or any consumer.
type Component uint8

// The component kinds, in pipeline order.
const (
	// ComponentEngine is the event engine: clock, heap shape, sequence
	// and freelist generation counters.
	ComponentEngine Component = iota
	// ComponentRand is a seeded random stream: its seed and draw count.
	ComponentRand
	// ComponentPort is a fabric egress port: link/busy state, per-queue
	// transmit tallies, buffer, scheduler credit, marker counters.
	ComponentPort
	// ComponentQdisc is the software qdisc pipeline: drop/sent tallies,
	// shaper token bucket, buffer, scheduler, marker.
	ComponentQdisc
	// ComponentBuffer is a standalone shared egress buffer.
	ComponentBuffer
	// ComponentSched is a standalone scheduler's credit state.
	ComponentSched
	// ComponentMarker is a standalone marker's verdict counters.
	ComponentMarker
	// ComponentLedger is the decision ledger's exact mark/drop/reason
	// totals.
	ComponentLedger
	// ComponentTDigest is a t-digest sketch (FCT collector centroids).
	ComponentTDigest

	numComponents // sentinel for sized arrays; never digested
)

// String returns the wire name used in the fingerprint JSONL.
func (c Component) String() string {
	switch c {
	case ComponentEngine:
		return "engine"
	case ComponentRand:
		return "rand"
	case ComponentPort:
		return "port"
	case ComponentQdisc:
		return "qdisc"
	case ComponentBuffer:
		return "buffer"
	case ComponentSched:
		return "sched"
	case ComponentMarker:
		return "marker"
	case ComponentLedger:
		return "ledger"
	case ComponentTDigest:
		return "tdigest"
	}
	return "component?"
}

// ParseComponent inverts String for the timeline reader.
func ParseComponent(s string) (Component, bool) {
	for c := Component(0); c < numComponents; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}
