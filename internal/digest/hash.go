// Package digest is the run-fingerprinting layer: a seeded, allocation-
// free rolling hash over fixed-width state fields, a Digestable interface
// the simulator's stateful components implement, and a Recorder that
// snapshots per-component digest chains at sim-time epochs so two
// executions can be compared and their first divergence localized to an
// (epoch, component, event index) triple.
//
// The package is a leaf: it imports nothing from the rest of the module,
// so sim, queue, qdisc, fabric, sched, trace, and metrics can all
// implement Digestable without a cycle. Sim-time values are hashed as
// int64 nanoseconds; the engine-facing scheduling of epoch snapshots
// lives with the caller (internal/experiments wires the tickers).
//
// Determinism contract: a digest is a pure function of the seed and the
// exact sequence of Write calls. Floats are canonicalized before hashing
// (negative zero folds into positive zero, every NaN payload folds into
// one bit pattern) so semantically equal states cannot hash apart; no
// state is ever rendered through text, and no map is ever ranged.
package digest

import "math"

// FNV-1a 64-bit parameters. FNV over fixed-width little-endian fields is
// fast, allocation-free, and has no data-dependent branching — exactly
// what a per-epoch (and, in fine mode, per-event) state hash needs. The
// digest detects divergence between two runs of trusted code; it is not a
// cryptographic commitment.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// canonicalNaN is the single bit pattern every NaN hashes as.
var canonicalNaN = math.Float64bits(math.NaN())

// Hash is an incremental FNV-1a 64-bit hash over fixed-width fields. The
// zero value is NOT ready to use; start with NewHash so the seed is part
// of every digest. Hash is a plain value: embed it, reuse it, never share
// it across goroutines mid-write.
type Hash struct {
	h uint64
}

// NewHash returns a hash primed with the recorder seed. Distinct seeds
// yield unrelated digest timelines, so two recorders cannot be compared
// across a seed change by accident (the diff engine checks).
func NewHash(seed uint64) Hash {
	h := Hash{h: fnvOffset64}
	h.WriteUint64(seed)
	return h
}

// WriteUint64 folds one 64-bit field into the digest, little-endian
// byte by byte (fixed width: writing 1 then 2 differs from writing 513).
func (h *Hash) WriteUint64(v uint64) {
	x := h.h
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime64
		v >>= 8
	}
	h.h = x
}

// WriteInt64 folds one signed 64-bit field into the digest.
func (h *Hash) WriteInt64(v int64) { h.WriteUint64(uint64(v)) }

// WriteInt folds one machine int into the digest at a fixed 64-bit width,
// so 32- and 64-bit platforms produce identical digests.
func (h *Hash) WriteInt(v int) { h.WriteUint64(uint64(int64(v))) }

// WriteBool folds one flag into the digest.
func (h *Hash) WriteBool(v bool) {
	if v {
		h.WriteUint64(1)
	} else {
		h.WriteUint64(0)
	}
}

// WriteFloat64 folds one float into the digest by bit pattern, after
// canonicalization: negative zero hashes as positive zero (they compare
// equal, so they must digest equal) and every NaN hashes as one pattern.
// Floats are never formatted as text — the bit pattern is the state.
func (h *Hash) WriteFloat64(v float64) {
	if math.IsNaN(v) {
		h.WriteUint64(canonicalNaN)
		return
	}
	if v == 0 { //tcnlint:floatexact canonicalization: -0 and +0 compare equal so they must digest equal
		h.WriteUint64(0)
		return
	}
	h.WriteUint64(math.Float64bits(v))
}

// WriteString folds a label into the digest, length-prefixed so
// ("ab","c") and ("a","bc") digest apart. Labels are cold-path identity,
// not per-event state; Snapshot does not call this on the hot path.
func (h *Hash) WriteString(s string) {
	h.WriteInt(len(s))
	for i := 0; i < len(s); i++ {
		h.h ^= uint64(s[i])
		h.h *= fnvPrime64
	}
}

// Sum64 returns the current digest. The hash remains usable; further
// writes keep folding.
func (h *Hash) Sum64() uint64 { return h.h }
