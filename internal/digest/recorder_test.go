package digest

import (
	"bytes"
	"testing"
)

// counter is a minimal Digestable test double.
type counter struct {
	n int64
}

func (c *counter) DigestState(h *Hash) { h.WriteInt64(c.n) }

func TestRecorderChaining(t *testing.T) {
	rec := New(Config{Seed: 9})
	sc := rec.ScopeFor("eng")
	c := &counter{}
	sc.Register(ComponentEngine, "engine", c)

	sc.Snapshot(0)
	c.n = 1
	sc.Snapshot(1000)
	c.n = 1 // same state as epoch 1
	sc.Snapshot(2000)

	recs := rec.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Chaining: identical component state at epochs 1 and 2 must still
	// produce different digests because epoch 2 folds in epoch 1's.
	if recs[1].Digest == recs[2].Digest {
		t.Fatal("chain not folded: identical states produced identical chained digests")
	}
	for i, r := range recs {
		if r.Epoch != int64(i) {
			t.Fatalf("record %d has epoch %d", i, r.Epoch)
		}
		if r.Scope != "cell0" || r.Component != ComponentEngine || r.Label != "engine" {
			t.Fatalf("record %d misidentified: %+v", i, r)
		}
	}
}

func TestRecorderScopeIdentity(t *testing.T) {
	rec := New(Config{})
	a := rec.ScopeFor("engA")
	b := rec.ScopeFor("engB")
	if a == b {
		t.Fatal("distinct owners shared a scope")
	}
	if rec.ScopeFor("engA") != a {
		t.Fatal("ScopeFor not idempotent")
	}
	if rec.ScopeOf("engA") != a || rec.ScopeOf("missing") != nil {
		t.Fatal("ScopeOf lookup broken")
	}
	if a.Label() != "cell0" || b.Label() != "cell1" {
		t.Fatalf("scope labels %q, %q", a.Label(), b.Label())
	}
}

func TestRegisterAfterSnapshotPanics(t *testing.T) {
	rec := New(Config{})
	sc := rec.ScopeFor("eng")
	sc.Register(ComponentEngine, "engine", &counter{})
	sc.Snapshot(0)
	defer func() {
		if recover() == nil {
			t.Fatal("late Register did not panic")
		}
	}()
	sc.Register(ComponentRand, "rand", &counter{})
}

func TestRegisterNilPanics(t *testing.T) {
	rec := New(Config{})
	sc := rec.ScopeFor("eng")
	defer func() {
		if recover() == nil {
			t.Fatal("nil Register did not panic")
		}
	}()
	sc.Register(ComponentEngine, "engine", nil)
}

func TestFineBracket(t *testing.T) {
	rec := New(Config{Fine: true, FineAtEpoch: 2})
	sc := rec.ScopeFor("eng")
	c := &counter{}
	sc.Register(ComponentEngine, "engine", c)

	ev := uint64(0)
	step := func() {
		ev++
		c.n++
		sc.FineSnapshot(ev, int64(ev))
	}
	// Epochs 0 and 1: bracket closed, no fine records.
	step()
	sc.Snapshot(10)
	step()
	sc.Snapshot(20)
	if len(rec.FineRecords()) != 0 {
		t.Fatalf("fine records before bracket: %d", len(rec.FineRecords()))
	}
	// After the 2nd snapshot, epoch counter is 2 == FineAtEpoch: open.
	step()
	step()
	sc.Snapshot(30)
	step()
	sc.Snapshot(40)
	inBracket := len(rec.FineRecords())
	if inBracket != 3 {
		t.Fatalf("fine records in bracket: %d, want 3", inBracket)
	}
	// Epoch counter is now 4 > FineAtEpoch+1: closed again.
	step()
	if len(rec.FineRecords()) != inBracket {
		t.Fatal("fine records accrued after bracket closed")
	}
	// Fine digests chain: record events and monotone event indices.
	f := rec.FineRecords()
	if f[0].Event != 3 || f[1].Event != 4 || f[2].Event != 5 {
		t.Fatalf("fine event indices %d,%d,%d", f[0].Event, f[1].Event, f[2].Event)
	}
	if f[0].Digest == f[1].Digest {
		t.Fatal("fine chain not folded")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	rec := New(Config{Seed: 77, EpochNs: 500, Fine: true, FineAtEpoch: 0})
	sc := rec.ScopeFor("eng")
	c := &counter{}
	sc.Register(ComponentEngine, "engine", c)
	sc.Register(ComponentRand, "flows", c)

	sc.FineSnapshot(1, 100)
	sc.Snapshot(500)
	c.n = 5
	sc.FineSnapshot(2, 700)
	sc.Snapshot(1000)

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	tl, err := ReadTimeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Seed != 77 || tl.EpochNs != 500 {
		t.Fatalf("header round-trip: seed %d epoch %d", tl.Seed, tl.EpochNs)
	}
	if len(tl.Records) != len(rec.Records()) {
		t.Fatalf("records: %d vs %d", len(tl.Records), len(rec.Records()))
	}
	for i, r := range rec.Records() {
		if tl.Records[i] != r {
			t.Fatalf("record %d: %+v vs %+v", i, tl.Records[i], r)
		}
	}
	if len(tl.Fine) != len(rec.FineRecords()) {
		t.Fatalf("fine: %d vs %d", len(tl.Fine), len(rec.FineRecords()))
	}
	for i, f := range rec.FineRecords() {
		if tl.Fine[i] != f {
			t.Fatalf("fine %d: %+v vs %+v", i, tl.Fine[i], f)
		}
	}
}

func TestReadTimelineErrors(t *testing.T) {
	if _, err := ReadTimeline(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	noHeader := `{"scope":"cell0","epoch":0,"at_ns":0,"component":"engine","digest":"00000000000000aa"}` + "\n"
	if _, err := ReadTimeline(bytes.NewReader([]byte(noHeader))); err == nil {
		t.Fatal("headerless stream accepted")
	}
	badComp := `{"fingerprint":true,"seed":"0000000000000001","epoch_ns":1000,"epoch":0,"at_ns":0}` + "\n" +
		`{"scope":"cell0","epoch":0,"at_ns":0,"component":"warpdrive","digest":"00000000000000aa"}` + "\n"
	if _, err := ReadTimeline(bytes.NewReader([]byte(badComp))); err == nil {
		t.Fatal("unknown component accepted")
	}
	badHex := `{"fingerprint":true,"seed":"0000000000000001","epoch_ns":1000,"epoch":0,"at_ns":0}` + "\n" +
		`{"scope":"cell0","epoch":0,"at_ns":0,"component":"engine","digest":"zz"}` + "\n"
	if _, err := ReadTimeline(bytes.NewReader([]byte(badHex))); err == nil {
		t.Fatal("bad digest hex accepted")
	}
}

func TestSnapshotZeroAlloc(t *testing.T) {
	rec := New(Config{RecordCap: 1 << 15})
	sc := rec.ScopeFor("eng")
	comps := make([]*counter, 4)
	for i := range comps {
		comps[i] = &counter{}
		sc.Register(ComponentPort, "port", comps[i])
	}
	at := int64(0)
	allocs := testing.AllocsPerRun(200, func() {
		for i := range comps {
			comps[i].n++
		}
		at += 1000
		sc.Snapshot(at)
	})
	if allocs != 0 { //tcnlint:floatexact AllocsPerRun of a zero-alloc run is exactly 0
		t.Fatalf("Snapshot allocates in steady state: %v allocs/op", allocs)
	}
}

func TestFineSnapshotZeroAlloc(t *testing.T) {
	rec := New(Config{Fine: true, FineAtEpoch: 0})
	// Preallocate the fine store so append doesn't grow mid-measurement.
	rec.fine = make([]FineRecord, 0, 1<<12)
	sc := rec.ScopeFor("eng")
	c := &counter{}
	sc.Register(ComponentEngine, "engine", c)
	ev := uint64(0)
	allocs := testing.AllocsPerRun(200, func() {
		ev++
		c.n++
		sc.FineSnapshot(ev, int64(ev))
	})
	if allocs != 0 { //tcnlint:floatexact AllocsPerRun of a zero-alloc run is exactly 0
		t.Fatalf("FineSnapshot allocates: %v allocs/op", allocs)
	}
}
