package digest

import "testing"

// makeTimeline builds a timeline with one scope, two components, and
// nepochs epochs of chained digests derived from the state function.
func makeTimeline(seed uint64, nepochs int, state func(epoch int, comp Component) int64) *Timeline {
	rec := New(Config{Seed: seed, EpochNs: 1000})
	sc := rec.ScopeFor("eng")
	e := &counter{}
	q := &counter{}
	sc.Register(ComponentEngine, "engine", e)
	sc.Register(ComponentQdisc, "q0", q)
	for ep := 0; ep < nepochs; ep++ {
		e.n = state(ep, ComponentEngine)
		q.n = state(ep, ComponentQdisc)
		sc.Snapshot(int64(ep) * 1000)
	}
	return rec.Timeline()
}

func TestCompareIdentical(t *testing.T) {
	f := func(ep int, c Component) int64 { return int64(ep) * 7 }
	a := makeTimeline(1, 50, f)
	b := makeTimeline(1, 50, f)
	rep := Compare(a, b)
	if !rep.Identical {
		t.Fatalf("identical runs diverged: %+v", rep.Divergence)
	}
	if rep.RecordsA != 100 || rep.RecordsB != 100 {
		t.Fatalf("record counts %d/%d", rep.RecordsA, rep.RecordsB)
	}
}

func TestCompareLocalizesEpochAndComponent(t *testing.T) {
	f := func(ep int, c Component) int64 { return int64(ep) }
	// b's qdisc state diverges starting at epoch 31; engine stays equal.
	g := func(ep int, c Component) int64 {
		if c == ComponentQdisc && ep >= 31 {
			return int64(ep) + 1000
		}
		return int64(ep)
	}
	rep := Compare(makeTimeline(1, 50, f), makeTimeline(1, 50, g))
	if rep.Identical {
		t.Fatal("divergent runs compared identical")
	}
	d := rep.Divergence
	if d.Kind != "epoch" {
		t.Fatalf("kind %q", d.Kind)
	}
	if d.Epoch != 31 || d.Component != ComponentQdisc || d.Label != "q0" || d.Scope != "cell0" {
		t.Fatalf("localized to epoch %d component %s label %q scope %s; want 31/qdisc/q0/cell0",
			d.Epoch, d.Component, d.Label, d.Scope)
	}
	if d.At != 31000 {
		t.Fatalf("At %d, want 31000", d.At)
	}
	if d.Event != -1 {
		t.Fatalf("Event %d without fine records, want -1", d.Event)
	}
	if d.DigestA == d.DigestB {
		t.Fatal("divergence digests equal")
	}
}

func TestCompareEarliestAcrossComponents(t *testing.T) {
	f := func(ep int, c Component) int64 { return int64(ep) }
	// Engine diverges at epoch 10, qdisc at epoch 5: report qdisc@5.
	g := func(ep int, c Component) int64 {
		if c == ComponentEngine && ep >= 10 {
			return -1
		}
		if c == ComponentQdisc && ep >= 5 {
			return -2
		}
		return int64(ep)
	}
	rep := Compare(makeTimeline(1, 20, f), makeTimeline(1, 20, g))
	d := rep.Divergence
	if d == nil || d.Epoch != 5 || d.Component != ComponentQdisc {
		t.Fatalf("divergence %+v, want qdisc at epoch 5", d)
	}
}

func TestCompareHeaderMismatch(t *testing.T) {
	f := func(ep int, c Component) int64 { return int64(ep) }
	rep := Compare(makeTimeline(1, 5, f), makeTimeline(2, 5, f))
	if rep.Identical || rep.Divergence.Kind != "header" {
		t.Fatalf("seed mismatch not reported as header divergence: %+v", rep.Divergence)
	}
	a := makeTimeline(1, 5, f)
	b := makeTimeline(1, 5, f)
	b.EpochNs = 2000
	rep = Compare(a, b)
	if rep.Identical || rep.Divergence.Kind != "header" {
		t.Fatalf("epoch period mismatch not reported: %+v", rep.Divergence)
	}
}

func TestCompareShapeMismatch(t *testing.T) {
	f := func(ep int, c Component) int64 { return int64(ep) }
	rep := Compare(makeTimeline(1, 5, f), makeTimeline(1, 8, f))
	if rep.Identical || rep.Divergence.Kind != "shape" {
		t.Fatalf("length mismatch not reported as shape divergence: %+v", rep.Divergence)
	}
}

// TestCompareDigestDivergenceBeatsLaterShapeMismatch is the real-world
// perturbed-seed shape: run B's state diverges early AND its run ends
// after fewer epochs, so the record streams also misalign structurally
// partway through. The early epoch divergence is the useful answer; the
// structural mismatch is only the fallback.
func TestCompareDigestDivergenceBeatsLaterShapeMismatch(t *testing.T) {
	f := func(ep int, c Component) int64 { return int64(ep) }
	g := func(ep int, c Component) int64 {
		if c == ComponentQdisc && ep >= 3 {
			return -7
		}
		return int64(ep)
	}
	// Two serial cells per run, like a sweep: run B's first cell is both
	// divergent from epoch 3 and ends after fewer epochs, so partway
	// through the streams a cell0 record in A faces a cell1 record in B —
	// the structural mismatch sits in the middle of the stream, after the
	// digest divergence.
	twoCells := func(n0 int, state func(int, Component) int64) *Timeline {
		rec := New(Config{Seed: 1, EpochNs: 1000})
		for cell, n := range []int{n0, 10} {
			sc := rec.ScopeFor(cell)
			c := &counter{}
			sc.Register(ComponentQdisc, "q0", c)
			for ep := 0; ep < n; ep++ {
				if cell == 0 {
					c.n = state(ep, ComponentQdisc)
				} else {
					c.n = int64(ep)
				}
				sc.Snapshot(int64(ep) * 1000)
			}
		}
		return rec.Timeline()
	}
	rep := Compare(twoCells(50, f), twoCells(40, g))
	d := rep.Divergence
	if d == nil || d.Kind != "epoch" {
		t.Fatalf("divergence %+v, want epoch kind despite the mid-stream misalignment", d)
	}
	if d.Epoch != 3 || d.Component != ComponentQdisc || d.Scope != "cell0" {
		t.Fatalf("localized to epoch %d component %s scope %s, want 3/qdisc/cell0", d.Epoch, d.Component, d.Scope)
	}

	// Pure shape mismatch (no digest divergence in the aligned prefix)
	// still reports shape.
	rep = Compare(makeTimeline(1, 50, f), makeTimeline(1, 40, f))
	if rep.Divergence == nil || rep.Divergence.Kind != "shape" {
		t.Fatalf("divergence %+v, want shape when prefixes agree", rep.Divergence)
	}
}

func TestCompareFineLocalizesEvent(t *testing.T) {
	build := func(divergeAt uint64) *Timeline {
		rec := New(Config{Seed: 3, Fine: true, FineAtEpoch: 0})
		sc := rec.ScopeFor("eng")
		c := &counter{}
		sc.Register(ComponentEngine, "engine", c)
		for ev := uint64(1); ev <= 100; ev++ {
			c.n++
			if divergeAt != 0 && ev >= divergeAt {
				c.n += 1000
			}
			sc.FineSnapshot(ev, int64(ev)*10)
		}
		sc.Snapshot(1000) // epoch 0 closes; chains now differ too
		return rec.Timeline()
	}
	rep := Compare(build(0), build(42))
	if rep.Identical {
		t.Fatal("fine-divergent runs compared identical")
	}
	d := rep.Divergence
	if d.Event != 42 {
		t.Fatalf("fine search localized event %d, want 42", d.Event)
	}
	if d.EventAt != 420 {
		t.Fatalf("EventAt %d, want 420", d.EventAt)
	}
}

func TestCompareFineOnlyDivergence(t *testing.T) {
	// Transient divergence: states differ during the epoch but reconverge
	// before the snapshot, so only the fine chains catch it.
	build := func(perturb bool) *Timeline {
		rec := New(Config{Seed: 3, Fine: true, FineAtEpoch: 0})
		sc := rec.ScopeFor("eng")
		c := &counter{}
		sc.Register(ComponentEngine, "engine", c)
		for ev := uint64(1); ev <= 10; ev++ {
			c.n = int64(ev)
			if perturb && ev == 5 {
				c.n = 99
			}
			sc.FineSnapshot(ev, int64(ev))
		}
		c.n = 10 // reconverged
		sc.Snapshot(1000)
		return rec.Timeline()
	}
	rep := Compare(build(false), build(true))
	if rep.Identical {
		t.Fatal("transient divergence missed")
	}
	d := rep.Divergence
	if d.Kind != "fine" || d.Event != 5 {
		t.Fatalf("divergence %+v, want fine at event 5", d)
	}
}

func TestDivergenceString(t *testing.T) {
	d := &Divergence{Kind: "epoch", Scope: "cell0", Component: ComponentQdisc,
		Label: "q0", Epoch: 31, At: 31000, Event: 512, EventAt: 31042,
		DigestA: 0xaa, DigestB: 0xbb}
	s := d.String()
	for _, want := range []string{"epoch 31", "qdisc", "q0", "cell0", "event 512"} {
		if !contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
