package digest

import (
	"fmt"
	"sort"
)

// Divergence localizes the first difference between two timelines.
type Divergence struct {
	// Kind is "header" (incomparable parameters), "shape" (record
	// streams differ structurally), "epoch" (a component's chained
	// digest first differs at Epoch), or "fine" (located only by the
	// per-event records).
	Kind string

	Scope     string
	Component Component
	Label     string
	Epoch     int64
	At        int64 // sim ns of the divergent epoch record

	// Event is the first divergent event index (engine executed-event
	// count), localized by binary search over the fine records; -1 when
	// no fine records bracket the divergence — rerun both sides with the
	// fine bracket set to Epoch to obtain it.
	Event   int64
	EventAt int64 // sim ns of the divergent event; 0 when Event is -1

	DigestA uint64
	DigestB uint64

	// Detail carries the human explanation for header/shape kinds.
	Detail string
}

// Report is the outcome of comparing two timelines.
type Report struct {
	Identical  bool
	RecordsA   int
	RecordsB   int
	Divergence *Divergence // nil when Identical
}

// seriesKey identifies one digest chain across a timeline.
type seriesKey struct {
	scope string
	comp  Component
	label string
}

// Compare performs first-divergence search over two timelines. The
// digests are chained, so a series that diverges at epoch E mismatches at
// every epoch >= E; that monotonicity lets the search binary-search each
// chain (and the fine records) instead of scanning, after one linear pass
// that only checks structural alignment.
func Compare(a, b *Timeline) Report {
	rep := Report{RecordsA: len(a.Records), RecordsB: len(b.Records)}
	if a.Seed != b.Seed || a.EpochNs != b.EpochNs {
		rep.Divergence = &Divergence{
			Kind:  "header",
			Event: -1,
			Detail: fmt.Sprintf("timelines are not comparable: seed %016x/%016x, epoch %dns/%dns",
				a.Seed, b.Seed, a.EpochNs, b.EpochNs),
		}
		return rep
	}

	// Structural alignment over the common prefix: identical configs
	// snapshot identical (scope, epoch, component, label) sequences even
	// when the digests differ. A key mismatch truncates the aligned
	// prefix but is NOT reported yet — a state divergence earlier in the
	// prefix (e.g. a run that ends after fewer epochs because its state
	// diverged long before) is the more useful localization, so the
	// digest search below runs first and the shape mismatch is only the
	// fallback.
	n := len(a.Records)
	if len(b.Records) < n {
		n = len(b.Records)
	}
	var shape *Divergence
	for i := 0; i < n; i++ {
		ra, rb := a.Records[i], b.Records[i]
		if ra.Scope != rb.Scope || ra.Epoch != rb.Epoch || ra.Component != rb.Component || ra.Label != rb.Label {
			shape = &Divergence{
				Kind: "shape", Scope: ra.Scope, Component: ra.Component, Label: ra.Label,
				Epoch: ra.Epoch, At: ra.At, Event: -1,
				Detail: fmt.Sprintf("record %d differs structurally: a=(%s %s %q epoch %d) b=(%s %s %q epoch %d)",
					i, ra.Scope, ra.Component, ra.Label, ra.Epoch, rb.Scope, rb.Component, rb.Label, rb.Epoch),
			}
			n = i
			break
		}
	}

	// Group the aligned prefix into per-component chains, preserving
	// first-appearance order so the reported divergence is deterministic
	// without ranging a map.
	byKey := map[seriesKey][]int{}
	var order []seriesKey
	for i := 0; i < n; i++ {
		k := seriesKey{scope: a.Records[i].Scope, comp: a.Records[i].Component, label: a.Records[i].Label}
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], i)
	}

	// For each chain whose final digests disagree, binary-search the
	// first mismatching epoch; keep the divergence with the smallest
	// record index (the earliest epoch in file order).
	best := -1
	for _, k := range order {
		idx := byKey[k]
		last := idx[len(idx)-1]
		if a.Records[last].Digest == b.Records[last].Digest {
			continue // chained: equal at the end means equal throughout
		}
		j := sort.Search(len(idx), func(j int) bool {
			return a.Records[idx[j]].Digest != b.Records[idx[j]].Digest
		})
		if best < 0 || idx[j] < best {
			best = idx[j]
		}
	}
	if best >= 0 {
		ra, rb := a.Records[best], b.Records[best]
		d := &Divergence{
			Kind: "epoch", Scope: ra.Scope, Component: ra.Component, Label: ra.Label,
			Epoch: ra.Epoch, At: ra.At, Event: -1,
			DigestA: ra.Digest, DigestB: rb.Digest,
		}
		if ev, at, ok := fineSearch(a, b, ra.Scope); ok {
			d.Event, d.EventAt = ev, at
		}
		rep.Divergence = d
		return rep
	}

	if shape != nil {
		rep.Divergence = shape
		return rep
	}
	if len(a.Records) != len(b.Records) {
		longer := a.Records
		if len(b.Records) > len(a.Records) {
			longer = b.Records
		}
		r := longer[n]
		rep.Divergence = &Divergence{
			Kind: "shape", Scope: r.Scope, Component: r.Component, Label: r.Label,
			Epoch: r.Epoch, At: r.At, Event: -1,
			Detail: fmt.Sprintf("timelines agree for %d records, then lengths differ (a=%d, b=%d): one run took more epochs",
				n, len(a.Records), len(b.Records)),
		}
		return rep
	}

	// Epoch chains agree end to end; fine records (if any) can still
	// catch a transient divergence inside the bracket.
	if ev, at, ok := fineDivergence(a, b); ok {
		rep.Divergence = &Divergence{Kind: "fine", Event: ev, EventAt: at,
			Detail: "epoch chains agree but the per-event fine records diverge"}
		return rep
	}

	rep.Identical = true
	return rep
}

// fineSearch binary-searches the fine records of one scope for the first
// divergent event index. The fine digest is chained over the whole scope,
// so mismatch is monotone in the event sequence.
func fineSearch(a, b *Timeline, scope string) (event int64, at int64, ok bool) {
	fa := fineOf(a, scope)
	fb := fineOf(b, scope)
	n := len(fa)
	if len(fb) < n {
		n = len(fb)
	}
	if n == 0 {
		return 0, 0, false
	}
	// Alignment: the two runs may execute different event counts inside
	// the bracket; compare positionally only while the event indices
	// agree.
	for n > 0 && (fa[n-1].Event != fb[n-1].Event) {
		n--
	}
	if n == 0 || fa[n-1].Digest == fb[n-1].Digest {
		// Either no aligned prefix, or the aligned prefix agrees — then
		// the first divergent event is the first unaligned one, if any.
		if len(fa) > n && len(fb) > n {
			return int64(fa[n].Event), fa[n].At, true
		}
		return 0, 0, false
	}
	j := sort.Search(n, func(j int) bool { return fa[j].Digest != fb[j].Digest })
	return int64(fa[j].Event), fa[j].At, true
}

// fineDivergence scans every scope present in a for a fine divergence.
func fineDivergence(a, b *Timeline) (event int64, at int64, ok bool) {
	seen := map[string]bool{}
	for _, f := range a.Fine {
		if seen[f.Scope] {
			continue
		}
		seen[f.Scope] = true
		if ev, evAt, found := fineSearch(a, b, f.Scope); found {
			return ev, evAt, true
		}
	}
	return 0, 0, false
}

// fineOf filters a timeline's fine records to one scope. Fine records are
// appended in event order per scope, so the filtered slice is sorted.
func fineOf(t *Timeline, scope string) []FineRecord {
	var out []FineRecord
	for _, f := range t.Fine {
		if f.Scope == scope {
			out = append(out, f)
		}
	}
	return out
}

// String renders the divergence for the human report.
func (d *Divergence) String() string {
	switch d.Kind {
	case "header", "shape":
		return d.Detail
	case "fine":
		return fmt.Sprintf("first divergent event %d (t=%dns): %s", d.Event, d.EventAt, d.Detail)
	}
	s := fmt.Sprintf("first divergence at epoch %d (t=%dns): %s %q in scope %s (a=%016x b=%016x)",
		d.Epoch, d.At, d.Component, d.Label, d.Scope, d.DigestA, d.DigestB)
	if d.Event >= 0 {
		s += fmt.Sprintf("; first divergent event %d (t=%dns)", d.Event, d.EventAt)
	}
	return s
}
