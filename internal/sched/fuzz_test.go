package sched_test

import (
	"testing"

	"tcn/internal/pkt"
	"tcn/internal/queue"
	"tcn/internal/sched"
	"tcn/internal/sim"
)

// fuzzScheduler drives a scheduler with an arbitrary interleaving of
// enqueues and dequeues decoded from ops, then drains it, checking the
// two contracts every port relies on: Next never selects an empty queue,
// and the discipline is work conserving (Next returns -1 only when all
// queues are empty). Byte and packet totals must balance after the drain
// — with `-tags=invariants` the queue.Buffer cross-checks its own
// accounting on every operation too.
func fuzzScheduler(t *testing.T, s sched.Scheduler, nq int, ops []byte) {
	buf := queue.NewBuffer(nq, 0, 0)
	s.Bind(buf)
	now := sim.Time(0)
	enqueued, dequeued := 0, 0
	enqBytes, deqBytes := 0, 0

	dequeueOne := func() {
		qi := s.Next(now)
		total := 0
		for i := 0; i < nq; i++ {
			total += buf.Len(i)
		}
		if qi < 0 {
			if total != 0 {
				t.Fatalf("%s: Next = -1 with %d packets queued", s.Name(), total)
			}
			return
		}
		if buf.Len(qi) == 0 {
			t.Fatalf("%s: Next chose empty queue %d", s.Name(), qi)
		}
		p := buf.Pop(qi)
		s.OnDequeue(now, qi, p)
		dequeued++
		deqBytes += p.Size
	}

	for _, op := range ops {
		now += sim.Time(1+op%7) * sim.Microsecond
		if op&0x80 != 0 {
			dequeueOne()
			continue
		}
		qi := int(op) % nq
		p := &pkt.Packet{Size: 64 + int(op)*11%1437, ECN: pkt.ECT0, EnqueuedAt: now}
		if !buf.Push(qi, p) {
			t.Fatalf("unlimited buffer rejected a packet")
		}
		s.OnEnqueue(now, qi, p)
		enqueued++
		enqBytes += p.Size
	}
	// Drain completely: a work-conserving scheduler must surface every
	// remaining packet.
	remaining := enqueued - dequeued
	for i := 0; i < remaining; i++ {
		now += sim.Microsecond
		dequeueOne()
	}
	if dequeued != enqueued || deqBytes != enqBytes {
		t.Fatalf("%s: enq %d pkts/%d B but deq %d pkts/%d B",
			s.Name(), enqueued, enqBytes, dequeued, deqBytes)
	}
	if qi := s.Next(now); qi >= 0 {
		t.Fatalf("%s: Next = %d on a drained port", s.Name(), qi)
	}
	if !buf.Empty() {
		t.Fatalf("buffer not empty after full drain")
	}
}

func FuzzDWRRAccounting(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0x80, 3, 0x81, 0x82})
	f.Add([]byte{0x80})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		fuzzScheduler(t, sched.NewDWRREqual(4, 1500), 4, ops)
	})
}

func FuzzWFQAccounting(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0x80, 3, 0x81, 0x82})
	f.Add([]byte{0x80})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		fuzzScheduler(t, sched.NewWFQEqual(4), 4, ops)
	})
}
