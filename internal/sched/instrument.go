package sched

import (
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// Instrument wraps s so every Scheduler call is bracketed by enter/exit —
// the cost profiler's scope push/pop. The wrapper is installed on a
// port's hot-path scheduler reference only when a profiler is attached,
// so unprofiled runs pay nothing; digest and accessor paths keep the
// unwrapped scheduler (profiling must not change fingerprint shape).
// Bind is forwarded unbracketed: it runs once at setup.
func Instrument(s Scheduler, enter, exit func()) Scheduler {
	return &instrumented{s: s, enter: enter, exit: exit}
}

type instrumented struct {
	s     Scheduler
	enter func()
	exit  func()
}

func (w *instrumented) Name() string { return w.s.Name() }

func (w *instrumented) Bind(v View) { w.s.Bind(v) }

func (w *instrumented) OnEnqueue(now sim.Time, i int, p *pkt.Packet) {
	w.enter()
	w.s.OnEnqueue(now, i, p)
	w.exit()
}

func (w *instrumented) Next(now sim.Time) int {
	w.enter()
	i := w.s.Next(now)
	w.exit()
	return i
}

func (w *instrumented) OnDequeue(now sim.Time, i int, p *pkt.Packet) {
	w.enter()
	w.s.OnDequeue(now, i, p)
	w.exit()
}

// Underlying returns the wrapped scheduler.
func (w *instrumented) Underlying() Scheduler { return w.s }
