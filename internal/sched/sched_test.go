package sched

import (
	"testing"
	"testing/quick"

	"tcn/internal/pkt"
	"tcn/internal/queue"
	"tcn/internal/sim"
)

// harness drives a scheduler against a real buffer, simulating an
// always-busy link: every step enqueues or dequeues and tracks served
// bytes per queue.
type harness struct {
	t   *testing.T
	buf *queue.Buffer
	s   Scheduler
	now sim.Time

	served     []int // bytes dequeued per queue
	servedPkts []int
	lastServed int
	serveOrder []int
}

func newHarness(t *testing.T, s Scheduler, queues int) *harness {
	h := &harness{
		t:          t,
		buf:        queue.NewBuffer(queues, 0, 0),
		s:          s,
		served:     make([]int, queues),
		servedPkts: make([]int, queues),
	}
	s.Bind(h.buf)
	return h
}

func (h *harness) push(qi, size int) {
	p := &pkt.Packet{Size: size, DSCP: uint8(qi)}
	if !h.buf.Push(qi, p) {
		h.t.Fatalf("push rejected")
	}
	h.s.OnEnqueue(h.now, qi, p)
}

// serve dequeues one packet, advancing time by its serialization at a
// nominal 1 byte/ns.
func (h *harness) serve() int {
	qi := h.s.Next(h.now)
	if qi < 0 {
		return -1
	}
	p := h.buf.Pop(qi)
	if p == nil {
		h.t.Fatalf("scheduler %s chose empty queue %d", h.s.Name(), qi)
	}
	h.now += sim.Time(p.Size)
	h.s.OnDequeue(h.now, qi, p)
	h.served[qi] += p.Size
	h.servedPkts[qi]++
	h.lastServed = qi
	h.serveOrder = append(h.serveOrder, qi)
	return qi
}

func TestSPServesStrictly(t *testing.T) {
	h := newHarness(t, NewSP(), 3)
	for i := 0; i < 5; i++ {
		h.push(2, 100)
		h.push(1, 100)
	}
	h.push(0, 100)
	if q := h.serve(); q != 0 {
		t.Fatalf("first service went to queue %d, want 0", q)
	}
	// With queue 0 empty, queue 1 must drain before queue 2.
	for i := 0; i < 5; i++ {
		if q := h.serve(); q != 1 {
			t.Fatalf("service %d went to queue %d, want 1", i, q)
		}
	}
	// A late high-priority arrival preempts immediately.
	h.push(0, 100)
	if q := h.serve(); q != 0 {
		t.Fatal("high-priority arrival should be served next")
	}
}

func TestFIFOSingleQueue(t *testing.T) {
	h := newHarness(t, NewFIFO(), 1)
	h.push(0, 100)
	h.push(0, 200)
	if h.serve() != 0 || h.serve() != 0 || h.serve() != -1 {
		t.Fatal("FIFO service broken")
	}
}

// backlogAll loads every queue with n packets and serves only half the
// total, so every queue stays backlogged and the shares reflect the
// scheduling policy rather than eventual drain.
func backlogAll(t *testing.T, s Scheduler, queues, n, size int) []int {
	h := newHarness(t, s, queues)
	for q := 0; q < queues; q++ {
		for i := 0; i < n; i++ {
			h.push(q, size)
		}
	}
	for i := 0; i < queues*n/2; i++ {
		if h.serve() < 0 {
			break
		}
	}
	return h.served
}

func TestDWRREqualSharesUnderBacklog(t *testing.T) {
	served := backlogAll(t, NewDWRREqual(4, 1500), 4, 200, 1500)
	for q := 1; q < 4; q++ {
		if served[q] != served[0] {
			t.Fatalf("unequal DWRR shares: %v", served)
		}
	}
}

func TestDWRRWeightedShares(t *testing.T) {
	// Quanta 1500:4500 should yield a 1:3 byte split while both stay
	// backlogged.
	s := NewDWRR([]int{1500, 4500})
	h := newHarness(t, s, 2)
	for q := 0; q < 2; q++ {
		for i := 0; i < 400; i++ {
			h.push(q, 1500)
		}
	}
	for i := 0; i < 400; i++ { // serve while both backlogged
		h.serve()
	}
	ratio := float64(h.served[1]) / float64(h.served[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weighted DWRR ratio %.2f, want ~3", ratio)
	}
}

func TestDWRRVariablePacketSizes(t *testing.T) {
	// Byte fairness must hold even when one queue uses small packets.
	s := NewDWRREqual(2, 1500)
	h := newHarness(t, s, 2)
	for i := 0; i < 600; i++ {
		h.push(0, 1500)
	}
	for i := 0; i < 1800; i++ {
		h.push(1, 500)
	}
	for i := 0; i < 800; i++ {
		h.serve()
	}
	ratio := float64(h.served[0]) / float64(h.served[1])
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("byte fairness ratio %.2f, want ~1 (served %v)", ratio, h.served)
	}
}

func TestDWRRSkipsEmptyQueues(t *testing.T) {
	h := newHarness(t, NewDWRREqual(3, 1500), 3)
	h.push(1, 1000)
	if q := h.serve(); q != 1 {
		t.Fatalf("served %d, want 1", q)
	}
	if h.serve() != -1 {
		t.Fatal("all empty should return -1")
	}
}

func TestDWRRRoundTimeTracking(t *testing.T) {
	s := NewDWRREqual(2, 1500)
	h := newHarness(t, s, 2)
	for i := 0; i < 20; i++ {
		h.push(0, 1500)
		h.push(1, 1500)
	}
	for i := 0; i < 20; i++ {
		h.serve()
	}
	// Each round serves one packet per queue (quantum = packet size) at
	// 1 byte/ns: the turn-to-turn interval is 2×1500 ns.
	if rt := s.RoundTime(0); rt != 3000 {
		t.Fatalf("round time %v, want 3000ns", rt)
	}
	if s.Quantum(0) != 1500 {
		t.Fatal("quantum accessor wrong")
	}
	if s.LastDequeue(0) == 0 {
		t.Fatal("last dequeue not tracked")
	}
}

func TestWRRPacketWeights(t *testing.T) {
	s := NewWRR([]int{1, 3})
	h := newHarness(t, s, 2)
	for q := 0; q < 2; q++ {
		for i := 0; i < 400; i++ {
			h.push(q, 1500)
		}
	}
	for i := 0; i < 400; i++ { // keep both backlogged
		h.serve()
	}
	served := h.served
	ratio := float64(served[1]) / float64(served[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("WRR ratio %.2f, want ~3", ratio)
	}
	if s.Name() != "WRR" {
		t.Fatal("name")
	}
}

func TestRRAlternates(t *testing.T) {
	h := newHarness(t, NewRR(2), 2)
	for i := 0; i < 6; i++ {
		h.push(0, 1500)
		h.push(1, 1500)
	}
	for i := 0; i < 12; i++ {
		h.serve()
	}
	for i := 2; i < len(h.serveOrder); i++ {
		if h.serveOrder[i] == h.serveOrder[i-1] {
			t.Fatalf("RR did not alternate: %v", h.serveOrder)
		}
	}
}

func TestWFQEqualSharesUnderBacklog(t *testing.T) {
	served := backlogAll(t, NewWFQEqual(4), 4, 200, 1500)
	for q := 1; q < 4; q++ {
		if served[q] != served[0] {
			t.Fatalf("unequal WFQ shares: %v", served)
		}
	}
}

func TestWFQWeightedShares(t *testing.T) {
	s := NewWFQ([]float64{1, 3})
	h := newHarness(t, s, 2)
	for q := 0; q < 2; q++ {
		for i := 0; i < 400; i++ {
			h.push(q, 1500)
		}
	}
	for i := 0; i < 400; i++ {
		h.serve()
	}
	ratio := float64(h.served[1]) / float64(h.served[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weighted WFQ ratio %.2f, want ~3", ratio)
	}
}

func TestWFQByteFairnessMixedSizes(t *testing.T) {
	s := NewWFQEqual(2)
	h := newHarness(t, s, 2)
	for i := 0; i < 400; i++ {
		h.push(0, 1500)
	}
	for i := 0; i < 4000; i++ {
		h.push(1, 150)
	}
	for i := 0; i < 1000; i++ {
		h.serve()
	}
	ratio := float64(h.served[0]) / float64(h.served[1])
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("WFQ byte fairness ratio %.2f (served %v)", ratio, h.served)
	}
}

func TestWFQIdleReset(t *testing.T) {
	s := NewWFQEqual(2)
	h := newHarness(t, s, 2)
	// Busy period 1: queue 0 sends a lot, accumulating a high finish tag.
	for i := 0; i < 100; i++ {
		h.push(0, 1500)
	}
	for i := 0; i < 100; i++ {
		h.serve()
	}
	// System idle. Busy period 2: both queues arrive; queue 0 must not
	// be penalized by its period-1 tags.
	for i := 0; i < 50; i++ {
		h.push(0, 1500)
		h.push(1, 1500)
	}
	before := h.served[0]
	for i := 0; i < 50; i++ {
		h.serve()
	}
	got0 := h.served[0] - before
	if got0 < 30_000 || got0 > 45_000 {
		t.Fatalf("queue 0 served %d bytes in period 2, want ~half of 75000", got0)
	}
}

func TestSPOverDWRRComposite(t *testing.T) {
	s := NewSPOver(1, NewDWRREqual(2, 1500))
	h := newHarness(t, s, 3)
	if s.Name() != "SP/DWRR" || s.HighQueues() != 1 {
		t.Fatal("composite metadata")
	}
	for i := 0; i < 10; i++ {
		h.push(1, 1500)
		h.push(2, 1500)
	}
	h.push(0, 100)
	if h.serve() != 0 {
		t.Fatal("strict queue must preempt")
	}
	// Low queues split evenly afterwards.
	for i := 0; i < 20; i++ {
		h.serve()
	}
	if h.served[1] != h.served[2] {
		t.Fatalf("low-priority shares unequal: %v", h.served)
	}
	// Strict traffic injected mid-stream is served next.
	h.push(0, 100)
	h.push(1, 1500)
	if h.serve() != 0 {
		t.Fatal("strict queue must preempt mid-stream")
	}
}

func TestSPOverWFQComposite(t *testing.T) {
	s := NewSPOver(2, NewWFQEqual(2))
	h := newHarness(t, s, 4)
	h.push(3, 1500)
	h.push(1, 1500)
	h.push(0, 1500)
	if h.serve() != 0 || h.serve() != 1 || h.serve() != 3 {
		t.Fatal("two-level SP ordering wrong")
	}
}

func TestPIFORankOrder(t *testing.T) {
	// Rank = negative packet size: largest packet first, regardless of
	// queue — an "arbitrary" policy neither RR nor SP can express.
	s := NewPIFO(func(_ sim.Time, _ int, p *pkt.Packet) float64 { return -float64(p.Size) })
	h := newHarness(t, s, 3)
	h.push(0, 100)
	h.push(1, 300)
	h.push(2, 200)
	if h.serve() != 1 || h.serve() != 2 || h.serve() != 0 {
		t.Fatalf("PIFO rank order violated: %v", h.serveOrder)
	}
}

func TestPIFONilRankIsGlobalFIFO(t *testing.T) {
	s := NewPIFO(nil)
	h := newHarness(t, s, 2)
	h.push(1, 100)
	h.push(0, 100)
	h.push(1, 100)
	want := []int{1, 0, 1}
	for _, w := range want {
		if got := h.serve(); got != w {
			t.Fatalf("global FIFO order violated, got queue %d want %d", got, w)
		}
	}
}

// Property: every scheduler is work conserving — Next returns -1 iff all
// queues are empty — under arbitrary enqueue/dequeue interleavings.
func TestPropertyWorkConservation(t *testing.T) {
	mk := map[string]func() Scheduler{
		"sp":      func() Scheduler { return NewSP() },
		"dwrr":    func() Scheduler { return NewDWRREqual(4, 1500) },
		"wfq":     func() Scheduler { return NewWFQEqual(4) },
		"sp-dwrr": func() Scheduler { return NewSPOver(1, NewDWRREqual(3, 1500)) },
		"sp-wfq":  func() Scheduler { return NewSPOver(2, NewWFQEqual(2)) },
		"pifo":    func() Scheduler { return NewPIFO(nil) },
	}
	for name, factory := range mk {
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			f := func(ops []uint8) bool {
				h := newHarness(t, factory(), 4)
				n := 0
				for _, op := range ops {
					if op%2 == 0 {
						h.push(int(op/2)%4, 100+int(op))
						n++
					} else if n > 0 {
						if h.serve() < 0 {
							return false // non-empty but refused
						}
						n--
					}
				}
				// Drain fully.
				for n > 0 {
					if h.serve() < 0 {
						return false
					}
					n--
				}
				return h.serve() == -1
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("dwrr zero quantum", func() { NewDWRR([]int{0}) })
	mustPanic("wrr zero weight", func() { NewWRR([]int{0}) })
	mustPanic("wfq zero weight", func() { NewWFQ([]float64{0}) })
	mustPanic("spover zero high", func() { NewSPOver(0, NewFIFO()) })
	mustPanic("dwrr bind mismatch", func() {
		s := NewDWRREqual(2, 1500)
		s.Bind(queue.NewBuffer(3, 0, 0))
	})
	mustPanic("wfq bind mismatch", func() {
		s := NewWFQEqual(2)
		s.Bind(queue.NewBuffer(3, 0, 0))
	})
	mustPanic("spover bind too few queues", func() {
		s := NewSPOver(2, NewFIFO())
		s.Bind(queue.NewBuffer(2, 0, 0))
	})
}
