package sched

import (
	"fmt"
	"math"

	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// WFQ is weighted fair queueing, implemented as self-clocked fair queueing
// (SCFQ): each packet receives a virtual finish tag
//
//	F = max(V, F_last(queue)) + size/weight
//
// at enqueue, the scheduler serves the queue whose head packet has the
// smallest tag, and the system virtual time V follows the tag of the packet
// in service. This mirrors the paper's qdisc WFQ, which "maintains a
// virtual time for the head packet of each queue" and "chooses the head
// packet with the smallest virtual time to transmit" (§5).
type WFQ struct {
	v          View
	weights    []float64
	vtime      float64
	lastFinish []float64
}

// NewWFQ returns a WFQ scheduler with the given positive per-queue weights.
func NewWFQ(weights []float64) *WFQ {
	w := make([]float64, len(weights))
	copy(w, weights)
	for i, x := range w {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			panic(fmt.Sprintf("sched: WFQ weight[%d]=%v must be positive and finite", i, x))
		}
	}
	return &WFQ{weights: w}
}

// NewWFQEqual returns a WFQ scheduler with n equally weighted queues.
func NewWFQEqual(n int) *WFQ {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return NewWFQ(w)
}

// Name implements Scheduler.
func (s *WFQ) Name() string { return "WFQ" }

// Bind implements Scheduler.
func (s *WFQ) Bind(v View) {
	if v.NumQueues() != len(s.weights) {
		panic(fmt.Sprintf("sched: WFQ configured for %d queues, port has %d",
			len(s.weights), v.NumQueues()))
	}
	s.v = v
	s.lastFinish = make([]float64, len(s.weights))
}

// OnEnqueue implements Scheduler: stamps the packet's virtual finish tag.
func (s *WFQ) OnEnqueue(_ sim.Time, i int, p *pkt.Packet) {
	// An idle system resets virtual time so tags do not grow without
	// bound across busy periods.
	if totalLen(s.v) == 1 { // p itself is the only packet queued
		s.vtime = 0
		for k := range s.lastFinish {
			s.lastFinish[k] = 0
		}
	}
	start := s.vtime
	if s.lastFinish[i] > start {
		start = s.lastFinish[i]
	}
	f := start + float64(p.Size)/s.weights[i]
	p.SchedTag = f
	s.lastFinish[i] = f
}

// Next implements Scheduler: smallest head finish tag wins.
func (s *WFQ) Next(sim.Time) int {
	best := -1
	bestTag := math.Inf(1)
	for i := 0; i < s.v.NumQueues(); i++ {
		if s.v.Len(i) == 0 {
			continue
		}
		if tag := s.v.Head(i).SchedTag; tag < bestTag {
			bestTag = tag
			best = i
		}
	}
	return best
}

// OnDequeue implements Scheduler: the served packet's tag becomes the
// system virtual time (self-clocking).
func (s *WFQ) OnDequeue(_ sim.Time, i int, p *pkt.Packet) {
	s.vtime = p.SchedTag
}
