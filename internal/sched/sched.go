// Package sched implements the packet schedulers the paper evaluates TCN
// over: FIFO, strict priority (SP), round-robin families (RR, WRR, DWRR),
// weighted fair queueing (WFQ, self-clocked as in the paper's qdisc
// prototype), the hierarchical SP/WFQ and SP/DWRR composites, and a
// PIFO-style programmable rank scheduler standing in for the "arbitrary
// schedulers" of §2.2.
//
// A Scheduler decides which queue an egress port serves next. It observes
// queue state through a View and is notified of every enqueue and dequeue
// so it can maintain its own bookkeeping (active lists, deficits, virtual
// time). Schedulers must be work conserving: Next returns -1 only when all
// queues are empty.
package sched

import (
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// View is the read-only queue state a scheduler consults.
type View interface {
	NumQueues() int
	Len(i int) int
	Bytes(i int) int
	Head(i int) *pkt.Packet
}

// Scheduler selects the next queue to serve on an egress port.
type Scheduler interface {
	// Name identifies the discipline in logs and result tables.
	Name() string
	// Bind attaches the scheduler to the queues it will arbitrate.
	// It is called exactly once, before any traffic flows.
	Bind(v View)
	// OnEnqueue is called after packet p has been admitted to queue i.
	OnEnqueue(now sim.Time, i int, p *pkt.Packet)
	// Next returns the queue the port should serve now, or -1 if all
	// queues are empty.
	Next(now sim.Time) int
	// OnDequeue is called after packet p has been removed from queue i.
	OnDequeue(now sim.Time, i int, p *pkt.Packet)
}

// totalLen sums queue lengths; helper shared by disciplines that need to
// detect an idle system.
func totalLen(v View) int {
	n := 0
	for i := 0; i < v.NumQueues(); i++ {
		n += v.Len(i)
	}
	return n
}

// FIFO serves a single queue in arrival order. With multiple queues it
// degenerates to lowest-index-first and is only intended for single-queue
// ports.
type FIFO struct{ v View }

// NewFIFO returns a FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Scheduler.
func (s *FIFO) Name() string { return "FIFO" }

// Bind implements Scheduler.
func (s *FIFO) Bind(v View) { s.v = v }

// OnEnqueue implements Scheduler.
func (s *FIFO) OnEnqueue(sim.Time, int, *pkt.Packet) {}

// Next implements Scheduler.
func (s *FIFO) Next(sim.Time) int {
	for i := 0; i < s.v.NumQueues(); i++ {
		if s.v.Len(i) > 0 {
			return i
		}
	}
	return -1
}

// OnDequeue implements Scheduler.
func (s *FIFO) OnDequeue(sim.Time, int, *pkt.Packet) {}

// SP is strict priority: queue 0 is highest; a queue is served only when
// every higher-priority queue is empty.
type SP struct{ v View }

// NewSP returns a strict-priority scheduler.
func NewSP() *SP { return &SP{} }

// Name implements Scheduler.
func (s *SP) Name() string { return "SP" }

// Bind implements Scheduler.
func (s *SP) Bind(v View) { s.v = v }

// OnEnqueue implements Scheduler.
func (s *SP) OnEnqueue(sim.Time, int, *pkt.Packet) {}

// Next implements Scheduler.
func (s *SP) Next(sim.Time) int {
	for i := 0; i < s.v.NumQueues(); i++ {
		if s.v.Len(i) > 0 {
			return i
		}
	}
	return -1
}

// OnDequeue implements Scheduler.
func (s *SP) OnDequeue(sim.Time, int, *pkt.Packet) {}
