package sched

import "tcn/internal/digest"

// Run-fingerprint support: every stateful scheduler folds its credit and
// bookkeeping state into a digest.Hash so two runs can be compared
// epoch-by-epoch. Implementations digest the stored fields only (never a
// projection that would mutate state) in a fixed order; slices allocated
// by Bind digest as empty before Bind, which is fine because both runs
// bind at the same point in their histories.

// DigestState folds the DWRR credit state into a run fingerprint: per-
// queue deficits, active-list membership and layout, turn flags, and the
// round-time bookkeeping MQ-ECN consumes. WRR shares this via embedding.
func (s *DWRR) DigestState(h *digest.Hash) {
	h.WriteInt(s.head)
	h.WriteInt(s.count)
	h.WriteInt(len(s.deficit))
	for i := range s.deficit {
		h.WriteInt(s.deficit[i])
		h.WriteBool(s.isActive[i])
		h.WriteBool(s.inTurn[i])
		h.WriteInt(s.ring[i])
		h.WriteInt64(int64(s.lastTurnStart[i]))
		h.WriteInt64(int64(s.roundTime[i]))
		h.WriteInt64(int64(s.lastDequeue[i]))
	}
}

// DigestState folds the WFQ virtual-clock state into a run fingerprint:
// the system virtual time and each queue's last finish tag.
func (s *WFQ) DigestState(h *digest.Hash) {
	h.WriteFloat64(s.vtime)
	h.WriteInt(len(s.lastFinish))
	for _, f := range s.lastFinish {
		h.WriteFloat64(f)
	}
}

// DigestState folds the composite's state into a run fingerprint. The
// strict tier is stateless; only the inner discipline carries credit.
func (s *SPOver) DigestState(h *digest.Hash) {
	h.WriteInt(s.high)
	if d, ok := s.inner.(digest.Digestable); ok {
		h.WriteBool(true)
		d.DigestState(h)
	} else {
		h.WriteBool(false)
	}
}

// DigestState folds the PIFO tie-break sequence into a run fingerprint
// (the rank function itself is pure; the sequence is the only state).
func (s *PIFO) DigestState(h *digest.Hash) {
	h.WriteFloat64(s.seq)
}
