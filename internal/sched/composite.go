package sched

import (
	"fmt"

	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// SPOver is the hierarchical scheduler the paper configures for traffic
// prioritization (§6.1.3, §6.2): the first High queues are strict
// priorities (queue 0 highest) and the remaining queues are arbitrated by
// an inner discipline (WFQ or DWRR), served only when every strict queue is
// empty.
type SPOver struct {
	v     View
	high  int
	inner Scheduler
	name  string
}

// NewSPOver returns a composite with queues [0,high) strict and the rest
// delegated to inner. inner must be configured for NumQueues-high queues.
func NewSPOver(high int, inner Scheduler) *SPOver {
	if high < 1 {
		panic(fmt.Sprintf("sched: SPOver needs at least one strict queue, got %d", high))
	}
	return &SPOver{high: high, inner: inner, name: "SP/" + inner.Name()}
}

// Name implements Scheduler.
func (s *SPOver) Name() string { return s.name }

// Bind implements Scheduler.
func (s *SPOver) Bind(v View) {
	if v.NumQueues() <= s.high {
		panic(fmt.Sprintf("sched: SPOver with %d strict queues needs more than %d queues",
			s.high, s.high))
	}
	s.v = v
	s.inner.Bind(&offsetView{v: v, off: s.high})
}

// OnEnqueue implements Scheduler.
func (s *SPOver) OnEnqueue(now sim.Time, i int, p *pkt.Packet) {
	if i >= s.high {
		s.inner.OnEnqueue(now, i-s.high, p)
	}
}

// Next implements Scheduler.
func (s *SPOver) Next(now sim.Time) int {
	for i := 0; i < s.high; i++ {
		if s.v.Len(i) > 0 {
			return i
		}
	}
	if i := s.inner.Next(now); i >= 0 {
		return i + s.high
	}
	return -1
}

// OnDequeue implements Scheduler.
func (s *SPOver) OnDequeue(now sim.Time, i int, p *pkt.Packet) {
	if i >= s.high {
		s.inner.OnDequeue(now, i-s.high, p)
	}
}

// Inner exposes the low-priority discipline, e.g. so MQ-ECN can reach the
// DWRR round state of an SP/DWRR composite.
func (s *SPOver) Inner() Scheduler { return s.inner }

// HighQueues returns the number of strict-priority queues.
func (s *SPOver) HighQueues() int { return s.high }

// offsetView re-indexes a View so an inner scheduler sees queues
// [off, N) as [0, N-off).
type offsetView struct {
	v   View
	off int
}

func (o *offsetView) NumQueues() int         { return o.v.NumQueues() - o.off }
func (o *offsetView) Len(i int) int          { return o.v.Len(i + o.off) }
func (o *offsetView) Bytes(i int) int        { return o.v.Bytes(i + o.off) }
func (o *offsetView) Head(i int) *pkt.Packet { return o.v.Head(i + o.off) }

// RankFunc assigns a PIFO rank to the head packet of a queue; smaller ranks
// are served first. It may consult the packet and the current time.
type RankFunc func(now sim.Time, queue int, p *pkt.Packet) float64

// PIFO is a programmable scheduler in the spirit of push-in-first-out
// queues (Sivaraman et al., SIGCOMM 2016): an arbitrary rank function
// orders the head packets of the per-class queues and the smallest rank is
// served. Because ranks are computed rather than configured, PIFO stands in
// for the "arbitrary packet schedulers" TCN must support and MQ-ECN cannot.
type PIFO struct {
	v    View
	rank RankFunc
	seq  float64 // FIFO tie-break within a queue
}

// NewPIFO returns a PIFO scheduler using rank. A nil rank orders packets
// globally by arrival (a single logical FIFO across all queues).
func NewPIFO(rank RankFunc) *PIFO { return &PIFO{rank: rank} }

// Name implements Scheduler.
func (s *PIFO) Name() string { return "PIFO" }

// Bind implements Scheduler.
func (s *PIFO) Bind(v View) { s.v = v }

// OnEnqueue implements Scheduler: stamps the packet's rank at admission,
// the PIFO contract ("push in" with a rank, dequeue from the head).
func (s *PIFO) OnEnqueue(now sim.Time, i int, p *pkt.Packet) {
	s.seq++
	if s.rank == nil {
		p.SchedTag = s.seq
		return
	}
	// The arrival sequence breaks rank ties deterministically while
	// preserving FIFO order inside a rank level.
	p.SchedTag = s.rank(now, i, p)*1e9 + s.seq
}

// Next implements Scheduler.
func (s *PIFO) Next(sim.Time) int {
	best := -1
	var bestTag float64
	for i := 0; i < s.v.NumQueues(); i++ {
		if s.v.Len(i) == 0 {
			continue
		}
		tag := s.v.Head(i).SchedTag
		if best == -1 || tag < bestTag {
			bestTag = tag
			best = i
		}
	}
	return best
}

// OnDequeue implements Scheduler.
func (s *PIFO) OnDequeue(sim.Time, int, *pkt.Packet) {}
