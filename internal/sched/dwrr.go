package sched

import (
	"fmt"

	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// DWRR is deficit weighted round robin (Shreedhar & Varghese). Active
// queues sit in a circular list; the head queue may send up to its
// accumulated deficit, which grows by one quantum per visit. This is the
// discipline the paper's qdisc prototype implements (§5), including the
// per-queue round-time tracking that MQ-ECN consumes.
//
// The active list is a fixed-capacity ring over the n queues. Rotation
// (the per-quantum operation, which runs millions of times per sweep
// cell) moves only the head index — the earlier slice-and-append
// implementation reallocated the backing array on nearly every rotation
// and dominated whole-run allocations.
type DWRR struct {
	v        View
	quantum  []int
	deficit  []int
	ring     []int  // circular active list, len == number of queues
	head     int    // ring index of the queue in service
	count    int    // active queues currently in the ring
	isActive []bool // membership in the ring
	inTurn   []bool // quantum already granted for the current visit

	lastTurnStart []sim.Time // when queue i last began a service turn
	roundTime     []sim.Time // latest turn-to-turn interval sample
	lastDequeue   []sim.Time // when queue i last dequeued a packet
}

// NewDWRR returns a DWRR scheduler with the given per-queue quanta, in
// bytes. A quantum must be at least one MTU for the discipline to be work
// conserving with MTU-sized packets.
func NewDWRR(quantum []int) *DWRR {
	q := make([]int, len(quantum))
	copy(q, quantum)
	for i, v := range q {
		if v <= 0 {
			panic(fmt.Sprintf("sched: DWRR quantum[%d]=%d must be positive", i, v))
		}
	}
	return &DWRR{quantum: q}
}

// NewDWRREqual returns a DWRR scheduler with n queues of the same quantum.
func NewDWRREqual(n, quantum int) *DWRR {
	q := make([]int, n)
	for i := range q {
		q[i] = quantum
	}
	return NewDWRR(q)
}

// Name implements Scheduler.
func (s *DWRR) Name() string { return "DWRR" }

// Bind implements Scheduler.
func (s *DWRR) Bind(v View) {
	if v.NumQueues() != len(s.quantum) {
		panic(fmt.Sprintf("sched: DWRR configured for %d queues, port has %d",
			len(s.quantum), v.NumQueues()))
	}
	s.v = v
	n := len(s.quantum)
	s.deficit = make([]int, n)
	s.ring = make([]int, n)
	s.head, s.count = 0, 0
	s.isActive = make([]bool, n)
	s.inTurn = make([]bool, n)
	s.lastTurnStart = make([]sim.Time, n)
	s.roundTime = make([]sim.Time, n)
	s.lastDequeue = make([]sim.Time, n)
}

// OnEnqueue implements Scheduler: a newly backlogged queue joins the tail
// of the active list.
func (s *DWRR) OnEnqueue(now sim.Time, i int, _ *pkt.Packet) {
	if !s.isActive[i] {
		s.isActive[i] = true
		s.inTurn[i] = false
		s.ring[(s.head+s.count)%len(s.ring)] = i
		s.count++
	}
}

// Next implements Scheduler.
func (s *DWRR) Next(now sim.Time) int {
	for s.count > 0 {
		i := s.ring[s.head]
		if s.v.Len(i) == 0 {
			// Queue drained outside OnDequeue bookkeeping; retire it.
			s.retire(i)
			continue
		}
		if !s.inTurn[i] {
			s.inTurn[i] = true
			s.deficit[i] += s.quantum[i]
			// A round-time sample is only meaningful if the queue
			// stayed backlogged since its previous turn; retire()
			// invalidates the start timestamp (0 sentinel).
			if s.lastTurnStart[i] > 0 {
				s.roundTime[i] = now - s.lastTurnStart[i]
			}
			s.lastTurnStart[i] = now
		}
		if s.v.Head(i).Size <= s.deficit[i] {
			return i
		}
		// Quantum exhausted: rotate to the tail, keep the deficit. When
		// the ring is full the tail slot coincides with the head slot,
		// so writing before advancing is still correct.
		s.ring[(s.head+s.count)%len(s.ring)] = i
		s.head = (s.head + 1) % len(s.ring)
		s.inTurn[i] = false
	}
	return -1
}

// OnDequeue implements Scheduler.
func (s *DWRR) OnDequeue(now sim.Time, i int, p *pkt.Packet) {
	s.deficit[i] -= p.Size
	s.lastDequeue[i] = now
	if s.v.Len(i) == 0 {
		s.retire(i)
	}
}

// retire removes queue i from the active list and resets its deficit, per
// the DWRR specification for queues that empty. Retiring the head (the
// common case: a queue drains while in service) is O(1); retiring from
// the middle shifts the few remaining entries.
func (s *DWRR) retire(i int) {
	s.isActive[i] = false
	s.inTurn[i] = false
	s.deficit[i] = 0
	s.lastTurnStart[i] = 0 // next round sample would span an idle gap
	n := len(s.ring)
	for k := 0; k < s.count; k++ {
		if s.ring[(s.head+k)%n] != i {
			continue
		}
		if k == 0 {
			s.head = (s.head + 1) % n
		} else {
			for j := k; j < s.count-1; j++ {
				s.ring[(s.head+j)%n] = s.ring[(s.head+j+1)%n]
			}
		}
		s.count--
		break
	}
}

// Quantum returns queue i's quantum in bytes. Part of the RoundInfo
// contract MQ-ECN consumes.
func (s *DWRR) Quantum(i int) int { return s.quantum[i] }

// RoundTime returns the most recent turn-to-turn interval observed for
// queue i, i.e. the paper's T_round as seen by that queue. Zero means no
// complete round has been observed yet.
func (s *DWRR) RoundTime(i int) sim.Time { return s.roundTime[i] }

// LastDequeue returns the last time queue i sent a packet, used by MQ-ECN's
// idle-reset rule.
func (s *DWRR) LastDequeue(i int) sim.Time { return s.lastDequeue[i] }

// WRR is classic weighted round robin: each visit, a backlogged queue may
// send up to weight packets regardless of their size. Retained as a second
// round-based discipline for MQ-ECN coverage; DWRR should be preferred for
// byte-accurate fairness.
type WRR struct {
	*DWRR
	weights []int
}

// NewWRR returns a WRR scheduler; weight w behaves like a DWRR quantum of
// w MTU-sized packets.
func NewWRR(weights []int) *WRR {
	q := make([]int, len(weights))
	for i, w := range weights {
		if w <= 0 {
			panic(fmt.Sprintf("sched: WRR weight[%d]=%d must be positive", i, w))
		}
		q[i] = w * pkt.MTU
	}
	return &WRR{DWRR: NewDWRR(q), weights: weights}
}

// Name implements Scheduler.
func (s *WRR) Name() string { return "WRR" }

// NewRR returns an unweighted round-robin scheduler over n queues.
func NewRR(n int) *WRR {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	return NewWRR(w)
}
