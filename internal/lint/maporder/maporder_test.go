package maporder_test

import (
	"testing"

	"tcn/internal/lint/linttest"
	"tcn/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "maporder")
}
