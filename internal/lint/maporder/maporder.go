// Package maporder flags range-over-map loops whose bodies have
// order-dependent observable effects.
//
// Go randomizes map iteration order on purpose, so any effect of the loop
// body that is sensitive to visit order — appending to a slice, sending on
// a channel, emitting output, scheduling simulator events, accumulating
// floating-point sums — makes the program's observable behaviour differ
// between identically-seeded runs. The analyzer is deliberately
// under-approximate: commutative updates (integer sums, per-key map writes,
// x++/x--) pass, and a loop can be exempted with a justification comment on
// or directly above the range statement:
//
//	//tcnlint:ordered <why order cannot be observed>
//
// Test-failure reporting (methods on *testing.T/B/F) is treated as benign:
// it only fires when the test is already failing.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tcn/internal/lint/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map loops with order-dependent effects; sort keys or justify with //tcnlint:ordered",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if analysis.LineCommentDirective(pass.Fset, file, rng.Pos(), "ordered") {
				return true
			}
			c := &checker{pass: pass, rng: rng}
			c.findEffects()
			for _, e := range c.effects {
				pass.Reportf(e.pos, "map iteration order leaks through %s; sort the keys first or justify with //tcnlint:ordered", e.what)
			}
			return true
		})
	}
	return nil, nil
}

// effect is one order-dependent operation found in a loop body.
type effect struct {
	pos  token.Pos
	what string
}

type checker struct {
	pass    *analysis.Pass
	rng     *ast.RangeStmt
	effects []effect
}

// declaredInside reports whether obj is declared within the range
// statement (the key/value variables or body locals).
func (c *checker) declaredInside(obj types.Object) bool {
	return obj != nil && obj.Pos() >= c.rng.Pos() && obj.Pos() < c.rng.End()
}

// rootObj unwraps selectors, indexes, stars, and parens down to the base
// identifier's object: the storage an assignment ultimately writes.
func (c *checker) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return c.pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mentionsLoopVar reports whether expr references any object declared
// inside the loop (the iteration variables or locals derived from them).
func (c *checker) mentionsLoopVar(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.declaredInside(c.pass.TypesInfo.Uses[id]) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// keyedByLoopKey reports whether lhs is an index expression whose index
// mentions the loop's own key/value variables — a per-key write, which is
// commutative across iterations because each iteration touches a distinct
// element.
func (c *checker) keyedByLoopKey(lhs ast.Expr) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	return ok && c.mentionsLoopVar(ix.Index)
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// findEffects walks the loop body collecting order-dependent operations.
func (c *checker) findEffects() {
	ast.Inspect(c.rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			c.add(s.Pos(), "a channel send")
		case *ast.AssignStmt:
			c.checkAssign(s)
		case *ast.CallExpr:
			c.checkCall(s)
		}
		return true
	})
}

func (c *checker) add(pos token.Pos, what string) {
	c.effects = append(c.effects, effect{pos, what})
}

// checkAssign classifies assignments whose target outlives the loop.
func (c *checker) checkAssign(s *ast.AssignStmt) {
	for i, lhs := range s.Lhs {
		if s.Tok == token.DEFINE {
			continue // new locals are loop-scoped
		}
		root := c.rootObj(lhs)
		if root == nil || c.declaredInside(root) {
			continue
		}
		lt, ok := c.pass.TypesInfo.Types[lhs]
		if !ok {
			continue
		}
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		switch s.Tok {
		case token.ASSIGN:
			// append to an outer slice depends on arrival order.
			if call, ok := rhs.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
					if c.mentionsLoopVar(call) {
						c.add(s.Pos(), "an append to "+root.Name())
						continue
					}
				}
			}
			// Per-key writes into an outer map/slice are commutative.
			if c.keyedByLoopKey(lhs) {
				continue
			}
			// Plain overwrite: last iteration wins, and "last" is random.
			if c.mentionsLoopVar(rhs) {
				c.add(s.Pos(), "a last-writer-wins assignment to "+root.Name())
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			// Float accumulation is order-dependent (rounding is not
			// associative); integer accumulation commutes. String +=
			// concatenates in visit order.
			if !c.mentionsLoopVar(rhs) {
				continue
			}
			if isFloat(lt.Type) {
				c.add(s.Pos(), "a floating-point accumulation into "+root.Name())
			} else if isString(lt.Type) && s.Tok == token.ADD_ASSIGN {
				c.add(s.Pos(), "a string concatenation into "+root.Name())
			} else if s.Tok == token.QUO_ASSIGN && !isFloat(lt.Type) {
				// Integer division does not commute either.
				c.add(s.Pos(), "a non-commutative update of "+root.Name())
			}
		}
	}
}

// ioPackages are packages whose calls count as output.
var ioPackages = map[string]bool{
	"fmt": true, "io": true, "os": true, "bufio": true, "log": true,
}

// testingTypes are receiver types whose method calls are benign inside a
// map-range body: they only produce output when a test is failing.
var testingTypes = map[string]bool{"T": true, "B": true, "F": true, "TB": true}

// checkCall flags calls that emit ordered output or schedule simulator
// events.
func (c *checker) checkCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	// Package-level I/O: fmt.Printf, os.WriteFile, log.Printf, ...
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			if ioPackages[pn.Imported().Path()] {
				c.add(call.Pos(), "a "+pn.Imported().Path()+"."+name+" call")
			}
			return
		}
	}
	// Method calls: writers, and simulator event scheduling (sim.Engine.At /
	// After), both of which serialize visit order into observable state.
	recvTV, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok {
		return
	}
	if named := namedOf(recvTV.Type); named != nil {
		if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "testing" && testingTypes[named.Obj().Name()] {
			return
		}
		if (name == "At" || name == "After") && named.Obj().Name() == "Engine" {
			c.add(call.Pos(), "scheduling a simulator event")
			return
		}
	}
	if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
		c.add(call.Pos(), "a "+name+" call")
	}
}

// namedOf returns the named type behind t, unwrapping one pointer.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
