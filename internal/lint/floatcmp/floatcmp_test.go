package floatcmp_test

import (
	"testing"

	"tcn/internal/lint/floatcmp"
	"tcn/internal/lint/linttest"
)

func TestFloatcmp(t *testing.T) {
	linttest.Run(t, floatcmp.Analyzer, "floatcmp")
}
