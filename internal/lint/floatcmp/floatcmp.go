// Package floatcmp flags exact equality comparisons between floating-point
// operands.
//
// The marker-threshold math (MarkProbability, WFQ virtual times, token
// bucket levels) is full of values that are *almost* representable; `==`
// and `!=` on them encode an assumption about rounding that quietly breaks
// when an expression is refactored. Comparisons should use integer units
// (sim.Time, bytes) or an epsilon helper (testutil.AlmostEqual). Constant
// expressions folded at compile time are exempt, and a deliberate exact
// comparison (IEEE sentinel checks, exact-propagation tests) can be
// justified with a //tcnlint:floatexact comment on or above the line.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"tcn/internal/lint/analysis"
)

// Analyzer is the floatcmp check.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flag == and != between floating-point operands; use integer units or an epsilon comparison",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			whole, ok := pass.TypesInfo.Types[be]
			if !ok || whole.Value != nil {
				return true // folded at compile time: exact by definition
			}
			if !isFloatOperand(pass, be.X) && !isFloatOperand(pass, be.Y) {
				return true
			}
			if analysis.LineCommentDirective(pass.Fset, file, be.Pos(), "floatexact") {
				return true
			}
			pass.Reportf(be.OpPos, "exact floating-point %s comparison; compare in integer units or with testutil.AlmostEqual (//tcnlint:floatexact to justify)", be.Op)
			return true
		})
	}
	return nil, nil
}

// isFloatOperand reports whether the expression has floating-point type
// (including complex, whose parts inherit the same rounding hazards).
func isFloatOperand(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
