// Package lint registers the tcnlint analyzer suite: the machine-checked
// form of the repository's determinism and accounting conventions (see
// DESIGN.md, "Determinism rules").
package lint

import (
	"tcn/internal/lint/analysis"
	"tcn/internal/lint/exhaustive"
	"tcn/internal/lint/floatcmp"
	"tcn/internal/lint/goshare"
	"tcn/internal/lint/hotpath"
	"tcn/internal/lint/maporder"
	"tcn/internal/lint/seededrand"
	"tcn/internal/lint/simclock"
	"tcn/internal/lint/unitcheck"
	"tcn/internal/lint/verdict"
	"tcn/internal/lint/walltaint"
)

// All returns the full analyzer suite in stable (alphabetical) order.
// Library analyzers pulled in only through Requires (callgraph) are not
// listed; the driver adds them via analysis.Expand.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		exhaustive.Analyzer,
		floatcmp.Analyzer,
		goshare.Analyzer,
		hotpath.Analyzer,
		maporder.Analyzer,
		seededrand.Analyzer,
		simclock.Analyzer,
		unitcheck.Analyzer,
		verdict.Analyzer,
		walltaint.Analyzer,
	}
}
