// Package lint registers the tcnlint analyzer suite: the machine-checked
// form of the repository's determinism and accounting conventions (see
// DESIGN.md, "Determinism rules").
package lint

import (
	"tcn/internal/lint/analysis"
	"tcn/internal/lint/floatcmp"
	"tcn/internal/lint/goshare"
	"tcn/internal/lint/maporder"
	"tcn/internal/lint/seededrand"
	"tcn/internal/lint/simclock"
	"tcn/internal/lint/unitcheck"
	"tcn/internal/lint/verdict"
)

// All returns the full analyzer suite in stable (alphabetical) order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		floatcmp.Analyzer,
		goshare.Analyzer,
		maporder.Analyzer,
		seededrand.Analyzer,
		simclock.Analyzer,
		unitcheck.Analyzer,
		verdict.Analyzer,
	}
}
