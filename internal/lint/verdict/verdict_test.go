package verdict_test

import (
	"testing"

	"tcn/internal/lint/linttest"
	"tcn/internal/lint/verdict"
)

func TestVerdict(t *testing.T) {
	linttest.Run(t, verdict.Analyzer, "verdict")
}
