// Package verdict enforces causal mark attribution: a marker that holds
// a *core.Verdict must not call pkt.Packet.Mark directly.
//
// Every marking decision in the simulator is supposed to carry a reason
// — the decision ledger, the -explain report, and the Perfetto instants
// all read it off the verdict the marker filled in. A direct p.Mark()
// inside a marker applies CE without attribution: the packet shows up in
// the transmission-side counters but the ledger has no idea why, and the
// acceptance invariant "every mark carries a non-Unknown reason" breaks
// silently. Routing the mark through (*core.Verdict).Fire records the
// reason and the ECN-incapable fallback in one place.
//
// The analyzer flags any zero-argument Mark() call on a pkt.Packet made
// inside a function (or a closure nested in one) whose signature —
// receiver included — carries a *core.Verdict. Functions without a
// verdict in scope are out of reach: pkt's own tests exercise Mark
// directly and stay legal. The attribution wrapper itself waives its two
// calls line by line with `//tcnlint:verdict` comments, the same escape
// hatch available to any deliberate bypass.
package verdict

import (
	"go/ast"
	"go/types"

	"tcn/internal/lint/analysis"
)

// Analyzer is the verdict check.
var Analyzer = &analysis.Analyzer{
	Name: "verdict",
	Doc:  "forbid direct pkt.Packet.Mark calls in functions holding a *core.Verdict; marks must route through Verdict.Fire so they carry a reason",
	Run:  run,
}

// isPacket reports whether t is (a pointer to) pkt.Packet. Matching
// covers both the real module path and the bare fixture package name so
// the rule itself is testable.
func isPacket(t types.Type) bool {
	return isNamed(t, "Packet", "tcn/internal/pkt", "pkt")
}

// isVerdict reports whether t is (a pointer to) core.Verdict.
func isVerdict(t types.Type) bool {
	return isNamed(t, "Verdict", "tcn/internal/core", "core")
}

// isNamed dereferences pointers and matches a named type by name and
// package path.
func isNamed(t types.Type, name string, paths ...string) bool {
	if t == nil {
		return false
	}
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	for _, p := range paths {
		if obj.Pkg().Path() == p {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		file := f
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if call, ok := n.(*ast.CallExpr); ok {
				checkCall(pass, file, call, stack)
			}
			return true
		})
	}
	return nil, nil
}

// checkCall flags a Mark() call on a packet when an enclosing function
// carries a verdict the mark should have been routed through.
func checkCall(pass *analysis.Pass, file *ast.File, call *ast.CallExpr, stack []ast.Node) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Mark" || len(call.Args) != 0 {
		return
	}
	if !isPacket(pass.TypesInfo.TypeOf(sel.X)) {
		return
	}
	if !verdictInScope(pass, stack) {
		return
	}
	if analysis.LineCommentDirective(pass.Fset, file, call.Pos(), "verdict") {
		return
	}
	recv := "packet"
	if id, ok := sel.X.(*ast.Ident); ok {
		recv = id.Name
	}
	pass.Reportf(call.Pos(), "%q.Mark() bypasses verdict attribution: this function holds a *core.Verdict, so the mark must route through Verdict.Fire to carry a reason",
		recv)
}

// verdictInScope reports whether any enclosing function in the stack —
// the innermost FuncLit up through the FuncDecl, receiver included —
// declares a *core.Verdict.
func verdictInScope(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			if fieldsHaveVerdict(pass, fn.Type.Params) {
				return true
			}
		case *ast.FuncDecl:
			if fieldsHaveVerdict(pass, fn.Recv) || fieldsHaveVerdict(pass, fn.Type.Params) {
				return true
			}
		}
	}
	return false
}

// fieldsHaveVerdict reports whether any field in the list is a verdict.
func fieldsHaveVerdict(pass *analysis.Pass, fl *ast.FieldList) bool {
	if fl == nil {
		return false
	}
	for _, f := range fl.List {
		if isVerdict(pass.TypesInfo.TypeOf(f.Type)) {
			return true
		}
	}
	return false
}
