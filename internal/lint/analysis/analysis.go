// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, built entirely on the standard
// library (go/ast, go/types, go/importer). The repository vendors no external
// modules, so the real x/tools multichecker cannot be imported; this package
// keeps the same shape — Analyzer, Pass, Diagnostic — so the tcnlint
// analyzers can migrate to the upstream framework by swapping one import.
//
// Deliberate simplifications relative to upstream: no Facts, no Requires
// graph (every analyzer is self-contained), and no SuggestedFixes. Those are
// not needed by the determinism and accounting analyzers this repo ships.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters. It
	// must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description shown by `tcnlint help`.
	Doc string
	// Run applies the analyzer to one package and reports diagnostics
	// through the pass. The result value is unused by the driver but
	// kept for upstream signature compatibility.
	Run func(*Pass) (any, error)
}

// Pass is the interface between one (analyzer, package) pairing and the
// driver: the syntax, type information, and the Report sink.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token.Pos to file positions for every file in the pass.
	Fset *token.FileSet
	// Files holds the parsed syntax trees of the package, including any
	// in-package test files, in deterministic (file name) order.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and objects for every expression in Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a human-readable message. The
// driver prefixes the reporting analyzer's name.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// LineCommentDirective reports whether the given directive comment (for
// example "//tcnlint:ordered") is attached to the source line holding pos:
// either on the line itself (trailing) or alone on the line directly above.
// This is the mechanism behind the repo's justification-comment convention —
// a directive must sit visibly next to the construct it exempts.
func LineCommentDirective(fset *token.FileSet, f *ast.File, pos token.Pos, directive string) bool {
	line := fset.Position(pos).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			cl := fset.Position(c.Pos()).Line
			if cl != line && cl != line-1 {
				continue
			}
			if commentHasDirective(c.Text, directive) {
				return true
			}
		}
	}
	return false
}

// commentHasDirective matches "//tcnlint:<directive>" allowing trailing
// explanation text ("//tcnlint:ordered keys feed a commutative sum").
func commentHasDirective(text, directive string) bool {
	const prefix = "//tcnlint:"
	if len(text) < len(prefix)+len(directive) || text[:len(prefix)] != prefix {
		return false
	}
	rest := text[len(prefix):]
	if rest[:len(directive)] != directive {
		return false
	}
	rest = rest[len(directive):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}
