// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, built entirely on the standard
// library (go/ast, go/types, go/importer). The repository vendors no external
// modules, so the real x/tools multichecker cannot be imported; this package
// keeps the same shape — Analyzer, Pass, Diagnostic, Fact, Requires — so the
// tcnlint analyzers can migrate to the upstream framework by swapping one
// import.
//
// Since PR 7 the package is a cross-package engine rather than a
// package-local one: the loader type-checks the whole module against one
// shared importer (so a types.Object is the same value in the package that
// declares it and in every package that imports it), the driver executes
// analyzers over packages in import-graph order with Requires dependencies
// resolved first, and analyzers exchange Facts attached to objects and
// packages. Facts live in memory for the whole run — no gob encoding — which
// is the one deliberate simplification left relative to upstream (besides
// SuggestedFixes, which nothing here needs).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters. It
	// must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description shown by `tcnlint help`.
	Doc string
	// Requires lists analyzers that must run before this one on every
	// package. Their per-package results appear in Pass.ResultOf and
	// their facts are readable through the Pass fact accessors.
	Requires []*Analyzer
	// Run applies the analyzer to one package and reports diagnostics
	// through the pass. The result value is stored by the driver and
	// handed to dependent analyzers via Pass.ResultOf.
	Run func(*Pass) (any, error)
}

// Pass is the interface between one (analyzer, package) pairing and the
// driver: the syntax, type information, fact accessors, and the Report sink.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token.Pos to file positions for every file in the pass.
	Fset *token.FileSet
	// Files holds the parsed syntax trees of the package, including any
	// in-package test files, in deterministic (file name) order.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and objects for every expression in Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
	// ResultOf holds the results of this package's passes of every
	// analyzer in Requires (transitively).
	ResultOf map[*Analyzer]any

	// facts is the module-wide store shared by all passes of one driver
	// run; visible is the Requires closure (self included) whose facts
	// this pass may read. Both are nil on a bare Pass constructed outside
	// the driver, in which case the accessors degrade to no-ops.
	facts   *factStore
	visible map[*Analyzer]bool
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches fact to obj for dependent packages to read.
// The object must belong to this pass's package. One fact per (analyzer,
// object, fact type); exporting again overwrites.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		return
	}
	if obj == nil {
		panic("analysis: ExportObjectFact on nil object")
	}
	p.facts.obj[objFactKey{p.Analyzer, obj, factType(fact)}] = fact
}

// ImportObjectFact copies the fact of ptr's type attached to obj (by this
// analyzer or one in its Requires closure) into ptr, reporting whether one
// was found.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.facts == nil || obj == nil {
		return false
	}
	t := factType(ptr)
	for a := range p.visibleSet() {
		if f, ok := p.facts.obj[objFactKey{a, obj, t}]; ok {
			copyFact(ptr, f)
			return true
		}
	}
	return false
}

// ExportPackageFact attaches fact to the pass's own package.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		return
	}
	p.facts.pkg[pkgFactKey{p.Analyzer, p.Pkg, factType(fact)}] = fact
}

// ImportPackageFact copies the fact of ptr's type attached to pkg into ptr,
// reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	if p.facts == nil || pkg == nil {
		return false
	}
	t := factType(ptr)
	for a := range p.visibleSet() {
		if f, ok := p.facts.pkg[pkgFactKey{a, pkg, t}]; ok {
			copyFact(ptr, f)
			return true
		}
	}
	return false
}

// AllObjectFacts returns every object fact visible to this pass, in
// deterministic order. Because the driver runs each analyzer over every
// package before any dependent analyzer starts, a pass sees required
// analyzers' facts for the whole module, not just its import cone.
func (p *Pass) AllObjectFacts() []ObjectFact {
	if p.facts == nil {
		return nil
	}
	return p.facts.objectFacts(p.visibleSet(), p.Fset)
}

// AllPackageFacts returns every package fact visible to this pass, in
// deterministic order.
func (p *Pass) AllPackageFacts() []PackageFact {
	if p.facts == nil {
		return nil
	}
	return p.facts.packageFacts(p.visibleSet())
}

// visibleSet returns the analyzers whose facts this pass may read: itself
// plus its transitive Requires.
func (p *Pass) visibleSet() map[*Analyzer]bool {
	if p.visible != nil {
		return p.visible
	}
	vis := map[*Analyzer]bool{}
	var add func(a *Analyzer)
	add = func(a *Analyzer) {
		if vis[a] {
			return
		}
		vis[a] = true
		for _, r := range a.Requires {
			add(r)
		}
	}
	add(p.Analyzer)
	p.visible = vis
	return vis
}

// Diagnostic is one finding: a position and a human-readable message. The
// driver prefixes the reporting analyzer's name.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// LineCommentDirective reports whether the given directive comment (for
// example "//tcnlint:ordered") is attached to the source line holding pos:
// either on the line itself (trailing) or alone on the line directly above.
// This is the mechanism behind the repo's justification-comment convention —
// a directive must sit visibly next to the construct it exempts.
func LineCommentDirective(fset *token.FileSet, f *ast.File, pos token.Pos, directive string) bool {
	line := fset.Position(pos).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			cl := fset.Position(c.Pos()).Line
			if cl != line && cl != line-1 {
				continue
			}
			if commentHasDirective(c.Text, directive) {
				return true
			}
		}
	}
	return false
}

// commentHasDirective matches "//tcnlint:<directive>" allowing trailing
// explanation text ("//tcnlint:ordered keys feed a commutative sum").
func commentHasDirective(text, directive string) bool {
	const prefix = "//tcnlint:"
	if len(text) < len(prefix)+len(directive) || text[:len(prefix)] != prefix {
		return false
	}
	rest := text[len(prefix):]
	if rest[:len(directive)] != directive {
		return false
	}
	rest = rest[len(directive):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}
