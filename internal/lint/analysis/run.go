package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one diagnostic with its reporting analyzer and resolved
// position, as produced by Execute.
type Finding struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

// RunResult is the outcome of one Execute call: diagnostics from the root
// packages plus the module-wide fact store, for linttest's fact golden
// assertions.
type RunResult struct {
	// Findings holds diagnostics from packages with Report set, sorted by
	// (file, line, column, analyzer, message).
	Findings []Finding

	fset      *token.FileSet
	facts     *factStore
	analyzers map[*Analyzer]bool
}

// ObjectFacts returns every object fact exported during the run, in
// deterministic order.
func (r *RunResult) ObjectFacts() []ObjectFact {
	return r.facts.objectFacts(r.analyzers, r.fset)
}

// PackageFacts returns every package fact exported during the run, in
// deterministic order.
func (r *RunResult) PackageFacts() []PackageFact {
	return r.facts.packageFacts(r.analyzers)
}

// Expand returns analyzers plus their transitive Requires, ordered so every
// analyzer follows all of its requirements (ties broken by registration
// order, so the result is deterministic). It errors on a Requires cycle.
func Expand(analyzers []*Analyzer) ([]*Analyzer, error) {
	var order []*Analyzer
	state := map[*Analyzer]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("analyzer dependency cycle through %q", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, r := range a.Requires {
			if err := visit(r); err != nil {
				return err
			}
		}
		state[a] = 2
		order = append(order, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Execute runs the analyzers (plus their transitive Requires) over the
// packages and collects diagnostics and facts.
//
// Packages must arrive in dependency order (Load and the linttest fixture
// loader both guarantee it). The driver loops analyzers outermost: analyzer
// A runs over every package before any analyzer requiring A runs at all.
// That gives dependent analyzers a module-wide view of their requirements'
// facts — in particular, a call-graph consumer analyzing package P can see
// call edges from packages that import P, which strict import-cone
// propagation would hide.
//
// Diagnostics are collected only from packages whose Report field is set
// (the match patterns' roots); facts are collected from every package, so a
// dep-only package still contributes ownership and call-graph knowledge.
func Execute(pkgs []*Package, analyzers []*Analyzer) (*RunResult, error) {
	order, err := Expand(analyzers)
	if err != nil {
		return nil, err
	}

	facts := newFactStore()
	results := map[*Analyzer]map[*Package]any{}
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	} else {
		fset = token.NewFileSet()
	}

	var findings []Finding
	for _, a := range order {
		results[a] = map[*Package]any{}
		for _, pkg := range pkgs {
			resultOf := map[*Analyzer]any{}
			for req := range requiresClosure(a) {
				if req == a {
					continue
				}
				resultOf[req] = results[req][pkg]
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				ResultOf:  resultOf,
				facts:     facts,
			}
			report := pkg.Report
			name := a.Name
			pass.Report = func(d Diagnostic) {
				if !report {
					return
				}
				findings = append(findings, Finding{
					Analyzer: name,
					Pos:      d.Pos,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
			results[a][pkg] = res
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	set := map[*Analyzer]bool{}
	for _, a := range order {
		set[a] = true
	}
	return &RunResult{Findings: findings, fset: fset, facts: facts, analyzers: set}, nil
}

// requiresClosure returns a plus its transitive requirements.
func requiresClosure(a *Analyzer) map[*Analyzer]bool {
	set := map[*Analyzer]bool{}
	var add func(x *Analyzer)
	add = func(x *Analyzer) {
		if set[x] {
			return
		}
		set[x] = true
		for _, r := range x.Requires {
			add(r)
		}
	}
	add(a)
	return set
}
