package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked unit of analysis. In-package test
// files are compiled together with the library files (matching the go
// tool); external _test packages load as their own unit.
type Package struct {
	// Path is the import path ("tcn/internal/qdisc"), with an "_test"
	// suffix for external test units.
	Path string
	// Dir is the package directory on disk.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadConfig controls package loading.
type LoadConfig struct {
	// Dir is the working directory for the `go list` invocation; it must
	// be inside the module. Empty means the process working directory.
	Dir string
	// Tests includes in-package and external test files.
	Tests bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Incomplete   bool
	DepOnly      bool
	ForTest      string
	Error        *struct{ Err string }
}

// Load enumerates the packages matching patterns with the go command,
// parses them, and type-checks them against a shared source-level importer.
// All randomness-free: output order follows `go list`, which is sorted.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(cfg.Dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.ForTest != "" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		units := []struct {
			path  string
			files []string
		}{
			{lp.ImportPath, mergeFiles(lp, cfg.Tests)},
		}
		if cfg.Tests && len(lp.XTestGoFiles) > 0 {
			units = append(units, struct {
				path  string
				files []string
			}{lp.ImportPath + "_test", append([]string(nil), lp.XTestGoFiles...)})
		}
		for _, u := range units {
			if len(u.files) == 0 {
				continue
			}
			p, err := checkUnit(fset, imp, u.path, lp.Dir, u.files)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// mergeFiles joins library and in-package test files in sorted order.
func mergeFiles(lp listedPackage, tests bool) []string {
	files := append([]string(nil), lp.GoFiles...)
	files = append(files, lp.CgoFiles...)
	if tests {
		files = append(files, lp.TestGoFiles...)
	}
	sort.Strings(files)
	return files
}

// checkUnit parses and type-checks one compilation unit.
func checkUnit(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: imp}
	info := NewInfo()
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// goList shells out to `go list -json` and decodes the JSON stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = os.Environ()
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// ModuleRoot walks upward from dir until it finds go.mod, so the driver can
// run from any subdirectory of the repository.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
