package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked unit of analysis. In-package test
// files are compiled together with the library files (matching the go
// tool); external _test packages load as their own unit.
type Package struct {
	// Path is the import path ("tcn/internal/qdisc"), with an "_test"
	// suffix for external test units.
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Imports lists the module-internal packages this unit imports
	// (library and in-package test imports merged), sorted.
	Imports []string
	// Report marks a root package: one matched by the load patterns, whose
	// diagnostics the driver surfaces. Dependency packages pulled in only
	// for facts have Report false.
	Report bool

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadConfig controls package loading.
type LoadConfig struct {
	// Dir is the working directory for the `go list` invocation; it must
	// be inside the module. Empty means the process working directory.
	Dir string
	// Tests includes in-package and external test files.
	Tests bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Standard     bool
	Incomplete   bool
	DepOnly      bool
	ForTest      string
	Module       *struct{ Path string }
	Error        *struct{ Err string }
}

// Load enumerates the packages matching patterns with the go command,
// closes over their module-internal dependencies, and parses and
// type-checks everything in import-graph order against one shared
// importer, so a types.Object is the same value in the package that
// declares it and in every package that imports it — the property the
// fact store depends on.
//
// Everything is randomness-free: package order is a deterministic
// topological sort (alphabetical among ready packages), and file order
// within a package is sorted.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(cfg.Dir, patterns)
	if err != nil {
		return nil, err
	}

	// Index the match results and find the module path so the dependency
	// closure stays inside the module (stdlib is the importer's problem).
	byPath := map[string]*listedPackage{}
	roots := map[string]bool{}
	var modulePath string
	var order []string
	for i := range listed {
		lp := &listed[i]
		if lp.ForTest != "" || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if byPath[lp.ImportPath] != nil {
			continue
		}
		byPath[lp.ImportPath] = lp
		order = append(order, lp.ImportPath)
		if !lp.DepOnly {
			roots[lp.ImportPath] = true
		}
		if modulePath == "" && lp.Module != nil {
			modulePath = lp.Module.Path
		}
	}

	inModule := func(path string) bool {
		return modulePath != "" &&
			(path == modulePath || strings.HasPrefix(path, modulePath+"/"))
	}

	// Close over module-internal imports (including test-only imports such
	// as a shared testutil) so facts exist for every package an analyzed
	// file references.
	for {
		var missing []string
		seen := map[string]bool{}
		for _, p := range order {
			lp := byPath[p]
			for _, imp := range allImports(lp, cfg.Tests) {
				if inModule(imp) && byPath[imp] == nil && !seen[imp] {
					seen[imp] = true
					missing = append(missing, imp)
				}
			}
		}
		if len(missing) == 0 {
			break
		}
		sort.Strings(missing)
		extra, err := goList(cfg.Dir, missing)
		if err != nil {
			return nil, err
		}
		for i := range extra {
			lp := &extra[i]
			if lp.ForTest != "" || lp.Standard || byPath[lp.ImportPath] != nil {
				continue
			}
			if lp.Error != nil {
				return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
			}
			byPath[lp.ImportPath] = lp
			order = append(order, lp.ImportPath)
		}
	}

	// Topologically sort so every package is checked after its imports.
	// Test-only imports are real edges when they keep the graph acyclic
	// (they almost always do); a test-import cycle — legal in Go via the
	// separate test binary — falls back to library edges only, and the
	// leftover test imports resolve through the source-importer fallback.
	edges := func(includeTests bool) map[string][]string {
		g := map[string][]string{}
		for _, p := range order {
			lp := byPath[p]
			imps := append([]string(nil), lp.Imports...)
			if includeTests && cfg.Tests {
				imps = append(imps, lp.TestImports...)
			}
			for _, imp := range imps {
				if imp != p && byPath[imp] != nil {
					g[p] = append(g[p], imp)
				}
			}
		}
		return g
	}
	sorted, err := topoSort(order, edges(true))
	if err != nil {
		sorted, err = topoSort(order, edges(false))
		if err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		pkgs:     map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}

	var pkgs []*Package
	for _, path := range sorted {
		lp := byPath[path]
		files := mergeFiles(*lp, cfg.Tests)
		if len(files) == 0 {
			continue
		}
		p, err := checkUnit(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		p.Imports = moduleImports(lp, cfg.Tests, inModule)
		p.Report = roots[path]
		imp.pkgs[path] = p.Types
		pkgs = append(pkgs, p)
	}

	// External test packages load last, once every library unit they might
	// import (including the one they test) is registered.
	if cfg.Tests {
		for _, path := range sorted {
			lp := byPath[path]
			if len(lp.XTestGoFiles) == 0 || !roots[path] {
				continue
			}
			files := append([]string(nil), lp.XTestGoFiles...)
			sort.Strings(files)
			p, err := checkUnit(fset, imp, lp.ImportPath+"_test", lp.Dir, files)
			if err != nil {
				return nil, err
			}
			p.Report = true
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// allImports returns every import path a package's selected units mention.
func allImports(lp *listedPackage, tests bool) []string {
	imps := append([]string(nil), lp.Imports...)
	if tests {
		imps = append(imps, lp.TestImports...)
		imps = append(imps, lp.XTestImports...)
	}
	return imps
}

// moduleImports returns the sorted, deduplicated module-internal imports of
// the merged (library + in-package test) unit.
func moduleImports(lp *listedPackage, tests bool, inModule func(string) bool) []string {
	seen := map[string]bool{}
	var out []string
	imps := append([]string(nil), lp.Imports...)
	if tests {
		imps = append(imps, lp.TestImports...)
	}
	for _, imp := range imps {
		if inModule(imp) && imp != lp.ImportPath && !seen[imp] {
			seen[imp] = true
			out = append(out, imp)
		}
	}
	sort.Strings(out)
	return out
}

// topoSort orders paths so that every package's imports precede it,
// breaking ties alphabetically (Kahn's algorithm over a sorted ready set).
// It returns an error naming a package on a cycle.
func topoSort(paths []string, edges map[string][]string) ([]string, error) {
	indeg := map[string]int{}
	dependents := map[string][]string{}
	for _, p := range paths {
		indeg[p] = 0
	}
	// Dependent lists are only used as a set for indegree decrements, and
	// each ready round is sorted before emission.
	//tcnlint:ordered output order is fixed by the per-round sort
	for p, imps := range edges {
		for _, imp := range imps {
			indeg[p]++
			dependents[imp] = append(dependents[imp], p)
		}
	}
	var ready []string
	for _, p := range paths {
		if indeg[p] == 0 {
			ready = append(ready, p)
		}
	}
	sort.Strings(ready)
	var out []string
	for len(ready) > 0 {
		p := ready[0]
		ready = ready[1:]
		out = append(out, p)
		changed := false
		for _, d := range dependents[p] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, p)
				ready[len(ready)-1] = d
				changed = true
			}
		}
		if changed {
			sort.Strings(ready)
		}
	}
	if len(out) != len(paths) {
		var stuck []string
		for _, p := range paths {
			if indeg[p] > 0 {
				stuck = append(stuck, p)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("import cycle among packages %v", stuck)
	}
	return out, nil
}

// moduleImporter resolves imports from the units this run already checked,
// falling back to the stdlib source importer for everything else. The map
// is what gives the whole run one types world: package P's objects seen
// from a dependent are identical to the ones P's own pass exported facts
// on.
type moduleImporter struct {
	pkgs     map[string]*types.Package
	fallback types.Importer
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}

// mergeFiles joins library and in-package test files in sorted order.
func mergeFiles(lp listedPackage, tests bool) []string {
	files := append([]string(nil), lp.GoFiles...)
	files = append(files, lp.CgoFiles...)
	if tests {
		files = append(files, lp.TestGoFiles...)
	}
	sort.Strings(files)
	return files
}

// checkUnit parses and type-checks one compilation unit.
func checkUnit(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: imp}
	info := NewInfo()
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// goList shells out to `go list -json` and decodes the JSON stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = os.Environ()
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// ModuleRoot walks upward from dir until it finds go.mod, so the driver can
// run from any subdirectory of the repository.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
