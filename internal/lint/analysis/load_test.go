package analysis_test

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"tcn/internal/lint/analysis"
)

const modfile = "module example.com/m\n\ngo 1.22\n"

// writeModule lays out a throwaway module under a temp dir and returns it.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	names := make([]string, 0, len(files))
	//tcnlint:ordered names are sorted before use
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(files[name]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadUnparsableFile(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   modfile,
		"a/bad.go": "package a\n\nfunc broken( {\n",
	})
	_, err := analysis.Load(analysis.LoadConfig{Dir: dir}, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a module with a syntax error")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("error does not name the unparsable file: %v", err)
	}
}

func TestLoadTypeError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": modfile,
		"a/a.go": "package a\n\nvar X int = \"not an int\"\n",
	})
	_, err := analysis.Load(analysis.LoadConfig{Dir: dir}, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a module with a type error")
	}
	if !strings.Contains(err.Error(), "typecheck example.com/m/a") {
		t.Errorf("error does not identify the failing package: %v", err)
	}
}

func TestLoadImportCycle(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": modfile,
		"a/a.go": "package a\n\nimport _ \"example.com/m/b\"\n",
		"b/b.go": "package b\n\nimport _ \"example.com/m/a\"\n",
	})
	_, err := analysis.Load(analysis.LoadConfig{Dir: dir}, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a module with an import cycle")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error does not mention the cycle: %v", err)
	}
}

// TestLoadDeterministicOrder loads the same module twice and asserts an
// identical package sequence, with every dependency preceding its
// dependents — the property the fact store relies on.
func TestLoadDeterministicOrder(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  modfile,
		"a/a.go":  "package a\n\nconst A = 1\n",
		"b/b.go":  "package b\n\nimport \"example.com/m/a\"\n\nconst B = a.A + 1\n",
		"c/c.go":  "package c\n\nimport (\n\t\"example.com/m/a\"\n\t\"example.com/m/b\"\n)\n\nconst C = a.A + b.B\n",
		"zz/z.go": "package zz\n\nimport \"example.com/m/a\"\n\nconst Z = a.A\n",
	})
	order := func() []string {
		t.Helper()
		pkgs, err := analysis.Load(analysis.LoadConfig{Dir: dir}, "./...")
		if err != nil {
			t.Fatal(err)
		}
		var paths []string
		for _, p := range pkgs {
			paths = append(paths, p.Path)
		}
		return paths
	}
	first, second := order(), order()
	if strings.Join(first, " ") != strings.Join(second, " ") {
		t.Fatalf("two loads disagree:\n  %v\n  %v", first, second)
	}
	index := map[string]int{}
	for i, p := range first {
		index[p] = i
	}
	for _, dep := range []struct{ before, after string }{
		{"example.com/m/a", "example.com/m/b"},
		{"example.com/m/a", "example.com/m/c"},
		{"example.com/m/b", "example.com/m/c"},
		{"example.com/m/a", "example.com/m/zz"},
	} {
		bi, ok1 := index[dep.before]
		ai, ok2 := index[dep.after]
		if !ok1 || !ok2 {
			t.Fatalf("package missing from load: %v", first)
		}
		if bi >= ai {
			t.Errorf("%s (pos %d) does not precede its dependent %s (pos %d)", dep.before, bi, dep.after, ai)
		}
	}
}

// TestLoadDependencyClosure loads a single root and asserts its in-module
// dependencies come along as non-Report packages, so their facts exist.
func TestLoadDependencyClosure(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": modfile,
		"a/a.go": "package a\n\nconst A = 1\n",
		"c/c.go": "package c\n\nimport \"example.com/m/a\"\n\nconst C = a.A\n",
	})
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: dir}, "./c")
	if err != nil {
		t.Fatal(err)
	}
	report := map[string]bool{}
	for _, p := range pkgs {
		report[p.Path] = p.Report
	}
	if r, ok := report["example.com/m/c"]; !ok || !r {
		t.Errorf("root package c missing or not Report: %v", report)
	}
	if r, ok := report["example.com/m/a"]; !ok || r {
		t.Errorf("dependency a should load with Report=false: %v", report)
	}
}
