package analysis

import (
	"go/ast"
	"go/types"
)

// Taint is a small forward may-taint dataflow over one function body:
// seed expressions are declared tainted by the client's IsSource, taint
// propagates through assignments, arithmetic, conversions, field and index
// reads, composite literals, and call results (a call with a tainted
// argument or receiver is assumed to return taint — conservative but
// cheap), and the client then asks Expr whether any expression may carry
// taint. Analysis is flow-insensitive: assignments are iterated to a fixed
// point, so taint flows through loops and out-of-order declarations.
//
// The helper is deliberately intraprocedural; interprocedural flows are the
// caller's job via facts (see walltaint: functions returning taint get a
// fact, and the caller's IsSource consults it).
type Taint struct {
	// Info is the pass's type information.
	Info *types.Info
	// IsSource reports whether e, by itself, introduces taint (e.g. a
	// call to time.Now, or to a function carrying a tainted-result fact).
	IsSource func(e ast.Expr) bool

	tainted map[types.Object]bool
}

// Analyze runs the fixed-point over body, after which Expr may be queried.
// A nil body (declaration without definition) is a no-op.
func (t *Taint) Analyze(body ast.Node) {
	t.tainted = map[types.Object]bool{}
	if body == nil {
		return
	}
	for i := 0; i < 16; i++ { // bound: nesting depth of value chains
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					var rhs ast.Expr
					if len(s.Rhs) == len(s.Lhs) {
						rhs = s.Rhs[i]
					} else if len(s.Rhs) == 1 {
						rhs = s.Rhs[0]
					}
					if rhs != nil && t.Expr(rhs) && t.markLHS(lhs) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					var rhs ast.Expr
					if len(s.Values) == len(s.Names) {
						rhs = s.Values[i]
					} else if len(s.Values) == 1 {
						rhs = s.Values[0]
					}
					if rhs != nil && t.Expr(rhs) {
						if obj := t.Info.Defs[name]; obj != nil && !t.tainted[obj] {
							t.tainted[obj] = true
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if s.X != nil && t.Expr(s.X) {
					if s.Key != nil && t.markLHS(s.Key) {
						changed = true
					}
					if s.Value != nil && t.markLHS(s.Value) {
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
}

// markLHS marks the storage behind an assignment target as tainted,
// reporting whether that was new. Selector/index targets taint their root
// object, so a write into one field taints the whole local — imprecise in
// the safe direction.
func (t *Taint) markLHS(lhs ast.Expr) bool {
	for {
		switch x := lhs.(type) {
		case *ast.Ident:
			obj := t.Info.Defs[x]
			if obj == nil {
				obj = t.Info.Uses[x]
			}
			if obj == nil || t.tainted[obj] {
				return false
			}
			t.tainted[obj] = true
			return true
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.ParenExpr:
			lhs = x.X
		default:
			return false
		}
	}
}

// TaintedObject reports whether the analysis concluded obj may hold taint.
func (t *Taint) TaintedObject(obj types.Object) bool { return t.tainted[obj] }

// Expr reports whether e may carry taint.
func (t *Taint) Expr(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if t.IsSource != nil && t.IsSource(e) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := t.Info.Uses[x]; obj != nil && t.tainted[obj] {
			return true
		}
	case *ast.ParenExpr:
		return t.Expr(x.X)
	case *ast.UnaryExpr:
		return t.Expr(x.X)
	case *ast.StarExpr:
		return t.Expr(x.X)
	case *ast.BinaryExpr:
		return t.Expr(x.X) || t.Expr(x.Y)
	case *ast.SelectorExpr:
		return t.Expr(x.X)
	case *ast.IndexExpr:
		return t.Expr(x.X)
	case *ast.SliceExpr:
		return t.Expr(x.X)
	case *ast.TypeAssertExpr:
		return t.Expr(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t.Expr(el) {
				return true
			}
		}
	case *ast.CallExpr:
		// A conversion or call propagates taint from any operand; a call
		// on a tainted receiver is assumed to read it.
		for _, a := range x.Args {
			if t.Expr(a) {
				return true
			}
		}
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && t.Expr(sel.X) {
			return true
		}
	}
	return false
}
