package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a typed datum an analyzer attaches to an object or package while
// analyzing the package that declares it, and retrieves while analyzing a
// package that imports it. Facts are what make the engine cross-package: a
// goshare fact saying "this helper hands its first parameter to a
// goroutine" is exported where the helper is defined and consulted at every
// call site in every dependent package.
//
// Unlike upstream x/tools facts, these are held in memory for the whole
// module run (the driver analyzes every package in one process), so fact
// types need no gob encoding and may carry go/types objects directly. A
// fact type must be a pointer to a struct and should implement fmt.Stringer
// so the linttest golden assertions can render it.
type Fact interface{ AFact() }

// objFactKey identifies one object fact: which analyzer exported it, on
// which object, and the fact's dynamic type (an analyzer may attach several
// facts of distinct types to one object).
type objFactKey struct {
	analyzer *Analyzer
	obj      types.Object
	typ      reflect.Type
}

// pkgFactKey identifies one package fact.
type pkgFactKey struct {
	analyzer *Analyzer
	pkg      *types.Package
	typ      reflect.Type
}

// factStore is the module-wide fact table shared by every pass of one
// driver run. It is written only by the goroutine executing passes, so it
// needs no locking.
type factStore struct {
	obj map[objFactKey]Fact
	pkg map[pkgFactKey]Fact
}

func newFactStore() *factStore {
	return &factStore{obj: map[objFactKey]Fact{}, pkg: map[pkgFactKey]Fact{}}
}

// factType validates that f is a pointer-to-struct fact and returns its
// dynamic type.
func factType(f Fact) reflect.Type {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: fact %T is not a pointer", f))
	}
	return t
}

// copyFact copies the stored fact's contents into the caller's pointer.
func copyFact(dst, src Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

// ObjectFact is one exported object fact, as surfaced to linttest golden
// assertions and `tcnlint -facts` style debugging.
type ObjectFact struct {
	Analyzer *Analyzer
	Object   types.Object
	Fact     Fact
}

// PackageFact is one exported package fact.
type PackageFact struct {
	Analyzer *Analyzer
	Package  *types.Package
	Fact     Fact
}

// objectFacts returns every object fact exported by one of the given
// analyzers, sorted by object position then fact rendering so the order is
// deterministic across runs.
func (s *factStore) objectFacts(analyzers map[*Analyzer]bool, fset *token.FileSet) []ObjectFact {
	var out []ObjectFact
	//tcnlint:ordered the result is sorted before return
	for k, f := range s.obj {
		if analyzers[k.analyzer] {
			out = append(out, ObjectFact{Analyzer: k.analyzer, Object: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Object.Pos()), fset.Position(out[j].Object.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return fmt.Sprint(out[i].Fact) < fmt.Sprint(out[j].Fact)
	})
	return out
}

// packageFacts returns every package fact exported by one of the given
// analyzers, in deterministic (package path, fact) order.
func (s *factStore) packageFacts(analyzers map[*Analyzer]bool) []PackageFact {
	var out []PackageFact
	//tcnlint:ordered the result is sorted before return
	for k, f := range s.pkg {
		if analyzers[k.analyzer] {
			out = append(out, PackageFact{Analyzer: k.analyzer, Package: k.pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i].Package.Path(), out[j].Package.Path(); a != b {
			return a < b
		}
		return fmt.Sprint(out[i].Fact) < fmt.Sprint(out[j].Fact)
	})
	return out
}
