// Package unitcheck catches unit mixups at call sites.
//
// Two rules:
//
//  1. A bare untyped numeric literal (other than 0) passed where a
//     sim.Time or fabric.Rate parameter — or struct field in a composite
//     literal — is expected. `Decide(101, 100)` compiles because untyped
//     constants convert implicitly, but nothing says whether 100 meant
//     nanoseconds or microseconds; the convention is an explicit unit
//     expression (`100*sim.Microsecond`, `10*fabric.Gbps`) or conversion.
//     Zero is exempt: it is the same instant/rate in every unit.
//
//  2. A byte-count/packet-count swap: an argument that is syntactically a
//     packet count (a call to Len/Count/…Packets…) passed to a parameter
//     named like a byte quantity (bytes/size/burst/quantum/cap), or an
//     argument that is a byte count (a call to Bytes/Size/…Bytes…) passed
//     to a parameter named like a packet count (n/num/count/packets).
//
// The type matching is by name — a type named Time in a package named sim,
// Rate in fabric — so the analyzer works identically on the real tree and
// on self-contained test fixtures.
package unitcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"tcn/internal/lint/analysis"
)

// Analyzer is the unitcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "unitcheck",
	Doc:  "flag untyped numeric literals passed as sim.Time/fabric.Rate and bytes-vs-packets call-site mixups",
	Run:  run,
}

// unitName describes a recognized unit type and the idiom to suggest.
func unitName(t types.Type) (string, string) {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", ""
	}
	switch {
	case n.Obj().Name() == "Time" && n.Obj().Pkg().Name() == "sim":
		return "sim.Time", "write units explicitly, e.g. 100*sim.Microsecond"
	case n.Obj().Name() == "Rate" && n.Obj().Pkg().Name() == "fabric":
		return "fabric.Rate", "write units explicitly, e.g. 10*fabric.Gbps"
	}
	return "", ""
}

var (
	bytesParamRE = regexp.MustCompile(`(?i)(bytes|size|burst|quantum|cap)`)
	pktParamRE   = regexp.MustCompile(`(?i)^(n|num\w*|count|packets?|pkts?)$`)
	pktCallRE    = regexp.MustCompile(`^(Len|Count|NumPackets|Packets|TxPackets|EnqPackets)$`)
	bytesCallRE  = regexp.MustCompile(`^(Bytes|Size|TotalBytes|TxBytes|Used|EnqBytes)$`)
)

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, x)
			case *ast.CompositeLit:
				checkComposite(pass, x)
			}
			return true
		})
	}
	return nil, nil
}

// checkCall inspects one call's arguments against its signature.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fnTV, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || fnTV.IsType() {
		return // explicit conversion: the unit decision is visible
	}
	sig, ok := fnTV.Type.Underlying().(*types.Signature)
	if !ok {
		return // builtin
	}
	for i, arg := range call.Args {
		param := paramAt(sig, i)
		if param == nil {
			break
		}
		checkValue(pass, arg, param.Type(), "parameter", paramLabel(param, i))
		checkCountMixup(pass, arg, param, i)
	}
}

// paramAt resolves the parameter for argument index i, handling variadics.
func paramAt(sig *types.Signature, i int) *types.Var {
	np := sig.Params().Len()
	if np == 0 {
		return nil
	}
	if sig.Variadic() && i >= np-1 {
		last := sig.Params().At(np - 1)
		if sl, ok := last.Type().(*types.Slice); ok {
			return types.NewVar(last.Pos(), last.Pkg(), last.Name(), sl.Elem())
		}
		return last
	}
	if i >= np {
		return nil
	}
	return sig.Params().At(i)
}

func paramLabel(param *types.Var, i int) string {
	if param.Name() != "" {
		return "\"" + param.Name() + "\""
	}
	return "#" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// checkComposite inspects struct literal fields.
func checkComposite(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range lit.Elts {
		var fieldType types.Type
		var label string
		var value ast.Expr
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			for j := 0; j < st.NumFields(); j++ {
				if st.Field(j).Name() == key.Name {
					fieldType = st.Field(j).Type()
					break
				}
			}
			label, value = "\""+key.Name+"\"", kv.Value
		} else {
			if i >= st.NumFields() {
				break
			}
			fieldType = st.Field(i).Type()
			label, value = "\""+st.Field(i).Name()+"\"", el
		}
		if fieldType != nil {
			checkValue(pass, value, fieldType, "field", label)
		}
	}
}

// checkValue reports a bare untyped literal flowing into a unit-typed slot.
func checkValue(pass *analysis.Pass, arg ast.Expr, slotType types.Type, slotKind, slotLabel string) {
	unit, hint := unitName(slotType)
	if unit == "" {
		return
	}
	if !isBareLiteral(arg) {
		return
	}
	tv, ok := pass.TypesInfo.Types[arg]
	if ok && tv.Value != nil && constant.Sign(tv.Value) == 0 {
		return // zero carries no unit ambiguity
	}
	pass.Reportf(arg.Pos(), "untyped constant passed as %s %s %s; %s", unit, slotKind, slotLabel, hint)
}

// isBareLiteral reports whether the expression is built purely from
// numeric literals and arithmetic — no identifier anywhere to carry a
// unit. `100` and `3*100` are bare; `100*sim.Microsecond`, `sim.Time(x)`
// and `threshold` are not.
func isBareLiteral(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return x.Kind == token.INT || x.Kind == token.FLOAT
	case *ast.ParenExpr:
		return isBareLiteral(x.X)
	case *ast.UnaryExpr:
		return isBareLiteral(x.X)
	case *ast.BinaryExpr:
		return isBareLiteral(x.X) && isBareLiteral(x.Y)
	default:
		return false
	}
}

// checkCountMixup applies the bytes-vs-packets heuristic.
func checkCountMixup(pass *analysis.Pass, arg ast.Expr, param *types.Var, i int) {
	if !isPlainInt(param.Type()) {
		return
	}
	callName := calledName(arg)
	if callName == "" {
		return
	}
	pname := param.Name()
	switch {
	case bytesParamRE.MatchString(pname) && pktCallRE.MatchString(callName):
		pass.Reportf(arg.Pos(), "%s() returns a packet count but %s expects bytes", callName, paramLabel(param, i))
	case pktParamRE.MatchString(pname) && bytesCallRE.MatchString(callName):
		pass.Reportf(arg.Pos(), "%s() returns a byte count but %s expects a packet count", callName, paramLabel(param, i))
	}
}

// isPlainInt reports whether t is an un-named integer type (a named type
// like sim.Time already carries its unit).
func isPlainInt(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// calledName extracts the function name when arg is a direct call like
// q.Len(i) or Bytes().
func calledName(arg ast.Expr) string {
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return ""
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
