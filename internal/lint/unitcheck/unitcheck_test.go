package unitcheck_test

import (
	"testing"

	"tcn/internal/lint/linttest"
	"tcn/internal/lint/unitcheck"
)

func TestUnitcheck(t *testing.T) {
	// The sim and fabric fixture packages define the unit types; loading
	// them alone must also be clean.
	linttest.Run(t, unitcheck.Analyzer, "unitcheck", "sim", "fabric")
}
