// Package sim (fixture path "wheelsim") mirrors the timing-wheel core's
// slot store. Its cascade-path methods (place, cascade, drainSpill,
// detachRun, requeueRun) are direct hotpath roots — the analyzer checks
// them even though nothing in the fixture calls them — because the real
// wheel relinks whole slots while the event loop is mid-fire. It lives
// apart from the shared "sim" fixture so its want comments do not leak
// into the other analyzers that target that package.
package sim

// wheel is the fixture twin of the engine's hierarchical timing wheel.
type wheel struct {
	slots    [8][]func()
	overflow []func()
	names    map[int]string
	run      []func()
}

// place is a true negative: indexing preallocated storage does not grow
// anything and is allowed on the cascade path.
func (w *wheel) place(i int, fn func()) {
	w.slots[i&7][0] = fn
}

// cascade redistributes an overflow slot into lower levels; growing the
// destination slot through its field is flagged, because each rollover
// would then allocate inside the event loop.
func (w *wheel) cascade(lvl, s int) {
	for _, fn := range w.overflow {
		w.slots[s&7] = append(w.slots[s&7], fn) // want `append through "w" may grow on the hot path`
	}
	_ = lvl
}

// drainSpill walks beyond-horizon timers back into the wheel; a map keyed
// by timer id would randomize the re-insertion order on top of allocating.
func (w *wheel) drainSpill() {
	for id := range w.names { // want `map iteration on the hot path`
		_ = id
	}
}

// detachRun shows the waiver etiquette for the run scratch: the append
// reuses capacity after warm-up, which the analyzer cannot prove, so the
// real wheel records it with a line waiver.
func (w *wheel) detachRun() {
	w.run = append(w.run, nil) //tcnlint:hotpath run scratch reuses its capacity after warm-up
}

// requeueRun drains the scratch back into slot zero without growing it.
func (w *wheel) requeueRun() {
	for i, fn := range w.run {
		w.slots[0][i] = fn
	}
	w.run = w.run[:0]
}
