// Package exhaustive exercises the enum-totality rule over the fixture
// core package: switches on core.Reason must list every exported constant
// or carry an explicit default.
package exhaustive

import "core"

// name misses a member and has no default.
func name(r core.Reason) string {
	switch r { // want `switch on core\.Reason is not exhaustive: missing ReasonDropTail`
	case core.ReasonUnknown:
		return "unknown"
	case core.ReasonTCNThreshold:
		return "tcn"
	}
	return ""
}

// missingTwo lists the missing members in value order.
func missingTwo(r core.Reason) bool {
	switch r { // want `missing ReasonUnknown, ReasonDropTail`
	case core.ReasonTCNThreshold:
		return true
	}
	return false
}

// covered lists every exported member; the unexported sentinel is not
// required.
func covered(r core.Reason) string {
	switch r {
	case core.ReasonUnknown:
		return "unknown"
	case core.ReasonTCNThreshold:
		return "tcn"
	case core.ReasonDropTail:
		return "droptail"
	}
	return ""
}

// defaulted opts out with an explicit default: partial coverage on purpose.
func defaulted(r core.Reason) string {
	switch r {
	case core.ReasonTCNThreshold:
		return "tcn"
	default:
		return "other"
	}
}

// waived records a deliberately partial switch with the line directive.
func waived(r core.Reason) bool {
	//tcnlint:exhaustive only threshold marks matter to this probe
	switch r {
	case core.ReasonTCNThreshold:
		return true
	}
	return false
}

// singleton switches over a one-constant type: not an enum, not checked.
func singleton(s core.Stage) bool {
	switch s {
	case core.StageEnqueue:
		return true
	}
	return false
}

// plainInt switches over a non-enum type: never checked.
func plainInt(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}
