// Package exhaustivedigest exercises the enum-totality rule over the
// fixture digest package: switches on digest.Component must list every
// exported constant or carry an explicit default, exactly like the core
// enums.
package exhaustivedigest

import "digest"

// name misses a member and has no default.
func name(c digest.Component) string {
	switch c { // want `switch on digest\.Component is not exhaustive: missing ComponentQdisc`
	case digest.ComponentEngine:
		return "engine"
	case digest.ComponentRand:
		return "rand"
	}
	return ""
}

// missingTwo lists the missing members in value order.
func missingTwo(c digest.Component) bool {
	switch c { // want `missing ComponentEngine, ComponentQdisc`
	case digest.ComponentRand:
		return true
	}
	return false
}

// covered lists every exported member; the unexported sentinel is not
// required.
func covered(c digest.Component) string {
	switch c {
	case digest.ComponentEngine:
		return "engine"
	case digest.ComponentRand:
		return "rand"
	case digest.ComponentQdisc:
		return "qdisc"
	}
	return ""
}

// defaulted opts out with an explicit default: partial coverage on
// purpose.
func defaulted(c digest.Component) string {
	switch c {
	case digest.ComponentEngine:
		return "engine"
	default:
		return "other"
	}
}

// waived records a deliberately partial switch with the line directive.
func waived(c digest.Component) bool {
	//tcnlint:exhaustive only the engine chain matters to this probe
	switch c {
	case digest.ComponentEngine:
		return true
	}
	return false
}
