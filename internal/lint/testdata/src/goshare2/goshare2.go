// Package goshare2 is the caller half of the cross-package ownership
// fixture: every goroutine hand-off happens inside package helper, so the
// PR-2 syntactic goshare (which only inspected go statements in the package
// under analysis) provably reported nothing here. The v2 interprocedural
// rules catch each escape at this call site via helper's Leaks facts.
package goshare2

import (
	"goshare2/helper"
	"sim"
)

// share hands its engine to helper.Attach, which spawns a goroutine over
// it two layers down.
func share() {
	e := sim.NewEngine()
	helper.Attach(e) // want `argument hands a sim\.Engine \(event freelist\) to another goroutine \(ownership leak via Attach\)`
}

// startShared leaks through a method receiver: the server containing the
// engine is handed to Start's goroutine.
func startShared() {
	s := helper.Keep(sim.NewEngine())
	s.Start() // want `receiver hands a value containing a sim\.Engine \(event freelist\) to another goroutine \(ownership leak via Start\)`
}

// keep stores the engine without any goroutine: no diagnostic.
func keep() *helper.Server {
	return helper.Keep(sim.NewEngine())
}

// waived documents a deliberate cross-package hand-off.
func waived() {
	e := sim.NewEngine()
	helper.Attach(e) //tcnlint:goshare race-detector demo hands the engine off deliberately
}
