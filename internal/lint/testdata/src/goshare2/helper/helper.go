// Package helper is the dependency half of the cross-package goshare
// fixture: its functions hand their arguments to goroutines behind an API
// boundary, which only the Leaks facts exported here make visible to the
// caller's package.
package helper

import "sim"

// Server stows an engine, as the telemetry servers do for real.
type Server struct {
	eng *sim.Engine
}

// Attach stores the engine in a server and spawns its loop: the engine
// escapes to the new goroutine through a local carrier plus a method call —
// two layers the old syntactic check could not see from the caller.
func Attach(e *sim.Engine) { // wantfact `^leaks\(params=0\)$`
	s := &Server{eng: e}
	go s.loop()
}

func (s *Server) loop() { _ = s.eng.Now() }

// Start spawns the receiver's loop, leaking the receiver itself.
func (s *Server) Start() { // wantfact `^leaks\(recv\)$`
	go s.loop()
}

// Keep merely stores the engine: storing is not leaking, and callers are
// not flagged.
func Keep(e *sim.Engine) *Server {
	return &Server{eng: e}
}
