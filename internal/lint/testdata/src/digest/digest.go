// Package digest is a self-contained stand-in for tcn/internal/digest,
// so the exhaustive fixture can exercise the Component totality rule
// without importing the module.
package digest

// Component mirrors the real fingerprint-chain enum.
type Component uint8

// The fixture components: enough members for exhaustiveness to be a real
// constraint.
const (
	ComponentEngine Component = 0
	ComponentRand   Component = 1
	ComponentQdisc  Component = 2
)

// numComponents is the unexported sentinel; never a required case.
const numComponents Component = 3

var _ = numComponents
