// Package walltaint exercises the wall-clock taint rules: time.Now and
// perf.Clock readings must not become simulated time, event schedules,
// rand seeds, or verdict fields — however many assignments or helper
// calls launder them on the way.
package walltaint

import (
	"time"

	"core"
	"perf"
	"prof"
	"sim"
)

// wallNow launders the wall clock through a helper; the conversion is
// flagged here and the function is marked so callers see taint too.
func wallNow() sim.Time { // wantfact `^taintedResult$`
	ns := time.Now().UnixNano()
	return sim.Time(ns) // want `wall-clock value reaches a conversion to sim\.Time`
}

// schedule forwards its delay into the event loop: parameter 1 becomes a
// sink for every caller.
func schedule(e *sim.Engine, d sim.Time) { // wantfact `^sinkParams\(\[1\]\)$`
	e.After(d, func() {})
}

// viaHelper trips both facts at once: a laundered wall reading into a
// sink-forwarding helper.
func viaHelper(e *sim.Engine) {
	schedule(e, wallNow()) // want `wall-clock value reaches parameter 1 of schedule`
}

// direct schedules straight off a laundered reading.
func direct(e *sim.Engine) {
	w := wallNow()
	e.After(w, func() {}) // want `wall-clock value reaches sim\.Engine\.After`
}

// viaClock taints through the injected clock type rather than the time
// package.
func viaClock(c perf.Clock) sim.Time {
	return sim.Time(c()) // want `wall-clock value reaches a conversion to sim\.Time`
}

// seeded seeds determinism-bearing randomness from the wall clock.
func seeded() *sim.Rand {
	return sim.NewRand(time.Now().UnixNano()) // want `wall-clock value reaches a rand seed \(NewRand\)`
}

// stamp writes wall time into the attribution record.
func stamp(v *core.Verdict, c perf.Clock) {
	v.Sojourn = c() // want `wall-clock value reaches core\.Verdict field Sojourn`
}

// telemetry is the sanctioned consumer: wall time into the perf campaign
// is what the observatory is for. No diagnostic.
func telemetry(cam *perf.Campaign, c perf.Clock) {
	cam.Observe(c())
}

// profWallSampling is the cost profiler's sanctioned flow: a prof.Clock
// reading charged to a profiler counter is the telemetry plane working as
// designed. No diagnostic.
func profWallSampling(p *prof.Profiler, c prof.Clock, last int64) {
	p.SampleWall(c() - last)
}

// profWallIntoSimState is profWallSampling's forbidden twin: the same
// prof.Clock reading, un-waivered, pushed into the event loop instead of
// a profiler counter. The profiler allowance is the destination, never
// the source.
func profWallIntoSimState(e *sim.Engine, c prof.Clock) {
	e.After(sim.Time(c()), func() {}) // want `wall-clock value reaches a conversion to sim\.Time` `wall-clock value reaches sim\.Engine\.After`
}

// simTimeOnly derives everything from the simulated clock. No diagnostic.
func simTimeOnly(e *sim.Engine) {
	d := 2 * sim.Millisecond
	e.After(d, func() {})
}

// waived documents a deliberate wall-clock flow with the line directive.
func waived(e *sim.Engine) {
	e.After(sim.Time(time.Since(start).Nanoseconds()), func() {}) //tcnlint:walltaint demo: soak test paces itself on wall time
}

var start = time.Now()
