// Package core is a self-contained stand-in for tcn/internal/core, so
// the verdict fixtures can exercise the attribution rule (a type named
// Verdict in a package named core) without importing the module.
package core

import "pkt"

// Reason mirrors the real attribution enum.
type Reason uint8

// ReasonTCNThreshold is the one reason the fixtures fire.
const ReasonTCNThreshold Reason = 1

// Verdict mirrors the real decision record.
type Verdict struct {
	Reason Reason
	Marked bool
}

// Fire mirrors the real attribution wrapper: the sanctioned home of the
// direct Mark calls, waived exactly like the module's own.
func (v *Verdict) Fire(r Reason, p *pkt.Packet) bool {
	if v == nil {
		return p.Mark() //tcnlint:verdict nil-verdict fallback
	}
	if p.Mark() { //tcnlint:verdict Fire is the attribution wrapper itself
		v.Reason = r
		v.Marked = true
		return true
	}
	return false
}
