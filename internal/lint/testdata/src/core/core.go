// Package core is a self-contained stand-in for tcn/internal/core, so
// the verdict, exhaustive, and walltaint fixtures can exercise the
// attribution rules (a type named Verdict, enums like Reason, in a package
// named core) without importing the module.
package core

import "pkt"

// Reason mirrors the real attribution enum.
type Reason uint8

// The fixture reasons: enough members for exhaustiveness to be a real
// constraint.
const (
	ReasonUnknown      Reason = 0
	ReasonTCNThreshold Reason = 1
	ReasonDropTail     Reason = 2
)

// numReasons is the unexported sentinel; never a required case.
const numReasons Reason = 3

// Stage mirrors the real pipeline stage tag, with a single exported
// constant: one member is not an enum, so switches over it are unchecked.
type Stage uint8

// StageEnqueue is the lone fixture stage.
const StageEnqueue Stage = 0

// Verdict mirrors the real decision record.
type Verdict struct {
	Reason  Reason
	Marked  bool
	Sojourn int64
}

// Fire mirrors the real attribution wrapper: the sanctioned home of the
// direct Mark calls, waived exactly like the module's own.
func (v *Verdict) Fire(r Reason, p *pkt.Packet) bool {
	if v == nil {
		return p.Mark() //tcnlint:verdict nil-verdict fallback
	}
	if p.Mark() { //tcnlint:verdict Fire is the attribution wrapper itself
		v.Reason = r
		v.Marked = true
		return true
	}
	return false
}

var _ = numReasons
