// Package sim is a self-contained stand-in for tcn/internal/sim, so the
// unitcheck and seededrand fixtures can exercise the real matching rules
// (a type named Time in a package named sim) without importing the module.
package sim

// Time mirrors tcn/internal/sim.Time.
type Time int64

// Unit constants, as in the real package.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)
