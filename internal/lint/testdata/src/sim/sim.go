// Package sim is a self-contained stand-in for tcn/internal/sim, so the
// unitcheck, seededrand, goshare, hotpath, and walltaint fixtures can
// exercise the real matching rules (a type named Time, an Engine with
// scheduling methods, in a package named sim) without importing the module.
package sim

// Time mirrors tcn/internal/sim.Time.
type Time int64

// Unit constants, as in the real package.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Engine mirrors tcn/internal/sim.Engine — a single-owner event loop with
// a node freelist — so the goshare, hotpath, and walltaint fixtures can
// exercise the real matching rules.
type Engine struct {
	now Time
	q   []func()
}

// NewEngine returns a fresh engine owned by the calling goroutine.
func NewEngine() *Engine { return &Engine{} }

// Now returns the engine clock.
func (e *Engine) Now() Time { return e.now }

// At schedules fn at an absolute time (fixture: order of insertion).
func (e *Engine) At(t Time, fn func()) {
	e.now = t
	e.q = append(e.q, fn)
}

// After schedules fn a delay after now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Run drains the event loop, dispatching each scheduled callback — the
// dynamic-call edge the hotpath fixtures root their reachability in.
func (e *Engine) Run() {
	for _, fn := range e.q {
		fn()
	}
}
