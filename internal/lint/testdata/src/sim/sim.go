// Package sim is a self-contained stand-in for tcn/internal/sim, so the
// unitcheck and seededrand fixtures can exercise the real matching rules
// (a type named Time in a package named sim) without importing the module.
package sim

// Time mirrors tcn/internal/sim.Time.
type Time int64

// Unit constants, as in the real package.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Engine mirrors tcn/internal/sim.Engine — a single-owner event loop with
// a node freelist — so the goshare fixtures can exercise the real matching
// rules.
type Engine struct{ now Time }

// NewEngine returns a fresh engine owned by the calling goroutine.
func NewEngine() *Engine { return &Engine{} }

// Now returns the engine clock.
func (e *Engine) Now() Time { return e.now }

// Run drains the event loop (fixture stub).
func (e *Engine) Run() {}
