package sim

import "math/rand"

// Rand mirrors tcn/internal/sim.Rand. This file is the one place allowed
// to touch math/rand constructors: seededrand exempts rand.go inside a
// package whose path is sim (the fixture twin of tcn/internal/sim).
type Rand struct{ *rand.Rand }

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}
