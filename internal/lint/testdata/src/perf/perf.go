// Package perf is a self-contained stand-in for tcn/internal/obs/perf, so
// the walltaint fixtures can exercise the injected wall-clock rules (a
// type named Clock in a package named perf) without importing the module.
package perf

// Clock mirrors perf.Clock: an injected wall-clock reading in nanoseconds.
type Clock func() int64

// Campaign mirrors the telemetry sink; wall time may land here freely.
type Campaign struct {
	WallLast int64
}

// Observe records a wall-clock sample. Telemetry is not simulator state,
// so walltaint deliberately does not treat this as a sink.
func (c *Campaign) Observe(ns int64) { c.WallLast = ns }
