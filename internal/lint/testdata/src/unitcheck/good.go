package unitcheck

import (
	"fabric"
	"sim"
)

// True negatives: explicit units, explicit conversions, zero, named
// constants, and correctly-paired byte/packet arguments.

func proper(b buffer) {
	// Unit expressions and conversions name their units.
	schedule(100*sim.Microsecond, sim.Time(1500))
	schedule(0, sim.Millisecond) // zero is unit-free

	const warmup = 150 * sim.Millisecond
	schedule(warmup, warmup)

	cfg := portConfig{
		Rate:      10 * fabric.Gbps,
		PropDelay: 5 * sim.Microsecond,
		Queues:    8,
	}
	_ = cfg

	// Bytes flow into the byte slot, packets into the packet slot.
	admit(b.Bytes(), b.Len())
}

var _ = proper
