package unitcheck

import (
	"fabric"
	"sim"
)

// schedule takes simulator units.
func schedule(at sim.Time, budget sim.Time) sim.Time { return at + budget }

// portConfig mirrors fabric.PortConfig's unit-typed fields.
type portConfig struct {
	Rate      fabric.Rate
	PropDelay sim.Time
	Queues    int
}

// buffer mirrors byte/packet accounting accessors.
type buffer struct{}

func (buffer) Len() int   { return 3 }
func (buffer) Bytes() int { return 4500 }

// admit takes a byte-count and a packet-count.
func admit(sizeBytes int, pkts int) bool { return sizeBytes > pkts }

func misuse(b buffer) {
	// Bare literals: is 100 nanoseconds or microseconds? The compiler
	// cannot say; the analyzer insists the units be written down.
	schedule(100, 2*sim.Microsecond) // want `untyped constant passed as sim\.Time parameter "at"`
	schedule(sim.Time(100), 3*1000)  // want `untyped constant passed as sim\.Time parameter "budget"`

	cfg := portConfig{
		Rate:      40,  // want `untyped constant passed as fabric\.Rate field "Rate"`
		PropDelay: 500, // want `untyped constant passed as sim\.Time field "PropDelay"`
		Queues:    8,   // plain int field: no unit to confuse
	}
	_ = cfg

	// Positional composite literal form.
	cfg2 := portConfig{10, 0, 8} // want `untyped constant passed as fabric\.Rate field "Rate"`
	_ = cfg2

	// Bytes-vs-packets swaps at the call site.
	admit(b.Len(), b.Bytes()) // want `Len\(\) returns a packet count but "sizeBytes" expects bytes` `Bytes\(\) returns a byte count but "pkts" expects a packet count`
}

var _ = misuse
