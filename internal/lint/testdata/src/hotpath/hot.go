// Package hotpath exercises the hot-path allocation rules: step and tick
// are scheduled onto the fixture engine, so they are reachable from
// sim.Engine.Run through the call graph's dynamic-call edge and must obey
// the allocation-free contract.
package hotpath

import (
	"fmt"
	"sim"
)

// table is package-level state the hot callbacks touch.
var table = struct {
	ring []int
	byID map[int]int
}{}

// wire schedules the callbacks; wire itself stays cold (nothing schedules
// it), so its own closure creation is not charged.
func wire(e *sim.Engine) {
	e.At(5*sim.Millisecond, step)
	e.After(1*sim.Millisecond, tick)
	e.Run()
}

// step runs inside the event loop: every allocation source below is hot.
func step() {
	fmt.Println("tick") // want `fmt\.Println on the hot path allocates`

	table.ring = append(table.ring, 1) // want `append through "table" may grow on the hot path`

	for k := range table.byID { // want `map iteration on the hot path`
		_ = k
	}

	n := len(table.ring)
	box(n) // want `argument boxes a int into an interface on the hot path`
}

// tick demonstrates closure capture and the waiver etiquette.
func tick() {
	x := 0
	bump := func() { x++ } // want `closure captures "x" inside the hot path`
	bump()

	if len(table.ring) > 1<<20 {
		// The panic path never runs in steady state; the conservative
		// graph cannot know that, the waiver records it.
		panic(fmt.Sprintf("ring overflow: %d", len(table.ring))) //tcnlint:hotpath cold panic path
	}
}

// box takes an interface, forcing its callers to box concrete arguments.
func box(v any) { _ = v }

// scratch appends to a frame-local slice: the backing array stays with the
// frame, so it is not flagged.
func scratch() int {
	local := make([]int, 0, 8)
	local = append(local, 1)
	return len(local)
}

func init() {
	// Keep the cold helpers referenced.
	_ = scratch
}
