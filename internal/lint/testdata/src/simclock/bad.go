package simclock

import (
	"fmt"
	"time"
)

// measure uses every forbidden wall-clock entry point.
func measure() {
	start := time.Now()          // want `wall-clock time\.Now is forbidden`
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep is forbidden`
	elapsed := time.Since(start) // want `wall-clock time\.Since is forbidden`
	fmt.Println(elapsed)
	<-time.After(time.Second)       // want `wall-clock time\.After is forbidden`
	t := time.NewTimer(time.Second) // want `wall-clock time\.NewTimer is forbidden`
	defer t.Stop()
	tk := time.NewTicker(time.Hour) // want `wall-clock time\.NewTicker is forbidden`
	defer tk.Stop()
}

// deadline carries a wall-clock instant through a struct.
type deadline struct {
	at time.Time // want `time\.Time is forbidden`
}

// remaining mixes time.Time values and wall-clock queries.
func remaining(d deadline) time.Duration { // Duration itself is allowed
	return time.Until(d.at) // want `wall-clock time\.Until is forbidden`
}

var _ = measure
var _ = remaining
