package simclock

import (
	"flag"
	"time"
)

// True negatives: time.Duration is legal (front ends parse flag.Duration
// at the boundary), and formatting utilities that never read the host
// clock pass untouched.

// flagDur parses a duration flag; no wall clock involved.
func flagDur(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("dur", 200*time.Millisecond, "simulated duration")
}

// toNanos converts a parsed duration to integer nanoseconds for the
// simulator clock.
func toNanos(d time.Duration) int64 { return d.Nanoseconds() }

var _ = flagDur
var _ = toNanos
