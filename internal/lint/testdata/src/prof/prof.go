// Package prof is a self-contained stand-in for tcn/internal/obs/prof, so
// the walltaint fixtures can exercise the cost profiler's injected
// wall-clock rules (a type named Clock in a package named prof) without
// importing the module.
package prof

// Clock mirrors prof.Clock: the injected wall source of the telemetry
// plane, in nanoseconds.
type Clock func() int64

// Profiler mirrors the cost-attribution tree; wall self-time may land in
// its counters freely.
type Profiler struct {
	WallNs int64
}

// SampleWall records a wall-clock interval against the current scope.
// Telemetry is not simulator state, so walltaint deliberately does not
// treat this as a sink.
func (p *Profiler) SampleWall(ns int64) { p.WallNs += ns }
