package verdict

import (
	"core"
	"pkt"
)

// Legal shapes: routing through Fire, marking with no verdict in scope,
// and an explicitly waived direct mark.

// fired routes the mark through the attribution wrapper — the intended
// marker shape.
func fired(p *pkt.Packet, v *core.Verdict) {
	v.Fire(core.ReasonTCNThreshold, p)
}

// noVerdict has no verdict in scope, so the rule leaves it alone (this
// is how pkt's own tests exercise Mark).
func noVerdict(p *pkt.Packet) bool {
	return p.Mark()
}

// waived documents a sanctioned direct mark line by line.
func waived(p *pkt.Packet, v *core.Verdict) {
	p.Mark() //tcnlint:verdict fixture-sanctioned direct mark
}

// notAPacket proves the rule keys on the packet type, not the method
// name: unrelated Mark methods stay legal.
type gauge struct{ n int }

func (g *gauge) Mark() bool { g.n++; return true }

func otherMark(g *gauge, v *core.Verdict) {
	g.Mark()
}

// markWithArgs is out of shape (pkt.Packet.Mark takes no arguments), so
// a same-named helper with arguments is not matched.
func verdictless(p *pkt.Packet) {
	helper := func() { _ = p.Mark() }
	helper()
}
