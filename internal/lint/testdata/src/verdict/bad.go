package verdict

import (
	"core"
	"pkt"
)

// Each case marks a packet directly while a verdict is in scope, so the
// mark reaches the wire without a recorded reason and must be flagged.

// directMark is the canonical bug: a marker receives the verdict and
// ignores it.
func directMark(p *pkt.Packet, v *core.Verdict) {
	p.Mark() // want `"p"\.Mark\(\) bypasses verdict attribution`
}

// conditionalMark hides the direct mark behind marker-style control
// flow, the shape of a real OnDequeue.
func conditionalMark(sojourn, threshold int64, p *pkt.Packet, v *core.Verdict) bool {
	if sojourn < threshold {
		return false
	}
	return p.Mark() // want `"p"\.Mark\(\) bypasses verdict attribution`
}

// closureMark buries the call in a helper closure; the enclosing marker
// still owns the verdict.
func closureMark(p *pkt.Packet, v *core.Verdict) {
	mark := func() {
		p.Mark() // want `"p"\.Mark\(\) bypasses verdict attribution`
	}
	mark()
}

// litVerdict declares the verdict on the closure itself.
var litVerdict = func(p *pkt.Packet, v *core.Verdict) {
	p.Mark() // want `"p"\.Mark\(\) bypasses verdict attribution`
}

// markerState shows the receiver position counts too.
type markerState struct{ marks int }

// fire is a method whose parameter list carries the verdict.
func (m *markerState) fire(p *pkt.Packet, v *core.Verdict) {
	m.marks++
	p.Mark() // want `"p"\.Mark\(\) bypasses verdict attribution`
}

// onVerdict has the verdict as the receiver, like core.Verdict's own
// methods; an unwaived direct mark there is just as unattributed.
type myVerdict = core.Verdict

func helperOn(v *core.Verdict, p *pkt.Packet) {
	if fresh(p).Mark() { // want `"packet"\.Mark\(\) bypasses verdict attribution`
		v.Marked = true
	}
}

// fresh returns its argument; it exists so a non-ident receiver
// exercises the "packet" fallback in the diagnostic.
func fresh(p *pkt.Packet) *pkt.Packet { return p }
