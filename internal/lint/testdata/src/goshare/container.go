package goshare

import (
	"pkt"
	"sim"
)

// The v2 rules: a struct holding single-owner state is itself single-owner,
// and a channel send is an ownership transfer.

// stack bundles an engine with its packet pool, as the transport fixtures
// do for real.
type stack struct {
	eng  *sim.Engine
	pool *pkt.Pool
}

// containerShare hands the whole stack to a goroutine: the engine inside
// goes with it.
func containerShare() {
	s := &stack{eng: sim.NewEngine(), pool: &pkt.Pool{}}
	go use(s) // want `"s" contains a sim\.Engine \(event freelist\) and is shared with a goroutine`
}

func use(*stack) {}

// sendEngine pushes the engine itself through a channel; the receiver
// becomes a second owner.
func sendEngine(ch chan *sim.Engine) {
	e := sim.NewEngine()
	ch <- e // want `channel send hands a sim\.Engine \(event freelist\) to another goroutine`
}

// sendContainer is the same transfer hidden one struct layer down.
func sendContainer(ch chan *stack) {
	s := &stack{eng: sim.NewEngine()}
	ch <- s // want `channel send hands a value containing a sim\.Engine \(event freelist\)`
}

// sendWaived documents a deliberate hand-off where the sender provably
// drops its reference.
func sendWaived(ch chan *sim.Engine) {
	e := sim.NewEngine()
	ch <- e //tcnlint:goshare ownership transfer; sender never touches e again
}

// localContainer builds the stack inside the goroutine: sole owner, legal.
func localContainer(done chan struct{}) {
	go func() {
		s := &stack{eng: sim.NewEngine()}
		use(s)
		close(done)
	}()
}

// plainSend shares only ordinary values over the channel.
func plainSend(ch chan sim.Time) {
	ch <- sim.Nanosecond
}
