package goshare

import (
	"pkt"
	"sim"
)

// True negatives: goroutine-local construction, hand-off of a value the
// parent never retains, shareable plain state, and the explicit waiver.

// localEngine builds its engine inside the goroutine: sole owner, legal.
func localEngine(done chan struct{}) {
	go func() {
		eng := sim.NewEngine()
		eng.Run()
		_ = eng.Now()
		close(done)
	}()
}

// localPool likewise owns its freelist outright.
func localPool(done chan struct{}) {
	go func() {
		var pool pkt.Pool
		pool.Put(pool.Get())
		close(done)
	}()
}

// freshArg constructs the engine in the argument list: ownership transfers
// to the goroutine and the parent keeps no reference.
func freshArg() {
	go func(e *sim.Engine) { e.Run() }(sim.NewEngine())
}

// plainState shares only ordinary values (a result slot, a channel); the
// rule is scoped to the single-owner freelist/rand types.
func plainState(out []sim.Time, done chan struct{}) {
	go func() {
		out[0] = sim.Nanosecond
		close(done)
	}()
}

// waived documents a deliberate share with the line directive — e.g. a
// test that exists to prove the race detector catches exactly this.
func waived() {
	eng := sim.NewEngine()
	go func() {
		eng.Run() //tcnlint:goshare race-detector fixture needs a genuine share
	}()
}
