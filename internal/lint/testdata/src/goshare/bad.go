package goshare

import (
	"math/rand"
	"pkt"
	"sim"
)

// Each case hands single-owner state to a goroutine and must be flagged,
// whether the value is captured by a closure, passed as an argument, or
// used as a call receiver.

// capturedEngine leaks the caller's engine into a closure goroutine.
func capturedEngine() {
	eng := sim.NewEngine()
	go func() {
		_ = eng.Now() // want `"eng" \(sim\.Engine \(event freelist\)\) is shared with a goroutine`
	}()
}

// engineArg passes the engine as a goroutine argument — same bug, no
// closure needed.
func engineArg() {
	eng := sim.NewEngine()
	go drain(eng) // want `"eng" \(sim\.Engine \(event freelist\)\)`
}

func drain(e *sim.Engine) { e.Run() }

// engineReceiver spawns a method of a shared engine.
func engineReceiver() {
	eng := sim.NewEngine()
	go eng.Run() // want `"eng" \(sim\.Engine \(event freelist\)\)`
}

// capturedRand shares a seeded source: concurrent draws race and replay
// order becomes schedule-dependent.
func capturedRand() {
	r := sim.NewRand(7)
	go func() {
		_ = r.Intn(10) // want `"r" \(sim\.Rand\)`
	}()
}

// rawRand catches the underlying math/rand type too.
func rawRand(src *rand.Rand) {
	go func() {
		_ = src.Int63() // want `"src" \(rand\.Rand\)`
	}()
}

// sharedPool hands the packet freelist to a goroutine.
func sharedPool() {
	var pool pkt.Pool
	go func() {
		pool.Put(pool.Get()) // want `"pool" \(pkt\.Pool \(packet freelist\)\)`
	}()
}
