package seededrand

import randv2 "math/rand/v2"

// Methods on an explicit v2 source are fine: the ban is on the shared
// global, not on the algorithms. (Constructing the source is the sim
// package's job; here one arrives as a parameter.)

func goodV2(r *randv2.Rand) int {
	return r.IntN(10)
}

func goodV2Typed(p *randv2.PCG) uint64 {
	return p.Uint64()
}
