package seededrand

import (
	"math/rand"
	"sim"
)

// True negatives: drawing from an explicitly threaded generator is fine —
// the ban is on the hidden global source, not on the algorithms.

// draw consumes the experiment's seeded source.
func draw(r *sim.Rand, n int) int { return r.Intn(n) }

// methods on a *rand.Rand value passed in from sim.NewRand are fine too.
func shuffled(r *rand.Rand, xs []int) {
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

var _ = draw
var _ = shuffled
