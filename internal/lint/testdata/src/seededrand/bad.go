package seededrand

import "math/rand"

// jitter draws from the shared global source: irreproducible.
func jitter(n int) int {
	if rand.Float64() < 0.5 { // want `math/rand\.Float64 uses an unseeded global source`
		return rand.Intn(n) // want `math/rand\.Intn uses an unseeded global source`
	}
	rand.Shuffle(n, func(i, j int) {}) // want `math/rand\.Shuffle uses an unseeded global source`
	return 0
}

// freshSource builds a private source outside the sim package, which is
// still forbidden: all generators must descend from the experiment seed.
func freshSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `math/rand\.New uses` `math/rand\.NewSource uses`
}

var _ = jitter
var _ = freshSource
