package seededrand

import randv2 "math/rand/v2"

// The v2 package's top-level functions draw from the runtime-seeded global
// source: calls are irreproducible and must be flagged just like v1's.

func badV2() int {
	a := randv2.IntN(10)      // want `math/rand/v2\.IntN uses an unseeded global source`
	b := randv2.N(5)          // want `math/rand/v2\.N uses an unseeded global source`
	c := int(randv2.Uint64()) // want `math/rand/v2\.Uint64 uses an unseeded global source`
	d := randv2.Float64()     // want `math/rand/v2\.Float64 uses an unseeded global source`
	return a + b + c + int(d)
}
