// Package fabric is a self-contained stand-in for tcn/internal/fabric used
// by the unitcheck fixtures.
package fabric

// Rate mirrors tcn/internal/fabric.Rate.
type Rate int64

// Common rates.
const (
	Kbps Rate = 1e3
	Mbps Rate = 1e6
	Gbps Rate = 1e9
)
