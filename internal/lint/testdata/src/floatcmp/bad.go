package floatcmp

// markProbability mirrors the shape of core.MarkProbability for the
// threshold-comparison cases the analyzer exists to catch.
func markProbability(sojourn, tmin, tmax, pmax float64) float64 {
	if tmax == tmin { // want `exact floating-point == comparison`
		return 0
	}
	if sojourn < tmin {
		return 0
	}
	return pmax * (sojourn - tmin) / (tmax - tmin)
}

// checkQuantile compares a computed quantile for exact equality.
func checkQuantile(got, want float64) bool {
	return got == want // want `exact floating-point == comparison`
}

// isDefault uses a float zero-sentinel.
func isDefault(frac float64) bool {
	return frac != 0 // want `exact floating-point != comparison`
}

// mixed compares a float32 against an untyped constant.
func mixed(x float32) bool {
	return x == 0.25 // want `exact floating-point == comparison`
}
