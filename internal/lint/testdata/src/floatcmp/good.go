package floatcmp

import "math"

// True negatives: ordered comparisons, integer comparisons, epsilon
// comparisons, constant folds, and a justified exact check.

// almostEqual is the sanctioned pattern: tolerance, not equality.
func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// ordered comparisons carry no exactness assumption.
func below(x, threshold float64) bool { return x < threshold }

// integer equality is exact by construction.
func sameBytes(a, b int64) bool { return a == b }

// constant fold: evaluated at compile time, exact by definition.
const half = 0.5
const isHalf = half == 0.5

// exactPropagation pins an IEEE identity on purpose.
func exactPropagation(x float64) bool {
	//tcnlint:floatexact NaN is the only value that differs from itself
	return x != x
}

var _ = almostEqual
var _ = below
var _ = sameBytes
var _ = isHalf
var _ = exactPropagation
