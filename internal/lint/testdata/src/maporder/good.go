package maporder

import (
	"sort"
	"testing"
)

// True negatives: commutative folds, per-key writes, sorted-key iteration,
// justified loops, and test assertions.

// totalBytes folds with integer addition, which commutes: any visit order
// yields the same sum.
func totalBytes(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// invert writes through the loop key: each iteration touches a distinct
// element, so order cannot be observed.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// sortedKeys materializes and sorts the keys before any ordered effect:
// the append target is keys itself, justified because the very next line
// sorts it.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//tcnlint:ordered keys are sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// floatSumJustified shows the trailing-comment form of the directive.
func floatSumJustified(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { //tcnlint:ordered consumed only by a tolerance check
		sum += v
	}
	return sum
}

// assertAll fails the test for bad entries; testing.T methods only fire on
// failure, so passing runs stay byte-identical.
func assertAll(t *testing.T, m map[string]int) {
	for k, v := range m {
		if v < 0 {
			t.Errorf("negative value for %s: %d", k, v)
		}
	}
}

// counts increments per-key counters in a second map.
func counts(m map[string]int, tally map[string]int) {
	for k := range m {
		tally[k]++
	}
}
