package maporder

import "fmt"

// collect appends map values in iteration order: the slice differs from
// run to run.
func collect(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `map iteration order leaks through an append to out`
	}
	return out
}

// emit writes directly during iteration.
func emit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `map iteration order leaks through a fmt\.Printf call`
	}
}

// notify sends each key over a channel in visit order.
func notify(m map[string]bool, ch chan string) {
	for k := range m {
		ch <- k // want `map iteration order leaks through a channel send`
	}
}

// meanLatency accumulates floats: FP addition is not associative, so the
// rounding — and the reported mean — depends on visit order.
func meanLatency(byFlow map[int]float64) float64 {
	var sum float64
	for _, x := range byFlow {
		sum += x // want `map iteration order leaks through a floating-point accumulation into sum`
	}
	return sum / float64(len(byFlow))
}

// lastSeen keeps whichever entry the runtime happens to visit last.
func lastSeen(m map[int]string) string {
	var last string
	for _, v := range m {
		last = v // want `map iteration order leaks through a last-writer-wins assignment to last`
	}
	return last
}

// joined concatenates in visit order.
func joined(m map[int]string) string {
	s := ""
	for _, v := range m {
		s += v // want `map iteration order leaks through a string concatenation into s`
	}
	return s
}
