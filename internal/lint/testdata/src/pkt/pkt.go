// Package pkt is a self-contained stand-in for tcn/internal/pkt, so the
// goshare fixtures can exercise the packet-pool matching rule (a type
// named Pool in a package named pkt) without importing the module.
package pkt

// Packet mirrors the real packet skeleton, including the ECN bits the
// verdict fixtures need.
type Packet struct {
	Seq int64
	ECT bool // ECN-capable transport
	CE  bool // congestion experienced
}

// Mark mirrors pkt.Packet.Mark: apply CE, reporting whether the packet
// was ECN-capable.
func (p *Packet) Mark() bool {
	if !p.ECT {
		return false
	}
	p.CE = true
	return true
}

// Pool mirrors tcn/internal/pkt.Pool: a single-owner packet freelist.
type Pool struct{ free []*Packet }

// Get pops a recycled packet or allocates a fresh one.
func (p *Pool) Get() *Packet {
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free = p.free[:n-1]
		return x
	}
	return &Packet{}
}

// Put returns a packet to the freelist.
func (p *Pool) Put(x *Packet) { p.free = append(p.free, x) }
