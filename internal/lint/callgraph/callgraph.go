// Package callgraph builds a conservative static call graph of the whole
// module, as an analyzer other analyzers Require rather than a check of its
// own (it reports no diagnostics).
//
// Each package pass records one node per function declaration and function
// literal, with edges classified three ways:
//
//   - static: the callee is a named function or a method on a concrete
//     receiver, recorded as its types.Func (cross-package edges resolve
//     during assembly because the loader gives the whole run one types
//     world);
//   - interface: the callee is an interface method; assembly resolves it
//     CHA-style to every concrete method of that name on any module type
//     implementing the interface;
//   - dynamic: the callee is a function value (a field, parameter, or
//     variable); assembly resolves it to every module function or closure
//     whose signature is identical and whose value escapes into callback
//     plumbing.
//
// "Escapes into callback plumbing" is the one refinement over a naive
// address-taken check, and it is what keeps the graph usable: every
// reference to a function value is classified by context. Values stored
// into struct fields, map/slice elements, or package-level variables,
// returned from a function, or passed as an argument to another module
// function (which may stow them — sim.Engine.At does exactly that) are
// global dynamic-call candidates. Values passed to a non-module function
// (a sort.Slice comparator) or bound to a plain local variable instead get
// a direct edge from the referencing function — they can only run where
// they were created, so a scheduler loop's `fn()` should not claim them.
// The known gap is a two-step flow through a local (f := step; t.cb = f):
// the store of f is untracked because f is a variable, not a function.
//
// Interface and dynamic resolution remain over-approximate —
// conservative in the direction that matters for the hotpath and goshare
// consumers, which must never silently miss a reachable function. The
// per-package graphs are published as package facts; ModuleGraph stitches
// every fact visible to a pass into one queryable graph. Because the driver
// runs callgraph over all packages before any dependent analyzer starts,
// the stitched graph covers the full module, including packages that import
// the one under analysis (an event callback defined in transport is
// reachable from sim.Engine.Run even though sim never imports transport).
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"tcn/internal/lint/analysis"
)

// Analyzer builds the per-package call-graph fragment.
var Analyzer = &analysis.Analyzer{
	Name: "callgraph",
	Doc:  "build the module call graph (static + method sets, conservative on interfaces and function values); a library for other analyzers, reports nothing itself",
	Run:  run,
}

// Node is one function — declaration or literal — in the graph.
type Node struct {
	// Obj is the declared function or method; nil for a literal.
	Obj *types.Func
	// Lit is the function literal; nil for a declaration.
	Lit *ast.FuncLit
	// Pos is the declaration or literal position.
	Pos token.Pos
	// Sig is the function signature.
	Sig *types.Signature
	// AddrTaken reports that the function's value escapes into callback
	// plumbing — a field or package-level store, a return value, or an
	// argument to a module function — making it a candidate target for
	// dynamic calls of its signature anywhere in the module.
	AddrTaken bool
	// Pkg is the defining package.
	Pkg *types.Package
	// File is the syntax file holding the node, for directive lookups.
	File *ast.File
	// Body is the function body; nil for bodyless declarations.
	Body *ast.BlockStmt

	staticObjs []*types.Func
	staticLits []*Node
	ifaceCalls []*types.Func
	dynSigs    []*types.Signature
	// refEdges are direct edges to function values referenced in contexts
	// that cannot feed global dynamic dispatch (locals, stdlib-call args);
	// populated during assembly.
	refEdges []*Node
}

// RefKind classifies the context a function value is referenced in.
type RefKind int

const (
	// RefPlain binds the value to a plain local variable or another
	// frame-local context.
	RefPlain RefKind = iota
	// RefArg passes the value as an argument to a call.
	RefArg
	// RefStore writes the value into storage that outlives the frame: a
	// struct field, a map or slice element, or a package-level variable.
	RefStore
	// RefReturn returns the value to the caller.
	RefReturn
)

// Ref is one non-call reference to a function value.
type Ref struct {
	// Obj is the referenced declared function; nil when a literal.
	Obj *types.Func
	// Lit is the referenced literal's node; nil when a declared function.
	Lit *Node
	// From is the enclosing function node, nil at package scope.
	From *Node
	// Kind is the reference context.
	Kind RefKind
	// Callee is, for RefArg, the static callee the value is passed to;
	// nil for a dynamic or builtin callee.
	Callee *types.Func
}

// Name renders a stable human-readable label ("(*Engine).Run", "func@12").
func (n *Node) Name() string {
	if n.Obj != nil {
		if recv := n.Sig.Recv(); recv != nil {
			return "(" + recv.Type().String() + ")." + n.Obj.Name()
		}
		return n.Obj.Name()
	}
	return "func literal"
}

// PkgGraph is the package fact carrying one package's fragment.
type PkgGraph struct {
	Pkg   *types.Package
	Nodes []*Node
	// Named lists the package's named non-interface types, for CHA
	// interface resolution.
	Named []*types.TypeName
	// Refs lists every non-call reference this package makes to a
	// function value (possibly one declared in another package), with the
	// context it was referenced in.
	Refs []*Ref
}

// AFact marks PkgGraph as a fact.
func (*PkgGraph) AFact() {}

func (g *PkgGraph) String() string { return "callgraph" }

func run(pass *analysis.Pass) (any, error) {
	g := &PkgGraph{Pkg: pass.Pkg}

	// Named types, for CHA.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
			if _, isIface := tn.Type().Underlying().(*types.Interface); !isIface {
				g.Named = append(g.Named, tn)
			}
		}
	}

	for _, f := range pass.Files {
		b := &builder{pass: pass, g: g, file: f}
		b.file1(f)
	}
	pass.ExportPackageFact(g)
	return g, nil
}

// builder walks one file attributing calls to the innermost enclosing
// function node.
type builder struct {
	pass    *analysis.Pass
	g       *PkgGraph
	file    *ast.File
	lits    map[*ast.FuncLit]*Node
	stack   []*Node
	handled map[*ast.Ident]bool
}

func (b *builder) file1(f *ast.File) {
	// Pre-create literal nodes so call classification can reference them
	// regardless of traversal order.
	b.lits = map[*ast.FuncLit]*Node{}
	b.handled = map[*ast.Ident]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			sig, _ := b.pass.TypesInfo.Types[lit].Type.(*types.Signature)
			node := &Node{Lit: lit, Pos: lit.Pos(), Sig: sig, Pkg: b.pass.Pkg, File: f, Body: lit.Body}
			b.lits[lit] = node
			b.g.Nodes = append(b.g.Nodes, node)
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			obj, _ := b.pass.TypesInfo.Defs[x.Name].(*types.Func)
			if obj == nil {
				return false
			}
			node := &Node{Obj: obj, Pos: x.Pos(), Sig: obj.Type().(*types.Signature), Pkg: b.pass.Pkg, File: b.file, Body: x.Body}
			b.g.Nodes = append(b.g.Nodes, node)
			b.stack = append(b.stack, node)
			if x.Body != nil {
				ast.Inspect(x.Body, walk)
			}
			b.stack = b.stack[:len(b.stack)-1]
			return false
		case *ast.FuncLit:
			node := b.lits[x]
			b.stack = append(b.stack, node)
			ast.Inspect(x.Body, walk)
			b.stack = b.stack[:len(b.stack)-1]
			return false
		case *ast.CallExpr:
			b.call(x)
			// A function value passed as an argument is classified by the
			// callee: a module function may stow it for later dispatch, a
			// non-module one can only invoke it in place.
			callee := b.staticCalleeObj(x)
			for _, a := range x.Args {
				b.refIfFunc(a, RefArg, callee)
				ast.Inspect(a, walk)
			}
			// Control descent so the callee ident is not misread as an
			// address-taken reference: of the callee walk only its
			// receiver/operand subexpressions.
			switch fn := ast.Unparen(x.Fun).(type) {
			case *ast.Ident:
				// consumed by call()
			case *ast.SelectorExpr:
				ast.Inspect(fn.X, walk)
			default:
				ast.Inspect(fn, walk)
			}
			return false
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, rhs := range x.Rhs {
					b.refIfFunc(rhs, b.lhsKind(x.Lhs[i]), nil)
				}
			}
		case *ast.ValueSpec:
			kind := RefPlain
			if b.current() == nil {
				kind = RefStore // package-level var initializer
			}
			for _, v := range x.Values {
				b.refIfFunc(v, kind, nil)
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				b.refIfFunc(elt, RefStore, nil)
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				b.refIfFunc(r, RefReturn, nil)
			}
		case *ast.Ident:
			b.ident(x)
		}
		return true
	}
	ast.Inspect(f, walk)
}

// staticCalleeObj resolves the statically-known callee of a call, nil for
// dynamic calls, builtins, and conversions.
func (b *builder) staticCalleeObj(call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := b.pass.TypesInfo.Uses[fn].(*types.Func); ok {
			return origin(f)
		}
	case *ast.SelectorExpr:
		if f, ok := b.pass.TypesInfo.Uses[fn.Sel].(*types.Func); ok {
			return origin(f)
		}
	}
	return nil
}

// lhsKind classifies an assignment target: storage that outlives the frame
// (field, element, dereference, package-level variable) versus a plain
// local binding.
func (b *builder) lhsKind(lhs ast.Expr) RefKind {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return RefStore // x.f, m[k], *p
	}
	obj := b.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = b.pass.TypesInfo.Uses[id]
	}
	if v, ok := obj.(*types.Var); ok && v.Parent() == b.pass.Pkg.Scope() {
		return RefStore // package-level variable
	}
	return RefPlain
}

// refIfFunc records a reference when e is a function literal, a named
// function, or a method value; other expressions are left to the generic
// walk.
func (b *builder) refIfFunc(e ast.Expr, kind RefKind, callee *types.Func) {
	ref := &Ref{From: b.current(), Kind: kind, Callee: callee}
	switch v := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		ref.Lit = b.lits[v]
	case *ast.Ident:
		f, ok := b.pass.TypesInfo.Uses[v].(*types.Func)
		if !ok {
			return
		}
		ref.Obj = origin(f)
		b.handled[v] = true
	case *ast.SelectorExpr:
		f, ok := b.pass.TypesInfo.Uses[v.Sel].(*types.Func)
		if !ok {
			return
		}
		ref.Obj = origin(f)
		b.handled[v.Sel] = true
	default:
		return
	}
	b.g.Refs = append(b.g.Refs, ref)
}

// current returns the innermost enclosing function node, or nil at package
// level (composite literal initializers etc.).
func (b *builder) current() *Node {
	if len(b.stack) == 0 {
		return nil
	}
	return b.stack[len(b.stack)-1]
}

// call classifies one call expression.
func (b *builder) call(call *ast.CallExpr) {
	cur := b.current()
	fun := ast.Unparen(call.Fun)

	if tv, ok := b.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}

	switch fn := fun.(type) {
	case *ast.FuncLit:
		if cur != nil {
			cur.staticLits = append(cur.staticLits, b.lits[fn])
		}
		return
	case *ast.Ident:
		switch obj := b.pass.TypesInfo.Uses[fn].(type) {
		case *types.Func:
			if cur != nil {
				cur.staticObjs = append(cur.staticObjs, origin(obj))
			}
			return
		case *types.Builtin, *types.TypeName, nil:
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := b.pass.TypesInfo.Selections[fn]; ok {
			if m, ok := sel.Obj().(*types.Func); ok {
				if cur != nil {
					if isInterface(sel.Recv()) {
						cur.ifaceCalls = append(cur.ifaceCalls, origin(m))
					} else {
						cur.staticObjs = append(cur.staticObjs, origin(m))
					}
				}
				return
			}
		} else if obj, ok := b.pass.TypesInfo.Uses[fn.Sel].(*types.Func); ok {
			// Package-qualified call: pkg.Fn().
			if cur != nil {
				cur.staticObjs = append(cur.staticObjs, origin(obj))
			}
			return
		}
	}

	// Anything else of function type is a dynamic call.
	if cur != nil {
		if tv, ok := b.pass.TypesInfo.Types[call.Fun]; ok {
			if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
				cur.dynSigs = append(cur.dynSigs, sig)
			}
		}
	}
}

// ident records any function reference the context-specific cases did not
// claim as a plain (frame-local) reference. Method values arrive here too:
// the Sel ident of an uncalled selector comes through the default walk.
// Call-position idents never arrive: the CallExpr case consumes them and
// prunes descent.
func (b *builder) ident(id *ast.Ident) {
	if b.handled[id] {
		return
	}
	obj, ok := b.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return
	}
	b.g.Refs = append(b.g.Refs, &Ref{Obj: origin(obj), From: b.current(), Kind: RefPlain})
}

func origin(f *types.Func) *types.Func { return f.Origin() }

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// Graph is the stitched module graph.
type Graph struct {
	Nodes []*Node

	byObj     map[*types.Func]*Node
	named     []*types.TypeName
	addrTaken []*Node
}

// ModuleGraph assembles every PkgGraph fact visible to the pass (which,
// given the driver's analyzer-outer execution order, is the whole module)
// into one graph. The pass must Require callgraph.Analyzer.
func ModuleGraph(pass *analysis.Pass) *Graph {
	g := &Graph{byObj: map[*types.Func]*Node{}}
	var refs []*Ref
	for _, pf := range pass.AllPackageFacts() {
		pg, ok := pf.Fact.(*PkgGraph)
		if !ok {
			continue
		}
		for _, n := range pg.Nodes {
			g.Nodes = append(g.Nodes, n)
			n.refEdges = nil // nodes are shared across ModuleGraph calls
			if n.Obj != nil {
				g.byObj[n.Obj] = n
			}
		}
		g.named = append(g.named, pg.Named...)
		refs = append(refs, pg.Refs...)
	}
	// Classify every reference: escaping contexts make the target a global
	// dynamic-dispatch candidate; frame-local ones add a direct edge from
	// the referencing function. References at package scope (var
	// initializers) conservatively count as escaping.
	called := map[*Node]bool{}
	for _, n := range g.Nodes {
		for _, l := range n.staticLits {
			if l != nil {
				called[l] = true
			}
		}
	}
	eligible := map[*Node]bool{}
	referenced := map[*Node]bool{}
	for _, r := range refs {
		target := r.Lit
		if target == nil {
			target = g.byObj[r.Obj]
		}
		if target == nil {
			continue // references a function outside the module
		}
		referenced[target] = true
		escapes := false
		switch r.Kind {
		case RefStore, RefReturn:
			escapes = true
		case RefArg:
			// A module callee (or an unknown dynamic one) may stow the
			// value for later dispatch; a non-module callee can only
			// invoke it in place.
			escapes = r.Callee == nil || g.byObj[r.Callee] != nil
		}
		if escapes || r.From == nil {
			eligible[target] = true
		} else {
			r.From.refEdges = append(r.From.refEdges, target)
		}
	}
	for _, n := range g.Nodes {
		switch {
		case n.Lit != nil:
			// Safety net: a literal neither called in place nor seen in
			// any classified reference stays a global candidate.
			n.AddrTaken = eligible[n] || (!called[n] && !referenced[n])
		case n.Obj != nil:
			n.AddrTaken = eligible[n]
		}
	}
	return g
}

// NodeFor returns the node declaring obj, or nil for functions outside the
// analyzed set (stdlib).
func (g *Graph) NodeFor(obj *types.Func) *Node {
	if obj == nil {
		return nil
	}
	return g.byObj[obj.Origin()]
}

// Roots returns every node matching the predicate.
func (g *Graph) Roots(match func(*Node) bool) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if match(n) {
			out = append(out, n)
		}
	}
	return out
}

// Reachable computes the set of nodes reachable from roots through static,
// interface (CHA), and dynamic (signature-matched, escaping) edges, plus
// the direct edges recorded for frame-local function references.
func (g *Graph) Reachable(roots []*Node) map[*Node]bool {
	seen := map[*Node]bool{}
	var queue []*Node
	push := func(n *Node) {
		if n != nil && !seen[n] {
			seen[n] = true
			queue = append(queue, n)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, o := range n.staticObjs {
			push(g.byObj[o])
		}
		for _, l := range n.staticLits {
			push(l)
		}
		for _, m := range n.ifaceCalls {
			for _, impl := range g.implementers(m) {
				push(impl)
			}
		}
		for _, sig := range n.dynSigs {
			for _, cand := range g.dynTargets(sig) {
				push(cand)
			}
		}
		for _, t := range n.refEdges {
			push(t)
		}
	}
	return seen
}

// implementers resolves an interface method to every concrete module
// method that could satisfy it (CHA).
func (g *Graph) implementers(m *types.Func) []*Node {
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*Node
	for _, tn := range g.named {
		t := tn.Type()
		pt := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(pt, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(pt, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			if n := g.byObj[fn.Origin()]; n != nil {
				out = append(out, n)
			}
		}
	}
	return out
}

// dynTargets resolves a dynamic call of signature sig to every
// address-taken node whose (bound) signature is identical.
func (g *Graph) dynTargets(sig *types.Signature) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if !n.AddrTaken || n.Sig == nil {
			continue
		}
		if boundIdentical(n.Sig, sig) {
			out = append(out, n)
		}
	}
	return out
}

// boundIdentical compares a node's signature (receiver dropped — a method
// value is bound) against a call-site signature.
func boundIdentical(have, want *types.Signature) bool {
	if have.Variadic() != want.Variadic() {
		return false
	}
	return types.Identical(have.Params(), want.Params()) &&
		types.Identical(have.Results(), want.Results())
}
