// Package exhaustive requires switches over the core enums to be total.
//
// The attribution machinery keys everything on the core enums — core.Reason
// names why a packet was marked or dropped, core.EventKind names what a
// trace row records, core.Stage names where a verdict was taken. A switch
// over one of them that silently falls through on an unlisted constant is
// how a new reason added for one scheduler quietly vanishes from another's
// accounting. The analyzer therefore requires every switch whose tag is a
// core enum to either list every exported constant of the enum or carry an
// explicit default case. The digest package's Component enum (which names
// the per-component fingerprint chains tcndiff localizes divergences to)
// is covered by the same rule: a Component missing from a switch is a
// digest series that silently never renders.
//
// Membership comes from an Enums package fact exported when the analyzer
// visits the defining package, so dependents see exactly the constants the
// core package declares (unexported sentinels such as numReasons are not
// members); when no fact is available — the defining package was outside
// the analyzed set — the analyzer falls back to scanning the imported
// package scope. Coverage is judged by constant value, so aliasing
// constants count for each other. A deliberate partial switch can be waived
// line by line with a `//tcnlint:exhaustive` comment.
package exhaustive

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"tcn/internal/lint/analysis"
)

// Analyzer is the exhaustive check.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc:  "switches over core/digest enums (Reason, Stage, EventKind, Component) must cover every exported constant or carry a default",
	Run:  run,
}

// Enums is the package fact listing an enum package's members: enum type
// name to its exported constant names, in declaration-value order.
type Enums struct {
	Members map[string][]string
}

// AFact marks Enums as a fact.
func (*Enums) AFact() {}

func (e *Enums) String() string {
	var names []string
	//tcnlint:ordered names are sorted before rendering
	for n := range e.Members {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("enums(")
	for i, n := range names {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(n + "=" + strings.Join(e.Members[n], "|"))
	}
	b.WriteString(")")
	return b.String()
}

// enumPackage reports whether pkg is an enum-defining package the
// totality rule covers: core (Reason, Stage, EventKind) and digest
// (Component), or their bare fixture twins.
func enumPackage(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "tcn/internal/core", "core", "tcn/internal/digest", "digest":
		return true
	}
	return false
}

// collectEnums scans a package scope for enum types: named types with a
// basic integer underlying type and at least two exported constants of
// exactly that type.
func collectEnums(pkg *types.Package) map[string][]*types.Const {
	enums := map[string][]*types.Const{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Pkg() != pkg {
			continue
		}
		basic, ok := named.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			continue
		}
		enums[named.Obj().Name()] = append(enums[named.Obj().Name()], c)
	}
	for name, members := range enums {
		if len(members) < 2 {
			delete(enums, name)
			continue
		}
		sort.SliceStable(members, func(i, j int) bool {
			vi, _ := constant.Int64Val(members[i].Val())
			vj, _ := constant.Int64Val(members[j].Val())
			if vi != vj {
				return vi < vj
			}
			return members[i].Name() < members[j].Name()
		})
	}
	return enums
}

func run(pass *analysis.Pass) (any, error) {
	// Publish membership when visiting the defining package itself.
	if enumPackage(pass.Pkg) {
		fact := &Enums{Members: map[string][]string{}}
		// Each name's member list comes from collectEnums pre-sorted; the
		// outer map range only distributes lists to distinct keys.
		//tcnlint:ordered per-key order comes from the sorted members slice
		for name, members := range collectEnums(pass.Pkg) {
			for _, m := range members {
				fact.Members[name] = append(fact.Members[name], m.Name())
			}
		}
		if len(fact.Members) > 0 {
			pass.ExportPackageFact(fact)
		}
	}

	for _, f := range pass.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, file, sw)
			return true
		})
	}
	return nil, nil
}

// checkSwitch verifies one tagged switch over a core enum.
func checkSwitch(pass *analysis.Pass, file *ast.File, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	def := named.Obj()
	if !enumPackage(def.Pkg()) || !def.Exported() {
		return
	}
	members := enumMembers(pass, def)
	if len(members) < 2 {
		return
	}

	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: partial coverage is deliberate
		}
		for _, e := range cc.List {
			if v, ok := pass.TypesInfo.Types[e]; ok && v.Value != nil {
				covered[v.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.val] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	if analysis.LineCommentDirective(pass.Fset, file, sw.Pos(), "exhaustive") {
		return
	}
	pass.Reportf(sw.Pos(), "switch on %s.%s is not exhaustive: missing %s (add the cases or an explicit default)",
		def.Pkg().Name(), def.Name(), strings.Join(missing, ", "))
}

// member pairs a constant name with its exact value rendering.
type member struct {
	name string
	val  string
}

// enumMembers resolves the enum's exported constants, preferring the Enums
// fact exported by the defining package's pass and falling back to a direct
// scope scan.
func enumMembers(pass *analysis.Pass, def *types.TypeName) []member {
	pkg := def.Pkg()
	byName := map[string]*types.Const{}
	for name, members := range collectEnums(pkg) {
		if name != def.Name() {
			continue
		}
		for _, c := range members {
			byName[c.Name()] = c
		}
	}

	var fact Enums
	if pass.ImportPackageFact(pkg, &fact) {
		var out []member
		for _, name := range fact.Members[def.Name()] {
			if c, ok := byName[name]; ok {
				out = append(out, member{name: name, val: c.Val().ExactString()})
			}
		}
		return out
	}
	// No fact (defining package outside the run): scope scan only.
	var out []member
	// A single key survives the name filter, and its members slice comes
	// from collectEnums pre-sorted.
	//tcnlint:ordered one key passes the filter; members are pre-sorted
	for name, members := range collectEnums(pkg) {
		if name != def.Name() {
			continue
		}
		for _, c := range members {
			out = append(out, member{name: c.Name(), val: c.Val().ExactString()})
		}
	}
	return out
}
