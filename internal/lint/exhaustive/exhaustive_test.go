package exhaustive_test

import (
	"testing"

	"tcn/internal/lint/exhaustive"
	"tcn/internal/lint/linttest"
)

func TestExhaustive(t *testing.T) {
	linttest.Run(t, exhaustive.Analyzer, "exhaustive", "exhaustivedigest")
}
