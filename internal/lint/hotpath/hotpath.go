// Package hotpath enforces the zero-allocation discipline on code
// reachable from the simulator's inner loop.
//
// The event core's perf contract (pinned by AllocsPerRun tests and the CI
// bench-smoke gate) is that steady-state simulation does not allocate:
// events and packets recycle through freelists, and the enqueue→dequeue
// datapath runs on preallocated rings. That contract is easy to break from
// a distance — a helper three calls away from sim.Engine.Run quietly gains
// a fmt.Sprintf or an appending slice, and the alloc gate only catches it
// after the fact, in whichever benchmark happens to cross the new code.
//
// hotpath moves the check to the source. It consumes the callgraph
// analyzer's module-wide facts and computes everything reachable from the
// hot roots — sim.Engine.Run/RunUntil (including every scheduled callback,
// via the call graph's conservative dynamic-call resolution), the timing
// wheel's cascade path (wheel.place/cascade/drainSpill/detachRun/
// requeueRun, which relink whole slots mid-fire and must reuse their
// scratch storage), fabric.Port.Send/transmitNext, and
// qdisc.Qdisc.Enqueue/dequeue — then
// flags the well-known allocation sources inside reachable functions:
// closures capturing variables, concrete values boxed into interface
// parameters, append through non-local slices, map iteration, and any fmt
// call. Test files are exempt (they assert on the hot path but do not run
// in it), as is package main (CLI progress output is deliberately
// wall-clock-paced and allocating).
//
// Three contexts are cold by construction and skipped without a waiver:
// the arguments of panic(...) (a terminal path — the formatting runs once,
// right before the process dies), calls into internal/invariant (release
// builds compile the whole call away because invariant.Enabled is a
// constant false without the invariants tag), and the bodies of
// `if invariant.Enabled { ... }` guards (dead-code-eliminated the same
// way). Anything else the conservative graph reaches that is genuinely
// cold — one-time warm-up, rare resize — is waived line by line with
// `//tcnlint:hotpath` and a justification.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"tcn/internal/lint/analysis"
	"tcn/internal/lint/callgraph"
)

// Analyzer is the hotpath check.
var Analyzer = &analysis.Analyzer{
	Name:     "hotpath",
	Doc:      "forbid allocation sources (closures, interface boxing, escaping append, map ranges, fmt) in functions reachable from the simulator hot path",
	Requires: []*analysis.Analyzer{callgraph.Analyzer},
	Run:      run,
}

// hotRoots names the entry points of the allocation-free region, keyed by
// package (real module path or bare fixture twin), receiver type, and
// method name.
func isRoot(n *callgraph.Node) bool {
	if n.Obj == nil || n.Sig == nil || n.Sig.Recv() == nil {
		return false
	}
	pkg := n.Obj.Pkg()
	if pkg == nil {
		return false
	}
	recv := recvName(n.Sig.Recv().Type())
	if pkg.Name() == "sim" && recv == "wheel" {
		// The timing wheel's cascade path: these redistribute whole slots
		// (or the spill list) while the event loop is mid-fire, so they
		// carry the same zero-allocation contract as the loop itself.
		// They are rooted directly — not just reached through Engine.Run —
		// so the check cannot silently lapse if the graph loses the edge
		// through the engine's nilable wheel field. Matched by package
		// name, not path, so the fixture twin (testdata path "wheelsim",
		// package sim) exercises the same rule.
		switch n.Obj.Name() {
		case "place", "cascade", "drainSpill", "detachRun", "requeueRun":
			return true
		}
		return false
	}
	switch pkg.Path() {
	case "tcn/internal/sim", "sim":
		return recv == "Engine" && (n.Obj.Name() == "Run" || n.Obj.Name() == "RunUntil")
	case "tcn/internal/fabric", "fabric":
		return recv == "Port" && (n.Obj.Name() == "Send" || n.Obj.Name() == "transmitNext")
	case "tcn/internal/qdisc", "qdisc":
		return recv == "Qdisc" && (n.Obj.Name() == "Enqueue" || n.Obj.Name() == "dequeue")
	}
	return false
}

func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	g := callgraph.ModuleGraph(pass)
	reach := g.Reachable(g.Roots(isRoot))

	for n := range reach {
		if n.Pkg != pass.Pkg || n.Body == nil {
			continue
		}
		pos := pass.Fset.Position(n.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		checkNode(pass, n)
	}
	return nil, nil
}

// checkNode flags allocation sources in one reachable function body. Nested
// literals are pruned: each is its own graph node and is checked separately
// if reachable, while the act of creating a capturing closure is charged to
// the enclosing function here.
func checkNode(pass *analysis.Pass, n *callgraph.Node) {
	report := func(pos ast.Node, format string, args ...any) {
		if analysis.LineCommentDirective(pass.Fset, n.File, pos.Pos(), "hotpath") {
			return
		}
		pass.Reportf(pos.Pos(), format, args...)
	}

	var walk func(x ast.Node) bool
	walk = func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			if name := capturedVar(pass, v); name != "" {
				report(v, "closure captures %q inside the hot path (reachable from the event loop); closures allocate — hoist the state or use AtArg", name)
			}
			return false // the literal's body is its own node
		case *ast.IfStmt:
			if isInvariantGuard(pass, v.Cond) {
				return false // compiled away without the invariants tag
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[v.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(v, "map iteration on the hot path: order is randomized and the loop defeats the allocation-free contract; use a dense slice")
				}
			}
		case *ast.CallExpr:
			if coldCall(pass, v) {
				return false // panic(...) args / invariant.Checkf never run steady-state
			}
			checkCall(pass, report, v)
		}
		return true
	}
	ast.Inspect(n.Body, walk)
}

// coldCall reports calls whose arguments never execute in steady state: the
// builtin panic (terminal) and anything in internal/invariant (gated behind
// the invariants build tag; a constant-false Enabled eliminates the call).
func coldCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "panic" {
			return true
		}
	}
	if obj := staticCallee(pass.TypesInfo, call); obj != nil && obj.Pkg() != nil {
		p := obj.Pkg().Path()
		if p == "tcn/internal/invariant" || p == "invariant" {
			return true
		}
	}
	return false
}

// isInvariantGuard matches conditions that reference the invariant.Enabled
// build-tag constant, directly or as one operand of && / !.
func isInvariantGuard(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != "Enabled" {
			return true
		}
		c, ok := pass.TypesInfo.Uses[id].(*types.Const)
		if !ok || c.Pkg() == nil {
			return true
		}
		if p := c.Pkg().Path(); p == "tcn/internal/invariant" || p == "invariant" {
			found = true
		}
		return !found
	})
	return found
}

// capturedVar returns the name of a variable the literal captures from an
// enclosing function, or "". Package-level variables are not captures (no
// closure cell is allocated for them).
func capturedVar(pass *analysis.Pass, lit *ast.FuncLit) string {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() != pass.Pkg {
			return true
		}
		if v.Parent() == pass.Pkg.Scope() {
			return true // package-level, not captured
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // the literal's own local or parameter
		}
		found = v.Name()
		return false
	})
	return found
}

// checkCall flags fmt calls, interface boxing at call boundaries, and
// appends through non-local slices.
func checkCall(pass *analysis.Pass, report func(ast.Node, string, ...any), call *ast.CallExpr) {
	info := pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}

	// Builtin append through a target the function does not own locally.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" && len(call.Args) > 0 {
				if root := rootIdent(call.Args[0]); root != nil {
					if v, ok := info.Uses[root].(*types.Var); ok && escapingSliceTarget(pass, call.Args[0], v) {
						report(call, "append through %q may grow on the hot path; preallocate the ring and index it instead", v.Name())
					}
				}
			}
			return
		}
	}

	// fmt on the hot path always allocates (boxing + formatting buffers).
	obj := staticCallee(info, call)
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		report(call, "fmt.%s on the hot path allocates; format off the hot path or record raw fields", obj.Name())
		return
	}

	// Interface boxing: a concrete non-pointer-shaped value passed where
	// the callee takes an interface is wrapped in a freshly allocated
	// interface payload.
	sig := calleeSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Value != nil || at.IsNil() {
			continue // constants fold; nil is the zero interface
		}
		if types.IsInterface(at.Type) || pointerShaped(at.Type) {
			continue
		}
		report(arg, "argument boxes a %s into an interface on the hot path; each call allocates — take the concrete type or pass a pointer", at.Type.String())
	}
}

// staticCallee resolves the called *types.Func, or nil for dynamic calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// calleeSignature returns the callee's signature for static and dynamic
// calls alike.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// paramType resolves the effective parameter type for argument i,
// flattening the variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// pointerShaped reports whether values of t fit an interface word without
// a heap copy.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// rootIdent walks to the base identifier of a selector/index/star chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// escapingSliceTarget reports whether the append target lives beyond the
// function's own frame: a field, a dereference, or any variable declared
// outside the enclosing literal/declaration. A plain local slice is the
// caller's own scratch space and stays with the frame.
func escapingSliceTarget(pass *analysis.Pass, target ast.Expr, root *types.Var) bool {
	if _, isIdent := target.(*ast.Ident); !isIdent {
		return true // s.buf, *p, ring[i]: storage outside the frame
	}
	if root.Parent() == pass.Pkg.Scope() {
		return true // package-level slice
	}
	return false
}
