package hotpath_test

import (
	"testing"

	"tcn/internal/lint/hotpath"
	"tcn/internal/lint/linttest"
)

func TestHotpath(t *testing.T) {
	linttest.Run(t, hotpath.Analyzer, "hotpath", "wheelsim")
}
