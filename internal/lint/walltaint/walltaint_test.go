package walltaint_test

import (
	"testing"

	"tcn/internal/lint/linttest"
	"tcn/internal/lint/walltaint"
)

func TestWalltaint(t *testing.T) {
	linttest.Run(t, walltaint.Analyzer, "walltaint")
}
