// Package walltaint tracks wall-clock values into simulator state.
//
// simclock already bans the time package inside internal/ wholesale, but it
// is a blunt instrument: cmd/ is blanket-exempt (the CLI legitimately
// reports wall-clock progress), and the perf observatory injects wall time
// on purpose through perf.Clock. What actually matters is narrower than
// "who imports time": no wall-clock-derived VALUE may reach simulator
// state, wherever the code lives. A wall-clock reading that seeds a rand
// source, becomes a sim.Time, lands in a core.Verdict field, or schedules
// an event makes runs unreproducible in a way no import ban can see once
// the value has been laundered through a variable or a helper function.
//
// The analyzer runs a forward taint analysis per function: sources are
// time.Now/Since/Until, calls through a perf.Clock or prof.Clock value,
// and calls to any function carrying a TaintedResult fact; sinks are
// sim.Engine scheduling arguments (At/After/AtArg/AfterArg), conversions
// to sim.Time, rand seeding (sim.NewRand, math/rand.NewSource,
// math/rand/v2 NewPCG / NewChaCha8), and stores into core.Verdict fields.
// Telemetry is the deliberate non-sink: writes into the perf observatory,
// the cost profiler's wall plane, and sim.Meter counters consume wall
// time legitimately and are simply not in the sink set. Interprocedural flows travel as facts — TaintedResult marks a
// function whose results carry wall-clock taint, SinkParams marks
// parameters a function forwards into a sink, so the diagnostic fires at
// the caller that supplied the tainted value. A deliberate flow can be
// waived line by line with a `//tcnlint:walltaint` comment.
package walltaint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"

	"tcn/internal/lint/analysis"
)

// Analyzer is the walltaint check.
var Analyzer = &analysis.Analyzer{
	Name: "walltaint",
	Doc:  "wall-clock values (time.Now, perf.Clock, prof.Clock) must not reach sim state: event scheduling, sim.Time, rand seeds, or core.Verdict fields",
	Run:  run,
}

// TaintedResult marks a function whose return values derive from the wall
// clock.
type TaintedResult struct{}

// AFact marks TaintedResult as a fact.
func (*TaintedResult) AFact() {}

func (*TaintedResult) String() string { return "taintedResult" }

// SinkParams marks the parameter indices a function forwards into a
// simulator-state sink, so callers are diagnosed for supplying tainted
// arguments.
type SinkParams struct {
	Params []int
}

// AFact marks SinkParams as a fact.
func (*SinkParams) AFact() {}

func (s *SinkParams) String() string {
	return fmt.Sprintf("sinkParams(%v)", s.Params)
}

func simPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "tcn/internal/sim" || pkg.Path() == "sim")
}

func corePkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "tcn/internal/core" || pkg.Path() == "core")
}

func perfPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "tcn/internal/obs/perf" || pkg.Path() == "perf")
}

func profPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "tcn/internal/obs/prof" || pkg.Path() == "prof")
}

// namedIn reports whether t (through pointers) is the named type name
// declared in a package matched by inPkg.
func namedIn(t types.Type, name string, inPkg func(*types.Package) bool) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == name && inPkg(named.Obj().Pkg())
}

// scheduleMethods are the Engine methods whose arguments enter the event
// loop.
var scheduleMethods = map[string]bool{
	"At": true, "After": true, "AtArg": true, "AfterArg": true,
}

// funcInfo is one function declaration under analysis.
type funcInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
	file *ast.File
}

// checker carries the per-package state: declared functions, plus the
// in-flight fact maps used to reach the same-package fixed point before
// anything is exported.
type checker struct {
	pass    *analysis.Pass
	funcs   []*funcInfo
	tainted map[*types.Func]bool
	sinks   map[*types.Func]map[int]bool
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:    pass,
		tainted: map[*types.Func]bool{},
		sinks:   map[*types.Func]map[int]bool{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.funcs = append(c.funcs, &funcInfo{decl: fd, obj: obj, file: f})
		}
	}

	// Same-package fixed point: helper chains (a calls b calls the sink)
	// converge in as many rounds as the chain is deep.
	for round := 0; round < 8; round++ {
		changed := false
		for _, fi := range c.funcs {
			if c.updateFacts(fi) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fi := range c.funcs {
		if c.tainted[fi.obj] {
			pass.ExportObjectFact(fi.obj, &TaintedResult{})
		}
		if idx := c.sinks[fi.obj]; len(idx) > 0 {
			var params []int
			//tcnlint:ordered params are sorted below
			for i := range idx {
				params = append(params, i)
			}
			sort.Ints(params)
			pass.ExportObjectFact(fi.obj, &SinkParams{Params: params})
		}
	}

	// Diagnostics: re-run the real-source taint per function and report
	// every sink it reaches.
	for _, fi := range c.funcs {
		t := &analysis.Taint{Info: pass.TypesInfo, IsSource: c.isWallSource}
		t.Analyze(fi.decl.Body)
		c.walkSinks(fi, t, true, nil)
	}
	return nil, nil
}

// calleeFunc resolves a call to its static callee, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// isWallSource reports whether the expression introduces wall-clock taint:
// a time.Now/Since/Until call, a call through a perf.Clock value, or a call
// to a function with a TaintedResult fact.
func (c *checker) isWallSource(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok {
		if tv.IsType() {
			return false
		}
		if namedIn(tv.Type, "Clock", perfPkg) || namedIn(tv.Type, "Clock", profPkg) {
			return true
		}
	}
	obj := calleeFunc(c.pass.TypesInfo, call)
	if obj == nil {
		return false
	}
	if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "time" {
		switch obj.Name() {
		case "Now", "Since", "Until":
			return true
		}
	}
	if c.tainted[obj] {
		return true
	}
	var tr TaintedResult
	return c.pass.ImportObjectFact(obj, &tr)
}

// updateFacts recomputes one function's TaintedResult and SinkParams state,
// reporting whether anything changed.
func (c *checker) updateFacts(fi *funcInfo) bool {
	changed := false

	// TaintedResult: does any return value carry wall taint?
	if !c.tainted[fi.obj] {
		t := &analysis.Taint{Info: c.pass.TypesInfo, IsSource: c.isWallSource}
		t.Analyze(fi.decl.Body)
		if c.returnsTainted(fi, t) {
			c.tainted[fi.obj] = true
			changed = true
		}
	}

	// SinkParams: does parameter i, treated as the only source, reach a
	// sink (directly or via a callee's SinkParams)?
	sig := fi.obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if c.sinks[fi.obj][i] {
			continue
		}
		param := sig.Params().At(i)
		t := &analysis.Taint{Info: c.pass.TypesInfo, IsSource: func(e ast.Expr) bool {
			id, ok := e.(*ast.Ident)
			return ok && c.pass.TypesInfo.Uses[id] == param
		}}
		t.Analyze(fi.decl.Body)
		hit := false
		c.walkSinks(fi, t, false, func() { hit = true })
		if hit {
			if c.sinks[fi.obj] == nil {
				c.sinks[fi.obj] = map[int]bool{}
			}
			c.sinks[fi.obj][i] = true
			changed = true
		}
	}
	return changed
}

// returnsTainted reports whether any return path yields a tainted value.
func (c *checker) returnsTainted(fi *funcInfo, t *analysis.Taint) bool {
	sig := fi.obj.Type().(*types.Signature)
	if sig.Results().Len() == 0 {
		return false
	}
	found := false
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return !found
		}
		for _, r := range ret.Results {
			if t.Expr(r) {
				found = true
			}
		}
		if len(ret.Results) == 0 {
			// Named results: consult the result objects directly.
			for i := 0; i < sig.Results().Len(); i++ {
				if t.TaintedObject(sig.Results().At(i)) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// walkSinks scans one function body for sink expressions receiving taint.
// With report set it emits diagnostics; otherwise it calls hit for each
// reached sink (the SinkParams probe).
func (c *checker) walkSinks(fi *funcInfo, t *analysis.Taint, report bool, hit func()) {
	info := c.pass.TypesInfo
	emit := func(pos ast.Node, what string) {
		if !report {
			if hit != nil {
				hit()
			}
			return
		}
		if analysis.LineCommentDirective(c.pass.Fset, fi.file, pos.Pos(), "walltaint") {
			return
		}
		c.pass.Reportf(pos.Pos(), "wall-clock value reaches %s; simulator state must derive from sim.Time (wall time is for telemetry only: perf observatory, cost profiler, sim.Meter)", what)
	}

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			c.checkCall(x, t, emit)
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				tv, ok := info.Types[sel.X]
				if !ok || !namedIn(tv.Type, "Verdict", corePkg) {
					continue
				}
				var rhs ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				} else if len(x.Rhs) == 1 {
					rhs = x.Rhs[0]
				}
				if rhs != nil && t.Expr(rhs) {
					emit(rhs, "core.Verdict field "+sel.Sel.Name)
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[x]; ok && namedIn(tv.Type, "Verdict", corePkg) {
				for _, el := range x.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if t.Expr(v) {
						emit(v, "a core.Verdict literal")
					}
				}
			}
		}
		return true
	})
}

// checkCall handles the call-shaped sinks: sim.Time conversions, engine
// scheduling, rand seeding, and calls into functions with SinkParams facts.
func (c *checker) checkCall(call *ast.CallExpr, t *analysis.Taint, emit func(ast.Node, string)) {
	info := c.pass.TypesInfo

	// Conversion to sim.Time.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if namedIn(tv.Type, "Time", simPkg) {
			for _, a := range call.Args {
				if t.Expr(a) {
					emit(a, "a conversion to sim.Time")
				}
			}
		}
		return
	}

	obj := calleeFunc(info, call)
	if obj == nil {
		return
	}

	// Engine scheduling: every argument enters the deterministic event
	// loop (the delay and the payload alike).
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil &&
		namedIn(sig.Recv().Type(), "Engine", simPkg) && scheduleMethods[obj.Name()] {
		for _, a := range call.Args {
			if t.Expr(a) {
				emit(a, "sim.Engine."+obj.Name())
			}
		}
		return
	}

	// Rand seeding.
	if pkg := obj.Pkg(); pkg != nil {
		seed := false
		switch {
		case simPkg(pkg) && obj.Name() == "NewRand":
			seed = true
		case pkg.Path() == "math/rand" && obj.Name() == "NewSource":
			seed = true
		case pkg.Path() == "math/rand/v2" && (obj.Name() == "NewPCG" || obj.Name() == "NewChaCha8"):
			seed = true
		}
		if seed {
			for _, a := range call.Args {
				if t.Expr(a) {
					emit(a, "a rand seed ("+obj.Name()+")")
				}
			}
			return
		}
	}

	// A callee that forwards parameters into a sink.
	idx := map[int]bool{}
	for i := range c.sinks[obj] {
		idx[i] = true
	}
	var sp SinkParams
	if c.pass.ImportObjectFact(obj, &sp) {
		for _, i := range sp.Params {
			idx[i] = true
		}
	}
	if len(idx) == 0 {
		return
	}
	for i, a := range call.Args {
		if idx[i] && t.Expr(a) {
			emit(a, fmt.Sprintf("parameter %d of %s, which forwards it into simulator state", i, obj.Name()))
		}
	}
}
