package simclock_test

import (
	"testing"

	"tcn/internal/lint/linttest"
	"tcn/internal/lint/simclock"
)

func TestSimclock(t *testing.T) {
	linttest.Run(t, simclock.Analyzer, "simclock")
}
