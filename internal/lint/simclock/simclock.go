// Package simclock forbids wall-clock time in simulator code.
//
// Identical seeds must produce byte-identical runs, so nothing inside
// internal/... may observe the host clock: all time flows through sim.Time
// and the discrete-event engine. The analyzer flags references to the
// wall-clock entry points of package time (Now, Since, Until, Sleep, After,
// AfterFunc, Tick, NewTimer, NewTicker) and any use of the time.Time type.
// time.Duration remains legal: command-line front ends outside internal/...
// parse flag.Duration values before converting them to sim.Time at the
// boundary.
package simclock

import (
	"go/types"
	"strings"

	"tcn/internal/lint/analysis"
)

// Analyzer is the simclock check.
var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc:  "forbid wall-clock time (time.Now, time.Sleep, time.Time, ...) in simulator packages; use sim.Time",
	Run:  run,
}

// forbidden lists the package-level time functions that read or wait on the
// host clock.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// exemptPath reports whether the package is outside the simulator core:
// command-line front ends and examples may touch wall-clock time for flag
// parsing and progress reporting. Fixture packages (no module prefix) are
// always analyzed.
func exemptPath(path string) bool {
	return strings.HasPrefix(path, "tcn/") && !strings.Contains(path, "/internal/")
}

func run(pass *analysis.Pass) (any, error) {
	if exemptPath(pass.Pkg.Path()) {
		return nil, nil
	}
	for id, obj := range pass.TypesInfo.Uses {
		pkg := obj.Pkg()
		if pkg == nil || pkg.Path() != "time" {
			continue
		}
		switch o := obj.(type) {
		case *types.Func:
			if forbidden[o.Name()] {
				pass.Reportf(id.Pos(), "wall-clock time.%s is forbidden in simulator code: use sim.Time and the event engine", o.Name())
			}
		case *types.TypeName:
			if o.Name() == "Time" {
				pass.Reportf(id.Pos(), "time.Time is forbidden in simulator code: represent instants as sim.Time")
			}
		}
	}
	return nil, nil
}
