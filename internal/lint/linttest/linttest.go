// Package linttest is the fixture harness for tcnlint analyzers, a
// stdlib-only equivalent of golang.org/x/tools/go/analysis/analysistest.
//
// Fixture packages live under internal/lint/testdata/src/<name>; a fixture
// may import sibling fixtures (including nested ones like "goshare2/helper"),
// and the harness loads the whole dependency closure in import order through
// the same Execute driver the real tool uses, so Requires analyzers run and
// facts cross fixture-package boundaries exactly as they do on the module.
//
// A fixture file marks each line where a diagnostic is expected with a
// trailing
//
//	// want "regexp"
//
// comment (several regexps may follow one want). Diagnostics are checked
// for the named fixture's own files with exact correspondence: every want
// matched by a diagnostic on its line, every diagnostic covered by a want.
// Files with no want comments therefore serve as true-negative fixtures.
//
// Fact exports are asserted the same way with
//
//	// wantfact "regexp"
//
// comments, matched against the rendered facts (fmt.Sprint of the fact
// value) attached to objects declared on that line — in any loaded fixture
// package, so a dependency package can pin the facts the analyzer exports
// for it.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"tcn/internal/lint/analysis"
)

// TestdataDir returns the shared fixture root, resolved relative to this
// source file so analyzer tests in sibling packages all reuse one tree.
func TestdataDir() string {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		panic("linttest: cannot locate testdata")
	}
	return filepath.Join(filepath.Dir(self), "..", "testdata", "src")
}

// Run applies the analyzer (with its Requires) to each named fixture
// package and checks diagnostics and fact exports against the fixtures'
// want/wantfact comments.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	root := TestdataDir()
	for _, name := range fixtures {
		runOne(t, a, root, name)
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, root, name string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		root:     root,
		fset:     fset,
		cache:    map[string]*analysis.Package{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	target, err := ld.load(name)
	if err != nil {
		t.Fatalf("loading fixture %q: %v", name, err)
	}
	target.Report = true

	result, err := analysis.Execute(ld.ordered, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s on fixture %q: %v", a.Name, name, err)
	}
	checkDiagnostics(t, target, result)
	checkFacts(t, ld.ordered, result)
}

// fixtureLoader resolves imports among fixture packages first and falls
// back to the source importer for the standard library. Loaded packages
// accumulate in ordered, dependencies first — the order Execute requires.
type fixtureLoader struct {
	root     string
	fset     *token.FileSet
	cache    map[string]*analysis.Package
	ordered  []*analysis.Package
	fallback types.Importer
	loading  []string
}

// Import implements types.Importer.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); isDir(dir) {
		fx, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fx.Types, nil
	}
	return l.fallback.Import(path)
}

func (l *fixtureLoader) load(name string) (*analysis.Package, error) {
	if fx, ok := l.cache[name]; ok {
		return fx, nil
	}
	for _, in := range l.loading {
		if in == name {
			return nil, fmt.Errorf("fixture import cycle through %q", name)
		}
	}
	l.loading = append(l.loading, name)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	dir := filepath.Join(l.root, filepath.FromSlash(name))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, fn := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, fn), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %q has no Go files", name)
	}
	conf := types.Config{Importer: l}
	info := analysis.NewInfo()
	pkg, err := conf.Check(name, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %q: %v", name, err)
	}
	fx := &analysis.Package{
		Path:  name,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}
	l.cache[name] = fx
	// Imports finish loading before Check returns, so appending here puts
	// dependencies ahead of their dependents.
	l.ordered = append(l.ordered, fx)
	return fx, nil
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

// want is one expectation: a line plus a message regexp.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

// collectWants extracts the given marker's comments ("// want " or
// "// wantfact ") from a set of files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File, marker string) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, marker)
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[i+len(marker):], -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad %q regexp %q: %v", pos, marker, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// checkDiagnostics diffs the run's findings for the target package against
// its want comments.
func checkDiagnostics(t *testing.T, target *analysis.Package, result *analysis.RunResult) {
	t.Helper()
	// "// wantfact" contains "// want", so wants are collected from lines
	// whose marker is exactly want followed by a space and a quote.
	wants := collectWants(t, target.Fset, target.Files, "// want ")

	targetFiles := map[string]bool{}
	for _, f := range target.Files {
		targetFiles[target.Fset.Position(f.Pos()).Filename] = true
	}
	for _, d := range result.Findings {
		if !targetFiles[d.Position.Filename] {
			continue
		}
		var hit *want
		for _, w := range wants {
			if !w.matched && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic: %s", d.Position, d.Message)
			continue
		}
		hit.matched = true
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// checkFacts diffs exported object facts against wantfact comments across
// every loaded fixture package.
func checkFacts(t *testing.T, pkgs []*analysis.Package, result *analysis.RunResult) {
	t.Helper()
	var files []*ast.File
	var fset *token.FileSet
	for _, p := range pkgs {
		files = append(files, p.Files...)
		fset = p.Fset
	}
	if fset == nil {
		return
	}
	wants := collectWants(t, fset, files, "// wantfact ")
	if len(wants) == 0 {
		return
	}

	type rendered struct {
		file    string
		line    int
		text    string
		matched bool
	}
	var facts []*rendered
	for _, of := range result.ObjectFacts() {
		pos := fset.Position(of.Object.Pos())
		facts = append(facts, &rendered{file: pos.Filename, line: pos.Line, text: fmt.Sprint(of.Fact)})
	}

	for _, w := range wants {
		hit := false
		for _, f := range facts {
			if f.file == w.file && f.line == w.line && w.re.MatchString(f.text) {
				f.matched = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("%s:%d: no exported fact matching %q", w.file, w.line, w.raw)
		}
	}
	// Facts on lines that carry wantfact comments must all be asserted, so
	// a surprise fact next to an assertion cannot hide.
	lines := map[string]bool{}
	for _, w := range wants {
		lines[fmt.Sprintf("%s:%d", w.file, w.line)] = true
	}
	for _, f := range facts {
		if !f.matched && lines[fmt.Sprintf("%s:%d", f.file, f.line)] {
			t.Errorf("%s:%d: unasserted fact %q on a wantfact line", f.file, f.line, f.text)
		}
	}
}
