// Package linttest is the fixture harness for tcnlint analyzers, a
// stdlib-only equivalent of golang.org/x/tools/go/analysis/analysistest.
//
// Fixture packages live under internal/lint/testdata/src/<name>. A fixture
// file marks each line where a diagnostic is expected with a trailing
//
//	// want "regexp"
//
// comment (several regexps may follow one want). The harness runs the
// analyzer, then requires an exact correspondence: every want matched by a
// diagnostic on its line, every diagnostic covered by a want. Files with no
// want comments therefore serve as true-negative fixtures.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"tcn/internal/lint/analysis"
)

// TestdataDir returns the shared fixture root, resolved relative to this
// source file so analyzer tests in sibling packages all reuse one tree.
func TestdataDir() string {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		panic("linttest: cannot locate testdata")
	}
	return filepath.Join(filepath.Dir(self), "..", "testdata", "src")
}

// Run applies the analyzer to each named fixture package and checks its
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	root := TestdataDir()
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		root:     root,
		fset:     fset,
		cache:    map[string]*loadedFixture{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	for _, name := range fixtures {
		fx, err := ld.load(name)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", name, err)
		}
		checkFixture(t, a, fx)
	}
}

// loadedFixture is one type-checked fixture package.
type loadedFixture struct {
	name  string
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// fixtureLoader resolves imports among fixture packages first and falls
// back to the source importer for the standard library.
type fixtureLoader struct {
	root     string
	fset     *token.FileSet
	cache    map[string]*loadedFixture
	fallback types.Importer
	loading  []string
}

// Import implements types.Importer.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); isDir(dir) {
		fx, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fx.pkg, nil
	}
	return l.fallback.Import(path)
}

func (l *fixtureLoader) load(name string) (*loadedFixture, error) {
	if fx, ok := l.cache[name]; ok {
		return fx, nil
	}
	for _, in := range l.loading {
		if in == name {
			return nil, fmt.Errorf("fixture import cycle through %q", name)
		}
	}
	l.loading = append(l.loading, name)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	dir := filepath.Join(l.root, filepath.FromSlash(name))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, fn := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, fn), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %q has no Go files", name)
	}
	conf := types.Config{Importer: l}
	info := analysis.NewInfo()
	pkg, err := conf.Check(name, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %q: %v", name, err)
	}
	fx := &loadedFixture{name: name, fset: l.fset, files: files, pkg: pkg, info: info}
	l.cache[name] = fx
	return fx, nil
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

// want is one expectation: a line plus a message regexp.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

// collectWants extracts want comments from the fixture's files.
func collectWants(t *testing.T, fx *loadedFixture) []*want {
	t.Helper()
	var wants []*want
	for _, f := range fx.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fx.fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[i+len("// want "):], -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// checkFixture runs the analyzer over one fixture and diffs diagnostics
// against wants.
func checkFixture(t *testing.T, a *analysis.Analyzer, fx *loadedFixture) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fx.fset,
		Files:     fx.files,
		Pkg:       fx.pkg,
		TypesInfo: fx.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s on fixture %q: %v", a.Name, fx.name, err)
	}

	wants := collectWants(t, fx)
	for _, d := range diags {
		pos := fx.fset.Position(d.Pos)
		var hit *want
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		hit.matched = true
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
