package goshare_test

import (
	"testing"

	"tcn/internal/lint/goshare"
	"tcn/internal/lint/linttest"
)

func TestGoshare(t *testing.T) {
	linttest.Run(t, goshare.Analyzer, "goshare", "goshare2")
}
