// Package goshare forbids sharing single-owner simulator state across
// goroutines.
//
// The zero-alloc event core leans on single-goroutine ownership: each
// sim.Engine recycles event nodes through a freelist, each transport stack
// recycles packets through a pkt.Pool, and each sweep point draws from its
// own seeded rand. None of these carry locks — the parallel sweep executor
// is only correct because every point owns its engine, pool, and rand
// outright (see internal/parallel). Handing any of them to a goroutine
// therefore silently breaks both memory safety and determinism.
//
// Since PR 7 the analyzer is interprocedural. Four rules fire:
//
//  1. a `go` statement that references a single-owner value declared
//     outside the spawned function (captured, passed, or as receiver);
//  2. the same for a value whose struct type transitively CONTAINS a
//     single-owner value — handing a qdisc.Qdisc to a goroutine hands its
//     engine over just as surely;
//  3. a channel send of a single-owner (or containing) value — the value
//     is gone to whichever goroutine receives;
//  4. a call that passes a single-owner value into a function that leaks
//     the corresponding parameter to another goroutine, however
//     indirectly. Leak knowledge travels as a Leaks fact computed per
//     function: a parameter (or receiver) leaks if — possibly after being
//     stowed in a local struct — it reaches a `go` statement, a channel
//     send, a package-level variable, or a leaking parameter of another
//     call. Facts cross package boundaries, so a helper in another package
//     that spawns a goroutine over its argument is caught at the caller,
//     which the old syntactic check provably missed.
//
// Values constructed inside the spawned function are goroutine-local and
// legal, as is a constructor that merely stores a parameter into its
// result (storing is not leaking; spawning is). A deliberate hand-off
// (e.g. a test that proves the race detector fires) can be waived line by
// line with a `//tcnlint:goshare` comment.
package goshare

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"tcn/internal/lint/analysis"
)

// Analyzer is the goshare check.
var Analyzer = &analysis.Analyzer{
	Name: "goshare",
	Doc:  "forbid sharing a sim.Engine, pkt.Pool, or rand source with a goroutine — directly, inside a struct, over a channel, or through a leaking callee",
	Run:  run,
}

// Leaks records which inputs of a function escape to another goroutine:
// parameter indices and/or the receiver. Exported as an object fact so
// callers in dependent packages are diagnosed at the call site.
type Leaks struct {
	Params []int
	Recv   bool
}

// AFact marks Leaks as a fact.
func (*Leaks) AFact() {}

func (l *Leaks) String() string {
	var parts []string
	if l.Recv {
		parts = append(parts, "recv")
	}
	if len(l.Params) > 0 {
		var ps []string
		for _, i := range l.Params {
			ps = append(ps, fmt.Sprint(i))
		}
		parts = append(parts, "params="+strings.Join(ps, ","))
	}
	return "leaks(" + strings.Join(parts, ",") + ")"
}

// sharedKind names the single-owner type an expression resolves to, or ""
// if the type is freely shareable. Matching covers both the real module
// paths and the bare fixture package names so the rule itself is testable.
func sharedKind(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "tcn/internal/sim", "sim":
		switch obj.Name() {
		case "Engine":
			return "sim.Engine (event freelist)"
		case "Rand":
			return "sim.Rand"
		}
	case "tcn/internal/pkt", "pkt":
		if obj.Name() == "Pool" {
			return "pkt.Pool (packet freelist)"
		}
	case "math/rand":
		if obj.Name() == "Rand" {
			return "rand.Rand"
		}
	case "math/rand/v2":
		switch obj.Name() {
		case "Rand", "PCG", "ChaCha8":
			return "rand/v2 " + obj.Name()
		}
	}
	return ""
}

// containerKind reports the single-owner kind a struct type transitively
// holds in its fields, or "". A *qdisc.Qdisc is as unshareable as the
// *sim.Engine inside it.
func containerKind(t types.Type) string {
	return containerKindRec(t, 0, map[types.Type]bool{})
}

func containerKindRec(t types.Type, depth int, seen map[types.Type]bool) string {
	if depth > 3 || seen[t] {
		return ""
	}
	seen[t] = true
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if k := sharedKind(ft); k != "" {
			return k
		}
		if k := containerKindRec(ft, depth+1, seen); k != "" {
			return k
		}
	}
	return ""
}

// ownerKind classifies a type as directly single-owner, a container of
// one, or neither; the second result distinguishes the container case for
// the diagnostic text.
func ownerKind(t types.Type) (kind string, viaContainer bool) {
	if k := sharedKind(t); k != "" {
		return k, false
	}
	if k := containerKind(t); k != "" {
		return k, true
	}
	return "", false
}

// funcInfo is one function declaration under leak analysis.
type funcInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
	file *ast.File
}

// checker carries per-package leak state; leaks[fn][i] with i == -1
// meaning the receiver.
type checker struct {
	pass  *analysis.Pass
	funcs []*funcInfo
	leaks map[*types.Func]map[int]bool
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, leaks: map[*types.Func]map[int]bool{}}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.funcs = append(c.funcs, &funcInfo{decl: fd, obj: obj, file: f})
			}
		}
	}

	// Same-package fixed point so leak knowledge flows through local
	// helper chains before facts are exported.
	for round := 0; round < 8; round++ {
		changed := false
		for _, fi := range c.funcs {
			if c.updateLeaks(fi) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fi := range c.funcs {
		idx := c.leaks[fi.obj]
		if len(idx) == 0 {
			continue
		}
		fact := &Leaks{Recv: idx[-1]}
		//tcnlint:ordered params are sorted below
		for i := range idx {
			if i >= 0 {
				fact.Params = append(fact.Params, i)
			}
		}
		sort.Ints(fact.Params)
		pass.ExportObjectFact(fi.obj, fact)
	}

	// Diagnostics.
	for _, f := range pass.Files {
		file := f
		goCalls := map[*ast.CallExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				goCalls[x.Call] = true
				checkGo(pass, file, x)
			case *ast.SendStmt:
				checkSend(pass, file, x)
			case *ast.CallExpr:
				if !goCalls[x] {
					c.checkCallSite(file, x)
				}
			}
			return true
		})
	}
	return nil, nil
}

// leakInput marks input i (receiver -1) of fn as leaking, reporting
// whether that was new.
func (c *checker) leakInput(fn *types.Func, i int) bool {
	if c.leaks[fn] == nil {
		c.leaks[fn] = map[int]bool{}
	}
	if c.leaks[fn][i] {
		return false
	}
	c.leaks[fn][i] = true
	return true
}

// calleeLeakSet returns the leaking input set of a callee, merging the
// in-flight same-package state with imported facts.
func (c *checker) calleeLeakSet(obj *types.Func) map[int]bool {
	out := map[int]bool{}
	for i := range c.leaks[obj] {
		out[i] = true
	}
	var fact Leaks
	if c.pass.ImportObjectFact(obj, &fact) {
		if fact.Recv {
			out[-1] = true
		}
		for _, i := range fact.Params {
			out[i] = true
		}
	}
	return out
}

// updateLeaks recomputes the leak set of one function's inputs.
func (c *checker) updateLeaks(fi *funcInfo) bool {
	sig := fi.obj.Type().(*types.Signature)
	var inputs []struct {
		idx int
		v   *types.Var
	}
	if r := sig.Recv(); r != nil {
		inputs = append(inputs, struct {
			idx int
			v   *types.Var
		}{-1, r})
	}
	for i := 0; i < sig.Params().Len(); i++ {
		inputs = append(inputs, struct {
			idx int
			v   *types.Var
		}{i, sig.Params().At(i)})
	}

	changed := false
	for _, in := range inputs {
		if c.leaks[fi.obj][in.idx] {
			continue
		}
		// Only single-owner-relevant inputs are worth tracking.
		if k, _ := ownerKind(in.v.Type()); k == "" {
			continue
		}
		if c.inputLeaks(fi, in.v) && c.leakInput(fi.obj, in.idx) {
			changed = true
		}
	}
	return changed
}

// inputLeaks runs a taint probe with the given input as the only source
// and reports whether it reaches a goroutine hand-off.
func (c *checker) inputLeaks(fi *funcInfo, input *types.Var) bool {
	info := c.pass.TypesInfo
	t := &analysis.Taint{Info: info, IsSource: func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && info.Uses[id] == input
	}}
	t.Analyze(fi.decl.Body)

	leaked := false
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if leaked {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			ast.Inspect(x.Call, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && t.Expr(id) {
					leaked = true
				}
				return !leaked
			})
			return false
		case *ast.SendStmt:
			if t.Expr(x.Value) {
				leaked = true
			}
		case *ast.AssignStmt:
			// A store into a package-level variable escapes the frame.
			for i, lhs := range x.Lhs {
				root := rootIdent(lhs)
				if root == nil {
					continue
				}
				v, ok := info.Uses[root].(*types.Var)
				if !ok || v.Parent() != c.pass.Pkg.Scope() {
					continue
				}
				var rhs ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				} else if len(x.Rhs) == 1 {
					rhs = x.Rhs[0]
				}
				if rhs != nil && t.Expr(rhs) {
					leaked = true
				}
			}
		case *ast.CallExpr:
			obj := staticCallee(info, x)
			if obj == nil || obj == fi.obj {
				return true
			}
			set := c.calleeLeakSet(obj)
			if len(set) == 0 {
				return true
			}
			for i, a := range x.Args {
				if set[i] && t.Expr(a) {
					leaked = true
				}
			}
			if set[-1] {
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && t.Expr(sel.X) {
					leaked = true
				}
			}
		}
		return !leaked
	})
	return leaked
}

// staticCallee resolves the called *types.Func, or nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// rootIdent walks to the base identifier of a selector/index/star chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkGo reports every distinct single-owner (or containing) variable the
// go statement hands to the spawned goroutine.
func checkGo(pass *analysis.Pass, file *ast.File, g *ast.GoStmt) {
	// If the goroutine body is a literal, anything declared inside it
	// (locals and parameters) belongs to the new goroutine.
	var litPos, litEnd token.Pos
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		litPos, litEnd = lit.Pos(), lit.End()
	}
	reported := map[*types.Var]bool{}
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || reported[v] {
			return true
		}
		kind, viaContainer := ownerKind(v.Type())
		if kind == "" {
			return true
		}
		if litPos.IsValid() && v.Pos() >= litPos && v.Pos() <= litEnd {
			return true // declared by the spawned function itself
		}
		if analysis.LineCommentDirective(pass.Fset, file, id.Pos(), "goshare") {
			return true
		}
		reported[v] = true
		if viaContainer {
			pass.Reportf(id.Pos(), "%q contains a %s and is shared with a goroutine: engines, packet pools, and rand sources are single-owner; construct one inside the goroutine instead",
				v.Name(), kind)
		} else {
			pass.Reportf(id.Pos(), "%q (%s) is shared with a goroutine: engines, packet pools, and rand sources are single-owner; construct one inside the goroutine instead",
				v.Name(), kind)
		}
		return true
	})
}

// checkSend flags channel sends of single-owner values: whoever receives
// becomes a second owner.
func checkSend(pass *analysis.Pass, file *ast.File, s *ast.SendStmt) {
	tv, ok := pass.TypesInfo.Types[s.Value]
	if !ok {
		return
	}
	kind, viaContainer := ownerKind(tv.Type)
	if kind == "" {
		return
	}
	if analysis.LineCommentDirective(pass.Fset, file, s.Pos(), "goshare") {
		return
	}
	what := "a " + kind
	if viaContainer {
		what = "a value containing a " + kind
	}
	pass.Reportf(s.Pos(), "channel send hands %s to another goroutine; single-owner values must stay with the goroutine that built them", what)
}

// checkCallSite flags passing a single-owner value into a callee input
// that a Leaks fact (or same-package analysis) says escapes to another
// goroutine.
func (c *checker) checkCallSite(file *ast.File, call *ast.CallExpr) {
	info := c.pass.TypesInfo
	obj := staticCallee(info, call)
	if obj == nil {
		return
	}
	set := c.calleeLeakSet(obj)
	if len(set) == 0 {
		return
	}
	report := func(at ast.Expr, name, kind string, viaContainer bool) {
		if analysis.LineCommentDirective(c.pass.Fset, file, at.Pos(), "goshare") {
			return
		}
		contains := ""
		if viaContainer {
			contains = "a value containing "
		}
		c.pass.Reportf(at.Pos(), "%s hands %sa %s to another goroutine (ownership leak via %s); single-owner values must not escape their goroutine",
			name, contains, kind, obj.Name())
	}
	for i, a := range call.Args {
		if !set[i] {
			continue
		}
		tv, ok := info.Types[a]
		if !ok {
			continue
		}
		if kind, viaContainer := ownerKind(tv.Type); kind != "" {
			report(a, "argument", kind, viaContainer)
		}
	}
	if set[-1] {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if tv, ok := info.Types[sel.X]; ok {
				if kind, viaContainer := ownerKind(tv.Type); kind != "" {
					report(sel.X, "receiver", kind, viaContainer)
				}
			}
		}
	}
}
