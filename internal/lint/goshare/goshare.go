// Package goshare forbids sharing single-owner simulator state across
// goroutines.
//
// The zero-alloc event core leans on single-goroutine ownership: each
// sim.Engine recycles event nodes through a freelist, each transport stack
// recycles packets through a pkt.Pool, and each sweep point draws from its
// own seeded rand. None of these carry locks — the parallel sweep executor
// is only correct because every point owns its engine, pool, and rand
// outright (see internal/parallel). Handing any of them to a goroutine
// therefore silently breaks both memory safety and determinism.
//
// The analyzer flags any `go` statement that references an engine, packet
// pool, or rand source declared outside the spawned function: captured in
// a closure, passed as an argument, or used as a call receiver. Values
// constructed inside the spawned function are goroutine-local and legal. A
// deliberate hand-off (e.g. a test that proves the race detector fires)
// can be waived line by line with a `//tcnlint:goshare` comment.
package goshare

import (
	"go/ast"
	"go/token"
	"go/types"

	"tcn/internal/lint/analysis"
)

// Analyzer is the goshare check.
var Analyzer = &analysis.Analyzer{
	Name: "goshare",
	Doc:  "forbid sharing a sim.Engine, pkt.Pool, or rand source with a goroutine; each must stay single-owner",
	Run:  run,
}

// sharedKind names the single-owner type an expression resolves to, or ""
// if the type is freely shareable. Matching covers both the real module
// paths and the bare fixture package names so the rule itself is testable.
func sharedKind(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "tcn/internal/sim", "sim":
		switch obj.Name() {
		case "Engine":
			return "sim.Engine (event freelist)"
		case "Rand":
			return "sim.Rand"
		}
	case "tcn/internal/pkt", "pkt":
		if obj.Name() == "Pool" {
			return "pkt.Pool (packet freelist)"
		}
	case "math/rand", "math/rand/v2":
		if obj.Name() == "Rand" {
			return "rand.Rand"
		}
	}
	return ""
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, file, g)
			return true
		})
	}
	return nil, nil
}

// checkGo reports every distinct single-owner variable the go statement
// hands to the spawned goroutine.
func checkGo(pass *analysis.Pass, file *ast.File, g *ast.GoStmt) {
	// If the goroutine body is a literal, anything declared inside it
	// (locals and parameters) belongs to the new goroutine.
	var litPos, litEnd token.Pos
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		litPos, litEnd = lit.Pos(), lit.End()
	}
	reported := map[*types.Var]bool{}
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || reported[v] {
			return true
		}
		kind := sharedKind(v.Type())
		if kind == "" {
			return true
		}
		if litPos.IsValid() && v.Pos() >= litPos && v.Pos() <= litEnd {
			return true // declared by the spawned function itself
		}
		if analysis.LineCommentDirective(pass.Fset, file, id.Pos(), "goshare") {
			return true
		}
		reported[v] = true
		pass.Reportf(id.Pos(), "%q (%s) is shared with a goroutine: engines, packet pools, and rand sources are single-owner; construct one inside the goroutine instead",
			v.Name(), kind)
		return true
	})
}
