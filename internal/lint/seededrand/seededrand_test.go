package seededrand_test

import (
	"testing"

	"tcn/internal/lint/linttest"
	"tcn/internal/lint/seededrand"
)

func TestSeededrand(t *testing.T) {
	// The "sim" fixture exercises the rand.go exemption: its rand.go
	// builds sources from math/rand yet must produce no diagnostics.
	linttest.Run(t, seededrand.Analyzer, "seededrand", "sim")
}
