// Package seededrand forbids the global math/rand source.
//
// Reproducibility requires every random draw in a run to come from one
// seeded generator (sim.Rand). The package-level math/rand functions share
// hidden global state that other packages (or the runtime's auto-seeding in
// math/rand/v2) can perturb, so calling them anywhere in this repository is
// a determinism bug. The single exemption is internal/sim/rand.go, where the
// seeded wrapper is built.
package seededrand

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"tcn/internal/lint/analysis"
)

// Analyzer is the seededrand check.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid package-level math/rand functions; randomness must flow through a seeded sim.Rand",
	Run:  run,
}

// randPackages are the import paths whose package-level functions are
// forbidden. Methods on an explicit *rand.Rand value are fine — the point
// is banning the shared global source, not the algorithms.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// exemptFile reports whether the file may construct rand sources directly:
// the sim package's rand.go, which defines the seeded wrapper everything
// else must use. Fixture packages named "sim" get the same exemption so the
// rule itself is testable.
func exemptFile(pkgPath, filename string) bool {
	if pkgPath != "tcn/internal/sim" && pkgPath != "sim" {
		return false
	}
	return filepath.Base(filename) == "rand.go"
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if exemptFile(pass.Pkg.Path(), filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || !randPackages[obj.Pkg().Path()] {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil {
				return true // methods on an explicit source are fine
			}
			pass.Reportf(id.Pos(), "%s.%s uses an unseeded global source: route randomness through a seeded sim.Rand",
				shortPath(obj.Pkg().Path()), fn.Name())
			return true
		})
	}
	return nil, nil
}

func shortPath(p string) string {
	if i := strings.LastIndex(p, "math/"); i >= 0 {
		return p[i:]
	}
	return p
}
