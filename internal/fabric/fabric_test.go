package fabric

import (
	"testing"

	"tcn/internal/core"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

func TestRateSerialize(t *testing.T) {
	cases := []struct {
		r     Rate
		bytes int
		want  sim.Time
	}{
		{Gbps, 1500, 12 * sim.Microsecond},
		{10 * Gbps, 1500, 1200 * sim.Nanosecond},
		{Mbps, 125, sim.Millisecond},
	}
	for _, c := range cases {
		if got := c.r.Serialize(c.bytes); got != c.want {
			t.Errorf("%v.Serialize(%d) = %v, want %v", c.r, c.bytes, got, c.want)
		}
	}
}

func TestRateBDP(t *testing.T) {
	if got := (10 * Gbps).BDP(100 * sim.Microsecond); got != 125_000 {
		t.Fatalf("BDP = %d, want 125000", got)
	}
	if got := Gbps.BDP(256 * sim.Microsecond); got != 32_000 {
		t.Fatalf("BDP = %d, want 32000", got)
	}
}

func TestRateString(t *testing.T) {
	for r, want := range map[Rate]string{
		Gbps: "1Gbps", 10 * Gbps: "10Gbps", 500 * Mbps: "500Mbps", 64 * Kbps: "64Kbps",
	} {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
}

// sink records received packets.
type sink struct {
	pkts  []*pkt.Packet
	times []sim.Time
	eng   *sim.Engine
}

func (s *sink) Receive(p *pkt.Packet) {
	s.pkts = append(s.pkts, p)
	s.times = append(s.times, s.eng.Now())
}

func TestPortStoreAndForwardTiming(t *testing.T) {
	eng := sim.NewEngine()
	sk := &sink{eng: eng}
	port := NewPort(eng, PortConfig{
		Rate:      Gbps,
		PropDelay: 10 * sim.Microsecond,
		Queues:    1,
	}, sk)
	port.Send(&pkt.Packet{Size: 1500, ECN: pkt.ECT0})
	eng.Run()
	if len(sk.pkts) != 1 {
		t.Fatalf("received %d packets", len(sk.pkts))
	}
	// 1500B at 1Gbps = 12us serialization + 10us propagation.
	if sk.times[0] != 22*sim.Microsecond {
		t.Fatalf("arrival at %v, want 22us", sk.times[0])
	}
}

func TestPortBackToBackTransmissions(t *testing.T) {
	eng := sim.NewEngine()
	sk := &sink{eng: eng}
	port := NewPort(eng, PortConfig{Rate: Gbps, Queues: 1}, sk)
	for i := 0; i < 3; i++ {
		port.Send(&pkt.Packet{Size: 1500, Seq: int64(i)})
	}
	eng.Run()
	if len(sk.pkts) != 3 {
		t.Fatalf("received %d packets", len(sk.pkts))
	}
	// Packets serialize back to back: 12, 24, 36us.
	for i, want := range []sim.Time{12, 24, 36} {
		if sk.times[i] != want*sim.Microsecond {
			t.Fatalf("packet %d arrived at %v, want %vus", i, sk.times[i], want)
		}
		if sk.pkts[i].Seq != int64(i) {
			t.Fatalf("packet order broken: %v", sk.pkts[i])
		}
	}
}

func TestPortDropsWhenFull(t *testing.T) {
	eng := sim.NewEngine()
	sk := &sink{eng: eng}
	port := NewPort(eng, PortConfig{Rate: Gbps, Queues: 1, BufferBytes: 3000}, sk)
	dropped := 0
	port.OnDrop = func(sim.Time, int, *pkt.Packet) { dropped++ }
	for i := 0; i < 5; i++ {
		port.Send(&pkt.Packet{Size: 1500})
	}
	eng.Run()
	// First packet enters service immediately (popped from the buffer),
	// leaving room for two more; the rest drop.
	if len(sk.pkts) != 3 || dropped != 2 {
		t.Fatalf("delivered %d dropped %d, want 3/2", len(sk.pkts), dropped)
	}
	if port.Buffer().TotalDrops() != 2 {
		t.Fatal("drop counter mismatch")
	}
}

func TestPortStampsEnqueueTime(t *testing.T) {
	eng := sim.NewEngine()
	sk := &sink{eng: eng}
	port := NewPort(eng, PortConfig{Rate: Gbps, Queues: 1}, sk)
	eng.At(55*sim.Microsecond, func() {
		port.Send(&pkt.Packet{Size: 100})
	})
	eng.Run()
	if sk.pkts[0].EnqueuedAt != 55*sim.Microsecond {
		t.Fatalf("EnqueuedAt = %v, want 55us", sk.pkts[0].EnqueuedAt)
	}
}

func TestPortMarkerPipelineOrder(t *testing.T) {
	// The dequeue marker must see the packet after the enqueue marker
	// and after the scheduler pops it (§5 pipeline order).
	var order []string
	m := &recordingMarker{onEnq: func() { order = append(order, "enq") },
		onDeq: func() { order = append(order, "deq") }}
	eng := sim.NewEngine()
	sk := &sink{eng: eng}
	port := NewPort(eng, PortConfig{Rate: Gbps, Queues: 1, Marker: m}, sk)
	port.OnTransmit = func(sim.Time, int, *pkt.Packet) { order = append(order, "tx") }
	port.Send(&pkt.Packet{Size: 100})
	eng.Run()
	want := []string{"enq", "deq", "tx"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("pipeline order %v, want %v", order, want)
	}
}

type recordingMarker struct{ onEnq, onDeq func() }

func (r *recordingMarker) Name() string { return "recording" }
func (r *recordingMarker) OnEnqueue(sim.Time, int, *pkt.Packet, core.PortState, *core.Verdict) {
	r.onEnq()
}
func (r *recordingMarker) OnDequeue(sim.Time, int, *pkt.Packet, core.PortState, *core.Verdict) {
	r.onDeq()
}

func TestClassifyByDSCPClamps(t *testing.T) {
	c := ClassifyByDSCP(4)
	if c(&pkt.Packet{DSCP: 2}) != 2 {
		t.Fatal("in-range DSCP")
	}
	if c(&pkt.Packet{DSCP: 9}) != 3 {
		t.Fatal("out-of-range DSCP should clamp to last queue")
	}
}

func TestStarRouting(t *testing.T) {
	eng := sim.NewEngine()
	st := NewStar(eng, StarConfig{
		Hosts: 4,
		Rate:  Gbps,
		SwitchPort: func() PortConfig {
			return PortConfig{Queues: 1}
		},
	})
	var got []int
	for i, h := range st.Hosts {
		i := i
		h.Handler = func(p *pkt.Packet) { got = append(got, i) }
	}
	st.Hosts[0].Send(&pkt.Packet{Src: 0, Dst: 3, Size: 100})
	st.Hosts[2].Send(&pkt.Packet{Src: 2, Dst: 1, Size: 100})
	eng.Run()
	if len(got) != 2 || got[0] != 3 && got[1] != 3 {
		t.Fatalf("deliveries: %v", got)
	}
}

func TestHostDelayAppliedOnReceive(t *testing.T) {
	eng := sim.NewEngine()
	st := NewStar(eng, StarConfig{
		Hosts:     2,
		Rate:      Gbps,
		HostDelay: 100 * sim.Microsecond,
		SwitchPort: func() PortConfig {
			return PortConfig{Queues: 1}
		},
	})
	var at sim.Time
	st.Hosts[1].Handler = func(p *pkt.Packet) { at = eng.Now() }
	st.Hosts[0].Send(&pkt.Packet{Src: 0, Dst: 1, Size: 1500})
	eng.Run()
	// 2 hops × 12us serialization + 100us host delay.
	want := 124 * sim.Microsecond
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestLeafSpineRoutingAndECMP(t *testing.T) {
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostRate: 10 * Gbps, SpineRate: 10 * Gbps,
		SwitchPort: func() PortConfig { return PortConfig{Queues: 1} },
	})
	if len(ls.Hosts) != 4 {
		t.Fatalf("hosts = %d", len(ls.Hosts))
	}
	recv := map[int]int{}
	for i, h := range ls.Hosts {
		i := i
		h.Handler = func(p *pkt.Packet) { recv[i]++ }
	}
	// Intra-leaf: 2 hops. Inter-leaf: 4 hops.
	var hops []int
	probe := func(src, dst int, flow pkt.FlowID) {
		p := &pkt.Packet{Src: src, Dst: dst, Flow: flow, Size: 100}
		ls.Hosts[src].Send(p)
		eng.Run()
		hops = append(hops, p.Hops)
	}
	probe(0, 1, 1) // same leaf
	probe(0, 2, 2) // cross fabric
	if recv[1] != 1 || recv[2] != 1 {
		t.Fatalf("deliveries: %v", recv)
	}
	if hops[0] != 1 || hops[1] != 3 {
		t.Fatalf("hop counts %v, want [1 3] (switches traversed)", hops)
	}

	// ECMP: different flows between the same pair spread across spines;
	// the same flow always takes the same spine.
	upA := ls.Leaves[0].Port(2) // to spine 0
	upB := ls.Leaves[0].Port(3) // to spine 1
	base := upA.TxPackets[0] + upB.TxPackets[0]
	for f := pkt.FlowID(0); f < 64; f++ {
		probe(0, 2, 100+f)
	}
	a := upA.TxPackets[0]
	b := upB.TxPackets[0]
	if a+b-base != 64 {
		t.Fatalf("uplink accounting: %d", a+b-base)
	}
	if a == 0 || b == 0 {
		t.Fatal("ECMP never used one of the spines across 64 flows")
	}
}

func TestLeafSpineSwitchPorts(t *testing.T) {
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, LeafSpineConfig{
		Leaves: 2, Spines: 3, HostsPerLeaf: 4,
		HostRate: Gbps, SpineRate: Gbps,
		SwitchPort: func() PortConfig { return PortConfig{Queues: 1} },
	})
	// Leaf ports: 4 down + 3 up each; spine ports: 2 down each.
	want := 2*(4+3) + 3*2
	if got := len(ls.SwitchPorts()); got != want {
		t.Fatalf("switch ports = %d, want %d", got, want)
	}
}

func TestPortStateInterface(t *testing.T) {
	eng := sim.NewEngine()
	port := NewPort(eng, PortConfig{Rate: 2 * Gbps, Queues: 3}, &sink{eng: eng})
	var st core.PortState = port
	if st.NumQueues() != 3 || st.LinkRate() != 2e9 {
		t.Fatal("PortState accessors")
	}
}

func TestDumbbellRoutingAndBottleneck(t *testing.T) {
	eng := sim.NewEngine()
	db := NewDumbbell(eng, DumbbellConfig{
		LeftHosts: 3, RightHosts: 2,
		EdgeRate: 10 * Gbps, CoreRate: Gbps,
		SwitchPort: func() PortConfig { return PortConfig{Queues: 1} },
	})
	hosts := db.Hosts()
	if len(hosts) != 5 {
		t.Fatalf("hosts = %d", len(hosts))
	}
	got := map[int]int{}
	for i, h := range hosts {
		i := i
		h.Handler = func(p *pkt.Packet) { got[i]++ }
	}
	// Left-to-left stays local (1 switch), cross traffic takes 2.
	p1 := &pkt.Packet{Src: 0, Dst: 2, Size: 100}
	hosts[0].Send(p1)
	p2 := &pkt.Packet{Src: 0, Dst: 4, Size: 100}
	hosts[0].Send(p2)
	p3 := &pkt.Packet{Src: 4, Dst: 1, Size: 100}
	hosts[4].Send(p3)
	eng.Run()
	if got[2] != 1 || got[4] != 1 || got[1] != 1 {
		t.Fatalf("deliveries: %v", got)
	}
	if p1.Hops != 1 || p2.Hops != 2 || p3.Hops != 2 {
		t.Fatalf("hops: %d %d %d", p1.Hops, p2.Hops, p3.Hops)
	}
	// The bottleneck port carried exactly the left-to-right packet.
	if db.Bottleneck().TxPackets[0] != 1 {
		t.Fatalf("bottleneck carried %d packets", db.Bottleneck().TxPackets[0])
	}
	if db.Bottleneck().Rate() != Gbps {
		t.Fatalf("bottleneck rate %v", db.Bottleneck().Rate())
	}
}

func TestDumbbellCongestionAtCore(t *testing.T) {
	// Two 10G senders share the 1G core: queueing happens at the core
	// port only.
	eng := sim.NewEngine()
	db := NewDumbbell(eng, DumbbellConfig{
		LeftHosts: 2, RightHosts: 1,
		EdgeRate: 10 * Gbps, CoreRate: Gbps,
		SwitchPort: func() PortConfig { return PortConfig{Queues: 1} },
	})
	for i := 0; i < 20; i++ {
		db.Left[0].Send(&pkt.Packet{Src: 0, Dst: 2, Size: 1500})
		db.Left[1].Send(&pkt.Packet{Src: 1, Dst: 2, Size: 1500})
	}
	maxQ := 0
	var poll func()
	poll = func() {
		if q := db.Bottleneck().PortBytes(); q > maxQ {
			maxQ = q
		}
		if eng.Len() > 1 {
			eng.After(sim.Microsecond, poll)
		}
	}
	eng.After(10*sim.Microsecond, poll)
	eng.Run()
	if maxQ < 10_000 {
		t.Fatalf("core queue never built: %d", maxQ)
	}
}
