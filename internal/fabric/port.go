package fabric

import (
	"fmt"

	"tcn/internal/core"
	"tcn/internal/digest"
	"tcn/internal/invariant"
	"tcn/internal/obs"
	"tcn/internal/obs/prof"
	"tcn/internal/pkt"
	"tcn/internal/queue"
	"tcn/internal/sched"
	"tcn/internal/sim"
)

// Receiver is anything that can accept a packet from a link: a host, a
// switch, or a test sink.
type Receiver interface {
	Receive(p *pkt.Packet)
}

// Classifier maps a packet to the egress queue index that will hold it.
// The paper's prototype classifies on the DSCP field (§5).
type Classifier func(p *pkt.Packet) int

// ClassifyByDSCP returns a classifier that uses the DSCP value directly as
// the queue index, clamped to the queue count.
func ClassifyByDSCP(numQueues int) Classifier {
	return func(p *pkt.Packet) int {
		i := int(p.DSCP)
		if i >= numQueues {
			i = numQueues - 1
		}
		return i
	}
}

// PortConfig describes one egress port.
type PortConfig struct {
	// Rate is the line rate of the attached link.
	Rate Rate
	// PropDelay is the one-way propagation delay of the attached link.
	PropDelay sim.Time
	// Queues is the number of per-class queues (>= 1).
	Queues int
	// BufferBytes is the shared buffer pool for the port; 0 = unlimited.
	BufferBytes int
	// PerQueueBytes optionally caps each queue (static partitioning
	// ablation); 0 = unlimited.
	PerQueueBytes int
	// Scheduler arbitrates the queues; nil defaults to FIFO.
	Scheduler sched.Scheduler
	// Marker is the ECN scheme guarding the port; nil defaults to none.
	Marker core.Marker
	// Classify maps packets to queues; nil defaults to DSCP.
	Classify Classifier
}

// Port is an egress port: a multi-queue shared buffer drained by a
// scheduler onto a fixed-rate link, with an ECN marker observing both
// sides. The processing order per packet is the paper's qdisc pipeline
// (§5): classify → enqueue marking → schedule → dequeue marking →
// transmit.
type Port struct {
	eng      *sim.Engine
	buf      *queue.Buffer
	sch      sched.Scheduler
	marker   core.Marker
	rate     Rate
	prop     sim.Time
	peer     Receiver
	classify Classifier
	busy     bool

	// deliverFn and txFn are the two link callbacks, created once at
	// construction so per-packet scheduling goes through AfterArg with no
	// closure allocation.
	deliverFn func(any)
	txFn      func()

	// TxPackets and TxBytes count transmissions per queue.
	TxPackets []int64
	TxBytes   []int64
	// OnEnqueue, if set, observes every admitted packet after the
	// enqueue timestamp is stamped and enqueue-side marking has run.
	OnEnqueue func(now sim.Time, qi int, p *pkt.Packet)
	// OnTransmit, if set, observes every departing packet after marking.
	OnTransmit func(now sim.Time, qi int, p *pkt.Packet)
	// OnDrop, if set, observes every packet rejected by the buffer.
	OnDrop func(now sim.Time, qi int, p *pkt.Packet)
	// OnVerdict, if set, observes every decisive marking/dropping
	// decision (CE applied, buffer overflow, or an AQM rule firing on a
	// non-ECT packet). The verdict is the port's scratch — consumers
	// must copy what they keep.
	OnVerdict func(now sim.Time, qi int, p *pkt.Packet, v *core.Verdict)

	// verdict is the per-port scratch every marker call fills in; one
	// suffices because each engine (and thus each port) is
	// single-goroutine. Reusing it keeps attribution allocation-free.
	verdict core.Verdict

	// stats, when attached via Instrument, receives per-queue counters
	// and histograms on every enqueue/drop/transmit. Nil = off, and the
	// hot path pays only a nil check.
	stats *obs.PortObs

	// prof/scope, when attached via SetProfiler, bracket the enqueue and
	// transmit stages with the cost profiler's port scope; hotSch and
	// hotMarker are then instrumented wrappers of sch/marker. Nil prof =
	// off, one nil check per stage. Digest and accessor paths always use
	// the unwrapped sch/marker so profiling cannot change fingerprints.
	prof      *prof.Profiler
	scope     *prof.Scope
	hotSch    sched.Scheduler
	hotMarker core.Marker
}

// NewPort builds a port from cfg, delivering transmitted packets to peer.
func NewPort(eng *sim.Engine, cfg PortConfig, peer Receiver) *Port {
	if cfg.Queues <= 0 {
		panic(fmt.Sprintf("fabric: port needs at least one queue, got %d", cfg.Queues))
	}
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("fabric: port rate %v must be positive", cfg.Rate))
	}
	s := cfg.Scheduler
	if s == nil {
		s = sched.NewFIFO()
	}
	m := cfg.Marker
	if m == nil {
		m = core.Nop{}
	}
	c := cfg.Classify
	if c == nil {
		c = ClassifyByDSCP(cfg.Queues)
	}
	p := &Port{
		eng:       eng,
		buf:       queue.NewBuffer(cfg.Queues, cfg.BufferBytes, cfg.PerQueueBytes),
		sch:       s,
		marker:    m,
		rate:      cfg.Rate,
		prop:      cfg.PropDelay,
		peer:      peer,
		classify:  c,
		TxPackets: make([]int64, cfg.Queues),
		TxBytes:   make([]int64, cfg.Queues),
	}
	p.hotSch = s
	p.hotMarker = m
	s.Bind(p.buf)
	p.deliverFn = func(v any) { p.peer.Receive(v.(*pkt.Packet)) }
	p.txFn = p.transmitNext
	return p
}

// SetProfiler brackets the port's pipeline stages with cost-profiler
// scopes: the port itself under "port:<label>" (the same label the
// ledger and digest layers use for this port), its scheduler under
// "sched:<name>", and its marker under "marker:<name>". Call at attach
// time, before traffic flows; passing the profiler only swaps hot-path
// references, so fingerprints are unchanged.
func (pt *Port) SetProfiler(p *prof.Profiler, label string) {
	pt.prof = p
	pt.scope = p.NewScope("port:" + label)
	schScope := p.NewScope("sched:" + pt.sch.Name())
	pt.hotSch = sched.Instrument(pt.sch, schScope.Enter, p.Exit)
	markScope := p.NewScope("marker:" + pt.marker.Name())
	pt.hotMarker = core.InstrumentMarker(pt.marker, markScope.Enter, p.Exit)
}

// Send admits p to the port. It classifies, applies admission control
// against the shared buffer, stamps the enqueue timestamp, runs enqueue-
// side marking, and kicks the transmitter if the link is idle.
func (pt *Port) Send(p *pkt.Packet) {
	if pt.prof != nil {
		pt.scope.Enter()
	}
	now := pt.eng.Now()
	qi := pt.classify(p)
	if !pt.buf.Push(qi, p) {
		if pt.stats != nil {
			pt.stats.Drop(qi, p.Size)
		}
		if pt.OnDrop != nil {
			pt.OnDrop(now, qi, p)
		}
		if pt.OnVerdict != nil {
			pt.verdict.Reset(core.StageAdmission, pt.buf.Bytes(qi), pt.buf.Used())
			pt.verdict.Reason = core.ReasonBufferOverflow
			pt.verdict.Dropped = true
			pt.OnVerdict(now, qi, p, &pt.verdict)
		}
		if pt.prof != nil {
			pt.prof.Exit()
		}
		return
	}
	if pt.stats != nil {
		pt.stats.Enqueue(qi, p.Size, pt.buf.Bytes(qi))
	}
	p.EnqueuedAt = now
	pt.hotSch.OnEnqueue(now, qi, p)
	pt.verdict.Reset(core.StageEnqueue, pt.buf.Bytes(qi), pt.buf.Used())
	pt.hotMarker.OnEnqueue(now, qi, p, pt, &pt.verdict)
	if pt.OnVerdict != nil && pt.verdict.Decisive() {
		pt.OnVerdict(now, qi, p, &pt.verdict)
	}
	if pt.OnEnqueue != nil {
		pt.OnEnqueue(now, qi, p)
	}
	if !pt.busy {
		pt.transmitNext()
	}
	if pt.prof != nil {
		pt.prof.Exit()
	}
}

// transmitNext asks the scheduler for the next queue, dequeues, runs
// dequeue-side marking, and occupies the link for the serialization time.
func (pt *Port) transmitNext() {
	if pt.prof != nil {
		pt.scope.Enter()
	}
	now := pt.eng.Now()
	qi := pt.hotSch.Next(now)
	if qi < 0 {
		pt.busy = false
		if pt.prof != nil {
			pt.prof.Exit()
		}
		return
	}
	p := pt.buf.Pop(qi)
	if p == nil {
		panic(fmt.Sprintf("fabric: scheduler %s chose empty queue %d", pt.sch.Name(), qi))
	}
	if invariant.Enabled {
		invariant.Checkf(p.Sojourn(now) >= 0,
			"fabric: negative sojourn %v (enqueued at %v, dequeued at %v)",
			p.Sojourn(now), p.EnqueuedAt, now)
	}
	pt.hotSch.OnDequeue(now, qi, p)
	pt.verdict.Reset(core.StageDequeue, pt.buf.Bytes(qi), pt.buf.Used())
	pt.hotMarker.OnDequeue(now, qi, p, pt, &pt.verdict)
	if pt.OnVerdict != nil && pt.verdict.Decisive() {
		pt.OnVerdict(now, qi, p, &pt.verdict)
	}
	pt.TxPackets[qi]++
	pt.TxBytes[qi] += int64(p.Size)
	if pt.stats != nil {
		pt.stats.Transmit(qi, p.Size, p.Sojourn(now), p.ECN == pkt.CE)
		if invariant.Enabled {
			pt.checkStats(qi)
		}
	}
	if pt.OnTransmit != nil {
		pt.OnTransmit(now, qi, p)
	}
	pt.busy = true
	txDone := pt.rate.Serialize(p.Size)
	arrival := txDone + pt.prop
	pt.eng.AfterArg(arrival, pt.deliverFn, p)
	pt.eng.After(txDone, pt.txFn)
	if pt.prof != nil {
		pt.prof.Exit()
	}
}

// Instrument attaches the standard per-queue stats bundle (enqueue/
// transmit/drop byte+packet counters, CE mark counter, sojourn and
// occupancy histograms) to the registry under label. The definitions
// line up with trace.Tracer: tx counts every transmission (marked or
// not), mark counts transmissions leaving with CE, drop counts
// admission rejections — so registry counters and tracer counts
// reconcile exactly on the same run.
func (pt *Port) Instrument(r *obs.Registry, label string) *obs.PortObs {
	if invariant.Enabled {
		// The reconciliation identity (enq − tx == buffered) only holds
		// when the counters observe the port's whole life.
		invariant.Checkf(pt.buf.Used() == 0,
			"fabric: Instrument(%q) on a port already holding %d bytes", label, pt.buf.Used())
	}
	pt.stats = obs.NewPortObs(r, label, pt.buf.NumQueues())
	return pt.stats
}

// checkStats asserts, after a transmit on queue qi, that the obs
// counters reconcile with the port's own accounting (invariants builds
// only): counted enqueued bytes minus transmitted bytes equal the bytes
// still buffered, counters agree with the port's transmit tallies, and
// CE marks never exceed transmissions.
func (pt *Port) checkStats(qi int) {
	q := &pt.stats.Q[qi]
	invariant.Checkf(q.TxPackets.Value() == pt.TxPackets[qi],
		"fabric: obs tx_packets %d != port count %d on queue %d",
		q.TxPackets.Value(), pt.TxPackets[qi], qi)
	invariant.Checkf(q.TxBytes.Value() == pt.TxBytes[qi],
		"fabric: obs tx_bytes %d != port count %d on queue %d",
		q.TxBytes.Value(), pt.TxBytes[qi], qi)
	invariant.Checkf(q.MarkPackets.Value() <= q.TxPackets.Value(),
		"fabric: %d CE marks exceed %d transmissions on queue %d",
		q.MarkPackets.Value(), q.TxPackets.Value(), qi)
	buffered := q.EnqBytes.Value() - q.TxBytes.Value()
	invariant.Checkf(buffered == int64(pt.buf.Bytes(qi)),
		"fabric: obs enq−tx = %d bytes but queue %d holds %d",
		buffered, qi, pt.buf.Bytes(qi))
}

// DigestState folds the port's state into a run fingerprint: the link
// busy flag, per-queue transmit tallies, the buffer occupancy, and — when
// they expose state — the scheduler's credit counters and the marker's
// mark tally. Presence flags keep the digest shape fixed.
func (pt *Port) DigestState(h *digest.Hash) {
	h.WriteBool(pt.busy)
	h.WriteInt(len(pt.TxPackets))
	for i := range pt.TxPackets {
		h.WriteInt64(pt.TxPackets[i])
		h.WriteInt64(pt.TxBytes[i])
	}
	pt.buf.DigestState(h)
	if d, ok := pt.sch.(digest.Digestable); ok {
		h.WriteBool(true)
		d.DigestState(h)
	} else {
		h.WriteBool(false)
	}
	if mc, ok := pt.marker.(core.MarkCounter); ok {
		h.WriteBool(true)
		h.WriteInt64(mc.MarkCount())
	} else {
		h.WriteBool(false)
	}
}

// Buffer exposes the port's buffer for tests and metrics.
func (pt *Port) Buffer() *queue.Buffer { return pt.buf }

// Engine exposes the port's event engine, so observers attaching to an
// already-built port can schedule probes on the right clock.
func (pt *Port) Engine() *sim.Engine { return pt.eng }

// Scheduler exposes the port's scheduler.
func (pt *Port) Scheduler() sched.Scheduler { return pt.sch }

// Marker exposes the port's marker.
func (pt *Port) Marker() core.Marker { return pt.marker }

// Rate returns the port's line rate.
func (pt *Port) Rate() Rate { return pt.rate }

// NumQueues implements core.PortState.
func (pt *Port) NumQueues() int { return pt.buf.NumQueues() }

// QueueLen implements core.PortState.
func (pt *Port) QueueLen(i int) int { return pt.buf.Len(i) }

// QueueBytes implements core.PortState.
func (pt *Port) QueueBytes(i int) int { return pt.buf.Bytes(i) }

// PortBytes implements core.PortState.
func (pt *Port) PortBytes() int { return pt.buf.Used() }

// LinkRate implements core.PortState.
func (pt *Port) LinkRate() int64 { return int64(pt.rate) }
