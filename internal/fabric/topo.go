package fabric

import (
	"fmt"

	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// PortFactory produces the configuration for one switch egress port. It is
// called once per port so every port gets its own scheduler and marker
// instances; the builder fills in Rate and PropDelay if left zero.
type PortFactory func() PortConfig

// Star is the paper's testbed shape: n hosts connected to one switch
// (§6.1: 9 servers on a 9-port server-emulated switch).
type Star struct {
	Eng    *sim.Engine
	Hosts  []*Host
	Switch *Switch
}

// StarConfig parameterizes a star topology.
type StarConfig struct {
	// Hosts is the number of end systems.
	Hosts int
	// Rate applies to every link.
	Rate Rate
	// Prop is the one-way propagation delay per link.
	Prop sim.Time
	// HostDelay is the receive-side processing delay per host, used to
	// reach the experiment's base RTT.
	HostDelay sim.Time
	// HostBufferBytes bounds the NIC egress queue; 0 = unlimited.
	HostBufferBytes int
	// SwitchPort configures each switch egress port.
	SwitchPort PortFactory
}

// NewStar builds the topology. Packets are routed to the switch port whose
// index equals the destination host id.
func NewStar(eng *sim.Engine, cfg StarConfig) *Star {
	if cfg.Hosts < 2 {
		panic(fmt.Sprintf("fabric: star needs at least 2 hosts, got %d", cfg.Hosts))
	}
	if cfg.SwitchPort == nil {
		panic("fabric: star needs a switch port factory")
	}
	st := &Star{Eng: eng, Switch: NewSwitch(eng, 0)}
	for i := 0; i < cfg.Hosts; i++ {
		h := NewHost(eng, i, cfg.HostDelay)
		// Host NIC: single FIFO queue toward the switch.
		h.SetNIC(NewPort(eng, PortConfig{
			Rate:        cfg.Rate,
			PropDelay:   cfg.Prop,
			Queues:      1,
			BufferBytes: cfg.HostBufferBytes,
		}, st.Switch))
		st.Hosts = append(st.Hosts, h)

		pc := cfg.SwitchPort()
		if pc.Rate == 0 {
			pc.Rate = cfg.Rate
		}
		if pc.PropDelay == 0 {
			pc.PropDelay = cfg.Prop
		}
		st.Switch.AddPort(NewPort(eng, pc, h))
	}
	st.Switch.SetRoute(func(p *pkt.Packet) int { return p.Dst })
	return st
}

// LeafSpine is the paper's large-scale topology (§6.2): a two-tier Clos
// with ECMP across the spines. With equal host and uplink counts per leaf
// the fabric is non-blocking, as in the paper's 12×12 setup.
type LeafSpine struct {
	Eng    *sim.Engine
	Hosts  []*Host
	Leaves []*Switch
	Spines []*Switch
}

// LeafSpineConfig parameterizes a leaf-spine topology.
type LeafSpineConfig struct {
	// Leaves, Spines and HostsPerLeaf size the fabric.
	Leaves, Spines, HostsPerLeaf int
	// HostRate is the host-leaf link rate; SpineRate the leaf-spine
	// rate. The paper uses 10 Gbps for both.
	HostRate, SpineRate Rate
	// Prop is the one-way propagation delay per link.
	Prop sim.Time
	// HostDelay is the receive-side host processing delay (the paper's
	// 85.2 us base RTT has 80 us at the end hosts).
	HostDelay sim.Time
	// HostBufferBytes bounds NIC queues; 0 = unlimited.
	HostBufferBytes int
	// SwitchPort configures every switch egress port.
	SwitchPort PortFactory
}

// NewLeafSpine builds the fabric. Host h attaches to leaf h/HostsPerLeaf.
// Leaf ports [0,HostsPerLeaf) face hosts; ports [HostsPerLeaf,
// HostsPerLeaf+Spines) face spines. Spine ports [0, Leaves) face leaves.
// Up-traffic picks a spine by per-flow ECMP hash, so a flow's path is
// fixed but different flows spread across the fabric.
func NewLeafSpine(eng *sim.Engine, cfg LeafSpineConfig) *LeafSpine {
	switch {
	case cfg.Leaves < 1 || cfg.Spines < 1 || cfg.HostsPerLeaf < 1:
		panic(fmt.Sprintf("fabric: invalid leaf-spine %d×%d×%d",
			cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf))
	case cfg.SwitchPort == nil:
		panic("fabric: leaf-spine needs a switch port factory")
	}
	ls := &LeafSpine{Eng: eng}
	hpl := cfg.HostsPerLeaf

	for l := 0; l < cfg.Leaves; l++ {
		ls.Leaves = append(ls.Leaves, NewSwitch(eng, l))
	}
	for s := 0; s < cfg.Spines; s++ {
		ls.Spines = append(ls.Spines, NewSwitch(eng, cfg.Leaves+s))
	}

	// Hosts and leaf downlinks.
	for l := 0; l < cfg.Leaves; l++ {
		leaf := ls.Leaves[l]
		for k := 0; k < hpl; k++ {
			id := l*hpl + k
			h := NewHost(eng, id, cfg.HostDelay)
			h.SetNIC(NewPort(eng, PortConfig{
				Rate:        cfg.HostRate,
				PropDelay:   cfg.Prop,
				Queues:      1,
				BufferBytes: cfg.HostBufferBytes,
			}, leaf))
			ls.Hosts = append(ls.Hosts, h)

			pc := cfg.SwitchPort()
			if pc.Rate == 0 {
				pc.Rate = cfg.HostRate
			}
			if pc.PropDelay == 0 {
				pc.PropDelay = cfg.Prop
			}
			leaf.AddPort(NewPort(eng, pc, h))
		}
	}

	// Leaf uplinks and spine downlinks.
	for l := 0; l < cfg.Leaves; l++ {
		leaf := ls.Leaves[l]
		for s := 0; s < cfg.Spines; s++ {
			up := cfg.SwitchPort()
			if up.Rate == 0 {
				up.Rate = cfg.SpineRate
			}
			if up.PropDelay == 0 {
				up.PropDelay = cfg.Prop
			}
			leaf.AddPort(NewPort(eng, up, ls.Spines[s]))
		}
	}
	for s := 0; s < cfg.Spines; s++ {
		spine := ls.Spines[s]
		for l := 0; l < cfg.Leaves; l++ {
			down := cfg.SwitchPort()
			if down.Rate == 0 {
				down.Rate = cfg.SpineRate
			}
			if down.PropDelay == 0 {
				down.PropDelay = cfg.Prop
			}
			spine.AddPort(NewPort(eng, down, ls.Leaves[l]))
		}
	}

	// Routing.
	spines := cfg.Spines
	for l := 0; l < cfg.Leaves; l++ {
		l := l
		ls.Leaves[l].SetRoute(func(p *pkt.Packet) int {
			if p.Dst/hpl == l {
				return p.Dst % hpl
			}
			return hpl + int(ecmpHash(p.Flow))%spines
		})
	}
	for s := 0; s < cfg.Spines; s++ {
		ls.Spines[s].SetRoute(func(p *pkt.Packet) int { return p.Dst / hpl })
	}
	return ls
}

// SwitchPorts returns every switch egress port in the fabric, for
// aggregating drop and mark counters.
func (ls *LeafSpine) SwitchPorts() []*Port {
	var ps []*Port
	for _, sw := range append(append([]*Switch{}, ls.Leaves...), ls.Spines...) {
		for i := 0; i < sw.NumPorts(); i++ {
			ps = append(ps, sw.Port(i))
		}
	}
	return ps
}

// Dumbbell is the classic two-switch bottleneck: Left hosts attach to one
// switch, Right hosts to the other, and a single inter-switch link is the
// only shared resource. Useful for isolating a marking scheme on exactly
// one congested port.
type Dumbbell struct {
	Eng         *sim.Engine
	Left, Right []*Host
	LeftSwitch  *Switch
	RightSwitch *Switch
}

// DumbbellConfig parameterizes a dumbbell topology.
type DumbbellConfig struct {
	// LeftHosts and RightHosts size the two sides.
	LeftHosts, RightHosts int
	// EdgeRate is the host-switch link rate; CoreRate the bottleneck.
	EdgeRate, CoreRate Rate
	// Prop is the one-way propagation delay per link.
	Prop sim.Time
	// HostDelay is the receive-side processing delay per host.
	HostDelay sim.Time
	// HostBufferBytes bounds NIC queues; 0 = unlimited.
	HostBufferBytes int
	// SwitchPort configures every switch egress port (host-facing and
	// the two bottleneck directions alike).
	SwitchPort PortFactory
}

// NewDumbbell builds the topology. Host ids: left hosts are
// [0, LeftHosts), right hosts [LeftHosts, LeftHosts+RightHosts). Each
// switch's ports are its local host ports in id order, then the port
// toward the other switch.
func NewDumbbell(eng *sim.Engine, cfg DumbbellConfig) *Dumbbell {
	switch {
	case cfg.LeftHosts < 1 || cfg.RightHosts < 1:
		panic(fmt.Sprintf("fabric: dumbbell needs hosts on both sides, got %d/%d",
			cfg.LeftHosts, cfg.RightHosts))
	case cfg.SwitchPort == nil:
		panic("fabric: dumbbell needs a switch port factory")
	}
	db := &Dumbbell{
		Eng:         eng,
		LeftSwitch:  NewSwitch(eng, 0),
		RightSwitch: NewSwitch(eng, 1),
	}
	attach := func(sw *Switch, id int) *Host {
		h := NewHost(eng, id, cfg.HostDelay)
		h.SetNIC(NewPort(eng, PortConfig{
			Rate:        cfg.EdgeRate,
			PropDelay:   cfg.Prop,
			Queues:      1,
			BufferBytes: cfg.HostBufferBytes,
		}, sw))
		pc := cfg.SwitchPort()
		if pc.Rate == 0 {
			pc.Rate = cfg.EdgeRate
		}
		if pc.PropDelay == 0 {
			pc.PropDelay = cfg.Prop
		}
		sw.AddPort(NewPort(eng, pc, h))
		return h
	}
	for i := 0; i < cfg.LeftHosts; i++ {
		db.Left = append(db.Left, attach(db.LeftSwitch, i))
	}
	for i := 0; i < cfg.RightHosts; i++ {
		db.Right = append(db.Right, attach(db.RightSwitch, cfg.LeftHosts+i))
	}
	// The bottleneck, both directions.
	core := func(from, to *Switch) int {
		pc := cfg.SwitchPort()
		if pc.Rate == 0 {
			pc.Rate = cfg.CoreRate
		} else if cfg.CoreRate != 0 {
			pc.Rate = cfg.CoreRate
		}
		if pc.PropDelay == 0 {
			pc.PropDelay = cfg.Prop
		}
		return from.AddPort(NewPort(eng, pc, to))
	}
	leftUp := core(db.LeftSwitch, db.RightSwitch)
	rightUp := core(db.RightSwitch, db.LeftSwitch)

	nLeft := cfg.LeftHosts
	db.LeftSwitch.SetRoute(func(p *pkt.Packet) int {
		if p.Dst < nLeft {
			return p.Dst
		}
		return leftUp
	})
	db.RightSwitch.SetRoute(func(p *pkt.Packet) int {
		if p.Dst >= nLeft {
			return p.Dst - nLeft
		}
		return rightUp
	})
	return db
}

// Hosts returns all hosts, left side first (index = host id).
func (db *Dumbbell) Hosts() []*Host {
	return append(append([]*Host{}, db.Left...), db.Right...)
}

// Bottleneck returns the left-to-right core port (the congested direction
// for left-to-right traffic).
func (db *Dumbbell) Bottleneck() *Port {
	return db.LeftSwitch.Port(db.LeftSwitch.NumPorts() - 1)
}
