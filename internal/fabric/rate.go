// Package fabric models the network substrate: full-duplex links, egress
// ports that combine a shared-memory multi-queue buffer with a scheduler
// and an ECN marker, hosts with NIC queues and processing delay, switches
// with routing functions, and builders for the paper's topologies (star
// "testbed" and leaf-spine "large-scale simulation") including ECMP.
package fabric

import (
	"fmt"

	"tcn/internal/sim"
)

// Rate is a link speed in bits per second.
type Rate int64

// Common rates.
const (
	Kbps Rate = 1e3
	Mbps Rate = 1e6
	Gbps Rate = 1e9
)

// String renders the rate with an adaptive unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%gGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%gMbps", float64(r)/float64(Mbps))
	default:
		return fmt.Sprintf("%gKbps", float64(r)/float64(Kbps))
	}
}

// Serialize returns the time to clock the given number of bytes onto a
// link of this rate.
func (r Rate) Serialize(bytes int) sim.Time {
	if r <= 0 {
		panic(fmt.Sprintf("fabric: cannot serialize on rate %d", r))
	}
	return sim.Time(int64(bytes) * 8 * int64(sim.Second) / int64(r))
}

// BDP returns the bandwidth-delay product in bytes for a given RTT.
func (r Rate) BDP(rtt sim.Time) int {
	return int(int64(r) * int64(rtt) / (8 * int64(sim.Second)))
}
