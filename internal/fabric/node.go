package fabric

import (
	"fmt"

	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// Host is an end system: one NIC egress port toward its switch, a fixed
// receive-side processing delay (used to calibrate base RTT to the paper's
// measured values), and a handler that the transport layer installs.
type Host struct {
	ID    int
	eng   *sim.Engine
	nic   *Port
	delay sim.Time

	// Handler receives every packet addressed to this host, after the
	// processing delay. The transport stack installs it.
	Handler func(p *pkt.Packet)

	// deliverFn is the stored delay-line callback, so per-packet
	// scheduling in Receive goes through AfterArg without a closure.
	deliverFn func(any)
}

// NewHost returns a host; the NIC port is attached later via SetNIC
// because the port needs its peer (the switch) first.
func NewHost(eng *sim.Engine, id int, delay sim.Time) *Host {
	h := &Host{ID: id, eng: eng, delay: delay}
	h.deliverFn = func(v any) { h.deliver(v.(*pkt.Packet)) }
	return h
}

// SetNIC installs the host's egress port.
func (h *Host) SetNIC(p *Port) { h.nic = p }

// NIC returns the host's egress port.
func (h *Host) NIC() *Port { return h.nic }

// Send pushes a packet from this host into the network.
func (h *Host) Send(p *pkt.Packet) {
	if h.nic == nil {
		panic(fmt.Sprintf("fabric: host %d has no NIC", h.ID))
	}
	h.nic.Send(p)
}

// Receive implements Receiver: deliver to the transport after the host
// processing delay.
func (h *Host) Receive(p *pkt.Packet) {
	if h.delay > 0 {
		h.eng.AfterArg(h.delay, h.deliverFn, p)
		return
	}
	h.deliver(p)
}

func (h *Host) deliver(p *pkt.Packet) {
	if h.Handler != nil {
		h.Handler(p)
	}
}

// Switch forwards packets between egress ports according to a routing
// function set by the topology builder.
type Switch struct {
	ID    int
	eng   *sim.Engine
	ports []*Port
	route func(p *pkt.Packet) int
}

// NewSwitch returns a switch with no ports; the topology builder adds them.
func NewSwitch(eng *sim.Engine, id int) *Switch {
	return &Switch{ID: id, eng: eng}
}

// AddPort appends an egress port and returns its index.
func (s *Switch) AddPort(p *Port) int {
	s.ports = append(s.ports, p)
	return len(s.ports) - 1
}

// Port returns egress port i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// NumPorts returns the number of egress ports.
func (s *Switch) NumPorts() int { return len(s.ports) }

// SetRoute installs the routing function mapping packets to egress ports.
func (s *Switch) SetRoute(route func(p *pkt.Packet) int) { s.route = route }

// Receive implements Receiver: route and forward.
func (s *Switch) Receive(p *pkt.Packet) {
	if s.route == nil {
		panic(fmt.Sprintf("fabric: switch %d has no route function", s.ID))
	}
	p.Hops++
	if p.Hops > 64 {
		panic(fmt.Sprintf("fabric: routing loop for packet %v", p))
	}
	i := s.route(p)
	if i < 0 || i >= len(s.ports) {
		panic(fmt.Sprintf("fabric: switch %d routed packet to invalid port %d", s.ID, i))
	}
	s.ports[i].Send(p)
}

// ecmpHash is a deterministic per-flow hash (FNV-1a over the flow id) used
// to pick among equal-cost uplinks.
func ecmpHash(f pkt.FlowID) uint32 {
	h := uint32(2166136261)
	x := uint32(f)
	for i := 0; i < 4; i++ {
		h ^= x & 0xFF
		h *= 16777619
		x >>= 8
	}
	return h
}
