// Package testutil holds tiny helpers shared by every package's tests.
//
// The main export is the epsilon comparison family, the sanctioned
// replacement for exact floating-point equality (the tcnlint floatcmp
// rule): values that are "equal" in a test almost always came from two
// different arithmetic paths, so the comparison must budget for rounding.
package testutil

import "math"

// Tol is the default tolerance: generous against rounding noise, far
// below any quantity the tests assert on.
const Tol = 1e-9

// AlmostEqual reports whether a and b differ by at most eps, absolutely
// or relative to the larger magnitude (so it stays meaningful for values
// far from 1.0). NaN equals nothing, mirroring IEEE semantics.
func AlmostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //tcnlint:floatexact fast path; also handles equal infinities
		return true
	}
	diff := math.Abs(a - b)
	if diff <= eps {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= eps*scale
}

// Eq is AlmostEqual at the package default tolerance.
func Eq(a, b float64) bool { return AlmostEqual(a, b, Tol) }
