package sim

import "math/rand"

// Rand wraps math/rand with the distributions the simulator needs. All
// randomness in an experiment must flow through one seeded Rand so runs are
// reproducible.
type Rand struct{ *rand.Rand }

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// Exp returns an exponentially distributed duration with the given mean,
// clamped below at 1ns so event ordering stays strict.
func (r *Rand) Exp(mean Time) Time {
	d := Time(r.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// Range returns a uniformly distributed integer in [lo, hi].
func (r *Rand) Range(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}
