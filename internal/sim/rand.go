package sim

import (
	"math/rand"

	"tcn/internal/digest"
)

// Rand wraps math/rand with the distributions the simulator needs. All
// randomness in an experiment must flow through one seeded Rand so runs are
// reproducible.
//
// math/rand exposes no way to read its internal state, so Rand digests as
// (seed, draw count) instead: two streams with the same seed that have
// served the same number of draws are in identical states. The draw counter
// is maintained by shadowing the sampling methods the simulator uses —
// adding a new sampling call site must go through one of these shadows (or
// add a new one), or the fingerprint goes blind to it.
type Rand struct {
	*rand.Rand
	seed  int64
	draws uint64
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Intn counts the draw, then defers to math/rand.
func (r *Rand) Intn(n int) int {
	r.draws++
	return r.Rand.Intn(n)
}

// Float64 counts the draw, then defers to math/rand.
func (r *Rand) Float64() float64 {
	r.draws++
	return r.Rand.Float64()
}

// ExpFloat64 counts the draw, then defers to math/rand.
func (r *Rand) ExpFloat64() float64 {
	r.draws++
	return r.Rand.ExpFloat64()
}

// Shuffle counts as one draw (the permutation is one decision, however
// many swaps it makes), then defers to math/rand.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	r.draws++
	r.Rand.Shuffle(n, swap)
}

// Draws returns the number of sampling calls served so far.
func (r *Rand) Draws() uint64 { return r.draws }

// DigestState folds the stream identity into a run fingerprint: the seed
// and the cumulative draw count. A divergence in the "rand" component
// means the two runs consumed randomness differently — almost always the
// earliest observable symptom of a behavioral divergence upstream of it.
func (r *Rand) DigestState(h *digest.Hash) {
	h.WriteInt64(r.seed)
	h.WriteUint64(r.draws)
}

// Exp returns an exponentially distributed duration with the given mean,
// clamped below at 1ns so event ordering stays strict.
func (r *Rand) Exp(mean Time) Time {
	d := Time(r.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// Range returns a uniformly distributed integer in [lo, hi].
func (r *Rand) Range(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}
