package sim

import (
	"testing"

	"tcn/internal/digest"
)

// The wheel core must be observationally identical to the heap core: same
// (at, seq) execution order, same clock at every callback, same engine
// digest afterward. These tests drive both cores with byte-identical
// workloads — randomized schedule/cancel/reschedule streams with
// same-tick bursts, cascade-crossing horizons, and beyond-horizon spills —
// and compare the full execution logs.

// equivFiring records one callback execution: which event fired and when.
type equivFiring struct {
	tag int64
	at  Time
}

// equivMix derives per-event deterministic "randomness" from the event's
// tag, so decisions made inside callbacks do not depend on a shared
// generator (whose state would otherwise couple the two runs through the
// very ordering property under test).
func equivMix(tag int64) uint64 {
	x := uint64(tag) * 0x9E3779B97F4A7C15
	x ^= x >> 32
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 32
	return x
}

// equivDeltas are the horizon buckets a schedule op draws from: same tick,
// sub-slot, level-0 direct, level-1, level-2, level-3, and past the wheel
// horizon (spill list).
var equivDeltas = [...]Time{
	0,
	1,
	50,
	5 * Microsecond,
	500 * Microsecond,
	50 * Millisecond,
	20 * Second,
	Time(1) << 41,
	Time(1) << 45,
}

// runEquivWorkload drives one engine core through ops pseudo-random steps
// plus a final drain, returning the firing log and the engine digest. All
// control-flow decisions come from the op-stream generator r (outside
// callbacks) or from equivMix (inside callbacks), so two runs with the
// same seed see byte-identical workloads regardless of core.
func runEquivWorkload(core Core, seed int64, ops int) ([]equivFiring, uint64) {
	e := NewEngineCore(core)
	r := NewRand(seed)
	var log []equivFiring
	var refs []EventRef
	var nextTag int64

	var fire func(v any)
	schedule := func(d Time) {
		tag := nextTag
		nextTag++
		refs = append(refs, e.AfterArg(d, fire, tag))
	}
	fire = func(v any) {
		tag := v.(int64)
		log = append(log, equivFiring{tag, e.Now()})
		m := equivMix(tag)
		// A third of events schedule a follow-up; horizons derived from
		// the tag so both cores make the same choice.
		if m%3 == 0 {
			schedule(equivDeltas[(m>>8)%uint64(len(equivDeltas))])
		}
		// Some events cancel an arbitrary outstanding ref (often stale —
		// that must be harmless and identical on both cores).
		if m%7 == 0 && len(refs) > 0 {
			e.Cancel(refs[(m>>16)%uint64(len(refs))])
		}
	}

	for i := 0; i < ops; i++ {
		switch c := r.Range(0, 100); {
		case c < 55:
			schedule(equivDeltas[r.Range(0, len(equivDeltas)-1)])
		case c < 65:
			// Same-tick burst: several events at one instant exercises
			// the same-instant run drain.
			d := equivDeltas[r.Range(0, len(equivDeltas)-1)]
			for k := r.Range(2, 6); k > 0; k-- {
				schedule(d)
			}
		case c < 80:
			if len(refs) > 0 {
				e.Cancel(refs[r.Range(0, len(refs)-1)])
			}
		default:
			e.RunUntil(e.Now() + Time(r.Range(0, int(2*Millisecond))))
		}
	}
	e.Run()

	h := digest.NewHash(uint64(seed))
	e.DigestState(&h)
	return log, h.Sum64()
}

// TestWheelHeapEquivalence is the property test: across seeds, the wheel
// and heap cores must produce identical firing logs (same events, same
// order, same clock) and identical engine digests.
func TestWheelHeapEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		wheelLog, wheelSum := runEquivWorkload(CoreWheel, seed, 2000)
		heapLog, heapSum := runEquivWorkload(CoreHeap, seed, 2000)
		if len(wheelLog) != len(heapLog) {
			t.Fatalf("seed %d: wheel fired %d events, heap %d", seed, len(wheelLog), len(heapLog))
		}
		for i := range wheelLog {
			if wheelLog[i] != heapLog[i] {
				t.Fatalf("seed %d: firing %d diverged: wheel (tag %d at %v), heap (tag %d at %v)",
					seed, i, wheelLog[i].tag, wheelLog[i].at, heapLog[i].tag, heapLog[i].at)
			}
		}
		if wheelSum != heapSum {
			t.Fatalf("seed %d: digest diverged: wheel %016x, heap %016x", seed, wheelSum, heapSum)
		}
		if len(wheelLog) == 0 {
			t.Fatalf("seed %d: workload fired no events", seed)
		}
	}
}

// TestWheelHeapEquivalenceStop checks the equivalence across mid-run Stop:
// a callback stops the engine, the wheel requeues its detached remainder,
// and both cores must agree on what has and has not fired when the run
// resumes.
func TestWheelHeapEquivalenceStop(t *testing.T) {
	run := func(core Core) ([]equivFiring, uint64) {
		e := NewEngineCore(core)
		var log []equivFiring
		var tag int64
		rec := func(v any) { log = append(log, equivFiring{v.(int64), e.Now()}) }
		add := func(d Time) {
			e.AfterArg(d, rec, tag)
			tag++
		}
		// A same-instant burst with a Stop in the middle.
		for i := 0; i < 5; i++ {
			add(10 * Nanosecond)
		}
		stopTag := tag
		e.AtArg(10*Nanosecond, func(v any) {
			log = append(log, equivFiring{v.(int64), e.Now()})
			e.Stop()
		}, stopTag)
		tag++
		for i := 0; i < 4; i++ {
			add(10 * Nanosecond)
		}
		add(20 * Nanosecond)
		e.Run() // runs until the Stop
		// Schedule more same-instant events while the remainder is parked,
		// then drain: the requeued events must still fire first (smaller
		// seq).
		add(0)
		e.Run()
		h := digest.NewHash(7)
		e.DigestState(&h)
		return log, h.Sum64()
	}
	wheelLog, wheelSum := run(CoreWheel)
	heapLog, heapSum := run(CoreHeap)
	if len(wheelLog) != len(heapLog) {
		t.Fatalf("wheel fired %d, heap %d", len(wheelLog), len(heapLog))
	}
	for i := range wheelLog {
		if wheelLog[i] != heapLog[i] {
			t.Fatalf("firing %d diverged: wheel %+v, heap %+v", i, wheelLog[i], heapLog[i])
		}
	}
	if wheelSum != heapSum {
		t.Fatalf("digest diverged: wheel %016x, heap %016x", wheelSum, heapSum)
	}
}

// FuzzWheelHeapEquivalence interprets the fuzz input as an op stream and
// cross-checks the cores on it. Each byte pair is one op: schedule at one
// of the delta buckets, cancel an outstanding ref, or run a bounded chunk.
func FuzzWheelHeapEquivalence(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x22, 0x53, 0x84, 0xb5, 0xe6, 0x17, 0x48, 0x79})
	f.Add([]byte{0xff, 0xfe, 0xfd, 0xfc, 0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0x10, 0x90, 0x20, 0xa0, 0x30, 0xb0, 0x40, 0xc0, 0x50, 0xd0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		run := func(core Core) ([]equivFiring, uint64) {
			e := NewEngineCore(core)
			var log []equivFiring
			var refs []EventRef
			var tag int64
			rec := func(v any) { log = append(log, equivFiring{v.(int64), e.Now()}) }
			for i := 0; i+1 < len(data); i += 2 {
				op, arg := data[i], data[i+1]
				switch op % 4 {
				case 0, 1:
					d := equivDeltas[int(arg)%len(equivDeltas)]
					refs = append(refs, e.AfterArg(d, rec, tag))
					tag++
				case 2:
					if len(refs) > 0 {
						e.Cancel(refs[int(arg)%len(refs)])
					}
				case 3:
					e.RunUntil(e.Now() + Time(arg)*Microsecond)
				}
			}
			e.Run()
			h := digest.NewHash(1)
			e.DigestState(&h)
			return log, h.Sum64()
		}
		wheelLog, wheelSum := run(CoreWheel)
		heapLog, heapSum := run(CoreHeap)
		if len(wheelLog) != len(heapLog) {
			t.Fatalf("wheel fired %d events, heap %d", len(wheelLog), len(heapLog))
		}
		for i := range wheelLog {
			if wheelLog[i] != heapLog[i] {
				t.Fatalf("firing %d diverged: wheel %+v, heap %+v", i, wheelLog[i], heapLog[i])
			}
		}
		if wheelSum != heapSum {
			t.Fatalf("digest diverged: wheel %016x, heap %016x", wheelSum, heapSum)
		}
	})
}
