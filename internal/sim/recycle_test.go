package sim

import "testing"

// TestEventRecycling checks that fired events return to the freelist and are
// handed out again, and that the heap stops growing in steady state.
func TestEventRecycling(t *testing.T) {
	e := NewEngine()
	var fired int
	e.At(Nanosecond, func() { fired++ })
	e.Run()
	if len(e.free) != 1 {
		t.Fatalf("freelist has %d nodes after one event, want 1", len(e.free))
	}
	recycled := e.free[0]
	r := e.At(2*Nanosecond, func() { fired++ })
	if r.ev != recycled {
		t.Fatal("second At did not reuse the retired node")
	}
	if len(e.free) != 0 {
		t.Fatalf("freelist has %d nodes after reuse, want 0", len(e.free))
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d events, want 2", fired)
	}
}

// TestStaleRefAfterRecycle checks that an EventRef to a fired event cannot
// cancel or observe the new event occupying the recycled node.
func TestStaleRefAfterRecycle(t *testing.T) {
	e := NewEngine()
	var firstFired, secondFired bool
	stale := e.At(Nanosecond, func() { firstFired = true })
	e.Run()
	if stale.Pending() {
		t.Fatal("ref still pending after fire")
	}
	fresh := e.At(5*Nanosecond, func() { secondFired = true })
	if fresh.ev != stale.ev {
		t.Fatal("test setup: node was not recycled")
	}
	if stale.Pending() {
		t.Fatal("stale ref reports pending for the recycled node's new event")
	}
	if got := stale.At(); got != 0 {
		t.Fatalf("stale ref At() = %v, want 0", got)
	}
	e.Cancel(stale) // must be a no-op on the new occupant
	if !fresh.Pending() {
		t.Fatal("canceling a stale ref killed the recycled node's new event")
	}
	e.Run()
	if !firstFired || !secondFired {
		t.Fatalf("fired = (%v, %v), want both", firstFired, secondFired)
	}
}

// TestCancelRecyclesNode checks eager cancellation: the node leaves the heap
// and returns to the freelist immediately.
func TestCancelRecyclesNode(t *testing.T) {
	e := NewEngine()
	r := e.At(10*Nanosecond, func() { t.Fatal("canceled event fired") })
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1", e.Len())
	}
	e.Cancel(r)
	if e.Len() != 0 {
		t.Fatalf("Len = %d after cancel, want 0 (eager removal)", e.Len())
	}
	if len(e.free) != 1 {
		t.Fatalf("freelist has %d nodes after cancel, want 1", len(e.free))
	}
	e.Cancel(r) // double cancel is a no-op
	if len(e.free) != 1 {
		t.Fatalf("double cancel changed freelist to %d nodes", len(e.free))
	}
	e.Run()
}

// TestSelfCancelFromHandler checks that a timer canceling its own ref from
// inside its handler is harmless: the node was retired before the callback
// ran, so the ref is already stale.
func TestSelfCancelFromHandler(t *testing.T) {
	e := NewEngine()
	var r EventRef
	var reused EventRef
	r = e.At(Nanosecond, func() {
		e.Cancel(r) // stale: must not disturb anything
		reused = e.At(2*Nanosecond, func() {})
	})
	e.Run()
	if reused.Pending() {
		t.Fatal("rescheduled event never fired")
	}
	if e.Executed != 2 {
		t.Fatalf("Executed = %d, want 2", e.Executed)
	}
}

// TestAtArgDelivery checks that AtArg/AfterArg deliver their argument and
// order among fn events by schedule sequence.
func TestAtArgDelivery(t *testing.T) {
	e := NewEngine()
	var got []int
	record := func(v any) { got = append(got, v.(int)) }
	e.AtArg(5*Nanosecond, record, 1)
	e.At(5*Nanosecond, func() { got = append(got, 2) })
	e.AfterArg(5*Nanosecond, record, 3)
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestAtArgCancel checks that arg events cancel like fn events and release
// their argument reference on retirement.
func TestAtArgCancel(t *testing.T) {
	e := NewEngine()
	r := e.AtArg(3*Nanosecond, func(any) { t.Fatal("canceled arg event fired") }, "payload")
	e.Cancel(r)
	if e.free[0].arg != nil || e.free[0].afn != nil {
		t.Fatal("retire did not clear afn/arg")
	}
	e.Run()
}

// TestRecyclingHeapOrderProperty reschedules through heavy churn and checks
// the (at, seq) firing order survives node reuse.
func TestRecyclingHeapOrderProperty(t *testing.T) {
	e := NewEngine()
	r := NewRand(7)
	var last Time
	var fired int
	var schedule func()
	schedule = func() {
		if fired >= 5000 {
			return
		}
		d := Time(r.Range(0, 50))
		e.After(d, func() {
			if e.Now() < last {
				t.Fatalf("clock went backward: %v after %v", e.Now(), last)
			}
			last = e.Now()
			fired++
			schedule()
			if r.Range(0, 3) == 0 {
				ref := e.After(Time(r.Range(1, 20)), func() { fired++ })
				e.Cancel(ref)
			}
		})
	}
	schedule()
	schedule()
	e.Run()
	if fired < 5000 {
		t.Fatalf("fired %d events, want >= 5000", fired)
	}
	if e.Len() != 0 {
		t.Fatalf("%d events left pending", e.Len())
	}
}
