// Package sim provides the discrete-event simulation engine that underlies
// every experiment in this repository.
//
// The engine keeps a virtual clock in integer nanoseconds and a binary heap
// of pending events. Events scheduled for the same instant fire in the order
// they were scheduled (a monotonically increasing sequence number breaks
// ties), which makes every simulation fully deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It doubles as a duration; helper constructors are provided for
// common units.
type Time int64

// Common durations expressed as Time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable instant; used as "never".
const MaxTime Time = math.MaxInt64

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "125us" or "1.5ms".
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.6gs", t.Seconds())
	}
}

// event is a scheduled callback.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

// EventRef refers to a scheduled event so it can be canceled or inspected.
// The zero value is an invalid reference.
type EventRef struct{ ev *event }

// Valid reports whether the reference points at a scheduled event.
func (r EventRef) Valid() bool { return r.ev != nil }

// Pending reports whether the event is still waiting to fire (not canceled,
// not yet executed).
func (r EventRef) Pending() bool { return r.ev != nil && !r.ev.canceled && r.ev.index >= 0 }

// At reports the instant the event is scheduled for.
func (r EventRef) At() Time {
	if r.ev == nil {
		return 0
	}
	return r.ev.at
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all callbacks run on the goroutine that calls Run.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool

	// Executed counts events that have fired, for progress reporting and
	// runaway detection in tests.
	Executed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending events (including canceled ones that
// have not been popped yet).
func (e *Engine) Len() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic error in a model.
func (e *Engine) At(t Time, fn func()) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return EventRef{ev}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a pending event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Engine) Cancel(r EventRef) {
	if r.ev == nil || r.ev.canceled {
		return
	}
	r.ev.canceled = true
	if r.ev.index >= 0 {
		heap.Remove(&e.events, r.ev.index)
	}
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() { e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (if the queue drained earlier the clock stays at the
// last event). It returns the number of events executed during this call.
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.stopped = false
	var n uint64
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.events)
		if next.canceled {
			continue
		}
		e.now = next.at
		next.fn()
		n++
		e.Executed++
	}
	if deadline != MaxTime && e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return n
}
