// Package sim provides the discrete-event simulation engine that underlies
// every experiment in this repository.
//
// The engine keeps a virtual clock in integer nanoseconds and a store of
// pending events. Events scheduled for the same instant fire in the order
// they were scheduled (a monotonically increasing sequence number breaks
// ties), which makes every simulation fully deterministic for a given seed.
//
// Two stores implement that contract. The default is a hierarchical timing
// wheel (wheel.go): O(1) schedule, cancel, and fire for the short-horizon
// events that dominate simulations — serialization, token refill, RTO
// arm/disarm, sampler ticks — with cascading overflow levels for far
// timers, a sorted spill list beyond the horizon, and a same-instant batch
// drain so one cursor scan serves a whole burst. The original binary
// min-heap (hand-inlined sift-up/sift-down, no container/heap dispatch) is
// retained behind NewEngineCore/TCN_ENGINE_CORE as a differential oracle;
// both cores produce byte-identical digests and execution orders, and the
// equivalence fuzz test drives them against each other.
//
// The event store is allocation-free in steady state: fired and canceled
// events return to a per-engine freelist and are handed out again by the
// next At/After call. Event structs must keep stable addresses so EventRef
// can refer to them across store moves, which is why both stores hold
// pointers into the freelist's nodes rather than event values; a
// generation counter on each node keeps stale references (to events that
// have since fired, been canceled, and been reissued) from acting on the
// wrong event.
//
// An Engine and everything scheduled on it belong to exactly one goroutine.
// Engines, their freelists, and the *Rand feeding an experiment must never
// be shared across goroutines — the tcnlint goshare analyzer enforces this,
// and the parallel sweep executor (internal/parallel) relies on it: one
// fully independent Engine per sweep point is what makes concurrent points
// byte-identical to serial execution.
package sim

import (
	"fmt"
	"math"

	"tcn/internal/digest"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It doubles as a duration; helper constructors are provided for
// common units.
type Time int64

// Common durations expressed as Time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable instant; used as "never".
const MaxTime Time = math.MaxInt64

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "125us" or "1.5ms".
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.6gs", t.Seconds())
	}
}

// event is a scheduled callback. Nodes are owned by one engine and recycled
// through its freelist: gen increments every time a node is retired (fired
// or canceled), invalidating any EventRef still pointing at it. Exactly one
// of fn and afn is set; afn carries its argument in arg so per-packet
// scheduling needs no closure allocation.
type event struct {
	at    Time
	seq   uint64
	gen   uint64
	mix   uint64 // cached pendMix(at, seq); computed in alloc, spent in retire
	index int    // heap core: heap index; -1 when not queued
	slot  int32  // wheel core: flat slot index, or slotNone/slotSpill/slotRun
	next  *event // wheel core: slot/spill list links
	prev  *event
	fn    func()
	afn   func(any)
	arg   any
}

// EventRef refers to a scheduled event so it can be canceled or inspected.
// The zero value is an invalid reference. References stay cheap to copy and
// safe to keep: once the event fires or is canceled the reference goes
// stale (Pending reports false) and every operation on it is a no-op, even
// after the engine reissues the underlying storage to a new event.
type EventRef struct {
	ev  *event
	gen uint64
}

// Valid reports whether the reference ever pointed at an event (the zero
// value did not). A valid reference may still be stale; see Pending.
func (r EventRef) Valid() bool { return r.ev != nil }

// Pending reports whether the event is still waiting to fire (not canceled,
// not yet executed, not superseded by a recycled node).
func (r EventRef) Pending() bool { return r.ev != nil && r.ev.gen == r.gen }

// At reports the instant the event is scheduled for, or 0 once the
// reference is stale.
func (r EventRef) At() Time {
	if !r.Pending() {
		return 0
	}
	return r.ev.at
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all callbacks run on the goroutine that calls Run.
type Engine struct {
	now     Time
	seq     uint64
	wheel   *wheel   // timing-wheel store (nil on the heap core)
	events  []*event // heap core: binary min-heap ordered by (at, seq)
	free    []*event // retired nodes awaiting reuse
	stopped bool

	// Executed counts events that have fired, for progress reporting and
	// runaway detection in tests.
	Executed uint64

	// Self-telemetry counters (internal/obs/perf reads them). All are
	// plain fields bumped inline on the hot path — no atomics, no
	// allocations — and belong to the engine's owning goroutine like
	// everything else here.
	scheduled uint64 // events handed out by At/AtArg
	canceled  uint64 // live events removed by Cancel
	recycled  uint64 // alloc calls satisfied from the freelist
	pendMax   int    // pending-event high-water mark (both cores)

	// pendSum is a commutative accumulator over the pending multiset:
	// scheduling adds a mix of (at, seq), retiring subtracts it. Order-
	// independent, so both cores produce the same value and DigestState
	// stays O(1) in the pending count — which matters because fine-mode
	// fingerprinting digests the engine after every event.
	pendSum uint64

	// meter, when set, receives batched event counts so another
	// goroutine can watch progress live; see Meter.
	meter        *Meter
	meterPend    uint64
	meterLastNow Time

	// postEvent, when set, runs after every executed event — the hook the
	// run-fingerprinting fine mode uses to digest per-event state and the
	// cost profiler uses to attribute elapsed sim-time. Costs one nil
	// check per event when unset; see SetPostEvent and AddPostEvent.
	postEvent PostEventHook
}

// NewEngine returns an engine on the default core with the clock at zero.
func NewEngine() *Engine { return NewEngineCore(defaultCore) }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending events. Canceled events are removed
// from the store eagerly, so they are never counted. Events of the instant
// currently executing that have not yet fired count as pending on both
// cores, even though the wheel has already detached them into its run.
func (e *Engine) Len() int {
	if w := e.wheel; w != nil {
		return w.pending + w.spillCount + w.inRun
	}
	return len(e.events)
}

// pendMix folds an event's identity into the pendSum accumulator. The
// splitmix64-style finalizer spreads (at, seq) so colliding multisets
// cancel only if they are equal.
func pendMix(at Time, seq uint64) uint64 {
	x := uint64(at)*0x9E3779B97F4A7C15 ^ seq
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// alloc hands out an event node, reusing a retired one when available.
func (e *Engine) alloc(t Time) *event {
	var ev *event
	e.scheduled++
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.recycled++
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.seq = e.seq
	e.seq++
	ev.mix = pendMix(ev.at, ev.seq)
	e.pendSum += ev.mix
	return ev
}

// retire invalidates every outstanding EventRef to ev and returns the node
// to the freelist. The callback fields are cleared so the freelist does not
// pin closures or packet arguments beyond the event's life.
func (e *Engine) retire(ev *event) {
	e.pendSum -= ev.mix
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.gen++
	ev.index = -1
	ev.slot = slotNone
	ev.next = nil
	ev.prev = nil
	e.free = append(e.free, ev) //tcnlint:hotpath freelist grows only until the event population peaks, then recycles
}

// enqueue files a freshly allocated event into the active store and
// advances the pending high-water mark. Both cores compute the mark from
// the same quantity (live pending events after the insert), so it digests
// identically across them.
func (e *Engine) enqueue(ev *event) {
	if w := e.wheel; w != nil {
		w.place(ev)
		if l := w.pending + w.spillCount + w.inRun; l > e.pendMax {
			e.pendMax = l
		}
		return
	}
	e.push(ev)
}

// eventLess orders the heap by (at, seq): time first, scheduling order
// within the same instant.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends ev and restores the heap by sifting it up.
func (e *Engine) push(ev *event) {
	e.events = append(e.events, ev) //tcnlint:hotpath heap grows to its high-water mark once, then reuses the backing array
	if len(e.events) > e.pendMax {
		e.pendMax = len(e.events)
	}
	e.siftUp(len(e.events) - 1)
}

// siftUp moves the node at index i toward the root until its parent is not
// later than it.
func (e *Engine) siftUp(i int) {
	h := e.events
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = ev
	ev.index = i
}

// siftDown moves the node at index i toward the leaves until both children
// are not earlier than it.
func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	ev := h[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && eventLess(h[r], h[l]) {
			c = r
		}
		if !eventLess(h[c], ev) {
			break
		}
		h[i] = h[c]
		h[i].index = i
		i = c
	}
	h[i] = ev
	ev.index = i
}

// popRoot removes and returns the earliest event.
func (e *Engine) popRoot() *event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.events = h[:n]
	if n > 0 {
		h[0] = last
		e.siftDown(0)
	}
	root.index = -1
	return root
}

// remove deletes the event at heap index i.
func (e *Engine) remove(i int) {
	h := e.events
	ev := h[i]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.events = h[:n]
	if i < n {
		h[i] = last
		h[i].index = i
		e.siftDown(i)
		e.siftUp(i)
	}
	ev.index = -1
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic error in a model.
func (e *Engine) At(t Time, fn func()) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc(t)
	ev.fn = fn
	e.enqueue(ev)
	return EventRef{ev, ev.gen}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// AtArg schedules fn(arg) at absolute time t. Unlike At with a closure over
// arg, the argument rides inside the event node, so callers that schedule
// per-packet work (links, host delay lines) can hold one long-lived fn and
// stay allocation-free: boxing a pointer into the arg interface does not
// allocate.
func (e *Engine) AtArg(t Time, fn func(any), arg any) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc(t)
	ev.afn = fn
	ev.arg = arg
	e.enqueue(ev)
	return EventRef{ev, ev.gen}
}

// AfterArg schedules fn(arg) to run d nanoseconds from now; see AtArg.
func (e *Engine) AfterArg(d Time, fn func(any), arg any) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.AtArg(e.now+d, fn, arg)
}

// Cancel prevents a pending event from firing by removing it from the
// store immediately (its node is recycled at once). Canceling an already-
// fired, already-canceled, or zero reference is a no-op. On the wheel core
// this is O(1) — the RTO arm/disarm churn of every ACK pays two pointer
// unlinks instead of a heap sift.
func (e *Engine) Cancel(r EventRef) {
	if r.ev == nil || r.ev.gen != r.gen {
		return
	}
	e.canceled++
	if e.wheel != nil {
		e.wheel.unqueue(r.ev)
	} else {
		e.remove(r.ev.index)
	}
	e.retire(r.ev)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// PostEventHook observes one executed event. It receives the clock (at
// the event's timestamp) and the total executed-event count, both already
// advanced past the event, so consumers need no engine accessor calls on
// the per-event path.
type PostEventHook func(now Time, executed uint64)

// SetPostEvent installs fn to run after every executed event, replacing
// any previous hook (nil uninstalls). The hook runs with the clock at the
// event's timestamp, after the event's callback and counters; it must not
// schedule, cancel, or otherwise perturb the model — it exists so
// observers that need per-event granularity (the fingerprint recorder's
// fine mode, the cost profiler's deterministic plane) can read state
// between events. Hooks are not part of DigestState: attaching one cannot
// change a run's fingerprint unless the hook itself perturbs the model.
func (e *Engine) SetPostEvent(fn PostEventHook) { e.postEvent = fn }

// AddPostEvent chains fn after any hook already installed, so independent
// per-event observers (fine-mode fingerprinting and the profiler, say)
// can coexist. Composition happens here, at attach time: the hot loop
// still pays exactly one nil check and one indirect call per event.
// Passing nil is a no-op.
func (e *Engine) AddPostEvent(fn PostEventHook) {
	if fn == nil {
		return
	}
	prev := e.postEvent
	if prev == nil {
		e.postEvent = fn
		return
	}
	e.postEvent = func(now Time, executed uint64) {
		prev(now, executed)
		fn(now, executed)
	}
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() { e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (if the queue drained earlier the clock stays at the
// last event). It returns the number of events executed during this call.
//
// Cancellation is eager (Cancel removes events from the store on the
// spot), so every event executed here is live — there is no canceled-event
// skip. Each node is retired before its callback runs: the callback may
// reuse the storage for the events it schedules, and a self-referencing
// EventRef (a timer canceling itself from its own handler) is already
// stale by the time the handler executes.
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.stopped = false
	var n uint64
	if e.wheel != nil {
		n = e.runWheel(deadline)
	} else {
		n = e.runHeap(deadline)
	}
	if deadline != MaxTime && e.now < deadline && !e.stopped {
		e.now = deadline
	}
	if e.meter != nil {
		e.flushMeter()
	}
	return n
}

// runHeap is RunUntil's heap-core loop: pop the root, fire, repeat.
func (e *Engine) runHeap(deadline Time) uint64 {
	var n uint64
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > deadline {
			break
		}
		e.popRoot()
		e.now = next.at
		fn, afn, arg := next.fn, next.afn, next.arg
		e.retire(next)
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		n++
		e.Executed++
		if e.postEvent != nil {
			e.postEvent(e.now, e.Executed)
		}
		if e.meter != nil {
			e.meterPend++
			if e.meterPend >= meterBatch {
				e.flushMeter()
			}
		}
	}
	return n
}

// NextEventTime reports the timestamp of the earliest pending event. On
// the wheel core the lookup may advance the scan cursor and cascade
// windows, which never perturbs event order or digests; call it between
// runs, not from inside a callback.
func (e *Engine) NextEventTime() (Time, bool) {
	if e.wheel != nil {
		return e.wheel.findNext(MaxTime)
	}
	if len(e.events) > 0 {
		return e.events[0].at, true
	}
	return 0, false
}

// Self-telemetry accessors; see internal/obs/perf for the layer that
// aggregates them across a campaign.

// Scheduled returns the number of events handed out by At/After/AtArg/
// AfterArg since the engine was created.
func (e *Engine) Scheduled() uint64 { return e.scheduled }

// Canceled returns the number of live events removed by Cancel.
func (e *Engine) Canceled() uint64 { return e.canceled }

// Recycled returns the number of scheduled events whose node came from
// the freelist rather than a fresh allocation. Scheduled-Recycled is the
// engine's total event allocations.
func (e *Engine) Recycled() uint64 { return e.recycled }

// PendingHighWater returns the largest number of simultaneously pending
// events observed (formerly the heap high-water mark; the wheel core
// tracks the same quantity).
func (e *Engine) PendingHighWater() int { return e.pendMax }

// Cascades returns the number of events the wheel re-placed downward
// while crossing window boundaries; 0 on the heap core.
func (e *Engine) Cascades() uint64 {
	if e.wheel != nil {
		return e.wheel.cascaded
	}
	return 0
}

// Spills returns the number of events scheduled beyond the wheel horizon
// onto the sorted spill list; 0 on the heap core.
func (e *Engine) Spills() uint64 {
	if e.wheel != nil {
		return e.wheel.spilled
	}
	return 0
}

// FreelistLen returns the number of retired event nodes currently parked
// for reuse.
func (e *Engine) FreelistLen() int { return len(e.free) }

// DigestState folds the engine's scheduling state into a run fingerprint:
// the clock, the counters, the pending multiset (via the commutative
// pendSum accumulator plus its count and high-water mark), and the
// freelist's generation counters. Every field is a function of the
// schedule/fire/cancel history alone — not of the store's internal layout
// — so the wheel and heap cores digest identically on the same history,
// two byte-identical runs digest identically, and any divergence in event
// timing or ordering shows up at the epoch it happens. The accumulator
// keeps the digest O(1) in the pending count, which fine-mode
// fingerprinting (one engine digest per event) depends on.
func (e *Engine) DigestState(h *digest.Hash) {
	h.WriteInt64(int64(e.now))
	h.WriteUint64(e.seq)
	h.WriteUint64(e.Executed)
	h.WriteUint64(e.scheduled)
	h.WriteUint64(e.canceled)
	h.WriteUint64(e.recycled)
	h.WriteInt(e.pendMax)
	h.WriteInt(e.Len())
	h.WriteUint64(e.pendSum)
	h.WriteInt(len(e.free))
	for _, ev := range e.free {
		h.WriteUint64(ev.gen)
	}
}
