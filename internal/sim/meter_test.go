package sim

import "testing"

// The meter batches locally (meterBatch events) and flushes at every
// RunUntil exit, so after any RunUntil returns — deadline reached, Stop
// mid-run, or nothing scheduled at all — the published totals must equal
// the engine's own counters exactly. These tests pin that contract on
// both event cores; the profiler's FinishEngine and the perf campaign
// both rely on it.

// meterCores runs fn once per engine core.
func meterCores(t *testing.T, fn func(t *testing.T, eng *Engine)) {
	t.Helper()
	for _, core := range []struct {
		name string
		c    Core
	}{{"wheel", CoreWheel}, {"heap", CoreHeap}} {
		t.Run(core.name, func(t *testing.T) {
			fn(t, NewEngineCore(core.c))
		})
	}
}

// checkExact asserts the meter matches the engine's truth.
func checkExact(t *testing.T, m *Meter, eng *Engine) {
	t.Helper()
	if m.Events() != eng.Executed {
		t.Fatalf("meter events %d, want executed %d", m.Events(), eng.Executed)
	}
	if m.SimNanos() != int64(eng.Now()) {
		t.Fatalf("meter sim nanos %d, want elapsed %d", m.SimNanos(), int64(eng.Now()))
	}
}

// TestMeterExactOnStopTermination drives well past one flush batch and
// stops mid-run: the exit flush must publish the partial batch and the
// sim-time up to the stopping event, with nothing lost or double-counted.
func TestMeterExactOnStopTermination(t *testing.T) {
	meterCores(t, func(t *testing.T, eng *Engine) {
		var m Meter
		eng.SetMeter(&m)
		const total = 3*meterBatch + 17
		n := 0
		var tick func()
		tick = func() {
			n++
			if n == total {
				eng.Stop()
				return
			}
			eng.After(3*Nanosecond, tick)
		}
		eng.After(0*Nanosecond, tick)
		eng.RunUntil(MaxTime)
		if eng.Executed != total {
			t.Fatalf("executed %d events, want %d", eng.Executed, total)
		}
		checkExact(t, &m, eng)
		// A later resumed run keeps the totals exact.
		eng.After(5*Nanosecond, func() {})
		eng.RunUntil(eng.Now() + 100*Nanosecond)
		checkExact(t, &m, eng)
	})
}

// TestMeterExactOnZeroEventRun pins the degenerate case: RunUntil with an
// empty schedule executes nothing but still advances the clock to the
// deadline, and that advance must reach the meter.
func TestMeterExactOnZeroEventRun(t *testing.T) {
	meterCores(t, func(t *testing.T, eng *Engine) {
		var m Meter
		eng.SetMeter(&m)
		eng.RunUntil(12345 * Nanosecond)
		if eng.Executed != 0 {
			t.Fatalf("executed %d events, want 0", eng.Executed)
		}
		checkExact(t, &m, eng)
		if m.SimNanos() != 12345 {
			t.Fatalf("meter sim nanos %d, want the 12345ns deadline advance", m.SimNanos())
		}
	})
}

// TestMeterDetachFlushesResidual pins SetMeter's handoff: detaching (or
// swapping) mid-campaign must first flush the locally batched residual to
// the old meter, and the replacement must start from a clean baseline
// rather than re-publishing progress the old meter already absorbed.
func TestMeterDetachFlushesResidual(t *testing.T) {
	meterCores(t, func(t *testing.T, eng *Engine) {
		var old Meter
		eng.SetMeter(&old)
		for i := 0; i < 10; i++ {
			eng.At(Time(i+1)*Nanosecond, func() {})
		}
		eng.RunUntil(50 * Nanosecond)
		checkExact(t, &old, eng)

		var next Meter
		eng.SetMeter(&next)
		eng.At(60*Nanosecond, func() {})
		eng.RunUntil(100 * Nanosecond)
		if old.Events() != 10 || old.SimNanos() != 50 {
			t.Fatalf("old meter moved after detach: events=%d sim=%d", old.Events(), old.SimNanos())
		}
		if next.Events() != 1 || next.SimNanos() != 50 {
			t.Fatalf("next meter events=%d sim=%d, want 1/50 (progress since the swap)", next.Events(), next.SimNanos())
		}
		eng.SetMeter(nil)
		eng.At(110*Nanosecond, func() {})
		eng.RunUntil(200 * Nanosecond)
		if next.Events() != 1 || next.SimNanos() != 50 {
			t.Fatalf("detached meter moved: events=%d sim=%d", next.Events(), next.SimNanos())
		}
	})
}
