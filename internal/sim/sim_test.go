package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"tcn/internal/testutil"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		e.At(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestEngineFIFOWithinSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100*Nanosecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of schedule order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.At(10*Nanosecond, func() {
		trace = append(trace, e.Now())
		e.After(5*Nanosecond, func() { trace = append(trace, e.Now()) })
		e.After(0, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	want := []Time{10, 10, 15}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(50*Nanosecond, func() {})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ref := e.At(10*Nanosecond, func() { fired = true })
	e.Cancel(ref)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if ref.Pending() {
		t.Fatal("canceled event still pending")
	}
	// Double cancel and cancel-after-run are no-ops.
	e.Cancel(ref)
	e.Cancel(EventRef{})
}

func TestEngineCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []int
	var refs []EventRef
	for i := 0; i < 5; i++ {
		i := i
		refs = append(refs, e.At(Time(i+1), func() { got = append(got, i) }))
	}
	e.Cancel(refs[2])
	e.Run()
	if len(got) != 4 {
		t.Fatalf("got %v, want 4 events without #2", got)
	}
	for _, v := range got {
		if v == 2 {
			t.Fatal("canceled event fired")
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {})
	n := e.RunUntil(100 * Nanosecond)
	if n != 1 {
		t.Fatalf("executed %d events, want 1", n)
	}
	if e.Now() != 100 {
		t.Fatalf("clock %v, want 100 after RunUntil", e.Now())
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10*Nanosecond, func() { fired++ })
	e.At(200*Nanosecond, func() { fired++ })
	e.RunUntil(100 * Nanosecond)
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	e.RunUntil(300 * Nanosecond)
	if fired != 2 {
		t.Fatalf("fired %d, want 2 after second run", fired)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1*Nanosecond, func() { fired++; e.Stop() })
	e.At(2*Nanosecond, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d, want 1 after Stop", fired)
	}
}

func TestEventRefAt(t *testing.T) {
	e := NewEngine()
	ref := e.At(42*Nanosecond, func() {})
	if ref.At() != 42 {
		t.Fatalf("At() = %v, want 42", ref.At())
	}
	if (EventRef{}).At() != 0 || (EventRef{}).Valid() {
		t.Fatal("zero EventRef should be invalid")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{125 * Microsecond, "125us"},
		{sim15ms(), "1.5ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func sim15ms() Time { return 1500 * Microsecond }

func TestTimeConversions(t *testing.T) {
	if !testutil.Eq((2 * Second).Seconds(), 2) {
		t.Error("Seconds conversion")
	}
	if !testutil.Eq((3 * Millisecond).Milliseconds(), 3) {
		t.Error("Milliseconds conversion")
	}
	if !testutil.Eq((7 * Microsecond).Microseconds(), 7) {
		t.Error("Microseconds conversion")
	}
}

// Property: for any batch of events with random times, execution order is
// exactly (time, insertion order).
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		type key struct {
			at  Time
			seq int
		}
		var want []key
		var got []key
		for i, d := range delays {
			i, at := i, Time(d)
			want = append(want, key{at, i})
			e.At(at, func() { got = append(got, key{e.Now(), i}) })
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].seq < want[j].seq
		})
		e.Run()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandExpPositive(t *testing.T) {
	r := NewRand(1)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		d := r.Exp(100 * Microsecond)
		if d < 1 {
			t.Fatalf("Exp returned %v < 1ns", d)
		}
		sum += float64(d)
	}
	mean := sum / n
	if mean < 0.9*float64(100*Microsecond) || mean > 1.1*float64(100*Microsecond) {
		t.Fatalf("Exp mean %.0fns, want ~100000ns", mean)
	}
}

func TestRandRange(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("Range(3,7) = %d", v)
		}
	}
	if r.Range(5, 5) != 5 || r.Range(9, 2) != 9 {
		t.Fatal("degenerate ranges")
	}
}
