package sim

import "testing"

// BenchmarkEngineScheduleFire measures the schedule+fire round trip for a
// closure-free event once the freelist is warm. This is the hot loop of
// every simulation; it must be allocation-free.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	e.At(0, fn)
	e.Run() // warm the freelist
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now(), fn)
		e.RunUntil(e.Now())
	}
}

// BenchmarkEngineScheduleFireArg measures the AtArg variant used by the
// per-packet paths (link delivery, host delay lines).
func BenchmarkEngineScheduleFireArg(b *testing.B) {
	e := NewEngine()
	fn := func(any) {}
	arg := &struct{ x int }{}
	e.AtArg(0, fn, arg)
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AtArg(e.Now(), fn, arg)
		e.RunUntil(e.Now())
	}
}

// BenchmarkEngineScheduleCancel measures the arm/disarm cycle that RTO
// timers exercise on every ACK.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	e.Cancel(e.At(Nanosecond, fn))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(e.At(Nanosecond, fn))
	}
}

// BenchmarkEngineHeapChurn keeps a deep heap and measures pop+push against
// it, exercising the inlined sift paths rather than the trivial 1-element
// case.
func BenchmarkEngineHeapChurn(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	r := NewRand(1)
	for i := 0; i < 1024; i++ {
		e.At(Time(r.Range(0, 1<<20)), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(e.events[0].at)
		e.At(e.Now()+Time(r.Range(1, 1<<20)), fn)
	}
}

// TestEngineScheduleFireAllocFree pins the zero-alloc property with
// AllocsPerRun so a regression fails tests, not just benchmarks.
func TestEngineScheduleFireAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	arg := &struct{ x int }{}
	afn := func(any) {}
	e.At(0, fn)
	e.Run()
	if n := testing.AllocsPerRun(1000, func() {
		e.At(e.Now(), fn)
		e.RunUntil(e.Now())
	}); n != 0 { //tcnlint:floatexact AllocsPerRun must be exactly zero
		t.Fatalf("At+fire allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		e.AtArg(e.Now(), afn, arg)
		e.RunUntil(e.Now())
	}); n != 0 { //tcnlint:floatexact AllocsPerRun must be exactly zero
		t.Fatalf("AtArg+fire allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		e.Cancel(e.At(Nanosecond, fn))
	}); n != 0 { //tcnlint:floatexact AllocsPerRun must be exactly zero
		t.Fatalf("At+Cancel allocates %.1f per op, want 0", n)
	}
}
