package sim

import "testing"

// BenchmarkEngineScheduleFire measures the schedule+fire round trip for a
// closure-free event once the freelist is warm. This is the hot loop of
// every simulation; it must be allocation-free.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	e.At(0, fn)
	e.Run() // warm the freelist
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now(), fn)
		e.RunUntil(e.Now())
	}
}

// BenchmarkEngineScheduleFireArg measures the AtArg variant used by the
// per-packet paths (link delivery, host delay lines).
func BenchmarkEngineScheduleFireArg(b *testing.B) {
	e := NewEngine()
	fn := func(any) {}
	arg := &struct{ x int }{}
	e.AtArg(0, fn, arg)
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AtArg(e.Now(), fn, arg)
		e.RunUntil(e.Now())
	}
}

// BenchmarkEngineScheduleCancel measures the arm/disarm cycle that RTO
// timers exercise on every ACK.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	e.Cancel(e.At(Nanosecond, fn))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(e.At(Nanosecond, fn))
	}
}

// BenchmarkEngineHeapChurn keeps a deep pending set and measures pop+push
// against it — the inlined sift paths on the heap core, slot relinks and
// cascades on the wheel — rather than the trivial 1-element case. The name
// predates the wheel and is kept so tcnbench baselines stay comparable.
func BenchmarkEngineHeapChurn(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	r := NewRand(1)
	for i := 0; i < 1024; i++ {
		e.At(Time(r.Range(0, 1<<20)), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, _ := e.NextEventTime()
		e.RunUntil(next)
		e.At(e.Now()+Time(r.Range(1, 1<<20)), fn)
	}
}

// BenchmarkWheelSchedule measures schedule+fire across the wheel's levels:
// each batch files events at horizons from nanoseconds to milliseconds
// (levels 0-2, with cascades) and then drains them.
func BenchmarkWheelSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	r := NewRand(1)
	e.At(0, fn)
	e.Run() // warm the freelist
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for i := 0; i < b.N; i += batch {
		for j := 0; j < batch; j++ {
			e.After(Time(r.Range(0, int(10*Millisecond))), fn)
		}
		e.Run()
	}
}

// BenchmarkWheelCancel measures the arm/disarm cycle at an RTO-like
// horizon (level 1 of the wheel): schedule far out, cancel immediately —
// the churn every ACK inflicts on the engine.
func BenchmarkWheelCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	e.Cancel(e.At(5*Millisecond, fn))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(e.At(5*Millisecond, fn))
	}
}

// TestEngineScheduleFireAllocFree pins the zero-alloc property with
// AllocsPerRun so a regression fails tests, not just benchmarks.
func TestEngineScheduleFireAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	arg := &struct{ x int }{}
	afn := func(any) {}
	e.At(0, fn)
	e.Run()
	if n := testing.AllocsPerRun(1000, func() {
		e.At(e.Now(), fn)
		e.RunUntil(e.Now())
	}); n != 0 { //tcnlint:floatexact AllocsPerRun must be exactly zero
		t.Fatalf("At+fire allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		e.AtArg(e.Now(), afn, arg)
		e.RunUntil(e.Now())
	}); n != 0 { //tcnlint:floatexact AllocsPerRun must be exactly zero
		t.Fatalf("AtArg+fire allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		e.Cancel(e.At(Nanosecond, fn))
	}); n != 0 { //tcnlint:floatexact AllocsPerRun must be exactly zero
		t.Fatalf("At+Cancel allocates %.1f per op, want 0", n)
	}
}
