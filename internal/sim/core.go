package sim

import "os"

// Core selects the engine's pending-event store. The wheel is the default
// production core; the heap is kept as a differential oracle so the
// equivalence fuzz test, the wheel-oracle CI job, and cross-core tcndiff
// runs can prove the wheel preserves the exact (at, seq) total order.
type Core uint8

const (
	// CoreWheel is a hierarchical timing wheel (calendar queue): O(1)
	// schedule, cancel, and fire for the short-horizon events that
	// dominate simulations, cascading overflow levels for far timers,
	// and a sorted spill list beyond the wheel horizon. See wheel.go.
	CoreWheel Core = iota
	// CoreHeap is the original binary min-heap over (at, seq), retained
	// as the differential oracle. Same observable semantics, O(log n).
	CoreHeap
)

func (c Core) String() string {
	if c == CoreHeap {
		return "heap"
	}
	return "wheel"
}

// defaultCore is what NewEngine constructs. TCN_ENGINE_CORE=heap flips a
// whole process onto the oracle (the wheel-oracle CI job runs the entire
// determinism suite that way); SetDefaultCore does the same in-process.
var defaultCore = coreFromEnv()

func coreFromEnv() Core {
	if os.Getenv("TCN_ENGINE_CORE") == "heap" {
		return CoreHeap
	}
	return CoreWheel
}

// DefaultCore reports the core NewEngine currently constructs.
func DefaultCore() Core { return defaultCore }

// SetDefaultCore changes the core used by subsequent NewEngine calls.
// Call it before any engines are built (e.g. from a flag or a test's
// setup); it must not race with concurrent engine construction.
func SetDefaultCore(c Core) { defaultCore = c }

// NewEngineCore returns an engine on the requested core with the clock at
// zero. Both cores execute events in the identical (at, seq) order and
// share the freelist, EventRef, and telemetry machinery, so their digests
// are byte-identical for the same schedule history.
func NewEngineCore(c Core) *Engine {
	if c == CoreHeap {
		return &Engine{}
	}
	return &Engine{wheel: newWheel()}
}

// Core reports which event store this engine runs on.
func (e *Engine) Core() Core {
	if e.wheel != nil {
		return CoreWheel
	}
	return CoreHeap
}
