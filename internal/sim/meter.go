package sim

import "sync/atomic"

// meterBatch is how many fired events an engine accumulates locally
// before flushing them to its Meter. Batching keeps the hot loop at one
// predictable branch and increment per event; the atomic add happens
// once per batch (and once at RunUntil exit), so live readers lag by at
// most meterBatch events.
const meterBatch = 1024

// Meter is the one deliberately shareable window into engine progress: a
// pair of atomic accumulators that many engines — each owned by its own
// sweep worker — add into in batches, and that a progress reporter on any
// other goroutine may read at any time. It carries no engine state and
// feeds nothing back into the simulation, so sharing one Meter across a
// whole campaign cannot perturb results (unlike the engine itself, whose
// single-owner rule the goshare analyzer enforces).
type Meter struct {
	events   atomic.Uint64
	simNanos atomic.Int64
}

// Events returns the total events fired by all metered engines, batched
// (lagging the truth by at most meterBatch events per running engine).
func (m *Meter) Events() uint64 { return m.events.Load() }

// SimNanos returns the total simulated time advanced by all metered
// engines, in nanoseconds, batched like Events.
func (m *Meter) SimNanos() int64 { return m.simNanos.Load() }

// SetMeter attaches m to the engine; every subsequent RunUntil flushes
// batched event counts and sim-time progress into it. Passing nil
// detaches. The meter may be shared across engines; the engine itself
// must not be.
func (e *Engine) SetMeter(m *Meter) {
	if e.meter != nil {
		e.flushMeter()
	}
	e.meter = m
	e.meterPend = 0
	e.meterLastNow = e.now
}

// flushMeter publishes the locally batched progress to the meter.
func (e *Engine) flushMeter() {
	if e.meterPend > 0 {
		e.meter.events.Add(e.meterPend)
		e.meterPend = 0
	}
	if d := e.now - e.meterLastNow; d > 0 {
		e.meter.simNanos.Add(int64(d))
		e.meterLastNow = e.now
	}
}
