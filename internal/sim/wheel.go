package sim

import "math/bits"

// The hierarchical timing wheel. A wide bottom level of 16384 one-ns slots
// and three 1024-slot upper levels:
//
//	level 0: 1 ns slots,     window ~16.4 us  (serialization, link delays, same-instant bursts)
//	level 1: ~16.4 us slots, window ~16.8 ms  (RTTs, RTO timers, sampler ticks)
//	level 2: ~16.8 ms slots, window ~17.2 s   (epoch snapshots, run phases)
//	level 3: ~17.2 s slots,  window ~4.9 h    (whole-run horizons)
//
// The bottom level is deliberately wide: most events a packet simulation
// schedules — serialization times, link latencies, ACK clocks — land within
// a few microseconds, so a 2^14-slot level 0 lets them place directly at
// their firing slot with zero cascades while the slot array (256 KB) stays
// cache-resident. Wider bottoms (2^16) eliminate a few more cascades but
// lose more to cache misses on the slot array; narrower ones (2^10) push
// the bulk of placements through 1-2 cascades. Only RTT-and-above timers (a
// small minority, and RTOs are usually canceled before they travel) pay a
// cascade.
//
// An event at absolute time t goes to the lowest level whose window,
// anchored at the scan cursor cur, contains t: level L iff
// (t XOR cur) < 2^levelTop(L), at slot (t >> levelShift(L)) & levelMask(L).
// Events beyond the level-3 window go to a doubly-linked spill list kept
// sorted by (at, seq).
//
// The cascade rule: the cursor only moves forward through findNext. When
// every slot at level 0 ahead of the cursor is empty, the cursor jumps to
// the start of the next occupied higher-level slot and that slot's events
// re-place one level (or more) down. A slot's range is exactly the window
// of the level below, so after the cascade the level invariant holds again:
// level L holds only events inside the current level-(L+1) slot's range,
// which is why a bitmap scan from the cursor can never miss an event.
//
// Level-0 slots hold events of a single instant (the tick is 1 ns). That
// makes the same-instant batch drain in runWheel safe: a detached run can
// only be extended by callbacks scheduling At(now) — which land in the slot
// with strictly larger seq and are picked up by the next findNext — never
// by events that must fire before the run's remainder.
//
// Slot lists stay seq-sorted by construction (direct placements append in
// schedule order, cascades preserve list order, and every cascade into a
// slot happens before any direct placement can target it); detachRun still
// verifies and falls back to an insertion sort, because a Stop mid-run
// requeues the remainder behind any newly scheduled same-instant events.
const (
	l0Bits     = 14
	l0Slots    = 1 << l0Bits
	l0Mask     = l0Slots - 1
	l0Words    = l0Slots / 64
	l0SumWords = l0Words / 64

	wheelBits   = 10 // bits per level above level 0
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	wheelWords  = wheelSlots / 64

	// wheelHorizon is the first instant-delta past the level-3 window;
	// events at or beyond it spill.
	wheelHorizon = uint64(1) << (l0Bits + (wheelLevels-1)*wheelBits)
)

// hiShift returns the slot-index shift of level lvl (1..3).
func hiShift(lvl int) uint { return l0Bits + uint(lvl-1)*wheelBits }

// Event location markers stored in event.slot (>= 0 is a flat slot index:
// level 0 uses [0, l0Slots), level lvl >= 1 uses
// l0Slots + (lvl-1)*wheelSlots + slot).
const (
	slotNone  = -1 // not queued: retired, executing, or heap-core
	slotSpill = -2 // on the beyond-horizon spill list
	slotRun   = -3 // detached into the current same-instant run
)

// slotList is one wheel slot: a doubly-linked list threaded through the
// event nodes themselves, so schedule, cancel, and detach are pointer
// stores with no allocation.
type slotList struct {
	head, tail *event
}

func (l *slotList) pushBack(ev *event) {
	ev.prev = l.tail
	ev.next = nil
	if l.tail != nil {
		l.tail.next = ev
	} else {
		l.head = ev
	}
	l.tail = ev
}

func (l *slotList) remove(ev *event) {
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		l.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		l.tail = ev.prev
	}
}

// runEntry snapshots an event and its generation at detach time. The
// generation makes mid-run cancellation safe: Cancel retires the node on
// the spot (it may even be reissued to a new event before the run loop
// reaches it), and the stale entry is skipped by the gen check without
// touching the node again.
type runEntry struct {
	ev  *event
	gen uint64
}

// wheel is the timing-wheel state of one engine.
type wheel struct {
	// cur is the scan cursor: monotone, always <= the earliest pending
	// event, and the anchor every placement is computed against. It only
	// advances through findNext, which cascades each window it enters.
	cur Time

	pending    int // events queued in the wheel levels
	inRun      int // live events detached into run, not yet executed
	spillCount int // events on the spill list

	spillHead, spillTail *event

	// cascaded and spilled are telemetry: events re-placed downward by a
	// cascade, and events that landed beyond the wheel horizon.
	cascaded uint64
	spilled  uint64

	count  [wheelLevels]int
	bits0  []uint64           // l0Words occupancy words for level 0
	sum0   [l0SumWords]uint64 // summary: bit w set iff bits0[w] != 0
	bitsHi [wheelLevels - 1][wheelWords]uint64
	slots  []slotList // l0Slots + (wheelLevels-1)*wheelSlots, one allocation

	run    []runEntry // same-instant drain scratch, reused across runs
	runPos int
}

func newWheel() *wheel {
	return &wheel{
		bits0: make([]uint64, l0Words),
		slots: make([]slotList, l0Slots+(wheelLevels-1)*wheelSlots),
	}
}

func (w *wheel) setBit0(idx int) {
	wd := idx >> 6
	w.bits0[wd] |= 1 << uint(idx&63)
	w.sum0[wd>>6] |= 1 << uint(wd&63)
}

func (w *wheel) clearBit0(idx int) {
	wd := idx >> 6
	w.bits0[wd] &^= 1 << uint(idx&63)
	if w.bits0[wd] == 0 {
		w.sum0[wd>>6] &^= 1 << uint(wd&63)
	}
}

func (w *wheel) setBitHi(lvl, idx int)   { w.bitsHi[lvl-1][idx>>6] |= 1 << uint(idx&63) }
func (w *wheel) clearBitHi(lvl, idx int) { w.bitsHi[lvl-1][idx>>6] &^= 1 << uint(idx&63) }

// scan0 returns the first occupied level-0 slot index >= from. The summary
// bitmap turns the level-0 word scan (up to l0Words words when the level is
// sparse) into at most l0SumWords summary probes plus one word probe.
func (w *wheel) scan0(from int) (int, bool) {
	word := from >> 6
	if v := w.bits0[word] >> uint(from&63); v != 0 {
		return from + bits.TrailingZeros64(v), true
	}
	word++
	sw := word >> 6
	if sw >= l0SumWords {
		return 0, false
	}
	v := w.sum0[sw] >> uint(word&63) << uint(word&63) // mask words < word
	for {
		if v != 0 {
			wd := sw<<6 + bits.TrailingZeros64(v)
			return wd<<6 + bits.TrailingZeros64(w.bits0[wd]), true
		}
		sw++
		if sw >= l0SumWords {
			return 0, false
		}
		v = w.sum0[sw]
	}
}

// scanHi returns the first occupied slot index >= from at level lvl (1..3).
func (w *wheel) scanHi(lvl, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	bm := &w.bitsHi[lvl-1]
	word := from >> 6
	if v := bm[word] >> uint(from&63); v != 0 {
		return from + bits.TrailingZeros64(v), true
	}
	for word++; word < wheelWords; word++ {
		if bm[word] != 0 {
			return word<<6 + bits.TrailingZeros64(bm[word]), true
		}
	}
	return 0, false
}

// place files ev into the level and slot selected by its distance from the
// cursor. Events beyond the level-3 window go to the spill list.
func (w *wheel) place(ev *event) {
	d := uint64(ev.at) ^ uint64(w.cur)
	var lvl int
	switch {
	case d < 1<<l0Bits:
		idx := int(uint64(ev.at) & l0Mask)
		w.slots[idx].pushBack(ev)
		ev.slot = int32(idx)
		w.setBit0(idx)
		w.count[0]++
		w.pending++
		return
	case d < 1<<(l0Bits+wheelBits):
		lvl = 1
	case d < 1<<(l0Bits+2*wheelBits):
		lvl = 2
	case d < 1<<(l0Bits+3*wheelBits):
		lvl = 3
	default:
		w.placeSpill(ev)
		return
	}
	idx := int(uint64(ev.at) >> hiShift(lvl) & wheelMask)
	flat := l0Slots + (lvl-1)*wheelSlots + idx
	w.slots[flat].pushBack(ev)
	ev.slot = int32(flat)
	w.setBitHi(lvl, idx)
	w.count[lvl]++
	w.pending++
}

// placeSpill inserts ev into the sorted beyond-horizon list. The scan runs
// from the tail: a spill is almost always the latest timer yet scheduled.
func (w *wheel) placeSpill(ev *event) {
	w.spilled++
	w.spillCount++
	ev.slot = slotSpill
	p := w.spillTail
	for p != nil && (p.at > ev.at || (p.at == ev.at && p.seq > ev.seq)) {
		p = p.prev
	}
	if p == nil {
		ev.prev = nil
		ev.next = w.spillHead
		if w.spillHead != nil {
			w.spillHead.prev = ev
		} else {
			w.spillTail = ev
		}
		w.spillHead = ev
	} else {
		ev.prev = p
		ev.next = p.next
		if p.next != nil {
			p.next.prev = ev
		} else {
			w.spillTail = ev
		}
		p.next = ev
	}
}

// unqueue removes a pending event from wherever it lives — wheel slot,
// spill list, or the detached run — in O(1). Used by Cancel.
func (w *wheel) unqueue(ev *event) {
	switch {
	case ev.slot == slotRun:
		w.inRun--
	case ev.slot == slotSpill:
		if ev.prev != nil {
			ev.prev.next = ev.next
		} else {
			w.spillHead = ev.next
		}
		if ev.next != nil {
			ev.next.prev = ev.prev
		} else {
			w.spillTail = ev.prev
		}
		w.spillCount--
	default:
		s := int(ev.slot)
		l := &w.slots[s]
		l.remove(ev)
		if s < l0Slots {
			if l.head == nil {
				w.clearBit0(s)
			}
			w.count[0]--
		} else {
			r := s - l0Slots
			lvl := 1 + r>>wheelBits
			if l.head == nil {
				w.clearBitHi(lvl, r&wheelMask)
			}
			w.count[lvl]--
		}
		w.pending--
	}
	ev.next, ev.prev = nil, nil
	ev.slot = slotNone
}

// findNext advances the cursor to the earliest pending instant <= deadline
// and reports it, cascading every window boundary it crosses. When the
// next event lies past the deadline the cursor does not move beyond it, so
// later placements (anchored at the cursor) stay valid.
func (w *wheel) findNext(deadline Time) (Time, bool) {
	for w.pending > 0 || w.spillCount > 0 {
		if w.count[0] > 0 {
			// The level invariant guarantees this scan finds a slot:
			// level 0 only holds events in the current window at or
			// after the cursor.
			if s, ok := w.scan0(int(uint64(w.cur) & l0Mask)); ok {
				t := Time(uint64(w.cur)&^uint64(l0Mask) | uint64(s))
				if t > deadline {
					return 0, false
				}
				w.cur = t
				return t, true
			}
		}
		if !w.climb(deadline) {
			return 0, false
		}
	}
	return 0, false
}

// climb moves the cursor to the start of the next occupied higher-level
// slot (lowest occupied level first — higher levels only hold later
// events) and cascades it down. Returns false when that jump would cross
// the deadline, leaving the cursor untouched.
func (w *wheel) climb(deadline Time) bool {
	cur := uint64(w.cur)
	for lvl := 1; lvl < wheelLevels; lvl++ {
		if w.count[lvl] == 0 {
			continue
		}
		shift := hiShift(lvl)
		s, ok := w.scanHi(lvl, int(cur>>shift&wheelMask)+1)
		if !ok {
			continue
		}
		span := uint64(1)<<(shift+wheelBits) - 1
		start := Time(cur&^span | uint64(s)<<shift)
		if start > deadline {
			return false
		}
		w.cur = start
		w.cascade(lvl, s)
		return true
	}
	if w.spillCount > 0 {
		if w.spillHead.at > deadline {
			return false
		}
		w.cur = w.spillHead.at
		w.drainSpill()
		return true
	}
	return false
}

// cascade re-places every event of one higher-level slot after the cursor
// entered its range; each lands at least one level lower (the slot's range
// is the window of the level below), never in the spill list.
func (w *wheel) cascade(lvl, s int) {
	l := &w.slots[l0Slots+(lvl-1)*wheelSlots+s]
	ev := l.head
	l.head, l.tail = nil, nil
	w.clearBitHi(lvl, s)
	k := 0
	for ev != nil {
		next := ev.next
		w.place(ev)
		ev = next
		k++
	}
	w.count[lvl] -= k
	w.pending -= k // place re-counted each event
	w.cascaded += uint64(k)
}

// drainSpill moves every spill event now inside the wheel horizon into the
// levels. Only called with the cursor at the spill head's timestamp, so at
// least the head moves.
func (w *wheel) drainSpill() {
	for ev := w.spillHead; ev != nil && uint64(ev.at)^uint64(w.cur) < wheelHorizon; ev = w.spillHead {
		w.spillHead = ev.next
		if w.spillHead != nil {
			w.spillHead.prev = nil
		} else {
			w.spillTail = nil
		}
		ev.next, ev.prev = nil, nil
		w.spillCount--
		w.place(ev)
	}
}

// detachRun moves the level-0 slot at instant t into the run scratch,
// sorted by seq. The slot list is seq-sorted by construction; the check
// catches the one exception (a Stop-requeued remainder behind newer
// same-instant events) and repairs it.
func (w *wheel) detachRun(t Time) {
	s := int(uint64(t) & l0Mask)
	l := &w.slots[s]
	sorted := true
	var lastSeq uint64
	k := 0
	for ev := l.head; ev != nil; {
		next := ev.next
		ev.next, ev.prev = nil, nil
		ev.slot = slotRun
		if k > 0 && ev.seq < lastSeq {
			sorted = false
		}
		lastSeq = ev.seq
		w.run = append(w.run, runEntry{ev, ev.gen}) //tcnlint:hotpath scratch grows to the largest same-instant run once, then is reused
		ev = next
		k++
	}
	l.head, l.tail = nil, nil
	w.clearBit0(s)
	w.count[0] -= k
	w.pending -= k
	w.inRun += k
	if !sorted {
		insertionSortRun(w.run)
	}
}

// requeueRun puts the unexecuted remainder of a run back into the wheel
// after Stop; stale (mid-run-canceled) entries are dropped.
func (w *wheel) requeueRun() {
	for ; w.runPos < len(w.run); w.runPos++ {
		ent := w.run[w.runPos]
		if ent.ev.gen != ent.gen {
			continue
		}
		w.inRun--
		w.place(ent.ev)
	}
}

// insertionSortRun sorts a same-instant run by seq. Runs are tiny and
// nearly sorted when this is ever needed, so insertion sort wins.
func insertionSortRun(run []runEntry) {
	for i := 1; i < len(run); i++ {
		e := run[i]
		j := i - 1
		for j >= 0 && run[j].ev.seq > e.ev.seq {
			run[j+1] = run[j]
			j--
		}
		run[j+1] = e
	}
}

// runWheel is RunUntil's wheel-core loop: find the next occupied instant,
// detach its whole run, and execute it in seq order. Events a callback
// schedules at the current instant land back in the slot with larger seq
// and are drained by the next findNext iteration, preserving the heap's
// exact (at, seq) total order.
func (e *Engine) runWheel(deadline Time) uint64 {
	w := e.wheel
	var n uint64
	for !e.stopped {
		t, ok := w.findNext(deadline)
		if !ok {
			break
		}
		s := int(uint64(t) & l0Mask)
		l := &w.slots[s]
		if ev := l.head; ev.next == nil {
			// Single-event instant — the overwhelmingly common case.
			// Dispatch directly, skipping the run scratch: with one
			// event there is nothing to order and nothing a mid-run
			// Cancel could target (the event retires before its
			// callback runs, so any Cancel of it is already stale).
			l.head, l.tail = nil, nil
			w.clearBit0(s)
			w.count[0]--
			w.pending--
			ev.next, ev.prev = nil, nil
			e.now = t
			fn, afn, arg := ev.fn, ev.afn, ev.arg
			e.retire(ev)
			if afn != nil {
				afn(arg)
			} else {
				fn()
			}
			n++
			e.Executed++
			if e.postEvent != nil {
				e.postEvent(e.now, e.Executed)
			}
			if e.meter != nil {
				e.meterPend++
				if e.meterPend >= meterBatch {
					e.flushMeter()
				}
			}
			continue
		}
		w.detachRun(t)
		e.now = t
		for w.runPos < len(w.run) {
			ent := w.run[w.runPos]
			w.runPos++
			ev := ent.ev
			if ev.gen != ent.gen {
				continue // canceled mid-run
			}
			w.inRun--
			fn, afn, arg := ev.fn, ev.afn, ev.arg
			e.retire(ev)
			if afn != nil {
				afn(arg)
			} else {
				fn()
			}
			n++
			e.Executed++
			if e.postEvent != nil {
				e.postEvent(e.now, e.Executed)
			}
			if e.meter != nil {
				e.meterPend++
				if e.meterPend >= meterBatch {
					e.flushMeter()
				}
			}
			if e.stopped {
				break
			}
		}
		if e.stopped {
			w.requeueRun()
		}
		w.run = w.run[:0]
		w.runPos = 0
	}
	return n
}
