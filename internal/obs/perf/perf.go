// Package perf is the simulator's self-telemetry layer: where the rest
// of internal/obs watches the simulated network, perf watches the
// simulator itself — engine event throughput, heap and freelist
// behaviour, packet-pool recycling, and per-worker sweep progress — so a
// campaign over thousands of cells reports its own speed and resource
// envelope alongside its results (ROADMAP item 2's events/sec ratchet
// needs an in-run measurement to ratchet).
//
// Design rules, in order:
//
//  1. Zero allocations on every per-cell path (Tracker callbacks,
//     ReportEngine, ReportPool) — pinned by AllocsPerRun in
//     bench_test.go, same as the PR-4/PR-5 counters.
//  2. Observation never coordinates. Everything here is atomics; no
//     lock is ever held while a worker runs simulation code, so a
//     Campaign cannot perturb byte-identical sweep output and — unlike
//     the rest of the Obs bundle — does not force a sweep serial.
//  3. No wall clock of its own. The simclock analyzer bans time.Now in
//     internal packages; the binary injects one as a Clock, and sim
//     time arrives through the shared sim.Meter.
package perf

import (
	"encoding/json"
	"sync"
	"sync/atomic"

	"tcn/internal/metrics"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// Clock returns wall time in nanoseconds (e.g. time.Now().UnixNano
// wrapped by cmd/tcnsim). Injected because internal packages may not
// touch the wall clock directly. A nil Clock disables wall-derived
// rates and ETA but keeps all counters live.
type Clock func() int64

// Campaign aggregates self-telemetry for one sweep campaign. Create one
// per tcnsim invocation, hand it to the sweep runner as a
// parallel.Tracker (it satisfies the interface structurally), and have
// each cell report its engine and pools when it finishes. All methods
// are safe for concurrent use.
type Campaign struct {
	clock Clock
	meter sim.Meter // shared live event/sim-time accumulator

	startWall  atomic.Int64
	workers    atomic.Int64
	cellsTotal atomic.Int64

	cellsClaimed atomic.Int64
	cellsDone    atomic.Int64
	busyWall     atomic.Int64 // Σ per-cell wall ns across workers

	// Engine totals, folded in by ReportEngine at cell end.
	evScheduled atomic.Uint64
	evExecuted  atomic.Uint64
	evCanceled  atomic.Uint64
	evRecycled  atomic.Uint64
	evCascaded  atomic.Uint64 // Σ wheel cascade re-placements
	evSpilled   atomic.Uint64 // Σ beyond-horizon spill placements
	pendMax     atomic.Int64  // max pending events across cells
	freelist    atomic.Int64  // Σ final freelist lengths

	// Pool totals, folded in by ReportPool at cell end.
	poolAllocs atomic.Int64
	poolReuses atomic.Int64

	slots atomic.Pointer[[]workerSlot]

	mu      sync.Mutex
	digests []*metrics.TDigest // finished per-cell small-FCT digests
}

// workerSlot is one worker's progress, all atomics so a snapshot reader
// never blocks a worker.
type workerSlot struct {
	cell      atomic.Int64 // point being run, -1 when idle
	cellStart atomic.Int64 // wall ns when the current cell was claimed
	done      atomic.Int64 // cells finished by this worker
	busy      atomic.Int64 // Σ wall ns spent inside cells
}

// NewCampaign returns a Campaign using clock for wall time (nil is
// allowed; see Clock).
func NewCampaign(clock Clock) *Campaign {
	c := &Campaign{clock: clock}
	c.startWall.Store(c.wallNow())
	return c
}

// Meter returns the campaign's shared sim.Meter; attach it to every
// cell's engine with SetMeter so live events/sec covers all workers.
func (c *Campaign) Meter() *sim.Meter { return &c.meter }

func (c *Campaign) wallNow() int64 {
	if c.clock == nil {
		return 0
	}
	return c.clock()
}

// SweepStart implements parallel.Tracker. It may be called again for a
// follow-up sweep in the same campaign; cell totals accumulate.
func (c *Campaign) SweepStart(workers, points int) {
	c.workers.Store(int64(workers))
	c.cellsTotal.Add(int64(points))
	old := c.slots.Load()
	if old == nil || len(*old) < workers {
		fresh := make([]workerSlot, workers)
		for i := range fresh {
			fresh[i].cell.Store(-1)
			if old != nil && i < len(*old) {
				fresh[i].done.Store((*old)[i].done.Load())
				fresh[i].busy.Store((*old)[i].busy.Load())
			}
		}
		c.slots.Store(&fresh)
	}
}

// CellStart implements parallel.Tracker. Zero allocations.
func (c *Campaign) CellStart(worker, point int) {
	c.cellsClaimed.Add(1)
	if s := c.slot(worker); s != nil {
		s.cell.Store(int64(point))
		s.cellStart.Store(c.wallNow())
	}
}

// CellDone implements parallel.Tracker. Zero allocations.
func (c *Campaign) CellDone(worker, point int) {
	c.cellsDone.Add(1)
	if s := c.slot(worker); s != nil {
		s.cell.Store(-1)
		s.done.Add(1)
		if start := s.cellStart.Load(); start > 0 {
			d := c.wallNow() - start
			s.busy.Add(d)
			c.busyWall.Add(d)
		}
	}
}

func (c *Campaign) slot(worker int) *workerSlot {
	sl := c.slots.Load()
	if sl == nil || worker < 0 || worker >= len(*sl) {
		return nil
	}
	return &(*sl)[worker]
}

// ReportEngine folds a finished cell's engine counters into the campaign
// totals. Call it from the goroutine that owns the engine, after its
// last RunUntil. Zero allocations.
func (c *Campaign) ReportEngine(e *sim.Engine) {
	if e == nil {
		return
	}
	c.evScheduled.Add(e.Scheduled())
	c.evExecuted.Add(e.Executed)
	c.evCanceled.Add(e.Canceled())
	c.evRecycled.Add(e.Recycled())
	c.evCascaded.Add(e.Cascades())
	c.evSpilled.Add(e.Spills())
	c.freelist.Add(int64(e.FreelistLen()))
	hw := int64(e.PendingHighWater())
	for {
		cur := c.pendMax.Load()
		if hw <= cur || c.pendMax.CompareAndSwap(cur, hw) {
			return
		}
	}
}

// ReportPool folds a pool's alloc/reuse counters into the campaign
// totals. Zero allocations.
func (c *Campaign) ReportPool(p *pkt.Pool) {
	if p == nil {
		return
	}
	c.poolAllocs.Add(p.Allocs)
	c.poolReuses.Add(p.Reuses)
}

// ReportDigest hands over a finished cell's small-flow FCT digest for
// campaign-level quantiles. The campaign takes ownership; the caller
// must not Add to it afterwards. Nil digests are ignored. This is the
// one per-cell call that may allocate (slice growth under a mutex) —
// once per cell, never per event or per flow.
func (c *Campaign) ReportDigest(d *metrics.TDigest) {
	if d == nil {
		return
	}
	c.mu.Lock()
	c.digests = append(c.digests, d)
	c.mu.Unlock()
}

// WorkerSnapshot is one worker's progress at snapshot time.
type WorkerSnapshot struct {
	Worker      int     `json:"worker"`
	Cell        int64   `json:"cell"` // -1 when idle
	CellsDone   int64   `json:"cellsDone"`
	BusySeconds float64 `json:"busySeconds"`
	Utilization float64 `json:"utilization"` // busy / campaign wall, 0..1
}

// Snapshot is a self-consistent-enough view of the campaign: each field
// is an atomic load, so totals may straddle a cell boundary, but every
// value is monotone and within one cell of the truth — fine for a
// progress line or a dashboard poll, and it never blocks a worker.
type Snapshot struct {
	WallSeconds float64 `json:"wallSeconds"`

	CellsTotal   int64 `json:"cellsTotal"`
	CellsClaimed int64 `json:"cellsClaimed"`
	CellsDone    int64 `json:"cellsDone"`
	Workers      int64 `json:"workers"`

	LiveEvents      uint64  `json:"liveEvents"`      // fired, via the shared meter
	SimSeconds      float64 `json:"simSeconds"`      // simulated time advanced
	EventsPerSecond float64 `json:"eventsPerSecond"` // wall-time rate
	SimPerWall      float64 `json:"simPerWall"`      // sim seconds per wall second

	EventsScheduled  uint64 `json:"eventsScheduled"`
	EventsExecuted   uint64 `json:"eventsExecuted"`
	EventsCanceled   uint64 `json:"eventsCanceled"`
	EventsRecycled   uint64 `json:"eventsRecycled"`
	WheelCascades    uint64 `json:"wheelCascades"`
	WheelSpills      uint64 `json:"wheelSpills"`
	PendingHighWater int64  `json:"pendingHighWater"`
	FreelistParked   int64  `json:"freelistParked"`

	PoolAllocs int64   `json:"poolAllocs"`
	PoolReuses int64   `json:"poolReuses"`
	PoolHitPct float64 `json:"poolHitPct"`

	ETASeconds float64 `json:"etaSeconds"` // 0 until one cell finishes

	Percentiles map[string]float64 `json:"fctSmallPercentilesUs,omitempty"`
}

// SnapshotNow assembles a Snapshot from the live atomics. Safe to call
// from any goroutine at any time, including mid-sweep at any worker
// count. includeDigest additionally merges the per-cell FCT digests
// (which allocates and takes the digest mutex — cheap, but /perf.json
// skips it).
func (c *Campaign) SnapshotNow(includeDigest bool) Snapshot {
	var s Snapshot
	wall := c.wallNow() - c.startWall.Load()
	if wall > 0 {
		s.WallSeconds = float64(wall) / 1e9
	}
	s.CellsTotal = c.cellsTotal.Load()
	s.CellsClaimed = c.cellsClaimed.Load()
	s.CellsDone = c.cellsDone.Load()
	s.Workers = c.workers.Load()

	s.LiveEvents = c.meter.Events()
	s.SimSeconds = float64(c.meter.SimNanos()) / 1e9
	if s.WallSeconds > 0 {
		s.EventsPerSecond = float64(s.LiveEvents) / s.WallSeconds
		s.SimPerWall = s.SimSeconds / s.WallSeconds
	}

	s.EventsScheduled = c.evScheduled.Load()
	s.EventsExecuted = c.evExecuted.Load()
	s.EventsCanceled = c.evCanceled.Load()
	s.EventsRecycled = c.evRecycled.Load()
	s.WheelCascades = c.evCascaded.Load()
	s.WheelSpills = c.evSpilled.Load()
	s.PendingHighWater = c.pendMax.Load()
	s.FreelistParked = c.freelist.Load()

	s.PoolAllocs = c.poolAllocs.Load()
	s.PoolReuses = c.poolReuses.Load()
	if tot := s.PoolAllocs + s.PoolReuses; tot > 0 {
		s.PoolHitPct = 100 * float64(s.PoolReuses) / float64(tot)
	}

	// ETA: remaining cells at the observed per-cell wall cost, spread
	// over the workers. Claimed-but-unfinished cells count as remaining.
	if done, total := s.CellsDone, s.CellsTotal; done > 0 && total > done && s.Workers > 0 {
		perCell := float64(c.busyWall.Load()) / float64(done)
		s.ETASeconds = perCell * float64(total-done) / float64(s.Workers) / 1e9
	}

	if includeDigest {
		c.mu.Lock()
		merged := metrics.MergeAll(metrics.DefaultCompression, c.digests...)
		c.mu.Unlock()
		if merged.Count() > 0 {
			s.Percentiles = map[string]float64{
				"p50": merged.Quantile(0.50) / 1e3,
				"p90": merged.Quantile(0.90) / 1e3,
				"p99": merged.Quantile(0.99) / 1e3,
			}
		}
	}
	return s
}

// WorkerSnapshots returns per-worker progress rows, ordered by worker.
func (c *Campaign) WorkerSnapshots() []WorkerSnapshot {
	sl := c.slots.Load()
	if sl == nil {
		return nil
	}
	wall := float64(c.wallNow()-c.startWall.Load()) / 1e9
	out := make([]WorkerSnapshot, len(*sl))
	for i := range *sl {
		w := &(*sl)[i]
		busy := w.busy.Load()
		// A worker mid-cell is busy since its claim even though the
		// cell hasn't folded into busy yet.
		if start := w.cellStart.Load(); w.cell.Load() >= 0 && start > 0 {
			if now := c.wallNow(); now > start {
				busy += now - start
			}
		}
		out[i] = WorkerSnapshot{
			Worker:      i,
			Cell:        w.cell.Load(),
			CellsDone:   w.done.Load(),
			BusySeconds: float64(busy) / 1e9,
		}
		if wall > 0 {
			out[i].Utilization = out[i].BusySeconds / wall
		}
	}
	return out
}

// PerfJSON renders the engine/pool view served at /perf.json.
func (c *Campaign) PerfJSON() ([]byte, error) {
	return json.MarshalIndent(c.SnapshotNow(false), "", "  ")
}

// campaignJSON is the /campaign.json document: the snapshot plus
// per-worker rows.
type campaignJSON struct {
	Snapshot
	PerWorker []WorkerSnapshot `json:"perWorker"`
}

// CampaignJSON renders the sweep-progress view served at /campaign.json,
// including per-worker rows and merged FCT digest percentiles.
func (c *Campaign) CampaignJSON() ([]byte, error) {
	doc := campaignJSON{
		Snapshot:  c.SnapshotNow(true),
		PerWorker: c.WorkerSnapshots(),
	}
	return json.MarshalIndent(doc, "", "  ")
}
