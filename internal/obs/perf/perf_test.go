package perf

import (
	"encoding/json"
	"sync"
	"testing"

	"tcn/internal/metrics"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// fakeClock is a hand-advanced wall clock: the simclock lint keeps
// time.Now out of internal packages, and a deterministic clock makes the
// rate/ETA arithmetic exactly checkable.
type fakeClock struct{ now int64 }

func (f *fakeClock) fn() Clock { return func() int64 { return f.now } }

func TestCampaignCellAccounting(t *testing.T) {
	clk := &fakeClock{now: 1e9}
	c := NewCampaign(clk.fn())
	c.SweepStart(2, 4)

	s := c.SnapshotNow(false)
	if s.Workers != 2 || s.CellsTotal != 4 || s.CellsDone != 0 {
		t.Fatalf("after SweepStart: %+v", s)
	}
	if s.ETASeconds != 0 { //tcnlint:floatexact no cell finished yet, ETA must be exactly unset
		t.Fatalf("ETA before any cell: %v", s.ETASeconds)
	}

	// Worker 0 runs cell 0 for 2 s; worker 1 runs cell 1 for 4 s,
	// overlapping. Campaign wall advances 1e9 → 6e9.
	c.CellStart(0, 0)
	c.CellStart(1, 1)
	clk.now = 3e9
	c.CellDone(0, 0)
	c.CellStart(0, 2)
	clk.now = 5e9
	c.CellDone(1, 1)
	clk.now = 6e9

	s = c.SnapshotNow(false)
	if s.CellsDone != 2 || s.CellsClaimed != 3 {
		t.Fatalf("mid-sweep: done=%d claimed=%d", s.CellsDone, s.CellsClaimed)
	}
	// busyWall = 2s + 4s = 6s over 2 done cells → 3 s/cell; 2 cells
	// remain across 2 workers → ETA 3 s.
	if s.ETASeconds != 3 { //tcnlint:floatexact exact under the fake clock
		t.Fatalf("ETA = %v, want 3", s.ETASeconds)
	}
	if s.WallSeconds != 5 { //tcnlint:floatexact exact under the fake clock
		t.Fatalf("wall = %v, want 5", s.WallSeconds)
	}

	ws := c.WorkerSnapshots()
	if len(ws) != 2 {
		t.Fatalf("worker rows: %d", len(ws))
	}
	// Worker 0: finished cell 0 (2 s busy) and has been inside cell 2
	// since t=3s → 3 s in flight → 5 s busy over 5 s wall.
	if ws[0].Cell != 2 || ws[0].CellsDone != 1 {
		t.Fatalf("worker 0 row: %+v", ws[0])
	}
	if ws[0].BusySeconds != 5 || ws[0].Utilization != 1 { //tcnlint:floatexact exact under the fake clock
		t.Fatalf("worker 0 busy/util: %+v", ws[0])
	}
	// Worker 1: one 4 s cell, idle since → utilization 0.8.
	if ws[1].Cell != -1 || ws[1].BusySeconds != 4 || ws[1].Utilization != 0.8 { //tcnlint:floatexact exact under the fake clock
		t.Fatalf("worker 1 row: %+v", ws[1])
	}
}

func TestCampaignSweepRestartCarriesTotals(t *testing.T) {
	clk := &fakeClock{now: 1}
	c := NewCampaign(clk.fn())
	c.SweepStart(1, 2)
	c.CellStart(0, 0)
	clk.now = 1e9 + 1
	c.CellDone(0, 0)

	// A follow-up sweep with more workers reallocates slots but must not
	// lose finished-cell accounting; cell totals accumulate.
	c.SweepStart(3, 5)
	s := c.SnapshotNow(false)
	if s.CellsTotal != 7 || s.CellsDone != 1 || s.Workers != 3 {
		t.Fatalf("after second SweepStart: %+v", s)
	}
	ws := c.WorkerSnapshots()
	if len(ws) != 3 || ws[0].CellsDone != 1 || ws[0].BusySeconds != 1 { //tcnlint:floatexact exact under the fake clock
		t.Fatalf("carried worker rows: %+v", ws)
	}

	// Out-of-range workers (tracker misuse) must not panic or miscount.
	c.CellStart(99, 3)
	c.CellDone(99, 3)
	c.CellDone(-1, 4)
	if got := c.SnapshotNow(false).CellsDone; got != 3 {
		t.Fatalf("done after out-of-range workers: %d", got)
	}
}

func TestCampaignEngineAndPoolTotals(t *testing.T) {
	c := NewCampaign(nil) // nil clock: counters live, rates/ETA off

	for cell := 0; cell < 3; cell++ {
		eng := sim.NewEngine()
		eng.SetMeter(c.Meter())
		var fired int
		var tick func()
		tick = func() {
			fired++
			if fired < 100 {
				eng.At(eng.Now()+10, tick)
			}
		}
		eng.At(0, tick)
		ev := eng.At(5*sim.Microsecond, func() { t.Fatal("canceled event fired") })
		eng.Cancel(ev)
		eng.RunUntil(5 * sim.Microsecond)
		fired = 0
		c.ReportEngine(eng)
	}
	c.ReportEngine(nil) // ignored

	s := c.SnapshotNow(false)
	if s.EventsExecuted != 300 {
		t.Fatalf("executed %d, want 300", s.EventsExecuted)
	}
	if s.EventsScheduled != 303 { // 100 ticks + 1 canceled per cell
		t.Fatalf("scheduled %d, want 303", s.EventsScheduled)
	}
	if s.EventsCanceled != 3 {
		t.Fatalf("canceled %d, want 3", s.EventsCanceled)
	}
	if s.PendingHighWater < 1 {
		t.Fatalf("pending high water %d", s.PendingHighWater)
	}
	if s.LiveEvents != 300 {
		t.Fatalf("meter events %d, want 300", s.LiveEvents)
	}
	if s.WallSeconds != 0 || s.EventsPerSecond != 0 || s.ETASeconds != 0 { //tcnlint:floatexact nil clock disables wall-derived rates entirely
		t.Fatalf("nil clock leaked wall-derived values: %+v", s)
	}

	pool := &pkt.Pool{Allocs: 10, Reuses: 990}
	c.ReportPool(pool)
	c.ReportPool(nil) // ignored
	s = c.SnapshotNow(false)
	if s.PoolAllocs != 10 || s.PoolReuses != 990 {
		t.Fatalf("pool totals: %+v", s)
	}
	if s.PoolHitPct != 99 { //tcnlint:floatexact 990/1000 is exact in float64
		t.Fatalf("pool hit %% = %v", s.PoolHitPct)
	}
}

func TestCampaignRates(t *testing.T) {
	clk := &fakeClock{now: 0}
	c := NewCampaign(clk.fn())
	eng := sim.NewEngine()
	eng.SetMeter(c.Meter())
	var n int
	var tick func()
	tick = func() {
		n++
		if n < 2000 {
			eng.At(eng.Now()+sim.Microsecond, tick)
		}
	}
	eng.At(0, tick)
	eng.RunUntil(4 * sim.Millisecond)

	clk.now = 2e9 // 2 wall seconds elapsed
	s := c.SnapshotNow(false)
	if s.LiveEvents != 2000 {
		t.Fatalf("live events %d", s.LiveEvents)
	}
	if s.EventsPerSecond != 1000 { //tcnlint:floatexact exact under the fake clock
		t.Fatalf("events/sec = %v, want 1000", s.EventsPerSecond)
	}
	// RunUntil advances sim time to the 4 ms deadline; over 2 s of wall.
	if want := (4e-3) / 2; s.SimPerWall != want { //tcnlint:floatexact exact under the fake clock
		t.Fatalf("sim/wall = %v, want %v", s.SimPerWall, want)
	}
}

func TestCampaignDigestPercentiles(t *testing.T) {
	c := NewCampaign(nil)
	d1 := metrics.NewTDigest(metrics.DefaultCompression)
	d2 := metrics.NewTDigest(metrics.DefaultCompression)
	for i := 1; i <= 1000; i++ {
		d1.Add(float64(i) * 1e3) // 1–1000 µs in ns
	}
	d2.Add(5000e3) // one 5 ms outlier
	c.ReportDigest(d1)
	c.ReportDigest(d2)
	c.ReportDigest(nil) // ignored

	s := c.SnapshotNow(true)
	if s.Percentiles == nil {
		t.Fatal("no percentiles with digests reported")
	}
	p50 := s.Percentiles["p50"]
	if p50 < 400 || p50 > 600 {
		t.Fatalf("p50 = %v µs, want ~500", p50)
	}
	if plain := c.SnapshotNow(false); plain.Percentiles != nil {
		t.Fatal("includeDigest=false must omit percentiles")
	}
}

func TestCampaignJSONRenders(t *testing.T) {
	clk := &fakeClock{now: 1e9}
	c := NewCampaign(clk.fn())
	c.SweepStart(2, 3)
	c.CellStart(0, 0)
	clk.now = 2e9
	c.CellDone(0, 0)

	b, err := c.PerfJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("perf.json invalid: %v", err)
	}
	for _, k := range []string{"cellsTotal", "eventsPerSecond", "poolHitPct", "etaSeconds"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("perf.json missing %q", k)
		}
	}

	b, err = c.CampaignJSON()
	if err != nil {
		t.Fatal(err)
	}
	var camp struct {
		CellsTotal int64            `json:"cellsTotal"`
		PerWorker  []map[string]any `json:"perWorker"`
	}
	if err := json.Unmarshal(b, &camp); err != nil {
		t.Fatalf("campaign.json invalid: %v", err)
	}
	if camp.CellsTotal != 3 || len(camp.PerWorker) != 2 {
		t.Fatalf("campaign.json: total=%d workers=%d", camp.CellsTotal, len(camp.PerWorker))
	}
}

// TestCampaignConcurrentSnapshot races workers against snapshot readers;
// run under -race this is the proof that observation never coordinates.
func TestCampaignConcurrentSnapshot(t *testing.T) {
	clk := &fakeClock{now: 1}
	c := NewCampaign(clk.fn())
	const workers, cells = 4, 64
	c.SweepStart(workers, cells)

	var readerWG, workerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.SnapshotNow(true)
			c.WorkerSnapshots()
			if _, err := c.CampaignJSON(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		workerWG.Add(1)
		go func(w int) {
			defer workerWG.Done()
			for p := w; p < cells; p += workers {
				c.CellStart(w, p)
				eng := sim.NewEngine()
				eng.SetMeter(c.Meter())
				eng.At(0, func() {})
				eng.RunUntil(sim.Microsecond)
				c.ReportEngine(eng)
				d := metrics.NewTDigest(40)
				d.Add(float64(p + 1))
				c.ReportDigest(d)
				c.CellDone(w, p)
			}
		}(w)
	}
	workerWG.Wait()
	close(stop)
	readerWG.Wait()

	s := c.SnapshotNow(true)
	if s.CellsDone != cells {
		t.Fatalf("done %d, want %d", s.CellsDone, cells)
	}
	if s.EventsExecuted != cells || s.LiveEvents != cells {
		t.Fatalf("events %d/%d, want %d", s.EventsExecuted, s.LiveEvents, cells)
	}
}
