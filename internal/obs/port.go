package obs

import (
	"fmt"
	"io"

	"tcn/internal/sim"
)

// QueueObs is the per-queue instrument bundle of the standard switch
// port convention: enqueue/transmit/drop byte+packet counters, a CE
// mark counter, a sojourn-time histogram (nanoseconds, recorded at
// dequeue) and an occupancy histogram (bytes in the queue, recorded
// after every admission). All fields are resolved once at attach time;
// the hot path dereferences them directly.
type QueueObs struct {
	EnqPackets, EnqBytes   *Counter
	TxPackets, TxBytes     *Counter
	DropPackets, DropBytes *Counter
	MarkPackets            *Counter
	Sojourn                *Histogram // ns, at dequeue
	Occupancy              *Histogram // bytes in queue, after enqueue
}

// PortObs bundles the per-queue instruments of one egress port (or
// qdisc) under a label. Instruments are registered in the owning
// registry as "<label>.q<i>.<metric>", so they appear in JSON
// snapshots individually and in the text view as one tc-style block.
type PortObs struct {
	Label string
	Q     []QueueObs
}

// Per-queue metric name suffixes of the port convention.
const (
	metricEnqPackets  = "enq_packets"
	metricEnqBytes    = "enq_bytes"
	metricTxPackets   = "tx_packets"
	metricTxBytes     = "tx_bytes"
	metricDropPackets = "drop_packets"
	metricDropBytes   = "drop_bytes"
	metricMarkPackets = "mark_packets"
	metricSojourn     = "sojourn_ns"
	metricOccupancy   = "occupancy_bytes"
)

// NewPortObs registers the standard per-queue instruments for a port
// with the given queue count and returns the bundle. The port also
// joins the registry's text view.
func NewPortObs(r *Registry, label string, queues int) *PortObs {
	if queues <= 0 {
		panic(fmt.Sprintf("obs: port %q needs at least one queue, got %d", label, queues))
	}
	p := &PortObs{Label: label, Q: make([]QueueObs, queues)}
	for i := range p.Q {
		prefix := fmt.Sprintf("%s.q%d.", label, i)
		p.Q[i] = QueueObs{
			EnqPackets:  r.Counter(prefix + metricEnqPackets),
			EnqBytes:    r.Counter(prefix + metricEnqBytes),
			TxPackets:   r.Counter(prefix + metricTxPackets),
			TxBytes:     r.Counter(prefix + metricTxBytes),
			DropPackets: r.Counter(prefix + metricDropPackets),
			DropBytes:   r.Counter(prefix + metricDropBytes),
			MarkPackets: r.Counter(prefix + metricMarkPackets),
			Sojourn:     r.Histogram(prefix + metricSojourn),
			Occupancy:   r.Histogram(prefix + metricOccupancy),
		}
	}
	r.ports = append(r.ports, p)
	return p
}

// Enqueue records an admitted packet: size wire bytes into queue qi,
// which now holds qbytes bytes.
func (p *PortObs) Enqueue(qi, size, qbytes int) {
	q := &p.Q[qi]
	q.EnqPackets.Inc()
	q.EnqBytes.Add(int64(size))
	q.Occupancy.Record(int64(qbytes))
}

// Drop records a packet rejected at admission.
func (p *PortObs) Drop(qi, size int) {
	q := &p.Q[qi]
	q.DropPackets.Inc()
	q.DropBytes.Add(int64(size))
}

// Transmit records a departing packet and its sojourn time; marked
// reports whether it leaves carrying CE.
func (p *PortObs) Transmit(qi, size int, sojourn sim.Time, marked bool) {
	q := &p.Q[qi]
	q.TxPackets.Inc()
	q.TxBytes.Add(int64(size))
	q.Sojourn.Record(int64(sojourn))
	if marked {
		q.MarkPackets.Inc()
	}
}

// markNames flags every instrument name owned by this bundle, so the
// generic snapshot listing does not repeat them.
func (p *PortObs) markNames(seen map[string]bool) {
	for i := range p.Q {
		prefix := fmt.Sprintf("%s.q%d.", p.Label, i)
		for _, m := range []string{
			metricEnqPackets, metricEnqBytes, metricTxPackets, metricTxBytes,
			metricDropPackets, metricDropBytes, metricMarkPackets,
			metricSojourn, metricOccupancy,
		} {
			seen[prefix+m] = true
		}
	}
}

// writeText renders the port block in the style of `tc -s qdisc show`.
func (p *PortObs) writeText(w io.Writer) error {
	var txB, txP, dropP, markP int64
	for i := range p.Q {
		q := &p.Q[i]
		txB += q.TxBytes.Value()
		txP += q.TxPackets.Value()
		dropP += q.DropPackets.Value()
		markP += q.MarkPackets.Value()
	}
	if _, err := fmt.Fprintf(w, "qdisc %s: queues %d\n", p.Label, len(p.Q)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, " Sent %d bytes %d pkt (dropped %d, marked %d)\n",
		txB, txP, dropP, markP); err != nil {
		return err
	}
	for i := range p.Q {
		q := &p.Q[i]
		if q.EnqPackets.Value() == 0 && q.DropPackets.Value() == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, " q%d: enq %d pkt %d bytes | sent %d pkt %d bytes | dropped %d | marked %d\n",
			i, q.EnqPackets.Value(), q.EnqBytes.Value(),
			q.TxPackets.Value(), q.TxBytes.Value(),
			q.DropPackets.Value(), q.MarkPackets.Value()); err != nil {
			return err
		}
		if q.Sojourn.Count() > 0 {
			if _, err := fmt.Fprintf(w, "     sojourn p50 %v p90 %v p99 %v max %v\n",
				sim.Time(q.Sojourn.Quantile(0.50)), sim.Time(q.Sojourn.Quantile(0.90)),
				sim.Time(q.Sojourn.Quantile(0.99)), sim.Time(q.Sojourn.Max())); err != nil {
				return err
			}
		}
		if q.Occupancy.Count() > 0 {
			if _, err := fmt.Fprintf(w, "     occupancy p50 %dB p90 %dB p99 %dB max %dB\n",
				q.Occupancy.Quantile(0.50), q.Occupancy.Quantile(0.90),
				q.Occupancy.Quantile(0.99), q.Occupancy.Max()); err != nil {
				return err
			}
		}
	}
	return nil
}
