package obs

import (
	"math"
	"testing"

	"tcn/internal/testutil"
)

// TestBucketBoundaries pins the log-linear layout: unit buckets below
// 2×histSubCount, then histSubCount linear sub-buckets per octave, with
// no gaps or overlaps anywhere in the int64 range.
func TestBucketBoundaries(t *testing.T) {
	// Exact region: identity mapping.
	for v := int64(0); v < 2*histSubCount; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want identity in exact region", v, got)
		}
		if lo := BucketLower(int(v)); lo != v {
			t.Fatalf("BucketLower(%d) = %d", v, lo)
		}
	}
	// Boundary continuity: every bucket's lower bound maps back to the
	// bucket, and the value just below it maps to the previous bucket.
	for i := 1; i < histBuckets; i++ {
		lo := BucketLower(i)
		if bucketIndex(lo) != i {
			t.Fatalf("BucketLower(%d)=%d maps to bucket %d", i, lo, bucketIndex(lo))
		}
		if bucketIndex(lo-1) != i-1 {
			t.Fatalf("value %d below bucket %d maps to %d, want %d", lo-1, i, bucketIndex(lo-1), i-1)
		}
	}
	// Known spot values.
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0},
		{31, 31},
		{32, 32}, // first log-linear bucket
		{63, 47}, // last sub-bucket of the first octave
		{64, 48}, // first sub-bucket of the second octave
		{math.MaxInt64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestBucketRelativeWidth checks the resolution guarantee: above the
// exact region every bucket spans at most 1/histSubCount of its lower
// bound, which bounds the quantile error.
func TestBucketRelativeWidth(t *testing.T) {
	for i := 2 * histSubCount; i < histBuckets-1; i++ {
		lo, hi := BucketLower(i), BucketLower(i+1)
		if width := hi - lo; width > lo/histSubCount {
			t.Fatalf("bucket %d spans [%d,%d): width %d > %d", i, lo, hi, width, lo/histSubCount)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	for _, v := range []int64{5, 10, 100, 1000, 1000000} {
		h.Record(v)
	}
	if h.Count() != 5 || h.Min() != 5 || h.Max() != 1000000 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if h.Sum() != 1001115 {
		t.Fatalf("sum=%d", h.Sum())
	}
	if got, want := h.Mean(), float64(1001115)/5; !testutil.Eq(got, want) {
		t.Fatalf("mean=%v want %v", got, want)
	}
	h.Record(-3) // clamps to 0
	if h.Min() != 0 {
		t.Fatalf("negative value did not clamp: min=%d", h.Min())
	}
}

// TestQuantileErrorBound records a dense value sweep and checks every
// estimated quantile against the exact order statistic: the log-linear
// layout guarantees relative error at most 1/histSubCount.
func TestQuantileErrorBound(t *testing.T) {
	h := NewHistogram()
	var values []int64
	// Mix linear and exponential spacing so both regions are exercised.
	for v := int64(0); v < 2000; v++ {
		values = append(values, v)
	}
	for v := int64(1); v < int64(1)<<40; v *= 3 {
		values = append(values, v)
	}
	for _, v := range values {
		h.Record(v)
	}
	// Exact order statistics from the sorted input (values are appended
	// in two sorted runs; sort by merging is overkill — just sort).
	sorted := append([]int64(nil), values...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0} {
		rank := int(math.Ceil(q * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		exact := sorted[rank-1]
		got := h.Quantile(q)
		tol := exact / histSubCount
		if tol < 1 {
			tol = 1
		}
		if got < exact-tol || got > exact+tol {
			t.Errorf("q=%v: estimate %d outside %d±%d", q, got, exact, tol)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram()
	h.Record(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Fatalf("single-value quantile(%v) = %d, want 42", q, got)
		}
	}
}

func TestBucketsIteration(t *testing.T) {
	h := NewHistogram()
	h.Record(3)
	h.Record(3)
	h.Record(100)
	var lowers, counts []int64
	h.Buckets(func(lo, n int64) { lowers = append(lowers, lo); counts = append(counts, n) })
	if len(lowers) != 2 || lowers[0] != 3 || counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("buckets: lowers=%v counts=%v", lowers, counts)
	}
	if lowers[1] > 100 || BucketLower(bucketIndex(100)+1) <= 100 {
		t.Fatalf("bucket for 100 misplaced: lower=%d", lowers[1])
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 7919 % 1000000)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := &Counter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1500)
	}
}
