package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// CounterSnap is one counter's snapshot entry.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge's snapshot entry.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistSnap is one histogram's snapshot entry. Buckets holds only
// non-empty buckets as [inclusive lower bound, count] pairs.
type HistSnap struct {
	Name    string     `json:"name"`
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Min     int64      `json:"min"`
	Max     int64      `json:"max"`
	P50     int64      `json:"p50"`
	P90     int64      `json:"p90"`
	P99     int64      `json:"p99"`
	Buckets [][2]int64 `json:"buckets"`
}

// Snapshot is a point-in-time, deterministically ordered view of a
// registry: every slice is sorted by instrument name, so rendering the
// same simulation state always produces identical bytes.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`

	ports []*PortObs // carried for the text view; not serialized
}

// Snapshot captures the current state of every instrument. Slices are
// non-nil even when empty, so the JSON rendering is always [] rather
// than null.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make([]CounterSnap, 0, len(r.counters)),
		Gauges:     make([]GaugeSnap, 0, len(r.gauges)),
		Histograms: make([]HistSnap, 0, len(r.histograms)),
	}
	for _, n := range sortedNames(r.counters) {
		s.Counters = append(s.Counters, CounterSnap{Name: n, Value: r.counters[n].Value()})
	}
	for _, n := range sortedNames(r.gauges) {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: n, Value: r.gauges[n].Value()})
	}
	for _, n := range sortedNames(r.histograms) {
		h := r.histograms[n]
		hs := HistSnap{
			Name:  n,
			Count: h.Count(),
			Sum:   h.Sum(),
			Min:   h.Min(),
			Max:   h.Max(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
		h.Buckets(func(lower, count int64) {
			hs.Buckets = append(hs.Buckets, [2]int64{lower, count})
		})
		s.Histograms = append(s.Histograms, hs)
	}
	s.ports = r.ports
	return s
}

// WriteJSON renders the snapshot as indented JSON. The output is
// byte-identical for identical registry states.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot in the style of `tc -s qdisc show`:
// one block per registered port bundle, followed by a generic listing
// of any instruments outside the port convention.
func (s Snapshot) WriteText(w io.Writer) error {
	seen := map[string]bool{}
	for _, p := range s.ports {
		if err := p.writeText(w); err != nil {
			return err
		}
		p.markNames(seen)
	}
	return s.writeLoose(w, seen)
}

// writeLoose lists instruments not claimed by a port bundle.
func (s Snapshot) writeLoose(w io.Writer, seen map[string]bool) error {
	wrote := false
	header := func() error {
		if !wrote {
			wrote = true
			_, err := fmt.Fprintln(w, "other instruments:")
			return err
		}
		return nil
	}
	for _, c := range s.Counters {
		if seen[c.Name] {
			continue
		}
		if err := header(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, " counter %s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if seen[g.Name] {
			continue
		}
		if err := header(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, " gauge %s %g\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if seen[h.Name] {
			continue
		}
		if err := header(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, " histogram %s count %d min %d p50 %d p90 %d p99 %d max %d\n",
			h.Name, h.Count, h.Min, h.P50, h.P90, h.P99, h.Max); err != nil {
			return err
		}
	}
	return nil
}
