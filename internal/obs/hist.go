package obs

import (
	"math"
	"math/bits"
)

// Histogram is a log-linear (HDR-style) histogram over non-negative
// int64 values: sojourn times in nanoseconds, occupancies in bytes.
//
// Bucketing: values below 2×histSubCount fall into unit-width buckets
// (exact); above that, every power-of-two range [2^e, 2^(e+1)) is split
// into histSubCount linear sub-buckets. With histSubCount = 16 the
// relative quantile error is bounded by half a bucket width: 1/32 of
// the value, comfortably inside the 1/16 bound the tests assert.
//
// The bucket array is a fixed-size value field, so Record never
// allocates and the whole struct is cache-friendly.
type Histogram struct {
	counts [histBuckets]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

const (
	// histSubBits sets the linear resolution inside each octave.
	histSubBits  = 4
	histSubCount = 1 << histSubBits // sub-buckets per octave

	// histMaxExp is the largest value exponent an int64 can carry.
	histMaxExp = 62

	// histBuckets covers [0, 2^63): the exact region plus
	// (histMaxExp - histSubBits) octaves of histSubCount buckets each.
	histBuckets = 2*histSubCount + (histMaxExp-histSubBits)*histSubCount
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: -1}
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 2*histSubCount {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // >= histSubBits+1
	sub := int(v>>uint(e-histSubBits)) - histSubCount
	return 2*histSubCount + (e-histSubBits-1)*histSubCount + sub
}

// BucketLower returns the smallest value that maps to bucket i.
func BucketLower(i int) int64 {
	if i < 2*histSubCount {
		return int64(i)
	}
	i -= 2 * histSubCount
	e := histSubBits + 1 + i/histSubCount
	sub := i % histSubCount
	return int64(histSubCount+sub) << uint(e-histSubBits)
}

// bucketMid returns the midpoint of bucket i, the value reported for
// quantiles falling inside it.
func bucketMid(i int) int64 {
	lo := BucketLower(i)
	if i+1 >= histBuckets {
		return lo
	}
	hi := BucketLower(i + 1) // exclusive upper bound
	return lo + (hi-lo-1)/2
}

// Record adds one observation. Negative values clamp to zero (they can
// only arise from arithmetic bugs upstream; the histogram stays total).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded value, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.min < 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 when empty.
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean of recorded values, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile estimates the q-th quantile (q in [0, 1]) as the midpoint of
// the bucket holding the ceil(q·count)-th observation, clamped to the
// recorded min/max so estimates never leave the observed range. Returns
// 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	rank := int64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Buckets invokes fn for every non-empty bucket in ascending value
// order, passing the bucket's inclusive lower bound and its count.
func (h *Histogram) Buckets(fn func(lower, count int64)) {
	for i := 0; i < histBuckets; i++ {
		if h.counts[i] > 0 {
			fn(BucketLower(i), h.counts[i])
		}
	}
}

// Cumulative invokes fn for every non-empty bucket in ascending value
// order, passing the bucket's inclusive upper bound and the cumulative
// count of observations at or below it — the shape Prometheus histogram
// exposition ("le" buckets) wants. The final cumulative value equals
// Count(); the caller adds the +Inf bucket itself.
func (h *Histogram) Cumulative(fn func(upper, cum int64)) {
	var cum int64
	for i := 0; i < histBuckets; i++ {
		if h.counts[i] == 0 {
			continue
		}
		cum += h.counts[i]
		upper := int64(math.MaxInt64)
		if i+1 < histBuckets {
			upper = BucketLower(i+1) - 1
		}
		fn(upper, cum)
	}
}
