// Package obs is the unified switch-statistics layer: a stats registry
// with typed instruments — monotonic counters, gauges, and log-linear
// (HDR-style) histograms — that every pipeline stage (fabric ports,
// qdiscs, markers) records into.
//
// Design constraints, in order:
//
//  1. Zero allocation on the hot path. Instruments are resolved by name
//     once at attach time; Record/Add/Set afterwards touch only
//     preallocated fixed-size state. Simulations are single-goroutine
//     (the engine serializes all events), so instruments are plain
//     unsynchronized memory.
//  2. Deterministic snapshots. Snapshot() orders every instrument by
//     name, so identical seeds produce byte-identical JSON — the
//     property the determinism tests pin.
//  3. One registry per experiment run. Names are dot-separated paths
//     ("fig1.TCN.n16.sw.p2.q0.tx_packets"); the per-port naming
//     convention lives in PortObs so the tc -s qdisc–style text view
//     can group related counters.
package obs

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing int64 instrument.
type Counter struct {
	v int64
}

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a last-value-wins float64 instrument for internal state that
// rises and falls (smoothed rate estimates, CoDel state counts).
type Gauge struct {
	v   float64
	set bool
}

// Set records the current value.
func (g *Gauge) Set(v float64) { g.v, g.set = v, true }

// Value returns the last value set (zero if never set).
func (g *Gauge) Value() float64 { return g.v }

// kind tags a registered instrument for collision checks.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds every instrument of one experiment run, addressed by
// name. Lookup happens at attach time only; the returned pointers are
// what the hot path uses.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	kinds      map[string]kind
	ports      []*PortObs // registered port bundles, for the text view
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		kinds:      map[string]kind{},
	}
}

// checkKind panics when a name is reused with a different instrument
// type — silent aliasing would corrupt both series.
func (r *Registry) checkKind(name string, k kind) {
	if prev, ok := r.kinds[name]; ok && prev != k {
		panic(fmt.Sprintf("obs: %q already registered as %s, requested as %s", name, prev, k))
	}
	r.kinds[name] = k
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.checkKind(name, kindCounter)
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.checkKind(name, kindGauge)
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.checkKind(name, kindHistogram)
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// WalkCounters invokes fn for every registered counter in name order.
// The ordering is deterministic, so exports built on the walk produce
// identical bytes for identical registry states.
func (r *Registry) WalkCounters(fn func(name string, c *Counter)) {
	for _, n := range sortedNames(r.counters) {
		fn(n, r.counters[n])
	}
}

// WalkGauges invokes fn for every registered gauge in name order.
func (r *Registry) WalkGauges(fn func(name string, g *Gauge)) {
	for _, n := range sortedNames(r.gauges) {
		fn(n, r.gauges[n])
	}
}

// WalkHistograms invokes fn for every registered histogram in name order.
func (r *Registry) WalkHistograms(fn func(name string, h *Histogram)) {
	for _, n := range sortedNames(r.histograms) {
		fn(n, r.histograms[n])
	}
}

// sortedNames returns the keys of a map in lexical order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	//tcnlint:ordered keys are sorted before return
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
