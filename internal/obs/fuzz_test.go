package obs

import "testing"

// FuzzBucketMapping drives the log-linear bucket mapping with arbitrary
// values and checks the properties every consumer relies on: the index
// is always in range, BucketLower inverts bucketIndex (the value falls
// inside [lower(i), lower(i+1))), and the mapping is monotone, so
// quantile scans walk buckets in value order.
func FuzzBucketMapping(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(31))
	f.Add(int64(32))
	f.Add(int64(1_000_000))
	f.Add(int64(1) << 62)
	f.Fuzz(func(t *testing.T, v int64) {
		if v < 0 {
			v = 0 // Record clamps negatives; the mapping is defined on [0, 2^63)
		}
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of [0, %d)", v, i, histBuckets)
		}
		if lo := BucketLower(i); lo > v {
			t.Fatalf("BucketLower(%d) = %d > value %d", i, lo, v)
		}
		if i+1 < histBuckets {
			if hi := BucketLower(i + 1); v >= hi {
				t.Fatalf("value %d >= next bucket lower %d (bucket %d)", v, hi, i)
			}
		}
		if v > 0 {
			if j := bucketIndex(v - 1); j > i {
				t.Fatalf("bucketIndex not monotone: f(%d)=%d > f(%d)=%d", v-1, j, v, i)
			}
		}
		if v < 1<<62 {
			if j := bucketIndex(v + 1); j < i {
				t.Fatalf("bucketIndex not monotone: f(%d)=%d < f(%d)=%d", v+1, j, v, i)
			}
		}
	})
}

// FuzzHistogramRecord checks the aggregate counters against arbitrary
// observation sequences: count/sum/min/max must agree with a direct
// fold over the inputs (after the documented clamp of negatives to 0).
func FuzzHistogramRecord(f *testing.F) {
	f.Add(int64(5), int64(-3), int64(1<<40))
	f.Fuzz(func(t *testing.T, a, b, c int64) {
		h := NewHistogram()
		var count, sum int64
		min, max := int64(-1), int64(0)
		for _, v := range []int64{a, b, c} {
			h.Record(v)
			if v < 0 {
				v = 0
			}
			count++
			sum += v
			if min < 0 || v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if h.Count() != count || h.Sum() != sum || h.Min() != min || h.Max() != max {
			t.Fatalf("count/sum/min/max = %d/%d/%d/%d, want %d/%d/%d/%d",
				h.Count(), h.Sum(), h.Min(), h.Max(), count, sum, min, max)
		}
	})
}
