package prof

import (
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// This file is a stdlib-only encoder for the pprof profile.proto wire
// format (github.com/google/pprof/proto/profile.proto), so `go tool pprof
// -top/-flamegraph http=...` works directly on simulator profiles without
// any third-party dependency. Only the subset pprof needs is emitted:
// sample types, samples, locations, functions, the string table, and
// duration. Protobuf scalars are varints; messages and packed repeated
// fields are length-delimited — both trivial to write by hand.

// protobuf wire types.
const (
	wireVarint = 0
	wireBytes  = 2
)

// pbuf is a minimal protobuf writer: appends to one byte slice.
type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) tag(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

// uintField emits field=v, skipping the zero default.
func (p *pbuf) uintField(field int, v uint64) {
	if v == 0 {
		return
	}
	p.tag(field, wireVarint)
	p.varint(v)
}

// intField emits field=v as a plain (non-zigzag) varint, matching
// profile.proto's int64 fields.
func (p *pbuf) intField(field int, v int64) { p.uintField(field, uint64(v)) }

// bytesField emits a length-delimited field (submessage, string, or
// packed repeated scalars).
func (p *pbuf) bytesField(field int, data []byte) {
	p.tag(field, wireBytes)
	p.varint(uint64(len(data)))
	p.b = append(p.b, data...)
}

func (p *pbuf) stringField(field int, s string) {
	p.tag(field, wireBytes)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// packed emits vs as one packed repeated varint field.
func (p *pbuf) packed(field int, vs []uint64) {
	var inner pbuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

// profile.proto field numbers (message Profile).
const (
	fieldSampleType        = 1
	fieldSample            = 2
	fieldLocation          = 4
	fieldFunction          = 5
	fieldStringTable       = 6
	fieldDurationNanos     = 10
	fieldPeriodType        = 11
	fieldPeriod            = 12
	fieldDefaultSampleType = 14
)

// Submessage field numbers.
const (
	vtType           = 1 // ValueType.type (string index)
	vtUnit           = 2 // ValueType.unit
	sampleLocationID = 1
	sampleValue      = 2
	locID            = 1
	locLine          = 4
	lineFunctionID   = 1
	fnID             = 1
	fnName           = 2
	fnSystemName     = 3
)

// WritePprof writes the profile in gzip-compressed profile.proto form.
// Sample types are events/count, sim_time/nanoseconds, and
// wall_time/nanoseconds (zero unless the telemetry plane is on);
// sim_time is the default. One sample is emitted per scope-tree node
// carrying any value, with its full stack; one function and location per
// interned frame. Everything is keyed off profiler state that is a
// deterministic function of the event history, and gzip is invoked with a
// zero header, so two byte-identical runs export byte-identical profiles
// (wall plane off).
func (p *Profiler) WritePprof(w io.Writer) error {
	// String table: index 0 must be "".
	strs := []string{""}
	strIdx := make(map[string]int64, len(p.frames)+8)
	str := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strs = append(strs, s)
		strIdx[s] = i
		return i
	}

	var out pbuf

	// sample_type: [events/count, sim_time/nanoseconds, wall_time/nanoseconds]
	valueType := func(typ, unit string) []byte {
		var vt pbuf
		vt.intField(vtType, str(typ))
		vt.intField(vtUnit, str(unit))
		return vt.b
	}
	stEvents := valueType("events", "count")
	stSim := valueType("sim_time", "nanoseconds")
	stWall := valueType("wall_time", "nanoseconds")
	out.bytesField(fieldSampleType, stEvents)
	out.bytesField(fieldSampleType, stSim)
	out.bytesField(fieldSampleType, stWall)

	// One function + location per frame; ids are frame index + 1 (protobuf
	// ids must be nonzero).
	frameStr := make([]int64, len(p.frames))
	for i, name := range p.frames {
		frameStr[i] = str(name)
	}

	// Samples: every node with any attributed value, stack leaf-first as
	// location ids. Node order (creation order) keeps the encoding
	// deterministic.
	var stack []int32
	var locs []uint64
	_, totalSim := p.Totals()
	for i := range p.nodes {
		n := &p.nodes[i]
		if n.events == 0 && n.simNs == 0 && n.wallNs == 0 {
			continue
		}
		stack = p.stackOf(stack[:0], int32(i))
		locs = locs[:0]
		for j := len(stack) - 1; j >= 0; j-- { // leaf first
			locs = append(locs, uint64(stack[j])+1)
		}
		var smp pbuf
		smp.packed(sampleLocationID, locs)
		var vals pbuf
		vals.varint(n.events)
		vals.varint(uint64(n.simNs))
		vals.varint(uint64(n.wallNs))
		smp.bytesField(sampleValue, vals.b)
		out.bytesField(fieldSample, smp.b)
	}

	for i := range p.frames {
		var loc pbuf
		loc.uintField(locID, uint64(i)+1)
		var line pbuf
		line.uintField(lineFunctionID, uint64(i)+1)
		loc.bytesField(locLine, line.b)
		out.bytesField(fieldLocation, loc.b)
	}
	for i := range p.frames {
		var fn pbuf
		fn.uintField(fnID, uint64(i)+1)
		fn.intField(fnName, frameStr[i])
		fn.intField(fnSystemName, frameStr[i])
		out.bytesField(fieldFunction, fn.b)
	}

	out.intField(fieldDurationNanos, totalSim)
	periodType := valueType("sim_time", "nanoseconds")
	out.bytesField(fieldPeriodType, periodType)
	out.intField(fieldPeriod, 1)
	out.intField(fieldDefaultSampleType, str("sim_time"))

	// String table entries go last in this writer but field order in a
	// protobuf message is free; pprof reads them regardless.
	for _, s := range strs {
		out.stringField(fieldStringTable, s)
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		return err
	}
	return gz.Close()
}

// WriteFolded writes the profile as folded stacks, one line per scope-
// tree node: semicolon-joined frames root-first, a space, and the node's
// value — wall self-time in nanoseconds when the telemetry plane is on,
// attributed event count otherwise (the deterministic choice, so two
// identical runs fold identically and tcndiff's profile report diffs
// clean). Lines are sorted lexically for stable output.
func (p *Profiler) WriteFolded(w io.Writer) error {
	var lines []string
	var stack []int32
	for i := range p.nodes {
		n := &p.nodes[i]
		var v int64
		if p.wall != nil {
			v = n.wallNs
		} else {
			v = int64(n.events)
		}
		if v == 0 {
			continue
		}
		stack = p.stackOf(stack[:0], int32(i))
		line := ""
		for j, f := range stack {
			if j > 0 {
				line += ";"
			}
			line += p.frames[f]
		}
		lines = append(lines, fmt.Sprintf("%s %d", line, v))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
