package prof

import (
	"bytes"
	"strings"
	"testing"

	"tcn/internal/digest"
	"tcn/internal/sim"
)

// digestOf folds the deterministic plane into one comparable value.
func digestOf(p *Profiler) uint64 {
	h := digest.NewHash(0)
	p.DigestState(&h)
	return h.Sum64()
}

// foldedOf renders the folded export as a string.
func foldedOf(t *testing.T, p *Profiler) string {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatalf("WriteFolded: %v", err)
	}
	return buf.String()
}

// TestSimTimeTotalsPartitionElapsed pins the acceptance contract: after
// FinishEngine, the per-node sim-time totals sum exactly to the engine's
// elapsed sim-time, and the event totals to the executed count —
// including the tail the clock advances past the last event.
func TestSimTimeTotalsPartitionElapsed(t *testing.T) {
	p := New(Config{})
	eng := sim.NewEngine()
	p.AttachEngine(eng)
	a := p.NewScope("port:a")
	b := p.NewScope("sched:b")

	eng.At(10*sim.Nanosecond, func() { a.Enter(); p.Exit() })
	eng.At(25*sim.Nanosecond, func() { a.Enter(); b.Enter(); p.Exit(); p.Exit() })
	eng.At(40*sim.Nanosecond, func() {}) // unscoped: engine-owned
	eng.RunUntil(100 * sim.Nanosecond)   // deadline past the last event: 60 ns tail
	p.FinishEngine(eng)

	events, simNs := p.Totals()
	if events != eng.Executed {
		t.Fatalf("event total %d, want executed count %d", events, eng.Executed)
	}
	if simNs != int64(eng.Now()) {
		t.Fatalf("sim-time total %d, want elapsed %d", simNs, int64(eng.Now()))
	}
	// FinishEngine is idempotent: a second call must not double the tail.
	p.FinishEngine(eng)
	if _, again := p.Totals(); again != simNs {
		t.Fatalf("FinishEngine not idempotent: %d then %d", simNs, again)
	}
}

// TestOwnerIsDeepestScope pins the attribution rule: an event belongs to
// the deepest scope it reached, ties going to the first reached.
func TestOwnerIsDeepestScope(t *testing.T) {
	p := New(Config{})
	eng := sim.NewEngine()
	p.AttachEngine(eng)
	a := p.NewScope("a")
	b := p.NewScope("b")
	c := p.NewScope("c")

	// Nested: deepest node (b under a) owns the event even though the
	// stack unwound before the event ended.
	eng.At(10*sim.Nanosecond, func() { a.Enter(); b.Enter(); p.Exit(); p.Exit() })
	// Tie at depth 1: a entered before c, so a owns it.
	eng.At(20*sim.Nanosecond, func() { a.Enter(); p.Exit(); c.Enter(); p.Exit() })
	eng.RunUntil(20 * sim.Nanosecond)
	p.FinishEngine(eng)

	folded := foldedOf(t, p)
	want := "engine;a 1\nengine;a;b 1\n"
	if folded != want {
		t.Fatalf("folded output:\n%s\nwant:\n%s", folded, want)
	}
}

// TestStrayExitStaysAtRoot pins the self-healing root: an unbalanced Exit
// neither panics nor corrupts later attribution.
func TestStrayExitStaysAtRoot(t *testing.T) {
	p := New(Config{})
	eng := sim.NewEngine()
	p.AttachEngine(eng)
	a := p.NewScope("a")
	eng.At(5*sim.Nanosecond, func() { p.Exit(); p.Exit(); a.Enter(); p.Exit() })
	eng.RunUntil(5 * sim.Nanosecond)
	p.FinishEngine(eng)
	if folded := foldedOf(t, p); folded != "engine;a 1\n" {
		t.Fatalf("folded output after stray exits:\n%s", folded)
	}
}

// miniRun drives a fixed little simulation through a profiler and returns
// it. Identical calls must produce identical deterministic planes.
func miniRun(p *Profiler) *Profiler {
	eng := sim.NewEngine()
	p.AttachEngine(eng)
	port := p.NewScope("port:x")
	sch := p.NewScope("sched:y")
	var tick func()
	n := 0
	tick = func() {
		port.Enter()
		if n%2 == 0 {
			sch.Enter()
			p.Exit()
		}
		p.Exit()
		n++
		if n < 64 {
			eng.After(7*sim.Nanosecond, tick)
		}
	}
	eng.After(0*sim.Nanosecond, tick)
	eng.RunUntil(1000 * sim.Nanosecond)
	p.FinishEngine(eng)
	return p
}

// TestDigestDeterministicAndWallExcluded runs the same simulation twice —
// once per plane configuration — and requires identical digests: the
// deterministic plane is a pure function of the event history, and wall
// self-time never reaches the digest even when sampled.
func TestDigestDeterministicAndWallExcluded(t *testing.T) {
	bare1 := miniRun(New(Config{}))
	bare2 := miniRun(New(Config{}))
	if digestOf(bare1) != digestOf(bare2) {
		t.Fatal("two identical bare runs digest differently")
	}
	// Two different (fake, monotone) wall clocks: wall totals differ,
	// digests must not.
	w1, w2 := int64(0), int64(1000)
	wall1 := miniRun(New(Config{Wall: func() int64 { w1 += 3; return w1 }}))
	wall2 := miniRun(New(Config{Wall: func() int64 { w2 += 17; return w2 }}))
	if !wall1.WallEnabled() {
		t.Fatal("WallEnabled false with a wall clock configured")
	}
	if digestOf(wall1) != digestOf(bare1) || digestOf(wall2) != digestOf(bare1) {
		t.Fatal("telemetry plane leaked into the deterministic digest")
	}
	// The folded export switches to wall values under the telemetry plane.
	if folded := foldedOf(t, wall1); !strings.Contains(folded, "engine ") {
		t.Fatalf("wall folded output missing engine self-time:\n%s", folded)
	}
}

// TestProfiledEngineDigestsLikeBare is the unit-level half of the CI
// fingerprint check: attaching the profiler must not change the engine's
// own digest, because attribution never schedules or cancels events.
func TestProfiledEngineDigestsLikeBare(t *testing.T) {
	run := func(p *Profiler) uint64 {
		eng := sim.NewEngine()
		var sc *Scope
		if p != nil {
			p.AttachEngine(eng)
			sc = p.NewScope("s")
		}
		var tick func()
		n := 0
		tick = func() {
			if sc != nil {
				sc.Enter()
				p.Exit()
			}
			n++
			if n < 32 {
				eng.After(13*sim.Nanosecond, tick)
			}
		}
		eng.After(0*sim.Nanosecond, tick)
		eng.RunUntil(500 * sim.Nanosecond)
		h := digest.NewHash(0)
		eng.DigestState(&h)
		return h.Sum64()
	}
	if run(nil) != run(New(Config{})) {
		t.Fatal("profiled engine digests differently from bare engine")
	}
}

// TestEnterExitZeroAlloc pins the hot path: once the scope tree is warm,
// Enter/Exit and the post-event hook allocate nothing.
func TestEnterExitZeroAlloc(t *testing.T) {
	p := New(Config{})
	eng := sim.NewEngine()
	p.AttachEngine(eng)
	a := p.NewScope("a")
	b := p.NewScope("b")
	// Warm the tree and the inline caches.
	a.Enter()
	b.Enter()
	p.Exit()
	p.Exit()
	if allocs := testing.AllocsPerRun(1000, func() {
		a.Enter()
		b.Enter()
		p.Exit()
		p.Exit()
	}); allocs != 0 { //tcnlint:floatexact zero-alloc assertion, exact by definition
		t.Fatalf("Enter/Exit allocates %.1f per run, want 0", allocs)
	}
}
