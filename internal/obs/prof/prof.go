// Package prof implements the sim-structured cost profiler: it answers
// "where does a run's cost go?" by attributing executed events, elapsed
// sim-time, and (optionally) wall-clock self-time to a stack of simulator
// components — engine → port → qdisc stage → scheduler → marker →
// transport — keyed by the same labels the ledger and digest layers use.
//
// The profiler has two planes with different determinism contracts:
//
//   - The deterministic plane counts events and sim-time per scope tree
//     node. It is driven by the engine's post-event hook plus Enter/Exit
//     calls in the instrumented components, never schedules or cancels
//     anything, and never reads wall time — so a profiled run executes
//     the exact same event sequence as a bare run and produces a
//     byte-identical fingerprint (the tcndiff bar the flight recorder met
//     in PR 3). Its output is itself digestable via DigestState.
//
//   - The telemetry plane (enabled by Config.Wall) additionally samples a
//     wall clock at scope transitions and accumulates per-node wall
//     self-time. Like sim.Meter, it is observe-only: wall values land in
//     profiler-private counters and feed nothing back into the model, so
//     determinism of the simulation is preserved even though the sampled
//     numbers themselves vary run to run. The walltaint analyzer knows
//     prof.Clock as a wall-time source and this package as a sanctioned
//     telemetry destination.
//
// Exports: WritePprof emits the gzip-compressed pprof profile.proto
// encoding (stdlib-only varint encoder, pprof.go) so `go tool pprof
// -top/-flamegraph` reads simulator profiles directly; WriteFolded emits
// folded-stack text for flamegraph tooling and tcndiff's differential
// profile report.
//
// A Profiler, like an Engine, belongs to one goroutine: every counter is
// a plain field. experiments.Obs counts an attached Profiler toward
// Active(), which clamps sweeps to serial execution.
package prof

import (
	"tcn/internal/digest"
	"tcn/internal/sim"
)

// Clock is the wall-clock source the telemetry plane samples, injected by
// the binary (the simclock lint rule bans the time package under
// internal/, and the profiler itself must stay buildable in deterministic-
// only mode). Wall values observed through it are telemetry: they may
// never reach simulator state, only profiler counters.
type Clock func() int64

// Config assembles a Profiler.
type Config struct {
	// Wall, when non-nil, enables the telemetry plane: per-scope wall
	// self-time sampled at scope transitions. Nil keeps the profiler
	// purely deterministic.
	Wall Clock
}

// node is one scope-tree node: a distinct (parent, frame) pair reached at
// least once. Node 0 is the root, frame "engine"; events that fire without
// entering any scope (engine-internal timers, host delay lines) are
// attributed to it.
type node struct {
	parent int32
	frame  int32
	depth  int32
	enters uint64 // scope activations (tree shape / call counts)
	events uint64 // executed events owned by this node
	simNs  int64  // sim-time owned by this node's events
	wallNs int64  // wall self-time (telemetry plane only)
}

// Scope is an interned frame plus a two-way inline cache from parent node
// to child node. Components create scopes once at attach time (strings
// are interned there) and call Enter on the hot path, where the cache
// makes the common case — re-entering the same scope under the same
// parent — two integer compares, no map lookup, no allocation.
type Scope struct {
	p     *Profiler
	frame int32
	p0,
	n0,
	p1,
	n1 int32
}

// Profiler is the cost-attribution tree. The zero value is not usable;
// call New.
type Profiler struct {
	frames []string         // interned frame names; index = frame id
	byName map[string]int32 // frame name -> id
	nodes  []node           // node 0 = root; creation order is deterministic
	child  map[uint64]int32 // (parent<<32 | frame) -> node index, slow path

	// cur is the innermost active scope node; owner is the deepest node
	// reached since the last event boundary — the node the event's cost
	// is attributed to. Both reset to the root after every event.
	cur        int32
	owner      int32
	ownerDepth int32

	// lastSim is the clock value (ns) of the previous attribution point
	// on the currently attached engine; the delta to each event's
	// timestamp is the sim-time that event owns.
	lastSim int64

	wall     Clock
	lastWall int64
}

// New returns an empty profiler with the root "engine" scope at node 0.
func New(cfg Config) *Profiler {
	p := &Profiler{
		byName: make(map[string]int32),
		child:  make(map[uint64]int32),
		wall:   cfg.Wall,
	}
	root := p.intern("engine")
	// The root is its own parent so a stray Exit at depth zero stays at
	// the root instead of indexing off the tree.
	p.nodes = append(p.nodes, node{parent: 0, frame: root, depth: 0})
	if p.wall != nil {
		p.lastWall = p.wall()
	}
	return p
}

// WallEnabled reports whether the telemetry plane is on.
func (p *Profiler) WallEnabled() bool { return p.wall != nil }

// intern returns the id of name, assigning one on first use.
func (p *Profiler) intern(name string) int32 {
	if id, ok := p.byName[name]; ok {
		return id
	}
	id := int32(len(p.frames))
	p.frames = append(p.frames, name)
	p.byName[name] = id
	return id
}

// NewScope interns name and returns a scope handle for it. Call once per
// component at attach time, not on the hot path.
func (p *Profiler) NewScope(name string) *Scope {
	return &Scope{p: p, frame: p.intern(name), p0: -1, p1: -1}
}

// Enter pushes s onto the scope stack. Components call it at the top of
// an instrumented stage and must pair it with exactly one Profiler.Exit
// on every return path (explicit calls, no defer — the hot path cannot
// afford one).
func (s *Scope) Enter() {
	p := s.p
	parent := p.cur
	var n int32
	switch parent {
	case s.p0:
		n = s.n0
	case s.p1:
		n = s.n1
	default:
		n = p.resolve(s, parent)
	}
	nd := &p.nodes[n]
	nd.enters++
	if nd.depth > p.ownerDepth {
		p.owner, p.ownerDepth = n, nd.depth
	}
	if p.wall != nil {
		p.sampleWall(parent)
	}
	p.cur = n
}

// Exit pops the innermost scope.
func (p *Profiler) Exit() {
	cur := p.cur
	if p.wall != nil {
		p.sampleWall(cur)
	}
	p.cur = p.nodes[cur].parent
}

// resolve is Enter's slow path: find or create the (parent, frame) node
// and rotate it into the scope's inline cache. New nodes appear only until
// the tree covers every reached (parent, frame) pair, so steady state
// allocates nothing.
func (p *Profiler) resolve(s *Scope, parent int32) int32 {
	key := uint64(uint32(parent))<<32 | uint64(uint32(s.frame))
	n, ok := p.child[key]
	if !ok {
		n = int32(len(p.nodes))
		p.nodes = append(p.nodes, node{ //tcnlint:hotpath tree grows once per distinct (parent, frame) pair, then the inline caches hit
			parent: parent,
			frame:  s.frame,
			depth:  p.nodes[parent].depth + 1,
		})
		p.child[key] = n
	}
	s.p1, s.n1 = s.p0, s.n0
	s.p0, s.n0 = parent, n
	return n
}

// sampleWall charges the wall time since the last sample to node n and
// restarts the interval (telemetry plane only).
func (p *Profiler) sampleWall(n int32) {
	w := p.wall()
	p.nodes[n].wallNs += w - p.lastWall
	p.lastWall = w
}

// AttachEngine chains the profiler onto eng's post-event hook and rebases
// sim-time attribution at the engine's current clock. Call once per
// engine, right after construction (sweep runners attach each cell's
// engine in turn); pair with FinishEngine after the cell's last RunUntil
// so the final clock advance is accounted.
//
// The hook attributes each executed event — and the sim-time elapsed
// since the previous event — to the deepest scope the event reached, then
// resets the stack to the root. Attribution never schedules, cancels, or
// perturbs the model, so the engine's DigestState is unchanged by it.
func (p *Profiler) AttachEngine(eng *sim.Engine) {
	p.lastSim = int64(eng.Now())
	p.cur, p.owner, p.ownerDepth = 0, 0, 0
	eng.AddPostEvent(func(now sim.Time, _ uint64) {
		nd := &p.nodes[p.owner]
		nd.events++
		nd.simNs += int64(now) - p.lastSim
		p.lastSim = int64(now)
		p.owner, p.ownerDepth = 0, 0
		p.cur = 0
		if p.wall != nil {
			// Residual wall time since the last scope transition — the
			// tail of the callback plus engine dispatch — belongs to the
			// engine itself.
			p.sampleWall(0)
		}
	})
}

// FinishEngine folds the tail of a run into the root scope: sim-time the
// engine advanced past its last executed event (RunUntil's final clock
// move to the deadline) has no owning event, so it is engine time. After
// this call the profiler's per-node sim-time totals sum exactly to the
// engine's elapsed sim-time.
func (p *Profiler) FinishEngine(eng *sim.Engine) {
	if d := int64(eng.Now()) - p.lastSim; d > 0 {
		p.nodes[0].simNs += d
		p.lastSim = int64(eng.Now())
	}
}

// Totals returns the tree-wide sums of the deterministic plane: events
// attributed and sim-time owned. After FinishEngine, simNs equals the sum
// of elapsed sim-time across every attached engine.
func (p *Profiler) Totals() (events uint64, simNs int64) {
	for i := range p.nodes {
		events += p.nodes[i].events
		simNs += p.nodes[i].simNs
	}
	return events, simNs
}

// Frames returns the number of distinct interned scope names.
func (p *Profiler) Frames() int { return len(p.frames) }

// Nodes returns the number of scope-tree nodes (distinct stacks reached).
func (p *Profiler) Nodes() int { return len(p.nodes) }

// DigestState folds the deterministic plane into a digest: the interned
// frame table and, per node, its position in the tree and its event and
// sim-time attribution. Wall self-time is telemetry and deliberately
// excluded — two byte-identical runs digest identically even with the
// telemetry plane on. Node order is creation order, which is a function
// of the event history alone, so the digest is deterministic.
func (p *Profiler) DigestState(h *digest.Hash) {
	h.WriteInt(len(p.frames))
	for _, f := range p.frames {
		h.WriteString(f)
	}
	h.WriteInt(len(p.nodes))
	for i := range p.nodes {
		n := &p.nodes[i]
		h.WriteInt(int(n.parent))
		h.WriteInt(int(n.frame))
		h.WriteUint64(n.enters)
		h.WriteUint64(n.events)
		h.WriteInt64(n.simNs)
	}
}

// stackOf appends node n's frame path, root first, to buf and returns it.
func (p *Profiler) stackOf(buf []int32, n int32) []int32 {
	start := len(buf)
	for {
		buf = append(buf, p.nodes[n].frame)
		if n == 0 {
			break
		}
		n = p.nodes[n].parent
	}
	// Reverse the appended leaf-first segment into root-first order.
	for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf
}
