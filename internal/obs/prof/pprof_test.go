package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"

	"tcn/internal/sim"
)

// The round-trip reader below is a deliberately minimal profile.proto
// decoder — varints and length-delimited fields only, just enough to
// verify the encoder against the wire format `go tool pprof` consumes,
// without importing any protobuf package.

type preader struct {
	b []byte
	i int
}

func (r *preader) done() bool { return r.i >= len(r.b) }

func (r *preader) varint(t *testing.T) uint64 {
	t.Helper()
	var v uint64
	for shift := 0; ; shift += 7 {
		if r.i >= len(r.b) {
			t.Fatal("truncated varint")
		}
		c := r.b[r.i]
		r.i++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v
		}
	}
}

// field reads one tag and returns (number, wire type).
func (r *preader) field(t *testing.T) (int, int) {
	tag := r.varint(t)
	return int(tag >> 3), int(tag & 7)
}

// bytes reads one length-delimited payload.
func (r *preader) bytes(t *testing.T) []byte {
	t.Helper()
	n := r.varint(t)
	if r.i+int(n) > len(r.b) {
		t.Fatal("truncated bytes field")
	}
	out := r.b[r.i : r.i+int(n)]
	r.i += int(n)
	return out
}

// packedU64 decodes a packed repeated varint payload.
func packedU64(t *testing.T, b []byte) []uint64 {
	t.Helper()
	r := &preader{b: b}
	var out []uint64
	for !r.done() {
		out = append(out, r.varint(t))
	}
	return out
}

type decodedProfile struct {
	strings     []string
	sampleTypes [][2]uint64 // (type idx, unit idx)
	samples     []struct {
		locs   []uint64
		values []uint64
	}
	locFn       map[uint64]uint64 // location id -> function id
	fnName      map[uint64]uint64 // function id -> name string idx
	duration    uint64
	defaultType uint64
}

func decodeProfile(t *testing.T, raw []byte) *decodedProfile {
	t.Helper()
	d := &decodedProfile{locFn: map[uint64]uint64{}, fnName: map[uint64]uint64{}}
	r := &preader{b: raw}
	for !r.done() {
		num, wire := r.field(t)
		switch {
		case num == fieldStringTable && wire == wireBytes:
			d.strings = append(d.strings, string(r.bytes(t)))
		case num == fieldSampleType && wire == wireBytes:
			sub := &preader{b: r.bytes(t)}
			var st [2]uint64
			for !sub.done() {
				n, _ := sub.field(t)
				v := sub.varint(t)
				if n == vtType {
					st[0] = v
				} else if n == vtUnit {
					st[1] = v
				}
			}
			d.sampleTypes = append(d.sampleTypes, st)
		case num == fieldSample && wire == wireBytes:
			sub := &preader{b: r.bytes(t)}
			var s struct {
				locs   []uint64
				values []uint64
			}
			for !sub.done() {
				n, _ := sub.field(t)
				b := sub.bytes(t)
				if n == sampleLocationID {
					s.locs = packedU64(t, b)
				} else if n == sampleValue {
					s.values = packedU64(t, b)
				}
			}
			d.samples = append(d.samples, s)
		case num == fieldLocation && wire == wireBytes:
			sub := &preader{b: r.bytes(t)}
			var id, fn uint64
			for !sub.done() {
				n, w := sub.field(t)
				if n == locID && w == wireVarint {
					id = sub.varint(t)
					continue
				}
				line := &preader{b: sub.bytes(t)}
				for !line.done() {
					ln, _ := line.field(t)
					v := line.varint(t)
					if ln == lineFunctionID {
						fn = v
					}
				}
			}
			d.locFn[id] = fn
		case num == fieldFunction && wire == wireBytes:
			sub := &preader{b: r.bytes(t)}
			var id, name uint64
			for !sub.done() {
				n, _ := sub.field(t)
				v := sub.varint(t)
				if n == fnID {
					id = v
				} else if n == fnName {
					name = v
				}
			}
			d.fnName[id] = name
		case num == fieldDurationNanos && wire == wireVarint:
			d.duration = r.varint(t)
		case num == fieldDefaultSampleType && wire == wireVarint:
			d.defaultType = r.varint(t)
		case wire == wireBytes:
			r.bytes(t)
		default:
			r.varint(t)
		}
	}
	return d
}

// stackNames resolves one sample's leaf-first location ids into root-first
// frame names.
func (d *decodedProfile) stackNames(t *testing.T, locs []uint64) []string {
	t.Helper()
	out := make([]string, 0, len(locs))
	for i := len(locs) - 1; i >= 0; i-- {
		fn, ok := d.locFn[locs[i]]
		if !ok {
			t.Fatalf("sample references unknown location %d", locs[i])
		}
		idx, ok := d.fnName[fn]
		if !ok {
			t.Fatalf("location %d references unknown function %d", locs[i], fn)
		}
		if idx >= uint64(len(d.strings)) {
			t.Fatalf("function %d name index %d out of range", fn, idx)
		}
		out = append(out, d.strings[idx])
	}
	return out
}

// TestPprofRoundTrip drives a known mini-simulation, decodes the gzip
// profile.proto export with the minimal reader above, and checks every
// structural invariant pprof relies on plus the exact attributed values.
func TestPprofRoundTrip(t *testing.T) {
	p := New(Config{})
	eng := sim.NewEngine()
	p.AttachEngine(eng)
	port := p.NewScope("port:x")
	sch := p.NewScope("sched:y")
	eng.At(10*sim.Nanosecond, func() { port.Enter(); p.Exit() })                        // port:x owns 10ns, 1 event
	eng.At(30*sim.Nanosecond, func() { port.Enter(); sch.Enter(); p.Exit(); p.Exit() }) // port:x;sched:y owns 20ns, 1 event
	eng.At(50*sim.Nanosecond, func() {})                                                // engine owns 20ns, 1 event
	eng.RunUntil(80 * sim.Nanosecond)                                                   // + 30ns engine tail
	p.FinishEngine(eng)

	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatalf("WritePprof: %v", err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("export is not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	d := decodeProfile(t, raw)

	if len(d.strings) == 0 || d.strings[0] != "" {
		t.Fatalf("string table must start with the empty string: %q", d.strings)
	}
	str := func(i uint64) string {
		if i >= uint64(len(d.strings)) {
			t.Fatalf("string index %d out of range", i)
		}
		return d.strings[i]
	}
	wantTypes := [][2]string{{"events", "count"}, {"sim_time", "nanoseconds"}, {"wall_time", "nanoseconds"}}
	if len(d.sampleTypes) != len(wantTypes) {
		t.Fatalf("%d sample types, want %d", len(d.sampleTypes), len(wantTypes))
	}
	for i, st := range d.sampleTypes {
		if str(st[0]) != wantTypes[i][0] || str(st[1]) != wantTypes[i][1] {
			t.Fatalf("sample type %d = %s/%s, want %s/%s",
				i, str(st[0]), str(st[1]), wantTypes[i][0], wantTypes[i][1])
		}
	}
	if str(d.defaultType) != "sim_time" {
		t.Fatalf("default sample type %q, want sim_time", str(d.defaultType))
	}
	if d.duration != 80 {
		t.Fatalf("duration %d, want the 80ns elapsed sim-time", d.duration)
	}

	// (stack, [events, simNs, wallNs]) triples expected from the schedule.
	want := map[string][3]uint64{
		"engine":                {1, 20 + 30, 0}, // unscoped event + RunUntil tail
		"engine;port:x":         {1, 10, 0},
		"engine;port:x;sched:y": {1, 20, 0},
	}
	if len(d.samples) != len(want) {
		t.Fatalf("%d samples, want %d", len(d.samples), len(want))
	}
	var totalEvents, totalSim uint64
	for _, s := range d.samples {
		names := d.stackNames(t, s.locs)
		key := ""
		for i, n := range names {
			if i > 0 {
				key += ";"
			}
			key += n
		}
		w, ok := want[key]
		if !ok {
			t.Fatalf("unexpected sample stack %q", key)
		}
		if len(s.values) != 3 || [3]uint64(s.values) != w {
			t.Fatalf("stack %q values %v, want %v", key, s.values, w)
		}
		totalEvents += s.values[0]
		totalSim += s.values[1]
		delete(want, key)
	}
	if totalEvents != eng.Executed || totalSim != uint64(eng.Now()) {
		t.Fatalf("sample totals events=%d sim=%d, want %d/%d",
			totalEvents, totalSim, eng.Executed, uint64(eng.Now()))
	}
}

// TestPprofDeterministic pins byte-identical exports across two identical
// runs: the CI profile-smoke job diffs folded outputs across engine cores,
// and that only holds if nothing about the encoding depends on map order
// or wall state.
func TestPprofDeterministic(t *testing.T) {
	render := func() ([]byte, []byte) {
		p := miniRun(New(Config{}))
		var pb, folded bytes.Buffer
		if err := p.WritePprof(&pb); err != nil {
			t.Fatalf("WritePprof: %v", err)
		}
		if err := p.WriteFolded(&folded); err != nil {
			t.Fatalf("WriteFolded: %v", err)
		}
		return pb.Bytes(), folded.Bytes()
	}
	pb1, f1 := render()
	pb2, f2 := render()
	if !bytes.Equal(pb1, pb2) {
		t.Fatal("two identical runs produced different pprof bytes")
	}
	if !bytes.Equal(f1, f2) {
		t.Fatal("two identical runs produced different folded bytes")
	}
}
