package flight

import (
	"fmt"
	"io"
	"sort"

	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// FlowSpan is the stitched lifecycle record of one flow: every packet
// event observed at instrumented ports, folded into aggregates. When the
// tracker watches every port of a multi-hop fabric, Packets/Bytes count
// per-hop transmit events (a packet crossing two switches counts twice);
// FirstEnq and LastDeq are taken across all hops, so FCT still measures
// first admission anywhere to last departure anywhere.
type FlowSpan struct {
	Flow       pkt.FlowID
	FirstEnq   sim.Time // first queue admission
	LastDeq    sim.Time // most recent transmit
	Packets    int64    // transmit events (Data packets)
	Bytes      int64    // bytes across transmit events
	Marks      int64    // transmits leaving with CE
	Drops      int64    // admission rejections
	MaxSojourn sim.Time // largest per-hop queueing delay
}

// FCT returns the observed flow span: last dequeue minus first enqueue.
// Zero until the flow has both.
func (f *FlowSpan) FCT() sim.Time {
	if f.LastDeq <= f.FirstEnq {
		return 0
	}
	return f.LastDeq - f.FirstEnq
}

// spanUntracked marks a flow the reservoir decided not to keep.
const spanUntracked int32 = -1

// SpanTracker folds packet lifecycle events into per-flow spans, bounded
// by reservoir sampling (Algorithm R): the first cap distinct flows are
// admitted outright; each later flow replaces a uniformly random resident
// with probability cap/seen, so the tracked set is always a uniform
// sample of all flows seen. Decisions depend only on flow arrival order
// and the tracker's own seed, never on the experiment RNG — tracking is
// deterministic and free of side effects on the run.
//
// The event path is allocation-free in steady state: spans live in a
// slice preallocated at construction and flows resolve through one map
// lookup. Only the first event of a previously unseen flow may allocate
// (map growth).
type SpanTracker struct {
	slots []FlowSpan           // fixed storage, len grows to cap once
	index map[pkt.FlowID]int32 // flow -> slot, or spanUntracked
	rng   *sim.Rand
	seen  int64 // distinct flows observed
}

// NewSpanTracker returns a tracker keeping at most capFlows spans.
func NewSpanTracker(capFlows int, seed int64) *SpanTracker {
	if capFlows < 1 {
		capFlows = 1
	}
	return &SpanTracker{
		slots: make([]FlowSpan, 0, capFlows),
		index: make(map[pkt.FlowID]int32, capFlows),
		rng:   sim.NewRand(seed),
	}
}

// slot resolves the span for p's flow, admitting the flow through the
// reservoir on first sight. Returns nil when the reservoir declined it.
// Only Data packets carry flow lifecycle; everything else is ignored.
func (t *SpanTracker) slot(p *pkt.Packet) *FlowSpan {
	if p.Kind != pkt.Data {
		return nil
	}
	if i, ok := t.index[p.Flow]; ok {
		if i == spanUntracked {
			return nil
		}
		return &t.slots[i]
	}
	t.seen++
	if len(t.slots) < cap(t.slots) {
		i := int32(len(t.slots))
		t.slots = append(t.slots, FlowSpan{Flow: p.Flow}) //tcnlint:hotpath reservoir append is guarded by len < cap; slots never reallocate
		t.index[p.Flow] = i
		return &t.slots[i]
	}
	// Reservoir full: replace a random resident with probability cap/seen.
	j := t.rng.Int63n(t.seen)
	if j >= int64(cap(t.slots)) {
		t.index[p.Flow] = spanUntracked
		return nil
	}
	evicted := t.slots[j].Flow
	t.index[evicted] = spanUntracked
	t.slots[j] = FlowSpan{Flow: p.Flow}
	t.index[p.Flow] = int32(j)
	return &t.slots[j]
}

// Enqueue records a queue admission.
func (t *SpanTracker) Enqueue(now sim.Time, p *pkt.Packet) {
	s := t.slot(p)
	if s == nil {
		return
	}
	if s.FirstEnq == 0 && s.Packets == 0 && s.Drops == 0 {
		s.FirstEnq = now
	}
}

// Transmit records a departure: sojourn is the per-hop queueing delay and
// marked reports whether the packet left carrying CE.
func (t *SpanTracker) Transmit(now sim.Time, p *pkt.Packet, sojourn sim.Time, marked bool) {
	s := t.slot(p)
	if s == nil {
		return
	}
	s.LastDeq = now
	s.Packets++
	s.Bytes += int64(p.Size)
	if marked {
		s.Marks++
	}
	if sojourn > s.MaxSojourn {
		s.MaxSojourn = sojourn
	}
}

// Drop records an admission rejection.
func (t *SpanTracker) Drop(now sim.Time, p *pkt.Packet) {
	s := t.slot(p)
	if s == nil {
		return
	}
	if s.FirstEnq == 0 && s.Packets == 0 && s.Drops == 0 {
		s.FirstEnq = now
	}
	s.Drops++
}

// Seen returns the number of distinct Data flows observed (tracked or not).
func (t *SpanTracker) Seen() int64 { return t.seen }

// Spans returns the tracked spans sorted by flow ID. The spans are
// copies; mutating them does not affect the tracker.
func (t *SpanTracker) Spans() []FlowSpan {
	out := make([]FlowSpan, len(t.slots))
	copy(out, t.slots)
	sort.Slice(out, func(i, j int) bool { return out[i].Flow < out[j].Flow })
	return out
}

// WriteCSV writes the tracked spans as CSV, sorted by flow ID, with all
// times in integer nanoseconds.
func (t *SpanTracker) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"flow,first_enq_ns,last_deq_ns,fct_ns,packets,bytes,marks,drops,max_sojourn_ns\n"); err != nil {
		return err
	}
	for _, s := range t.Spans() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Flow, int64(s.FirstEnq), int64(s.LastDeq), int64(s.FCT()),
			s.Packets, s.Bytes, s.Marks, s.Drops, int64(s.MaxSojourn)); err != nil {
			return err
		}
	}
	return nil
}
