package flight

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"tcn/internal/obs"
)

// Prometheus text exposition (format version 0.0.4) of a stats registry.
//
// Registry names follow the port convention "<label>.q<i>.<metric>"
// (obs.PortObs); those become one metric family per metric suffix —
// tcn_tx_packets_total{port="fig2.sw.p0",queue="0"} — so every queue of
// every port lands under the same family, the shape Prometheus queries
// want. Names outside the convention are exposed through generic
// families (tcn_counter_total, tcn_gauge, tcn_histogram) with the full
// registry name as a label.

// portName matches the port convention. The metric suffix must also be a
// valid Prometheus name component (checked separately: no leading digit).
var portName = regexp.MustCompile(`^(.+)\.q(\d+)\.([A-Za-z0-9_]+)$`)

// promFamily accumulates the rendered sample lines of one metric family.
type promFamily struct {
	typ   string // "counter", "gauge", "histogram"
	lines []string
}

// promFamilies is the render state: family name -> samples.
type promFamilies map[string]*promFamily

// family returns the named family if its type matches, or nil when the
// name is already claimed by a different type (the caller then falls back
// to a generic family — two TYPE lines for one name would be invalid
// exposition).
func (fs promFamilies) family(name, typ string) *promFamily {
	f, ok := fs[name]
	if !ok {
		f = &promFamily{typ: typ}
		fs[name] = f
	}
	if f.typ != typ {
		return nil
	}
	return f
}

// splitPortName decomposes a registry name following the port convention
// into its label parts and the metric suffix; ok is false for loose names.
func splitPortName(name string) (port, queue, metric string, ok bool) {
	m := portName.FindStringSubmatch(name)
	if m == nil || m[3][0] >= '0' && m[3][0] <= '9' {
		return "", "", "", false
	}
	return m[1], m[2], m[3], true
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// labelPair renders one key="value" pair with escaping.
func labelPair(k, v string) string {
	return k + `="` + escapeLabel(v) + `"`
}

// WriteProm renders every instrument of r in Prometheus text format.
// Output is deterministic: families sort lexically, samples inherit the
// registry's name-sorted walk order.
func WriteProm(w io.Writer, r *obs.Registry) error {
	fams := promFamilies{}

	add := func(famName, typ, labels, value string) {
		f := fams.family(famName, typ)
		if f == nil {
			// Family name collided across types; fall back to generic.
			switch typ {
			case "counter":
				famName = "tcn_counter_total"
			case "gauge":
				famName = "tcn_gauge"
			default:
				famName = "tcn_histogram"
			}
			f = fams.family(famName, typ)
		}
		f.lines = append(f.lines, famName+"{"+labels+"} "+value)
	}

	r.WalkCounters(func(name string, c *obs.Counter) {
		v := strconv.FormatInt(c.Value(), 10)
		if port, queue, metric, ok := splitPortName(name); ok {
			add("tcn_"+metric+"_total", "counter",
				labelPair("port", port)+","+labelPair("queue", queue), v)
			return
		}
		add("tcn_counter_total", "counter", labelPair("name", name), v)
	})

	r.WalkGauges(func(name string, g *obs.Gauge) {
		v := strconv.FormatFloat(g.Value(), 'g', -1, 64)
		if port, queue, metric, ok := splitPortName(name); ok {
			add("tcn_"+metric, "gauge",
				labelPair("port", port)+","+labelPair("queue", queue), v)
			return
		}
		add("tcn_gauge", "gauge", labelPair("name", name), v)
	})

	r.WalkHistograms(func(name string, h *obs.Histogram) {
		famName := "tcn_histogram"
		labels := labelPair("name", name)
		if port, queue, metric, ok := splitPortName(name); ok {
			famName = "tcn_" + metric
			labels = labelPair("port", port) + "," + labelPair("queue", queue)
		}
		f := fams.family(famName, "histogram")
		if f == nil {
			famName = "tcn_histogram"
			labels = labelPair("name", name)
			f = fams.family(famName, "histogram")
		}
		h.Cumulative(func(upper, cum int64) {
			if upper == math.MaxInt64 {
				// The final bucket's count is carried by the explicit
				// +Inf line below.
				return
			}
			f.lines = append(f.lines,
				famName+"_bucket{"+labels+","+
					labelPair("le", strconv.FormatInt(upper, 10))+"} "+
					strconv.FormatInt(cum, 10))
		})
		f.lines = append(f.lines,
			famName+"_bucket{"+labels+","+labelPair("le", "+Inf")+"} "+
				strconv.FormatInt(h.Count(), 10))
		f.lines = append(f.lines,
			famName+"_sum{"+labels+"} "+strconv.FormatInt(h.Sum(), 10))
		f.lines = append(f.lines,
			famName+"_count{"+labels+"} "+strconv.FormatInt(h.Count(), 10))
	})

	names := make([]string, 0, len(fams))
	//tcnlint:ordered keys are sorted before rendering
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}
