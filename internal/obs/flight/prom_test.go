package flight

import (
	"bytes"
	"strings"
	"testing"

	"tcn/internal/obs"
)

func renderProm(t *testing.T, r *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteProm(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func mustContain(t *testing.T, out string, lines ...string) {
	t.Helper()
	for _, l := range lines {
		if !strings.Contains(out, l+"\n") {
			t.Fatalf("exposition missing %q; got:\n%s", l, out)
		}
	}
}

func TestPromPortConventionFamilies(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("fig2.sw.p0.q0.tx_packets").Add(5)
	r.Counter("fig2.sw.p1.q2.tx_packets").Add(7)
	r.Gauge("fig2.sw.p0.q0.depth_bytes").Set(1500)

	out := renderProm(t, r)
	mustContain(t, out,
		"# TYPE tcn_tx_packets_total counter",
		`tcn_tx_packets_total{port="fig2.sw.p0",queue="0"} 5`,
		`tcn_tx_packets_total{port="fig2.sw.p1",queue="2"} 7`,
		"# TYPE tcn_depth_bytes gauge",
		`tcn_depth_bytes{port="fig2.sw.p0",queue="0"} 1500`,
	)
	if strings.Count(out, "# TYPE tcn_tx_packets_total") != 1 {
		t.Fatalf("family header duplicated:\n%s", out)
	}
}

func TestPromLooseNames(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("marker.total_marks").Add(3)
	// A digit-leading metric suffix is not a valid Prometheus name
	// component, so this must fall through to the generic family too.
	r.Counter("sw.p0.q1.4xx").Add(1)
	r.Gauge("bucket.level").Set(0.25)

	out := renderProm(t, r)
	mustContain(t, out,
		"# TYPE tcn_counter_total counter",
		`tcn_counter_total{name="marker.total_marks"} 3`,
		`tcn_counter_total{name="sw.p0.q1.4xx"} 1`,
		"# TYPE tcn_gauge gauge",
		`tcn_gauge{name="bucket.level"} 0.25`,
	)
}

func TestPromLabelEscaping(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("weird\\name\"with\nall").Inc()

	out := renderProm(t, r)
	mustContain(t, out,
		`tcn_counter_total{name="weird\\name\"with\nall"} 1`,
	)
	if strings.Count(out, "\n") != strings.Count(out, "# TYPE")+strings.Count(out, "} ") {
		t.Fatalf("raw newline leaked into a label value:\n%q", out)
	}
}

func TestPromHistogramBucketEdges(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("sw.p0.q0.sojourn_ns")
	// Values below 32 land in unit-width buckets, so the le edges are
	// exactly the recorded values.
	h.Record(0)
	h.Record(3)
	h.Record(3)
	h.Record(7)

	out := renderProm(t, r)
	mustContain(t, out,
		"# TYPE tcn_sojourn_ns histogram",
		`tcn_sojourn_ns_bucket{port="sw.p0",queue="0",le="0"} 1`,
		`tcn_sojourn_ns_bucket{port="sw.p0",queue="0",le="3"} 3`,
		`tcn_sojourn_ns_bucket{port="sw.p0",queue="0",le="7"} 4`,
		`tcn_sojourn_ns_bucket{port="sw.p0",queue="0",le="+Inf"} 4`,
		`tcn_sojourn_ns_sum{port="sw.p0",queue="0"} 13`,
		`tcn_sojourn_ns_count{port="sw.p0",queue="0"} 4`,
	)
	if n := strings.Count(out, `le="+Inf"`); n != 1 {
		t.Fatalf("%d +Inf buckets, want exactly 1:\n%s", n, out)
	}
}

func TestPromWideBucketUpperEdge(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("sw.p0.q0.sojourn_ns")
	// 100 lands in the octave bucket [100, 104); its inclusive upper
	// bound (and thus the le edge) is 103.
	h.Record(100)

	out := renderProm(t, r)
	mustContain(t, out,
		`tcn_sojourn_ns_bucket{port="sw.p0",queue="0",le="103"} 1`,
	)
}

func TestPromTypeCollisionFallsBackToGeneric(t *testing.T) {
	r := obs.NewRegistry()
	// Both map to family "tcn_depth". Counters walk after gauges would
	// be fine either way: exactly one family may claim the name; the
	// other must fall back to its generic family rather than emit a
	// second TYPE line.
	r.Gauge("a.q0.depth").Set(10)
	r.Histogram("b.q0.depth").Record(5)

	out := renderProm(t, r)
	if n := strings.Count(out, "# TYPE tcn_depth "); n != 1 {
		t.Fatalf("%d TYPE lines for tcn_depth, want 1:\n%s", n, out)
	}
	mustContain(t, out,
		`tcn_depth{port="a",queue="0"} 10`,
		"# TYPE tcn_histogram histogram",
		`tcn_histogram_count{name="b.q0.depth"} 1`,
	)
}

func TestPromDeterministicOrder(t *testing.T) {
	build := func() string {
		r := obs.NewRegistry()
		r.Counter("z.q1.tx_packets").Add(1)
		r.Counter("a.q0.tx_packets").Add(2)
		r.Gauge("m.q0.depth_bytes").Set(3)
		r.Histogram("m.q0.sojourn_ns").Record(4)
		r.Counter("loose").Inc()
		return renderProm(t, r)
	}
	if build() != build() {
		t.Fatal("exposition not byte-identical across identical registries")
	}
}
