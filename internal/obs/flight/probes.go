package flight

import (
	"fmt"

	"tcn/internal/core"
	"tcn/internal/fabric"
	"tcn/internal/pkt"
	"tcn/internal/qdisc"
	"tcn/internal/sim"
)

// Probe attachment for the two pipeline implementations, fabric.Port and
// qdisc.Qdisc. Series names extend the registry's port convention
// ("<prefix>.q<i>.<metric>" where per-queue, "<prefix>.<metric>" where
// per-port) so CSV exports line up with /metrics labels.
//
// All probes are read-only by construction: they consult queue byte
// counts, counter values, the shaper's non-mutating Level, and each
// marker's side-effect-free MarkProb — an instrumented run stays
// bit-identical to a bare one.

// AttachPortProbes registers the standard periodic probes on a fabric
// port under prefix, polled at the recorder's default period:
//
//	<prefix>.q<i>.depth_bytes   per-queue occupancy
//	<prefix>.q<i>.mark_prob     instantaneous marking probability (if the
//	                            marker implements core.MarkProber)
//	<prefix>.buffer_bytes       shared buffer pool occupancy
//	<prefix>.throughput_gbps    transmit rate over the last period
//	<prefix>.mark_rate_pps      CE marks per second over the last period
//	                            (if the marker implements core.MarkCounter)
func AttachPortProbes(rec *Recorder, prefix string, pt *fabric.Port) {
	eng := pt.Engine()
	for i := 0; i < pt.NumQueues(); i++ {
		qi := i
		rec.Probe(eng, fmt.Sprintf("%s.q%d.depth_bytes", prefix, qi), 0,
			func(sim.Time) float64 { return float64(pt.QueueBytes(qi)) })
		if prober, ok := pt.Marker().(core.MarkProber); ok {
			rec.Probe(eng, fmt.Sprintf("%s.q%d.mark_prob", prefix, qi), 0,
				func(now sim.Time) float64 {
					var sojourn sim.Time
					if head := pt.Buffer().Head(qi); head != nil {
						sojourn = head.Sojourn(now)
					}
					return prober.MarkProb(now, qi, sojourn, pt)
				})
		}
	}
	rec.Probe(eng, prefix+".buffer_bytes", 0,
		func(sim.Time) float64 { return float64(pt.PortBytes()) })
	rec.Probe(eng, prefix+".throughput_gbps", 0,
		rateProbe(rec.cfg.Period, 8e-9, func() int64 {
			var total int64
			for _, b := range pt.TxBytes {
				total += b
			}
			return total
		}))
	if mc, ok := pt.Marker().(core.MarkCounter); ok {
		rec.Probe(eng, prefix+".mark_rate_pps", 0,
			rateProbe(rec.cfg.Period, 1, mc.MarkCount))
	}
}

// AttachQdiscProbes registers the periodic probes on a software qdisc
// under prefix: per-queue depth, shared buffer occupancy, and the token
// bucket level (via the non-mutating Level, so probing cannot change the
// shaper's floating-point trajectory).
func AttachQdiscProbes(rec *Recorder, prefix string, q *qdisc.Qdisc) {
	eng := q.Engine()
	for i := 0; i < q.NumQueues(); i++ {
		qi := i
		rec.Probe(eng, fmt.Sprintf("%s.q%d.depth_bytes", prefix, qi), 0,
			func(sim.Time) float64 { return float64(q.QueueBytes(qi)) })
	}
	rec.Probe(eng, prefix+".buffer_bytes", 0,
		func(sim.Time) float64 { return float64(q.PortBytes()) })
	rec.Probe(eng, prefix+".tokens_bytes", 0,
		func(now sim.Time) float64 { return q.Bucket().Level(now) })
}

// rateProbe turns a monotonic counter into a per-second rate: each sample
// is the counter delta over the polling period, scaled by unit (8e-9
// turns bytes/s into Gbit/s; 1 leaves events/s).
func rateProbe(period sim.Time, unit float64, counter func() int64) func(sim.Time) float64 {
	var last int64
	perSec := 1 / period.Seconds()
	return func(sim.Time) float64 {
		cur := counter()
		d := cur - last
		last = cur
		return float64(d) * perSec * unit
	}
}

// AttachPortSpans wires the recorder's flow-span tracker into a fabric
// port's lifecycle hooks, chaining any hooks already installed (the
// trace.Tracer pattern) so span tracking composes with tracing.
func AttachPortSpans(rec *Recorder, pt *fabric.Port) {
	spans := rec.Spans()
	prevEnq := pt.OnEnqueue
	pt.OnEnqueue = func(now sim.Time, qi int, p *pkt.Packet) {
		if prevEnq != nil {
			prevEnq(now, qi, p)
		}
		spans.Enqueue(now, p)
	}
	prevTx := pt.OnTransmit
	pt.OnTransmit = func(now sim.Time, qi int, p *pkt.Packet) {
		if prevTx != nil {
			prevTx(now, qi, p)
		}
		spans.Transmit(now, p, p.Sojourn(now), p.ECN == pkt.CE)
	}
	prevDrop := pt.OnDrop
	pt.OnDrop = func(now sim.Time, qi int, p *pkt.Packet) {
		if prevDrop != nil {
			prevDrop(now, qi, p)
		}
		spans.Drop(now, p)
	}
}
