package flight

import (
	"bytes"
	"strings"
	"testing"

	"tcn/internal/pkt"
	"tcn/internal/sim"
)

func dataPkt(flow pkt.FlowID, size int) *pkt.Packet {
	return &pkt.Packet{Flow: flow, Kind: pkt.Data, Size: size, ECN: pkt.ECT0}
}

func TestSpanLifecycle(t *testing.T) {
	tr := NewSpanTracker(8, 1)
	p := dataPkt(3, 1500)

	tr.Enqueue(10*sim.Microsecond, p)
	tr.Transmit(25*sim.Microsecond, p, 15*sim.Microsecond, false)
	q := dataPkt(3, 1000)
	tr.Enqueue(30*sim.Microsecond, q)
	tr.Transmit(70*sim.Microsecond, q, 40*sim.Microsecond, true)
	tr.Drop(80*sim.Microsecond, dataPkt(3, 1500))

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	s := spans[0]
	if s.Flow != 3 || s.Packets != 2 || s.Bytes != 2500 || s.Marks != 1 || s.Drops != 1 {
		t.Fatalf("span = %+v", s)
	}
	if s.FirstEnq != 10*sim.Microsecond || s.LastDeq != 70*sim.Microsecond {
		t.Fatalf("span window = [%v, %v]", s.FirstEnq, s.LastDeq)
	}
	if s.FCT() != 60*sim.Microsecond {
		t.Fatalf("fct = %v", s.FCT())
	}
	if s.MaxSojourn != 40*sim.Microsecond {
		t.Fatalf("max sojourn = %v", s.MaxSojourn)
	}
}

func TestSpanIgnoresNonData(t *testing.T) {
	tr := NewSpanTracker(8, 1)
	ack := &pkt.Packet{Flow: 1, Kind: pkt.Ack, Size: 40}
	tr.Enqueue(0, ack)
	tr.Transmit(sim.Microsecond, ack, sim.Microsecond, false)
	if len(tr.Spans()) != 0 || tr.Seen() != 0 {
		t.Fatal("non-Data packets must not create spans")
	}
}

func TestSpanReservoirBoundsAndDeterminism(t *testing.T) {
	run := func() []FlowSpan {
		tr := NewSpanTracker(16, 7)
		for f := pkt.FlowID(0); f < 200; f++ {
			p := dataPkt(f, 1500)
			tr.Enqueue(sim.Time(f)*sim.Microsecond, p)
			tr.Transmit(sim.Time(f+1)*sim.Microsecond, p, sim.Microsecond, false)
		}
		if tr.Seen() != 200 {
			t.Fatalf("seen = %d", tr.Seen())
		}
		return tr.Spans()
	}
	a, b := run(), run()
	if len(a) != 16 {
		t.Fatalf("tracked %d flows, reservoir cap 16", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reservoir not deterministic: %+v vs %+v", a[i], b[i])
		}
	}
	// An evicted flow's later events must not resurrect it or corrupt a
	// resident's slot.
	for i := 1; i < len(a); i++ {
		if a[i].Flow <= a[i-1].Flow {
			t.Fatalf("spans not sorted by flow: %v", a)
		}
	}
}

func TestSpanEvictedFlowEventsIgnored(t *testing.T) {
	tr := NewSpanTracker(1, 1)
	p0, p1 := dataPkt(0, 100), dataPkt(1, 100)
	tr.Enqueue(0, p0)
	// Flow 1 either evicts flow 0 or is rejected; whichever flow remains
	// must only carry its own events.
	tr.Enqueue(sim.Microsecond, p1)
	tr.Transmit(2*sim.Microsecond, p0, sim.Microsecond, false)
	tr.Transmit(3*sim.Microsecond, p1, sim.Microsecond, false)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Packets != 1 {
		t.Fatalf("surviving span saw %d transmits, want only its own", spans[0].Packets)
	}
}

func TestSpanCSV(t *testing.T) {
	tr := NewSpanTracker(8, 1)
	p := dataPkt(5, 1500)
	tr.Enqueue(sim.Microsecond, p)
	tr.Transmit(3*sim.Microsecond, p, 2*sim.Microsecond, true)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv = %q", buf.String())
	}
	if lines[0] != "flow,first_enq_ns,last_deq_ns,fct_ns,packets,bytes,marks,drops,max_sojourn_ns" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "5,1000,3000,2000,1,1500,1,0,2000" {
		t.Fatalf("row = %q", lines[1])
	}
}
