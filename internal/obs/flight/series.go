package flight

import "tcn/internal/sim"

// Point is one sample of a time series: a sim-clock instant and a value.
type Point struct {
	At sim.Time
	V  float64
}

// Series is a fixed-capacity time-series ring with deterministic
// downsampling: when the ring fills, every second retained point is
// dropped and the acceptance stride doubles, so a series of any length
// fits the same memory at progressively coarser (but uniform) resolution.
// The retained points are always a strided prefix-preserving subsample of
// the offered sequence, which makes exports byte-identical for identical
// runs — unlike a wrapping ring, which keeps a phase-dependent suffix.
//
// Record never allocates: the backing array is sized once at creation and
// compaction happens in place.
type Series struct {
	name    string
	pts     []Point // len <= cap, cap fixed at creation
	stride  int     // accept every stride-th offered point
	skip    int     // offers to discard before the next accepted one
	offered int64   // total points offered, including thinned ones
}

// newSeries returns an empty series. Capacity is rounded up to an even
// number of at least 2 so halving is exact.
func newSeries(name string, capacity int) *Series {
	if capacity < 2 {
		capacity = 2
	}
	if capacity%2 != 0 {
		capacity++
	}
	return &Series{name: name, pts: make([]Point, 0, capacity), stride: 1}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Record offers one sample. Depending on the current stride it is either
// retained or deterministically discarded.
func (s *Series) Record(at sim.Time, v float64) {
	s.offered++
	if s.skip > 0 {
		s.skip--
		return
	}
	if len(s.pts) == cap(s.pts) {
		s.compact()
	}
	s.pts = append(s.pts, Point{At: at, V: v}) //tcnlint:hotpath capacity-guarded: compact() above frees a slot before the ring is full
	s.skip = s.stride - 1
}

// compact halves the retained points (keeping even indices, so the first
// point is always preserved) and doubles the stride.
func (s *Series) compact() {
	n := 0
	for i := 0; i < len(s.pts); i += 2 {
		s.pts[n] = s.pts[i]
		n++
	}
	s.pts = s.pts[:n]
	s.stride *= 2
}

// Points returns the retained samples in chronological order. The slice
// aliases the ring; callers must not mutate or retain it across Records.
func (s *Series) Points() []Point { return s.pts }

// Len returns the number of retained samples.
func (s *Series) Len() int { return len(s.pts) }

// Stride returns the current acceptance stride (1 until the first wrap,
// then doubling on each).
func (s *Series) Stride() int { return s.stride }

// Offered returns how many samples were offered, including discarded ones.
func (s *Series) Offered() int64 { return s.offered }

// Last returns the most recent retained sample, or a zero Point when empty.
func (s *Series) Last() Point {
	if len(s.pts) == 0 {
		return Point{}
	}
	return s.pts[len(s.pts)-1]
}

// Max returns the largest retained value.
func (s *Series) Max() float64 {
	var m float64
	for _, p := range s.pts {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// MaxBetween returns the largest retained value within [from, to].
func (s *Series) MaxBetween(from, to sim.Time) float64 {
	var m float64
	for _, p := range s.pts {
		if p.At >= from && p.At <= to && p.V > m {
			m = p.V
		}
	}
	return m
}

// MeanBetween averages the retained values within [from, to].
func (s *Series) MeanBetween(from, to sim.Time) float64 {
	var sum float64
	var n int
	for _, p := range s.pts {
		if p.At >= from && p.At <= to {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
