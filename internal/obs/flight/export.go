package flight

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// sortSeriesByName orders series lexically so every export is
// deterministic regardless of registration order.
func sortSeriesByName(ss []*Series) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].name < ss[j].name })
}

// WriteTimeseriesCSV writes every series as long-form CSV
// (series,time_ns,value) in name then time order. Values are formatted
// with strconv's shortest exact representation, so identical runs export
// identical bytes.
func (r *Recorder) WriteTimeseriesCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "series,time_ns,value\n"); err != nil {
		return err
	}
	var line []byte
	for _, s := range r.AllSeries() {
		for _, p := range s.Points() {
			line = line[:0]
			line = append(line, s.name...)
			line = append(line, ',')
			line = strconv.AppendInt(line, int64(p.At), 10)
			line = append(line, ',')
			line = strconv.AppendFloat(line, p.V, 'g', -1, 64)
			line = append(line, '\n')
			if _, err := w.Write(line); err != nil {
				return err
			}
		}
	}
	return nil
}

// seriesJSON is the JSON shape of one exported series. Points are
// [time_ns, value] pairs to keep files compact.
type seriesJSON struct {
	Name    string       `json:"name"`
	Stride  int          `json:"stride"`
	Offered int64        `json:"offered"`
	Points  [][2]float64 `json:"points"`
}

// WriteTimeseriesJSON writes every series as a JSON document
// {"series": [...]} in name order.
func (r *Recorder) WriteTimeseriesJSON(w io.Writer) error {
	all := r.AllSeries()
	out := struct {
		Series []seriesJSON `json:"series"`
	}{Series: make([]seriesJSON, 0, len(all))}
	for _, s := range all {
		sj := seriesJSON{
			Name:    s.name,
			Stride:  s.stride,
			Offered: s.offered,
			Points:  make([][2]float64, 0, len(s.pts)),
		}
		for _, p := range s.Points() {
			sj.Points = append(sj.Points, [2]float64{float64(p.At), p.V})
		}
		out.Series = append(out.Series, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
