package flight

import (
	"bytes"
	"strings"
	"testing"

	"tcn/internal/sim"
)

func TestSeriesRecordsUntilCapacity(t *testing.T) {
	s := newSeries("s", 8)
	for i := 0; i < 8; i++ {
		s.Record(sim.Time(i), float64(i))
	}
	if s.Len() != 8 || s.Stride() != 1 {
		t.Fatalf("len=%d stride=%d, want 8/1", s.Len(), s.Stride())
	}
	for i, p := range s.Points() {
		//tcnlint:floatexact values stored verbatim; retrieval must be exact
		if p.At != sim.Time(i) || p.V != float64(i) {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
}

func TestSeriesDownsamplesDeterministically(t *testing.T) {
	// Capacity 8, offer 0..31: after wraps the ring must hold a uniform
	// strided subsample that always includes the first point.
	s := newSeries("s", 8)
	for i := 0; i < 32; i++ {
		s.Record(sim.Time(i), float64(i))
	}
	if s.Offered() != 32 {
		t.Fatalf("offered = %d", s.Offered())
	}
	if s.Stride() != 4 {
		t.Fatalf("stride = %d, want 4", s.Stride())
	}
	pts := s.Points()
	if pts[0].At != 0 {
		t.Fatalf("first retained point %v, want t=0", pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].At-pts[i-1].At != sim.Time(s.Stride()) {
			t.Fatalf("non-uniform spacing at %d: %v -> %v (stride %d)",
				i, pts[i-1].At, pts[i].At, s.Stride())
		}
	}
}

// record exercises a recorder with a deterministic synthetic load and
// returns its CSV export.
func record(capacity, points int) string {
	r := New(Config{SeriesCap: capacity})
	a := r.SeriesCap("a", capacity)
	b := r.SeriesCap("b", capacity)
	for i := 0; i < points; i++ {
		a.Record(sim.Time(i)*sim.Microsecond, float64(i%97)*0.5)
		if i%3 == 0 {
			b.Record(sim.Time(i)*sim.Microsecond, float64(i))
		}
	}
	var buf bytes.Buffer
	if err := r.WriteTimeseriesCSV(&buf); err != nil {
		panic(err)
	}
	return buf.String()
}

func TestTimeseriesCSVByteIdentical(t *testing.T) {
	// Same config + same offered sequence => byte-identical export, even
	// when the rings wrapped several times.
	x := record(64, 10_000)
	y := record(64, 10_000)
	if x != y {
		t.Fatal("identical runs exported different CSV bytes")
	}
	lines := strings.Split(strings.TrimSpace(x), "\n")
	if lines[0] != "series,time_ns,value" {
		t.Fatalf("header = %q", lines[0])
	}
	// Wrapped rings stay within capacity.
	if n := len(lines) - 1; n > 2*64 {
		t.Fatalf("%d points exported, capacity 64 per series", n)
	}
}

func TestProbeTicksOnSimClock(t *testing.T) {
	eng := sim.NewEngine()
	r := New(Config{Period: 10 * sim.Microsecond})
	v := 0.0
	s := r.Probe(eng, "probe", 0, func(now sim.Time) float64 {
		v++
		return v
	})
	eng.RunUntil(100 * sim.Microsecond)
	// Ticks at 0, 10us, ..., 100us inclusive.
	if s.Len() != 11 {
		t.Fatalf("samples = %d, want 11", s.Len())
	}
	//tcnlint:floatexact the probe returns exact small integers
	if last := s.Last(); last.At != 100*sim.Microsecond || last.V != 11 {
		t.Fatalf("last = %+v", last)
	}
}

func TestProbesShareTicker(t *testing.T) {
	eng := sim.NewEngine()
	r := New(Config{})
	order := []string{}
	r.Probe(eng, "x", sim.Millisecond, func(sim.Time) float64 {
		order = append(order, "x")
		return 0
	})
	r.Probe(eng, "y", sim.Millisecond, func(sim.Time) float64 {
		order = append(order, "y")
		return 0
	})
	if len(r.tickers) != 1 {
		t.Fatalf("tickers = %d, want 1 shared", len(r.tickers))
	}
	eng.RunUntil(sim.Millisecond)
	want := []string{"x", "y", "x", "y"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestExpositionPublishAndSeal(t *testing.T) {
	eng := sim.NewEngine()
	r := New(Config{Period: 10 * sim.Microsecond})
	r.Probe(eng, "p", 0, func(now sim.Time) float64 { return now.Seconds() })

	if r.Latest() != nil {
		t.Fatal("exposition published before any tick")
	}
	r.RequestPublish()
	eng.RunUntil(50 * sim.Microsecond)
	e1 := r.Latest()
	if e1 == nil {
		t.Fatal("no exposition after requested publish")
	}
	if !strings.HasPrefix(string(e1.Timeseries), "series,time_ns,value\n") {
		t.Fatalf("timeseries = %q", e1.Timeseries)
	}
	// No new request: further ticks must not re-render.
	eng.RunUntil(100 * sim.Microsecond)
	if e2 := r.Latest(); e2.Gen != e1.Gen {
		t.Fatalf("unrequested re-publish: gen %d -> %d", e1.Gen, e2.Gen)
	}
	r.Seal()
	select {
	case <-r.Done():
	default:
		t.Fatal("Done not closed after Seal")
	}
	if e3 := r.Latest(); e3.Gen <= e1.Gen {
		t.Fatalf("seal did not publish a final exposition (gen %d)", e3.Gen)
	}
	r.Seal() // idempotent
}

func TestSeriesHelpers(t *testing.T) {
	s := newSeries("s", 16)
	for i := 1; i <= 10; i++ {
		s.Record(sim.Time(i)*sim.Millisecond, float64(i))
	}
	//tcnlint:floatexact recorded values are exact small integers
	if m := s.Max(); m != 10 {
		t.Fatalf("max = %v", m)
	}
	//tcnlint:floatexact recorded values are exact small integers
	if m := s.MaxBetween(2*sim.Millisecond, 5*sim.Millisecond); m != 5 {
		t.Fatalf("maxBetween = %v", m)
	}
	//tcnlint:floatexact (2+3+4)/3 is exact in binary floating point
	if m := s.MeanBetween(2*sim.Millisecond, 4*sim.Millisecond); m != 3 {
		t.Fatalf("meanBetween = %v", m)
	}
	//tcnlint:floatexact the empty window returns literal zero
	if m := s.MeanBetween(sim.Second, 2*sim.Second); m != 0 {
		t.Fatalf("empty window mean = %v", m)
	}
}
