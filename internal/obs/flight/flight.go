// Package flight is the simulator's flight recorder: the telemetry layer
// that watches state *evolve* in sim time rather than summarizing it after
// the fact (the paper's key evidence — Fig. 2's rate-estimator traces,
// Fig. 10's sojourn dynamics — is dynamics, not endpoints).
//
// Three pieces:
//
//  1. A sim-clock-driven periodic sampler. Probes (queue depth, buffer
//     pool occupancy, token-bucket level, instantaneous mark probability,
//     per-port throughput and mark-rate deltas) are polled on the
//     discrete-event engine and recorded into fixed-capacity Series rings
//     with deterministic downsampling on wrap. Export as CSV or JSON.
//  2. A per-flow span tracker (span.go) that stitches packet lifecycle
//     events — first enqueue, marks, drops, last dequeue — into flow
//     records, bounded by deterministic reservoir sampling.
//  3. An exposition layer (prom.go, export.go) rendering every registry
//     instrument in Prometheus text format and publishing consistent
//     snapshots that an HTTP front end (cmd/tcnsim -serve) can serve
//     while the simulation is still running.
//
// Determinism: probes and spans only *read* simulation state, so an
// instrumented run produces bit-identical results to a bare one; and all
// retention decisions (ring strides, reservoir picks) depend only on the
// offered sequence and the recorder's own seed, so identical runs export
// identical bytes.
//
// Concurrency: the simulation is single-goroutine, and everything the
// recorder does on the hot path stays on that goroutine. The only
// cross-goroutine surface is the published Exposition, handed off through
// atomics: an HTTP handler calls RequestPublish, the next sampler tick
// renders a snapshot on the sim goroutine, and the handler picks it up
// with Latest.
package flight

import (
	"bytes"
	"sync"
	"sync/atomic"

	"tcn/internal/obs"
	"tcn/internal/sim"
	"tcn/internal/trace"
)

// Config parameterizes a Recorder. Zero values select the defaults.
type Config struct {
	// SeriesCap is the ring capacity of each series (default 4096
	// points). A series that outgrows it is downsampled, not truncated.
	SeriesCap int
	// Period is the default probe polling period (default 100 us).
	Period sim.Time
	// SpanFlows bounds the flow-span reservoir (default 4096 flows).
	SpanFlows int
	// Seed feeds the reservoir sampler (default 1). It is independent of
	// the experiment seed so tracking more flows never perturbs a run.
	Seed int64
	// Registry, if set, is rendered into the Prometheus exposition.
	Registry *obs.Registry
	// Ledger, if set, is rendered into the exposition as JSONL (the
	// /ledger.jsonl endpoint).
	Ledger *trace.Ledger
	// Pipeline, if set, is rendered into the exposition as Chrome
	// trace-event JSON (the /trace.perfetto.json endpoint).
	Pipeline *trace.Pipeline
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.SeriesCap == 0 {
		c.SeriesCap = 4096
	}
	if c.Period == 0 {
		c.Period = 100 * sim.Microsecond
	}
	if c.SpanFlows == 0 {
		c.SpanFlows = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Recorder owns the series, probes, and flow spans of one tcnsim
// invocation. One recorder may span several experiment runs (each with its
// own engine); series names carry the run label.
type Recorder struct {
	cfg Config

	series []*Series
	byName map[string]*Series

	tickers []*ticker

	spans *SpanTracker

	// Exposition handoff (see package comment).
	want     atomic.Bool
	pub      atomic.Pointer[Exposition]
	gen      atomic.Uint64
	done     chan struct{}
	sealOnce sync.Once
}

// ticker drives every probe sharing one (engine, period) pair from a
// single self-rescheduling event, so instrumenting hundreds of ports adds
// one event per period, not one per probe.
type ticker struct {
	eng    *sim.Engine
	period sim.Time
	probes []tickProbe
}

// tickProbe pairs a probe function with its destination series.
type tickProbe struct {
	s  *Series
	fn func(now sim.Time) float64
}

// New returns an empty recorder.
func New(cfg Config) *Recorder {
	return &Recorder{
		cfg:    cfg.withDefaults(),
		byName: map[string]*Series{},
		done:   make(chan struct{}),
	}
}

// Registry returns the registry rendered into /metrics (may be nil).
func (r *Recorder) Registry() *obs.Registry { return r.cfg.Registry }

// Series returns the series registered under name, creating it with the
// default ring capacity on first use. Use it directly for event-driven
// telemetry (estimator samples, per-event values); use Probe for periodic
// polling.
func (r *Recorder) Series(name string) *Series {
	return r.SeriesCap(name, r.cfg.SeriesCap)
}

// SeriesCap is Series with an explicit ring capacity, applied only on
// first use (a series' capacity is fixed for its lifetime).
func (r *Recorder) SeriesCap(name string, capacity int) *Series {
	if s, ok := r.byName[name]; ok {
		return s
	}
	s := newSeries(name, capacity)
	r.byName[name] = s
	r.series = append(r.series, s)
	return s
}

// Probe registers fn to be polled every period on eng, recording into the
// series registered under name. period <= 0 selects the recorder default.
// The probe starts at the engine's current instant and samples forever;
// since experiments run with RunUntil, the pending tick past the deadline
// simply never fires.
func (r *Recorder) Probe(eng *sim.Engine, name string, period sim.Time, fn func(now sim.Time) float64) *Series {
	if period <= 0 {
		period = r.cfg.Period
	}
	s := r.Series(name)
	for _, t := range r.tickers {
		if t.eng == eng && t.period == period {
			t.probes = append(t.probes, tickProbe{s: s, fn: fn})
			return s
		}
	}
	t := &ticker{eng: eng, period: period}
	t.probes = append(t.probes, tickProbe{s: s, fn: fn})
	r.tickers = append(r.tickers, t)
	var tick func()
	tick = func() {
		now := eng.Now()
		for _, p := range t.probes {
			p.s.Record(now, p.fn(now))
		}
		r.publishIfRequested()
		eng.After(period, tick)
	}
	eng.After(0, tick)
	return s
}

// Spans returns the recorder's flow-span tracker, creating it on first
// use.
func (r *Recorder) Spans() *SpanTracker {
	if r.spans == nil {
		r.spans = NewSpanTracker(r.cfg.SpanFlows, r.cfg.Seed)
	}
	return r.spans
}

// AllSeries returns every series sorted by name (they are registered in
// deterministic order and lookups go through the byName map, so the slice
// order already is the registration order; exports sort explicitly).
func (r *Recorder) AllSeries() []*Series {
	out := make([]*Series, len(r.series))
	copy(out, r.series)
	sortSeriesByName(out)
	return out
}

// Exposition is one published snapshot of the recorder's state, rendered
// on the simulation goroutine so it is internally consistent.
type Exposition struct {
	// Gen increases with every publication.
	Gen uint64
	// Prom is the Prometheus text-format rendering of the registry
	// (empty when the recorder has no registry).
	Prom []byte
	// Timeseries is the CSV export of every series.
	Timeseries []byte
	// Flows is the CSV export of the tracked flow spans.
	Flows []byte
	// Ledger is the JSONL export of the decision ledger (empty when the
	// recorder has no ledger).
	Ledger []byte
	// Perfetto is the Chrome trace-event JSON export of the pipeline
	// recorder (empty when the recorder has no pipeline).
	Perfetto []byte
}

// RequestPublish asks the simulation goroutine to render a fresh
// Exposition at its next sampler tick. Safe to call from any goroutine.
func (r *Recorder) RequestPublish() { r.want.Store(true) }

// Latest returns the most recently published Exposition, or nil if none
// has been rendered yet. Safe to call from any goroutine.
func (r *Recorder) Latest() *Exposition { return r.pub.Load() }

// Done is closed by Seal, after which Latest returns the final state.
func (r *Recorder) Done() <-chan struct{} { return r.done }

// publishIfRequested renders a snapshot if a consumer asked for one since
// the last tick. Runs on the simulation goroutine.
func (r *Recorder) publishIfRequested() {
	if r.want.CompareAndSwap(true, false) {
		r.publish()
	}
}

// publish renders and stores a fresh Exposition.
func (r *Recorder) publish() {
	e := &Exposition{Gen: r.gen.Add(1)}
	var buf bytes.Buffer
	if r.cfg.Registry != nil {
		// Rendering a registry cannot fail into a bytes.Buffer.
		_ = WriteProm(&buf, r.cfg.Registry)
		e.Prom = append([]byte(nil), buf.Bytes()...)
		buf.Reset()
	}
	_ = r.WriteTimeseriesCSV(&buf)
	e.Timeseries = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	_ = r.Spans().WriteCSV(&buf)
	e.Flows = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if r.cfg.Ledger != nil {
		// Rendering into a bytes.Buffer cannot fail.
		_ = r.cfg.Ledger.WriteJSONL(&buf)
		e.Ledger = append([]byte(nil), buf.Bytes()...)
		buf.Reset()
	}
	if r.cfg.Pipeline != nil {
		_ = r.cfg.Pipeline.WriteJSON(&buf)
		e.Perfetto = append([]byte(nil), buf.Bytes()...)
	}
	r.pub.Store(e)
}

// Seal publishes the final state and closes Done. Call once after the
// last run completes; afterwards the recorder is read-only and the final
// Exposition serves every consumer. Idempotent.
func (r *Recorder) Seal() {
	r.sealOnce.Do(func() {
		r.want.Store(false)
		r.publish()
		close(r.done)
	})
}
