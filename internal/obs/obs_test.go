package obs

import (
	"bytes"
	"strings"
	"testing"

	"tcn/internal/sim"
	"tcn/internal/testutil"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b.c")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	if r.Counter("a.b.c") != c {
		t.Fatal("Counter not idempotent per name")
	}
	g := r.Gauge("a.b.g")
	g.Set(1.5)
	g.Set(-2)
	if !testutil.Eq(g.Value(), -2) {
		t.Fatalf("gauge = %v, want last write", g.Value())
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind collision")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestSnapshotOrderingDeterministic(t *testing.T) {
	// Two registries populated in opposite orders must snapshot to
	// byte-identical JSON: ordering comes from names, not insertion.
	build := func(reverse bool) []byte {
		r := NewRegistry()
		names := []string{"p0.tx", "p1.tx", "a.tx", "z.tx"}
		if reverse {
			for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
				names[i], names[j] = names[j], names[i]
			}
		}
		for i, n := range names {
			r.Counter(n).Add(int64(i * i))
			r.Counter(n) // idempotent re-lookup must not disturb state
		}
		// Counter values depend on insertion position; fix them so both
		// orders describe the same state.
		for _, n := range names {
			c := r.Counter(n)
			c.Add(100 - c.Value())
		}
		r.Gauge("g.one").Set(3.25)
		h := r.Histogram("h.one")
		for v := int64(0); v < 1000; v += 7 {
			h.Record(v)
		}
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(false), build(true)
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", a, b)
	}
}

func TestSnapshotTextPortBlock(t *testing.T) {
	r := NewRegistry()
	p := NewPortObs(r, "sw.p2", 2)
	p.Enqueue(0, 1500, 1500)
	p.Enqueue(0, 1500, 3000)
	p.Transmit(0, 1500, 120*sim.Microsecond, true)
	p.Drop(1, 900)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"qdisc sw.p2: queues 2",
		"Sent 1500 bytes 1 pkt (dropped 1, marked 1)",
		"q0: enq 2 pkt 3000 bytes",
		"sojourn p50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text view missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "other instruments") {
		t.Errorf("port-owned instruments leaked into the loose listing:\n%s", out)
	}
}

func TestSnapshotTextLooseInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("marker.tcn.marks").Add(7)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "counter marker.tcn.marks 7") {
		t.Fatalf("loose counter not rendered:\n%s", buf.String())
	}
}

func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	p := NewPortObs(r, "p", 1)
	if n := testing.AllocsPerRun(100, func() {
		c.Add(3)
		g.Set(1.5)
		h.Record(123456)
		p.Enqueue(0, 1500, 4500)
		p.Transmit(0, 1500, 250*sim.Microsecond, true)
		p.Drop(0, 1500)
	}); !testutil.Eq(n, 0) {
		t.Fatalf("hot path allocates %v times per op, want 0", n)
	}
}
