package metrics

import (
	"sort"

	"tcn/internal/pkt"
)

// SumAndSumSq folds Σx and Σx² over the per-flow values in ascending
// FlowID order. Floating-point addition is not associative, so folding in
// map iteration order would let identical seeds produce different
// rounding — the determinism bug the tcnlint maporder rule exists to
// catch. Every fairness/goodput aggregation over a per-flow map must go
// through this helper (or an equivalent sorted fold).
func SumAndSumSq(byFlow map[pkt.FlowID]float64) (sum, sumSq float64) {
	ids := make([]pkt.FlowID, 0, len(byFlow))
	//tcnlint:ordered keys are sorted before any float accumulation
	for id := range byFlow {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		x := byFlow[id]
		sum += x
		sumSq += x * x
	}
	return sum, sumSq
}

// JainFairness returns Jain's fairness index (Σx)²/(n·Σx²) over the
// per-flow values, with n the population size (which may exceed
// len(byFlow) when some flows delivered nothing). Returns 0 for an empty
// or all-zero population.
func JainFairness(byFlow map[pkt.FlowID]float64, n int) float64 {
	sum, sumSq := SumAndSumSq(byFlow)
	if n <= 0 || sumSq <= 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}
