package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"testing"
)

// tdLCG is a tiny deterministic generator for test sample streams; the
// simclock lint keeps wall-clock seeding out, and determinism here means
// failures reproduce exactly.
type tdLCG uint64

func (g *tdLCG) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(uint64(*g)>>11) / float64(1<<53)
}

// fctLikeSamples draws n samples from a mixture shaped like the fig10/
// fig11 FCT distributions: a dense body of small-flow completions in the
// tens-to-hundreds of microseconds and a heavy tail of queue-building
// completions out to hundreds of milliseconds (nanosecond units).
func fctLikeSamples(g *tdLCG, n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		u := g.next()
		var x float64
		switch {
		case u < 0.70: // small flows: ~40–400 µs
			x = 40e3 + 360e3*g.next()
		case u < 0.95: // mid flows: ~0.4–20 ms
			x = 400e3 + 19.6e6*g.next()
		default: // tail: exponential-ish out to ~300 ms
			x = 20e6 * math.Exp(2.7*g.next())
		}
		out = append(out, x)
	}
	return out
}

// exactQuantile is the reference: midpoint-rank interpolation over the
// sorted sample slice (matches the digest's midpoint convention).
func exactQuantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	idx := q * float64(n-1)
	lo := int(idx)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := idx - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// rankOf returns the fraction of samples <= x, the quantity t-digest
// bounds: its guarantee is on rank error, not value error.
func rankOf(sorted []float64, x float64) float64 {
	i := sort.SearchFloat64s(sorted, x)
	return float64(i) / float64(len(sorted))
}

func TestTDigestQuantileRankError(t *testing.T) {
	g := tdLCG(1)
	samples := fctLikeSamples(&g, 200_000)
	d := NewTDigest(DefaultCompression)
	for _, x := range samples {
		d.Add(x)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)

	// δ=200 gives ~1/δ worst-case rank error at the median and far
	// tighter at the tails (the k1 scale concentrates centroids there).
	// The documented bound the FCT collectors rely on: ≤0.5% rank error
	// everywhere, ≤0.1% at P99.
	cases := []struct {
		q, maxRankErr float64
	}{
		{0.50, 0.005},
		{0.90, 0.003},
		{0.99, 0.001},
		{0.999, 0.001},
	}
	for _, c := range cases {
		est := d.Quantile(c.q)
		gotRank := rankOf(sorted, est)
		if err := math.Abs(gotRank - c.q); err > c.maxRankErr {
			t.Errorf("q=%v: estimate %.0f lands at rank %.5f (rank error %.5f > %.5f)",
				c.q, est, gotRank, err, c.maxRankErr)
		}
		// Sanity-check value error too: the FCT distributions are smooth
		// enough that bounded rank error implies small relative value
		// error at the quantiles the experiments report.
		exact := exactQuantile(sorted, c.q)
		if rel := math.Abs(est-exact) / exact; rel > 0.05 {
			t.Errorf("q=%v: estimate %.0f vs exact %.0f (relative error %.4f > 5%%)",
				c.q, est, exact, rel)
		}
	}
}

func TestTDigestExtremesExact(t *testing.T) {
	g := tdLCG(7)
	d := NewTDigest(100)
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < 50_000; i++ {
		x := g.next() * 1e9
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		d.Add(x)
	}
	if d.Quantile(0) != min || d.Min() != min { //tcnlint:floatexact min is stored, not estimated
		t.Fatalf("min: got %v/%v want %v", d.Quantile(0), d.Min(), min)
	}
	if d.Quantile(1) != max || d.Max() != max { //tcnlint:floatexact max is stored, not estimated
		t.Fatalf("max: got %v/%v want %v", d.Quantile(1), d.Max(), max)
	}
	if d.Count() != 50_000 { //tcnlint:floatexact integer-valued weight
		t.Fatalf("count %v", d.Count())
	}
}

func TestTDigestEmptyAndDegenerate(t *testing.T) {
	d := NewTDigest(100)
	if !math.IsNaN(d.Quantile(0.5)) {
		t.Fatalf("empty digest quantile = %v, want NaN", d.Quantile(0.5))
	}
	d.Add(math.NaN()) // ignored
	d.AddWeighted(5, -1)
	d.AddWeighted(5, 0)
	if d.Count() != 0 { //tcnlint:floatexact nothing valid was added
		t.Fatalf("count after invalid adds: %v", d.Count())
	}
	d.Add(42)
	for q := 0.0; q <= 1.0; q += 0.25 {
		if d.Quantile(q) != 42 { //tcnlint:floatexact single sample: every quantile is it
			t.Fatalf("single-sample quantile(%v) = %v", q, d.Quantile(q))
		}
	}
}

// TestTDigestMergeAllEmptyInputs pins MergeAll's degenerate cases: no
// inputs, nil entries, and empty digests must all yield a well-formed
// empty result, and mixing them with one real digest must not disturb it.
func TestTDigestMergeAllEmptyInputs(t *testing.T) {
	if got := MergeAll(100); got.Count() != 0 { //tcnlint:floatexact nothing merged
		t.Fatalf("MergeAll() count = %v, want 0", got.Count())
	}
	if q := MergeAll(100).Quantile(0.99); !math.IsNaN(q) {
		t.Fatalf("empty merge quantile = %v, want NaN", q)
	}
	empty := NewTDigest(100)
	if got := MergeAll(100, nil, empty, nil); got.Count() != 0 { //tcnlint:floatexact nothing merged
		t.Fatalf("MergeAll(nil, empty, nil) count = %v, want 0", got.Count())
	}
	real := NewTDigest(100)
	for i := 1; i <= 100; i++ {
		real.Add(float64(i))
	}
	merged := MergeAll(100, nil, empty, real, NewTDigest(50), nil)
	if merged.Count() != real.Count() { //tcnlint:floatexact counts must match exactly
		t.Fatalf("count %v, want %v", merged.Count(), real.Count())
	}
	if merged.Min() != 1 || merged.Max() != 100 { //tcnlint:floatexact extremes are exact
		t.Fatalf("extremes [%v, %v], want [1, 100]", merged.Min(), merged.Max())
	}
	if q := merged.Quantile(0.5); math.Abs(q-50.5) > 5 {
		t.Fatalf("median %v too far from 50.5", q)
	}
}

func TestTDigestCentroidBound(t *testing.T) {
	for _, compression := range []float64{50, 100, DefaultCompression} {
		g := tdLCG(3)
		d := NewTDigest(compression)
		for i := 0; i < 500_000; i++ {
			d.Add(g.next() * 1e6)
		}
		bound := 2*int(math.Ceil(compression)) + 32
		if got := d.CentroidCount(); got > bound {
			t.Errorf("δ=%v: %d centroids exceeds preallocated bound %d", compression, got, bound)
		}
	}
}

// TestTDigestMergeOrderInvariance is the determinism contract the sweep
// runners depend on: cells finish in a worker-count-dependent order, so
// the merged campaign digest must not care how its inputs are arranged.
func TestTDigestMergeOrderInvariance(t *testing.T) {
	g := tdLCG(11)
	const parts = 7
	digests := make([]*TDigest, parts)
	for i := range digests {
		digests[i] = NewTDigest(DefaultCompression)
		// Uneven part sizes, overlapping ranges, and duplicated values
		// across parts — the cases where an order-sensitive merge drifts.
		for j := 0; j < 1000*(i+1); j++ {
			digests[i].Add(fctLikeSamples(&g, 1)[0])
		}
		digests[i].Add(123456) // identical sample in every part
	}

	perms := [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{6, 5, 4, 3, 2, 1, 0},
		{3, 0, 6, 1, 5, 2, 4},
		{1, 1, 0, 2, 3, 4, 5, 6}, // duplicate entry: same centroids twice differs...
	}
	// ...so only compare the true permutations; the duplicated case just
	// must not panic and must see doubled weight for part 1.
	var ref []byte
	for i, p := range perms[:3] {
		in := make([]*TDigest, 0, len(p)+1)
		for _, idx := range p {
			in = append(in, digests[idx])
		}
		in = append(in, nil) // nil entries are skipped
		m := MergeAll(DefaultCompression, in...)
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = b
			continue
		}
		if !bytes.Equal(ref, b) {
			t.Fatalf("merge order %v produced different digest:\n%s\nvs\n%s", p, ref, b)
		}
	}

	m := MergeAll(DefaultCompression, digests[perms[3][0]], digests[perms[3][1]])
	if want := 2 * digests[1].Count(); m.Count() != want { //tcnlint:floatexact integer-valued weights
		t.Fatalf("duplicated input: count %v want %v", m.Count(), want)
	}
}

func TestTDigestMergeMatchesSingle(t *testing.T) {
	// A merge of shards must estimate like a single digest over the
	// union — same rank-error budget, just one extra compression pass.
	g := tdLCG(19)
	samples := fctLikeSamples(&g, 120_000)
	single := NewTDigest(DefaultCompression)
	shards := make([]*TDigest, 8)
	for i := range shards {
		shards[i] = NewTDigest(DefaultCompression)
	}
	for i, x := range samples {
		single.Add(x)
		shards[i%len(shards)].Add(x)
	}
	merged := MergeAll(DefaultCompression, shards...)
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		mRank := rankOf(sorted, merged.Quantile(q))
		if err := math.Abs(mRank - q); err > 0.005 {
			t.Errorf("merged q=%v: rank error %.5f > 0.005", q, err)
		}
	}
	if merged.Count() != single.Count() { //tcnlint:floatexact integer-valued weights
		t.Fatalf("merged count %v, single %v", merged.Count(), single.Count())
	}
}

func TestTDigestJSONDeterministic(t *testing.T) {
	build := func() *TDigest {
		g := tdLCG(23)
		d := NewTDigest(100)
		for i := 0; i < 30_000; i++ {
			d.Add(g.next() * 1e6)
		}
		return d
	}
	a, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical sample streams marshaled differently")
	}
	empty, err := json.Marshal(NewTDigest(100))
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(empty, &parsed); err != nil {
		t.Fatalf("empty digest JSON is not valid JSON (±Inf leak?): %v", err)
	}
}

func TestTDigestAddNoAllocs(t *testing.T) {
	g := tdLCG(29)
	d := NewTDigest(DefaultCompression)
	for i := 0; i < 1<<14; i++ { // warm past the first flushes
		d.Add(g.next() * 1e6)
	}
	allocs := testing.AllocsPerRun(5000, func() {
		d.Add(g.next() * 1e6)
	})
	if allocs != 0 { //tcnlint:floatexact the pin is exactly zero
		t.Fatalf("Add allocates: %v allocs/op", allocs)
	}
}
