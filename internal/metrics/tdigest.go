package metrics

import (
	"encoding/json"
	"math"
	"slices"

	"tcn/internal/digest"
)

// TDigest is a merging t-digest (Dunning & Ertl) over float64 samples,
// used to stream quantile sketches of per-flow FCT distributions so that
// sweep campaigns stay bounded-memory at millions of flows (ROADMAP
// item 5). It uses the k1 scale function k(q) = δ/(2π)·asin(2q−1), which
// concentrates centroid resolution at the tails — exactly where the
// paper's P99 small-flow metric lives.
//
// Determinism contract: Add/flush/Quantile are deterministic functions of
// the sample sequence, and MergeAll is invariant to the order of its
// input digests (all centroids are gathered and re-sorted under a total
// order before one compression pass). Centroid ordering breaks mean ties
// by weight, so equal samples cannot reorder results.
//
// The hot path is allocation-free: Add appends into a fixed-capacity
// buffer and flushes through preallocated scratch space, mirroring the
// zero-alloc rule the engine and pool counters follow (pinned by
// AllocsPerRun in bench_test.go). A TDigest is single-owner like the
// engine that feeds it; cross-worker aggregation happens only through
// MergeAll over finished digests.
type TDigest struct {
	compression float64

	centroids []centroid // merged, sorted by (mean, weight)
	buf       []centroid // unmerged samples
	work      []centroid // scratch for the sort+compress pass

	count    float64 // total weight in centroids (excludes buf)
	bufCount float64
	min, max float64
}

type centroid struct {
	mean   float64
	weight float64
}

// cmpCentroid is the total order used everywhere centroids are sorted:
// by mean, ties broken by weight. A total order is what makes MergeAll
// order-invariant — identical (mean, weight) pairs are interchangeable.
func cmpCentroid(a, b centroid) int {
	switch {
	case a.mean < b.mean:
		return -1
	case a.mean > b.mean:
		return 1
	case a.weight < b.weight:
		return -1
	case a.weight > b.weight:
		return 1
	}
	return 0
}

// DefaultCompression is the δ used by the FCT collectors: ~0.1–0.5%
// relative quantile error at P99 on the fig10/fig11 FCT distributions
// (bounded by the t-digest accuracy tests in tdigest_test.go).
const DefaultCompression = 200

// NewTDigest returns an empty digest with the given compression δ
// (larger δ → more centroids → tighter quantiles). All internal buffers
// are preallocated here so Add never allocates.
func NewTDigest(compression float64) *TDigest {
	if compression < 20 {
		compression = 20
	}
	maxCentroids := 2*int(math.Ceil(compression)) + 32
	bufCap := 4 * maxCentroids
	return &TDigest{
		compression: compression,
		centroids:   make([]centroid, 0, maxCentroids+bufCap),
		buf:         make([]centroid, 0, bufCap),
		work:        make([]centroid, 0, maxCentroids+bufCap),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add records one sample with weight 1.
func (t *TDigest) Add(x float64) { t.AddWeighted(x, 1) }

// AddWeighted records a sample with the given positive weight. NaN
// samples and non-positive weights are ignored.
func (t *TDigest) AddWeighted(x, w float64) {
	if math.IsNaN(x) || w <= 0 {
		return
	}
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	t.buf = append(t.buf, centroid{mean: x, weight: w}) //tcnlint:hotpath buf is preallocated to the flush threshold; append stays within cap
	t.bufCount += w
	if len(t.buf) == cap(t.buf) {
		t.flush()
	}
}

// Count returns the total weight recorded so far.
func (t *TDigest) Count() float64 { return t.count + t.bufCount }

// Min returns the smallest sample seen, or +Inf if empty.
func (t *TDigest) Min() float64 { return t.min }

// Max returns the largest sample seen, or -Inf if empty.
func (t *TDigest) Max() float64 { return t.max }

// CentroidCount returns the current number of merged centroids (after
// flushing pending samples); exposed for the memory-bound tests.
func (t *TDigest) CentroidCount() int {
	t.flush()
	return len(t.centroids)
}

// flush sorts the pending buffer into the merged centroids and runs one
// compression pass. Allocation-free while the output fits the
// preallocated scratch (the compression bound guarantees it does).
func (t *TDigest) flush() {
	if len(t.buf) == 0 {
		return
	}
	t.work = t.work[:0]
	t.work = append(t.work, t.centroids...) //tcnlint:hotpath work is preallocated scratch; the compression bound keeps it within cap
	t.work = append(t.work, t.buf...)       //tcnlint:hotpath work is preallocated scratch; the compression bound keeps it within cap
	slices.SortFunc(t.work, cmpCentroid)
	total := t.count + t.bufCount
	t.centroids = compressInto(t.centroids[:0], t.work, total, t.compression)
	t.count = total
	t.buf = t.buf[:0]
	t.bufCount = 0
}

// compressInto merges the sorted centroid stream `in` (total weight
// `total`) into `out` under the k1 size bound for compression δ. `in`
// must be sorted by cmpCentroid; the result is too.
func compressInto(out, in []centroid, total, compression float64) []centroid {
	if len(in) == 0 {
		return out
	}
	sigma := in[0]
	wSoFar := 0.0
	qLimit := k1Inv(k1(0, compression)+1, compression)
	for _, c := range in[1:] {
		q := (wSoFar + sigma.weight + c.weight) / total
		if q <= qLimit {
			// Fold c into sigma; the weighted mean is evaluated in
			// stream order, which the caller's sort made deterministic.
			sigma.mean += (c.mean - sigma.mean) * c.weight / (sigma.weight + c.weight)
			sigma.weight += c.weight
			continue
		}
		out = append(out, sigma)
		wSoFar += sigma.weight
		qLimit = k1Inv(k1(wSoFar/total, compression)+1, compression)
		sigma = c
	}
	return append(out, sigma)
}

// k1 is the t-digest scale function k(q) = δ/(2π)·asin(2q−1).
func k1(q, compression float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// k1Inv inverts k1: q = (sin(2πk/δ)+1)/2, clamped to [0, 1].
func k1Inv(k, compression float64) float64 {
	x := 2 * math.Pi * k / compression
	if x < -math.Pi/2 {
		return 0
	}
	if x > math.Pi/2 {
		return 1
	}
	return (math.Sin(x) + 1) / 2
}

// Quantile returns the estimated q-quantile (q in [0, 1]) by linear
// interpolation between centroid midpoints, clamped to the exact
// min/max. Returns NaN on an empty digest.
func (t *TDigest) Quantile(q float64) float64 {
	t.flush()
	n := len(t.centroids)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return t.min
	}
	if q >= 1 {
		return t.max
	}
	target := q * t.count
	prevMean, prevPos := t.min, 0.0
	cum := 0.0
	for i := 0; i < n; i++ {
		c := t.centroids[i]
		pos := cum + c.weight/2
		if target < pos {
			if pos > prevPos {
				frac := (target - prevPos) / (pos - prevPos)
				return prevMean + frac*(c.mean-prevMean)
			}
			return c.mean
		}
		cum += c.weight
		prevMean, prevPos = c.mean, pos
	}
	if t.count > prevPos {
		frac := (target - prevPos) / (t.count - prevPos)
		return prevMean + frac*(t.max-prevMean)
	}
	return t.max
}

// MergeAll combines any number of digests into a fresh one with the
// given compression. The result is invariant to the order of ds: every
// centroid (including pending buffers) is gathered, sorted under the
// total centroid order, and compressed in a single pass. Nil entries are
// skipped. MergeAll allocates; it is meant for end-of-sweep or
// snapshot-time aggregation, not the per-sample hot path.
func MergeAll(compression float64, ds ...*TDigest) *TDigest {
	out := NewTDigest(compression)
	var all []centroid
	total := 0.0
	for _, d := range ds {
		if d == nil {
			continue
		}
		all = append(all, d.centroids...)
		all = append(all, d.buf...)
		total += d.count + d.bufCount
		if d.min < out.min {
			out.min = d.min
		}
		if d.max > out.max {
			out.max = d.max
		}
	}
	if len(all) == 0 {
		return out
	}
	slices.SortFunc(all, cmpCentroid)
	out.centroids = compressInto(out.centroids[:0], all, total, out.compression)
	out.count = total
	return out
}

// DigestState folds the sketch into a run fingerprint: counts, extrema,
// the merged centroids, and the unmerged buffer. The digest must NOT
// flush — flushing early changes the compression boundaries of later
// flushes, so a fingerprinted run would diverge from a bare one. The raw
// (centroids, buf) pair is itself a deterministic function of the sample
// stream, which is all the fingerprint needs.
func (t *TDigest) DigestState(h *digest.Hash) {
	h.WriteFloat64(t.count)
	h.WriteFloat64(t.bufCount)
	h.WriteFloat64(t.min)
	h.WriteFloat64(t.max)
	h.WriteInt(len(t.centroids))
	for _, c := range t.centroids {
		h.WriteFloat64(c.mean)
		h.WriteFloat64(c.weight)
	}
	h.WriteInt(len(t.buf))
	for _, c := range t.buf {
		h.WriteFloat64(c.mean)
		h.WriteFloat64(c.weight)
	}
}

// tdigestJSON is the deterministic wire form: centroids in sorted order,
// so two byte-identical sample streams marshal byte-identically.
type tdigestJSON struct {
	Compression float64      `json:"compression"`
	Count       float64      `json:"count"`
	Min         float64      `json:"min"`
	Max         float64      `json:"max"`
	Centroids   [][2]float64 `json:"centroids"`
}

// MarshalJSON implements json.Marshaler. The digest is flushed first so
// the output depends only on the recorded samples.
func (t *TDigest) MarshalJSON() ([]byte, error) {
	t.flush()
	j := tdigestJSON{
		Compression: t.compression,
		Count:       t.count,
		Min:         t.min,
		Max:         t.max,
		Centroids:   make([][2]float64, len(t.centroids)),
	}
	if t.count == 0 { //tcnlint:floatexact zero means literally no samples
		j.Min, j.Max = 0, 0 // avoid ±Inf, which JSON cannot carry
	}
	for i, c := range t.centroids {
		j.Centroids[i] = [2]float64{c.mean, c.weight}
	}
	return json.Marshal(j)
}
