package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"tcn/internal/sim"
	"tcn/internal/testutil"
)

func TestFCTBuckets(t *testing.T) {
	c := NewFCTCollector()
	c.Record(FlowRecord{Size: 50_000, FCT: 2 * sim.Millisecond, Timeouts: 1}) // small
	c.Record(FlowRecord{Size: 100_000, FCT: 4 * sim.Millisecond})             // small (inclusive)
	c.Record(FlowRecord{Size: 1_000_000, FCT: 20 * sim.Millisecond})          // mid
	c.Record(FlowRecord{Size: 10_000_000, FCT: 100 * sim.Millisecond})        // mid (boundary)
	c.Record(FlowRecord{Size: 20_000_000, FCT: sim.Second, Timeouts: 2})      // large
	st := c.Stats()
	if st.Flows != 5 || st.SmallFlows != 2 || st.MidFlows != 2 || st.LargeFlows != 1 {
		t.Fatalf("bucket counts: %+v", st)
	}
	if st.AvgSmall != 3*sim.Millisecond {
		t.Fatalf("avg small %v", st.AvgSmall)
	}
	if st.AvgLarge != sim.Second {
		t.Fatalf("avg large %v", st.AvgLarge)
	}
	if st.AvgMid != 60*sim.Millisecond {
		t.Fatalf("avg mid %v", st.AvgMid)
	}
	if st.Timeouts != 3 || st.TimeoutsSmall != 1 {
		t.Fatalf("timeouts %d/%d", st.Timeouts, st.TimeoutsSmall)
	}
	wantAvg := (2 + 4 + 20 + 100 + 1000) * sim.Millisecond / 5
	if st.AvgAll != wantAvg {
		t.Fatalf("avg all %v, want %v", st.AvgAll, wantAvg)
	}
}

func TestFCTEmptyStats(t *testing.T) {
	st := NewFCTCollector().Stats()
	if st.Flows != 0 || st.AvgAll != 0 || st.P99Small != 0 {
		t.Fatalf("empty stats: %+v", st)
	}
}

func TestFCTRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFCTCollector().Record(FlowRecord{Size: 1, FCT: 0})
}

func TestPercentileNearestRank(t *testing.T) {
	var xs []sim.Time
	for i := 1; i <= 100; i++ {
		xs = append(xs, sim.Time(i))
	}
	if p := PercentileTimes(xs, 0.99); p != 99 {
		t.Fatalf("p99 = %v, want 99", p)
	}
	if p := PercentileTimes(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := PercentileTimes(xs, 1); p != 100 {
		t.Fatalf("p100 = %v", p)
	}
	if p := PercentileTimes(nil, 0.5); p != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []sim.Time{5, 1, 3}
	PercentileTimes(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("input mutated")
	}
}

// Property: the percentile lies within the sample's min/max and is
// monotone in q.
func TestPropertyPercentileBounds(t *testing.T) {
	f := func(raw []uint32, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		var xs []sim.Time
		lo, hi := sim.Time(1<<62), sim.Time(0)
		for _, v := range raw {
			x := sim.Time(v)
			xs = append(xs, x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		a, b := clamp01(q1), clamp01(q2)
		if a > b {
			a, b = b, a
		}
		pa, pb := PercentileTimes(xs, a), PercentileTimes(xs, b)
		return pa >= lo && pb <= hi && pa <= pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func clamp01(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func TestNormalize(t *testing.T) {
	base := FCTStats{
		AvgAll:   100 * sim.Nanosecond,
		AvgSmall: 10 * sim.Nanosecond,
		P99Small: 50 * sim.Nanosecond,
		AvgLarge: 1000 * sim.Nanosecond,
	}
	s := FCTStats{
		AvgAll:   150 * sim.Nanosecond,
		AvgSmall: 30 * sim.Nanosecond,
		P99Small: 200 * sim.Nanosecond,
		AvgLarge: 1000 * sim.Nanosecond,
	}
	n := s.Normalize(base)
	if !testutil.Eq(n.AvgAll, 1.5) || !testutil.Eq(n.AvgSmall, 3) ||
		!testutil.Eq(n.P99Small, 4) || !testutil.Eq(n.AvgLarge, 1) {
		t.Fatalf("normalized: %+v", n)
	}
	if z := s.Normalize(FCTStats{}); !testutil.Eq(z.AvgAll, 0) {
		t.Fatal("zero baseline should normalize to 0")
	}
}

func TestGoodputMeterBinning(t *testing.T) {
	g := NewGoodputMeter(2, 100*sim.Millisecond)
	g.Add(50*sim.Millisecond, 0, 1_250_000)  // bin 0
	g.Add(150*sim.Millisecond, 0, 2_500_000) // bin 1
	g.Add(150*sim.Millisecond, 1, 1_250_000)
	s := g.SeriesMbps(0)
	if len(s) != 2 {
		t.Fatalf("series length %d", len(s))
	}
	if !testutil.Eq(s[0], 100) || !testutil.Eq(s[1], 200) {
		t.Fatalf("series %v, want [100 200]", s)
	}
	if g.TotalBytes(0) != 3_750_000 {
		t.Fatal("total bytes")
	}
	// Out-of-range classes are ignored, not panics.
	g.Add(0, 5, 100)
	g.Add(0, -1, 100)
}

// TestGoodputAccessorsBoundsChecked pins the accessor contract: the
// read side treats out-of-range classes the same way Add does —
// silently, with zero values — instead of panicking.
func TestGoodputAccessorsBoundsChecked(t *testing.T) {
	g := NewGoodputMeter(2, 100*sim.Millisecond)
	g.Add(50*sim.Millisecond, 0, 1_250_000)
	for _, class := range []int{-1, 2, 100} {
		if s := g.SeriesMbps(class); s != nil {
			t.Errorf("SeriesMbps(%d) = %v, want nil", class, s)
		}
		if n := g.TotalBytes(class); n != 0 {
			t.Errorf("TotalBytes(%d) = %d, want 0", class, n)
		}
		if avg := g.AvgMbpsBetween(class, 0, sim.Second); !testutil.Eq(avg, 0) {
			t.Errorf("AvgMbpsBetween(%d) = %v, want 0", class, avg)
		}
	}
	// In-range classes still work.
	if g.TotalBytes(0) != 1_250_000 {
		t.Fatal("in-range accessor broken by bounds check")
	}
}

func TestGoodputAvgBetweenWholeBins(t *testing.T) {
	g := NewGoodputMeter(1, 100*sim.Millisecond)
	for i := 0; i < 10; i++ {
		g.Add(sim.Time(i)*100*sim.Millisecond+sim.Millisecond, 0, 1_250_000) // 100 Mbps each bin
	}
	// Asking for [250ms, 1s] must align inward to bins [3,10): still
	// exactly 100 Mbps since all bins are equal.
	if avg := g.AvgMbpsBetween(0, 250*sim.Millisecond, sim.Second); !testutil.Eq(avg, 100) {
		t.Fatalf("avg %v, want 100", avg)
	}
	if avg := g.AvgMbpsBetween(0, sim.Second, sim.Second); !testutil.Eq(avg, 0) {
		t.Fatal("empty window should be 0")
	}
}
