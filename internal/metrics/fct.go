// Package metrics collects the quantities the paper reports: flow
// completion time statistics broken down by the paper's size buckets,
// per-service goodput time series, buffer occupancy traces, and generic
// percentile helpers.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"tcn/internal/digest"
	"tcn/internal/sim"
)

// The paper's flow size buckets (§6, "Performance metric").
const (
	// SmallFlowMax bounds small flows: (0, 100 KB].
	SmallFlowMax = 100_000
	// LargeFlowMin bounds large flows: (10 MB, ∞).
	LargeFlowMin = 10_000_000
)

// FlowRecord is one completed flow.
type FlowRecord struct {
	Size     int64
	FCT      sim.Time
	Class    uint8
	Timeouts int
}

// FCTCollector accumulates completed flows. It has two modes:
//
//   - Exact (NewFCTCollector): every FlowRecord is retained and Stats
//     sorts the small-flow sample for an exact nearest-rank P99. Memory
//     grows with the flow count; the determinism harness uses this mode
//     to compare per-flow records across runs.
//   - Streaming (NewStreamingFCTCollector): records are folded into
//     running integer sums plus a t-digest of small-flow FCTs, so memory
//     stays bounded at millions of flows. Averages and counts are
//     bit-exact (int64 sums are commutative); only P99Small becomes a
//     digest estimate, within the quantile error documented on TDigest.
type FCTCollector struct {
	records   []FlowRecord
	streaming bool

	flows                              int
	sumAll, sumSmall, sumMid, sumLarge sim.Time
	smallFlows, midFlows, largeFlows   int
	timeouts, timeoutsSmall            int
	small                              *TDigest
}

// NewFCTCollector returns an empty collector in exact mode.
func NewFCTCollector() *FCTCollector { return &FCTCollector{} }

// NewStreamingFCTCollector returns a collector that aggregates into
// running sums and a small-flow t-digest instead of retaining records.
func NewStreamingFCTCollector(compression float64) *FCTCollector {
	return &FCTCollector{streaming: true, small: NewTDigest(compression)}
}

// Streaming reports whether the collector discards per-flow records.
func (c *FCTCollector) Streaming() bool { return c.streaming }

// Record adds one completed flow. The running integer tallies are kept in
// both modes (exact-mode Stats still recomputes from the records; the
// tallies exist so the run fingerprint reacts to every completion), but
// the t-digest only accrues in streaming mode.
func (c *FCTCollector) Record(r FlowRecord) {
	if r.FCT <= 0 {
		panic(fmt.Sprintf("metrics: non-positive FCT %v for flow of %d bytes", r.FCT, r.Size))
	}
	c.flows++
	c.sumAll += r.FCT
	c.timeouts += r.Timeouts
	switch {
	case r.Size <= SmallFlowMax:
		c.smallFlows++
		c.sumSmall += r.FCT
		c.timeoutsSmall += r.Timeouts
		if c.streaming {
			c.small.Add(float64(r.FCT))
		}
	case r.Size > LargeFlowMin:
		c.largeFlows++
		c.sumLarge += r.FCT
	default:
		c.midFlows++
		c.sumMid += r.FCT
	}
	if !c.streaming {
		c.records = append(c.records, r) //tcnlint:hotpath exact mode trades one append per completed flow for exact percentiles; streaming mode is the alloc-free path
	}
}

// Count returns the number of recorded flows.
func (c *FCTCollector) Count() int {
	if c.streaming {
		return c.flows
	}
	return len(c.records)
}

// Records returns the raw records (not a copy; do not mutate). Nil in
// streaming mode.
func (c *FCTCollector) Records() []FlowRecord { return c.records }

// SmallDigest returns the small-flow FCT t-digest in streaming mode, nil
// otherwise. The digest is single-owner like the collector; aggregate
// finished digests across cells with MergeAll.
func (c *FCTCollector) SmallDigest() *TDigest { return c.small }

// DigestState folds the collector into a run fingerprint: the flow and
// timeout tallies, the exact integer sums, the retained record count
// (exact mode), and the small-flow sketch (streaming mode). A divergence
// here means the two runs completed different flows — or the same flows
// at different times.
func (c *FCTCollector) DigestState(h *digest.Hash) {
	h.WriteBool(c.streaming)
	h.WriteInt(c.flows)
	h.WriteInt(len(c.records))
	h.WriteInt64(int64(c.sumAll))
	h.WriteInt64(int64(c.sumSmall))
	h.WriteInt64(int64(c.sumMid))
	h.WriteInt64(int64(c.sumLarge))
	h.WriteInt(c.smallFlows)
	h.WriteInt(c.midFlows)
	h.WriteInt(c.largeFlows)
	h.WriteInt(c.timeouts)
	h.WriteInt(c.timeoutsSmall)
	if c.small != nil {
		h.WriteBool(true)
		c.small.DigestState(h)
	} else {
		h.WriteBool(false)
	}
}

// FCTStats is the paper's reporting row: average FCT over all flows,
// average and 99th percentile for small flows, and average for large
// flows, plus the timeout counts §6.2.1 cites.
type FCTStats struct {
	Flows int

	AvgAll   sim.Time
	AvgSmall sim.Time
	P99Small sim.Time
	AvgMid   sim.Time
	AvgLarge sim.Time

	SmallFlows, MidFlows, LargeFlows int
	Timeouts                         int
	TimeoutsSmall                    int
}

// Stats computes the summary over all recorded flows.
func (c *FCTCollector) Stats() FCTStats {
	if c.streaming {
		return c.streamingStats()
	}
	var st FCTStats
	st.Flows = len(c.records)
	var sumAll, sumSmall, sumMid, sumLarge sim.Time
	var small []sim.Time
	for _, r := range c.records {
		sumAll += r.FCT
		st.Timeouts += r.Timeouts
		switch {
		case r.Size <= SmallFlowMax:
			st.SmallFlows++
			sumSmall += r.FCT
			small = append(small, r.FCT)
			st.TimeoutsSmall += r.Timeouts
		case r.Size > LargeFlowMin:
			st.LargeFlows++
			sumLarge += r.FCT
		default:
			st.MidFlows++
			sumMid += r.FCT
		}
	}
	if st.Flows > 0 {
		st.AvgAll = sumAll / sim.Time(st.Flows)
	}
	if st.SmallFlows > 0 {
		st.AvgSmall = sumSmall / sim.Time(st.SmallFlows)
		st.P99Small = PercentileTimes(small, 0.99)
	}
	if st.MidFlows > 0 {
		st.AvgMid = sumMid / sim.Time(st.MidFlows)
	}
	if st.LargeFlows > 0 {
		st.AvgLarge = sumLarge / sim.Time(st.LargeFlows)
	}
	return st
}

// streamingStats assembles FCTStats from the running sums. Every field
// except P99Small is computed from exact integer accumulators and so
// matches exact mode bit-for-bit; P99Small interpolates the digest.
func (c *FCTCollector) streamingStats() FCTStats {
	st := FCTStats{
		Flows:         c.flows,
		SmallFlows:    c.smallFlows,
		MidFlows:      c.midFlows,
		LargeFlows:    c.largeFlows,
		Timeouts:      c.timeouts,
		TimeoutsSmall: c.timeoutsSmall,
	}
	if st.Flows > 0 {
		st.AvgAll = c.sumAll / sim.Time(st.Flows)
	}
	if st.SmallFlows > 0 {
		st.AvgSmall = c.sumSmall / sim.Time(st.SmallFlows)
		st.P99Small = sim.Time(math.Round(c.small.Quantile(0.99)))
	}
	if st.MidFlows > 0 {
		st.AvgMid = c.sumMid / sim.Time(st.MidFlows)
	}
	if st.LargeFlows > 0 {
		st.AvgLarge = c.sumLarge / sim.Time(st.LargeFlows)
	}
	return st
}

// Normalize divides each FCT statistic by the corresponding one in base,
// yielding the paper's "normalized to TCN" presentation. Zero baselines
// normalize to zero.
func (s FCTStats) Normalize(base FCTStats) NormalizedFCT {
	div := func(a, b sim.Time) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	return NormalizedFCT{
		AvgAll:   div(s.AvgAll, base.AvgAll),
		AvgSmall: div(s.AvgSmall, base.AvgSmall),
		P99Small: div(s.P99Small, base.P99Small),
		AvgLarge: div(s.AvgLarge, base.AvgLarge),
	}
}

// NormalizedFCT is an FCT row normalized to a baseline scheme.
type NormalizedFCT struct {
	AvgAll, AvgSmall, P99Small, AvgLarge float64
}

// PercentileTimes returns the q-quantile (0..1) of a sample of times using
// nearest-rank on the sorted sample. It copies the input.
func PercentileTimes(xs []sim.Time, q float64) sim.Time {
	if len(xs) == 0 {
		return 0
	}
	s := make([]sim.Time, len(xs))
	copy(s, xs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
