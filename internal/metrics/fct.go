// Package metrics collects the quantities the paper reports: flow
// completion time statistics broken down by the paper's size buckets,
// per-service goodput time series, buffer occupancy traces, and generic
// percentile helpers.
package metrics

import (
	"fmt"
	"sort"

	"tcn/internal/sim"
)

// The paper's flow size buckets (§6, "Performance metric").
const (
	// SmallFlowMax bounds small flows: (0, 100 KB].
	SmallFlowMax = 100_000
	// LargeFlowMin bounds large flows: (10 MB, ∞).
	LargeFlowMin = 10_000_000
)

// FlowRecord is one completed flow.
type FlowRecord struct {
	Size     int64
	FCT      sim.Time
	Class    uint8
	Timeouts int
}

// FCTCollector accumulates completed flows.
type FCTCollector struct {
	records []FlowRecord
}

// NewFCTCollector returns an empty collector.
func NewFCTCollector() *FCTCollector { return &FCTCollector{} }

// Record adds one completed flow.
func (c *FCTCollector) Record(r FlowRecord) {
	if r.FCT <= 0 {
		panic(fmt.Sprintf("metrics: non-positive FCT %v for flow of %d bytes", r.FCT, r.Size))
	}
	c.records = append(c.records, r)
}

// Count returns the number of recorded flows.
func (c *FCTCollector) Count() int { return len(c.records) }

// Records returns the raw records (not a copy; do not mutate).
func (c *FCTCollector) Records() []FlowRecord { return c.records }

// FCTStats is the paper's reporting row: average FCT over all flows,
// average and 99th percentile for small flows, and average for large
// flows, plus the timeout counts §6.2.1 cites.
type FCTStats struct {
	Flows int

	AvgAll   sim.Time
	AvgSmall sim.Time
	P99Small sim.Time
	AvgMid   sim.Time
	AvgLarge sim.Time

	SmallFlows, MidFlows, LargeFlows int
	Timeouts                         int
	TimeoutsSmall                    int
}

// Stats computes the summary over all recorded flows.
func (c *FCTCollector) Stats() FCTStats {
	var st FCTStats
	st.Flows = len(c.records)
	var sumAll, sumSmall, sumMid, sumLarge sim.Time
	var small []sim.Time
	for _, r := range c.records {
		sumAll += r.FCT
		st.Timeouts += r.Timeouts
		switch {
		case r.Size <= SmallFlowMax:
			st.SmallFlows++
			sumSmall += r.FCT
			small = append(small, r.FCT)
			st.TimeoutsSmall += r.Timeouts
		case r.Size > LargeFlowMin:
			st.LargeFlows++
			sumLarge += r.FCT
		default:
			st.MidFlows++
			sumMid += r.FCT
		}
	}
	if st.Flows > 0 {
		st.AvgAll = sumAll / sim.Time(st.Flows)
	}
	if st.SmallFlows > 0 {
		st.AvgSmall = sumSmall / sim.Time(st.SmallFlows)
		st.P99Small = PercentileTimes(small, 0.99)
	}
	if st.MidFlows > 0 {
		st.AvgMid = sumMid / sim.Time(st.MidFlows)
	}
	if st.LargeFlows > 0 {
		st.AvgLarge = sumLarge / sim.Time(st.LargeFlows)
	}
	return st
}

// Normalize divides each FCT statistic by the corresponding one in base,
// yielding the paper's "normalized to TCN" presentation. Zero baselines
// normalize to zero.
func (s FCTStats) Normalize(base FCTStats) NormalizedFCT {
	div := func(a, b sim.Time) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	return NormalizedFCT{
		AvgAll:   div(s.AvgAll, base.AvgAll),
		AvgSmall: div(s.AvgSmall, base.AvgSmall),
		P99Small: div(s.P99Small, base.P99Small),
		AvgLarge: div(s.AvgLarge, base.AvgLarge),
	}
}

// NormalizedFCT is an FCT row normalized to a baseline scheme.
type NormalizedFCT struct {
	AvgAll, AvgSmall, P99Small, AvgLarge float64
}

// PercentileTimes returns the q-quantile (0..1) of a sample of times using
// nearest-rank on the sorted sample. It copies the input.
func PercentileTimes(xs []sim.Time, q float64) sim.Time {
	if len(xs) == 0 {
		return 0
	}
	s := make([]sim.Time, len(xs))
	copy(s, xs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
