package metrics

import (
	"fmt"

	"tcn/internal/sim"
)

// GoodputMeter bins delivered application bytes per service class over
// fixed time windows, producing the goodput-versus-time series of
// Figures 1 and 5a.
type GoodputMeter struct {
	bin     sim.Time
	classes int
	bins    [][]int64 // [class][bin] bytes
}

// NewGoodputMeter returns a meter for the given number of classes binning
// at the given granularity.
func NewGoodputMeter(classes int, bin sim.Time) *GoodputMeter {
	if classes <= 0 || bin <= 0 {
		panic(fmt.Sprintf("metrics: bad goodput meter classes=%d bin=%v", classes, bin))
	}
	return &GoodputMeter{bin: bin, classes: classes, bins: make([][]int64, classes)}
}

// Add credits delivered bytes to a class at the given time.
func (g *GoodputMeter) Add(now sim.Time, class int, bytes int) {
	if class < 0 || class >= g.classes {
		return
	}
	i := int(now / g.bin)
	for len(g.bins[class]) <= i {
		g.bins[class] = append(g.bins[class], 0) //tcnlint:hotpath grows once per elapsed time bin, not per packet
	}
	g.bins[class][i] += int64(bytes)
}

// validClass reports whether class is in range. The accessors below use
// it so they are consistent with Add, which silently ignores
// out-of-range classes instead of panicking.
func (g *GoodputMeter) validClass(class int) bool {
	return class >= 0 && class < g.classes
}

// SeriesMbps returns the per-bin goodput of a class in Mbps, or nil for
// an out-of-range class.
func (g *GoodputMeter) SeriesMbps(class int) []float64 {
	if !g.validClass(class) {
		return nil
	}
	out := make([]float64, len(g.bins[class]))
	for i, b := range g.bins[class] {
		out[i] = float64(b) * 8 / g.bin.Seconds() / 1e6
	}
	return out
}

// TotalBytes returns all bytes credited to a class, or 0 for an
// out-of-range class.
func (g *GoodputMeter) TotalBytes(class int) int64 {
	if !g.validClass(class) {
		return 0
	}
	var n int64
	for _, b := range g.bins[class] {
		n += b
	}
	return n
}

// AvgMbpsBetween returns a class's average goodput between two instants,
// rounded inward to whole bins so partially covered bins do not skew the
// average. Out-of-range classes yield 0.
func (g *GoodputMeter) AvgMbpsBetween(class int, from, to sim.Time) float64 {
	if !g.validClass(class) {
		return 0
	}
	i0 := int((from + g.bin - 1) / g.bin) // first bin fully inside
	i1 := int(to / g.bin)                 // first bin not fully inside
	if i1 > len(g.bins[class]) {
		i1 = len(g.bins[class])
	}
	if i1 <= i0 {
		return 0
	}
	var n int64
	for i := i0; i < i1; i++ {
		n += g.bins[class][i]
	}
	span := sim.Time(i1-i0) * g.bin
	return float64(n) * 8 / span.Seconds() / 1e6
}

// BinDuration returns the meter's bin width.
func (g *GoodputMeter) BinDuration() sim.Time { return g.bin }

// Sample is one point of a time series. Periodic polling itself now
// lives in internal/obs/flight (Recorder.Probe), which supersedes the
// Sampler this package used to provide.
type Sample struct {
	At    sim.Time
	Value float64
}
