package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// eventJSON is the NDJSON wire form of an Event. Field order is fixed
// by the struct, so exports are deterministic for identical traces.
type eventJSON struct {
	At    int64  `json:"at_ns"`
	Kind  string `json:"kind"`
	Where string `json:"where"`
	Queue int    `json:"queue"`
	Flow  int32  `json:"flow"`
	Seq   int64  `json:"seq"`
	Size  int    `json:"size"`
	DSCP  uint8  `json:"dscp"`
	ECN   string `json:"ecn"`
}

// WriteJSONL dumps the retained events, oldest first, as newline-
// delimited JSON (one event per line) for offline analysis. Counters
// are exact even after eviction, so a trailing summary line carries
// them: {"summary":true,"tx":N,"mark":N,"drop":N,"retained":N}.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events() {
		if err := enc.Encode(eventJSON{
			At:    int64(e.At),
			Kind:  e.Kind.String(),
			Where: e.Where,
			Queue: e.Queue,
			Flow:  int32(e.Flow),
			Seq:   e.Seq,
			Size:  e.Size,
			DSCP:  e.DSCP,
			ECN:   e.ECN.String(),
		}); err != nil {
			return err
		}
	}
	summary := struct {
		Summary  bool  `json:"summary"`
		Tx       int64 `json:"tx"`
		Mark     int64 `json:"mark"`
		Drop     int64 `json:"drop"`
		Retained int   `json:"retained"`
	}{true, t.Count(Transmit), t.Count(Mark), t.Count(Drop), len(t.Events())}
	if err := enc.Encode(summary); err != nil {
		return err
	}
	return bw.Flush()
}
