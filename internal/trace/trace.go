// Package trace records per-packet events (transmissions, CE marks,
// drops) from fabric ports into a bounded ring buffer, for debugging
// simulations and asserting packet-level behaviour in tests without
// accumulating unbounded state on long runs.
package trace

import (
	"fmt"

	"tcn/internal/core"
	"tcn/internal/fabric"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// Kind classifies an event. It is an alias of core.EventKind, the single
// source of truth for the "tx"/"mark"/"drop" naming shared with the
// decision ledger, Perfetto instants, and flight-recorder spans.
type Kind = core.EventKind

// Event kinds, re-exported under their traditional trace names.
const (
	// Transmit is a packet leaving a port onto its link.
	Transmit = core.EventTx
	// Mark is a transmit whose packet carried CE.
	Mark = core.EventMark
	// Drop is a packet rejected at admission.
	Drop = core.EventDrop
)

// Event is one recorded occurrence. The packet is summarized by value so
// the trace stays valid after the packet moves on.
type Event struct {
	At    sim.Time
	Kind  Kind
	Where string // port label
	Queue int

	Flow pkt.FlowID
	Seq  int64
	Size int
	DSCP uint8
	ECN  pkt.ECN
}

// String renders one line suitable for logs.
func (e Event) String() string {
	return fmt.Sprintf("%v %-4s %s q%d flow=%d seq=%d size=%d dscp=%d %s",
		e.At, e.Kind, e.Where, e.Queue, e.Flow, e.Seq, e.Size, e.DSCP, e.ECN)
}

// Tracer accumulates events in a ring buffer of fixed capacity; when full,
// the oldest events are overwritten. Counters are exact regardless of
// eviction.
type Tracer struct {
	// Filter, if set, drops events for which it returns false before
	// they reach the ring (counters are not incremented either).
	Filter func(Event) bool

	ring   []Event
	next   int
	filled bool
	counts [core.NumEventKinds]int64
}

// New returns a tracer holding up to capacity events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: capacity %d must be positive", capacity))
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Record adds one event.
func (t *Tracer) Record(e Event) {
	if t.Filter != nil && !t.Filter(e) {
		return
	}
	t.counts[e.Kind]++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e) //tcnlint:hotpath capacity-guarded; the ring never reallocates
		return
	}
	t.ring[t.next] = e
	t.next = (t.next + 1) % cap(t.ring)
	t.filled = true
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if !t.filled {
		out := make([]Event, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]Event, 0, cap(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Count returns how many events of a kind were recorded (including
// evicted ones).
func (t *Tracer) Count(k Kind) int64 { return t.counts[k] }

// summarize converts a live packet into an event skeleton.
func summarize(now sim.Time, kind Kind, where string, qi int, p *pkt.Packet) Event {
	return Event{
		At: now, Kind: kind, Where: where, Queue: qi,
		Flow: p.Flow, Seq: p.Seq, Size: p.Size, DSCP: p.DSCP, ECN: p.ECN,
	}
}

// AttachPort hooks the tracer onto a port's transmit and drop paths under
// the given label. It chains any hooks already installed. CE-marked
// transmissions are recorded as Mark events, others as Transmit.
func (t *Tracer) AttachPort(label string, port *fabric.Port) {
	prevTx := port.OnTransmit
	port.OnTransmit = func(now sim.Time, qi int, p *pkt.Packet) {
		kind := Transmit
		if p.ECN == pkt.CE {
			kind = Mark
		}
		t.Record(summarize(now, kind, label, qi, p))
		if prevTx != nil {
			prevTx(now, qi, p)
		}
	}
	prevDrop := port.OnDrop
	port.OnDrop = func(now sim.Time, qi int, p *pkt.Packet) {
		t.Record(summarize(now, Drop, label, qi, p))
		if prevDrop != nil {
			prevDrop(now, qi, p)
		}
	}
}
