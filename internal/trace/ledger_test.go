package trace

import (
	"strings"
	"testing"

	"tcn/internal/core"
	"tcn/internal/fabric"
	"tcn/internal/obs"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

// verdictAt builds one synthetic decisive verdict.
func verdictAt(r core.Reason, marked, dropped bool) *core.Verdict {
	return &core.Verdict{Stage: core.StageEnqueue, Reason: r, Marked: marked, Dropped: dropped,
		QueueBytes: 3000, ThresholdBytes: 1500}
}

// TestLedgerRingEviction drives the ring through several wraps and checks
// that the per-cell counters and marked/dropped totals stay exact while
// only the newest `capacity` verdicts are retained, in order.
func TestLedgerRingEviction(t *testing.T) {
	const capacity, total = 3, 10
	l := NewLedger(capacity)
	for i := 0; i < total; i++ {
		r, marked, dropped := core.ReasonTCNThreshold, true, false
		if i%2 == 1 {
			r, marked, dropped = core.ReasonBufferOverflow, false, true
		}
		p := &pkt.Packet{Flow: pkt.FlowID(i), Size: 1500}
		l.Record(sim.Time(i), "p0", 0, p, verdictAt(r, marked, dropped))
	}
	ev := l.Events()
	if len(ev) != capacity {
		t.Fatalf("retained %d verdicts, want %d", len(ev), capacity)
	}
	for j, e := range ev {
		if want := pkt.FlowID(total - capacity + j); e.Flow != want {
			t.Fatalf("eviction order wrong: event %d is flow %d, want %d", j, e.Flow, want)
		}
	}
	if got := l.Count("p0", 0, core.ReasonTCNThreshold); got != 5 {
		t.Fatalf("TCNThreshold count %d, want exact 5 despite eviction", got)
	}
	if got := l.Count("p0", 0, core.ReasonBufferOverflow); got != 5 {
		t.Fatalf("BufferOverflow count %d, want exact 5 despite eviction", got)
	}
	if l.Marked() != 5 || l.Dropped() != 5 {
		t.Fatalf("totals marked=%d dropped=%d, want 5/5", l.Marked(), l.Dropped())
	}
	if got := l.ReasonTotal(core.ReasonTCNThreshold); got != 5 {
		t.Fatalf("ReasonTotal %d, want 5", got)
	}
	if got := l.Count("p0", 1, core.ReasonTCNThreshold); got != 0 {
		t.Fatalf("unpopulated cell counts %d", got)
	}
}

// marksAndDropsPort builds a one-queue TCN port fed past both its marking
// threshold and its buffer, returning the engine and port.
func marksAndDropsPort(eng *sim.Engine) *fabric.Port {
	sink := fabric.NewHost(eng, 1, 0)
	sink.Handler = func(*pkt.Packet) {}
	port := fabric.NewPort(eng, fabric.PortConfig{
		Rate:        fabric.Gbps,
		Queues:      1,
		BufferBytes: 6_000,
		Marker:      core.NewTCN(20 * sim.Microsecond),
	}, sink)
	return port
}

// TestLedgerReconcilesWithTracer pins the acceptance invariant on a
// single-switch path: every mark and drop carries a non-Unknown reason,
// and the ledger's totals equal the tracer's transmission-side counters
// exactly.
func TestLedgerReconcilesWithTracer(t *testing.T) {
	eng := sim.NewEngine()
	port := marksAndDropsPort(eng)
	reg := obs.NewRegistry()
	l := NewLedger(64)
	l.Instrument(reg)
	tr := New(64)
	tr.AttachPort("p0", port)
	l.AttachPort("p0", port)
	for i := 0; i < 10; i++ {
		port.Send(&pkt.Packet{Size: 1500, ECN: pkt.ECT0, Seq: int64(i)})
	}
	eng.Run()

	if l.Marked() == 0 || l.Dropped() == 0 {
		t.Fatalf("scenario too tame: marked=%d dropped=%d", l.Marked(), l.Dropped())
	}
	if l.Marked() != tr.Count(Mark) {
		t.Fatalf("ledger marked=%d, tracer marks=%d: attribution lost a mark", l.Marked(), tr.Count(Mark))
	}
	if l.Dropped() != tr.Count(Drop) {
		t.Fatalf("ledger dropped=%d, tracer drops=%d", l.Dropped(), tr.Count(Drop))
	}
	for _, e := range l.Events() {
		if e.V.Reason == core.ReasonUnknown {
			t.Fatalf("verdict without a reason: %+v", e)
		}
		if e.Where != "p0" {
			t.Fatalf("label missing: %+v", e)
		}
	}
	if got := l.Count("p0", 0, core.ReasonTCNThreshold); got != l.Marked() {
		t.Fatalf("TCN marks attributed to %d verdicts, want %d", got, l.Marked())
	}
	if got := l.Count("p0", 0, core.ReasonBufferOverflow); got != l.Dropped() {
		t.Fatalf("drops attributed to %d verdicts, want %d", got, l.Dropped())
	}
	// The instrumented registry mirrors the exact cells.
	if c := reg.Counter("p0.q0.verdicts.TCNThreshold"); c.Value() != l.Marked() {
		t.Fatalf("registry counter %d, want %d", c.Value(), l.Marked())
	}
	if c := reg.Counter("p0.q0.verdicts.BufferOverflow"); c.Value() != l.Dropped() {
		t.Fatalf("registry drop counter %d, want %d", c.Value(), l.Dropped())
	}
}

// TestLedgerWriteJSONL checks the export shape: verdict lines first, then
// exact-count lines, then the summary — and byte-for-byte determinism.
func TestLedgerWriteJSONL(t *testing.T) {
	l := NewLedger(8)
	p := &pkt.Packet{Flow: 7, Seq: 3000, Size: 1500}
	v := verdictAt(core.ReasonTCNThreshold, true, false)
	v.Sojourn = 55 * sim.Microsecond
	v.ThresholdTime = 20 * sim.Microsecond
	l.Record(5*sim.Microsecond, "sw.p2", 1, p, v)
	l.Record(6*sim.Microsecond, "sw.p2", 0, &pkt.Packet{Flow: 8, Size: 900},
		verdictAt(core.ReasonBufferOverflow, false, true))

	var buf strings.Builder
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 2 verdicts + 2 counts + summary:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"at_ns":5000`) || !strings.Contains(lines[0], `"reason":"TCNThreshold"`) ||
		!strings.Contains(lines[0], `"sojourn_ns":55000`) {
		t.Errorf("first verdict line: %s", lines[0])
	}
	if !strings.Contains(lines[2], `"count":true`) {
		t.Errorf("first count line: %s", lines[2])
	}
	if !strings.Contains(lines[4], `"summary":true`) || !strings.Contains(lines[4], `"marked":1`) ||
		!strings.Contains(lines[4], `"dropped":1`) {
		t.Errorf("summary line: %s", lines[4])
	}
	var buf2 strings.Builder
	if err := l.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("JSONL export not deterministic")
	}
}

// TestLedgerWriteReport checks the -explain rendering.
func TestLedgerWriteReport(t *testing.T) {
	l := NewLedger(8)
	l.Record(0, "sw.p1", 0, &pkt.Packet{Size: 1500}, verdictAt(core.ReasonTCNThreshold, true, false))
	l.Record(sim.Nanosecond, "sw.p1", 0, &pkt.Packet{Size: 1500}, verdictAt(core.ReasonTCNThreshold, true, false))
	l.Record(2*sim.Nanosecond, "sw.p1", 1, &pkt.Packet{Size: 900}, verdictAt(core.ReasonBufferOverflow, false, true))
	var buf strings.Builder
	if err := l.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sw.p1:", "TCNThreshold", "BufferOverflow", "totals: marked=2 dropped=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	var empty strings.Builder
	if err := NewLedger(1).WriteReport(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no decisive verdicts") {
		t.Errorf("empty report: %q", empty.String())
	}
}

func TestNewLedgerValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLedger(0)
}
