package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"tcn/internal/core"
	"tcn/internal/digest"
	"tcn/internal/fabric"
	"tcn/internal/obs"
	"tcn/internal/pkt"
	"tcn/internal/qdisc"
	"tcn/internal/sim"
)

// VerdictEvent is one retained marking/dropping decision: the packet's
// identity plus the full verdict (rule, stage, and the instantaneous
// inputs the rule consulted), copied by value so the record stays valid
// after the scratch verdict is reused.
type VerdictEvent struct {
	At    sim.Time
	Where string // port label
	Queue int

	Flow pkt.FlowID
	Seq  int64
	Size int

	V core.Verdict
}

// ledgerKey addresses one exact counter: a (port, queue, reason) cell.
type ledgerKey struct {
	where  string
	queue  int
	reason core.Reason
}

// ledgerCell is the mutable state behind one key. The obs counter is
// created once, on the cell's first verdict, so steady-state recording
// allocates nothing.
type ledgerCell struct {
	n int64
	c *obs.Counter // nil when the ledger has no registry
}

// Ledger retains recent verdicts in a bounded ring and keeps exact
// per-(port, queue, reason) counters regardless of eviction — the
// decision-side mirror of Tracer's transmission-side counts. Attach it to
// every port of a single-switch topology and the marked/dropped totals
// reconcile exactly with the tracer's mark/drop counters (multi-hop
// fabrics transmit a CE-marked packet once per hop, so there the tracer
// counts ≥ the ledger's decisions).
type Ledger struct {
	ring   []VerdictEvent
	next   int
	filled bool

	cells map[ledgerKey]*ledgerCell
	reg   *obs.Registry

	marked  int64
	dropped int64

	// reasons totals every verdict by reason in a fixed-size array so the
	// run fingerprint can digest exact decision counts without ranging the
	// cells map (map order is nondeterministic; the array is not).
	reasons [core.NumReasons]int64
}

// NewLedger returns a ledger retaining up to capacity verdicts.
func NewLedger(capacity int) *Ledger {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: ledger capacity %d must be positive", capacity))
	}
	return &Ledger{
		ring:  make([]VerdictEvent, 0, capacity),
		cells: map[ledgerKey]*ledgerCell{},
	}
}

// Instrument mirrors every per-(port, queue, reason) count into r as
// counters named "<where>.q<i>.verdicts.<Reason>". Call before attaching
// ports; cells created afterwards pick the registry up lazily.
func (l *Ledger) Instrument(r *obs.Registry) { l.reg = r }

// cell resolves (and on first use creates) the counter cell for a key.
func (l *Ledger) cell(k ledgerKey) *ledgerCell {
	if c, ok := l.cells[k]; ok {
		return c
	}
	c := &ledgerCell{}
	if l.reg != nil {
		//tcnlint:hotpath cell creation runs once per (where, queue, reason) key; steady state hits the map above
		c.c = l.reg.Counter(fmt.Sprintf("%s.q%d.verdicts.%s", k.where, k.queue, k.reason))
	}
	l.cells[k] = c
	return c
}

// Record folds one decisive verdict into the ledger. The verdict is
// copied; the caller may reuse it immediately.
func (l *Ledger) Record(now sim.Time, where string, qi int, p *pkt.Packet, v *core.Verdict) {
	c := l.cell(ledgerKey{where: where, queue: qi, reason: v.Reason})
	c.n++
	l.reasons[v.Reason]++
	if c.c != nil {
		c.c.Inc()
	}
	if v.Marked {
		l.marked++
	}
	if v.Dropped {
		l.dropped++
	}
	e := VerdictEvent{
		At: now, Where: where, Queue: qi,
		Flow: p.Flow, Seq: p.Seq, Size: p.Size,
		V: *v,
	}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e) //tcnlint:hotpath capacity-guarded; the ring never reallocates
		return
	}
	l.ring[l.next] = e
	l.next = (l.next + 1) % cap(l.ring)
	l.filled = true
}

// Events returns the retained verdicts in chronological order.
func (l *Ledger) Events() []VerdictEvent {
	if !l.filled {
		out := make([]VerdictEvent, len(l.ring))
		copy(out, l.ring)
		return out
	}
	out := make([]VerdictEvent, 0, cap(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Count returns the exact number of verdicts recorded for a (port,
// queue, reason) cell, eviction notwithstanding.
func (l *Ledger) Count(where string, queue int, reason core.Reason) int64 {
	if c, ok := l.cells[ledgerKey{where: where, queue: queue, reason: reason}]; ok {
		return c.n
	}
	return 0
}

// ReasonTotal sums a reason's count across all ports and queues.
func (l *Ledger) ReasonTotal(reason core.Reason) int64 {
	var t int64
	for k, c := range l.cells {
		if k.reason == reason {
			t += c.n
		}
	}
	return t
}

// Marked returns the exact number of verdicts that applied CE.
func (l *Ledger) Marked() int64 { return l.marked }

// Dropped returns the exact number of admission-drop verdicts.
func (l *Ledger) Dropped() int64 { return l.dropped }

// DigestState folds the ledger's exact decision totals into a run
// fingerprint: marked/dropped, the per-reason totals array, and the ring
// cursor. Retained events are not digested individually — the reason
// totals change on every Record, so any divergence in decision history
// moves the digest at the epoch it happens.
func (l *Ledger) DigestState(h *digest.Hash) {
	h.WriteInt64(l.marked)
	h.WriteInt64(l.dropped)
	for _, n := range l.reasons {
		h.WriteInt64(n)
	}
	h.WriteInt(l.next)
	h.WriteBool(l.filled)
	h.WriteInt(len(l.ring))
}

// sortedKeys returns every populated cell key in (where, queue, reason)
// order, so exports and reports are deterministic.
func (l *Ledger) sortedKeys() []ledgerKey {
	keys := make([]ledgerKey, 0, len(l.cells))
	//tcnlint:ordered keys are sorted before return
	for k := range l.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.where != b.where {
			return a.where < b.where
		}
		if a.queue != b.queue {
			return a.queue < b.queue
		}
		return a.reason < b.reason
	})
	return keys
}

// verdictJSON is the NDJSON wire form of a VerdictEvent. Field order is
// fixed by the struct, so exports are deterministic.
type verdictJSON struct {
	At      int64   `json:"at_ns"`
	Where   string  `json:"where"`
	Queue   int     `json:"queue"`
	Stage   string  `json:"stage"`
	Reason  string  `json:"reason"`
	Marked  bool    `json:"marked"`
	Dropped bool    `json:"dropped"`
	Flow    int32   `json:"flow"`
	Seq     int64   `json:"seq"`
	Size    int     `json:"size"`
	QBytes  int     `json:"queue_bytes"`
	PBytes  int     `json:"port_bytes"`
	Avg     float64 `json:"avg_bytes"`
	Sojourn int64   `json:"sojourn_ns"`
	KBytes  int     `json:"threshold_bytes"`
	KTime   int64   `json:"threshold_ns"`
	Prob    float64 `json:"prob"`
	Tokens  float64 `json:"tokens_bytes"`
}

// countJSON is one exact-counter line in the JSONL export.
type countJSON struct {
	Count  bool   `json:"count"`
	Where  string `json:"where"`
	Queue  int    `json:"queue"`
	Reason string `json:"reason"`
	N      int64  `json:"n"`
}

// WriteJSONL dumps the retained verdicts, oldest first, as newline-
// delimited JSON, followed by one exact-counter line per populated
// (port, queue, reason) cell in sorted order and a trailing summary
// line {"summary":true,"marked":N,"dropped":N,"retained":N}.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range l.Events() {
		if err := enc.Encode(verdictJSON{
			At:      int64(e.At),
			Where:   e.Where,
			Queue:   e.Queue,
			Stage:   e.V.Stage.String(),
			Reason:  e.V.Reason.String(),
			Marked:  e.V.Marked,
			Dropped: e.V.Dropped,
			Flow:    int32(e.Flow),
			Seq:     e.Seq,
			Size:    e.Size,
			QBytes:  e.V.QueueBytes,
			PBytes:  e.V.PortBytes,
			Avg:     e.V.AvgBytes,
			Sojourn: int64(e.V.Sojourn),
			KBytes:  e.V.ThresholdBytes,
			KTime:   int64(e.V.ThresholdTime),
			Prob:    e.V.Prob,
			Tokens:  e.V.TokensBytes,
		}); err != nil {
			return err
		}
	}
	for _, k := range l.sortedKeys() {
		if err := enc.Encode(countJSON{
			Count: true, Where: k.where, Queue: k.queue,
			Reason: k.reason.String(), N: l.cells[k].n,
		}); err != nil {
			return err
		}
	}
	summary := struct {
		Summary  bool  `json:"summary"`
		Marked   int64 `json:"marked"`
		Dropped  int64 `json:"dropped"`
		Retained int   `json:"retained"`
	}{true, l.marked, l.dropped, len(l.Events())}
	if err := enc.Encode(summary); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteReport renders the verdict-breakdown report `tcnsim -explain`
// prints: the exact reason histogram per port and queue, plus marked/
// dropped totals. Deterministic (sorted cells).
func (l *Ledger) WriteReport(w io.Writer) error {
	keys := l.sortedKeys()
	if len(keys) == 0 {
		_, err := fmt.Fprintln(w, "no decisive verdicts recorded")
		return err
	}
	last := ""
	for _, k := range keys {
		if k.where != last {
			if _, err := fmt.Fprintf(w, "%s:\n", k.where); err != nil {
				return err
			}
			last = k.where
		}
		if _, err := fmt.Fprintf(w, "  q%-3d %-24s %12d\n", k.queue, k.reason, l.cells[k].n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "totals: marked=%d dropped=%d incapable=%d\n",
		l.marked, l.dropped, l.ReasonTotal(core.ReasonECNIncapable))
	return err
}

// AttachPort hooks the ledger onto a port's verdict stream under label,
// chaining any hook already installed.
func (l *Ledger) AttachPort(label string, pt *fabric.Port) {
	prev := pt.OnVerdict
	pt.OnVerdict = func(now sim.Time, qi int, p *pkt.Packet, v *core.Verdict) {
		l.Record(now, label, qi, p, v)
		if prev != nil {
			prev(now, qi, p, v)
		}
	}
}

// AttachQdisc hooks the ledger onto a software qdisc's verdict stream
// under label, chaining any hook already installed.
func (l *Ledger) AttachQdisc(label string, q *qdisc.Qdisc) {
	prev := q.OnVerdict
	q.OnVerdict = func(now sim.Time, qi int, p *pkt.Packet, v *core.Verdict) {
		l.Record(now, label, qi, p, v)
		if prev != nil {
			prev(now, qi, p, v)
		}
	}
}
