package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tcn/internal/pkt"
	"tcn/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the Perfetto golden file")

// goldenScenario runs the deterministic mark-and-drop port with a
// pipeline recorder attached and returns the exported bytes.
func goldenScenario(t *testing.T, capacity int) ([]byte, *Pipeline) {
	t.Helper()
	eng := sim.NewEngine()
	port := marksAndDropsPort(eng)
	pl := NewPipeline(capacity)
	pl.AttachPort("sw.p0", port)
	for i := 0; i < 10; i++ {
		port.Send(&pkt.Packet{Size: 1500, ECN: pkt.ECT0, Flow: 1, Seq: int64(i)})
	}
	eng.Run()
	var buf bytes.Buffer
	if err := pl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), pl
}

// TestPerfettoGolden pins the exported Chrome trace-event JSON byte for
// byte: the document Perfetto loads must not drift silently. Regenerate
// with `go test ./internal/trace -run Golden -update` and re-load the new
// file in https://ui.perfetto.dev before committing it.
func TestPerfettoGolden(t *testing.T) {
	got, _ := goldenScenario(t, 1<<10)
	path := filepath.Join("testdata", "perfetto_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Perfetto export drifted from golden (%d vs %d bytes); rerun with -update and re-validate in the Perfetto UI", len(got), len(want))
	}
}

// TestPerfettoDocumentShape validates the export semantically: parseable
// JSON, the trace-event envelope, named tracks, and well-formed spans and
// instants carrying the attribution args.
func TestPerfettoDocumentShape(t *testing.T) {
	raw, _ := goldenScenario(t, 1<<10)
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Pid  int      `json:"pid"`
			Tid  int      `json:"tid"`
			Ts   float64  `json:"ts"`
			Dur  *float64 `json:"dur"`
			S    string   `json:"s"`
			Args *struct {
				Name   string `json:"name"`
				Reason string `json:"reason"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	var meta, spans, marks, drops int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Args == nil || e.Args.Name == "" {
				t.Fatalf("metadata without a name: %+v", e)
			}
		case "X":
			spans++
			if e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("span without duration: %+v", e)
			}
		case "i":
			if e.S != "t" {
				t.Fatalf("instant without thread scope: %+v", e)
			}
			if e.Args == nil || e.Args.Reason == "" {
				t.Fatalf("instant without a reason: %+v", e)
			}
			switch e.Name {
			case "mark":
				marks++
			case "drop":
				drops++
			default:
				t.Fatalf("unknown instant %q", e.Name)
			}
		default:
			t.Fatalf("unknown phase %q", e.Ph)
		}
		if e.Pid < 1 || e.Tid < 0 {
			t.Fatalf("bad track ids: %+v", e)
		}
	}
	// One process_name + wire + q0 thread_name records for the one port.
	if meta != 3 {
		t.Fatalf("metadata events = %d, want 3", meta)
	}
	if spans == 0 || marks == 0 || drops == 0 {
		t.Fatalf("spans=%d marks=%d drops=%d: scenario should produce all three", spans, marks, drops)
	}
}

// TestPipelineRingEviction bounds retention while Recorded stays exact.
func TestPipelineRingEviction(t *testing.T) {
	raw, pl := goldenScenario(t, 4)
	if pl.Recorded() <= 4 {
		t.Fatalf("recorded %d events, scenario should overflow capacity 4", pl.Recorded())
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	var payload int
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" {
			payload++
		}
	}
	if payload != 4 {
		t.Fatalf("exported %d payload events, want exactly the ring capacity 4", payload)
	}
}

// TestPerfettoEmptyPipeline keeps the empty export loadable: traceEvents
// must render as [] and metadata for attached tracks still appears.
func TestPerfettoEmptyPipeline(t *testing.T) {
	pl := NewPipeline(8)
	var buf bytes.Buffer
	if err := pl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents":[]`)) {
		t.Fatalf("empty export: %s", buf.String())
	}
}

func TestNewPipelineValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPipeline(0)
}
