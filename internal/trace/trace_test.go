package trace

import (
	"strings"
	"testing"

	"tcn/internal/fabric"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

func ev(at sim.Time, k Kind, flow pkt.FlowID) Event {
	return Event{At: at, Kind: k, Where: "p0", Flow: flow, Size: 1500, ECN: pkt.ECT0}
}

func TestRingKeepsNewest(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		tr.Record(ev(sim.Time(i), Transmit, pkt.FlowID(i)))
	}
	got := tr.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d events", len(got))
	}
	for i, e := range got {
		if e.Flow != pkt.FlowID(i+2) {
			t.Fatalf("eviction order wrong: %v", got)
		}
	}
	if tr.Count(Transmit) != 5 {
		t.Fatalf("counter %d, want exact 5 despite eviction", tr.Count(Transmit))
	}
}

func TestEventsBeforeWrap(t *testing.T) {
	tr := New(10)
	tr.Record(ev(1, Transmit, 1))
	tr.Record(ev(2, Drop, 2))
	got := tr.Events()
	if len(got) != 2 || got[0].Flow != 1 || got[1].Kind != Drop {
		t.Fatalf("events: %v", got)
	}
}

func TestFilterExcludes(t *testing.T) {
	tr := New(10)
	tr.Filter = func(e Event) bool { return e.Kind == Drop }
	tr.Record(ev(1, Transmit, 1))
	tr.Record(ev(2, Drop, 2))
	if len(tr.Events()) != 1 || tr.Count(Transmit) != 0 || tr.Count(Drop) != 1 {
		t.Fatal("filter not applied")
	}
}

func TestEventString(t *testing.T) {
	s := ev(5*sim.Microsecond, Mark, 7).String()
	for _, want := range []string{"mark", "p0", "flow=7", "ECT(0)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestAttachPortRecordsTxMarksAndDrops(t *testing.T) {
	eng := sim.NewEngine()
	var delivered int
	sinkHost := fabric.NewHost(eng, 1, 0)
	sinkHost.Handler = func(*pkt.Packet) { delivered++ }

	port := fabric.NewPort(eng, fabric.PortConfig{
		Rate:        fabric.Gbps,
		Queues:      1,
		BufferBytes: 4500,
	}, sinkHost)
	tr := New(100)
	tr.AttachPort("bottleneck", port)

	// 4 packets into a 4500B buffer: 1 in service + 3... the 4th drops
	// after the first enters service; mark one manually via CE.
	for i := 0; i < 5; i++ {
		p := &pkt.Packet{Size: 1500, ECN: pkt.ECT0, Seq: int64(i)}
		if i == 0 {
			p.ECN = pkt.CE
		}
		port.Send(p)
	}
	eng.Run()

	if tr.Count(Drop) == 0 {
		t.Fatal("no drops recorded")
	}
	if tr.Count(Mark) != 1 {
		t.Fatalf("marks = %d, want 1", tr.Count(Mark))
	}
	if int(tr.Count(Transmit)+tr.Count(Mark)) != delivered {
		t.Fatalf("tx events %d != delivered %d", tr.Count(Transmit)+tr.Count(Mark), delivered)
	}
	for _, e := range tr.Events() {
		if e.Where != "bottleneck" {
			t.Fatalf("label missing: %+v", e)
		}
	}
}

func TestAttachPortChainsHooks(t *testing.T) {
	eng := sim.NewEngine()
	sinkHost := fabric.NewHost(eng, 1, 0)
	sinkHost.Handler = func(*pkt.Packet) {}
	port := fabric.NewPort(eng, fabric.PortConfig{Rate: fabric.Gbps, Queues: 1}, sinkHost)
	called := 0
	port.OnTransmit = func(sim.Time, int, *pkt.Packet) { called++ }
	tr := New(10)
	tr.AttachPort("p", port)
	port.Send(&pkt.Packet{Size: 100})
	eng.Run()
	if called != 1 || tr.Count(Transmit) != 1 {
		t.Fatalf("hook chaining broken: called=%d traced=%d", called, tr.Count(Transmit))
	}
}

func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}
