package trace

import (
	"strings"
	"testing"

	"tcn/internal/fabric"
	"tcn/internal/pkt"
	"tcn/internal/sim"
)

func ev(at sim.Time, k Kind, flow pkt.FlowID) Event {
	return Event{At: at, Kind: k, Where: "p0", Flow: flow, Size: 1500, ECN: pkt.ECT0}
}

func TestRingKeepsNewest(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		tr.Record(ev(sim.Time(i), Transmit, pkt.FlowID(i)))
	}
	got := tr.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d events", len(got))
	}
	for i, e := range got {
		if e.Flow != pkt.FlowID(i+2) {
			t.Fatalf("eviction order wrong: %v", got)
		}
	}
	if tr.Count(Transmit) != 5 {
		t.Fatalf("counter %d, want exact 5 despite eviction", tr.Count(Transmit))
	}
}

func TestEventsBeforeWrap(t *testing.T) {
	tr := New(10)
	tr.Record(ev(1*sim.Nanosecond, Transmit, 1))
	tr.Record(ev(2*sim.Nanosecond, Drop, 2))
	got := tr.Events()
	if len(got) != 2 || got[0].Flow != 1 || got[1].Kind != Drop {
		t.Fatalf("events: %v", got)
	}
}

func TestFilterExcludes(t *testing.T) {
	tr := New(10)
	tr.Filter = func(e Event) bool { return e.Kind == Drop }
	tr.Record(ev(1*sim.Nanosecond, Transmit, 1))
	tr.Record(ev(2*sim.Nanosecond, Drop, 2))
	if len(tr.Events()) != 1 || tr.Count(Transmit) != 0 || tr.Count(Drop) != 1 {
		t.Fatal("filter not applied")
	}
}

func TestEventString(t *testing.T) {
	s := ev(5*sim.Microsecond, Mark, 7).String()
	for _, want := range []string{"mark", "p0", "flow=7", "ECT(0)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestAttachPortRecordsTxMarksAndDrops(t *testing.T) {
	eng := sim.NewEngine()
	var delivered int
	sinkHost := fabric.NewHost(eng, 1, 0)
	sinkHost.Handler = func(*pkt.Packet) { delivered++ }

	port := fabric.NewPort(eng, fabric.PortConfig{
		Rate:        fabric.Gbps,
		Queues:      1,
		BufferBytes: 4500,
	}, sinkHost)
	tr := New(100)
	tr.AttachPort("bottleneck", port)

	// 4 packets into a 4500B buffer: 1 in service + 3... the 4th drops
	// after the first enters service; mark one manually via CE.
	for i := 0; i < 5; i++ {
		p := &pkt.Packet{Size: 1500, ECN: pkt.ECT0, Seq: int64(i)}
		if i == 0 {
			p.ECN = pkt.CE
		}
		port.Send(p)
	}
	eng.Run()

	if tr.Count(Drop) == 0 {
		t.Fatal("no drops recorded")
	}
	if tr.Count(Mark) != 1 {
		t.Fatalf("marks = %d, want 1", tr.Count(Mark))
	}
	if int(tr.Count(Transmit)+tr.Count(Mark)) != delivered {
		t.Fatalf("tx events %d != delivered %d", tr.Count(Transmit)+tr.Count(Mark), delivered)
	}
	for _, e := range tr.Events() {
		if e.Where != "bottleneck" {
			t.Fatalf("label missing: %+v", e)
		}
	}
}

func TestAttachPortChainsHooks(t *testing.T) {
	eng := sim.NewEngine()
	sinkHost := fabric.NewHost(eng, 1, 0)
	sinkHost.Handler = func(*pkt.Packet) {}
	port := fabric.NewPort(eng, fabric.PortConfig{Rate: fabric.Gbps, Queues: 1}, sinkHost)
	called := 0
	port.OnTransmit = func(sim.Time, int, *pkt.Packet) { called++ }
	tr := New(10)
	tr.AttachPort("p", port)
	port.Send(&pkt.Packet{Size: 100})
	eng.Run()
	if called != 1 || tr.Count(Transmit) != 1 {
		t.Fatalf("hook chaining broken: called=%d traced=%d", called, tr.Count(Transmit))
	}
}

// TestRingEvictionAcrossMultipleWraps drives the ring through several
// full wrap-arounds and checks that Events() is always the last
// `capacity` events in exact chronological order, with counters exact.
func TestRingEvictionAcrossMultipleWraps(t *testing.T) {
	const capacity, total = 7, 100
	tr := New(capacity)
	for i := 0; i < total; i++ {
		k := Transmit
		if i%3 == 0 {
			k = Drop
		}
		tr.Record(ev(sim.Time(i), k, pkt.FlowID(i)))
		// Invariant holds at every step, not just at the end.
		got := tr.Events()
		want := i + 1
		if want > capacity {
			want = capacity
		}
		if len(got) != want {
			t.Fatalf("after %d records: retained %d, want %d", i+1, len(got), want)
		}
		for j, e := range got {
			if wantFlow := pkt.FlowID(i + 1 - want + j); e.Flow != wantFlow {
				t.Fatalf("after %d records: event %d is flow %d, want %d", i+1, j, e.Flow, wantFlow)
			}
		}
	}
	wantDrops := int64((total + 2) / 3)
	if tr.Count(Drop) != wantDrops || tr.Count(Transmit) != total-wantDrops {
		t.Fatalf("counters drop=%d tx=%d, want %d/%d despite eviction",
			tr.Count(Drop), tr.Count(Transmit), wantDrops, total-wantDrops)
	}
}

// TestFilterRejectedIncrementsNothing pins the satellite contract: an
// event the filter rejects reaches neither the ring nor any counter.
func TestFilterRejectedIncrementsNothing(t *testing.T) {
	tr := New(4)
	tr.Filter = func(Event) bool { return false }
	for i := 0; i < 10; i++ {
		tr.Record(ev(sim.Time(i), Kind(i%3), pkt.FlowID(i)))
	}
	if len(tr.Events()) != 0 {
		t.Fatalf("ring retained %d filtered events", len(tr.Events()))
	}
	for _, k := range []Kind{Transmit, Mark, Drop} {
		if tr.Count(k) != 0 {
			t.Fatalf("counter %v = %d after filtered records", k, tr.Count(k))
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New(10)
	tr.Record(Event{At: 5 * sim.Microsecond, Kind: Mark, Where: "sw.p2", Queue: 1,
		Flow: 7, Seq: 3000, Size: 1500, DSCP: 1, ECN: pkt.CE})
	tr.Record(Event{At: 6 * sim.Microsecond, Kind: Drop, Where: "sw.p2", Queue: 0,
		Flow: 8, Size: 900, ECN: pkt.ECT0})
	var buf strings.Builder
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 2 events + summary:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"at_ns":5000`) || !strings.Contains(lines[0], `"kind":"mark"`) {
		t.Errorf("first line: %s", lines[0])
	}
	if !strings.Contains(lines[2], `"summary":true`) || !strings.Contains(lines[2], `"drop":1`) {
		t.Errorf("summary line: %s", lines[2])
	}
	// Determinism: a second export is byte-identical.
	var buf2 strings.Builder
	if err := tr.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("JSONL export not deterministic")
	}
}

func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}
