package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"tcn/internal/core"
	"tcn/internal/fabric"
	"tcn/internal/pkt"
	"tcn/internal/qdisc"
	"tcn/internal/sim"
)

// Pipeline records per-packet pipeline-stage spans — time queued, token-
// bucket stalls, wire occupancy — plus mark/drop instants, and renders
// them as Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing. Each attached port becomes one process (pid) whose
// threads (tids) are its queues plus a "wire" track, so the scheduler's
// interleaving is directly visible on the timeline.
//
// Events live in a bounded ring: a long run keeps the most recent window
// (Perfetto traces are for inspecting dynamics, not exact accounting —
// the Ledger and Tracer carry exact counters).
type Pipeline struct {
	tracks []pipeTrack

	ring   []pipeEvent
	next   int
	filled bool

	recorded int64 // total events offered, including evicted
}

// pipeTrack is one attached port: its label and queue count fix the
// pid/tid numbering (pid = index+1 in attach order, tid 0 = wire,
// tid i+1 = queue i).
type pipeTrack struct {
	label  string
	queues int
}

// pipeKind discriminates the stored event shapes.
type pipeKind uint8

const (
	pipeQueued pipeKind = iota // span on queue track: enqueue → dequeue
	pipeWire                   // span on wire track: dequeue → tx done
	pipeWait                   // span on queue track: token-bucket stall
	pipeMark                   // instant: CE applied (reason attached)
	pipeDrop                   // instant: admission drop
)

// pipeEvent is one ring slot, compact and pointer-free.
type pipeEvent struct {
	track  int32
	queue  int32
	kind   pipeKind
	reason core.Reason
	start  sim.Time
	dur    sim.Time
	flow   pkt.FlowID
	seq    int64
	size   int32
}

// NewPipeline returns a pipeline recorder retaining up to capacity
// events.
func NewPipeline(capacity int) *Pipeline {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: pipeline capacity %d must be positive", capacity))
	}
	return &Pipeline{ring: make([]pipeEvent, 0, capacity)}
}

// Recorded returns the total number of events offered (exact, including
// evicted ones).
func (pl *Pipeline) Recorded() int64 { return pl.recorded }

// record adds one event to the ring.
func (pl *Pipeline) record(e pipeEvent) {
	pl.recorded++
	if len(pl.ring) < cap(pl.ring) {
		pl.ring = append(pl.ring, e) //tcnlint:hotpath capacity-guarded; the ring never reallocates
		return
	}
	pl.ring[pl.next] = e
	pl.next = (pl.next + 1) % cap(pl.ring)
	pl.filled = true
}

// events returns the retained events in chronological (recording) order.
func (pl *Pipeline) events() []pipeEvent {
	if !pl.filled {
		return pl.ring
	}
	out := make([]pipeEvent, 0, cap(pl.ring))
	out = append(out, pl.ring[pl.next:]...)
	out = append(out, pl.ring[:pl.next]...)
	return out
}

// addTrack registers one port's tracks and returns its index.
func (pl *Pipeline) addTrack(label string, queues int) int32 {
	pl.tracks = append(pl.tracks, pipeTrack{label: label, queues: queues})
	return int32(len(pl.tracks) - 1)
}

// AttachPort records a fabric port's pipeline under label: a "queued"
// span per transmitted packet (admission to scheduler pick), a "wire"
// span for its serialization time, and mark/drop instants from the
// verdict stream. Hooks chain with any already installed.
func (pl *Pipeline) AttachPort(label string, pt *fabric.Port) {
	tr := pl.addTrack(label, pt.NumQueues())
	rate := pt.Rate()
	prevTx := pt.OnTransmit
	pt.OnTransmit = func(now sim.Time, qi int, p *pkt.Packet) {
		pl.record(pipeEvent{track: tr, queue: int32(qi), kind: pipeQueued,
			start: p.EnqueuedAt, dur: now - p.EnqueuedAt,
			flow: p.Flow, seq: p.Seq, size: int32(p.Size)})
		pl.record(pipeEvent{track: tr, queue: int32(qi), kind: pipeWire,
			start: now, dur: rate.Serialize(p.Size),
			flow: p.Flow, seq: p.Seq, size: int32(p.Size)})
		if prevTx != nil {
			prevTx(now, qi, p)
		}
	}
	prevV := pt.OnVerdict
	pt.OnVerdict = func(now sim.Time, qi int, p *pkt.Packet, v *core.Verdict) {
		pl.recordVerdict(tr, now, qi, p, v)
		if prevV != nil {
			prevV(now, qi, p, v)
		}
	}
}

// AttachQdisc records a software qdisc's pipeline under label, adding
// "tb-wait" spans for token-bucket stalls between the queued and wire
// stages.
func (pl *Pipeline) AttachQdisc(label string, q *qdisc.Qdisc) {
	tr := pl.addTrack(label, q.NumQueues())
	rate := fabric.Rate(q.LinkRate())
	prevTx := q.OnTransmit
	q.OnTransmit = func(now sim.Time, qi int, p *pkt.Packet) {
		pl.record(pipeEvent{track: tr, queue: int32(qi), kind: pipeQueued,
			start: p.EnqueuedAt, dur: now - p.EnqueuedAt,
			flow: p.Flow, seq: p.Seq, size: int32(p.Size)})
		pl.record(pipeEvent{track: tr, queue: int32(qi), kind: pipeWire,
			start: now, dur: rate.Serialize(p.Size),
			flow: p.Flow, seq: p.Seq, size: int32(p.Size)})
		if prevTx != nil {
			prevTx(now, qi, p)
		}
	}
	prevWait := q.OnShaperWait
	q.OnShaperWait = func(now sim.Time, qi int, wait sim.Time) {
		pl.record(pipeEvent{track: tr, queue: int32(qi), kind: pipeWait,
			start: now, dur: wait})
		if prevWait != nil {
			prevWait(now, qi, wait)
		}
	}
	prevV := q.OnVerdict
	q.OnVerdict = func(now sim.Time, qi int, p *pkt.Packet, v *core.Verdict) {
		pl.recordVerdict(tr, now, qi, p, v)
		if prevV != nil {
			prevV(now, qi, p, v)
		}
	}
}

// recordVerdict turns a decisive verdict into a mark or drop instant.
// Threshold crossings that could not mark (ECNIncapable) are ledger
// material, not timeline instants.
func (pl *Pipeline) recordVerdict(tr int32, now sim.Time, qi int, p *pkt.Packet, v *core.Verdict) {
	switch {
	case v.Dropped:
		pl.record(pipeEvent{track: tr, queue: int32(qi), kind: pipeDrop,
			reason: v.Reason, start: now,
			flow: p.Flow, seq: p.Seq, size: int32(p.Size)})
	case v.Marked:
		pl.record(pipeEvent{track: tr, queue: int32(qi), kind: pipeMark,
			reason: v.Reason, start: now,
			flow: p.Flow, seq: p.Seq, size: int32(p.Size)})
	}
}

// Chrome trace-event JSON shapes. Field order is fixed by the structs,
// so identical recordings export identical bytes.

type perfettoDoc struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

type perfettoEvent struct {
	Name string        `json:"name"`
	Ph   string        `json:"ph"`
	Pid  int           `json:"pid"`
	Tid  int           `json:"tid"`
	Ts   float64       `json:"ts"` // microseconds, Chrome convention
	Dur  *float64      `json:"dur,omitempty"`
	S    string        `json:"s,omitempty"`
	Args *perfettoArgs `json:"args,omitempty"`
}

type perfettoArgs struct {
	Name   string `json:"name,omitempty"`
	Flow   int32  `json:"flow,omitempty"`
	Seq    int64  `json:"seq,omitempty"`
	Size   int32  `json:"size,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// usec converts sim time to the microsecond floats Chrome traces use.
func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// WriteJSON renders the retained events as one Chrome trace-event JSON
// document: metadata naming each port's process and queue/wire threads,
// then "queued"/"tb-wait"/"wire" complete spans and "mark"/"drop"
// instants (named by core.EventKind, matching every other export).
func (pl *Pipeline) WriteJSON(w io.Writer) error {
	doc := perfettoDoc{TraceEvents: []perfettoEvent{}, DisplayTimeUnit: "ns"}
	for ti, tr := range pl.tracks {
		pid := ti + 1
		doc.TraceEvents = append(doc.TraceEvents, perfettoEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: &perfettoArgs{Name: tr.label},
		})
		doc.TraceEvents = append(doc.TraceEvents, perfettoEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
			Args: &perfettoArgs{Name: "wire"},
		})
		for qi := 0; qi < tr.queues; qi++ {
			doc.TraceEvents = append(doc.TraceEvents, perfettoEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: qi + 1,
				Args: &perfettoArgs{Name: fmt.Sprintf("q%d", qi)},
			})
		}
	}
	for _, e := range pl.events() {
		pid := int(e.track) + 1
		ev := perfettoEvent{Pid: pid, Ts: usec(e.start)}
		switch e.kind {
		case pipeQueued, pipeWait, pipeMark, pipeDrop:
			ev.Tid = int(e.queue) + 1
		case pipeWire:
			ev.Tid = 0
		}
		switch e.kind {
		case pipeQueued:
			ev.Name, ev.Ph = "queued", "X"
		case pipeWait:
			ev.Name, ev.Ph = "tb-wait", "X"
		case pipeWire:
			ev.Name, ev.Ph = "wire", "X"
		case pipeMark:
			ev.Name, ev.Ph, ev.S = core.EventMark.String(), "i", "t"
		case pipeDrop:
			ev.Name, ev.Ph, ev.S = core.EventDrop.String(), "i", "t"
		}
		if ev.Ph == "X" {
			d := usec(e.dur)
			ev.Dur = &d
		}
		if e.kind != pipeWait {
			args := &perfettoArgs{Flow: int32(e.flow), Seq: e.seq, Size: e.size}
			if e.kind == pipeMark || e.kind == pipeDrop {
				args.Reason = e.reason.String()
			}
			ev.Args = args
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return bw.Flush()
}
