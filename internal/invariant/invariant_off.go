//go:build !invariants

package invariant

// Enabled reports whether invariant checking was compiled in.
const Enabled = false

// Checkf is a no-op without the invariants build tag. Guard calls behind
// `if invariant.Enabled` so the arguments are not even evaluated.
func Checkf(cond bool, format string, args ...any) {}
