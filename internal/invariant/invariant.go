//go:build invariants

// Package invariant provides build-tag-gated runtime assertions for the
// simulator's accounting identities (buffer byte totals, token-bucket
// non-negativity, obs counter reconciliation). The checks exist because
// these identities span packages — a scheduler bug shows up as a buffer
// miscount three calls later — and unit tests only exercise each layer
// alone.
//
// Build with `-tags=invariants` to enable. Without the tag Enabled is a
// constant false and every `if invariant.Enabled { ... }` block is
// eliminated at compile time, so the hot path pays nothing.
package invariant

import "fmt"

// Enabled reports whether invariant checking was compiled in.
const Enabled = true

// Checkf panics with the formatted message when cond is false. Callers
// must guard the call (including argument construction) behind
// `if invariant.Enabled`.
func Checkf(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
