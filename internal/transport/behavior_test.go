package transport_test

import (
	"testing"

	"tcn/internal/core"
	"tcn/internal/fabric"
	"tcn/internal/pkt"
	"tcn/internal/sim"
	"tcn/internal/testutil"
	"tcn/internal/transport"
)

// twoHostStar builds the minimal topology for protocol-behaviour tests.
func twoHostStar(eng *sim.Engine, marker func() core.Marker) *fabric.Star {
	return star(eng, 2, 0, marker)
}

// markAll CE-marks every ECT packet unconditionally.
type markAll struct{}

func (markAll) Name() string                                                        { return "mark-all" }
func (markAll) OnEnqueue(sim.Time, int, *pkt.Packet, core.PortState, *core.Verdict) {}
func (markAll) OnDequeue(_ sim.Time, _ int, p *pkt.Packet, _ core.PortState, v *core.Verdict) {
	v.Fire(core.ReasonTCNThreshold, p)
}

func TestDCTCPAlphaConvergesUnderFullMarking(t *testing.T) {
	// A marker that marks everything drives alpha towards 1.
	eng := sim.NewEngine()
	net := twoHostStar(eng, func() core.Marker { return markAll{} })
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP, RTOMin: 10 * sim.Millisecond}, net.Hosts)
	snd := st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: 1, Size: 1 << 40})
	eng.RunUntil(300 * sim.Millisecond)
	if a := snd.Alpha(); a < 0.9 {
		t.Fatalf("alpha %v, want ~1 under full marking", a)
	}
}

func TestDCTCPAlphaStaysZeroWithoutMarks(t *testing.T) {
	eng := sim.NewEngine()
	net := twoHostStar(eng, nil)
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP, RTOMin: 10 * sim.Millisecond}, net.Hosts)
	snd := st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: 1, Size: 5_000_000})
	eng.RunUntil(sim.Second)
	if !testutil.Eq(snd.Alpha(), 0) {
		t.Fatalf("alpha %v without any marking", snd.Alpha())
	}
	if !snd.Done() {
		t.Fatal("flow should have completed")
	}
}

func TestECNStarGentlerThanFullCut(t *testing.T) {
	// With a single bottleneck flow and TCN, ECN* should still sustain
	// near-full utilization: the half-cut recovers within the run.
	eng := sim.NewEngine()
	net := twoHostStar(eng, func() core.Marker { return core.NewTCN(256 * sim.Microsecond) })
	st := transport.NewStack(eng, transport.Config{CC: transport.ECNStar, RTOMin: 10 * sim.Millisecond}, net.Hosts)
	var got int64
	st.OnDeliver = func(_ sim.Time, _ *transport.Flow, n int) { got += int64(n) }
	st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: 1, Size: 1 << 40})
	eng.RunUntil(400 * sim.Millisecond)
	mbps := float64(got) * 8 / 0.4 / 1e6
	if mbps < 800 {
		t.Fatalf("ECN* goodput %.0f Mbps, want near line rate", mbps)
	}
}

func TestRenoIgnoresMarks(t *testing.T) {
	// Reno traffic is Not-ECT; an aggressive marker must not slow it.
	eng := sim.NewEngine()
	net := twoHostStar(eng, func() core.Marker { return core.NewTCN(sim.Nanosecond) })
	st := transport.NewStack(eng, transport.Config{CC: transport.Reno, RTOMin: 10 * sim.Millisecond}, net.Hosts)
	var got int64
	st.OnDeliver = func(_ sim.Time, _ *transport.Flow, n int) { got += int64(n) }
	st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: 1, Size: 1 << 40})
	eng.RunUntil(200 * sim.Millisecond)
	mbps := float64(got) * 8 / 0.2 / 1e6
	if mbps < 800 {
		t.Fatalf("Reno goodput %.0f Mbps; marks should not affect Not-ECT traffic", mbps)
	}
}

func TestMessagePoolReusesConnections(t *testing.T) {
	eng := sim.NewEngine()
	net := twoHostStar(eng, nil)
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP, RTOMin: 10 * sim.Millisecond}, net.Hosts)
	pool := transport.NewPool(st, 2)

	var done []*transport.Message
	st.OnMessage = func(m *transport.Message) { done = append(done, m) }

	// Sequential messages: the pool must not open extra connections.
	for i := 0; i < 5; i++ {
		at := sim.Time(i) * 50 * sim.Millisecond
		eng.At(at, func() {
			pool.Submit(0, 1, &transport.Message{Size: 100_000})
		})
	}
	eng.RunUntil(sim.Second)
	if len(done) != 5 {
		t.Fatalf("completed %d messages, want 5", len(done))
	}
	if pool.Opened != 0 || pool.Conns() != 2 {
		t.Fatalf("pool opened %d extra conns (total %d), want reuse of the warm pair",
			pool.Opened, pool.Conns())
	}
	for _, m := range done {
		if m.FCT() <= 0 || m.FCT() > 10*sim.Millisecond {
			t.Fatalf("implausible message FCT %v", m.FCT())
		}
	}
}

func TestMessagePoolOpensWhenBusy(t *testing.T) {
	eng := sim.NewEngine()
	net := twoHostStar(eng, nil)
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP, RTOMin: 10 * sim.Millisecond}, net.Hosts)
	pool := transport.NewPool(st, 1)
	completed := 0
	st.OnMessage = func(m *transport.Message) { completed++ }

	// Two big messages at once: the second needs a fresh connection.
	pool.Submit(0, 1, &transport.Message{Size: 5_000_000})
	pool.Submit(0, 1, &transport.Message{Size: 5_000_000})
	if pool.Opened != 1 {
		t.Fatalf("opened %d, want 1", pool.Opened)
	}
	eng.RunUntil(sim.Second)
	if completed != 2 {
		t.Fatalf("completed %d messages", completed)
	}
}

func TestMessagesShareWarmWindow(t *testing.T) {
	// The second message on a connection must start from the
	// congestion state the first one left, not from a fresh IW —
	// unless the connection idled long enough for slow-start restart.
	eng := sim.NewEngine()
	net := twoHostStar(eng, nil)
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP, InitWindow: 2, RTOMin: 10 * sim.Millisecond}, net.Hosts)
	c := st.NewConn(0, 1)

	var fcts []sim.Time
	st.OnMessage = func(m *transport.Message) { fcts = append(fcts, m.FCT()) }

	// Chain the second message immediately on completion of the first,
	// so the connection cannot hit slow-start restart, and use a size
	// where slow start (IW=2) dominates the cold FCT.
	const msgSize = 60_000
	st.OnMessage = func(m *transport.Message) {
		fcts = append(fcts, m.FCT())
		if len(fcts) == 1 {
			c.Send(&transport.Message{Size: msgSize})
		}
	}
	c.Send(&transport.Message{Size: msgSize})
	eng.RunUntil(sim.Second)
	if len(fcts) != 2 {
		t.Fatalf("completed %d messages", len(fcts))
	}
	if float64(fcts[1]) >= 0.8*float64(fcts[0]) {
		t.Fatalf("warm message FCT %v should clearly beat cold %v (IW=2 slow start)", fcts[1], fcts[0])
	}
}

func TestSlowStartRestartAfterIdle(t *testing.T) {
	eng := sim.NewEngine()
	net := twoHostStar(eng, nil)
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP, InitWindow: 4, RTOMin: 10 * sim.Millisecond}, net.Hosts)
	c := st.NewConn(0, 1)
	c.Send(&transport.Message{Size: 5_000_000})
	eng.RunUntil(200 * sim.Millisecond)
	warm := c.Sender().Cwnd()
	if warm <= 8 {
		t.Fatalf("cwnd %v should have grown past IW", warm)
	}
	// Idle far beyond the RTO, then send again: window must restart.
	eng.RunUntil(2 * sim.Second)
	c.Send(&transport.Message{Size: 10_000})
	if got := c.Sender().Cwnd(); got > 4 {
		t.Fatalf("cwnd %v after idle, want collapsed to IW=4", got)
	}
	eng.RunUntil(3 * sim.Second)
	if !c.Idle() {
		t.Fatal("second message should complete")
	}
}

func TestPIASMessageTagging(t *testing.T) {
	// Observe actual DSCPs on the wire for a message crossing the PIAS
	// threshold.
	eng := sim.NewEngine()
	net := twoHostStar(eng, nil)
	seen := map[uint8]int{}
	net.Switch.Port(1).OnTransmit = func(_ sim.Time, _ int, p *pkt.Packet) {
		if p.Kind == pkt.Data {
			seen[p.DSCP] += p.Len
		}
	}
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP, RTOMin: 10 * sim.Millisecond}, net.Hosts)
	c := st.NewConn(0, 1)
	c.Send(&transport.Message{
		Size:  300_000,
		Class: 2,
		Tag: func(off int64) uint8 {
			if off < 100_000 {
				return 0
			}
			return 2
		},
	})
	eng.RunUntil(sim.Second)
	if seen[0] < 95_000 || seen[0] > 105_000 {
		t.Fatalf("high-priority bytes %d, want ~100000", seen[0])
	}
	if seen[2] < 195_000 || seen[2] > 205_000 {
		t.Fatalf("service-class bytes %d, want ~200000", seen[2])
	}
}

func TestDupACKTriggersFastRetransmitNotTimeout(t *testing.T) {
	// Deterministically drop one mid-flow segment at the receiver; the
	// packets behind it generate duplicate ACKs and recovery must use a
	// fast retransmit, not an RTO.
	eng := sim.NewEngine()
	net := star(eng, 2, 0, nil)
	st := transport.NewStack(eng, transport.Config{CC: transport.Reno, InitWindow: 16, RTOMin: 50 * sim.Millisecond}, net.Hosts)
	inner := net.Hosts[1].Handler
	dropped := false
	net.Hosts[1].Handler = func(p *pkt.Packet) {
		if !dropped && p.Kind == pkt.Data && p.Seq == 10*1460 {
			dropped = true
			return
		}
		inner(p)
	}
	var done *transport.Flow
	st.OnDone = func(f *transport.Flow) { done = f }
	snd := st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: 1, Size: 60_000})
	eng.RunUntil(sim.Second)
	if done == nil {
		t.Fatal("flow did not complete")
	}
	if !dropped {
		t.Fatal("the probe drop never happened")
	}
	if snd.FastRetransmits != 1 {
		t.Fatalf("fast retransmits = %d, want 1", snd.FastRetransmits)
	}
	if done.Timeouts != 0 {
		t.Fatalf("recovery used %d timeouts; dupacks should have sufficed", done.Timeouts)
	}
}

func TestAckDSCPOverride(t *testing.T) {
	eng := sim.NewEngine()
	net := twoHostStar(eng, nil)
	var ackDSCP []uint8
	net.Switch.Port(0).OnTransmit = func(_ sim.Time, _ int, p *pkt.Packet) {
		if p.Kind == pkt.Ack {
			ackDSCP = append(ackDSCP, p.DSCP)
		}
	}
	st := transport.NewStack(eng, transport.Config{
		CC:      transport.DCTCP,
		RTOMin:  10 * sim.Millisecond,
		AckDSCP: func(*transport.Flow) uint8 { return 0 },
	}, net.Hosts)
	st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: 1, Size: 100_000, Class: 5})
	eng.RunUntil(sim.Second)
	if len(ackDSCP) == 0 {
		t.Fatal("no ACKs observed")
	}
	for _, d := range ackDSCP {
		if d != 0 {
			t.Fatalf("ACK rode class %d, want 0", d)
		}
	}
}

func TestMaxWindowCapsInFlight(t *testing.T) {
	eng := sim.NewEngine()
	net := twoHostStar(eng, nil)
	st := transport.NewStack(eng, transport.Config{
		CC: transport.DCTCP, MaxWindow: 8, RTOMin: 10 * sim.Millisecond,
	}, net.Hosts)
	// Count the largest burst in the switch queue: with an 8-segment
	// window cap over a ~250us RTT path the sender can never have more
	// than 8 segments outstanding.
	maxQ := 0
	var poll func()
	poll = func() {
		if q := net.Switch.Port(1).PortBytes(); q > maxQ {
			maxQ = q
		}
		if eng.Len() > 1 {
			eng.After(10*sim.Microsecond, poll)
		}
	}
	eng.After(0, poll)
	st.Start(&transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: 1, Size: 10_000_000})
	eng.RunUntil(sim.Second)
	if maxQ > 8*1500 {
		t.Fatalf("queue %d exceeds the window cap's worth of data", maxQ)
	}
	// And the window cap throttles throughput below line rate:
	// 8 × 1460B per ~250us ≈ 374 Mbps, so a 10 MB flow takes ~210ms+.
	if eng.Now() < 150*sim.Millisecond {
		t.Fatalf("flow finished at %v, faster than the window cap allows", eng.Now())
	}
}
