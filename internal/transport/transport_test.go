package transport_test

import (
	"testing"

	"tcn/internal/core"
	"tcn/internal/fabric"
	"tcn/internal/pkt"
	"tcn/internal/sim"
	"tcn/internal/transport"
)

// star builds an n-host 1 Gbps star whose switch ports each have a single
// queue guarded by the given marker factory.
func star(eng *sim.Engine, n int, buffer int, marker func() core.Marker) *fabric.Star {
	return fabric.NewStar(eng, fabric.StarConfig{
		Hosts:     n,
		Rate:      fabric.Gbps,
		Prop:      2500 * sim.Nanosecond,
		HostDelay: 120 * sim.Microsecond,
		SwitchPort: func() fabric.PortConfig {
			var m core.Marker
			if marker != nil {
				m = marker()
			}
			return fabric.PortConfig{
				Queues:      1,
				BufferBytes: buffer,
				Marker:      m,
			}
		},
	})
}

func TestSingleFlowCompletes(t *testing.T) {
	eng := sim.NewEngine()
	net := star(eng, 2, 0, nil)
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP, RTOMin: 10 * sim.Millisecond}, net.Hosts)

	var done *transport.Flow
	st.OnDone = func(f *transport.Flow) { done = f }
	f := &transport.Flow{ID: st.NewFlowID(), Src: 0, Dst: 1, Size: 1_000_000}
	st.Start(f)
	eng.RunUntil(sim.Second)

	if done == nil {
		t.Fatal("flow did not complete")
	}
	// 1 MB at 1 Gbps is ~8.2 ms of serialization (plus headers and the
	// ~250us base RTT); anything between 8 ms and 30 ms is sane.
	fct := done.FCT()
	if fct < 8*sim.Millisecond || fct > 30*sim.Millisecond {
		t.Fatalf("implausible FCT %v for 1MB at 1Gbps", fct)
	}
	if done.Timeouts != 0 {
		t.Fatalf("unexpected timeouts: %d", done.Timeouts)
	}
}

func TestLongFlowsShareBottleneckFairly(t *testing.T) {
	eng := sim.NewEngine()
	// Unlimited buffer + TCN marking, DCTCP senders.
	net := star(eng, 3, 0, func() core.Marker { return core.NewTCN(256 * sim.Microsecond) })
	st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP, RTOMin: 10 * sim.Millisecond}, net.Hosts)

	delivered := make(map[pkt.FlowID]int64)
	st.OnDeliver = func(_ sim.Time, f *transport.Flow, n int) { delivered[f.ID] += int64(n) }

	const size = 40_000_000
	for src := 0; src < 2; src++ {
		f := &transport.Flow{ID: st.NewFlowID(), Src: src, Dst: 2, Size: size}
		st.Start(f)
	}
	eng.RunUntil(400 * sim.Millisecond)

	var total int64
	for _, n := range delivered {
		total += n
	}
	// Link should be nearly saturated: >85% of 1Gbps over 400ms.
	wantMin := int64(0.85 * 1e9 / 8 * 0.4)
	if total < wantMin {
		t.Fatalf("bottleneck underutilized: delivered %d bytes, want >= %d", total, wantMin)
	}
	// And shared roughly evenly between the two flows.
	for id, n := range delivered {
		frac := float64(n) / float64(total)
		if frac < 0.35 || frac > 0.65 {
			t.Fatalf("unfair share: flow %d got %.2f of goodput", id, frac)
		}
	}
}

func TestTCNBoundsQueueing(t *testing.T) {
	// With TCN at threshold 256us the steady-state queue should stay
	// around one BDP; with no AQM and a big buffer it grows much larger.
	run := func(marker func() core.Marker) int {
		eng := sim.NewEngine()
		net := star(eng, 5, 1_000_000, marker)
		st := transport.NewStack(eng, transport.Config{CC: transport.DCTCP, RTOMin: 10 * sim.Millisecond}, net.Hosts)
		for src := 0; src < 4; src++ {
			st.Start(&transport.Flow{ID: st.NewFlowID(), Src: src, Dst: 4, Size: 1 << 40})
		}
		maxQ := 0
		port := net.Switch.Port(4)
		var poll func()
		poll = func() {
			if q := port.PortBytes(); q > maxQ {
				maxQ = q
			}
			eng.After(10*sim.Microsecond, poll)
		}
		eng.After(50*sim.Millisecond, poll) // skip slow-start transient
		eng.RunUntil(200 * sim.Millisecond)
		return maxQ
	}

	withTCN := run(func() core.Marker { return core.NewTCN(256 * sim.Microsecond) })
	noAQM := run(nil)
	if withTCN >= noAQM {
		t.Fatalf("TCN queue %d not smaller than drop-tail queue %d", withTCN, noAQM)
	}
	// Steady-state TCN queue should be within a few BDPs (1 BDP = 32KB).
	if withTCN > 6*32_000 {
		t.Fatalf("TCN steady-state queue too large: %d bytes", withTCN)
	}
}

func TestLossRecoveryUnderTinyBuffer(t *testing.T) {
	eng := sim.NewEngine()
	// 10 KB per-port buffer forces drops; flows must still complete via
	// fast retransmit / RTO.
	net := star(eng, 4, 10_000, nil)
	st := transport.NewStack(eng, transport.Config{CC: transport.Reno, RTOMin: 10 * sim.Millisecond}, net.Hosts)

	doneCount := 0
	st.OnDone = func(f *transport.Flow) { doneCount++ }
	for src := 0; src < 3; src++ {
		st.Start(&transport.Flow{ID: st.NewFlowID(), Src: src, Dst: 3, Size: 2_000_000})
	}
	eng.RunUntil(10 * sim.Second)
	if doneCount != 3 {
		t.Fatalf("only %d/3 flows completed under loss", doneCount)
	}
}

func TestPingerMeasuresBaseRTT(t *testing.T) {
	eng := sim.NewEngine()
	net := star(eng, 2, 0, nil)
	st := transport.NewStack(eng, transport.Config{}, net.Hosts)
	pg := st.StartPinger(0, 1, 0, sim.Millisecond)
	eng.RunUntil(100 * sim.Millisecond)
	pg.Stop()

	if len(pg.Samples) < 90 {
		t.Fatalf("too few ping samples: %d", len(pg.Samples))
	}
	// Base RTT should be ~2*(hostDelay + prop) plus serialization:
	// around 245-260us in this setup.
	m := pg.Mean()
	if m < 240*sim.Microsecond || m > 280*sim.Microsecond {
		t.Fatalf("unexpected base RTT %v", m)
	}
}

func TestCBRDeliversAtConfiguredRate(t *testing.T) {
	eng := sim.NewEngine()
	net := star(eng, 2, 0, nil)
	st := transport.NewStack(eng, transport.Config{}, net.Hosts)

	var got int64
	st.OnDeliver = func(_ sim.Time, f *transport.Flow, n int) { got += int64(n) }
	cbr := st.StartCBR(0, 1, 0, 500*fabric.Mbps)
	eng.RunUntil(100 * sim.Millisecond)
	cbr.Stop()

	// 500 Mbps of wire rate for 100 ms ≈ 6.25 MB minus header overhead.
	gotMbps := float64(got) * 8 / 0.1 / 1e6
	if gotMbps < 450 || gotMbps > 510 {
		t.Fatalf("CBR rate %0.1f Mbps, want ~480", gotMbps)
	}
}
